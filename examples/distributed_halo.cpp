// Distributed lulesh-mini with MPI-in-tasks (Listing 1 of the paper):
// four ranks run as threads of this process, each with its own tasking
// runtime; the dt allreduce and the halo exchange are dependent tasks
// completed through detach events at scheduling points. The decomposed
// run reproduces the single big serial mesh bit-for-bit.
//
//   ./distributed_halo [ranks] [points_per_rank] [iterations]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "apps/lulesh/lulesh.hpp"
#include "core/tdg.hpp"
#include "mpi/interop.hpp"
#include "mpi/mpi.hpp"

int main(int argc, char** argv) {
  namespace lulesh = tdg::apps::lulesh;

  const int nranks = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::int64_t per_rank = argc > 2 ? std::atoll(argv[2]) : 8192;
  lulesh::Config cfg;
  cfg.npoints = per_rank;
  cfg.iterations = argc > 3 ? std::atoi(argv[3]) : 12;
  cfg.tpl = 8;
  std::printf("distributed lulesh-mini: %d ranks x %lld points, %d "
              "iterations\n",
              nranks, static_cast<long long>(per_rank), cfg.iterations);

  // Ground truth: the undecomposed mesh.
  lulesh::Mesh ref(per_rank * nranks);
  run_reference(ref, cfg);

  std::vector<int> mismatches(static_cast<std::size_t>(nranks), 0);
  std::vector<tdg::mpi::CommStats> traffic(
      static_cast<std::size_t>(nranks));
  tdg::mpi::Universe::run(nranks, [&](tdg::mpi::Comm& comm) {
    tdg::Runtime rt({.num_threads = 2});
    // Comm-aware: stamps the profiler's rank, records comm trace events
    // under TDG_TRACE, and samples telemetry under TDG_TELEMETRY.
    tdg::mpi::RequestPoller poller(rt, comm);
    lulesh::Mesh m(per_rank);
    const std::int64_t offset = per_rank * comm.rank();
    m.init_partition(per_rank * nranks, offset);
    lulesh::Config c = cfg;
    run_distributed(rt, comm, poller, m, c, /*persistent=*/true);
    int bad = 0;
    for (std::int64_t i = 1; i <= per_rank; ++i) {
      if (m.x[static_cast<std::size_t>(i)] !=
          ref.x[static_cast<std::size_t>(offset + i)]) {
        ++bad;
      }
    }
    mismatches[static_cast<std::size_t>(comm.rank())] = bad;
    traffic[static_cast<std::size_t>(comm.rank())] = comm.stats();
  });

  bool ok = true;
  for (int r = 0; r < nranks; ++r) {
    const auto& t = traffic[static_cast<std::size_t>(r)];
    std::printf(
        "rank %d: %d mismatching points vs serial mesh | %llu sends, "
        "%llu allreduces\n",
        r, mismatches[static_cast<std::size_t>(r)],
        static_cast<unsigned long long>(t.sends),
        static_cast<unsigned long long>(t.allreduces));
    ok &= mismatches[static_cast<std::size_t>(r)] == 0;
  }
  std::printf("decomposed run %s the serial mesh exactly\n",
              ok ? "REPRODUCES" : "DIVERGES FROM");
  return ok ? 0 : 1;
}
