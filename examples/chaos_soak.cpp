// Chaos soak driver: run a distributed example application (LULESH halo
// ring or per-rank Cholesky with a boundary exchange) under a seeded
// loss+kill fault plan with the reliable-delivery layer and heartbeat
// failure detector on, then report whether every surviving rank stayed
// sound and how the resilience machinery was exercised.
//
//   ./chaos_soak [--app lulesh|cholesky] [--mode poison|shrink]
//                [--plan 0|1|2|none] [--ranks N] [--iters N] [--threads N]
//
// --plan none (the default) runs clean: no injection, reliable delivery
// and the detector off — every resilience counter must print 0. The
// TDG_FAULTS environment variable is applied by the universe on top of
// whichever plan is selected (see README "Fault injection").
//
// Exit status 0 iff the run terminated with no unexpected rank outcome.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "apps/common/chaos.hpp"

namespace chaos = tdg::apps::chaos;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--app lulesh|cholesky] [--mode poison|shrink] "
               "[--plan 0|1|2|none] [--ranks N] [--iters N] [--threads N]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  chaos::ChaosConfig cfg;
  int plan = -1;  // none: clean run
  for (int i = 1; i + 1 < argc; i += 2) {
    const char* key = argv[i];
    const char* val = argv[i + 1];
    if (std::strcmp(key, "--app") == 0) {
      if (std::strcmp(val, "lulesh") == 0) {
        cfg.app = chaos::App::Lulesh;
      } else if (std::strcmp(val, "cholesky") == 0) {
        cfg.app = chaos::App::Cholesky;
      } else {
        return usage(argv[0]);
      }
    } else if (std::strcmp(key, "--mode") == 0) {
      if (std::strcmp(val, "poison") == 0) {
        cfg.recovery = tdg::apps::RecoveryMode::Poison;
      } else if (std::strcmp(val, "shrink") == 0) {
        cfg.recovery = tdg::apps::RecoveryMode::ShrinkRedistribute;
      } else {
        return usage(argv[0]);
      }
    } else if (std::strcmp(key, "--plan") == 0) {
      plan = std::strcmp(val, "none") == 0 ? -1 : std::atoi(val);
    } else if (std::strcmp(key, "--ranks") == 0) {
      cfg.nranks = std::atoi(val);
    } else if (std::strcmp(key, "--iters") == 0) {
      cfg.iterations = std::atoi(val);
    } else if (std::strcmp(key, "--threads") == 0) {
      cfg.threads_per_rank = static_cast<unsigned>(std::atoi(val));
    } else {
      return usage(argv[0]);
    }
  }
  if (plan >= 0) {
    cfg.faults = chaos::canned_plan(plan);
    cfg.reliable.enabled = true;
    cfg.reliable.retransmit_timeout_seconds = 0.005;
    cfg.heartbeat.enabled = true;
    cfg.heartbeat.period_seconds = 0.001;
    cfg.heartbeat.suspect_seconds = 0.03;
    cfg.heartbeat.fail_seconds = 0.1;
  }

  const bool shrink =
      cfg.recovery == tdg::apps::RecoveryMode::ShrinkRedistribute;
  std::printf("chaos_soak: app=%s mode=%s plan=%d ranks=%d iters=%d\n",
              cfg.app == chaos::App::Lulesh ? "lulesh" : "cholesky",
              shrink ? "shrink" : "poison", plan, cfg.nranks,
              cfg.iterations);

  const chaos::ChaosOutcome out = chaos::run_chaos(cfg);

  std::printf("survivors_ok=%d expected_failures=%d killed=%zu\n",
              out.survivors_ok, out.expected_failures,
              out.report.killed_ranks.size());
  for (int r = 0; r < cfg.nranks; ++r) {
    const auto s = static_cast<std::size_t>(r);
    std::printf("rank %d: %s%s%s\n", r,
                tdg::mpi::to_string(out.report.rank_status[s]),
                out.report.rank_errors[s].empty() ? "" : " | ",
                out.report.rank_errors[s].c_str());
  }
  for (const std::string& u : out.unexpected) {
    std::printf("UNEXPECTED: %s\n", u.c_str());
  }
  // The metric names mirrored into each rank's runtime registry, printed
  // from the universe-wide counters (machine-checked by ci_chaos.sh).
  std::printf("comm.drops_injected=%llu\n",
              static_cast<unsigned long long>(out.report.faults.drops));
  std::printf("comm.kills_injected=%llu\n",
              static_cast<unsigned long long>(out.report.faults.kills));
  std::printf("comm.retransmits=%llu\n",
              static_cast<unsigned long long>(out.report.reliable.retransmits));
  std::printf(
      "comm.dup_suppressed=%llu\n",
      static_cast<unsigned long long>(out.report.reliable.dup_suppressed));
  std::printf("universe.ranks_failed=%d\n", out.report.ranks_failed);
  std::printf("sound=%s\n", out.sound() ? "yes" : "NO");
  return out.sound() ? 0 : 1;
}
