// Persistent Task Sub-Graph demo (the paper's optimization (p)).
//
// An iterative blocked stencil is run twice: once rediscovering its task
// graph every iteration, once under a PersistentRegion where iterations
// 1..N-1 only memcpy the firstprivate captures of cached tasks. The
// per-iteration discovery times show the replay speedup.
#include <cstdio>
#include <vector>

#include "core/tdg.hpp"

namespace {

constexpr int kBlocks = 64;
constexpr int kIterations = 20;
constexpr std::int64_t kN = 1 << 16;

void emit_stencil_iteration(tdg::Runtime& rt, std::vector<double>& u,
                            std::vector<double>& v, int iter) {
  using tdg::Depend;
  const std::int64_t bs = kN / kBlocks;
  for (int b = 0; b < kBlocks; ++b) {
    const std::int64_t lo = b * bs, hi = lo + bs;
    tdg::DependList deps;
    // 3-point stencil: block b reads u blocks b-1, b, b+1, writes v block b.
    for (int nb : {b - 1, b, b + 1}) {
      if (nb >= 0 && nb < kBlocks) {
        deps.push_back(Depend::in(&u[static_cast<std::size_t>(nb * bs)]));
      }
    }
    deps.push_back(Depend::out(&v[static_cast<std::size_t>(lo)]));
    // `iter` is firstprivate: the replay updates it with a memcpy.
    rt.submit(
        [&u, &v, lo, hi, iter] {
          for (std::int64_t i = lo; i < hi; ++i) {
            const auto l = static_cast<std::size_t>(i > 0 ? i - 1 : i);
            const auto r =
                static_cast<std::size_t>(i + 1 < kN ? i + 1 : i);
            v[static_cast<std::size_t>(i)] =
                0.5 * u[static_cast<std::size_t>(i)] +
                0.25 * (u[l] + u[r]) + 1e-6 * iter;
          }
        },
        std::span<const tdg::Depend>(deps));
  }
  // Swap roles next iteration by emitting the reverse copy.
  for (int b = 0; b < kBlocks; ++b) {
    const std::int64_t lo = b * bs, hi = lo + bs;
    rt.submit(
        [&u, &v, lo, hi] {
          for (std::int64_t i = lo; i < hi; ++i) {
            u[static_cast<std::size_t>(i)] = v[static_cast<std::size_t>(i)];
          }
        },
        {Depend::in(&v[static_cast<std::size_t>(lo)]),
         Depend::out(&u[static_cast<std::size_t>(lo)])});
  }
}

}  // namespace

int main() {
  std::vector<double> u(kN, 1.0), v(kN, 0.0);

  std::printf("rediscovery every iteration:\n  discovery (us):");
  {
    tdg::Runtime rt({.num_threads = 4});
    for (int it = 0; it < kIterations; ++it) {
      rt.reset_stats();
      emit_stencil_iteration(rt, u, v, it);
      rt.taskwait();
      std::printf(" %.0f", rt.stats().discovery_seconds() * 1e6);
    }
    std::printf("\n");
  }

  std::fill(u.begin(), u.end(), 1.0);
  std::printf("persistent task sub-graph:\n  discovery (us):");
  {
    tdg::Runtime rt({.num_threads = 4});
    tdg::PersistentRegion region(rt);
    for (int it = 0; it < kIterations; ++it) {
      region.begin_iteration();
      emit_stencil_iteration(rt, u, v, it);
      region.end_iteration();
    }
    for (double d : region.discovery_seconds()) {
      std::printf(" %.0f", d * 1e6);
    }
    std::printf("\n  (first iteration discovers the graph; replays only "
                "update firstprivate data)\n");
  }
  std::printf("u[0] after %d iterations: %.6f\n", kIterations, u[0]);
  return 0;
}
