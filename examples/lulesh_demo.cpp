// lulesh-mini demo: the Sedov-like hydro proxy in its three variants —
// serial reference, parallel-for (BSP), and dependent tasks (optionally
// persistent) — with digests proving they compute identical physics, and
// the task-graph statistics of the dependent version.
//
//   ./lulesh_demo [npoints] [iterations] [tpl]
#include <cstdio>
#include <cstdlib>

#include "apps/lulesh/lulesh.hpp"
#include "core/tdg.hpp"

int main(int argc, char** argv) {
  namespace lulesh = tdg::apps::lulesh;

  lulesh::Config cfg;
  cfg.npoints = argc > 1 ? std::atoll(argv[1]) : 1 << 15;
  cfg.iterations = argc > 2 ? std::atoi(argv[2]) : 16;
  cfg.tpl = argc > 3 ? std::atoi(argv[3]) : 64;
  std::printf("lulesh-mini: npoints=%lld iterations=%d tpl=%d\n",
              static_cast<long long>(cfg.npoints), cfg.iterations, cfg.tpl);

  auto show = [](const char* name, const lulesh::Mesh& m, double secs) {
    const auto d = m.digest();
    std::printf("%-22s %8.3f ms   sum_e=%.12g dt=%.6g\n", name, secs * 1e3,
                d.sum_e, d.dt);
    return d;
  };

  // Serial reference.
  lulesh::Mesh ref(cfg.npoints);
  double t0 = tdg::now_seconds();
  run_reference(ref, cfg);
  const auto dref = show("serial reference", ref, tdg::now_seconds() - t0);

  // parallel-for (taskloop + barrier per mesh-wide loop).
  {
    tdg::Runtime rt({.num_threads = 4});
    lulesh::Mesh m(cfg.npoints);
    t0 = tdg::now_seconds();
    run_parallel_for(rt, m, cfg);
    const auto d = show("parallel-for", m, tdg::now_seconds() - t0);
    std::printf("   matches reference: %s\n", d == dref ? "yes" : "NO");
  }

  // Dependent tasks, rediscovered each iteration.
  {
    tdg::Runtime rt({.num_threads = 4});
    lulesh::Mesh m(cfg.npoints);
    t0 = tdg::now_seconds();
    run_taskbased(rt, m, cfg, /*persistent=*/false);
    const auto d = show("dependent tasks", m, tdg::now_seconds() - t0);
    const auto s = rt.stats();
    std::printf(
        "   matches reference: %s | %llu tasks, %llu edges, discovery "
        "%.3f ms\n",
        d == dref ? "yes" : "NO",
        static_cast<unsigned long long>(s.tasks_created),
        static_cast<unsigned long long>(s.discovery.edges_created),
        s.discovery_seconds() * 1e3);
  }

  // Dependent tasks under a persistent graph (optimization (p)).
  {
    tdg::Runtime rt({.num_threads = 4});
    lulesh::Mesh m(cfg.npoints);
    t0 = tdg::now_seconds();
    run_taskbased(rt, m, cfg, /*persistent=*/true);
    const auto d = show("persistent tasks", m, tdg::now_seconds() - t0);
    const auto s = rt.stats();
    std::printf(
        "   matches reference: %s | graph cached: %llu tasks created, "
        "%llu instances executed\n",
        d == dref ? "yes" : "NO",
        static_cast<unsigned long long>(s.tasks_created),
        static_cast<unsigned long long>(s.tasks_executed));
  }
  return 0;
}
