// Multi-tenant soak: N submitter threads, each owning one tenant runtime
// attached to a shared WorkerPool, pump thousands of small dependent
// graphs through the pool concurrently. Every graph is a serialized
// chain, so each tenant's checksum is order-sensitive: a lost task, a
// double execution or a cross-tenant ordering leak changes the digest.
//
//   ./multitenant_soak [--tenants N] [--graphs N] [--chain N]
//                      [--workers N] [--batch 0|1] [--weights 0|1]
//
// Defaults soak 8 tenants x 1000 graphs (chain length 4). --batch 1
// submits each graph through begin_batch/end_batch; --weights 1 gives
// tenant i weight i+1 and prints the pool's served distribution. Runs
// under TDG_VERIFY=strict and the sanitizers in scripts/ci_soak.sh.
//
// Exit status 0 iff every tenant's checksum and execution count match.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "core/tdg.hpp"
#include "core/worker_pool.hpp"

namespace {

struct Options {
  unsigned tenants = 8;
  int graphs = 1000;
  int chain = 4;
  unsigned workers = 3;
  bool batch = false;
  bool weights = false;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--tenants N] [--graphs N] [--chain N] "
               "[--workers N] [--batch 0|1] [--weights 0|1]\n",
               argv0);
  return 2;
}

std::uint64_t term(unsigned tenant, int graph, int link) {
  return static_cast<std::uint64_t>(tenant + 1) * 1000003u +
         static_cast<std::uint64_t>(graph) * 131u +
         static_cast<std::uint64_t>(link);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i + 1 < argc; i += 2) {
    const char* key = argv[i];
    const char* val = argv[i + 1];
    if (std::strcmp(key, "--tenants") == 0) {
      opt.tenants = static_cast<unsigned>(std::atoi(val));
    } else if (std::strcmp(key, "--graphs") == 0) {
      opt.graphs = std::atoi(val);
    } else if (std::strcmp(key, "--chain") == 0) {
      opt.chain = std::atoi(val);
    } else if (std::strcmp(key, "--workers") == 0) {
      opt.workers = static_cast<unsigned>(std::atoi(val));
    } else if (std::strcmp(key, "--batch") == 0) {
      opt.batch = std::atoi(val) != 0;
    } else if (std::strcmp(key, "--weights") == 0) {
      opt.weights = std::atoi(val) != 0;
    } else {
      return usage(argv[0]);
    }
  }
  if (opt.tenants == 0 || opt.graphs <= 0 || opt.chain <= 0) {
    return usage(argv[0]);
  }

  tdg::WorkerPool::Config pc;
  pc.num_workers = opt.workers;
  pc.max_tenants = opt.tenants;
  tdg::WorkerPool pool(pc);

  std::vector<std::uint64_t> checksum(opt.tenants, 0);
  std::vector<std::uint64_t> executed(opt.tenants, 0);
  std::vector<std::uint64_t> served(opt.tenants, 0);
  std::atomic<int> failures{0};

  std::vector<std::thread> submitters;
  submitters.reserve(opt.tenants);
  for (unsigned s = 0; s < opt.tenants; ++s) {
    submitters.emplace_back([&, s] {
      try {
        tdg::Runtime::Config cfg;
        cfg.pool = &pool;
        cfg.tenant.weight = opt.weights ? s + 1 : 1;
        tdg::Runtime rt(cfg);
        std::uint64_t sum = 0;  // serialized by the chain's inout clause
        for (int g = 0; g < opt.graphs; ++g) {
          if (opt.batch) rt.begin_batch();
          for (int k = 0; k < opt.chain; ++k) {
            const std::uint64_t t = term(s, g, k);
            rt.submit([&sum, t] { sum += t; },
                      {tdg::Depend::inout(&sum)});
          }
          if (opt.batch) rt.end_batch();
          // Periodic waits keep per-tenant backlog bounded while leaving
          // plenty of cross-tenant concurrency in the pool.
          if (g % 32 == 31) rt.taskwait();
        }
        rt.taskwait();
        checksum[s] = sum;
        executed[s] = rt.stats().tasks_executed;
        served[s] = pool.served(rt.tenant_id());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "tenant %u failed: %s\n", s, e.what());
        failures.fetch_add(1);
      }
    });
  }
  for (auto& t : submitters) t.join();

  int rc = failures.load() != 0 ? 1 : 0;
  const std::uint64_t per_tenant_tasks =
      static_cast<std::uint64_t>(opt.graphs) *
      static_cast<std::uint64_t>(opt.chain);
  for (unsigned s = 0; s < opt.tenants; ++s) {
    std::uint64_t expect = 0;
    for (int g = 0; g < opt.graphs; ++g) {
      for (int k = 0; k < opt.chain; ++k) expect += term(s, g, k);
    }
    const bool ok = checksum[s] == expect && executed[s] == per_tenant_tasks;
    if (!ok) rc = 1;
    std::printf("tenant %u: tasks=%llu checksum=%s pool_served=%llu%s\n", s,
                static_cast<unsigned long long>(executed[s]),
                checksum[s] == expect ? "ok" : "MISMATCH",
                static_cast<unsigned long long>(served[s]),
                ok ? "" : "  <-- FAILED");
  }
  if (pool.arena().live_blocks() != 0) {
    std::fprintf(stderr, "leak: %zu descriptors still live in the arena\n",
                 pool.arena().live_blocks());
    rc = 1;
  }
  std::printf("%s: %u tenants x %d graphs (chain %d, %u workers%s): %s\n",
              argv[0], opt.tenants, opt.graphs, opt.chain,
              pool.num_workers(), opt.batch ? ", batched" : "",
              rc == 0 ? "PASS" : "FAIL");
  return rc;
}
