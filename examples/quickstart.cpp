// Quickstart: the tdg dependent-task runtime in one file.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// Shows task submission with depend clauses (in/out/inout/inoutset),
// taskloop, taskwait, and the runtime's discovery statistics.
#include <cstdio>
#include <numeric>
#include <vector>

#include "core/tdg.hpp"

int main() {
  using tdg::Depend;

  // A team of 4 threads; the calling thread is the producer and helps out.
  tdg::Runtime rt({.num_threads = 4});

  // --- a small dataflow pipeline -------------------------------------------
  std::vector<double> a(1 << 16), b(1 << 16), c(1 << 16);

  // Producer task: writes `a`.
  rt.submit([&] { std::iota(a.begin(), a.end(), 0.0); },
            {Depend::out(a.data())});

  // Two independent readers of `a`, each writing its own output: they may
  // run concurrently once the producer finished.
  rt.submit(
      [&] {
        for (std::size_t i = 0; i < a.size(); ++i) b[i] = 2.0 * a[i];
      },
      {Depend::in(a.data()), Depend::out(b.data())});
  rt.submit(
      [&] {
        for (std::size_t i = 0; i < a.size(); ++i) c[i] = a[i] + 1.0;
      },
      {Depend::in(a.data()), Depend::out(c.data())});

  // A joining task ordered after both writers.
  double checksum = 0;
  rt.submit(
      [&] {
        for (std::size_t i = 0; i < a.size(); ++i) checksum += b[i] - c[i];
      },
      {Depend::in(b.data()), Depend::in(c.data()), Depend::out(&checksum)});

  rt.taskwait();
  std::printf("pipeline checksum: %.1f\n", checksum);

  // --- taskloop: blocked parallel loop with per-chunk dependences ----------
  constexpr int kBlocks = 8;
  rt.taskloop(
      0, static_cast<std::int64_t>(a.size()), kBlocks,
      [&](int, std::int64_t lo, std::int64_t, tdg::DependList& deps) {
        deps.push_back(Depend::inout(&a[static_cast<std::size_t>(lo)]));
      },
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
          a[static_cast<std::size_t>(i)] *= 0.5;
        }
      });

  // --- inoutset: concurrent writers, one consumer ---------------------------
  // The runtime aggregates the m writers behind a single redirect node, so
  // the consumer costs m+n edges instead of m*n (optimization (c)).
  std::vector<double> partial(kBlocks, 0.0);
  double total = 0;
  for (int k = 0; k < kBlocks; ++k) {
    rt.submit(
        [&partial, &a, k] {
          const std::size_t n = a.size() / kBlocks;
          double s = 0;
          for (std::size_t i = 0; i < n; ++i) {
            s += a[static_cast<std::size_t>(k) * n + i];
          }
          partial[static_cast<std::size_t>(k)] = s;
        },
        {Depend::in(&a[static_cast<std::size_t>(k) * (a.size() / kBlocks)]),
         Depend::inoutset(&partial)});
  }
  rt.submit(
      [&] {
        for (double p : partial) total += p;
      },
      {Depend::in(&partial)});
  rt.taskwait();
  std::printf("blocked sum: %.1f\n", total);

  const auto s = rt.stats();
  std::printf(
      "graph: %llu tasks, %llu edges (+%llu duplicates skipped, %llu "
      "pruned), %llu redirect nodes, discovered in %.1f us\n",
      static_cast<unsigned long long>(s.tasks_created),
      static_cast<unsigned long long>(s.discovery.edges_created),
      static_cast<unsigned long long>(s.discovery.edges_duplicate),
      static_cast<unsigned long long>(s.discovery.edges_pruned),
      static_cast<unsigned long long>(s.discovery.redirect_nodes),
      s.discovery_seconds() * 1e6);
  return 0;
}
