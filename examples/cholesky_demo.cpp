// Tiled Cholesky demo: one task per tile kernel (potrf/trsm/syrk/gemm),
// dependences on tile addresses, verified by reconstructing A = L L^T.
//
//   ./cholesky_demo [nt] [tile_size]
#include <cstdio>
#include <cstdlib>

#include "apps/cholesky/cholesky.hpp"
#include "core/tdg.hpp"

int main(int argc, char** argv) {
  namespace chol = tdg::apps::cholesky;

  chol::Config cfg;
  cfg.nt = argc > 1 ? std::atoi(argv[1]) : 8;
  cfg.b = argc > 2 ? std::atoi(argv[2]) : 32;
  std::printf("cholesky: %d x %d tiles of %d x %d (n = %lld)\n", cfg.nt,
              cfg.nt, cfg.b, cfg.b, static_cast<long long>(
                  static_cast<std::int64_t>(cfg.nt) * cfg.b));

  chol::TiledMatrix a(cfg.nt, cfg.b), orig(cfg.nt, cfg.b);
  a.fill_spd();
  orig.fill_spd();

  tdg::Runtime rt({.num_threads = 4});
  const double t0 = tdg::now_seconds();
  run_taskbased(rt, a, cfg, /*persistent=*/false);
  const double secs = tdg::now_seconds() - t0;

  const auto s = rt.stats();
  std::printf("factorized in %.1f ms: %llu tile kernels, %llu edges\n",
              secs * 1e3,
              static_cast<unsigned long long>(s.tasks_created),
              static_cast<unsigned long long>(s.discovery.edges_created +
                                              s.discovery.edges_pruned));
  std::printf("discovery: %llu duplicate edges eliminated, %llu redirect "
              "nodes inserted\n",
              static_cast<unsigned long long>(s.discovery.edges_duplicate),
              static_cast<unsigned long long>(s.discovery.redirect_nodes));
  std::printf("kernel count check: %llu expected\n",
              static_cast<unsigned long long>(chol::kernel_count(cfg.nt)));
  std::printf("max |L L^T - A| = %.3e\n", a.reconstruction_error(orig));
  return 0;
}
