// hpcg-mini demo: a conjugate-gradient solve on the 27-point stencil,
// task-parallel with blocked vectors and sub-blocked SpMV. The rhs is the
// operator's row sums, so the solver converges to x = 1 — printed as the
// max deviation. The task version reproduces the serial trajectory
// bit-for-bit (same blocked dot-product association).
//
//   ./hpcg_demo [nx] [cg_iterations] [tpl]
#include <cstdio>
#include <cstdlib>

#include "apps/hpcg/hpcg.hpp"
#include "core/tdg.hpp"

int main(int argc, char** argv) {
  namespace hpcg = tdg::apps::hpcg;

  hpcg::Config cfg;
  cfg.nx = cfg.ny = argc > 1 ? std::atoi(argv[1]) : 12;
  cfg.nz_global = cfg.nx;
  cfg.cg_iterations = argc > 2 ? std::atoi(argv[2]) : 30;
  cfg.tpl = argc > 3 ? std::atoi(argv[3]) : 8;
  cfg.nspmv = 4;

  hpcg::Problem prob = hpcg::build_problem(cfg);
  std::printf("hpcg-mini: %dx%dx%d lattice, %lld rows, %d CG iterations, "
              "tpl=%d\n",
              cfg.nx, cfg.ny, cfg.nz_global,
              static_cast<long long>(prob.nrows()), cfg.cg_iterations,
              cfg.tpl);

  hpcg::CgState ref(prob, cfg.tpl);
  run_reference(prob, ref, cfg);

  tdg::Runtime rt({.num_threads = 4});
  hpcg::CgState st(prob, cfg.tpl);
  const double t0 = tdg::now_seconds();
  run_taskbased(rt, prob, st, cfg, /*persistent=*/true);
  const double secs = tdg::now_seconds() - t0;

  std::printf("residual: ");
  for (std::size_t i = 0; i < st.residual_history.size(); i += 5) {
    std::printf("%.3e ", st.residual_history[i]);
  }
  std::printf("\nfinal residual %.3e, max |x-1| = %.3e  (%.1f ms)\n",
              st.residual_history.back(), solution_error(prob, st),
              secs * 1e3);

  bool identical = st.residual_history == ref.residual_history;
  std::printf("task trajectory identical to serial reference: %s\n",
              identical ? "yes" : "NO");
  const auto s = rt.stats();
  std::printf("graph: %llu tasks cached, %llu instances, %llu edges\n",
              static_cast<unsigned long long>(s.tasks_created),
              static_cast<unsigned long long>(s.tasks_executed),
              static_cast<unsigned long long>(s.discovery.edges_created));
  return 0;
}
