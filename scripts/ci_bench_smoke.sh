#!/usr/bin/env bash
# Scheduler spawn-throughput smoke test.
#
# Runs bench_micro_runtime's BM_SpawnExecuteThroughput/1 (single-thread
# spawn+execute: the pure discovery-path cost, no steal noise) and compares
# items_per_second against the recorded baseline in
# scripts/bench_baseline.txt. Fails if throughput drops below
# MIN_FRACTION (default 0.80) of the baseline.
#
# If the baseline file is missing, the current measurement is recorded as
# the new baseline and the check passes — commit the file to pin it.
# Re-record deliberately after a known perf change:
#   rm scripts/bench_baseline.txt && scripts/ci_bench_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."

build_dir=${BENCH_BUILD_DIR:-build}
baseline_file=scripts/bench_baseline.txt
min_fraction=${MIN_FRACTION:-0.80}
bench_filter='BM_SpawnExecuteThroughput/1$'

if [ ! -x "$build_dir"/bench/bench_micro_runtime ]; then
  echo "=== [bench-smoke] building $build_dir ==="
  cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "$build_dir" -j "$(nproc 2>/dev/null || echo 2)" \
        --target bench_micro_runtime
fi

echo "=== [bench-smoke] running $bench_filter ==="
json=$("$build_dir"/bench/bench_micro_runtime \
         --benchmark_filter="$bench_filter" \
         --benchmark_min_time=0.2 \
         --benchmark_format=json 2>/dev/null)

current=$(printf '%s' "$json" | python3 -c '
import json, sys
doc = json.load(sys.stdin)
bms = [b for b in doc["benchmarks"] if b.get("run_type", "iteration") == "iteration"]
assert bms, "benchmark produced no measurements"
print(bms[0]["items_per_second"])
')

if [ ! -f "$baseline_file" ]; then
  printf '%s\n' "$current" > "$baseline_file"
  echo "=== [bench-smoke] no baseline; recorded $current items/s ==="
  exit 0
fi

baseline=$(head -n1 "$baseline_file")
python3 - "$current" "$baseline" "$min_fraction" <<'EOF'
import sys
current, baseline, min_fraction = map(float, sys.argv[1:4])
ratio = current / baseline
print(f"=== [bench-smoke] spawn throughput {current:.3e} items/s "
      f"(baseline {baseline:.3e}, ratio {ratio:.2f}, floor {min_fraction}) ===")
if ratio < min_fraction:
    sys.exit(f"bench-smoke FAILED: spawn throughput regressed to "
             f"{ratio:.0%} of baseline (floor {min_fraction:.0%})")
EOF
