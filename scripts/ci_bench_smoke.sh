#!/usr/bin/env bash
# Scheduler and discovery throughput smoke test.
#
# Two single-thread gates, each compared against the baseline recorded in
# scripts/bench_baseline.txt and failing below MIN_FRACTION (default 0.80):
#   * bench_micro_runtime's BM_SpawnExecuteThroughput/1 — the pure
#     spawn+execute path (deque + slab allocator), no steal noise.
#   * bench_micro_discovery's BM_DiscoveryMixed/10000/1 — the dependency-
#     discovery path (address table + history lists) at the 10k-address mix.
#
# Baseline file format: line 1 is the bare spawn items/s (kept first for
# compatibility), subsequent lines are "<name> <items/s>". A missing line
# is recorded from the current measurement and the check passes — commit
# the file to pin it. Re-record deliberately after a known perf change:
#   rm scripts/bench_baseline.txt && scripts/ci_bench_smoke.sh
#
# Besides the gate, each run appends one record per benchmark to the
# trajectory files BENCH_runtime.json and BENCH_discovery.json (JSON
# arrays of {name, median_items_per_second, threads, git_sha, date}),
# and runs the strict-verified taskbench METG smoke sweep, bulk-recording
# its pattern x engine x config frontier into BENCH_metg.json
# ({name, value, unit, threads, git_sha, date}), so successive CI runs
# accumulate a perf history alongside pass/fail. The online race
# detector's sampled-vs-off overhead pairs are gated (RACE_MIN_RATIO
# default 0.95 for spawn+execute, RACE_CHAIN_MIN_RATIO default 0.80 for
# the pure-discovery chain) and recorded into BENCH_race.json the same
# way.
# Appending goes through scripts/record_trajectory.py (validation,
# dedupe, cap).
# BENCH_OUT_DIR (default: repo root) selects where they are written.
set -euo pipefail

cd "$(dirname "$0")/.."

build_dir=${BENCH_BUILD_DIR:-build}
baseline_file=scripts/bench_baseline.txt
min_fraction=${MIN_FRACTION:-0.80}
out_dir=${BENCH_OUT_DIR:-.}

# measure <binary> <filter>: print the median items_per_second over the
# benchmark's repetitions (the aggregate google-benchmark reports).
measure() {
  "$build_dir"/bench/"$1" \
      --benchmark_filter="$2" \
      --benchmark_min_time=0.2 \
      --benchmark_repetitions=3 \
      --benchmark_format=json 2>/dev/null | python3 -c '
import json, sys
doc = json.load(sys.stdin)
med = [b for b in doc["benchmarks"]
       if b.get("run_type") == "aggregate" and b.get("aggregate_name") == "median"]
if med:
    print(med[0]["items_per_second"])
else:
    bms = [b for b in doc["benchmarks"]
           if b.get("run_type", "iteration") == "iteration"]
    assert bms, "benchmark produced no measurements"
    vals = sorted(b["items_per_second"] for b in bms)
    print(vals[len(vals) // 2])
'
}

# record_trajectory <file> <bench-name> <threads> <median>: append one
# validated record to the JSON-array trajectory file (created on first
# use). See scripts/record_trajectory.py for the validation, dedupe and
# cap semantics.
record_trajectory() {
  python3 scripts/record_trajectory.py "$out_dir/$1" "$2" "$3" "$4"
}

# gate <name> <current>: compare against the named baseline line (the
# unnamed first line for "spawn"), recording it if absent.
gate() {
  local name=$1 current=$2 baseline
  if [ "$name" = spawn ]; then
    baseline=$(head -n1 "$baseline_file" 2>/dev/null || true)
  else
    baseline=$(awk -v n="$name" '$1 == n { print $2 }' "$baseline_file" \
                 2>/dev/null || true)
  fi
  if [ -z "$baseline" ]; then
    if [ "$name" = spawn ]; then
      printf '%s\n' "$current" >> "$baseline_file"
    else
      printf '%s %s\n' "$name" "$current" >> "$baseline_file"
    fi
    echo "=== [bench-smoke] no $name baseline; recorded $current items/s ==="
    return 0
  fi
  python3 - "$name" "$current" "$baseline" "$min_fraction" <<'EOF'
import sys
name = sys.argv[1]
current, baseline, min_fraction = map(float, sys.argv[2:5])
ratio = current / baseline
print(f"=== [bench-smoke] {name} throughput {current:.3e} items/s "
      f"(baseline {baseline:.3e}, ratio {ratio:.2f}, floor {min_fraction}) ===")
if ratio < min_fraction:
    sys.exit(f"bench-smoke FAILED: {name} throughput regressed to "
             f"{ratio:.0%} of baseline (floor {min_fraction:.0%})")
EOF
}

for target in bench_micro_runtime bench_micro_discovery bench_metg \
              bench_multitenant; do
  if [ ! -x "$build_dir"/bench/"$target" ]; then
    echo "=== [bench-smoke] building $build_dir/$target ==="
    cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
    cmake --build "$build_dir" -j "$(nproc 2>/dev/null || echo 2)" \
          --target "$target"
  fi
done

echo "=== [bench-smoke] running BM_SpawnExecuteThroughput/1 ==="
spawn=$(measure bench_micro_runtime 'BM_SpawnExecuteThroughput/1$')
echo "=== [bench-smoke] running BM_DiscoveryMixed/10000/1 ==="
discovery=$(measure bench_micro_discovery 'BM_DiscoveryMixed/10000/1$')

record_trajectory BENCH_runtime.json BM_SpawnExecuteThroughput/1 1 "$spawn"
record_trajectory BENCH_discovery.json BM_DiscoveryMixed/10000/1 1 \
                  "$discovery"

gate spawn "$spawn"
gate discovery "$discovery"

# taskbench METG smoke: the full pattern matrix at smoke scale on both
# engines, every real-runtime leg strict-verified, frontier records
# bulk-appended to BENCH_metg.json. The coverage check keeps the leg
# honest: losing a pattern or an engine from the sweep fails CI.
echo "=== [bench-smoke] running bench_metg --smoke (TDG_VERIFY=strict) ==="
metg_json=$(mktemp)
trap 'rm -f "$metg_json"' EXIT
TDG_VERIFY=strict "$build_dir"/bench/bench_metg --smoke --json "$metg_json"
python3 - "$metg_json" <<'EOF'
import json, sys
records = json.load(open(sys.argv[1]))
engines = {}
for r in records:
    parts = r["name"].split("/")  # taskbench/<pattern>/<engine>/<config>
    if parts[0] == "taskbench" and len(parts) == 4:
        engines.setdefault((parts[2], parts[3]), set()).add(parts[1])
for engine in ("real", "sim"):
    for config in ("opt", "unopt"):
        n = len(engines.get((engine, config), set()))
        print(f"=== [bench-smoke] taskbench coverage: {n} patterns "
              f"on {engine}/{config} ===")
        if n < 6:
            sys.exit(f"bench-smoke FAILED: only {n} patterns swept on "
                     f"{engine}/{config} (need >= 6)")
EOF
python3 scripts/record_trajectory.py --bulk "$metg_json" \
        "$out_dir/BENCH_metg.json"

# Multi-tenant smoke: batched submission must beat per-task submission on
# discovery throughput (the deferred per-submit publication costs), and
# the tenant-scaling sweep is recorded so the trajectory catches shared-
# pool contention regressions. BATCH_MIN_RATIO (default 1.15) is the gate.
batch_min_ratio=${BATCH_MIN_RATIO:-1.15}
echo "=== [bench-smoke] running bench_multitenant submission pair ==="
per_task=$(measure bench_multitenant 'BM_SubmitPerTask$')
batch=$(measure bench_multitenant 'BM_SubmitBatch$')
echo "=== [bench-smoke] running BM_MultitenantThroughput sweep ==="
mt2=$(measure bench_multitenant 'BM_MultitenantThroughput/2/real_time$')
mt8=$(measure bench_multitenant 'BM_MultitenantThroughput/8/real_time$')

mt_json=$(mktemp)
trap 'rm -f "$metg_json" "$mt_json"' EXIT
python3 - "$per_task" "$batch" "$mt2" "$mt8" > "$mt_json" <<'EOF'
import json, sys
per_task, batch, mt2, mt8 = map(float, sys.argv[1:5])
print(json.dumps([
    {"name": "multitenant/submit_per_task", "value": per_task,
     "unit": "tasks_per_second", "threads": 1},
    {"name": "multitenant/submit_batch", "value": batch,
     "unit": "tasks_per_second", "threads": 1},
    {"name": "multitenant/throughput_2_tenants", "value": mt2,
     "unit": "tasks_per_second", "threads": 2},
    {"name": "multitenant/throughput_8_tenants", "value": mt8,
     "unit": "tasks_per_second", "threads": 8},
]))
EOF
python3 scripts/record_trajectory.py --bulk "$mt_json" \
        "$out_dir/BENCH_multitenant.json"

python3 - "$per_task" "$batch" "$batch_min_ratio" <<'EOF'
import sys
per_task, batch, floor = map(float, sys.argv[1:4])
ratio = batch / per_task
print(f"=== [bench-smoke] batch submission {batch:.3e} tasks/s vs "
      f"per-task {per_task:.3e} (ratio {ratio:.2f}, floor {floor}) ===")
if ratio < floor:
    sys.exit(f"bench-smoke FAILED: batch submission only {ratio:.2f}x "
             f"per-task submit (floor {floor}x)")
EOF

# measure_best <binary> <filter>: best items_per_second over the
# repetitions. Used for the race-overhead ratio legs: a ratio gate wants
# the least-noisy estimate of each side's attainable throughput, and the
# max over repetitions converges on that much faster than the median.
measure_best() {
  "$build_dir"/bench/"$1" \
      --benchmark_filter="$2" \
      --benchmark_min_time=0.2 \
      --benchmark_repetitions=5 \
      --benchmark_format=json 2>/dev/null | python3 -c '
import json, sys
doc = json.load(sys.stdin)
bms = [b for b in doc["benchmarks"]
       if b.get("run_type", "iteration") == "iteration"]
assert bms, "benchmark produced no measurements"
print(max(b["items_per_second"] for b in bms))
'
}

# Online race-detector overhead gate, two legs, both with TDG_RACE=sample
# (every 16th task shadow-checked, clocks joined for all):
#   * spawn — BM_SpawnExecuteThroughput/1, the end-to-end spawn+execute
#     path. Floor RACE_MIN_RATIO (default 0.95): the "<5% overhead" claim.
#   * chain — BM_SubmitChain/1000, pure depend-discovery on zero-width
#     tasks, the detector's worst case (every submit is one clock join
#     with nothing to amortize against — no task body exists to hide it).
#     Floor RACE_CHAIN_MIN_RATIO (default 0.80, measured ~0.85 on the
#     scalar-prefix + pooled-record join path); the ratio is recorded so
#     the trajectory catches join-path regressions that the spawn leg
#     would hide.
# All four measurements land in BENCH_race.json.
race_min_ratio=${RACE_MIN_RATIO:-0.95}
race_chain_min_ratio=${RACE_CHAIN_MIN_RATIO:-0.80}
max2() { python3 -c 'import sys; print(max(map(float, sys.argv[1:])))' "$@"; }
# Two alternating off/sample rounds per leg: machine-speed drift between
# process invocations (frequency scaling, cache state) then lands on both
# modes instead of sinking whichever leg ran during the slow phase.
echo "=== [bench-smoke] running BM_SpawnExecuteThroughput/1 (race off/sample) ==="
so1=$(TDG_RACE=off measure_best bench_micro_runtime \
          'BM_SpawnExecuteThroughput/1$')
ss1=$(TDG_RACE=sample measure_best bench_micro_runtime \
          'BM_SpawnExecuteThroughput/1$')
so2=$(TDG_RACE=off measure_best bench_micro_runtime \
          'BM_SpawnExecuteThroughput/1$')
ss2=$(TDG_RACE=sample measure_best bench_micro_runtime \
          'BM_SpawnExecuteThroughput/1$')
race_spawn_off=$(max2 "$so1" "$so2")
race_spawn_sample=$(max2 "$ss1" "$ss2")
echo "=== [bench-smoke] running BM_SubmitChain/1000 (race off/sample) ==="
co1=$(TDG_RACE=off measure_best bench_micro_runtime 'BM_SubmitChain/1000$')
cs1=$(TDG_RACE=sample measure_best bench_micro_runtime \
          'BM_SubmitChain/1000$')
co2=$(TDG_RACE=off measure_best bench_micro_runtime 'BM_SubmitChain/1000$')
cs2=$(TDG_RACE=sample measure_best bench_micro_runtime \
          'BM_SubmitChain/1000$')
race_chain_off=$(max2 "$co1" "$co2")
race_chain_sample=$(max2 "$cs1" "$cs2")

race_json=$(mktemp)
trap 'rm -f "$metg_json" "$mt_json" "$race_json"' EXIT
python3 - "$race_spawn_off" "$race_spawn_sample" \
          "$race_chain_off" "$race_chain_sample" > "$race_json" <<'EOF'
import json, sys
spawn_off, spawn_sample, chain_off, chain_sample = map(float, sys.argv[1:5])
print(json.dumps([
    {"name": "race/spawn_off", "value": spawn_off,
     "unit": "tasks_per_second", "threads": 1},
    {"name": "race/spawn_sample", "value": spawn_sample,
     "unit": "tasks_per_second", "threads": 1},
    {"name": "race/chain_off", "value": chain_off,
     "unit": "tasks_per_second", "threads": 1},
    {"name": "race/chain_sample", "value": chain_sample,
     "unit": "tasks_per_second", "threads": 1},
]))
EOF
python3 scripts/record_trajectory.py --bulk "$race_json" \
        "$out_dir/BENCH_race.json"

python3 - "$race_spawn_off" "$race_spawn_sample" "$race_min_ratio" \
          "$race_chain_off" "$race_chain_sample" \
          "$race_chain_min_ratio" <<'EOF'
import sys
vals = list(map(float, sys.argv[1:7]))
for name, off, sample, floor in (("spawn", *vals[0:3]),
                                 ("chain", *vals[3:6])):
    ratio = sample / off
    print(f"=== [bench-smoke] race {name}: sample {sample:.3e} tasks/s vs "
          f"off {off:.3e} (ratio {ratio:.2f}, floor {floor}) ===")
    if ratio < floor:
        sys.exit(f"bench-smoke FAILED: race sampling costs {(1 - ratio):.0%}"
                 f" of {name} throughput (floor {floor})")
EOF
