#!/usr/bin/env bash
# Scheduler and discovery throughput smoke test.
#
# Two single-thread gates, each compared against the baseline recorded in
# scripts/bench_baseline.txt and failing below MIN_FRACTION (default 0.80):
#   * bench_micro_runtime's BM_SpawnExecuteThroughput/1 — the pure
#     spawn+execute path (deque + slab allocator), no steal noise.
#   * bench_micro_discovery's BM_DiscoveryMixed/10000/1 — the dependency-
#     discovery path (address table + history lists) at the 10k-address mix.
#
# Baseline file format: line 1 is the bare spawn items/s (kept first for
# compatibility), subsequent lines are "<name> <items/s>". A missing line
# is recorded from the current measurement and the check passes — commit
# the file to pin it. Re-record deliberately after a known perf change:
#   rm scripts/bench_baseline.txt && scripts/ci_bench_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."

build_dir=${BENCH_BUILD_DIR:-build}
baseline_file=scripts/bench_baseline.txt
min_fraction=${MIN_FRACTION:-0.80}

# measure <binary> <filter>: print items_per_second of the first iteration.
measure() {
  "$build_dir"/bench/"$1" \
      --benchmark_filter="$2" \
      --benchmark_min_time=0.2 \
      --benchmark_format=json 2>/dev/null | python3 -c '
import json, sys
doc = json.load(sys.stdin)
bms = [b for b in doc["benchmarks"] if b.get("run_type", "iteration") == "iteration"]
assert bms, "benchmark produced no measurements"
print(bms[0]["items_per_second"])
'
}

# gate <name> <current>: compare against the named baseline line (the
# unnamed first line for "spawn"), recording it if absent.
gate() {
  local name=$1 current=$2 baseline
  if [ "$name" = spawn ]; then
    baseline=$(head -n1 "$baseline_file" 2>/dev/null || true)
  else
    baseline=$(awk -v n="$name" '$1 == n { print $2 }' "$baseline_file" \
                 2>/dev/null || true)
  fi
  if [ -z "$baseline" ]; then
    if [ "$name" = spawn ]; then
      printf '%s\n' "$current" >> "$baseline_file"
    else
      printf '%s %s\n' "$name" "$current" >> "$baseline_file"
    fi
    echo "=== [bench-smoke] no $name baseline; recorded $current items/s ==="
    return 0
  fi
  python3 - "$name" "$current" "$baseline" "$min_fraction" <<'EOF'
import sys
name = sys.argv[1]
current, baseline, min_fraction = map(float, sys.argv[2:5])
ratio = current / baseline
print(f"=== [bench-smoke] {name} throughput {current:.3e} items/s "
      f"(baseline {baseline:.3e}, ratio {ratio:.2f}, floor {min_fraction}) ===")
if ratio < min_fraction:
    sys.exit(f"bench-smoke FAILED: {name} throughput regressed to "
             f"{ratio:.0%} of baseline (floor {min_fraction:.0%})")
EOF
}

for target in bench_micro_runtime bench_micro_discovery; do
  if [ ! -x "$build_dir"/bench/"$target" ]; then
    echo "=== [bench-smoke] building $build_dir/$target ==="
    cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
    cmake --build "$build_dir" -j "$(nproc 2>/dev/null || echo 2)" \
          --target "$target"
  fi
done

echo "=== [bench-smoke] running BM_SpawnExecuteThroughput/1 ==="
spawn=$(measure bench_micro_runtime 'BM_SpawnExecuteThroughput/1$')
echo "=== [bench-smoke] running BM_DiscoveryMixed/10000/1 ==="
discovery=$(measure bench_micro_discovery 'BM_DiscoveryMixed/10000/1$')

gate spawn "$spawn"
gate discovery "$discovery"
