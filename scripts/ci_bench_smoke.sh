#!/usr/bin/env bash
# Scheduler and discovery throughput smoke test.
#
# Two single-thread gates, each compared against the baseline recorded in
# scripts/bench_baseline.txt and failing below MIN_FRACTION (default 0.80):
#   * bench_micro_runtime's BM_SpawnExecuteThroughput/1 — the pure
#     spawn+execute path (deque + slab allocator), no steal noise.
#   * bench_micro_discovery's BM_DiscoveryMixed/10000/1 — the dependency-
#     discovery path (address table + history lists) at the 10k-address mix.
#
# Baseline file format: line 1 is the bare spawn items/s (kept first for
# compatibility), subsequent lines are "<name> <items/s>". A missing line
# is recorded from the current measurement and the check passes — commit
# the file to pin it. Re-record deliberately after a known perf change:
#   rm scripts/bench_baseline.txt && scripts/ci_bench_smoke.sh
#
# Besides the gate, each run appends one record per benchmark to the
# trajectory files BENCH_runtime.json and BENCH_discovery.json (JSON
# arrays of {name, median_items_per_second, threads, git_sha, date}),
# so successive CI runs accumulate a perf history alongside pass/fail.
# BENCH_OUT_DIR (default: repo root) selects where they are written.
set -euo pipefail

cd "$(dirname "$0")/.."

build_dir=${BENCH_BUILD_DIR:-build}
baseline_file=scripts/bench_baseline.txt
min_fraction=${MIN_FRACTION:-0.80}
out_dir=${BENCH_OUT_DIR:-.}

# measure <binary> <filter>: print the median items_per_second over the
# benchmark's repetitions (the aggregate google-benchmark reports).
measure() {
  "$build_dir"/bench/"$1" \
      --benchmark_filter="$2" \
      --benchmark_min_time=0.2 \
      --benchmark_repetitions=3 \
      --benchmark_format=json 2>/dev/null | python3 -c '
import json, sys
doc = json.load(sys.stdin)
med = [b for b in doc["benchmarks"]
       if b.get("run_type") == "aggregate" and b.get("aggregate_name") == "median"]
if med:
    print(med[0]["items_per_second"])
else:
    bms = [b for b in doc["benchmarks"]
           if b.get("run_type", "iteration") == "iteration"]
    assert bms, "benchmark produced no measurements"
    vals = sorted(b["items_per_second"] for b in bms)
    print(vals[len(vals) // 2])
'
}

# record_trajectory <file> <bench-name> <threads> <median>: append one
# record to the JSON-array trajectory file (created on first use). The
# new record is validated before it is written (a NaN median or broken
# measurement fails the run rather than poisoning the history); a corrupt
# existing file is quarantined to <file>.corrupt and malformed existing
# records are dropped with a warning, so the file stays parseable JSON.
record_trajectory() {
  python3 - "$out_dir/$1" "$2" "$3" "$4" <<'EOF'
import datetime, json, math, os, subprocess, sys
path, name, threads, median = sys.argv[1:5]
try:
    threads = int(threads)
    median = float(median)
except ValueError as e:
    sys.exit(f"bench-smoke FAILED: unparseable measurement for {name}: {e}")
if not math.isfinite(median) or median <= 0:
    sys.exit(f"bench-smoke FAILED: bad median for {name}: {median}")
if threads <= 0:
    sys.exit(f"bench-smoke FAILED: bad thread count for {name}: {threads}")
# Record names carry the thread count as their final "/N" segment (the
# google-benchmark convention); normalize so every record is consistent.
if not name.endswith(f"/{threads}"):
    name = f"{name}/{threads}"
try:
    sha = subprocess.run(["git", "rev-parse", "HEAD"], capture_output=True,
                         text=True, check=True).stdout.strip()
except Exception:
    sha = "unknown"
records = []
if os.path.exists(path):
    try:
        with open(path) as f:
            records = json.load(f)
        if not isinstance(records, list):
            raise ValueError("trajectory root is not a JSON array")
    except ValueError as e:
        quarantine = path + ".corrupt"
        os.replace(path, quarantine)
        print(f"=== [bench-smoke] WARNING: {path} invalid ({e}); "
              f"quarantined to {quarantine} ===")
        records = []
valid = []
for r in records:
    ok = (isinstance(r, dict) and isinstance(r.get("name"), str)
          and isinstance(r.get("threads"), int)
          and isinstance(r.get("median_items_per_second"), (int, float))
          and math.isfinite(r["median_items_per_second"]))
    if ok:
        valid.append(r)
    else:
        print(f"=== [bench-smoke] WARNING: dropping malformed record "
              f"{r!r} ===")
records = valid
records.append({
    "name": name,
    "median_items_per_second": median,
    "threads": threads,
    "git_sha": sha,
    "date": datetime.datetime.now(datetime.timezone.utc).isoformat(),
})
with open(path, "w") as f:
    json.dump(records, f, indent=2)
    f.write("\n")
print(f"=== [bench-smoke] appended {name} to {path} "
      f"({len(records)} record(s)) ===")
EOF
}

# gate <name> <current>: compare against the named baseline line (the
# unnamed first line for "spawn"), recording it if absent.
gate() {
  local name=$1 current=$2 baseline
  if [ "$name" = spawn ]; then
    baseline=$(head -n1 "$baseline_file" 2>/dev/null || true)
  else
    baseline=$(awk -v n="$name" '$1 == n { print $2 }' "$baseline_file" \
                 2>/dev/null || true)
  fi
  if [ -z "$baseline" ]; then
    if [ "$name" = spawn ]; then
      printf '%s\n' "$current" >> "$baseline_file"
    else
      printf '%s %s\n' "$name" "$current" >> "$baseline_file"
    fi
    echo "=== [bench-smoke] no $name baseline; recorded $current items/s ==="
    return 0
  fi
  python3 - "$name" "$current" "$baseline" "$min_fraction" <<'EOF'
import sys
name = sys.argv[1]
current, baseline, min_fraction = map(float, sys.argv[2:5])
ratio = current / baseline
print(f"=== [bench-smoke] {name} throughput {current:.3e} items/s "
      f"(baseline {baseline:.3e}, ratio {ratio:.2f}, floor {min_fraction}) ===")
if ratio < min_fraction:
    sys.exit(f"bench-smoke FAILED: {name} throughput regressed to "
             f"{ratio:.0%} of baseline (floor {min_fraction:.0%})")
EOF
}

for target in bench_micro_runtime bench_micro_discovery; do
  if [ ! -x "$build_dir"/bench/"$target" ]; then
    echo "=== [bench-smoke] building $build_dir/$target ==="
    cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
    cmake --build "$build_dir" -j "$(nproc 2>/dev/null || echo 2)" \
          --target "$target"
  fi
done

echo "=== [bench-smoke] running BM_SpawnExecuteThroughput/1 ==="
spawn=$(measure bench_micro_runtime 'BM_SpawnExecuteThroughput/1$')
echo "=== [bench-smoke] running BM_DiscoveryMixed/10000/1 ==="
discovery=$(measure bench_micro_discovery 'BM_DiscoveryMixed/10000/1$')

record_trajectory BENCH_runtime.json BM_SpawnExecuteThroughput/1 1 "$spawn"
record_trajectory BENCH_discovery.json BM_DiscoveryMixed/10000/1 1 \
                  "$discovery"

gate spawn "$spawn"
gate discovery "$discovery"
