#!/usr/bin/env bash
# Chaos soak: run the example universes under seeded loss+kill fault plans
# and assert the resilience machinery both engages and terminates.
#
# Matrix: canned plans {0,1,2} x recovery {poison,shrink} x app
# {lulesh,cholesky}, every cell with TDG_VERIFY=strict and a wall-clock
# cap (the runtime watchdog is the in-process backstop; `timeout` makes a
# wedged universe fail CI instead of hanging it). chaos_soak exits
# nonzero unless every surviving rank stayed sound. Summed over the
# injected cells, comm.drops_injected, comm.retransmits and
# universe.ranks_failed must all be > 0 — proving the loss,
# retransmission and failure-detection paths actually ran (per-cell
# totals can be legitimately small when a kill collapses a run early,
# and each cell must additionally report ranks_failed > 0 since every
# plan schedules a kill). Two clean control runs (--plan none) must
# report every resilience counter exactly zero.
#
# Usage: scripts/ci_chaos.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."

build_dir=${1:-${CHAOS_BUILD_DIR:-build}}
cap_seconds=${CHAOS_CAP_SECONDS:-120}
soak="$build_dir"/examples/chaos_soak

if [ ! -x "$soak" ]; then
  echo "=== [chaos] building chaos_soak ==="
  cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  cmake --build "$build_dir" -j "$(nproc 2>/dev/null || echo 2)" \
        --target chaos_soak
fi

# counter <output> <name>: extract the machine-checkable "<name>=<value>"
# line chaos_soak prints after the per-rank report.
counter() {
  printf '%s\n' "$1" | awk -F= -v n="$2" '$1 == n { print $2; found = 1 }
                                          END { if (!found) exit 1 }'
}

failures=0
total_drops=0
total_retrans=0
total_rfailed=0

run_cell() {
  local app=$1 mode=$2 plan=$3 out rc
  echo "=== [chaos] app=$app mode=$mode plan=$plan ==="
  set +e
  out=$(TDG_VERIFY=strict timeout "$cap_seconds" \
        "$soak" --app "$app" --mode "$mode" --plan "$plan" 2>&1)
  rc=$?
  set -e
  printf '%s\n' "$out" | sed 's/^/    /'
  if [ "$rc" -eq 124 ]; then
    echo "    FAIL: exceeded ${cap_seconds}s wall-clock cap"
    failures=$((failures + 1))
    return
  fi
  if [ "$rc" -ne 0 ]; then
    echo "    FAIL: chaos_soak exited $rc (unsound or crashed)"
    failures=$((failures + 1))
    return
  fi
  local drops retrans rfailed
  drops=$(counter "$out" comm.drops_injected)
  retrans=$(counter "$out" comm.retransmits)
  rfailed=$(counter "$out" universe.ranks_failed)
  if [ "$plan" = none ]; then
    local kills dups
    kills=$(counter "$out" comm.kills_injected)
    dups=$(counter "$out" comm.dup_suppressed)
    if [ "$drops" != 0 ] || [ "$retrans" != 0 ] || [ "$rfailed" != 0 ] ||
       [ "$kills" != 0 ] || [ "$dups" != 0 ]; then
      echo "    FAIL: clean run has nonzero resilience counters"
      failures=$((failures + 1))
    fi
  else
    total_drops=$((total_drops + drops))
    total_retrans=$((total_retrans + retrans))
    total_rfailed=$((total_rfailed + rfailed))
    if [ "$rfailed" = 0 ]; then
      echo "    FAIL: plan schedules a kill but no rank failure detected"
      failures=$((failures + 1))
    fi
  fi
}

for plan in 0 1 2; do
  for mode in poison shrink; do
    for app in lulesh cholesky; do
      run_cell "$app" "$mode" "$plan"
    done
  done
done

# Clean controls: injection off, reliable delivery and detector off — the
# resilience layers must be structurally absent, not merely quiet.
run_cell lulesh poison none
run_cell cholesky shrink none

echo "=== [chaos] matrix totals: drops=$total_drops" \
     "retransmits=$total_retrans ranks_failed=$total_rfailed ==="
if [ "$total_drops" = 0 ] || [ "$total_retrans" = 0 ] ||
   [ "$total_rfailed" = 0 ]; then
  echo "=== [chaos] FAILED: a resilience path went unexercised across" \
       "the whole matrix ==="
  exit 1
fi
if [ "$failures" -ne 0 ]; then
  echo "=== [chaos] FAILED: $failures cell(s) ==="
  exit 1
fi
echo "=== [chaos] all cells passed ==="
