#!/usr/bin/env bash
# Multi-tenant soak under the sanitizers: N submitter threads, each owning
# one tenant runtime on a shared WorkerPool, pump thousands of serialized
# chains through the pool with TDG_VERIFY=strict — per-tenant checksums
# catch lost/duplicated tasks, the strict verifier catches unsound TDGs,
# TSan catches ordering bugs in the pool's pin/steal/park protocols and
# ASan catches descriptor lifetime bugs across tenant teardown.
#
# Usage: scripts/ci_soak.sh [thread|address]...
# With no arguments both sanitizers run. Reuses (or builds) the same
# build-tsan/ and build-asan/ trees as scripts/ci_sanitize.sh. Scale
# knobs: SOAK_TENANTS (default 8), SOAK_GRAPHS (default 1000).
set -euo pipefail

cd "$(dirname "$0")/.."

sanitizers=("$@")
if [ ${#sanitizers[@]} -eq 0 ]; then
  sanitizers=(thread address)
fi

jobs=$(nproc 2>/dev/null || echo 2)
tenants=${SOAK_TENANTS:-8}
graphs=${SOAK_GRAPHS:-1000}

for san in "${sanitizers[@]}"; do
  case "$san" in
    thread)  dir=build-tsan ;;
    address) dir=build-asan ;;
    *) echo "unknown sanitizer '$san' (expected thread|address)" >&2
       exit 2 ;;
  esac

  if [ ! -d "$dir" ]; then
    echo "=== [soak/$san] configure ($dir) ==="
    cmake -B "$dir" -S . -DTDG_SANITIZE="$san" \
          -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  fi
  # Always build: incremental when the tree is fresh, and a standalone
  # invocation never soaks binaries stale against the working tree.
  echo "=== [soak/$san] build ($dir) ==="
  cmake --build "$dir" -j "$jobs" \
        --target multitenant_soak test_deque test_multitenant

  # Three configurations: per-task submission, batched submission, and
  # weighted tenants — the batch and fairness paths have their own
  # publication orderings worth soaking separately.
  for args in "" "--batch 1" "--weights 1"; do
    echo "=== [soak/$san] multitenant_soak $tenants x $graphs $args ==="
    # shellcheck disable=SC2086
    TDG_VERIFY=strict \
    TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
    ASAN_OPTIONS="detect_leaks=1" \
      "$dir"/examples/multitenant_soak --tenants "$tenants" \
            --graphs "$graphs" $args
  done

  echo "=== [soak/$san] inject-queue + multitenant unit stress ==="
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  ASAN_OPTIONS="detect_leaks=1" \
    "$dir"/tests/test_deque --gtest_filter='InjectQueueStress.*' \
          --gtest_repeat=3
  TDG_VERIFY=strict \
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  ASAN_OPTIONS="detect_leaks=1" \
    "$dir"/tests/test_multitenant
done

echo "=== multi-tenant soak passed: ${sanitizers[*]} ==="
