#!/usr/bin/env bash
# End-to-end smoke test of the observability layer: build, run an example
# with TDG_TRACE=perfetto + TDG_METRICS=dump, validate that the emitted
# trace is well-formed JSON (python3, when available), then run the
# tdg-trace CLI (summary / critpath / export round-trip) on it.
#
# The distributed section then runs distributed_halo on 4 simulated ranks
# with comm tracing + telemetry on, stitches the per-rank files with
# `tdg-trace merge`, and asserts the merged view reports cross-rank
# message edges and nonzero communication wait.
#
# Usage: scripts/ci_trace_smoke.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."

dir=${1:-build}
jobs=$(nproc 2>/dev/null || echo 2)

echo "=== [trace-smoke] configure ($dir) ==="
cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null

echo "=== [trace-smoke] build ==="
cmake --build "$dir" -j "$jobs" --target cholesky_demo distributed_halo \
      tdg-trace

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
trace="$workdir/trace.json"

echo "=== [trace-smoke] run cholesky_demo with TDG_TRACE=perfetto ==="
(cd "$workdir" && TDG_TRACE=perfetto TDG_TRACE_FILE="$trace" \
    TDG_METRICS=dump "$OLDPWD/$dir/examples/cholesky_demo" 8 32)
[ -s "$trace" ] || { echo "trace file was not written" >&2; exit 1; }

if command -v python3 >/dev/null 2>&1; then
  echo "=== [trace-smoke] validate trace JSON ==="
  python3 - "$trace" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
slices = [e for e in events if e.get("ph") == "X"]
assert slices, "no task slices in trace"
assert any(e.get("ph") == "M" for e in events), "no metadata events"
assert any(e.get("ph") == "s" for e in events), "no flow events"
for s in slices:
    assert "ts" in s and "dur" in s and "name" in s, f"malformed slice: {s}"
print(f"trace ok: {len(events)} events, {len(slices)} task slices")
EOF
else
  echo "=== [trace-smoke] python3 not found; skipping JSON validation ==="
fi

echo "=== [trace-smoke] tdg-trace summary ==="
"$dir/tools/tdg-trace" summary "$trace"

echo "=== [trace-smoke] tdg-trace critpath ==="
"$dir/tools/tdg-trace" critpath "$trace" -n 5

echo "=== [trace-smoke] tdg-trace export round-trip ==="
"$dir/tools/tdg-trace" export "$trace" --format tsv -o "$workdir/trace.tsv"
"$dir/tools/tdg-trace" summary "$workdir/trace.tsv" >/dev/null
"$dir/tools/tdg-trace" export "$workdir/trace.tsv" -o "$workdir/back.json"
"$dir/tools/tdg-trace" critpath "$workdir/back.json" -n 1 >/dev/null

echo "=== [trace-smoke] distributed_halo on 4 ranks with tracing ==="
# Each rank's runtime writes its own sequence-numbered trace file
# (dist.json, dist.json.1, ...); telemetry dumps a per-rank time-series.
(cd "$workdir" && TDG_TRACE=perfetto TDG_TRACE_FILE="$workdir/dist.json" \
    TDG_TELEMETRY=dump TDG_TELEMETRY_FILE="$workdir/telemetry.json" \
    TDG_TELEMETRY_PERIOD_MS=1 \
    "$OLDPWD/$dir/examples/distributed_halo" 4 2048 6)
rank_traces=("$workdir"/dist.json*)
[ "${#rank_traces[@]}" -eq 4 ] || {
  echo "expected 4 per-rank trace files, got ${#rank_traces[@]}" >&2
  exit 1
}

echo "=== [trace-smoke] merge per-rank traces ==="
merged="$workdir/merged.json"
"$dir/tools/tdg-trace" merge "${rank_traces[@]}" -o "$merged" \
    2> "$workdir/merge.log"
cat "$workdir/merge.log"
grep -q "matched [1-9]" "$workdir/merge.log" || {
  echo "merge matched no send/recv pairs" >&2; exit 1;
}

echo "=== [trace-smoke] merged summary / timeline / critpath ==="
"$dir/tools/tdg-trace" summary "$merged" | tee "$workdir/summary.log"
"$dir/tools/tdg-trace" timeline "$merged" | tee "$workdir/timeline.log"
"$dir/tools/tdg-trace" critpath "$merged" -n 3 > "$workdir/critpath.log"

# Cross-rank edges made it into the merged graph...
edges=$(sed -n 's/.*cross-rank message edges: \([0-9]*\).*/\1/p' \
        "$workdir/summary.log")
[ -n "$edges" ] && [ "$edges" -gt 0 ] || {
  echo "merged summary reports no cross-rank message edges" >&2; exit 1;
}
# ...and the timeline attributes nonzero communication wait.
grep -q "comm wait" "$workdir/timeline.log" || {
  echo "timeline lacks the comm-wait column" >&2; exit 1;
}
if grep -q "comm wait: 0.0 us" "$workdir/timeline.log"; then
  echo "timeline reports zero communication wait" >&2; exit 1
fi

if command -v python3 >/dev/null 2>&1; then
  echo "=== [trace-smoke] validate merged trace + telemetry JSON ==="
  python3 - "$merged" "$workdir/telemetry.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
comm = [e for e in events if e.get("cat") == "comm"]
msg = [e for e in events if e.get("cat") == "msg"]
pids = {e["pid"] for e in events if e.get("ph") == "X"}
assert comm, "no comm slices in merged trace"
assert msg, "no cross-rank message flows in merged trace"
assert len(pids) >= 4, f"expected >= 4 rank tracks, got {sorted(pids)}"
with open(sys.argv[2]) as f:
    telem = json.load(f)
ranks = telem["ranks"]
assert len(ranks) == 4, f"expected 4 telemetry ranks, got {len(ranks)}"
for r in ranks:
    assert r["samples"], f"rank {r['rank']} has no telemetry samples"
print(f"merged trace ok: {len(comm)} comm slices, {len(msg)} message "
      f"flows, {len(ranks)} telemetry ranks")
EOF
else
  echo "=== [trace-smoke] python3 not found; skipping JSON validation ==="
fi

echo "=== trace smoke passed ==="
