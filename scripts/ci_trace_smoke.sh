#!/usr/bin/env bash
# End-to-end smoke test of the observability layer: build, run an example
# with TDG_TRACE=perfetto + TDG_METRICS=dump, validate that the emitted
# trace is well-formed JSON (python3, when available), then run the
# tdg-trace CLI (summary / critpath / export round-trip) on it.
#
# Usage: scripts/ci_trace_smoke.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."

dir=${1:-build}
jobs=$(nproc 2>/dev/null || echo 2)

echo "=== [trace-smoke] configure ($dir) ==="
cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null

echo "=== [trace-smoke] build ==="
cmake --build "$dir" -j "$jobs" --target cholesky_demo tdg-trace

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
trace="$workdir/trace.json"

echo "=== [trace-smoke] run cholesky_demo with TDG_TRACE=perfetto ==="
(cd "$workdir" && TDG_TRACE=perfetto TDG_TRACE_FILE="$trace" \
    TDG_METRICS=dump "$OLDPWD/$dir/examples/cholesky_demo" 8 32)
[ -s "$trace" ] || { echo "trace file was not written" >&2; exit 1; }

if command -v python3 >/dev/null 2>&1; then
  echo "=== [trace-smoke] validate trace JSON ==="
  python3 - "$trace" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
events = doc["traceEvents"]
slices = [e for e in events if e.get("ph") == "X"]
assert slices, "no task slices in trace"
assert any(e.get("ph") == "M" for e in events), "no metadata events"
assert any(e.get("ph") == "s" for e in events), "no flow events"
for s in slices:
    assert "ts" in s and "dur" in s and "name" in s, f"malformed slice: {s}"
print(f"trace ok: {len(events)} events, {len(slices)} task slices")
EOF
else
  echo "=== [trace-smoke] python3 not found; skipping JSON validation ==="
fi

echo "=== [trace-smoke] tdg-trace summary ==="
"$dir/tools/tdg-trace" summary "$trace"

echo "=== [trace-smoke] tdg-trace critpath ==="
"$dir/tools/tdg-trace" critpath "$trace" -n 5

echo "=== [trace-smoke] tdg-trace export round-trip ==="
"$dir/tools/tdg-trace" export "$trace" --format tsv -o "$workdir/trace.tsv"
"$dir/tools/tdg-trace" summary "$workdir/trace.tsv" >/dev/null
"$dir/tools/tdg-trace" export "$workdir/trace.tsv" -o "$workdir/back.json"
"$dir/tools/tdg-trace" critpath "$workdir/back.json" -n 1 >/dev/null

echo "=== trace smoke passed ==="
