#!/usr/bin/env python3
"""Append benchmark records to a JSON-array trajectory file.

Two modes:

  record_trajectory.py FILE NAME THREADS ITEMS_PER_SECOND
      Append a single google-benchmark-style throughput record
      ({name, median_items_per_second, threads, git_sha, date}); NAME is
      normalized to carry "/THREADS" as its final segment.

  record_trajectory.py --bulk SRC FILE
      Append every record of SRC (a JSON array of {name, value, unit,
      threads} objects, e.g. bench_metg --json output) as generalized
      records ({name, value, unit, threads, git_sha, date}).

Every new record is validated before it is written: a NaN/non-positive
value or a bad thread count fails the run rather than poisoning the
history. A corrupt existing FILE is quarantined to FILE.corrupt and
malformed existing records are dropped with a warning, so the file stays
parseable JSON.

The trajectory is also kept bounded and duplicate-free: only the latest
record per (name, threads, git_sha) survives — re-running CI on the same
commit updates its record in place instead of appending forever — and the
file is capped to the most recent TRAJECTORY_CAP records (default 400).
"""

import datetime
import json
import math
import os
import subprocess
import sys

CAP = int(os.environ.get("TRAJECTORY_CAP", "400"))


def fail(msg):
    sys.exit(f"record-trajectory FAILED: {msg}")


def git_sha():
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            check=True).stdout.strip()
    except Exception:
        return "unknown"


def load_existing(path):
    """Existing records of `path`, quarantining a corrupt file and dropping
    (with a warning) records that fit neither accepted shape."""
    records = []
    if os.path.exists(path):
        try:
            with open(path) as f:
                records = json.load(f)
            if not isinstance(records, list):
                raise ValueError("trajectory root is not a JSON array")
        except ValueError as e:
            quarantine = path + ".corrupt"
            os.replace(path, quarantine)
            print(f"=== [record-trajectory] WARNING: {path} invalid ({e}); "
                  f"quarantined to {quarantine} ===")
            records = []
    valid = []
    for r in records:
        ok = (isinstance(r, dict) and isinstance(r.get("name"), str)
              and isinstance(r.get("threads"), int))
        if ok:
            if "median_items_per_second" in r:  # legacy throughput shape
                v = r["median_items_per_second"]
            else:  # generalized {value, unit} shape
                v = r.get("value")
                ok = isinstance(r.get("unit"), str)
            ok = ok and isinstance(v, (int, float)) and math.isfinite(v)
        if ok:
            valid.append(r)
        else:
            print(f"=== [record-trajectory] WARNING: dropping malformed "
                  f"record {r!r} ===")
    return valid


def dedupe_and_cap(records):
    """Keep the latest record per (name, threads, git_sha), then the most
    recent CAP records. Later entries in the file are newer."""
    latest = {}
    for i, r in enumerate(records):
        latest[(r["name"], r["threads"], r.get("git_sha", "unknown"))] = i
    keep = sorted(latest.values())
    records = [records[i] for i in keep]
    if len(records) > CAP:
        print(f"=== [record-trajectory] capping trajectory to the newest "
              f"{CAP} of {len(records)} records ===")
        records = records[-CAP:]
    return records


def store(path, records, appended):
    records = dedupe_and_cap(records)
    with open(path, "w") as f:
        json.dump(records, f, indent=2)
        f.write("\n")
    print(f"=== [record-trajectory] appended {appended} record(s) to "
          f"{path} ({len(records)} total) ===")


def check_value(name, value):
    if not math.isfinite(value) or value <= 0:
        fail(f"bad value for {name}: {value}")


def check_threads(name, threads):
    if threads <= 0:
        fail(f"bad thread count for {name}: {threads}")


def main_single(path, name, threads, median):
    try:
        threads = int(threads)
        median = float(median)
    except ValueError as e:
        fail(f"unparseable measurement for {name}: {e}")
    check_value(name, median)
    check_threads(name, threads)
    # Record names carry the thread count as their final "/N" segment (the
    # google-benchmark convention); normalize so every record is consistent.
    if not name.endswith(f"/{threads}"):
        name = f"{name}/{threads}"
    records = load_existing(path)
    records.append({
        "name": name,
        "median_items_per_second": median,
        "threads": threads,
        "git_sha": git_sha(),
        "date": datetime.datetime.now(datetime.timezone.utc).isoformat(),
    })
    store(path, records, appended=1)


def main_bulk(src, path):
    try:
        with open(src) as f:
            fresh = json.load(f)
    except (OSError, ValueError) as e:
        fail(f"cannot read bulk source {src}: {e}")
    if not isinstance(fresh, list) or not fresh:
        fail(f"bulk source {src} is not a non-empty JSON array")
    sha = git_sha()
    date = datetime.datetime.now(datetime.timezone.utc).isoformat()
    records = load_existing(path)
    for r in fresh:
        if not (isinstance(r, dict) and isinstance(r.get("name"), str)
                and isinstance(r.get("unit"), str)
                and isinstance(r.get("threads"), int)
                and isinstance(r.get("value"), (int, float))):
            fail(f"malformed bulk record {r!r}")
        check_value(r["name"], float(r["value"]))
        check_threads(r["name"], r["threads"])
        records.append({
            "name": r["name"],
            "value": float(r["value"]),
            "unit": r["unit"],
            "threads": r["threads"],
            "git_sha": sha,
            "date": date,
        })
    store(path, records, appended=len(fresh))


def main(argv):
    if len(argv) == 3 and argv[0] == "--bulk":
        main_bulk(argv[1], argv[2])
    elif len(argv) == 4 and argv[0] != "--bulk":
        main_single(*argv)
    else:
        sys.exit(__doc__)


if __name__ == "__main__":
    main(sys.argv[1:])
