#!/usr/bin/env bash
# Run the tier-1 test suite under ThreadSanitizer, AddressSanitizer and
# UndefinedBehaviorSanitizer.
#
# Usage: scripts/ci_sanitize.sh [thread|address|undefined]...
# With no arguments, all three sanitizers are run in sequence. Each
# sanitizer gets its own build tree (build-tsan/, build-asan/,
# build-ubsan/), configured with -DTDG_SANITIZE=<kind>; a nonzero exit
# from either configure, build, or ctest fails the script.
set -euo pipefail

cd "$(dirname "$0")/.."

sanitizers=("$@")
if [ ${#sanitizers[@]} -eq 0 ]; then
  sanitizers=(thread address undefined)
fi

jobs=$(nproc 2>/dev/null || echo 2)

for san in "${sanitizers[@]}"; do
  case "$san" in
    thread)    dir=build-tsan ;;
    address)   dir=build-asan ;;
    undefined) dir=build-ubsan ;;
    *) echo "unknown sanitizer '$san' (expected thread|address|undefined)" >&2
       exit 2 ;;
  esac

  echo "=== [$san] configure ($dir) ==="
  cmake -B "$dir" -S . -DTDG_SANITIZE="$san" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null

  echo "=== [$san] build ==="
  cmake --build "$dir" -j "$jobs"

  echo "=== [$san] ctest ==="
  # Sanitized binaries are several times slower; scale the per-test budget.
  # halt_on_error makes TSan reports fail the run instead of only logging.
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  ASAN_OPTIONS="detect_leaks=1" \
  UBSAN_OPTIONS="print_stacktrace=1 halt_on_error=1" \
    ctest --test-dir "$dir" --output-on-failure -j "$jobs" \
          --timeout 900

  echo "=== [$san] Chase-Lev deque stress ==="
  # The owner/thief stress is the one test whose interleavings matter most
  # under TSan; run it explicitly (and repeated) so a CI log always shows
  # it executed, independent of ctest sharding.
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  ASAN_OPTIONS="detect_leaks=1" \
  UBSAN_OPTIONS="print_stacktrace=1 halt_on_error=1" \
    "$dir"/tests/test_deque --gtest_filter='ChaseLevDequeStress.*' \
          --gtest_repeat=3

  echo "=== [$san] discovery data-layer stress ==="
  # Table churn, 10k-address generations and entry-lifetime accounting:
  # the paths where a stale lookup-cache hit or a missed release would
  # surface as a use-after-free / leak only under the sanitizers.
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  ASAN_OPTIONS="detect_leaks=1" \
  UBSAN_OPTIONS="print_stacktrace=1 halt_on_error=1" \
    "$dir"/tests/test_discovery --gtest_filter='DiscoveryTable.*' \
          --gtest_repeat=3
done

echo "=== sanitizer runs passed: ${sanitizers[*]} ==="

# Multi-tenant soak: many tenants on one shared WorkerPool under TSan and
# ASan with TDG_VERIFY=strict (reuses the sanitized trees built above).
scripts/ci_soak.sh

# Scheduler throughput smoke: guard against regressions in the spawn path
# (deque + slab allocator). Uses the unsanitized tree; see the script for
# the baseline-recording protocol.
scripts/ci_bench_smoke.sh

# Observability smoke: trace a run end-to-end, stitch the 4-rank
# distributed_halo traces with tdg-trace merge, and assert the merged
# view shows cross-rank message edges, nonzero comm wait, and a per-rank
# telemetry series. Uses the unsanitized tree.
scripts/ci_trace_smoke.sh

# Chaos soak: the example universes under seeded loss+kill fault plans,
# every cell with TDG_VERIFY=strict and a wall-clock cap. Uses the
# unsanitized tree (the sanitizers above already cover the comm layer's
# data races; this gate is about termination and soundness under faults).
scripts/ci_chaos.sh
