#!/usr/bin/env bash
# Static analysis + TDG soundness gate:
#   1. clang-tidy over src/ and tools/ with the repo's .clang-tidy profile
#      (skipped with a notice when clang-tidy is not installed — the
#      container toolchain is gcc-only).
#   2. The verifier self-tests (tests/test_verify): seeded determinacy
#      races, PTSG drift, lint findings, reachability corner cases.
#   3. The online race-detector self-tests (tests/test_race): seeded
#      edge drops caught at discovery time, strict escalation, sampling
#      determinism, range-overlap flags, tenant isolation.
#   4. TDG_VERIFY=strict runs of the application test suites: any
#      conflicting access pair the discovered graph fails to order throws
#      VerifyError at the next taskwait and fails the run.
#   5. A TDG_RACE=sample multitenant_soak pass: the production-shaped
#      sampling configuration must stay flag-free under concurrent
#      submitters on a shared pool.
#   6. tdg-trace verify / race / tdg-lint smoke on a freshly recorded
#      trace.
#
# Usage: scripts/ci_static.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."

dir=${1:-build}
jobs=$(nproc 2>/dev/null || echo 2)

echo "=== [static] configure ($dir) ==="
cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null

echo "=== [static] build ==="
cmake --build "$dir" -j "$jobs" \
      --target test_verify test_race test_cholesky test_lulesh \
               test_taskbench tdg-trace cholesky_demo multitenant_soak

if command -v clang-tidy >/dev/null 2>&1; then
  echo "=== [static] clang-tidy ==="
  # Sources only; headers are covered through HeaderFilterRegex.
  clang-tidy -p "$dir" --quiet \
      src/core/*.cpp src/mpi/*.cpp src/apps/*.cpp src/sim/*.cpp \
      tools/*.cpp
else
  echo "=== [static] clang-tidy not installed; skipping lint pass ==="
fi

echo "=== [static] verifier self-tests ==="
"$dir"/tests/test_verify

echo "=== [static] race-detector self-tests ==="
"$dir"/tests/test_race

echo "=== [static] TDG_VERIFY=strict application suites ==="
TDG_VERIFY=strict "$dir"/tests/test_cholesky
TDG_VERIFY=strict "$dir"/tests/test_lulesh
TDG_VERIFY=strict "$dir"/tests/test_taskbench

echo "=== [static] TDG_RACE=strict application suites ==="
TDG_RACE=strict "$dir"/tests/test_taskbench

echo "=== [static] TDG_RACE=sample multitenant soak ==="
TDG_RACE=sample "$dir"/examples/multitenant_soak --tenants 4 --graphs 200

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
trace="$workdir/trace.json"

echo "=== [static] record a verification trace (cholesky_demo) ==="
(cd "$workdir" && TDG_VERIFY=post TDG_TRACE=perfetto \
    TDG_TRACE_FILE="$trace" "$OLDPWD/$dir/examples/cholesky_demo" 8 32)
[ -s "$trace" ] || { echo "trace file was not written" >&2; exit 1; }

echo "=== [static] tdg-trace verify ==="
"$dir"/tools/tdg-trace verify "$trace"

echo "=== [static] tdg-trace race ==="
"$dir"/tools/tdg-trace race "$trace"

echo "=== [static] tdg-lint (strict) ==="
"$dir"/tools/tdg-lint "$trace" --strict

echo "=== static analysis + verification gate passed ==="
