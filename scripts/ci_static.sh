#!/usr/bin/env bash
# Static analysis + TDG soundness gate:
#   1. clang-tidy over src/ and tools/ with the repo's .clang-tidy profile
#      (skipped with a notice when clang-tidy is not installed — the
#      container toolchain is gcc-only).
#   2. The verifier self-tests (tests/test_verify): seeded determinacy
#      races, PTSG drift, lint findings, reachability corner cases.
#   3. TDG_VERIFY=strict runs of the application test suites: any
#      conflicting access pair the discovered graph fails to order throws
#      VerifyError at the next taskwait and fails the run.
#   4. tdg-trace verify / tdg-lint smoke on a freshly recorded trace.
#
# Usage: scripts/ci_static.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."

dir=${1:-build}
jobs=$(nproc 2>/dev/null || echo 2)

echo "=== [static] configure ($dir) ==="
cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null

echo "=== [static] build ==="
cmake --build "$dir" -j "$jobs" \
      --target test_verify test_cholesky test_lulesh test_taskbench \
               tdg-trace cholesky_demo

if command -v clang-tidy >/dev/null 2>&1; then
  echo "=== [static] clang-tidy ==="
  # Sources only; headers are covered through HeaderFilterRegex.
  clang-tidy -p "$dir" --quiet \
      src/core/*.cpp src/mpi/*.cpp src/apps/*.cpp src/sim/*.cpp \
      tools/*.cpp
else
  echo "=== [static] clang-tidy not installed; skipping lint pass ==="
fi

echo "=== [static] verifier self-tests ==="
"$dir"/tests/test_verify

echo "=== [static] TDG_VERIFY=strict application suites ==="
TDG_VERIFY=strict "$dir"/tests/test_cholesky
TDG_VERIFY=strict "$dir"/tests/test_lulesh
TDG_VERIFY=strict "$dir"/tests/test_taskbench

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
trace="$workdir/trace.json"

echo "=== [static] record a verification trace (cholesky_demo) ==="
(cd "$workdir" && TDG_VERIFY=post TDG_TRACE=perfetto \
    TDG_TRACE_FILE="$trace" "$OLDPWD/$dir/examples/cholesky_demo" 8 32)
[ -s "$trace" ] || { echo "trace file was not written" >&2; exit 1; }

echo "=== [static] tdg-trace verify ==="
"$dir"/tools/tdg-trace verify "$trace"

echo "=== [static] tdg-lint (strict) ==="
"$dir"/tools/tdg-lint "$trace" --strict

echo "=== static analysis + verification gate passed ==="
