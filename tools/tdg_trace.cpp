// tdg-trace: post-mortem analysis of tdg trace files.
//
//   tdg-trace summary  <trace>          overall stats + parallelism profile
//   tdg-trace critpath <trace> [-n K]   critical path (top K nodes shown)
//   tdg-trace export   <trace> [-o OUT] [--format perfetto|tsv]
//   tdg-trace merge    <trace...> [-o OUT] [--format perfetto|tsv]
//                                       stitch per-rank traces into one
//                                       global timeline (clock offsets
//                                       estimated from matched messages)
//   tdg-trace timeline <trace>          per-rank overlap/utilization rows
//                                       + top comm-blocked task labels
//   tdg-trace verify   <trace> [-n K]   TDG soundness check (races, cycles)
//   tdg-trace lint     <trace> [--strict]   depend-clause lint
//   tdg-trace race     <trace> [--sample-tasks N] [--sample-addrs M]
//                                       replay the online race detector
//                                       over the recorded streams and
//                                       escalate flagged windows offline
//
// Installing (or symlinking) the binary as `tdg-lint` makes it default to
// the lint command: `tdg-lint trace.json` == `tdg-trace lint trace.json`.
//
// <trace> is a file produced with TDG_TRACE=perfetto or TDG_TRACE=tsv (or
// "-" for stdin); the format is sniffed, so export converts between the
// two. verify/lint/race need the depend-clause access stream, which traces
// carry when recorded with TDG_VERIFY=post|strict. Exit status: 0 ok,
// 1 bad input, 2 usage error, 3 verification failed / lint --strict found
// issues / race confirmed a violation. `<command> --help` prints a
// man-style page with the command's exit codes.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include <vector>

#include "core/analysis.hpp"
#include "core/error.hpp"
#include "core/race.hpp"
#include "core/trace_export.hpp"
#include "core/trace_merge.hpp"
#include "core/verify.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <command> <trace-file> [options]\n"
               "\n"
               "commands:\n"
               "  summary  <trace>                 task/thread totals, "
               "parallelism profile,\n"
               "                                   discovery/execution "
               "overlap\n"
               "  critpath <trace> [-n K]          critical path; print the "
               "K longest nodes\n"
               "                                   (default 20, 0 = all)\n"
               "  export   <trace> [-o OUT] [--format perfetto|tsv]\n"
               "                                   re-emit the trace "
               "(default perfetto to\n"
               "                                   stdout); converts "
               "between formats\n"
               "  merge    <trace...> [-o OUT] [--format perfetto|tsv] "
               "[--no-offsets]\n"
               "                                   stitch per-rank traces "
               "into one global\n"
               "                                   timeline: estimate clock "
               "offsets from\n"
               "                                   matched send/recv pairs, "
               "rebase, derive\n"
               "                                   cross-rank message edges\n"
               "  timeline <trace>                 per-rank overlap / "
               "utilization /\n"
               "                                   comm-wait rows and top "
               "comm-blocked\n"
               "                                   task labels\n"
               "  verify   <trace> [-n K]          prove every conflicting "
               "access pair is\n"
               "                                   ordered by the recorded "
               "graph; exit 3 on\n"
               "                                   determinacy races or "
               "cycles\n"
               "  lint     <trace> [--strict]      flag depend clauses that "
               "cost discovery\n"
               "                                   work for nothing; exit 3 "
               "only with --strict\n"
               "\n"
               "  race     <trace> [--sample-tasks N] [--sample-addrs M] "
               "[--seed S]\n"
               "                                   replay the online race "
               "detector over the\n"
               "                                   recorded streams; exit 3 "
               "on confirmed\n"
               "                                   violations\n"
               "\n"
               "<trace> may be '-' for stdin. Accepts both the Perfetto "
               "JSON and the TSV\nwritten under TDG_TRACE. verify/lint/race "
               "need a trace recorded with\nTDG_VERIFY=post (or strict), "
               "which embeds the depend-clause stream.\nRun '%s <command> "
               "--help' for a command's full page and exit codes.\n",
               argv0, argv0);
  return 2;
}

/// Man-style page for one subcommand (`tdg-trace <command> --help`).
/// Every page documents the command's exit codes.
int sub_help(const std::string& cmd) {
  static const struct {
    const char* name;
    const char* synopsis;
    const char* description;
    const char* options;
    const char* exits;
  } pages[] = {
      {"summary", "tdg-trace summary <trace>",
       "Print task/edge/thread totals, the parallelism profile (span,\n"
       "busy time, average and peak concurrency), the discovery/execution\n"
       "overlap percentage, per-rank rows for merged multi-rank traces,\n"
       "communication statistics, and per-label body-time aggregates.",
       "  (none beyond the common trace argument)",
       "  0  summary printed\n"
       "  1  unreadable or malformed trace\n"
       "  2  usage error"},
      {"critpath", "tdg-trace critpath <trace> [-n K]",
       "Compute the critical path through the recorded task graph\n"
       "(dependence edges plus cross-rank message edges in merged traces)\n"
       "and print its length, the span's slack ratio, per-label\n"
       "attribution, and the K longest nodes.",
       "  -n K   print the K longest path nodes (default 20, 0 = all)",
       "  0  path printed\n"
       "  1  unreadable or malformed trace\n"
       "  2  usage error"},
      {"export", "tdg-trace export <trace> [-o OUT] [--format perfetto|tsv]",
       "Re-emit the trace, converting between the Perfetto JSON and\n"
       "extended-TSV formats. The default writes Perfetto JSON to stdout.",
       "  -o OUT            output file ('-' = stdout, the default)\n"
       "  --format FORMAT   perfetto (default) or tsv",
       "  0  trace written\n"
       "  1  unreadable trace or unwritable output\n"
       "  2  usage error"},
      {"merge",
       "tdg-trace merge <trace...> [-o OUT] [--format perfetto|tsv] "
       "[--no-offsets]",
       "Stitch per-rank trace files into one global timeline: estimate\n"
       "per-rank clock offsets from matched send/recv pairs, rebase all\n"
       "timestamps, and derive cross-rank message edges.",
       "  -o OUT            output file ('-' = stdout, the default)\n"
       "  --format FORMAT   perfetto (default) or tsv\n"
       "  --no-offsets      keep each rank's own clock (skip estimation)",
       "  0  merged trace written\n"
       "  1  unreadable input or unwritable output\n"
       "  2  usage error"},
      {"timeline", "tdg-trace timeline <trace>",
       "Print per-rank discovery/execution overlap, span, busy time and\n"
       "communication wait, plus the task labels most blocked on\n"
       "communication.",
       "  (none beyond the common trace argument)",
       "  0  timeline printed\n"
       "  1  unreadable or malformed trace\n"
       "  2  usage error"},
      {"verify", "tdg-trace verify <trace> [-n K]",
       "Offline TDG soundness check: re-derive the required ordering\n"
       "relation from the embedded depend-clause stream and prove or\n"
       "refute every conflicting access pair against the recorded graph.\n"
       "Requires a trace recorded with TDG_VERIFY=post or strict.",
       "  -n K   materialize at most K findings (totals keep counting)",
       "  0  graph is sound\n"
       "  1  trace unreadable or lacks the depend-clause stream\n"
       "  2  usage error\n"
       "  3  determinacy races or a cycle found"},
      {"lint", "tdg-trace lint <trace> [--strict]",
       "Depend-clause lint (the user-side half of paper optimization (a)):\n"
       "flag redundant inout clauses, dead dependences, singleton\n"
       "inoutsets, and same-task clause items whose declared byte ranges\n"
       "overlap under different base addresses (an aliasing mistake\n"
       "discovery cannot order). Advisory by default.",
       "  --strict   findings change the exit status (CI gating)",
       "  0  clean (or findings without --strict)\n"
       "  1  trace unreadable or lacks the depend-clause stream\n"
       "  2  usage error\n"
       "  3  findings present and --strict given"},
      {"race",
       "tdg-trace race <trace> [--sample-tasks N] [--sample-addrs M] "
       "[--seed S]",
       "Replay the online sampling race detector (core/race.hpp) over the\n"
       "recorded access/edge/barrier streams in submission order, then\n"
       "escalate flagged windows through the offline verifier exactly as\n"
       "the strict runtime mode would at a taskwait. Same-base flags are\n"
       "confirmed by the verifier; range-overlap flags (cross-base byte\n"
       "overlap) are confirmed as flagged, since identity-based discovery\n"
       "structurally cannot order them. Defaults to checking everything\n"
       "(sampling rate 1).",
       "  --sample-tasks N   shadow-check every Nth task (default 1)\n"
       "  --sample-addrs M   of a checked task's clauses, check every Mth\n"
       "                     address (default 1)\n"
       "  --seed S           sampling hash seed (default 0); the sampled\n"
       "                     set is a pure function of (seed, id)",
       "  0  no confirmed violation\n"
       "  1  trace unreadable or lacks the depend-clause stream\n"
       "  2  usage error\n"
       "  3  a violation was confirmed"},
  };
  for (const auto& p : pages) {
    if (cmd != p.name) continue;
    std::printf(
        "NAME\n    tdg-trace %s\n\nSYNOPSIS\n    %s\n\nDESCRIPTION\n",
        p.name, p.synopsis);
    std::printf("    %s\n", p.description);
    std::printf("\nOPTIONS\n%s\n", p.options);
    std::printf("\nEXIT STATUS\n%s\n", p.exits);
    return 0;
  }
  std::fprintf(stderr, "tdg-trace: no help page for '%s'\n", cmd.c_str());
  return 2;
}

tdg::ParsedTrace load(const std::string& path) {
  if (path == "-") return tdg::parse_trace(std::cin);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw tdg::UsageError("cannot open trace file: " + path);
  }
  return tdg::parse_trace(in);
}

std::string fmt_seconds(double s) {
  char buf[64];
  if (s >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.3f s", s);
  } else if (s >= 1e-3) {
    std::snprintf(buf, sizeof buf, "%.3f ms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f us", s * 1e6);
  }
  return buf;
}

/// Comm-stream digest shared by summary and timeline: op counts, matched
/// cross-rank messages, and total recv/collective wait.
void print_comm_stats(const tdg::ParsedTrace& trace) {
  if (trace.comms.empty()) return;
  std::size_t sends = 0, recvs = 0, colls = 0;
  std::uint64_t bytes = 0;
  double wait_seconds = 0;
  for (const tdg::CommRecord& c : trace.comms) {
    switch (c.kind) {
      case tdg::CommRecord::Kind::Send: ++sends; break;
      case tdg::CommRecord::Kind::Recv: ++recvs; break;
      case tdg::CommRecord::Kind::Collective: ++colls; break;
    }
    bytes += c.bytes;
    if (c.kind != tdg::CommRecord::Kind::Send) {
      wait_seconds +=
          static_cast<double>(c.t_complete - c.t_post) * 1e-9;
    }
  }
  std::printf("comm ops: %zu (sends %zu, recvs %zu, collectives %zu), "
              "%llu bytes\n",
              trace.comms.size(), sends, recvs, colls,
              static_cast<unsigned long long>(bytes));
  std::printf("comm wait: %s (recv + collective spans)\n",
              fmt_seconds(wait_seconds).c_str());
  const std::vector<tdg::TraceEdge> msg = tdg::message_edges(trace.comms);
  std::printf("cross-rank message edges: %zu\n", msg.size());
}

int cmd_summary(const tdg::ParsedTrace& trace) {
  const auto& rec = trace.records;
  std::printf("tasks:    %zu\n", rec.size());
  std::printf("edges:    %zu\n", trace.edges.size());
  if (rec.empty() && trace.comms.empty()) return 0;
  if (rec.empty()) {
    print_comm_stats(trace);
    return 0;
  }

  std::uint32_t nthreads = 0;
  std::uint32_t iterations = 0;
  double body_seconds = 0;
  std::map<std::string, std::pair<std::size_t, double>> by_label;
  for (const tdg::TaskRecord& r : rec) {
    nthreads = std::max(nthreads, r.thread + 1);
    iterations = std::max(iterations, r.iteration + 1);
    const double s = static_cast<double>(r.t_end - r.t_start) * 1e-9;
    body_seconds += s;
    auto& agg = by_label[r.label];
    ++agg.first;
    agg.second += s;
  }
  std::printf("threads:  %u\n", nthreads);
  if (iterations > 1) std::printf("iterations: %u\n", iterations);

  const tdg::ParallelismProfile p = tdg::parallelism_profile(rec);
  std::printf("span:     %s\n", fmt_seconds(p.span_seconds).c_str());
  std::printf("busy:     %s (%.1f%% of span)\n",
              fmt_seconds(p.busy_seconds).c_str(),
              p.span_seconds > 0 ? 100.0 * p.busy_seconds / p.span_seconds
                                 : 0.0);
  std::printf("work:     %s (sum of task bodies)\n",
              fmt_seconds(body_seconds).c_str());
  std::printf("parallelism: avg %.2f, max %u\n", p.avg_concurrency,
              p.max_concurrency);
  std::printf("discovery/execution overlap: %.1f%%\n",
              100.0 * tdg::discovery_execution_overlap(rec));
  print_comm_stats(trace);

  const std::vector<tdg::RankOverlap> rows =
      tdg::rank_overlap_matrix(rec, trace.comms);
  if (rows.size() > 1) {
    std::printf("\nper rank:\n");
    std::printf("  %-6s %8s %10s %12s %12s %12s\n", "rank", "tasks",
                "overlap", "span", "busy", "comm wait");
    for (const tdg::RankOverlap& r : rows) {
      std::printf("  %-6d %8zu %9.1f%% %12s %12s %12s\n", r.rank, r.tasks,
                  100.0 * r.overlap, fmt_seconds(r.span_seconds).c_str(),
                  fmt_seconds(r.busy_seconds).c_str(),
                  fmt_seconds(r.comm_wait_seconds).c_str());
    }
  }

  std::printf("\nby label:\n");
  std::printf("  %-24s %10s %14s\n", "label", "tasks", "body time");
  for (const auto& [label, agg] : by_label) {
    std::printf("  %-24s %10zu %14s\n",
                label.empty() ? "(unnamed)" : label.c_str(), agg.first,
                fmt_seconds(agg.second).c_str());
  }
  return 0;
}

int cmd_critpath(const tdg::ParsedTrace& trace, std::size_t top) {
  if (trace.edges.empty() && trace.records.size() > 1) {
    std::fprintf(stderr,
                 "tdg-trace: warning: trace has no dependence edges (was it "
                 "recorded with\ntdg-trace: flow arrows enabled?); critical "
                 "path degenerates to the longest task\n");
  }
  const tdg::CriticalPath cp =
      tdg::critical_path(trace.records, trace.edges);
  std::printf("critical path: %zu tasks, %s\n", cp.nodes.size(),
              fmt_seconds(cp.length_seconds).c_str());
  std::printf("trace span:    %s (slack ratio %.2f)\n",
              fmt_seconds(cp.span_seconds).c_str(), cp.slack_ratio());
  if (cp.comm_hops > 0) {
    std::printf("comm hops:     %zu (cross-rank message edges on the "
                "path)\n",
                cp.comm_hops);
  }
  if (!cp.label_seconds.empty()) {
    std::printf("\nby label:\n");
    for (const auto& [label, s] : cp.label_seconds) {
      std::printf("  %-24s %14s  (%.1f%%)\n",
                  label.empty() ? "(unnamed)" : label.c_str(),
                  fmt_seconds(s).c_str(),
                  cp.length_seconds > 0 ? 100.0 * s / cp.length_seconds
                                        : 0.0);
    }
  }
  if (!cp.nodes.empty()) {
    const std::size_t n =
        top == 0 ? cp.nodes.size() : std::min(top, cp.nodes.size());
    std::printf("\npath (%zu of %zu nodes):\n", n, cp.nodes.size());
    const bool multi_rank = cp.comm_hops > 0;
    for (std::size_t i = 0; i < n; ++i) {
      const tdg::CriticalPathNode& node = cp.nodes[i];
      if (multi_rank) {
        std::printf("  #%-6llu rank %-4d %-24s %14s\n",
                    static_cast<unsigned long long>(node.task_id),
                    node.rank,
                    node.label.empty() ? "(unnamed)" : node.label.c_str(),
                    fmt_seconds(node.seconds()).c_str());
      } else {
        std::printf("  #%-6llu %-24s %14s\n",
                    static_cast<unsigned long long>(node.task_id),
                    node.label.empty() ? "(unnamed)" : node.label.c_str(),
                    fmt_seconds(node.seconds()).c_str());
      }
    }
    if (n < cp.nodes.size()) {
      std::printf("  ... (%zu more; use -n 0 for all)\n",
                  cp.nodes.size() - n);
    }
  }
  return 0;
}

int cmd_export(const tdg::ParsedTrace& trace, const std::string& out_path,
               const std::string& format) {
  std::ostringstream body;
  if (format == "perfetto" || format == "json") {
    tdg::write_perfetto(body, trace.records, trace.edges, trace.accesses,
                        trace.barriers, trace.scope_clears, trace.comms);
  } else if (format == "tsv") {
    tdg::write_trace_tsv(body, trace.records, trace.accesses,
                         trace.barriers, trace.scope_clears, trace.comms);
  } else {
    throw tdg::UsageError("unknown export format: " + format);
  }
  if (out_path.empty() || out_path == "-") {
    std::cout << body.str();
  } else {
    std::ofstream out(out_path, std::ios::binary);
    if (!out) throw tdg::UsageError("cannot open output file: " + out_path);
    out << body.str();
    std::fprintf(stderr, "tdg-trace: wrote %s (%zu records, %zu edges)\n",
                 out_path.c_str(), trace.records.size(),
                 trace.edges.size());
  }
  return 0;
}

int cmd_timeline(const tdg::ParsedTrace& trace) {
  const std::vector<tdg::RankOverlap> rows =
      tdg::rank_overlap_matrix(trace.records, trace.comms);
  if (rows.empty()) {
    std::printf("timeline: empty trace\n");
    return 0;
  }
  std::printf("per-rank discovery/execution overlap:\n");
  std::printf("  %-6s %8s %10s %12s %12s %12s\n", "rank", "tasks",
              "overlap", "span", "busy", "comm wait");
  for (const tdg::RankOverlap& r : rows) {
    std::printf("  %-6d %8zu %9.1f%% %12s %12s %12s\n", r.rank, r.tasks,
                100.0 * r.overlap, fmt_seconds(r.span_seconds).c_str(),
                fmt_seconds(r.busy_seconds).c_str(),
                fmt_seconds(r.comm_wait_seconds).c_str());
  }
  print_comm_stats(trace);
  const std::vector<tdg::CommWaitEntry> waits =
      tdg::comm_wait_by_label(trace.comms, trace.records);
  if (!waits.empty()) {
    std::printf("\ntop comm-blocked labels:\n");
    std::printf("  %-24s %8s %12s %14s\n", "label", "ops", "bytes",
                "wait");
    std::size_t shown = 0;
    for (const tdg::CommWaitEntry& w : waits) {
      std::printf("  %-24s %8zu %12llu %14s\n",
                  w.label.empty() ? "(unnamed)" : w.label.c_str(), w.ops,
                  static_cast<unsigned long long>(w.bytes),
                  fmt_seconds(w.wait_seconds).c_str());
      if (++shown == 10) break;
    }
  }
  return 0;
}

int cmd_merge(const std::vector<std::string>& paths,
              const std::string& out_path, const std::string& format,
              bool estimate_offsets) {
  std::vector<tdg::ParsedTrace> inputs;
  inputs.reserve(paths.size());
  for (const std::string& p : paths) inputs.push_back(load(p));
  tdg::MergeOptions mopts;
  mopts.estimate_clock_offsets = estimate_offsets;
  tdg::MergeResult res = tdg::merge_traces(std::move(inputs), mopts);
  for (std::size_t i = 0; i < res.ranks.size(); ++i) {
    std::fprintf(stderr,
                 "tdg-trace: input %zu (%s): rank %d, clock offset "
                 "%+lld ns\n",
                 i, paths[i].c_str(), res.ranks[i],
                 static_cast<long long>(res.offset_ns[i]));
  }
  std::fprintf(stderr,
               "tdg-trace: matched %zu message pair%s (%zu unmatched), "
               "derived %zu cross-rank edges\n",
               res.matched_messages, res.matched_messages == 1 ? "" : "s",
               res.unmatched_messages, res.cross_rank_edges.size());
  return cmd_export(res.trace, out_path, format);
}

/// True when the trace has no embedded depend clauses — nothing for
/// verify/lint to work on. (The caller reports the remedy.)
bool require_accesses(const tdg::ParsedTrace& trace, const char* cmd) {
  if (!trace.accesses.empty()) return true;
  std::fprintf(stderr,
               "tdg-trace: %s: trace has no depend-clause accesses; "
               "re-record it with\ntdg-trace: TDG_VERIFY=post (or strict) "
               "so the clause stream is embedded\n",
               cmd);
  return false;
}

int cmd_verify(const tdg::ParsedTrace& trace, std::size_t max_reports) {
  if (!require_accesses(trace, "verify")) return 1;
  tdg::VerifyOptions opts;
  if (max_reports != 0) opts.max_reports = max_reports;
  const tdg::VerifyReport rep =
      tdg::verify_tdg(trace.accesses, trace.edges, trace.barriers,
                      trace.scope_clears, opts);
  std::printf("%s\n", rep.summary().c_str());
  return rep.ok() ? 0 : 3;
}

int cmd_race(const tdg::ParsedTrace& trace, std::uint64_t sample_tasks,
             std::uint64_t sample_addrs, std::uint64_t seed) {
  if (!require_accesses(trace, "race")) return 1;
  tdg::RaceOptions opts;
  opts.mode = tdg::RaceMode::Strict;
  opts.sample_tasks = sample_tasks;
  opts.sample_addrs = sample_addrs;
  opts.seed = seed;
  opts.live_report = false;
  const tdg::RaceScanResult res =
      tdg::race_scan(trace.accesses, trace.edges, trace.barriers,
                     trace.scope_clears, opts);
  std::printf("%s", res.report.c_str());
  std::printf("race scan: %zu flag%s (%zu total), %zu confirmed\n",
              res.flags.size(), res.flags.size() == 1 ? "" : "s",
              res.flags_total, res.confirmed);
  return res.any_confirmed() ? 3 : 0;
}

int cmd_lint(const tdg::ParsedTrace& trace, bool strict) {
  if (!require_accesses(trace, "lint")) return 1;
  const std::vector<tdg::LintFinding> findings =
      tdg::lint_clauses(trace.accesses);
  for (const tdg::LintFinding& f : findings) {
    std::printf("%s: %s\n", tdg::lint_kind_name(f.kind), f.message.c_str());
  }
  std::printf("%zu depend-clause lint finding%s in %zu accesses\n",
              findings.size(), findings.size() == 1 ? "" : "s",
              trace.accesses.size());
  return findings.empty() || !strict ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  // Basename dispatch: a binary (or symlink) named tdg-lint is the lint
  // command itself, taking the trace as its first argument.
  const char* slash = std::strrchr(argv[0], '/');
  const char* base = slash != nullptr ? slash + 1 : argv[0];
  const bool lint_alias = std::strcmp(base, "tdg-lint") == 0;

  // `tdg-trace --help` / `tdg-trace <command> --help` before the argc
  // floor: a help request needs no trace argument.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      if (lint_alias) return sub_help("lint");
      if (argc >= 2 && argv[1][0] != '-' && std::strcmp(argv[1], "help")) {
        return sub_help(argv[1]);
      }
      usage(argv[0]);
      return 0;
    }
  }
  if (!lint_alias && argc >= 3 && std::strcmp(argv[1], "help") == 0) {
    return sub_help(argv[2]);
  }

  if (argc < (lint_alias ? 2 : 3)) return usage(argv[0]);
  const std::string cmd = lint_alias ? "lint" : argv[1];

  std::size_t top = 20;
  std::string out_path;
  std::string format = "perfetto";
  bool strict = false;
  bool estimate_offsets = true;
  std::uint64_t sample_tasks = 1;
  std::uint64_t sample_addrs = 1;
  std::uint64_t seed = 0;
  // merge accepts several input traces; every other command exactly one.
  std::vector<std::string> paths{argv[lint_alias ? 1 : 2]};
  for (int i = lint_alias ? 2 : 3; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "-n" && i + 1 < argc) {
      top = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (a == "-o" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (a == "--format" && i + 1 < argc) {
      format = argv[++i];
    } else if (a == "--strict") {
      strict = true;
    } else if (a == "--no-offsets") {
      estimate_offsets = false;
    } else if (a == "--sample-tasks" && i + 1 < argc) {
      sample_tasks = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--sample-addrs" && i + 1 < argc) {
      sample_addrs = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (cmd == "merge" && (a.empty() || a[0] != '-')) {
      paths.push_back(a);
    } else {
      std::fprintf(stderr, "tdg-trace: unknown option: %s\n", a.c_str());
      return usage(argv[0]);
    }
  }

  try {
    if (cmd == "merge") {
      return cmd_merge(paths, out_path, format, estimate_offsets);
    }
    const tdg::ParsedTrace trace = load(paths.front());
    if (cmd == "summary") return cmd_summary(trace);
    if (cmd == "critpath") return cmd_critpath(trace, top);
    if (cmd == "export") return cmd_export(trace, out_path, format);
    if (cmd == "timeline") return cmd_timeline(trace);
    if (cmd == "verify") return cmd_verify(trace, top);
    if (cmd == "lint") return cmd_lint(trace, strict);
    if (cmd == "race") {
      return cmd_race(trace, sample_tasks, sample_addrs, seed);
    }
    std::fprintf(stderr, "tdg-trace: unknown command: %s\n", cmd.c_str());
    return usage(argv[0]);
  } catch (const tdg::UsageError& e) {
    std::fprintf(stderr, "tdg-trace: %s\n", e.what());
    return 1;
  }
}
