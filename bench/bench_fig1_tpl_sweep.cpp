// Experiment F1 — Figure 1: intra-node LULESH on the unoptimized
// (LLVM-like) runtime. Sweeps tasks-per-loop and reports the TDG discovery
// time, the total execution time, and the projected execution if the run
// were not discovery-bound (the dashed curve), against the parallel-for
// baseline.
//
// Paper shape to reproduce: execution improves with TPL refinement until
// the discovery curve crosses it; past the crossover total time follows
// discovery, and the best task-based point is only a few percent better
// than parallel-for (~86 s vs ~75 s in the paper).
#include "bench_util.hpp"

namespace {

using namespace bench;
using tdg::apps::lulesh::build_sim_graph;
using tdg::sim::ClusterSim;
using tdg::sim::SimConfig;
using tdg::sim::SimGraph;

constexpr int kIterations = 16;
constexpr int kLoops = 10;  // mesh-wide loops per iteration in lulesh-mini

SimConfig llvm_like() {
  return skylake_config(/*optimized_discovery=*/false, /*mpc_throttle=*/false);
}

}  // namespace

int main() {
  header("Figure 1: LULESH intra-node, unoptimized runtime (24 cores)");

  // parallel-for baseline.
  {
    SimGraph pf = parallel_for_graph(kIntraPoints, kLoops, kIterations, 24,
                                     /*collective=*/false);
    ClusterSim sim(llvm_like());
    sim.set_all_graphs(&pf);
    const auto r = sim.run();
    std::printf("parallel-for version: %.2f s\n", r.makespan);
  }

  row({"TPL", "discovery(s)", "total(s)", "projected(s)", "tasks",
       "edges"});
  double best_total = 1e30;
  int best_tpl = 0;
  for (int tpl : {48, 336, 624, 912, 1200, 1488, 1776, 2064, 2352, 2640,
                  2928, 3216, 3504, 3792, 4080, 4368, 4608}) {
    auto opts = lulesh_intra(tpl, kIterations, /*a=*/false, /*b=*/false,
                             /*c=*/false, /*p=*/false);
    SimGraph g = build_sim_graph(opts);

    ClusterSim sim(llvm_like());
    sim.set_all_graphs(&g);
    const auto r = sim.run();

    // Projection: the same graph with free discovery (the dashed curve of
    // Fig. 1 — what execution would reach if never discovery-bound).
    SimConfig free_cfg = llvm_like();
    free_cfg.discovery = tdg::sim::DiscoveryCosts{0, 0, 0, 0, 0};
    ClusterSim free_sim(free_cfg);
    free_sim.set_all_graphs(&g);
    const auto rf = free_sim.run();

    row({fmt_u(static_cast<std::uint64_t>(tpl)),
         fmt(r.ranks[0].discovery_seconds, 2), fmt(r.makespan, 2),
         fmt(rf.makespan, 2), fmt_u(r.ranks[0].tasks_executed),
         fmt_u(r.ranks[0].edges_created)});
    if (r.makespan < best_total) {
      best_total = r.makespan;
      best_tpl = tpl;
    }
  }
  std::printf("best task-based: TPL=%d at %.2f s\n", best_tpl, best_total);
  return 0;
}
