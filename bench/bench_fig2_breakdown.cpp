// Experiment F2 — Figure 2 (a-f): profiled LULESH on the MPC-OMP-like
// runtime (total-task throttling, Section-3 optimizations still off).
// Per TPL: (a) tasks + edges, (b) per-task work/overhead, (c) time
// breakdown averaged on threads + discovery, (d) work-time inflation
// vs the least-inflated instance, (e) cache misses, (f) memory stalls.
//
// Paper shapes: work deflates from coarse to middle grain as L3 misses
// fall (depth-first reuse), idleness dominates at coarse grain and again
// at fine grain when discovery starves the cores; edges collapse at fine
// grain from pruning.
#include <vector>

#include "bench_util.hpp"

int main() {
  using namespace bench;
  using tdg::apps::lulesh::build_sim_graph;
  using tdg::sim::ClusterSim;
  using tdg::sim::SimConfig;

  constexpr int kIterations = 16;

  header("Figure 2: LULESH on 24-core node, MPC-OMP-like, per-TPL profile");
  row({"TPL", "tasks", "edges", "work/task(us)", "ovh/task(us)",
       "avg_work(s)", "avg_idle(s)", "avg_ovh(s)", "discovery(s)"});

  struct Point {
    int tpl;
    double work;
    std::uint64_t l1, l2, l3;
    double stalls;
  };
  std::vector<Point> points;

  for (int tpl : {48, 336, 624, 912, 1200, 1488, 1776, 2064, 2352, 2640,
                  2928, 3216, 3504, 3792, 4080, 4368, 4608}) {
    auto opts = lulesh_intra(tpl, kIterations, /*a=*/false, /*b=*/false,
                             /*c=*/false, /*p=*/false);
    SimConfig cfg = skylake_config(/*optimized_discovery=*/false);
    auto g = build_sim_graph(opts);
    ClusterSim sim(cfg);
    sim.set_all_graphs(&g);
    const auto r = sim.run();
    const auto& rk = r.ranks[0];
    const double per_task_work =
        rk.work / static_cast<double>(rk.tasks_executed) * 1e6;
    const double per_task_ovh =
        rk.overhead / static_cast<double>(rk.tasks_executed) * 1e6;
    row({fmt_u(static_cast<std::uint64_t>(tpl)), fmt_u(rk.tasks_executed),
         fmt_u(rk.edges_created), fmt(per_task_work, 1),
         fmt(per_task_ovh, 1), fmt(rk.avg_work(24), 2),
         fmt(rk.avg_idle(24), 2), fmt(rk.avg_overhead(24), 2),
         fmt(rk.discovery_seconds, 2)});
    points.push_back({tpl, rk.work, rk.cache.l1_misses, rk.cache.l2_misses,
                      rk.cache.l3_misses, rk.cache.stall_seconds});
  }

  // (d) work-time inflation and (e,f) cache behaviour.
  double min_work = 1e300;
  for (const auto& p : points) min_work = std::min(min_work, p.work);
  header("Figure 2 (d,e,f): inflation and cache misses");
  row({"TPL", "inflation", "L1DCM(M)", "L2DCM(M)", "L3CM(M)",
       "stalls(s)"});
  for (const auto& p : points) {
    row({fmt_u(static_cast<std::uint64_t>(p.tpl)), fmt(p.work / min_work, 3),
         fmt(static_cast<double>(p.l1) / 1e6, 0),
         fmt(static_cast<double>(p.l2) / 1e6, 0),
         fmt(static_cast<double>(p.l3) / 1e6, 0), fmt(p.stalls, 1)});
  }
  return 0;
}
