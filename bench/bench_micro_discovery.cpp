// Microbenchmarks of the discovery data layer in isolation: per-address
// access-history probes (the open-addressing table), edge creation across
// in/out/inout/inoutset mixes, and address-set sizes from cache-resident to
// spilling. Reported rates:
//   items_per_second = edges/s for the *Mixed / *InOutSet benches
//   items_per_second = addresses/s for the *AddressInsert bench
//
// BM_DiscoveryMixed/10000/1 (10k addresses, dedup on, 1 thread) is the
// number scripts/ci_bench_smoke.sh gates against scripts/bench_baseline.txt
// (the `discovery` line); re-record deliberately after a known perf change.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "core/tdg.hpp"

namespace {

using tdg::Depend;
using tdg::Runtime;

Runtime::Config solo(bool dedup = true, bool redirect = true) {
  Runtime::Config cfg;
  cfg.num_threads = 1;
  // Keep every task alive so the benchmark measures pure discovery, and
  // drop the metrics branch from the hot path (the overhead bench in
  // bench_micro_runtime guards that separately).
  cfg.throttle.max_total = static_cast<std::size_t>(-1);
  cfg.metrics = false;
  cfg.discovery.dedup_edges = dedup;
  cfg.discovery.inoutset_redirect = redirect;
  return cfg;
}

/// Edge throughput on a writer/readers/read-modify-write mix, the common
/// shape of mesh codes (one producer, a few consumers, then an update).
/// range(0) = address-set size (256 stays cache-resident, 10k+ spills),
/// range(1) = optimization (b) duplicate-edge elimination on/off.
void BM_DiscoveryMixed(benchmark::State& state) {
  const int naddrs = static_cast<int>(state.range(0));
  const bool dedup = state.range(1) != 0;
  std::vector<double> addrs(static_cast<std::size_t>(naddrs));
  std::uint64_t edges = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Runtime rt(solo(dedup));
    state.ResumeTiming();
    for (int round = 0; round < 2; ++round) {
      for (int i = 0; i < naddrs; ++i) {
        double* a = &addrs[static_cast<std::size_t>(i)];
        rt.submit([] {}, {Depend::out(a)});
        rt.submit([] {}, {Depend::in(a)});
        rt.submit([] {}, {Depend::in(a)});
        rt.submit([] {}, {Depend::inout(a)});
      }
    }
    state.PauseTiming();
    edges += rt.stats().discovery.edges_created;
    rt.taskwait();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(edges));
  state.counters["addresses"] = static_cast<double>(naddrs);
}
BENCHMARK(BM_DiscoveryMixed)
    ->Args({256, 1})
    ->Args({10000, 1})
    ->Args({10000, 0})
    ->Args({100000, 1});

/// inoutset generation fan-in/fan-out: 4 members + 2 consumers per address
/// per round, with optimization (c) redirect nodes on (m+n edges) or off
/// (m*n edges). Exercises generation open/close and redirect lifetime.
void BM_DiscoveryInOutSet(benchmark::State& state) {
  const int naddrs = static_cast<int>(state.range(0));
  const bool redirect = state.range(1) != 0;
  std::vector<double> addrs(static_cast<std::size_t>(naddrs));
  std::uint64_t edges = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Runtime rt(solo(/*dedup=*/true, redirect));
    state.ResumeTiming();
    for (int round = 0; round < 2; ++round) {
      for (int i = 0; i < naddrs; ++i) {
        double* a = &addrs[static_cast<std::size_t>(i)];
        for (int m = 0; m < 4; ++m) {
          rt.submit([] {}, {Depend::inoutset(a)});
        }
        rt.submit([] {}, {Depend::in(a)});
        rt.submit([] {}, {Depend::in(a)});
      }
    }
    state.PauseTiming();
    edges += rt.stats().discovery.edges_created;
    rt.taskwait();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(edges));
  state.counters["addresses"] = static_cast<double>(naddrs);
}
BENCHMARK(BM_DiscoveryInOutSet)
    ->Args({256, 1})
    ->Args({256, 0})
    ->Args({10000, 1})
    ->Args({10000, 0});

/// Pure table-insert throughput: every task writes one fresh address, so
/// each depend item is one probe + one new access-history entry and no
/// edges. items/s = addresses/s, including table growth/rehash cost.
void BM_DiscoveryAddressInsert(benchmark::State& state) {
  const int naddrs = static_cast<int>(state.range(0));
  std::vector<double> addrs(static_cast<std::size_t>(naddrs));
  std::int64_t inserted = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Runtime rt(solo());
    state.ResumeTiming();
    for (int i = 0; i < naddrs; ++i) {
      rt.submit([] {}, {Depend::out(&addrs[static_cast<std::size_t>(i)])});
    }
    inserted += naddrs;
    state.PauseTiming();
    rt.taskwait();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(inserted);
}
BENCHMARK(BM_DiscoveryAddressInsert)->Arg(10000)->Arg(100000);

/// Collision-heavy pointer pattern: addresses at a constant large stride,
/// the worst case for low-entropy pointer hashing (all keys share their
/// low bits). A table whose hash only mixes low bits collapses to a probe
/// chain here; the mixed hash must keep this within ~2x of the dense case.
void BM_DiscoveryStridedAddresses(benchmark::State& state) {
  constexpr int kAddrs = 4096;
  constexpr std::size_t kStride = 4096;  // page-stride bases
  std::vector<unsigned char> pool(kAddrs * kStride);
  std::int64_t inserted = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Runtime rt(solo());
    state.ResumeTiming();
    for (int i = 0; i < kAddrs; ++i) {
      rt.submit([] {}, {Depend::out(&pool[static_cast<std::size_t>(i) *
                                         kStride])});
    }
    inserted += kAddrs;
    state.PauseTiming();
    rt.taskwait();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(inserted);
}
BENCHMARK(BM_DiscoveryStridedAddresses);

}  // namespace
