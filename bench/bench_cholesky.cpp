// Experiment C1 — Section 4.4: tile-based Cholesky factorization.
// (1) Real runtime: repeated factorizations with and without the
//     persistent graph; per-iteration discovery times show the asymptotic
//     discovery speedup while total time stays flat (the TDG is already
//     cheap relative to the coarse tile kernels).
// (2) Real runtime: optimizations (a)(b)(c) leave the dense graph's edge
//     count and performance unchanged.
// (3) Model at paper scale (n=65536, b=512 -> nt=128): discovery share of
//     total time, with and without (p).
#include "apps/cholesky/cholesky.hpp"
#include "bench_util.hpp"
#include "core/tdg.hpp"

namespace {

using namespace bench;
namespace chol = tdg::apps::cholesky;
using tdg::Runtime;

void real_persistence_section() {
  header("Cholesky (real runtime): discovery per iteration, nt=16 b=24");
  chol::Config cfg;
  cfg.nt = 16;
  cfg.b = 24;
  cfg.iterations = 8;

  for (bool persistent : {false, true}) {
    Runtime rt({.num_threads = 2});
    chol::TiledMatrix a(cfg.nt, cfg.b);
    a.fill_spd();
    tdg::apps::RuntimeEmitter em(rt, {.persistent = persistent});
    const double t0 = tdg::now_seconds();
    std::vector<double> disc;
    for (int it = 0; it < cfg.iterations; ++it) {
      rt.reset_stats();
      if (em.begin_iteration(static_cast<std::uint32_t>(it))) {
        emit_factorization(em, a, /*refill=*/true);
      }
      em.end_iteration();
      rt.taskwait();
      disc.push_back(rt.stats().discovery_seconds());
    }
    const double wall = tdg::now_seconds() - t0;
    std::printf("%spersistent: wall %.3f s, discovery per iteration (ms):",
                persistent ? "" : "non-", wall);
    for (double d : disc) std::printf(" %.2f", d * 1e3);
    std::printf("\n");
  }
}

void real_opts_section() {
  header("Cholesky (real runtime): (a)(b)(c) have no effect on dense graphs");
  for (bool on : {false, true}) {
    Runtime::Config rc;
    rc.num_threads = 2;
    rc.discovery.dedup_edges = on;
    rc.discovery.inoutset_redirect = on;
    Runtime rt(rc);
    chol::Config cfg;
    cfg.nt = 16;
    cfg.b = 24;
    chol::TiledMatrix a(cfg.nt, cfg.b);
    a.fill_spd();
    const double t0 = tdg::now_seconds();
    run_taskbased(rt, a, cfg, false);
    const double wall = tdg::now_seconds() - t0;
    const auto s = rt.stats();
    std::printf("opts %s: edges=%llu dup=%llu wall=%.3f s\n",
                on ? "on " : "off",
                static_cast<unsigned long long>(s.discovery.edges_created +
                                                s.discovery.edges_pruned),
                static_cast<unsigned long long>(s.discovery.edges_duplicate),
                wall);
  }
}

void model_section() {
  using tdg::apps::SimEmitter;
  using tdg::sim::ClusterSim;
  using tdg::sim::SimConfig;

  header("Cholesky (model): n=65536 b=512 (nt=128), 24 cores x 16 nodes eq");
  // One iteration of the factorization graph; tile kernels ~0.5*b^3 ns.
  for (bool persistent : {false, true}) {
    const int iterations = 4;
    SimEmitter em({.builder = {}, .persistent = persistent});
    chol::TiledMatrix a(128, 4);  // structure only; kernels are not run
    for (int it = 0; it < iterations; ++it) {
      if (em.begin_iteration(static_cast<std::uint32_t>(it))) {
        emit_factorization(em, a, /*refill=*/true);
      }
      em.end_iteration();
    }
    auto g = em.take();
    // Rescale cost hints to b=512 tiles: (512/4)^3 per kernel.
    const double scale = 512.0 / 4.0;
    for (auto& t : g.tasks) {
      t.attrs.cpu_seconds *= scale * scale * scale;
      t.attrs.bytes = static_cast<std::uint64_t>(
          static_cast<double>(t.attrs.bytes) * scale * scale);
    }
    SimConfig cfg = skylake_config(/*optimized_discovery=*/true);
    cfg.persistent = persistent;
    cfg.iterations = persistent ? iterations : 1;
    ClusterSim sim(cfg);
    sim.set_all_graphs(&g);
    const auto r = sim.run();
    const auto& rk = r.ranks[0];
    std::printf("%spersistent: total %.1f s, discovery %.3f s (%.2f%%)",
                persistent ? "" : "non-", r.makespan, rk.discovery_seconds,
                100.0 * rk.discovery_seconds / r.makespan);
    if (!rk.discovery_per_iteration.empty()) {
      std::printf(", first-iter %.3f s", rk.discovery_per_iteration[0]);
    }
    std::printf("\n");
  }
  std::printf(
      "expected shape: (p) cuts discovery several-fold asymptotically, "
      "total time unchanged (<2%% of total)\n");
}

}  // namespace

int main() {
  real_persistence_section();
  real_opts_section();
  model_section();
  return 0;
}
