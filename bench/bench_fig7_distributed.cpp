// Experiment F7 — Figure 7: distributed LULESH on a 3x3x3 rank cube of
// 16-core NUMA domains (scaled from the paper's 125 x 16). Per TPL, with
// the TDG optimizations disabled and enabled: time breakdown on the centre
// rank (26 neighbours), communication time, overlapped work, overlap ratio.
//
// Paper shapes: optimized task-based ~2x over parallel-for and ~1.2x over
// non-optimized; overlap ratio above 80% at any TPL with optimizations vs
// ~50% without; communication time stable at fine grain once the TDG
// discovery is fast, dominated by the dt collective.
#include "bench_util.hpp"

namespace {

using namespace bench;
using tdg::apps::lulesh::build_sim_graph;
using tdg::apps::lulesh::SimGraphOptions;
using tdg::sim::ClusterSim;
using tdg::sim::SimConfig;
using tdg::sim::SimGraph;

constexpr int kEdge = 3;          // rank cube edge
constexpr int kRanks = kEdge * kEdge * kEdge;
constexpr int kCentre = kRanks / 2;
constexpr int kIterations = 3;
constexpr double kPerRankPoints = 16.7e6;  // -s 256

SimGraphOptions rank_options(int tpl, int rank, bool optimized) {
  SimGraphOptions o;
  o.cfg.tpl = tpl;
  o.cfg.iterations = kIterations;
  o.cfg.minimized_deps = optimized;
  o.cfg.npoints = std::max<std::int64_t>(4L * tpl, 1024);
  o.cfg.sim_scale = kPerRankPoints / static_cast<double>(o.cfg.npoints);
  o.builder.dedup_edges = optimized;
  o.builder.inoutset_redirect = optimized;
  o.persistent = optimized;
  o.rx = kEdge;
  o.ry = kEdge;
  o.rz = kEdge;
  o.rank = rank;
  o.s = 256;
  return o;
}

void run_config(bool optimized) {
  std::printf("\nTDG optimizations %s:\n",
              optimized ? "enabled" : "disabled");
  row({"TPL", "avg_work(s)", "avg_idle(s)", "avg_ovh(s)", "disc(s)",
       "comm(s)", "overlap(s)", "ratio(%)", "total(s)"}, 12);
  for (int tpl : {128, 512, 1152, 2176, 3456, 4608}) {
    std::vector<SimGraph> graphs;
    graphs.reserve(kRanks);
    for (int r = 0; r < kRanks; ++r) {
      graphs.push_back(build_sim_graph(rank_options(tpl, r, optimized)));
    }
    SimConfig cfg = epyc_config(optimized);
    cfg.persistent = optimized;
    cfg.iterations = optimized ? kIterations : 1;
    cfg.nranks = kRanks;
    ClusterSim sim(cfg);
    for (int r = 0; r < kRanks; ++r) sim.set_graph(r, &graphs[static_cast<std::size_t>(r)]);
    const auto res = sim.run();
    const auto& rk = res.ranks[kCentre];
    // Communication metrics averaged over ranks (individual ranks'
    // rendezvous spans depend on where they sit in the cube).
    double comm = 0, overlap = 0;
    for (const auto& rr : res.ranks) {
      comm += rr.comm.total_comm_seconds;
      overlap += rr.comm.overlapped_work;
    }
    comm /= kRanks;
    overlap /= kRanks;
    const double ratio =
        comm > 0 ? std::min(1.0, overlap / (16.0 * comm)) : 0.0;
    row({fmt_u(static_cast<std::uint64_t>(tpl)), fmt(rk.avg_work(16), 2),
         fmt(rk.avg_idle(16), 2), fmt(rk.avg_overhead(16), 2),
         fmt(rk.discovery_seconds, 2), fmt(comm, 3), fmt(overlap, 2),
         fmt(ratio * 100, 1), fmt(res.makespan, 2)},
        12);
  }
}

}  // namespace

int main() {
  header("Figure 7: distributed LULESH, 27 ranks x 16 cores, centre rank");

  // parallel-for baseline: BSP loops + blocking collective, every rank.
  {
    auto pf = parallel_for_graph(kPerRankPoints, 10, kIterations, 16,
                                 /*collective=*/true);
    SimConfig cfg = epyc_config(/*optimized_discovery=*/false);
    cfg.nranks = kRanks;
    ClusterSim sim(cfg);
    sim.set_all_graphs(&pf);
    const auto r = sim.run();
    std::printf("parallel-for version: %.2f s (overlap ratio %.0f%%)\n",
                r.makespan,
                r.ranks[kCentre].comm.overlap_ratio(16) * 100);
  }
  run_config(false);
  run_config(true);
  return 0;
}
