// Experiment MG — Section 3.3's METG report, extended into a Task-Bench-
// style workload matrix: Minimum Effective Task Granularity METG(95%) per
// dependence pattern x {optimized, unoptimized discovery}, on BOTH engines
// (the real runtime at 1..24 threads, the cluster simulator on the
// calibrated Skylake node and at 8..4096 representative ranks).
//
// METG(95%) is taken from the efficiency *frontier*: walking grains from
// coarse to fine, the smallest grain of the contiguous prefix that keeps
// efficiency >= 95% (a raw min over a non-monotonic curve would report a
// grain whose neighbourhood is not effective). Configurations that execute
// zero tasks are skipped instead of dividing by them, and a sweep where no
// sample clears the bar prints "n/a" rather than a 1e300 sentinel.
//
// Paper: Task Bench reports METG(95%) ~ 1 ms for OpenMP runtimes; the
// optimized runtime reaches 65 us (TPL 9216), 1.5 orders of magnitude
// better. Both configurations are swept here.
//
// Usage: bench_metg [--smoke] [--json FILE] [--patterns a,b,...]
//   --smoke     small instances (CI leg; sweeps all patterns, both engines)
//   --json F    machine-readable records {name, threads, value, unit} for
//               scripts/record_trajectory.py --bulk (BENCH_metg.json)
#include <chrono>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "apps/taskbench/taskbench.hpp"
#include "bench_util.hpp"
#include "core/tdg.hpp"

namespace {

namespace tb = tdg::apps::taskbench;
using bench::fmt;
using bench::fmt_metg;
using bench::fmt_u;
using bench::MetgSample;
using tdg::sim::ClusterSim;
using tdg::sim::SimConfig;
using tdg::sim::SimGraph;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ---------------------------------------------------------------------------
// Machine-readable records (BENCH_metg.json trajectory entries)
// ---------------------------------------------------------------------------

struct Record {
  std::string name;
  int threads;
  double value;
  std::string unit;
};

std::vector<Record> g_records;

void record(std::string name, int threads, double value, std::string unit) {
  if (!(value > 0)) return;  // NaN/zero: nothing worth recording
  g_records.push_back({std::move(name), threads, value, std::move(unit)});
}

bool write_json(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "bench_metg: cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < g_records.size(); ++i) {
    const Record& r = g_records[i];
    std::fprintf(f,
                 "  {\"name\": \"%s\", \"threads\": %d, \"value\": %.17g, "
                 "\"unit\": \"%s\"}%s\n",
                 r.name.c_str(), r.threads, r.value, r.unit.c_str(),
                 i + 1 < g_records.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  return true;
}

// ---------------------------------------------------------------------------
// Sweep scales
// ---------------------------------------------------------------------------

struct Scale {
  int width, steps, iterations;
  std::vector<double> real_grains_us;
  std::vector<double> sim_grains_us;
  std::vector<int> real_threads;
  std::vector<int> sim_ranks;
};

Scale full_scale() {
  Scale s;
  s.width = 48;
  s.steps = 8;
  s.iterations = 4;
  s.real_grains_us = {1, 2, 5, 10, 20, 50, 100, 200};
  s.sim_grains_us = {2, 10, 50, 250, 1000, 4000};
  const int hw = std::max(1u, std::thread::hardware_concurrency());
  for (int t : {1, 2, 4, 8, 16, 24}) {
    if (t <= hw) s.real_threads.push_back(t);
  }
  s.sim_ranks = {8, 64, 512, 4096};
  return s;
}

Scale smoke_scale() {
  Scale s;
  s.width = 8;
  s.steps = 4;
  s.iterations = 2;
  s.real_grains_us = {20, 100, 400};
  s.sim_grains_us = {10, 100, 1000, 4000};
  s.real_threads = {
      std::min(2, static_cast<int>(
                      std::max(1u, std::thread::hardware_concurrency())))};
  s.sim_ranks = {8, 64};
  return s;
}

tb::Config make_config(tb::Pattern p, const Scale& s, double grain_us) {
  tb::Config cfg;
  cfg.pattern = p;
  cfg.width = s.width;
  cfg.steps = s.steps;
  cfg.iterations = s.iterations;
  cfg.grain_us = grain_us;
  return cfg;
}

const char* cfg_name(bool optimized) { return optimized ? "opt" : "unopt"; }

// ---------------------------------------------------------------------------
// Real-runtime engine: wall-clock efficiency = ideal work / (threads * t)
// ---------------------------------------------------------------------------

void sweep_real(const std::vector<tb::Pattern>& patterns, const Scale& s) {
  bench::header("taskbench METG(95%), real runtime");
  bench::row({"pattern", "config", "threads", "METG(us)", "peak-util",
              "peak-k/s"});
  for (tb::Pattern p : patterns) {
    for (bool optimized : {false, true}) {
      for (int threads : s.real_threads) {
        // Raw work-rates first (useful seconds per wall second); the METG
        // efficiency is best-relative, per the Task Bench methodology.
        std::vector<MetgSample> rates;
        double peak_util = 0, peak_rate = 0;
        for (double grain : s.real_grains_us) {
          tb::Config cfg = make_config(p, s, grain);
          tdg::Runtime::Config rc;
          rc.num_threads = static_cast<unsigned>(threads);
          rc.discovery.dedup_edges = optimized;
          rc.discovery.inoutset_redirect = optimized;
          tdg::Runtime rt(rc);
          const double t0 = now_seconds();
          const auto res = tb::run_taskbased(rt, cfg, optimized);
          const double wall = now_seconds() - t0;
          if (res.tasks_executed == 0 || wall <= 0) continue;  // no sample
          const double work = tb::total_task_seconds(cfg);
          const double mean_grain_us =
              work / static_cast<double>(res.tasks_executed) * 1e6;
          rates.push_back({mean_grain_us, work / wall});
          peak_util = std::max(peak_util, work / wall / threads);
          peak_rate = std::max(
              peak_rate, static_cast<double>(res.tasks_executed) / wall);
        }
        const auto metg = bench::metg_frontier(bench::normalize_rates(rates));
        bench::row({tb::pattern_name(p), cfg_name(optimized),
                    fmt_u(static_cast<std::uint64_t>(threads)),
                    fmt_metg(metg), fmt(peak_util, 3),
                    fmt(peak_rate / 1e3, 1)});
        const std::string base = std::string("taskbench/") +
                                 tb::pattern_name(p) + "/real/" +
                                 cfg_name(optimized);
        record(base, threads, peak_rate, "tasks_per_second");
        if (metg) {
          record(std::string("metg/") + tb::pattern_name(p) + "/real/" +
                     cfg_name(optimized),
                 threads, *metg, "us");
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Simulator engine: virtual efficiency = work / (cores * makespan)
// ---------------------------------------------------------------------------

tdg::sim::SimResult run_sim(const tb::Config& cfg, bool optimized,
                            int ranks) {
  // The canonical paper configs (hoisted into bench_util so this sweep and
  // the figure benches cannot drift apart).
  SimConfig sc = bench::skylake_config(optimized, /*mpc_throttle=*/optimized);
  sc.persistent = optimized;
  sc.iterations = optimized ? cfg.iterations : 1;
  if (ranks > 1) {
    sc.nranks = ranks;
    sc.representative = true;
  }
  tb::Config gcfg = cfg;
  // Non-persistent graphs carry all iterations inline (replay handles the
  // persistent case), exactly like the LULESH builders.
  if (!optimized) gcfg.iterations = cfg.iterations;
  SimGraph g = tb::build_sim_graph(
      gcfg, {.dedup_edges = optimized, .inoutset_redirect = optimized},
      optimized);
  ClusterSim sim(sc);
  sim.set_all_graphs(&g);
  return sim.run();
}

void sweep_sim(const std::vector<tb::Pattern>& patterns, const Scale& s) {
  bench::header("taskbench METG(95%), simulated 24-core node");
  bench::row({"pattern", "config", "METG(us)", "best-eff", "peak-k/s"});
  const int cores = bench::skylake24().cores;
  for (tb::Pattern p : patterns) {
    for (bool optimized : {false, true}) {
      std::vector<MetgSample> rates;
      double peak_util = 0, peak_rate = 0;
      for (double grain : s.sim_grains_us) {
        tb::Config cfg = make_config(p, s, grain);
        const auto r = run_sim(cfg, optimized, 1);
        const auto grain_us = bench::grain_us_of(r.ranks[0]);
        if (!grain_us || r.makespan <= 0) continue;  // zero-task guard
        const double rate = r.ranks[0].work / r.makespan;
        rates.push_back({*grain_us, rate});
        peak_util = std::max(peak_util, rate / cores);
        peak_rate = std::max(
            peak_rate,
            static_cast<double>(r.ranks[0].tasks_executed) / r.makespan);
      }
      const auto metg = bench::metg_frontier(bench::normalize_rates(rates));
      bench::row({tb::pattern_name(p), cfg_name(optimized), fmt_metg(metg),
                  fmt(peak_util, 3), fmt(peak_rate / 1e3, 1)});
      record(std::string("taskbench/") + tb::pattern_name(p) + "/sim/" +
                 cfg_name(optimized),
             cores, peak_rate, "tasks_per_second");
      if (metg) {
        record(std::string("metg/") + tb::pattern_name(p) + "/sim/" +
                   cfg_name(optimized),
               cores, *metg, "us");
      }
    }
  }
}

/// Rank scaling: one representative rank of an 8..4096-process run, with a
/// per-period allreduce coupling the virtual peers (their skew grows the
/// collective's critical path, squeezing efficiency at scale).
void sweep_sim_ranks(const std::vector<tb::Pattern>& patterns,
                     const Scale& s) {
  bench::header("taskbench rank scaling, simulator (representative rank)");
  bench::row({"pattern", "config", "ranks", "eff", "tasks/s"});
  for (tb::Pattern p : patterns) {
    for (bool optimized : {false, true}) {
      for (int ranks : s.sim_ranks) {
        tb::Config cfg = make_config(p, s, /*grain_us=*/20.0);
        cfg.collective_period = 2;
        const auto r = run_sim(cfg, optimized, ranks);
        const auto& rk = r.ranks[0];
        if (rk.tasks_executed == 0 || r.makespan <= 0) continue;
        const double eff = rk.work / (bench::skylake24().cores * r.makespan);
        const double rate =
            static_cast<double>(rk.tasks_executed) / r.makespan;
        bench::row({tb::pattern_name(p), cfg_name(optimized),
                    fmt_u(static_cast<std::uint64_t>(ranks)), fmt(eff, 3),
                    fmt(rate, 0)});
        record(std::string("taskbench/") + tb::pattern_name(p) +
                   "/simranks/" + cfg_name(optimized),
               ranks, rate, "tasks_per_second");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// The original paper experiment: LULESH grain sweep (bugfixed)
// ---------------------------------------------------------------------------

void sweep_lulesh() {
  using tdg::apps::lulesh::build_sim_graph;
  constexpr int kIterations = 8;
  bench::header("METG(95%): LULESH grain sweep, optimized vs unoptimized");
  for (bool optimized : {false, true}) {
    struct Sample {
      int tpl;
      std::optional<double> grain_us;
      double total;
    };
    std::vector<Sample> samples;
    double best = 1e300;
    for (int tpl : {48, 192, 576, 1200, 2304, 4608, 9216, 18432, 36864}) {
      auto opts = bench::lulesh_intra(tpl, kIterations, optimized, optimized,
                                      optimized, optimized);
      SimConfig cfg = bench::skylake_config(optimized, optimized);
      cfg.persistent = optimized;
      cfg.iterations = optimized ? kIterations : 1;
      auto g = build_sim_graph(opts);
      ClusterSim sim(cfg);
      sim.set_all_graphs(&g);
      const auto r = sim.run();
      samples.push_back({tpl, bench::grain_us_of(r.ranks[0]), r.makespan});
      best = std::min(best, r.makespan);
    }
    std::printf("\n%s runtime:\n", optimized ? "optimized" : "unoptimized");
    bench::row({"TPL", "grain(us)", "total(s)", "efficiency"});
    std::vector<MetgSample> metg_samples;
    for (const auto& s : samples) {
      const double eff = best / s.total;
      bench::row({fmt_u(static_cast<std::uint64_t>(s.tpl)),
                  fmt_metg(s.grain_us), fmt(s.total, 2), fmt(eff, 3)});
      if (s.grain_us) metg_samples.push_back({*s.grain_us, eff});
    }
    const auto metg = bench::metg_frontier(metg_samples);
    std::printf("METG(95%%) = %s us\n", fmt_metg(metg).c_str());
    if (metg) {
      record(std::string("metg/lulesh/sim/") + cfg_name(optimized),
             bench::skylake24().cores, *metg, "us");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  std::vector<tb::Pattern> patterns(tb::all_patterns().begin(),
                                    tb::all_patterns().end());
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--smoke")) {
      smoke = true;
    } else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) {
      json_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--patterns") && i + 1 < argc) {
      patterns.clear();
      std::string csv = argv[++i];
      std::size_t pos = 0;
      while (pos <= csv.size()) {
        const std::size_t comma = std::min(csv.find(',', pos), csv.size());
        const std::string name = csv.substr(pos, comma - pos);
        const auto p = tb::pattern_from_name(name);
        if (!p) {
          std::fprintf(stderr, "bench_metg: unknown pattern '%s'\n",
                       name.c_str());
          return 2;
        }
        patterns.push_back(*p);
        pos = comma + 1;
      }
    } else {
      std::fprintf(stderr,
                   "usage: bench_metg [--smoke] [--json FILE] "
                   "[--patterns a,b,...]\n");
      return 2;
    }
  }

  const Scale s = smoke ? smoke_scale() : full_scale();
  sweep_lulesh();
  sweep_sim(patterns, s);
  sweep_real(patterns, s);
  // The rank-scaling leg is shape-diversity, not a grain sweep: keep the
  // smoke run to two patterns so CI stays fast.
  std::vector<tb::Pattern> rank_patterns = patterns;
  if (smoke && rank_patterns.size() > 2) rank_patterns.resize(2);
  sweep_sim_ranks(rank_patterns, s);

  if (!json_path.empty() && !write_json(json_path)) return 1;
  return 0;
}
