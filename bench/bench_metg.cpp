// Experiment MG — Section 3.3's METG report: the Minimum Effective Task
// Granularity METG(95%) is the smallest average task grain at which an
// instance still reaches 95% of the best observed performance.
//
// Paper: Task Bench reports METG(95%) ~ 1 ms for OpenMP runtimes; the
// optimized runtime reaches 65 us (TPL 9216), 1.5 orders of magnitude
// better. Both configurations are swept here.
#include <vector>

#include "bench_util.hpp"

int main() {
  using namespace bench;
  using tdg::apps::lulesh::build_sim_graph;
  using tdg::sim::ClusterSim;
  using tdg::sim::SimConfig;

  constexpr int kIterations = 8;

  header("METG(95%): grain sweep, optimized vs unoptimized runtime");

  for (bool optimized : {false, true}) {
    struct Sample {
      int tpl;
      double grain_us;
      double total;
    };
    std::vector<Sample> samples;
    double best = 1e300;
    for (int tpl : {48, 192, 576, 1200, 2304, 4608, 9216, 18432, 36864}) {
      auto opts = lulesh_intra(tpl, kIterations, optimized, optimized,
                               optimized, optimized);
      SimConfig cfg;
      cfg.machine = skylake24();
      cfg.discovery =
          optimized ? discovery_optimized() : discovery_unoptimized();
      cfg.throttle = optimized ? throttle_mpc() : throttle_llvm();
      cfg.persistent = optimized;
      cfg.iterations = optimized ? kIterations : 1;
      auto g = build_sim_graph(opts);
      ClusterSim sim(cfg);
      sim.set_all_graphs(&g);
      const auto r = sim.run();
      const double grain =
          r.ranks[0].work / static_cast<double>(r.ranks[0].tasks_executed);
      samples.push_back({tpl, grain * 1e6, r.makespan});
      best = std::min(best, r.makespan);
    }
    std::printf("\n%s runtime:\n", optimized ? "optimized" : "unoptimized");
    row({"TPL", "grain(us)", "total(s)", "efficiency"});
    double metg = 1e300;
    for (const auto& s : samples) {
      const double eff = best / s.total;
      row({fmt_u(static_cast<std::uint64_t>(s.tpl)), fmt(s.grain_us, 1),
           fmt(s.total, 2), fmt(eff, 3)});
      if (eff >= 0.95) metg = std::min(metg, s.grain_us);
    }
    std::printf("METG(95%%) = %.1f us\n", metg);
  }
  return 0;
}
