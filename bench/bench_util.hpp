// Shared helpers for the experiment harnesses: calibrated machine/runtime
// configurations (Skylake-like node of the paper's Section 2, EPYC-like of
// Section 4), the parallel-for baseline graph model, and table printing.
//
// Absolute times are simulator outputs calibrated to the paper's orders of
// magnitude; the reproduction targets are the SHAPES: crossover TPLs,
// speedup factors, overlap ratios (see EXPERIMENTS.md).
#pragma once

#include <algorithm>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "apps/lulesh/simgraph.hpp"
#include "sim/graph.hpp"
#include "sim/sim_runtime.hpp"

namespace bench {

// ---------------------------------------------------------------------------
// Calibrated configurations
// ---------------------------------------------------------------------------

/// 24-core Skylake-like NUMA domain (Fig. 1/2/6, Tables 1-2).
inline tdg::sim::MachineParams skylake24() {
  tdg::sim::MachineParams m;
  m.cores = 24;
  m.l2_bytes = 1e6;
  m.l3_bytes = 33e6;
  return m;
}

/// 16-core EPYC-like NUMA domain (one MPI process slot of Section 4).
inline tdg::sim::MachineParams epyc16() {
  tdg::sim::MachineParams m;
  m.cores = 16;
  m.l2_bytes = 0.5e6;
  m.l3_bytes = 32e6;
  m.dram_streams = 5.0;
  return m;
}

/// Discovery cost model of the unoptimized runtime (LLVM-like baseline of
/// Fig. 1 and the "none" row of Table 2). Calibrated so the discovery/
/// execution crossover lands near the paper's TPL (lulesh-mini emits ~10x
/// fewer tasks per iteration than LULESH's ~97 taskloops, so per-task costs
/// are proportionally heavier; see EXPERIMENTS.md).
inline tdg::sim::DiscoveryCosts discovery_unoptimized() {
  tdg::sim::DiscoveryCosts d;
  d.per_task = 20e-6;
  d.per_dep = 3e-6;
  d.per_edge = 1.5e-6;
  d.per_pruned = 0.3e-6;
  d.per_replay = 0.25e-6;
  return d;
}

/// Discovery cost model with the runtime-side fast paths of Section 3
/// (cheaper hashing and edge handling, besides creating fewer edges).
inline tdg::sim::DiscoveryCosts discovery_optimized() {
  tdg::sim::DiscoveryCosts d;
  d.per_task = 1.0e-6;
  d.per_dep = 0.3e-6;
  d.per_edge = 0.2e-6;
  d.per_pruned = 0.08e-6;
  d.per_replay = 0.25e-6;
  return d;
}

/// LLVM-like ready-task throttling (Section 5) vs MPC-OMP's total bound.
inline tdg::sim::SimThrottle throttle_llvm() {
  return {.max_ready = 6144, .max_total = static_cast<std::size_t>(-1)};
}
inline tdg::sim::SimThrottle throttle_mpc() {
  return {.max_ready = static_cast<std::size_t>(-1), .max_total = 10'000'000};
}

/// Canonical paper-figure simulator configurations: the one place that
/// assembles machine + discovery + throttle, so new sweeps (taskbench)
/// cannot drift from the figure benches. `mpc_throttle` selects MPC-OMP's
/// total bound (the SimThrottle default) over the LLVM-like ready bound.
inline tdg::sim::SimConfig skylake_config(bool optimized_discovery,
                                          bool mpc_throttle = true) {
  tdg::sim::SimConfig cfg;
  cfg.machine = skylake24();
  cfg.discovery =
      optimized_discovery ? discovery_optimized() : discovery_unoptimized();
  cfg.throttle = mpc_throttle ? throttle_mpc() : throttle_llvm();
  return cfg;
}

/// EPYC-node variant (Section 4's distributed runs, MPC throttle).
inline tdg::sim::SimConfig epyc_config(bool optimized_discovery) {
  tdg::sim::SimConfig cfg;
  cfg.machine = epyc16();
  cfg.discovery =
      optimized_discovery ? discovery_optimized() : discovery_unoptimized();
  cfg.throttle = throttle_mpc();
  return cfg;
}

// ---------------------------------------------------------------------------
// METG(95%) — Minimum Effective Task Granularity (Task Bench methodology)
// ---------------------------------------------------------------------------

/// One grain sample of a METG sweep.
struct MetgSample {
  double grain_us = 0;
  double efficiency = 0;
};

/// Average task grain of a simulated rank, in microseconds. Empty when the
/// rank executed no tasks (the divide-by-zero a raw work/tasks computation
/// hits on degenerate configs).
inline std::optional<double> grain_us_of(const tdg::sim::RankResult& r) {
  if (r.tasks_executed == 0) return std::nullopt;
  const double g = r.work / static_cast<double>(r.tasks_executed);
  if (!(g >= 0)) return std::nullopt;  // NaN/negative work guard
  return g * 1e6;
}

/// METG(threshold) from the *efficiency frontier*: starting at the
/// best-efficiency sample, walk toward finer grains while efficiency stays
/// >= threshold; METG is the finest grain reached before the first dip. A
/// raw min over the samples would jump across dips of a non-monotonic
/// curve and report a grain whose neighbourhood is not actually effective
/// (a spurious fine-grain recovery after a sub-threshold valley). Empty
/// when no sample clears the bar.
inline std::optional<double> metg_frontier(std::vector<MetgSample> samples,
                                           double threshold = 0.95) {
  std::sort(samples.begin(), samples.end(),
            [](const MetgSample& a, const MetgSample& b) {
              return a.grain_us > b.grain_us;
            });
  // Anchor at the best sample (the coarsest one on ties): coarse grains may
  // legitimately sit under the bar when they starve the machine of
  // parallelism — METG bounds the *fine* end, not the coarse end.
  std::size_t best = samples.size();
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (best == samples.size() ||
        samples[i].efficiency > samples[best].efficiency) {
      best = i;
    }
  }
  if (best == samples.size() || !(samples[best].efficiency >= threshold)) {
    return std::nullopt;
  }
  std::optional<double> metg;
  for (std::size_t i = best; i < samples.size(); ++i) {
    if (!(samples[i].efficiency >= threshold)) break;  // NaN stops too
    metg = samples[i].grain_us;
  }
  return metg;
}

/// Normalize raw work-rates (useful seconds per second, or any throughput)
/// into best-relative efficiencies, the Task Bench METG normalization:
/// the sweep's best sample defines 100%.
inline std::vector<MetgSample> normalize_rates(
    const std::vector<MetgSample>& rate_samples) {
  double best = 0;
  for (const auto& s : rate_samples) best = std::max(best, s.efficiency);
  std::vector<MetgSample> out;
  out.reserve(rate_samples.size());
  for (const auto& s : rate_samples) {
    out.push_back({s.grain_us, best > 0 ? s.efficiency / best : 0.0});
  }
  return out;
}

/// "12.3" or "n/a" — never the 1e300 sentinel.
inline std::string fmt_metg(const std::optional<double>& metg, int prec = 1) {
  if (!metg) return "n/a";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, *metg);
  return buf;
}

/// Modelled intra-node mesh size (points). The paper fills 78% of a
/// Skylake node's DRAM with -s 384; our scaled intra-node study keeps the
/// same grain/TPL economics at 20M points.
inline constexpr double kIntraPoints = 20e6;

/// Paper-style LULESH intra-node options: the given TPL and iteration
/// count, optimization set {a, b, c, p}.
inline tdg::apps::lulesh::SimGraphOptions lulesh_intra(
    int tpl, int iterations, bool opt_a, bool opt_b, bool opt_c,
    bool opt_p) {
  tdg::apps::lulesh::SimGraphOptions o;
  o.cfg.tpl = tpl;
  o.cfg.iterations = iterations;
  o.cfg.minimized_deps = opt_a;
  o.cfg.npoints = std::max<std::int64_t>(4L * tpl, 1024);
  o.cfg.sim_scale = kIntraPoints / static_cast<double>(o.cfg.npoints);
  o.builder.dedup_edges = opt_b;
  o.builder.inoutset_redirect = opt_c;
  o.persistent = opt_p;
  return o;
}

// ---------------------------------------------------------------------------
// parallel-for baseline model
// ---------------------------------------------------------------------------

/// Build the BSP baseline TDG: every mesh-wide loop becomes `cores` chunk
/// tasks joined by a barrier (expressed as an inoutset generation consumed
/// by the next loop), one optional blocking collective per iteration.
/// Chunks of 1/cores of the mesh never fit a cache, which is exactly the
/// parallel-for drawback of Section 2.1.
inline tdg::sim::SimGraph parallel_for_graph(double points, int loops,
                                             int iterations, int cores,
                                             bool collective,
                                             double secs_per_point = 150e-9,
                                             double bytes_per_point = 350) {
  using namespace tdg::sim;
  SimGraphBuilder b;
  const double chunk_points = points / cores;
  std::uint64_t bar = 1;  // bar N is produced by phase N, consumed by N+1
  for (int it = 0; it < iterations; ++it) {
    if (collective) {
      // Blocking collective between iterations: ordered after the whole
      // previous iteration, gating the whole next one.
      SimTaskAttrs ar;
      ar.kind = SimTaskKind::Allreduce;
      ar.msg_bytes = 8;
      ar.cpu_seconds = 0.5e-6;
      ar.iteration = static_cast<std::uint32_t>(it);
      ar.label = "Allreduce(dt)";
      b.task(ar, {SimDep::in(bar), SimDep::out(bar + 1)});
      ++bar;
    }
    for (int l = 0; l < loops; ++l) {
      for (int c = 0; c < cores; ++c) {
        SimTaskAttrs a;
        a.cpu_seconds = chunk_points * secs_per_point;
        a.bytes = static_cast<std::uint64_t>(chunk_points * bytes_per_point);
        a.iteration = static_cast<std::uint32_t>(it);
        a.label = "for-chunk";
        b.task(a, {SimDep::in(bar), SimDep::inoutset(bar + 1)});
      }
      ++bar;
    }
  }
  return b.take();
}

// ---------------------------------------------------------------------------
// Output helpers
// ---------------------------------------------------------------------------

inline void header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void row(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& c : cells) std::printf("%*s", width, c.c_str());
  std::printf("\n");
}

inline std::string fmt(double v, int prec = 3) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}
inline std::string fmt_u(std::uint64_t v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace bench
