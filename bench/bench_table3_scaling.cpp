// Experiment T3 — Table 3: weak and strong scaling of LULESH from 8 to
// 4096 MPI processes, parallel-for vs optimized task-based. Uses the
// representative-rank mode: one simulated rank, virtual peers modelled by
// the network's skew and log2(P) collective closure (the per-rank compute
// is identical across ranks in LULESH's weak scaling).
//
// Iterations are scaled down 1024 -> 16 and times reported x64 to match
// the paper's -i 1024 magnitudes.
//
// Paper shapes: weak scaling flat for both versions with the task version
// ~2x faster (>95% efficiency to 1000 ranks); strong scaling favours
// tasks until ~128 ranks, after which fine grains give no further gain
// (the dynamic TPL floors at 16).
#include <cmath>

#include "bench_util.hpp"

namespace {

using namespace bench;
using tdg::apps::lulesh::build_sim_graph;
using tdg::apps::lulesh::SimGraphOptions;
using tdg::sim::ClusterSim;
using tdg::sim::SimConfig;

constexpr int kIterations = 16;
constexpr double kScaleUp = 1024.0 / kIterations;
constexpr double kWeakPoints = 16.7e6;  // -s 256 per rank

SimConfig rep_config(int nranks, bool optimized) {
  SimConfig cfg = epyc_config(optimized);
  cfg.nranks = nranks;
  cfg.representative = true;
  // Load imbalance seen by collectives grows slowly with machine size.
  cfg.network.peer_skew = 10e-6 * std::log2(std::max(2, nranks));
  return cfg;
}

double run_for(int nranks, double points) {
  auto pf = parallel_for_graph(points, 10, kIterations, 16,
                               /*collective=*/true);
  ClusterSim sim(rep_config(nranks, false));
  sim.set_graph(0, &pf);
  return sim.run().makespan * kScaleUp;
}

double run_task(int nranks, double points, int tpl) {
  SimGraphOptions o;
  o.cfg.tpl = tpl;
  o.cfg.iterations = kIterations;
  o.cfg.npoints = std::max<std::int64_t>(4L * tpl, 1024);
  o.cfg.sim_scale = points / static_cast<double>(o.cfg.npoints);
  o.persistent = true;
  o.rx = nranks;  // virtual peers: structure-only (26 neighbours capped)
  o.ry = 1;
  o.rz = 1;
  o.rank = nranks / 2;
  o.s = 256;
  auto g = build_sim_graph(o);
  SimConfig cfg = rep_config(nranks, true);
  cfg.persistent = true;
  cfg.iterations = kIterations;
  ClusterSim sim(cfg);
  sim.set_graph(0, &g);
  return sim.run().makespan * kScaleUp;
}

int dynamic_tpl(double points) {
  // Paper: at least 16 tasks per loop, at most 8192 mesh points per task.
  return std::max(16, static_cast<int>(points / 8192.0 / 8.0));
}

}  // namespace

int main() {
  header("Table 3: LULESH weak and strong scaling, 8..4096 ranks (x64 iters)");
  row({"ranks", "weak-for(s)", "weak-task(s)", "strong-for(s)",
       "strong-task(s)", "strong-TPL"}, 15);
  const double strong_total = 8.0 * kWeakPoints;
  for (int p : {8, 27, 64, 125, 216, 343, 512, 729, 1000, 1331, 1728, 2197,
                2744, 3375, 4096}) {
    const double strong_points = strong_total / p;
    const int tpl = std::min(2048, dynamic_tpl(strong_points));
    const double wf = p <= 1000 ? run_for(p, kWeakPoints) : -1;
    const double wt = p <= 1000 ? run_task(p, kWeakPoints, 2048) : -1;
    row({fmt_u(static_cast<std::uint64_t>(p)),
         wf < 0 ? "N/A" : fmt(wf, 0), wt < 0 ? "N/A" : fmt(wt, 0),
         fmt(run_for(p, strong_points), 1),
         fmt(run_task(p, strong_points, tpl), 1),
         fmt_u(static_cast<std::uint64_t>(tpl))}, 15);
  }
  return 0;
}
