// Multi-tenant microbenchmarks: batched vs per-task submission on the
// discovery path, and aggregate throughput of N tenants sharing one
// WorkerPool.
//
// Gated pair (scripts/ci_bench_smoke.sh, BENCH_multitenant.json):
//   BM_SubmitPerTask  — one discovery episode per submit(): the clock
//                       stamp, ready-count/pool-mirror RMWs, parked-worker
//                       probe and throttle check are paid per task.
//   BM_SubmitBatch    — the same graph through begin_batch/end_batch: the
//                       per-submit publication costs are deferred and paid
//                       once per batch. The smoke script requires batch
//                       submission >= 1.15x the per-task rate.
// Both time submission only (execution is drained outside the timed
// region), items_per_second = tasks discovered per second.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/tdg.hpp"
#include "core/worker_pool.hpp"

namespace {

using tdg::Depend;
using tdg::Runtime;
using tdg::WorkerPool;

constexpr int kTasksPerEpisode = 4096;

Runtime::Config solo() {
  Runtime::Config cfg;
  cfg.num_threads = 1;
  // Measure pure submission: no metrics branch, no throttling, no worker
  // wakeup traffic (zero pool workers; the producer drains untimed).
  cfg.throttle.max_total = static_cast<std::size_t>(-1);
  cfg.metrics = false;
  return cfg;
}

void BM_SubmitPerTask(benchmark::State& state) {
  std::int64_t submitted = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Runtime rt(solo());
    state.ResumeTiming();
    for (int i = 0; i < kTasksPerEpisode; ++i) {
      rt.submit([] {}, {});
    }
    state.PauseTiming();
    rt.taskwait();
    state.ResumeTiming();
    submitted += kTasksPerEpisode;
  }
  state.SetItemsProcessed(submitted);
}
BENCHMARK(BM_SubmitPerTask);

void BM_SubmitBatch(benchmark::State& state) {
  std::int64_t submitted = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Runtime rt(solo());
    state.ResumeTiming();
    rt.begin_batch();
    for (int i = 0; i < kTasksPerEpisode; ++i) {
      rt.submit([] {}, {});
    }
    rt.end_batch();
    state.PauseTiming();
    rt.taskwait();
    state.ResumeTiming();
    submitted += kTasksPerEpisode;
  }
  state.SetItemsProcessed(submitted);
}
BENCHMARK(BM_SubmitBatch);

/// Batched submission with real depend clauses (a chain per address): the
/// deferred publication still helps, but discovery hash/edge work bounds
/// the gain — the realistic companion to the gated empty-clause pair.
void BM_SubmitBatchWithDeps(benchmark::State& state) {
  const bool batched = state.range(0) != 0;
  constexpr int kAddrs = 256;
  constexpr int kPerAddr = 16;
  std::vector<double> addrs(kAddrs);
  std::int64_t submitted = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Runtime rt(solo());
    state.ResumeTiming();
    if (batched) rt.begin_batch();
    for (int a = 0; a < kAddrs; ++a) {
      double* p = &addrs[static_cast<std::size_t>(a)];
      for (int i = 0; i < kPerAddr; ++i) {
        rt.submit([] {}, {Depend::inout(p)});
      }
    }
    if (batched) rt.end_batch();
    state.PauseTiming();
    rt.taskwait();
    state.ResumeTiming();
    submitted += kAddrs * kPerAddr;
  }
  state.SetItemsProcessed(submitted);
}
BENCHMARK(BM_SubmitBatchWithDeps)->Arg(0)->Arg(1);

/// Aggregate throughput of N tenants pumping serialized chains through
/// one shared pool (3 workers + N producers). items_per_second = tasks
/// completed per second of wall time across all tenants.
void BM_MultitenantThroughput(benchmark::State& state) {
  const unsigned tenants = static_cast<unsigned>(state.range(0));
  constexpr int kGraphs = 64;
  constexpr int kChain = 4;
  std::int64_t completed = 0;
  for (auto _ : state) {
    state.PauseTiming();
    WorkerPool::Config pc;
    pc.num_workers = 3;
    pc.max_tenants = tenants;
    WorkerPool pool(pc);
    std::atomic<unsigned> ready{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> producers;
    producers.reserve(tenants);
    for (unsigned t = 0; t < tenants; ++t) {
      producers.emplace_back([&] {
        Runtime::Config cfg;
        cfg.pool = &pool;
        cfg.metrics = false;
        Runtime rt(cfg);
        ready.fetch_add(1);
        while (!go.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        std::uint64_t sum = 0;
        for (int g = 0; g < kGraphs; ++g) {
          for (int k = 0; k < kChain; ++k) {
            rt.submit([&sum, k] { sum += static_cast<std::uint64_t>(k); },
                      {Depend::inout(&sum)});
          }
          if (g % 16 == 15) rt.taskwait();
        }
        rt.taskwait();
        benchmark::DoNotOptimize(sum);
      });
    }
    while (ready.load() != tenants) std::this_thread::yield();
    state.ResumeTiming();
    go.store(true, std::memory_order_release);
    for (auto& th : producers) th.join();
    state.PauseTiming();
    completed += static_cast<std::int64_t>(tenants) * kGraphs * kChain;
    state.ResumeTiming();
  }
  state.SetItemsProcessed(completed);
  state.counters["tenants"] = static_cast<double>(tenants);
}
BENCHMARK(BM_MultitenantThroughput)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime();

}  // namespace
