// Experiment T1 — Table 1: impact of the TDG discovery on the work time.
// Blocking execution until the graph is fully discovered ("Non overlapped")
// gives the depth-first scheduler full knowledge of every dependency:
// cache misses and work time drop, idleness almost disappears — but the
// total time explodes because the whole graph unrolls sequentially first.
//
// Paper numbers (for shape): at 4608 TPL, non-overlapped cuts L2 misses
// ~15%, L3 ~42%, work ~32%, idle to ~0; total 357 s vs 112 s.
#include "bench_util.hpp"

int main() {
  using namespace bench;
  using tdg::apps::lulesh::build_sim_graph;
  using tdg::sim::ClusterSim;
  using tdg::sim::SimConfig;

  constexpr int kIterations = 16;

  header("Table 1: overlapped vs non-overlapped TDG discovery");
  row({"instance", "mode", "idle(s)", "work(s)", "L2DCM(M)", "L3CM(M)",
       "total(s)"}, 16);

  struct Case {
    int tpl;
    bool non_overlapped;
    const char* tag;
  };
  for (const Case c : {Case{912, false, "normal"},
                       Case{4608, false, "normal"},
                       Case{4608, true, "non-overlapped"}}) {
    auto opts = lulesh_intra(c.tpl, kIterations, false, false, false, false);
    SimConfig cfg = skylake_config(/*optimized_discovery=*/false);
    cfg.non_overlapped = c.non_overlapped;
    auto g = build_sim_graph(opts);
    ClusterSim sim(cfg);
    sim.set_all_graphs(&g);
    const auto r = sim.run();
    const auto& rk = r.ranks[0];
    // The paper's Table 1 idleness covers the parallel phase: in the
    // non-overlapped configuration the cores' forced wait behind the
    // sequential unroll is excluded (23 workers x discovery span).
    double idle = rk.idle;
    if (c.non_overlapped) {
      idle = std::max(0.0, idle - 23.0 * rk.discovery_seconds);
    }
    row({std::to_string(c.tpl) + " TPL", c.tag, fmt(idle, 1),
         fmt(rk.work, 1), fmt(static_cast<double>(rk.cache.l2_misses) / 1e6, 0),
         fmt(static_cast<double>(rk.cache.l3_misses) / 1e6, 0),
         fmt(r.makespan, 1)}, 16);
  }
  return 0;
}
