// Microbenchmarks of the runtime's discovery primitives on this host:
// task submission, dependence hashing, duplicate-edge elimination,
// persistent replay, inoutset fan-in. These are the per-task/per-edge
// costs the simulator's DiscoveryCosts model.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/tdg.hpp"

namespace {

using tdg::Depend;
using tdg::PersistentRegion;
using tdg::Runtime;

Runtime::Config solo() {
  Runtime::Config cfg;
  cfg.num_threads = 1;
  // Keep every task alive so the benchmarks measure pure discovery.
  cfg.throttle.max_total = static_cast<std::size_t>(-1);
  return cfg;
}

void BM_SubmitIndependent(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Runtime rt(solo());
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); ++i) rt.submit([] {}, {});
    state.PauseTiming();
    rt.taskwait();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SubmitIndependent)->Arg(1000);

void BM_SubmitChain(benchmark::State& state) {
  int x = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Runtime rt(solo());
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); ++i) {
      rt.submit([] {}, {Depend::inout(&x)});
    }
    state.PauseTiming();
    rt.taskwait();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SubmitChain)->Arg(1000);

void BM_SubmitManyDeps(benchmark::State& state) {
  std::vector<double> data(16);
  std::vector<Depend> deps;
  for (auto& d : data) deps.push_back(Depend::inout(&d));
  for (auto _ : state) {
    state.PauseTiming();
    Runtime rt(solo());
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); ++i) {
      rt.submit([] {}, std::span<const Depend>(deps));
    }
    state.PauseTiming();
    rt.taskwait();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          static_cast<long>(deps.size()));
}
BENCHMARK(BM_SubmitManyDeps)->Arg(500);

void BM_DuplicateEdgeElimination(benchmark::State& state) {
  // Fig. 3 pattern: dedup hits on every second depend item.
  double x = 0, y = 0;
  const bool dedup = state.range(0) != 0;
  for (auto _ : state) {
    state.PauseTiming();
    Runtime::Config cfg = solo();
    cfg.discovery.dedup_edges = dedup;
    Runtime rt(cfg);
    state.ResumeTiming();
    for (int i = 0; i < 1000; ++i) {
      rt.submit([] {}, {Depend::out(&x), Depend::out(&y)});
      rt.submit([] {}, {Depend::in(&x), Depend::in(&y)});
    }
    state.PauseTiming();
    rt.taskwait();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_DuplicateEdgeElimination)->Arg(0)->Arg(1);

void BM_PersistentReplayIteration(benchmark::State& state) {
  // The replay cost per task: the paper's "single memcpy on firstprivate".
  const int n = static_cast<int>(state.range(0));
  Runtime rt(solo());
  std::vector<int> out(static_cast<std::size_t>(n));
  int chain = 0;
  PersistentRegion region(rt);
  region.begin_iteration();
  for (int i = 0; i < n; ++i) {
    rt.submit([&out, i] { out[static_cast<std::size_t>(i)] = i; },
              {Depend::inout(&chain)});
  }
  region.end_iteration();
  for (auto _ : state) {
    region.begin_iteration();
    for (int i = 0; i < n; ++i) {
      rt.submit([&out, i] { out[static_cast<std::size_t>(i)] = i; },
                {Depend::inout(&chain)});
    }
    region.end_iteration();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PersistentReplayIteration)->Arg(1000);

void BM_InOutSetFanIn(benchmark::State& state) {
  const bool redirect = state.range(0) != 0;
  double x = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Runtime::Config cfg = solo();
    cfg.discovery.inoutset_redirect = redirect;
    Runtime rt(cfg);
    state.ResumeTiming();
    for (int round = 0; round < 20; ++round) {
      for (int i = 0; i < 16; ++i) {
        rt.submit([] {}, {Depend::inoutset(&x)});
      }
      for (int j = 0; j < 16; ++j) {
        rt.submit([] {}, {Depend::in(&x)});
      }
    }
    state.PauseTiming();
    rt.taskwait();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * 20 * 32);
}
BENCHMARK(BM_InOutSetFanIn)->Arg(0)->Arg(1);

void BM_MetricsOverheadDiscovery(benchmark::State& state) {
  // Cost of the unified metrics on the discovery hot path: the same chain
  // workload as BM_SubmitChain, metrics disabled (Arg 0) vs enabled
  // (Arg 1). The acceptance target is < 5% throughput difference.
  int x = 0;
  const bool metrics = state.range(0) != 0;
  for (auto _ : state) {
    state.PauseTiming();
    Runtime::Config cfg = solo();
    cfg.metrics = metrics;
    Runtime rt(cfg);
    state.ResumeTiming();
    for (int i = 0; i < 1000; ++i) {
      rt.submit([] {}, {Depend::inout(&x)});
    }
    state.PauseTiming();
    rt.taskwait();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_MetricsOverheadDiscovery)->Arg(0)->Arg(1);

void BM_SpawnExecuteThroughput(benchmark::State& state) {
  // End-to-end spawn+execute rate with a worker team: one producer
  // submitting independent tasks while range(0)-1 workers execute them.
  // This is the deque-contention + per-task-allocation path the
  // low-contention scheduler core targets; items/s is the number the CI
  // smoke test guards against regression.
  const unsigned nthreads = static_cast<unsigned>(state.range(0));
  constexpr int kTasks = 20000;
  std::atomic<long> sink{0};
  for (auto _ : state) {
    state.PauseTiming();
    Runtime::Config cfg;
    cfg.num_threads = nthreads;
    cfg.metrics = false;
    Runtime rt(cfg);
    state.ResumeTiming();
    for (int i = 0; i < kTasks; ++i) {
      rt.submit([&sink] { sink.fetch_add(1, std::memory_order_relaxed); },
                {});
    }
    rt.taskwait();
    state.PauseTiming();
    // Runtime teardown (worker join) outside the timed region.
    state.ResumeTiming();
  }
  benchmark::DoNotOptimize(sink.load());
  state.SetItemsProcessed(state.iterations() * kTasks);
}
BENCHMARK(BM_SpawnExecuteThroughput)->Arg(1)->Arg(2)->Arg(4);

void BM_StealThroughput(benchmark::State& state) {
  // Steal-dominated execution: the producer floods its own deque with
  // root tasks whose bodies are long enough that workers must steal
  // nearly everything. Measures tasks/s through the steal path; the
  // sched.steals counter is exported so before/after runs can compare
  // steal rate, not just completion rate.
  const unsigned nthreads = static_cast<unsigned>(state.range(0));
  constexpr int kTasks = 4000;
  std::atomic<long> sink{0};
  std::uint64_t steals = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Runtime::Config cfg;
    cfg.num_threads = nthreads;
    Runtime rt(cfg);
    state.ResumeTiming();
    for (int i = 0; i < kTasks; ++i) {
      rt.submit(
          [&sink] {
            long acc = 0;
            for (int k = 0; k < 64; ++k) acc += k;
            sink.fetch_add(acc, std::memory_order_relaxed);
          },
          {});
    }
    rt.taskwait();
    state.PauseTiming();
    steals += rt.metrics().snapshot().value("sched.steals");
    state.ResumeTiming();
  }
  benchmark::DoNotOptimize(sink.load());
  state.SetItemsProcessed(state.iterations() * kTasks);
  state.counters["steals_per_iter"] = benchmark::Counter(
      static_cast<double>(steals) /
      static_cast<double>(std::max<std::int64_t>(1, state.iterations())));
}
BENCHMARK(BM_StealThroughput)->Arg(2)->Arg(4);

void BM_DetachFulfill(benchmark::State& state) {
  Runtime rt({.num_threads = 1});
  for (auto _ : state) {
    tdg::Event* ev = rt.create_event();
    rt.submit([] {}, {}, {.detach = ev});
    ev->fulfill();
    rt.taskwait();
  }
}
BENCHMARK(BM_DetachFulfill);

}  // namespace
