// Experiment X2 — Section 4.1 ablation: integrating MPI communications
// into the TDG following the data flow, vs bracketing the communication
// sequence with taskwait. With taskwait, requests post only after the
// whole iteration's compute finishes: later posting, less overlap.
//
// Paper: 131.0 s with taskwait vs 121.9 s without (-7%) at TPL 4608.
#include "bench_util.hpp"

int main() {
  using namespace bench;
  using tdg::apps::lulesh::build_sim_graph;
  using tdg::apps::lulesh::SimGraphOptions;
  using tdg::sim::ClusterSim;
  using tdg::sim::SimConfig;
  using tdg::sim::SimGraph;

  constexpr int kEdge = 2;
  constexpr int kRanks = kEdge * kEdge * kEdge;
  constexpr int kIterations = 4;
  constexpr int kTpl = 2176;

  header("Ablation: taskwait around communications (8 ranks, TPL=2176)");
  row({"mode", "comm(s)", "overlap-ratio(%)", "total(s)"}, 20);
  for (bool taskwait : {false, true}) {
    std::vector<SimGraph> graphs;
    for (int r = 0; r < kRanks; ++r) {
      SimGraphOptions o;
      o.cfg.tpl = kTpl;
      o.cfg.iterations = kIterations;
      o.cfg.npoints = 4L * kTpl;
      o.cfg.sim_scale = 16.7e6 / static_cast<double>(o.cfg.npoints);
      // Non-persistent: iterations pipeline, so late request posting
      // actually delays the neighbours' next iteration.
      o.persistent = false;
      o.rx = kEdge;
      o.ry = kEdge;
      o.rz = kEdge;
      o.rank = r;
      o.s = 256;
      o.taskwait_around_comm = taskwait;
      graphs.push_back(build_sim_graph(o));
    }
    SimConfig cfg = epyc_config(/*optimized_discovery=*/true);
    cfg.nranks = kRanks;
    // A loaded fabric: face messages (512 KiB rendezvous) cost real time.
    cfg.network.bandwidth = 1.5e9;
    cfg.network.rendezvous_latency = 50e-6;
    ClusterSim sim(cfg);
    for (int r = 0; r < kRanks; ++r) {
      sim.set_graph(r, &graphs[static_cast<std::size_t>(r)]);
    }
    const auto res = sim.run();
    const auto& rk = res.ranks[0];
    row({taskwait ? "taskwait-bracketed" : "dataflow-integrated",
         fmt(rk.comm.total_comm_seconds, 3),
         fmt(rk.comm.overlap_ratio(16) * 100, 1), fmt(res.makespan, 2)},
        20);
  }
  return 0;
}
