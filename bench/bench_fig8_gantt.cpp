// Experiment F8 — Figure 8: Gantt chart of the distributed task-based
// execution (TPL=1152), optimizations disabled vs enabled. Emits a TSV
// trace (core, start, end, iteration, label) for an interior rank to
// fig8_gantt_{disabled,enabled}.tsv and prints a per-iteration summary.
//
// Paper shapes: with the persistent graph's implicit barrier, iterations
// tile cleanly (no task of iteration n+1 before the end of n); without
// it, iterations interleave. The collective's span covers the barrier gap.
#include <cstdio>
#include <fstream>
#include <map>

#include "bench_util.hpp"

namespace {

using namespace bench;
using tdg::apps::lulesh::build_sim_graph;
using tdg::apps::lulesh::SimGraphOptions;
using tdg::sim::ClusterSim;
using tdg::sim::SimConfig;
using tdg::sim::SimGraph;

constexpr int kEdge = 2;
constexpr int kRanks = kEdge * kEdge * kEdge;
constexpr int kTraceRank = kRanks - 1;  // interior-ish corner
constexpr int kIterations = 5;
constexpr int kTpl = 1152;

void run_config(bool optimized) {
  std::vector<SimGraph> graphs;
  for (int r = 0; r < kRanks; ++r) {
    SimGraphOptions o;
    o.cfg.tpl = kTpl;
    o.cfg.iterations = kIterations;
    o.cfg.minimized_deps = optimized;
    o.cfg.npoints = 4L * kTpl;
    o.cfg.sim_scale = 16.7e6 / static_cast<double>(o.cfg.npoints);
    o.builder.dedup_edges = optimized;
    o.builder.inoutset_redirect = optimized;
    o.persistent = optimized;
    o.rx = kEdge;
    o.ry = kEdge;
    o.rz = kEdge;
    o.rank = r;
    o.s = 256;
    graphs.push_back(build_sim_graph(o));
  }
  SimConfig cfg = epyc_config(optimized);
  cfg.persistent = optimized;
  cfg.iterations = optimized ? kIterations : 1;
  cfg.nranks = kRanks;
  cfg.trace = true;
  cfg.trace_rank = kTraceRank;
  ClusterSim sim(cfg);
  for (int r = 0; r < kRanks; ++r) {
    sim.set_graph(r, &graphs[static_cast<std::size_t>(r)]);
  }
  const auto res = sim.run();
  const auto& trace = res.ranks[kTraceRank].trace;

  const std::string file = optimized ? "fig8_gantt_enabled.tsv"
                                     : "fig8_gantt_disabled.tsv";
  std::ofstream os(file);
  os << "core\tstart_s\tend_s\titeration\tlabel\n";
  for (const auto& rec : trace) {
    os << rec.core << '\t' << rec.start << '\t' << rec.end << '\t'
       << rec.iteration << '\t' << rec.label << '\n';
  }

  // Per-iteration windows: overlap between consecutive iterations shows
  // whether the implicit barrier tiles the execution.
  std::map<std::uint32_t, std::pair<double, double>> window;
  for (const auto& rec : trace) {
    auto [it, ins] = window.try_emplace(
        rec.iteration, std::make_pair(rec.start, rec.end));
    if (!ins) {
      it->second.first = std::min(it->second.first, rec.start);
      it->second.second = std::max(it->second.second, rec.end);
    }
  }
  // Discovery counters of the traced rank's graph: what the optimizations
  // actually did during graph construction.
  const SimGraph& g = graphs[static_cast<std::size_t>(kTraceRank)];
  std::printf("\noptimizations %s (%zu records -> %s):\n",
              optimized ? "enabled" : "disabled", trace.size(),
              file.c_str());
  std::printf(
      "discovery: %zu tasks, %llu edges, %llu duplicate edges eliminated, "
      "%llu redirect nodes inserted\n",
      g.tasks.size(),
      static_cast<unsigned long long>(g.structural_edges()),
      static_cast<unsigned long long>(g.duplicate_edges_skipped),
      static_cast<unsigned long long>(g.redirect_nodes));
  row({"iteration", "first_start(s)", "last_end(s)", "overlaps_next"}, 16);
  for (auto it = window.begin(); it != window.end(); ++it) {
    auto next = std::next(it);
    const bool overlaps =
        next != window.end() && next->second.first < it->second.second;
    row({fmt_u(it->first), fmt(it->second.first, 4),
         fmt(it->second.second, 4), overlaps ? "yes" : "no"}, 16);
  }
}

}  // namespace

int main() {
  header("Figure 8: Gantt of distributed execution, TPL=1152");
  run_config(false);
  run_config(true);
  return 0;
}
