// Experiment X1 — Section 5 ablation: task throttling policies vs the
// scheduler's TDG vision. The LLVM/GCC-style ready-task bound stops the
// producer long before the total-task bound does, so at fine grain the
// depth-first scheduler loses sight of successors (pruned edges, poorer
// cache reuse) even when discovery itself is fast.
//
// Paper claim: "Even with faster TDG discovery, GCC/LLVM runtimes would
// not benefit from finer tasks and depth-first scheduling as their task
// throttling implementation would not allow in-depth vision of the TDG."
#include "bench_util.hpp"

int main() {
  using namespace bench;
  using tdg::apps::lulesh::build_sim_graph;
  using tdg::sim::ClusterSim;
  using tdg::sim::SimConfig;
  using tdg::sim::SimThrottle;

  constexpr int kIterations = 16;
  constexpr int kTpl = 3072;  // the paper's best with ~100k tasks/iter

  header("Ablation: throttling policy at fine grain (TPL=3072, fast disc.)");
  row({"policy", "edges", "pruned", "work(s)", "L3CM(M)", "total(s)"}, 14);

  struct Policy {
    const char* name;
    SimThrottle throttle;
  };
  const Policy policies[] = {
      {"ready<=256", {.max_ready = 256,
                      .max_total = static_cast<std::size_t>(-1)}},
      {"ready<=6144", {.max_ready = 6144,
                       .max_total = static_cast<std::size_t>(-1)}},
      {"total<=10M", {.max_ready = static_cast<std::size_t>(-1),
                      .max_total = 10'000'000}},
      {"total<=20k", {.max_ready = static_cast<std::size_t>(-1),
                      .max_total = 20'000}},
  };
  for (const Policy& p : policies) {
    auto opts = lulesh_intra(kTpl, kIterations, true, true, true, false);
    SimConfig cfg;
    cfg.machine = skylake24();
    cfg.discovery = discovery_optimized();  // discovery is NOT the limit
    cfg.throttle = p.throttle;
    auto g = build_sim_graph(opts);
    ClusterSim sim(cfg);
    sim.set_all_graphs(&g);
    const auto r = sim.run();
    const auto& rk = r.ranks[0];
    row({p.name, fmt_u(rk.edges_created), fmt_u(rk.edges_pruned),
         fmt(rk.work, 1),
         fmt(static_cast<double>(rk.cache.l3_misses) / 1e6, 0),
         fmt(r.makespan, 2)}, 14);
  }
  return 0;
}
