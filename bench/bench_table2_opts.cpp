// Experiment T2 — Table 2: crossing the discovery optimizations
// (a) minimal user dependences, (b) duplicate-edge elimination,
// (c) inoutset redirection, (p) persistent task graph.
//
// Two sections: the modelled paper-scale run (edges / discovery / total,
// like Table 2), and the same crossing executed on the REAL runtime of
// this repository with real kernels (exact edge counts, measured times on
// this host) — small scale, same orderings.
//
// Paper shapes: each optimization removes edges; (a)+(b)+(c) gives ~2.6x
// fewer edges and a large discovery speedup; adding (p) divides discovery
// by ~15 with a slightly higher total (the implicit barrier), and the
// first persistent iteration is ~10x costlier than the replays.
#include <array>

#include "apps/lulesh/lulesh.hpp"
#include "bench_util.hpp"
#include "core/tdg.hpp"

namespace {

using namespace bench;

struct Combo {
  const char* name;
  bool a, b, c, p;
};

constexpr std::array<Combo, 9> kCombos = {{
    {"none", false, false, false, false},
    {"(a)", true, false, false, false},
    {"(b)", false, true, false, false},
    {"(c)", false, false, true, false},
    {"(a)+(b)", true, true, false, false},
    {"(a)+(c)", true, false, true, false},
    {"(b)+(c)", false, true, true, false},
    {"(a)+(b)+(c)", true, true, true, false},
    {"(a)+(b)+(c)+(p)", true, true, true, true},
}};

void simulated_section() {
  using tdg::apps::lulesh::build_sim_graph;
  using tdg::sim::ClusterSim;
  using tdg::sim::SimConfig;
  constexpr int kTpl = 1872;
  constexpr int kIterations = 16;

  header("Table 2 (modelled, TPL=1872, 16 iterations)");
  row({"optimizations", "edges", "discovery(s)", "total(s)"}, 16);
  for (const Combo& c : kCombos) {
    auto opts = lulesh_intra(kTpl, kIterations, c.a, c.b, c.c, c.p);
    // Runtime-side fast paths come with (b)+(c) implemented.
    SimConfig cfg = skylake_config(c.b && c.c);
    cfg.persistent = c.p;
    cfg.iterations = c.p ? kIterations : 1;
    auto g = build_sim_graph(opts);
    ClusterSim sim(cfg);
    sim.set_all_graphs(&g);
    const auto r = sim.run();
    const auto& rk = r.ranks[0];
    row({c.name, fmt_u(rk.edges_created), fmt(rk.discovery_seconds, 2),
         fmt(r.makespan, 2)}, 16);
    if (c.p && rk.discovery_per_iteration.size() > 1) {
      std::printf(
          "    (p): first iteration %.3f s, replay average %.4f s\n",
          rk.discovery_per_iteration[0],
          (rk.discovery_seconds - rk.discovery_per_iteration[0]) /
              static_cast<double>(rk.discovery_per_iteration.size() - 1));
    }
  }
}

void real_runtime_section() {
  using tdg::Runtime;
  using tdg::apps::lulesh::Config;
  using tdg::apps::lulesh::Mesh;

  Config app;
  app.npoints = 1 << 15;
  app.iterations = 8;
  app.tpl = 256;

  header("Table 2 (real runtime on this host, npoints=32768, TPL=256, 8 it)");
  row({"optimizations", "edges", "dup-skipped", "redirects", "pruned",
       "wall(s)"}, 14);
  for (const Combo& c : kCombos) {
    Runtime::Config rc;
    rc.num_threads = 2;  // this machine exposes a single core
    rc.discovery.dedup_edges = c.b;
    rc.discovery.inoutset_redirect = c.c;
    Runtime rt(rc);
    Config acfg = app;
    acfg.minimized_deps = c.a;
    Mesh mesh(acfg.npoints);
    const double t0 = tdg::now_seconds();
    run_taskbased(rt, mesh, acfg, c.p);
    const double wall = tdg::now_seconds() - t0;
    const auto s = rt.stats();
    row({c.name, fmt_u(s.discovery.edges_created),
         fmt_u(s.discovery.edges_duplicate),
         fmt_u(s.discovery.redirect_nodes),
         fmt_u(s.discovery.edges_pruned), fmt(wall, 3)}, 14);
  }
}

}  // namespace

int main() {
  simulated_section();
  real_runtime_section();
  return 0;
}
