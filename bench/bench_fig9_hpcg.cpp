// Experiment F9 — Figure 9: HPCG with dependent tasks on a chain of ranks
// (scaled from the paper's 32 x 24 cores; matrix n = 41.9M). Sweeps the
// number of vector blocks (TPL), SpMV fixed at 32 sub-blocks. Reports the
// time breakdown, communication time, overlapped work and overlap ratio,
// plus edges-per-task and average task grain.
//
// Paper shapes: best work time at the finest grain (~80 us tasks, ~20%
// work reduction) but best TOTAL at a moderate TPL (~1 ms tasks) for a
// ~1.1x speedup over parallel-for; overlap ratio stays low (<= 23%): HPCG
// has little work to overlap with its dot-product collectives. Edges per
// task grow linearly with the block count while the grain shrinks.
#include <vector>

#include "apps/hpcg/hpcg.hpp"
#include "bench_util.hpp"

namespace {

using namespace bench;
using tdg::apps::SimEmitter;
using tdg::sim::ClusterSim;
using tdg::sim::SimConfig;
using tdg::sim::SimGraph;

namespace hpcg = tdg::apps::hpcg;

constexpr int kRanks = 8;
constexpr int kCgIterations = 16;   // scaled from 128 (report x8)
constexpr double kScaleUp = 128.0 / kCgIterations;
constexpr double kRowsPerRank = 1.31e6;  // 41.9M / 32 ranks

hpcg::Config model_config(int tpl) {
  hpcg::Config c;
  c.nx = 16;
  c.ny = 16;
  c.nz_global = 8 * kRanks;  // 8 planes per rank
  c.cg_iterations = kCgIterations;
  c.tpl = tpl;
  c.nspmv = 32;
  c.distributed = true;
  return c;
}

SimGraph rank_graph(const hpcg::Config& base, int rank) {
  hpcg::Config c = base;
  hpcg::Problem prob = hpcg::build_problem(c, rank, kRanks);
  c.sim_scale = kRowsPerRank / static_cast<double>(prob.nrows());
  hpcg::CgState st(prob, c.tpl);
  hpcg::ZHalo halo;
  halo.down = rank > 0 ? rank - 1 : -1;
  halo.up = rank + 1 < kRanks ? rank + 1 : -1;
  SimEmitter em({.builder = {}, .persistent = false});
  emit_init(em, prob, st, c, &halo);
  for (int it = 0; it < c.cg_iterations; ++it) {
    em.begin_iteration(static_cast<std::uint32_t>(it));
    emit_iteration(em, prob, st, c, static_cast<std::uint32_t>(it), &halo);
  }
  return em.take();
}

}  // namespace

int main() {
  header("Figure 9: HPCG, 8 ranks x 24 cores, n=41.9M-equivalent (x8 iters)");

  // parallel-for baseline: spmv + 2 dots + 3 vector loops per iteration,
  // blocking collectives.
  {
    auto pf = parallel_for_graph(kRowsPerRank, 6, kCgIterations, 24,
                                 /*collective=*/true, 60e-9, 120);
    SimConfig cfg = skylake_config(/*optimized_discovery=*/true);
    cfg.nranks = kRanks;
    ClusterSim sim(cfg);
    sim.set_all_graphs(&pf);
    const auto r = sim.run();
    std::printf("parallel-for version: %.2f s\n", r.makespan * kScaleUp);
  }

  row({"TPL", "avg_work(s)", "avg_idle(s)", "avg_ovh(s)", "comm(s)",
       "ratio(%)", "edges/task", "grain(us)", "total(s)"}, 12);
  for (int tpl : {24, 96, 192, 288, 480, 768, 1152, 1536}) {
    const hpcg::Config base = model_config(tpl);
    std::vector<SimGraph> graphs;
    for (int r = 0; r < kRanks; ++r) graphs.push_back(rank_graph(base, r));
    SimConfig cfg = skylake_config(/*optimized_discovery=*/true);
    cfg.nranks = kRanks;
    ClusterSim sim(cfg);
    for (int r = 0; r < kRanks; ++r) {
      sim.set_graph(r, &graphs[static_cast<std::size_t>(r)]);
    }
    const auto res = sim.run();
    const auto& rk = res.ranks[kRanks / 2];
    const double grain =
        rk.work / static_cast<double>(rk.tasks_executed) * 1e6;
    const double edges_per_task =
        static_cast<double>(rk.edges_created + rk.edges_pruned) /
        static_cast<double>(rk.tasks_executed);
    row({fmt_u(static_cast<std::uint64_t>(tpl)),
         fmt(rk.avg_work(24) * kScaleUp, 2),
         fmt(rk.avg_idle(24) * kScaleUp, 2),
         fmt(rk.avg_overhead(24) * kScaleUp, 2),
         fmt(rk.comm.total_comm_seconds * kScaleUp, 2),
         fmt(rk.comm.overlap_ratio(24) * 100, 1), fmt(edges_per_task, 1),
         fmt(grain, 1), fmt(res.makespan * kScaleUp, 2)},
        12);
  }
  return 0;
}
