// Experiment F6 — Figure 6: the Fig. 2 time breakdown with every
// optimization of Section 3 enabled ((a)+(b)+(c)+(p), fast runtime paths).
// The execution is no longer bound by discovery: depth-first scheduling
// stays effective at fine grain and the best TPL moves right.
//
// Paper shape: best TPL after optimizations ~56 s vs ~70 s before vs
// ~86 s parallel-for (1.56x / 1.27x speedups).
#include "bench_util.hpp"

int main() {
  using namespace bench;
  using tdg::apps::lulesh::build_sim_graph;
  using tdg::sim::ClusterSim;
  using tdg::sim::SimConfig;

  constexpr int kIterations = 16;
  constexpr int kLoops = 10;

  header("Figure 6: LULESH intra-node with all optimizations (24 cores)");

  double pf_total = 0;
  {
    auto pf = parallel_for_graph(kIntraPoints, kLoops, kIterations, 24,
                                 /*collective=*/false);
    SimConfig cfg = skylake_config(/*optimized_discovery=*/false);
    ClusterSim sim(cfg);
    sim.set_all_graphs(&pf);
    pf_total = sim.run().makespan;
    std::printf("parallel-for version: %.2f s\n", pf_total);
  }

  row({"TPL", "discovery(s)", "avg_work(s)", "avg_idle(s)", "avg_ovh(s)",
       "total(s)", "L2DCM(M)", "L3CM(M)"});
  double best = 1e300, best_unopt = 1e300;
  int best_tpl = 0;
  for (int tpl : {48, 336, 624, 912, 1200, 1488, 1776, 2064, 2352, 2640,
                  2928, 3216, 3504, 3792, 4080, 4368, 4608, 6912, 9216}) {
    // Optimized configuration.
    {
      auto opts = lulesh_intra(tpl, kIterations, true, true, true, true);
      SimConfig cfg = skylake_config(/*optimized_discovery=*/true);
      cfg.persistent = true;
      cfg.iterations = kIterations;
      auto g = build_sim_graph(opts);
      ClusterSim sim(cfg);
      sim.set_all_graphs(&g);
      const auto r = sim.run();
      const auto& rk = r.ranks[0];
      row({fmt_u(static_cast<std::uint64_t>(tpl)),
           fmt(rk.discovery_seconds, 2), fmt(rk.avg_work(24), 2),
           fmt(rk.avg_idle(24), 2), fmt(rk.avg_overhead(24), 2),
           fmt(r.makespan, 2),
           fmt(static_cast<double>(rk.cache.l2_misses) / 1e6, 0),
           fmt(static_cast<double>(rk.cache.l3_misses) / 1e6, 0)});
      if (r.makespan < best) {
        best = r.makespan;
        best_tpl = tpl;
      }
    }
    // Non-optimized reference (Fig. 2 configuration), for the speedups.
    {
      auto opts = lulesh_intra(tpl, kIterations, false, false, false, false);
      SimConfig cfg = skylake_config(/*optimized_discovery=*/false);
      auto g = build_sim_graph(opts);
      ClusterSim sim(cfg);
      sim.set_all_graphs(&g);
      best_unopt = std::min(best_unopt, sim.run().makespan);
    }
  }
  std::printf(
      "best optimized: TPL=%d at %.2f s | best non-optimized %.2f s | "
      "parallel-for %.2f s\n",
      best_tpl, best, best_unopt, pf_total);
  std::printf("speedup vs parallel-for: %.2fx | vs non-optimized: %.2fx\n",
              pf_total / best, best_unopt / best);
  return 0;
}
