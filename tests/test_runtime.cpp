// Runtime execution engine: scheduling policies, work stealing, taskloop,
// taskwait, detach events, throttling and counters.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <vector>

#include "core/tdg.hpp"

namespace {

using tdg::Depend;
using tdg::Event;
using tdg::Runtime;
using tdg::SchedulePolicy;
using tdg::TaskOpts;

TEST(Runtime, RunsASingleTask) {
  Runtime rt({.num_threads = 2});
  std::atomic<int> hits{0};
  rt.submit([&] { ++hits; }, {});
  rt.taskwait();
  EXPECT_EQ(hits.load(), 1);
}

TEST(Runtime, ManyIndependentTasksAllRun) {
  Runtime rt({.num_threads = 4});
  constexpr int kTasks = 2000;
  std::atomic<long> sum{0};
  for (int i = 0; i < kTasks; ++i) {
    rt.submit([&sum, i] { sum += i; }, {});
  }
  rt.taskwait();
  EXPECT_EQ(sum.load(), static_cast<long>(kTasks) * (kTasks - 1) / 2);
  EXPECT_EQ(rt.stats().tasks_executed, static_cast<std::uint64_t>(kTasks));
}

TEST(Runtime, DependencyChainExecutesInOrder) {
  Runtime rt({.num_threads = 4});
  constexpr int kLen = 1000;
  int value = 0;  // unsynchronized on purpose: the chain serializes access
  for (int i = 0; i < kLen; ++i) {
    rt.submit([&value, i] {
      EXPECT_EQ(value, i);
      value = i + 1;
    }, {Depend::inout(&value)});
  }
  rt.taskwait();
  EXPECT_EQ(value, kLen);
}

TEST(Runtime, DiamondDependencies) {
  Runtime rt({.num_threads = 4});
  int a = 0;
  std::atomic<int> mids{0};
  int b = 0, c = 0, d = 0;
  rt.submit([&] { a = 1; }, {Depend::out(&a)});
  rt.submit([&] { b = a + 1; ++mids; }, {Depend::in(&a), Depend::out(&b)});
  rt.submit([&] { c = a + 2; ++mids; }, {Depend::in(&a), Depend::out(&c)});
  rt.submit([&] {
    EXPECT_EQ(mids.load(), 2);
    d = b + c;
  }, {Depend::in(&b), Depend::in(&c), Depend::out(&d)});
  rt.taskwait();
  EXPECT_EQ(d, 5);
}

TEST(Runtime, TaskwaitIsReentrant) {
  Runtime rt({.num_threads = 2});
  int x = 0;
  rt.submit([&] { x = 1; }, {Depend::out(&x)});
  rt.taskwait();
  rt.submit([&] { x = 2; }, {Depend::inout(&x)});
  rt.taskwait();
  EXPECT_EQ(x, 2);
  rt.taskwait();  // no pending work: returns immediately
}

// --- policies ----------------------------------------------------------------

TEST(Runtime, LifoPolicyRunsNewestFirstOnSingleThread) {
  Runtime rt({.num_threads = 1, .policy = SchedulePolicy::DepthFirstLifo});
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    rt.submit([&order, i] { order.push_back(i); }, {});
  }
  rt.taskwait();
  EXPECT_EQ(order, (std::vector<int>{3, 2, 1, 0}));
}

TEST(Runtime, FifoPolicyRunsOldestFirstOnSingleThread) {
  Runtime rt({.num_threads = 1, .policy = SchedulePolicy::BreadthFirstFifo});
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    rt.submit([&order, i] { order.push_back(i); }, {});
  }
  rt.taskwait();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Runtime, DepthFirstRunsSuccessorBeforeSiblingRoots) {
  // A's successor B should run immediately after A (cache-reuse heuristic),
  // before the older independent root R that sits deeper in the deque.
  Runtime rt({.num_threads = 1, .policy = SchedulePolicy::DepthFirstLifo});
  std::vector<int> order;
  int a = 0;
  rt.submit([&] { order.push_back(100); }, {});  // root R (oldest)
  rt.submit([&] { order.push_back(0); }, {Depend::out(&a)});   // A
  rt.submit([&] { order.push_back(1); }, {Depend::in(&a)});    // B = succ(A)
  rt.taskwait();
  // LIFO: A runs first (newest among ready after B blocked), then B jumps
  // the queue ahead of R.
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 100);
}

// --- taskloop ------------------------------------------------------------------

TEST(Runtime, TaskloopCoversRangeExactlyOnce) {
  Runtime rt({.num_threads = 4});
  constexpr std::int64_t kN = 10007;  // prime: uneven chunks
  std::vector<std::atomic<int>> touched(kN);
  rt.taskloop(
      0, kN, 64,
      [](int, std::int64_t, std::int64_t, tdg::DependList&) {},
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) touched[i]++;
      });
  rt.taskwait();
  for (std::int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(touched[i].load(), 1) << "index " << i;
  }
  EXPECT_EQ(rt.stats().tasks_created, 64u);
}

TEST(Runtime, TaskloopClampsChunksToIterations) {
  Runtime rt({.num_threads = 2});
  std::atomic<int> runs{0};
  rt.taskloop(
      0, 3, 100,
      [](int, std::int64_t, std::int64_t, tdg::DependList&) {},
      [&](std::int64_t, std::int64_t) { ++runs; });
  rt.taskwait();
  EXPECT_EQ(runs.load(), 3);
  EXPECT_EQ(rt.stats().tasks_created, 3u);
}

TEST(Runtime, TaskloopEmptyRangeSubmitsNothing) {
  Runtime rt({.num_threads = 1});
  rt.taskloop(
      5, 5, 8, [](int, std::int64_t, std::int64_t, tdg::DependList&) {},
      [&](std::int64_t, std::int64_t) { FAIL(); });
  rt.taskwait();
  EXPECT_EQ(rt.stats().tasks_created, 0u);
}

TEST(Runtime, DependentTaskloopsPipelinePerChunk) {
  // Two taskloops over the same blocked array: chunk i of loop 2 depends
  // only on chunk i of loop 1 (the paper's per-block dependences).
  Runtime rt({.num_threads = 4});
  constexpr int kBlocks = 16;
  constexpr std::int64_t kN = 1 << 12;
  std::vector<double> v(kN, 0.0);
  auto block_of = [&](std::int64_t lo) {
    return &v[static_cast<std::size_t>(lo)];
  };
  rt.taskloop(
      0, kN, kBlocks,
      [&](int, std::int64_t lo, std::int64_t, tdg::DependList& d) {
        d.push_back(Depend::out(block_of(lo)));
      },
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) v[i] = 1.0;
      });
  rt.taskloop(
      0, kN, kBlocks,
      [&](int, std::int64_t lo, std::int64_t, tdg::DependList& d) {
        d.push_back(Depend::inout(block_of(lo)));
      },
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) v[i] += 1.0;
      });
  rt.taskwait();
  EXPECT_EQ(rt.stats().discovery.edges_created,
            static_cast<std::uint64_t>(kBlocks));
  for (double x : v) ASSERT_EQ(x, 2.0);
}

// --- detach events -----------------------------------------------------------

TEST(Runtime, DetachedTaskCompletesOnlyAfterFulfill) {
  Runtime rt({.num_threads = 2});
  Event* ev = rt.create_event();
  std::atomic<bool> body_done{false};
  std::atomic<bool> succ_ran{false};
  int x = 0;
  TaskOpts opts;
  opts.detach = ev;
  rt.submit([&] { body_done = true; }, {Depend::out(&x)}, opts);
  rt.submit([&] { succ_ran = true; }, {Depend::in(&x)});
  // Fulfill from the polling hook, but only after the body has returned:
  // models an MPI request completing during scheduling points.
  std::atomic<bool> fulfilled_once{false};
  rt.set_polling_hook([&] {
    if (body_done.load() && !fulfilled_once.exchange(true)) {
      EXPECT_FALSE(succ_ran.load())
          << "successor ran before the detach event was fulfilled";
      ev->fulfill();
    }
  });
  rt.taskwait();
  EXPECT_TRUE(body_done.load());
  EXPECT_TRUE(succ_ran.load());
}

TEST(Runtime, FulfillIsIdempotent) {
  Runtime rt({.num_threads = 2});
  Event* ev = rt.create_event();
  TaskOpts opts;
  opts.detach = ev;
  std::atomic<bool> done{false};
  rt.submit([&] { done = true; }, {}, opts);
  rt.set_polling_hook([&] {
    if (done.load()) {
      ev->fulfill();
      ev->fulfill();
    }
  });
  rt.taskwait();
  EXPECT_EQ(rt.stats().tasks_executed, 1u);
}

// --- throttling ----------------------------------------------------------------

TEST(Runtime, TotalThrottleBoundsLiveTasks) {
  Runtime::Config cfg;
  cfg.num_threads = 1;
  cfg.throttle.max_total = 8;
  Runtime rt(cfg);
  std::size_t max_live = 0;
  for (int i = 0; i < 200; ++i) {
    rt.submit([] {}, {});
    max_live = std::max(max_live, rt.live_tasks());
  }
  rt.taskwait();
  // submit may momentarily hold max_total + 1 (the task being created).
  EXPECT_LE(max_live, 9u);
  EXPECT_EQ(rt.stats().tasks_executed, 200u);
}

TEST(Runtime, ReadyThrottleMakesProducerHelp) {
  Runtime::Config cfg;
  cfg.num_threads = 1;
  cfg.throttle.max_ready = 0;  // execute every task as soon as submitted
  Runtime rt(cfg);
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    rt.submit([&order, i] { order.push_back(i); }, {});
  }
  EXPECT_EQ(order.size(), 8u);  // all done before taskwait
  rt.taskwait();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

// --- counters / stress ------------------------------------------------------------

TEST(Runtime, CountersReturnToZero) {
  Runtime rt({.num_threads = 4});
  for (int i = 0; i < 500; ++i) rt.submit([] {}, {});
  rt.taskwait();
  EXPECT_EQ(rt.live_tasks(), 0u);
  EXPECT_EQ(rt.ready_tasks(), 0u);
}

TEST(Runtime, ResetStatsClearsCounters) {
  Runtime rt({.num_threads = 1});
  int x = 0;
  rt.submit([&] { x = 1; }, {Depend::out(&x)});
  rt.submit([&] { x = 2; }, {Depend::inout(&x)});
  rt.taskwait();
  rt.reset_stats();
  auto s = rt.stats();
  EXPECT_EQ(s.tasks_created, 0u);
  EXPECT_EQ(s.tasks_executed, 0u);
  EXPECT_EQ(s.discovery.edges_created, 0u);
  EXPECT_EQ(s.discovery_seconds(), 0.0);
}

struct StressParams {
  unsigned threads;
  SchedulePolicy policy;
};

class RuntimeStress : public ::testing::TestWithParam<StressParams> {};

TEST_P(RuntimeStress, RandomLayeredGraphRespectsAllEdges) {
  // Layered DAG: each layer's tasks read a pseudo-random subset of the
  // previous layer's outputs. Each task checks its inputs were produced.
  const auto p = GetParam();
  Runtime rt({.num_threads = p.threads, .policy = p.policy});
  constexpr int kLayers = 20;
  constexpr int kWidth = 25;
  std::vector<std::vector<int>> data(kLayers, std::vector<int>(kWidth, -1));
  std::uint64_t seed = 12345;
  auto rnd = [&seed] {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<int>((seed >> 33) % kWidth);
  };
  for (int w = 0; w < kWidth; ++w) {
    rt.submit([&data, w] { data[0][w] = w; }, {Depend::out(&data[0][w])});
  }
  for (int l = 1; l < kLayers; ++l) {
    for (int w = 0; w < kWidth; ++w) {
      tdg::DependList deps;
      std::vector<int> inputs;
      for (int k = 0; k < 3; ++k) inputs.push_back(rnd());
      for (int in : inputs) deps.push_back(Depend::in(&data[l - 1][in]));
      deps.push_back(Depend::out(&data[l][w]));
      rt.submit(
          [&data, l, w, inputs] {
            int acc = 0;
            for (int in : inputs) {
              EXPECT_NE(data[l - 1][in], -1)
                  << "layer " << l << " ran before its input";
              acc += data[l - 1][in];
            }
            data[l][w] = acc % 1000;
          },
          std::span<const Depend>(deps.data(), deps.size()));
    }
  }
  rt.taskwait();
  for (int w = 0; w < kWidth; ++w) EXPECT_NE(data[kLayers - 1][w], -1);
  EXPECT_EQ(rt.stats().tasks_executed,
            static_cast<std::uint64_t>(kLayers) * kWidth);
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsAndPolicies, RuntimeStress,
    ::testing::Values(StressParams{1, SchedulePolicy::DepthFirstLifo},
                      StressParams{2, SchedulePolicy::DepthFirstLifo},
                      StressParams{4, SchedulePolicy::DepthFirstLifo},
                      StressParams{8, SchedulePolicy::DepthFirstLifo},
                      StressParams{2, SchedulePolicy::BreadthFirstFifo},
                      StressParams{4, SchedulePolicy::BreadthFirstFifo}));

}  // namespace
