// Dependency-discovery semantics: ordering guarantees of in/out/inout/
// inoutset, edge counting, and the paper's optimizations (b) duplicate-edge
// elimination and (c) inoutset redirection (Section 3.1, Figs. 3-4).
#include <gtest/gtest.h>

#include <mutex>
#include <vector>

#include "core/tdg.hpp"

namespace {

using tdg::Depend;
using tdg::Runtime;

// Single-threaded runtime: tasks only run during taskwait/throttle, so edge
// counts observed before taskwait are deterministic.
Runtime::Config solo_config(bool dedup = true, bool redirect = true) {
  Runtime::Config cfg;
  cfg.num_threads = 1;
  cfg.discovery.dedup_edges = dedup;
  cfg.discovery.inoutset_redirect = redirect;
  return cfg;
}

/// Records execution order; lets tests assert precedence constraints.
class OrderLog {
 public:
  void mark(int id) {
    std::lock_guard<std::mutex> g(mu_);
    order_.push_back(id);
  }
  /// Position of `id` in the execution order; -1 if never executed.
  int pos(int id) const {
    for (std::size_t i = 0; i < order_.size(); ++i) {
      if (order_[i] == id) return static_cast<int>(i);
    }
    return -1;
  }
  void expect_before(int a, int b) const {
    ASSERT_GE(pos(a), 0) << "task " << a << " never ran";
    ASSERT_GE(pos(b), 0) << "task " << b << " never ran";
    EXPECT_LT(pos(a), pos(b))
        << "task " << a << " must run before task " << b;
  }
  std::size_t size() const { return order_.size(); }

 private:
  mutable std::mutex mu_;
  std::vector<int> order_;
};

TEST(Depend, OutThenInCreatesOneEdge) {
  Runtime rt(solo_config());
  int x = 0;
  OrderLog log;
  rt.submit([&] { log.mark(0); }, {Depend::out(&x)});
  rt.submit([&] { log.mark(1); }, {Depend::in(&x)});
  EXPECT_EQ(rt.stats().discovery.edges_created, 1u);
  rt.taskwait();
  log.expect_before(0, 1);
}

TEST(Depend, IndependentReadersShareNoEdge) {
  Runtime rt(solo_config());
  int x = 0;
  OrderLog log;
  rt.submit([&] { log.mark(0); }, {Depend::out(&x)});
  rt.submit([&] { log.mark(1); }, {Depend::in(&x)});
  rt.submit([&] { log.mark(2); }, {Depend::in(&x)});
  rt.submit([&] { log.mark(3); }, {Depend::in(&x)});
  // Writer -> each reader; readers mutually unordered.
  EXPECT_EQ(rt.stats().discovery.edges_created, 3u);
  rt.taskwait();
  log.expect_before(0, 1);
  log.expect_before(0, 2);
  log.expect_before(0, 3);
}

TEST(Depend, WriterAfterReadersWaitsForAll) {
  Runtime rt(solo_config());
  int x = 0;
  OrderLog log;
  rt.submit([&] { log.mark(0); }, {Depend::out(&x)});
  for (int i = 1; i <= 3; ++i) {
    rt.submit([&, i] { log.mark(i); }, {Depend::in(&x)});
  }
  rt.submit([&] { log.mark(4); }, {Depend::out(&x)});
  // 3 writer->reader + 3 reader->writer2 + 1 writer->writer2.
  EXPECT_EQ(rt.stats().discovery.edges_created, 7u);
  rt.taskwait();
  for (int i = 1; i <= 3; ++i) {
    log.expect_before(0, i);
    log.expect_before(i, 4);
  }
}

TEST(Depend, ReadersClearedAfterNewWriter) {
  Runtime rt(solo_config());
  int x = 0;
  OrderLog log;
  rt.submit([&] { log.mark(0); }, {Depend::out(&x)});
  rt.submit([&] { log.mark(1); }, {Depend::in(&x)});
  rt.submit([&] { log.mark(2); }, {Depend::out(&x)});
  rt.submit([&] { log.mark(3); }, {Depend::in(&x)});
  // 0->1, 0->2, 1->2, 2->3: the second reader must not gain an edge from
  // the stale reader generation.
  EXPECT_EQ(rt.stats().discovery.edges_created, 4u);
  rt.taskwait();
  log.expect_before(0, 1);
  log.expect_before(1, 2);
  log.expect_before(2, 3);
}

TEST(Depend, InOutBehavesAsReadWrite) {
  Runtime rt(solo_config());
  int x = 0;
  OrderLog log;
  rt.submit([&] { log.mark(0); }, {Depend::inout(&x)});
  rt.submit([&] { log.mark(1); }, {Depend::inout(&x)});
  rt.submit([&] { log.mark(2); }, {Depend::inout(&x)});
  EXPECT_EQ(rt.stats().discovery.edges_created, 2u);  // serial chain
  rt.taskwait();
  log.expect_before(0, 1);
  log.expect_before(1, 2);
}

TEST(Depend, DuplicateEdgeEliminated) {
  // Fig. 3: one producer writes two addresses both read by one consumer.
  // With optimization (b) the duplicate second edge is skipped in O(1).
  Runtime rt(solo_config(/*dedup=*/true));
  double x = 0, y = 0;
  rt.submit([&] { x = 1; y = 2; }, {Depend::out(&x), Depend::out(&y)});
  rt.submit([&] { (void)(x + y); }, {Depend::in(&x), Depend::in(&y)});
  EXPECT_EQ(rt.stats().discovery.edges_created, 1u);
  EXPECT_EQ(rt.stats().discovery.edges_duplicate, 1u);
  rt.taskwait();
}

TEST(Depend, DuplicateEdgesKeptWithoutOptB) {
  Runtime rt(solo_config(/*dedup=*/false));
  double x = 0, y = 0;
  OrderLog log;
  rt.submit([&] { log.mark(0); }, {Depend::out(&x), Depend::out(&y)});
  rt.submit([&] { log.mark(1); }, {Depend::in(&x), Depend::in(&y)});
  EXPECT_EQ(rt.stats().discovery.edges_created, 2u);
  EXPECT_EQ(rt.stats().discovery.edges_duplicate, 0u);
  rt.taskwait();
  // Double edges must not break the refcount protocol.
  log.expect_before(0, 1);
  EXPECT_EQ(log.size(), 2u);
}

TEST(Depend, SelfDependenceIgnored) {
  // in+out on the same address within one clause would otherwise create a
  // self-edge and deadlock.
  Runtime rt(solo_config(/*dedup=*/false));
  int x = 0;
  rt.submit([&] { x = 1; }, {Depend::in(&x), Depend::out(&x)});
  rt.taskwait();
  EXPECT_EQ(x, 1);
}

TEST(Depend, PrunedEdgeToFinishedPredecessor) {
  Runtime rt(solo_config());
  int x = 0;
  rt.submit([&] { x = 1; }, {Depend::out(&x)});
  rt.taskwait();  // producer executes the writer
  rt.submit([&] { EXPECT_EQ(x, 1); }, {Depend::in(&x)});
  auto s = rt.stats();
  EXPECT_EQ(s.discovery.edges_created, 0u);
  EXPECT_EQ(s.discovery.edges_pruned, 1u);
  rt.taskwait();
}

// --- inoutset ---------------------------------------------------------------

struct SetParams {
  int m;  // concurrent writers
  int n;  // consumers
  bool redirect;
};

class InOutSetEdges : public ::testing::TestWithParam<SetParams> {};

TEST_P(InOutSetEdges, EdgeCountMatchesFig4) {
  const auto p = GetParam();
  Runtime rt(solo_config(/*dedup=*/true, p.redirect));
  std::vector<double> x(16, 0.0);
  OrderLog log;
  for (int i = 0; i < p.m; ++i) {
    rt.submit([&, i] { log.mark(i); }, {Depend::inoutset(x.data())});
  }
  for (int j = 0; j < p.n; ++j) {
    rt.submit([&, j] { log.mark(p.m + j); }, {Depend::in(x.data())});
  }
  const auto s = rt.stats();
  // Members are mutually unordered (no prior writer here). Fig. 4: m*n
  // edges without the redirect node, m+n with it (when m > 1).
  const std::uint64_t expected =
      (p.redirect && p.m > 1)
          ? static_cast<std::uint64_t>(p.m + p.n)
          : static_cast<std::uint64_t>(p.m) * static_cast<std::uint64_t>(p.n);
  EXPECT_EQ(s.discovery.edges_created, expected);
  EXPECT_EQ(s.discovery.redirect_nodes, (p.redirect && p.m > 1) ? 1u : 0u);
  rt.taskwait();
  // Every member before every consumer, in both configurations.
  for (int i = 0; i < p.m; ++i) {
    for (int j = 0; j < p.n; ++j) log.expect_before(i, p.m + j);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, InOutSetEdges,
    ::testing::Values(SetParams{2, 3, true}, SetParams{2, 3, false},
                      SetParams{8, 8, true}, SetParams{8, 8, false},
                      SetParams{1, 4, true}, SetParams{1, 4, false},
                      SetParams{16, 1, true}, SetParams{16, 1, false}));

TEST(Depend, InOutSetOrderedAfterPriorWriter) {
  Runtime rt(solo_config());
  double x = 0;
  OrderLog log;
  rt.submit([&] { log.mark(0); }, {Depend::out(&x)});
  rt.submit([&] { log.mark(1); }, {Depend::inoutset(&x)});
  rt.submit([&] { log.mark(2); }, {Depend::inoutset(&x)});
  rt.taskwait();
  log.expect_before(0, 1);
  log.expect_before(0, 2);
}

TEST(Depend, WriterAfterInOutSetWaitsForAllMembers) {
  for (bool redirect : {true, false}) {
    Runtime rt(solo_config(true, redirect));
    double x = 0;
    OrderLog log;
    for (int i = 0; i < 4; ++i) {
      rt.submit([&, i] { log.mark(i); }, {Depend::inoutset(&x)});
    }
    rt.submit([&] { log.mark(4); }, {Depend::out(&x)});
    rt.taskwait();
    for (int i = 0; i < 4; ++i) log.expect_before(i, 4);
  }
}

TEST(Depend, InOutSetMemberOrderedAfterInterveningReader) {
  // OpenMP 5.1: an inoutset task depends on prior in tasks, and a reader
  // arriving while a generation is open depends on the members so far but
  // not on later members.
  Runtime rt(solo_config());
  double x = 0;
  OrderLog log;
  rt.submit([&] { log.mark(0); }, {Depend::inoutset(&x)});
  rt.submit([&] { log.mark(1); }, {Depend::in(&x)});
  rt.submit([&] { log.mark(2); }, {Depend::inoutset(&x)});
  rt.taskwait();
  log.expect_before(0, 1);
  log.expect_before(1, 2);
}

TEST(Depend, RedirectInvalidatedWhenGenerationGrows) {
  // consumer1 sees a redirect over {m0}, then the set grows; consumer2
  // must wait for the new member too, via a fresh redirect.
  Runtime rt(solo_config());
  double x = 0;
  OrderLog log;
  rt.submit([&] { log.mark(0); }, {Depend::inoutset(&x)});
  rt.submit([&] { log.mark(1); }, {Depend::inoutset(&x)});
  rt.submit([&] { log.mark(2); }, {Depend::in(&x)});       // redirect #1
  rt.submit([&] { log.mark(3); }, {Depend::inoutset(&x)}); // grows set
  rt.submit([&] { log.mark(4); }, {Depend::in(&x)});       // needs member 3
  rt.taskwait();
  log.expect_before(0, 2);
  log.expect_before(1, 2);
  log.expect_before(2, 3);  // member 3 ordered after reader 2
  log.expect_before(3, 4);
}

TEST(Depend, InOutSetPlusInOnSameAddressDoesNotSelfDeadlock) {
  // Regression: a task with inoutset(x) followed by in(x) joins the open
  // generation and then consumes it; the redirect node must not create an
  // indirect self-cycle (T -> R -> T).
  Runtime rt(solo_config());
  double x = 0;
  OrderLog log;
  rt.submit([&] { log.mark(0); }, {Depend::inoutset(&x)});
  rt.submit([&] { log.mark(1); }, {Depend::inoutset(&x)});
  rt.submit([&] { log.mark(2); },
            {Depend::inoutset(&x), Depend::in(&x)});
  rt.submit([&] { log.mark(3); }, {Depend::out(&x)});
  rt.taskwait();
  EXPECT_EQ(log.size(), 4u);
  log.expect_before(0, 3);
  log.expect_before(1, 3);
  log.expect_before(2, 3);
}

TEST(Depend, ManyAddressesIndependentChains) {
  Runtime rt(solo_config());
  constexpr int kChains = 32;
  constexpr int kLen = 16;
  std::vector<int> data(kChains, 0);
  for (int step = 0; step < kLen; ++step) {
    for (int c = 0; c < kChains; ++c) {
      rt.submit([&data, c] { ++data[c]; }, {Depend::inout(&data[c])});
    }
  }
  EXPECT_EQ(rt.stats().discovery.edges_created,
            static_cast<std::uint64_t>(kChains) * (kLen - 1));
  rt.taskwait();
  for (int c = 0; c < kChains; ++c) EXPECT_EQ(data[c], kLen);
}

TEST(Depend, ClearDependencyScopeForgetsHistory) {
  Runtime rt(solo_config());
  int x = 0;
  rt.submit([&] { x = 1; }, {Depend::out(&x)});
  rt.clear_dependency_scope();
  rt.submit([&] { x = 2; }, {Depend::out(&x)});
  EXPECT_EQ(rt.stats().discovery.edges_created, 0u);
  EXPECT_EQ(rt.stats().discovery.edges_pruned, 0u);
  rt.taskwait();
}

}  // namespace
