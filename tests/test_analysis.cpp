// Tests for the post-mortem trace analysis: critical path on a hand-built
// diamond DAG with a known answer, parallelism profiling, and the
// discovery/execution overlap metric.
#include <gtest/gtest.h>

#include <vector>

#include "core/analysis.hpp"
#include "core/error.hpp"

namespace tdg {
namespace {

TaskRecord rec(std::uint64_t id, const char* label, std::uint64_t t_create,
               std::uint64_t t_start, std::uint64_t t_end,
               std::uint32_t thread = 0) {
  TaskRecord r;
  r.task_id = id;
  r.label = label;
  r.t_create = t_create;
  r.t_ready = t_create;
  r.t_start = t_start;
  r.t_end = t_end;
  r.thread = thread;
  return r;
}

// Diamond: A -> {B, C} -> D. Durations A=10, B=30, C=5, D=10 (ns), so the
// critical path is A-B-D with length 50ns.
std::vector<TaskRecord> diamond_records() {
  return {
      rec(1, "A", 0, 0, 10),
      rec(2, "B", 1, 10, 40, 0),
      rec(3, "C", 2, 10, 15, 1),
      rec(4, "D", 3, 40, 50),
  };
}

std::vector<TraceEdge> diamond_edges() {
  return {{1, 2}, {1, 3}, {2, 4}, {3, 4}};
}

TEST(CriticalPathTest, DiamondHasKnownExactAnswer) {
  const auto records = diamond_records();
  const auto edges = diamond_edges();
  const CriticalPath cp = critical_path(records, edges);

  ASSERT_EQ(cp.nodes.size(), 3u);
  EXPECT_EQ(cp.nodes[0].task_id, 1u);
  EXPECT_EQ(cp.nodes[1].task_id, 2u);
  EXPECT_EQ(cp.nodes[2].task_id, 4u);
  EXPECT_NEAR(cp.length_seconds, 50e-9, 1e-15);
  EXPECT_NEAR(cp.span_seconds, 50e-9, 1e-15);
  EXPECT_NEAR(cp.slack_ratio(), 1.0, 1e-9);

  // Per-label attribution, sorted descending: B (30) > A, D (10 each).
  ASSERT_EQ(cp.label_seconds.size(), 3u);
  EXPECT_EQ(cp.label_seconds[0].first, "B");
  EXPECT_NEAR(cp.label_seconds[0].second, 30e-9, 1e-15);
}

TEST(CriticalPathTest, NoEdgesDegeneratesToLongestTask) {
  const auto records = diamond_records();
  const CriticalPath cp = critical_path(records, {});
  ASSERT_EQ(cp.nodes.size(), 1u);
  EXPECT_EQ(cp.nodes[0].task_id, 2u);  // B, duration 30
  EXPECT_NEAR(cp.length_seconds, 30e-9, 1e-15);
}

TEST(CriticalPathTest, EdgesWithUnknownEndpointsAreIgnored) {
  const auto records = diamond_records();
  auto edges = diamond_edges();
  edges.push_back({99, 1});  // no record for 99
  edges.push_back({4, 777});
  const CriticalPath cp = critical_path(records, edges);
  EXPECT_EQ(cp.nodes.size(), 3u);
  EXPECT_NEAR(cp.length_seconds, 50e-9, 1e-15);
}

TEST(CriticalPathTest, DuplicateEdgesDoNotChangeTheAnswer) {
  const auto records = diamond_records();
  auto edges = diamond_edges();
  edges.push_back({1, 2});
  edges.push_back({1, 2});
  const CriticalPath cp = critical_path(records, edges);
  EXPECT_EQ(cp.nodes.size(), 3u);
  EXPECT_NEAR(cp.length_seconds, 50e-9, 1e-15);
}

TEST(CriticalPathTest, CyclicEdgeSetThrows) {
  const auto records = diamond_records();
  auto edges = diamond_edges();
  edges.push_back({4, 1});  // close the cycle
  EXPECT_THROW(critical_path(records, edges), UsageError);
}

TEST(CriticalPathTest, EmptyTraceYieldsEmptyPath) {
  const CriticalPath cp = critical_path({}, {});
  EXPECT_TRUE(cp.nodes.empty());
  EXPECT_EQ(cp.length_seconds, 0.0);
}

TEST(ParallelismProfileTest, DiamondConcurrency) {
  const ParallelismProfile p = parallelism_profile(diamond_records());
  // Timeline: [0,10) one task (A); [10,15) two (B,C); [15,40) one (B);
  // [40,50) one (D). Max concurrency 2, no idle gaps.
  EXPECT_EQ(p.max_concurrency, 2u);
  EXPECT_NEAR(p.span_seconds, 50e-9, 1e-15);
  EXPECT_NEAR(p.busy_seconds, 50e-9, 1e-15);
  ASSERT_GE(p.seconds_at.size(), 3u);
  EXPECT_NEAR(p.seconds_at[1], 45e-9, 1e-15);
  EXPECT_NEAR(p.seconds_at[2], 5e-9, 1e-15);
  EXPECT_NEAR(p.avg_concurrency, 55.0 / 50.0, 1e-9);
}

TEST(ParallelismProfileTest, GapInsideSpanCountsAsIdle) {
  std::vector<TaskRecord> records = {
      rec(1, "A", 0, 0, 10),
      rec(2, "B", 0, 20, 30),  // 10ns idle gap between A and B
  };
  const ParallelismProfile p = parallelism_profile(records);
  EXPECT_NEAR(p.span_seconds, 30e-9, 1e-15);
  EXPECT_NEAR(p.busy_seconds, 20e-9, 1e-15);
  ASSERT_GE(p.seconds_at.size(), 2u);
  EXPECT_NEAR(p.seconds_at[0], 10e-9, 1e-15);
}

TEST(OverlapTest, FullAndZeroOverlap) {
  // Discovery window [0, 30] (t_create of first/last). Execution covers
  // [0,10) and [20,30): 20 of 30 ns covered.
  std::vector<TaskRecord> partial = {
      rec(1, "A", 0, 0, 10),
      rec(2, "B", 30, 20, 30),
  };
  EXPECT_NEAR(discovery_execution_overlap(partial), 20.0 / 30.0, 1e-9);

  // All execution strictly after the discovery window: zero overlap.
  std::vector<TaskRecord> none = {
      rec(1, "A", 0, 100, 110),
      rec(2, "B", 10, 120, 130),
  };
  EXPECT_NEAR(discovery_execution_overlap(none), 0.0, 1e-12);

  // Fewer than two records or a zero-width window: defined as 0.
  EXPECT_EQ(discovery_execution_overlap({}), 0.0);
  std::vector<TaskRecord> same = {rec(1, "A", 5, 0, 10),
                                  rec(2, "B", 5, 0, 10)};
  EXPECT_EQ(discovery_execution_overlap(same), 0.0);
}

}  // namespace
}  // namespace tdg
