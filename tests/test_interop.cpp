// MPI + tasking interoperability: communications nested inside dependent
// tasks, completed through detach events by the scheduling-point poller —
// the composition pattern of Listing 1 in the paper.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "core/tdg.hpp"
#include "mpi/interop.hpp"
#include "mpi/mpi.hpp"

namespace {

using tdg::Depend;
using tdg::Event;
using tdg::PersistentRegion;
using tdg::Runtime;
using tdg::TaskOpts;
using tdg::mpi::Comm;
using tdg::mpi::Op;
using tdg::mpi::RequestPoller;
using tdg::mpi::Universe;

TEST(Interop, SendRecvInsideDetachedTasks) {
  // Each rank runs its own tasking runtime; halo-style exchange done by
  // tasks: pack -> isend(detach), irecv(detach) -> unpack.
  Universe::run(2, [](Comm& comm) {
    Runtime rt({.num_threads = 2});
    RequestPoller poller(rt);
    const int peer = 1 - comm.rank();

    std::vector<double> interior(128, comm.rank() + 1.0);
    std::vector<double> sbuf(128), rbuf(128, -1.0);
    std::vector<double> result(128, 0.0);

    // Pack depends on the interior, produces sbuf.
    rt.submit(
        [&] {
          for (std::size_t i = 0; i < sbuf.size(); ++i) sbuf[i] = interior[i];
        },
        {Depend::in(interior.data()), Depend::out(sbuf.data())});

    // Send task: detached, completes when the wire transfer does.
    Event* sev = rt.create_event();
    rt.submit(
        [&, sev] {
          poller.complete_on_event(
              comm.isend(sbuf.data(), sbuf.size() * sizeof(double), peer, 0),
              sev);
        },
        {Depend::in(sbuf.data())}, {.detach = sev});

    // Receive task: detached on the incoming message.
    Event* rev = rt.create_event();
    rt.submit(
        [&, rev] {
          poller.complete_on_event(
              comm.irecv(rbuf.data(), rbuf.size() * sizeof(double), peer, 0),
              rev);
        },
        {Depend::out(rbuf.data())}, {.detach = rev});

    // Unpack strictly after the receive completed.
    rt.submit(
        [&] {
          for (std::size_t i = 0; i < rbuf.size(); ++i) result[i] = rbuf[i];
        },
        {Depend::in(rbuf.data()), Depend::out(result.data())});

    rt.taskwait();
    for (double v : result) ASSERT_EQ(v, peer + 1.0);
    EXPECT_EQ(poller.pending(), 0u);
    const auto spans = poller.completed_spans();
    EXPECT_EQ(spans.size(), 2u);
  });
}

TEST(Interop, AllreduceInsideTaskGatesNextIteration) {
  // Listing 1's dt pattern: a task computes a local dt and allreduces it;
  // every consumer of dt waits on the collective's detach event.
  Universe::run(3, [](Comm& comm) {
    Runtime rt({.num_threads = 2});
    RequestPoller poller(rt);
    double dt = 0.0;
    double local = 10.0 + comm.rank();
    std::atomic<int> consumers{0};

    Event* ev = rt.create_event();
    rt.submit(
        [&, ev] {
          poller.complete_on_event(comm.iallreduce(&local, &dt, 1, Op::Min),
                                   ev, /*collective=*/true);
        },
        {Depend::out(&dt)}, {.detach = ev});
    for (int i = 0; i < 4; ++i) {
      rt.submit(
          [&] {
            EXPECT_EQ(dt, 10.0);
            ++consumers;
          },
          {Depend::in(&dt)});
    }
    rt.taskwait();
    EXPECT_EQ(consumers.load(), 4);
  });
}

TEST(Interop, PersistentRegionWithCommunications) {
  // Iterative halo exchange under a persistent graph: the communication
  // tasks are replayed, re-posting requests each iteration with fresh
  // detach fulfilment.
  constexpr int kIters = 5;
  Universe::run(2, [](Comm& comm) {
    Runtime rt({.num_threads = 2});
    RequestPoller poller(rt);
    const int peer = 1 - comm.rank();
    double value = comm.rank();  // grows by peer exchange every iteration
    double sbuf = 0, rbuf = 0;

    PersistentRegion region(rt);
    Event* sev = rt.create_event();
    Event* rev = rt.create_event();
    for (int it = 0; it < kIters; ++it) {
      region.begin_iteration();
      rt.submit([&] { sbuf = value; },
                {Depend::in(&value), Depend::out(&sbuf)});
      // Replayed tasks reach their own (re-armed) detach event through
      // current_task_event(): TaskOpts of replay submissions are ignored.
      rt.submit(
          [&rt, &poller, &comm, &sbuf, peer, it] {
            poller.complete_on_event(
                comm.isend(&sbuf, sizeof sbuf, peer, it),
                rt.current_task_event());
          },
          {Depend::in(&sbuf)}, {.detach = sev});
      rt.submit(
          [&rt, &poller, &comm, &rbuf, peer, it] {
            poller.complete_on_event(
                comm.irecv(&rbuf, sizeof rbuf, peer, it),
                rt.current_task_event());
          },
          {Depend::out(&rbuf)}, {.detach = rev});
      rt.submit([&] { value += rbuf; },
                {Depend::in(&rbuf), Depend::inout(&value)});
      region.end_iteration();
    }
    // Both ranks compute the same recurrence: v_{n+1} = v0 + v1 (sym.)
    // After each iteration both values become equal, then double.
    // it 0: v0' = 0+1 = 1, v1' = 1+0 = 1; thereafter doubling.
    EXPECT_EQ(value, 1.0 * (1 << (kIters - 1)));
  });
}

TEST(Interop, SecondPollerSurvivesFirstPollerDestruction) {
  // Regression: ~RequestPoller used to clear the runtime's polling hook
  // unconditionally, so destroying an older poller silently disabled a
  // newer one — requests tracked by the survivor were never polled again
  // and their detach events never fulfilled (a hang). The token-based
  // uninstall only clears the hook if it is still the destructor's own.
  Universe::run(2, [](Comm& comm) {
    Runtime rt({.num_threads = 2});
    const int peer = 1 - comm.rank();
    auto first = std::make_unique<RequestPoller>(rt);
    auto second = std::make_unique<RequestPoller>(rt);
    // `second` installed last: it owns the hook. Destroying `first` must
    // leave it in place.
    first.reset();

    double out = comm.rank() + 0.5, in = -1;
    Event* sev = rt.create_event();
    rt.submit(
        [&, sev] {
          second->complete_on_event(comm.isend(&out, sizeof out, peer, 0),
                                    sev);
        },
        {Depend::in(&out)}, {.detach = sev});
    Event* rev = rt.create_event();
    rt.submit(
        [&, rev] {
          second->complete_on_event(comm.irecv(&in, sizeof in, peer, 0),
                                    rev);
        },
        {Depend::out(&in)}, {.detach = rev});
    rt.taskwait();  // hangs here if the surviving poller lost its hook
    EXPECT_EQ(in, peer + 0.5);
    EXPECT_EQ(second->pending(), 0u);
  });
}

TEST(Interop, ManyConcurrentRequestsDrainViaPolling) {
  Universe::run(2, [](Comm& comm) {
    Runtime rt({.num_threads = 4});
    RequestPoller poller(rt);
    const int peer = 1 - comm.rank();
    constexpr int kMsgs = 32;
    std::vector<double> out(kMsgs), in(kMsgs, -1);
    std::atomic<int> unpacked{0};
    for (int i = 0; i < kMsgs; ++i) {
      out[i] = comm.rank() * 1000 + i;
      Event* sev = rt.create_event();
      rt.submit(
          [&, sev, i] {
            poller.complete_on_event(
                comm.isend(&out[i], sizeof(double), peer, i), sev);
          },
          {Depend::in(&out[i])}, {.detach = sev});
      Event* rev = rt.create_event();
      rt.submit(
          [&, rev, i] {
            poller.complete_on_event(
                comm.irecv(&in[i], sizeof(double), peer, i), rev);
          },
          {Depend::out(&in[i])}, {.detach = rev});
      rt.submit(
          [&, i] {
            EXPECT_EQ(in[i], peer * 1000 + i);
            ++unpacked;
          },
          {Depend::in(&in[i])});
    }
    rt.taskwait();
    EXPECT_EQ(unpacked.load(), kMsgs);
    EXPECT_EQ(poller.pending(), 0u);
  });
}

}  // namespace
