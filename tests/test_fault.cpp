// Fault-tolerance subsystem: structured error propagation (task exceptions
// -> graph poisoning -> TaskGroupError at taskwait), the per-task retry
// policy, the hang watchdog, deadline-aware MPI waits, and deterministic
// fault injection in the MPI substrate.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/tdg.hpp"
#include "mpi/interop.hpp"
#include "mpi/mpi.hpp"

namespace {

using tdg::DeadlineError;
using tdg::Depend;
using tdg::Event;
using tdg::PersistentRegion;
using tdg::Runtime;
using tdg::TaskGroupError;
using tdg::UsageError;
using tdg::mpi::Comm;
using tdg::mpi::FaultPlan;
using tdg::mpi::RequestPoller;
using tdg::mpi::Universe;

// ---------------------------------------------------------------------------
// Error propagation and graph poisoning
// ---------------------------------------------------------------------------

TEST(ErrorPropagation, ThrowingTaskReportsAtTaskwait) {
  Runtime rt({.num_threads = 2});
  rt.submit([] { throw std::runtime_error("boom"); }, {},
            {.label = "exploder"});
  try {
    rt.taskwait();
    FAIL() << "taskwait did not throw";
  } catch (const TaskGroupError& e) {
    ASSERT_EQ(e.failures().size(), 1u);
    EXPECT_EQ(e.failures()[0].label, "exploder");
    EXPECT_EQ(e.failures()[0].message, "boom");
    EXPECT_EQ(e.failures()[0].attempts, 1u);
    EXPECT_TRUE(e.cancelled().empty());
    EXPECT_NE(std::string(e.what()).find("exploder"), std::string::npos);
    // The original exception is preserved and rethrowable.
    EXPECT_THROW(e.rethrow_first(), std::runtime_error);
  }
  // The runtime stays usable: the failure was consumed.
  EXPECT_FALSE(rt.has_failures());
  std::atomic<int> ran{0};
  rt.submit([&] { ++ran; }, {});
  rt.taskwait();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ErrorPropagation, DependentsCancelledIndependentsRun) {
  Runtime rt({.num_threads = 2});
  int chain = 0, other = 0;
  std::atomic<int> dependents_ran{0};
  std::atomic<int> independents_ran{0};
  rt.submit([] { throw std::runtime_error("first fails"); },
            {Depend::out(&chain)}, {.label = "root"});
  // Transitive dependents: must be cancelled, bodies never run.
  rt.submit([&] { ++dependents_ran; }, {Depend::inout(&chain)},
            {.label = "dep1"});
  rt.submit([&] { ++dependents_ran; }, {Depend::in(&chain)},
            {.label = "dep2"});
  // Independent subgraph: must still run.
  rt.submit([&] { ++independents_ran; }, {Depend::out(&other)});
  rt.submit([&] { ++independents_ran; }, {Depend::in(&other)});
  try {
    rt.taskwait();
    FAIL() << "taskwait did not throw";
  } catch (const TaskGroupError& e) {
    ASSERT_EQ(e.failures().size(), 1u);
    EXPECT_EQ(e.failures()[0].label, "root");
    ASSERT_EQ(e.cancelled().size(), 2u);
    std::vector<std::string> labels;
    for (const auto& c : e.cancelled()) labels.push_back(c.label);
    EXPECT_NE(std::find(labels.begin(), labels.end(), "dep1"), labels.end());
    EXPECT_NE(std::find(labels.begin(), labels.end(), "dep2"), labels.end());
  }
  EXPECT_EQ(dependents_ran.load(), 0);
  EXPECT_EQ(independents_ran.load(), 2);
  // Counters are consistent after a poisoned graph drained.
  const auto s = rt.stats();
  EXPECT_EQ(s.tasks_failed, 1u);
  EXPECT_EQ(s.tasks_cancelled, 2u);
  EXPECT_EQ(s.tasks_executed, 2u);
  EXPECT_EQ(rt.live_tasks(), 0u);
  EXPECT_EQ(rt.ready_tasks(), 0u);
}

TEST(ErrorPropagation, LateDiscoveredDependentOfFailedTaskIsCancelled) {
  // The failed task finishes (its failure is even reported) before the
  // dependent is submitted: the normally-pruned edge to a finished
  // predecessor must still poison the late dependent.
  Runtime rt({.num_threads = 2});
  int x = 0;
  std::atomic<bool> ran{false};
  rt.submit([] { throw std::runtime_error("early"); }, {Depend::out(&x)},
            {.label = "early-fail"});
  EXPECT_THROW(rt.taskwait(), TaskGroupError);
  rt.submit([&] { ran = true; }, {Depend::in(&x)}, {.label = "late-dep"});
  try {
    rt.taskwait();
    FAIL() << "late dependent was not cancelled";
  } catch (const TaskGroupError& e) {
    EXPECT_TRUE(e.failures().empty());
    ASSERT_EQ(e.cancelled().size(), 1u);
    EXPECT_EQ(e.cancelled()[0].label, "late-dep");
  }
  EXPECT_FALSE(ran.load());
}

TEST(ErrorPropagation, MultipleFailuresAggregate) {
  Runtime rt({.num_threads = 4});
  for (int i = 0; i < 5; ++i) {
    rt.submit([] { throw std::runtime_error("fail"); }, {},
              {.label = "multi"});
  }
  try {
    rt.taskwait();
    FAIL() << "taskwait did not throw";
  } catch (const TaskGroupError& e) {
    EXPECT_EQ(e.failures().size(), 5u);
  }
  EXPECT_EQ(rt.stats().tasks_failed, 5u);
}

TEST(ErrorPropagation, FailedDetachedTaskDoesNotWedge) {
  // A task that throws before posting the operation that would fulfill its
  // detach event must not leave the latch stuck.
  Runtime rt({.num_threads = 2});
  Event* ev = rt.create_event();
  rt.submit([] { throw std::runtime_error("never posts"); }, {},
            {.label = "detached-fail", .detach = ev});
  EXPECT_THROW(rt.taskwait(), TaskGroupError);
  EXPECT_EQ(rt.live_tasks(), 0u);
}

TEST(ErrorPropagation, NonStdExceptionIsCaptured) {
  Runtime rt({.num_threads = 2});
  rt.submit([] { throw 42; }, {}, {.label = "int-thrower"});
  try {
    rt.taskwait();
    FAIL() << "taskwait did not throw";
  } catch (const TaskGroupError& e) {
    ASSERT_EQ(e.failures().size(), 1u);
    EXPECT_EQ(e.failures()[0].message, "<non-std exception>");
  }
}

// ---------------------------------------------------------------------------
// Retry policy
// ---------------------------------------------------------------------------

TEST(Retry, TransientFailureSucceedsWithinBudget) {
  Runtime rt({.num_threads = 2});
  std::atomic<int> calls{0};
  rt.submit(
      [&] {
        if (calls.fetch_add(1) < 2) throw std::runtime_error("transient");
      },
      {}, {.label = "flaky", .max_retries = 3,
           .retry_backoff_seconds = 1e-4});
  rt.taskwait();  // must not throw
  EXPECT_EQ(calls.load(), 3);
  const auto s = rt.stats();
  EXPECT_EQ(s.task_retries, 2u);
  EXPECT_EQ(s.tasks_failed, 0u);
  EXPECT_EQ(s.tasks_executed, 1u);
}

TEST(Retry, BudgetExhaustedReportsAttemptCount) {
  Runtime rt({.num_threads = 2});
  std::atomic<int> calls{0};
  rt.submit(
      [&] {
        ++calls;
        throw std::runtime_error("permanent");
      },
      {}, {.label = "doomed", .max_retries = 2});
  try {
    rt.taskwait();
    FAIL() << "taskwait did not throw";
  } catch (const TaskGroupError& e) {
    ASSERT_EQ(e.failures().size(), 1u);
    EXPECT_EQ(e.failures()[0].attempts, 3u);  // 1 try + 2 retries
  }
  EXPECT_EQ(calls.load(), 3);
  EXPECT_EQ(rt.stats().task_retries, 2u);
}

TEST(Retry, WorksUnderPersistentReplay) {
  // A persistent task that fails transiently on its first attempt of
  // every iteration must still produce each iteration's result.
  Runtime rt({.num_threads = 2});
  std::atomic<int> attempts{0};
  int out = -1;
  PersistentRegion region(rt);
  constexpr int kIters = 4;
  for (int it = 0; it < kIters; ++it) {
    region.begin_iteration();
    rt.submit(
        [&attempts, &out, it] {
          if (attempts.fetch_add(1) % 2 == 0) {
            throw std::runtime_error("transient");
          }
          out = it;
        },
        {Depend::out(&out)},
        {.label = "flaky-persistent", .max_retries = 1});
    region.end_iteration();
    EXPECT_EQ(out, it);
  }
  EXPECT_EQ(attempts.load(), 2 * kIters);
  EXPECT_EQ(rt.stats().task_retries, static_cast<std::uint64_t>(kIters));
}

// ---------------------------------------------------------------------------
// Persistent-region failure interplay
// ---------------------------------------------------------------------------

TEST(PersistentFailure, FailedIterationLeavesRegionReusable) {
  Runtime rt({.num_threads = 2});
  int value = 0;
  std::atomic<int> consumer_runs{0};
  PersistentRegion region(rt);
  constexpr int kIters = 5;
  constexpr int kFailingIter = 2;
  for (int it = 0; it < kIters; ++it) {
    region.begin_iteration();
    rt.submit(
        [&value, it] {
          if (it == kFailingIter) throw std::runtime_error("iteration down");
          value = it;
        },
        {Depend::out(&value)}, {.label = "producer"});
    rt.submit([&consumer_runs] { ++consumer_runs; }, {Depend::in(&value)},
              {.label = "consumer"});
    if (it == kFailingIter) {
      try {
        region.end_iteration();
        FAIL() << "failing iteration did not throw";
      } catch (const TaskGroupError& e) {
        ASSERT_EQ(e.failures().size(), 1u);
        EXPECT_EQ(e.failures()[0].label, "producer");
        ASSERT_EQ(e.cancelled().size(), 1u);
        EXPECT_EQ(e.cancelled()[0].label, "consumer");
      }
    } else {
      region.end_iteration();
      EXPECT_EQ(value, it);
    }
  }
  EXPECT_EQ(region.iterations_done(), static_cast<std::uint32_t>(kIters));
  EXPECT_EQ(consumer_runs.load(), kIters - 1);
  EXPECT_EQ(rt.live_tasks(), 0u);
}

TEST(PersistentFailure, FailureDuringDiscoveryIterationStillReplays) {
  Runtime rt({.num_threads = 2});
  std::atomic<int> runs{0};
  int x = 0;
  PersistentRegion region(rt);
  for (int it = 0; it < 3; ++it) {
    region.begin_iteration();
    rt.submit(
        [&runs, &x, it] {
          if (it == 0) throw std::runtime_error("discovery fails");
          x = it;
          ++runs;
        },
        {Depend::out(&x)}, {.label = "disc"});
    if (it == 0) {
      EXPECT_THROW(region.end_iteration(), TaskGroupError);
    } else {
      region.end_iteration();
      EXPECT_EQ(x, it);
    }
  }
  EXPECT_EQ(runs.load(), 2);
}

// ---------------------------------------------------------------------------
// Usage errors (previously fatal aborts)
// ---------------------------------------------------------------------------

TEST(UsageErrors, RecoverableMisuseThrowsInsteadOfAborting) {
  Runtime rt({.num_threads = 1});
  EXPECT_THROW(rt.taskloop(
                   0, 8, /*num_tasks=*/0,
                   [](int, std::int64_t, std::int64_t, tdg::DependList&) {},
                   [](std::int64_t, std::int64_t) {}),
               UsageError);
  {
    PersistentRegion region(rt);
    EXPECT_THROW(PersistentRegion{rt}, UsageError);
    region.begin_iteration();
    EXPECT_THROW(region.begin_iteration(), UsageError);
    region.end_iteration();
    EXPECT_THROW(region.end_iteration(), UsageError);
  }
  // The runtime survives all of the above.
  std::atomic<int> ran{0};
  rt.submit([&] { ++ran; }, {});
  rt.taskwait();
  EXPECT_EQ(ran.load(), 1);
}

// ---------------------------------------------------------------------------
// Hang watchdog
// ---------------------------------------------------------------------------

TEST(Watchdog, UnfulfilledDetachEventTripsDeadlineWithDiagnostic) {
  Runtime::Config cfg;
  cfg.num_threads = 2;
  cfg.watchdog.deadline_seconds = 0.2;
  Runtime rt(cfg);
  Event* ev = rt.create_event();
  rt.submit([] {}, {}, {.label = "stuck-comm", .detach = ev});
  try {
    rt.taskwait();
    FAIL() << "taskwait did not trip the watchdog";
  } catch (const DeadlineError& e) {
    const std::string report = e.report();
    EXPECT_NE(report.find("taskwait"), std::string::npos) << report;
    EXPECT_NE(report.find("live tasks: 1"), std::string::npos) << report;
    EXPECT_NE(report.find("unfulfilled detach event"), std::string::npos)
        << report;
    EXPECT_NE(report.find("stuck-comm"), std::string::npos) << report;
  }
  // Unwedge so teardown can drain.
  ev->fulfill();
  rt.taskwait();
}

TEST(Watchdog, CallbackModeReportsAndKeepsWaiting) {
  Runtime::Config cfg;
  cfg.num_threads = 2;
  cfg.watchdog.deadline_seconds = 0.05;
  std::atomic<int> reports{0};
  std::string first_report;
  std::mutex report_mu;
  cfg.watchdog.on_deadline = [&](const std::string& r) {
    std::lock_guard<std::mutex> g(report_mu);
    if (reports.fetch_add(1) == 0) first_report = r;
  };
  Runtime rt(cfg);
  Event* ev = rt.create_event();
  rt.submit([] {}, {}, {.label = "slow-event", .detach = ev});
  // Fulfill from a helper thread after a few deadline periods elapse.
  std::thread unblocker([&] {
    while (reports.load() < 2) std::this_thread::yield();
    ev->fulfill();
  });
  rt.taskwait();  // must not throw: callback mode keeps waiting
  unblocker.join();
  EXPECT_GE(reports.load(), 2);
  std::lock_guard<std::mutex> g(report_mu);
  EXPECT_NE(first_report.find("slow-event"), std::string::npos);
}

TEST(Watchdog, QuietWhenTasksProgress) {
  Runtime::Config cfg;
  cfg.num_threads = 2;
  cfg.watchdog.deadline_seconds = 0.5;
  Runtime rt(cfg);
  std::atomic<int> n{0};
  for (int i = 0; i < 64; ++i) rt.submit([&n] { ++n; }, {});
  rt.taskwait();  // plenty of progress: no DeadlineError
  EXPECT_EQ(n.load(), 64);
}

// ---------------------------------------------------------------------------
// Deadline-aware MPI waits
// ---------------------------------------------------------------------------

TEST(CommDeadline, WaitForNeverMatchedIrecvNamesThePendingRequest) {
  Universe::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      double buf = 0;
      auto r = comm.irecv(&buf, sizeof buf, /*src=*/1, /*tag=*/7);
      try {
        comm.wait_for(r, 0.1);
        FAIL() << "wait_for did not expire";
      } catch (const DeadlineError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("irecv"), std::string::npos) << msg;
        EXPECT_NE(msg.find("src=1"), std::string::npos) << msg;
        EXPECT_NE(msg.find("tag=7"), std::string::npos) << msg;
      }
    }
    // Rank 1 deliberately never sends.
  });
}

TEST(CommDeadline, DefaultWaitDeadlineArmsPlainWait) {
  Universe::Options opts;
  opts.default_wait_deadline_seconds = 0.1;
  EXPECT_THROW(
      Universe::run(
          2,
          [](Comm& comm) {
            if (comm.rank() == 0) {
              double buf = 0;
              comm.recv(&buf, sizeof buf, 1, 3);  // never sent
            }
          },
          opts),
      DeadlineError);
}

TEST(CommDeadline, WaitallForReportsOnlyPendingRequests) {
  Universe::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      double a = 0, b = 0;
      std::vector<tdg::mpi::Request> rs;
      rs.push_back(comm.irecv(&a, sizeof a, 1, 1));  // will be sent
      rs.push_back(comm.irecv(&b, sizeof b, 1, 99));  // never sent
      try {
        comm.waitall_for(rs, 0.3);
        FAIL() << "waitall_for did not expire";
      } catch (const DeadlineError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("tag=99"), std::string::npos) << msg;
        EXPECT_EQ(msg.find("tag=1 "), std::string::npos) << msg;
      }
    } else {
      double v = 1.5;
      comm.send(&v, sizeof v, 0, 1);
    }
  });
}

TEST(CommDeadline, FiresExactlyOnceUnderStragglerAndDuplicates) {
  // One expired wait throws exactly one DeadlineError; the request is
  // still live afterwards and a later wait can pick it up once the
  // straggler's message lands — injection must not multiply the throw.
  Universe::Options opts;
  opts.faults.seed = 31;
  opts.faults.duplicate_probability = 0.5;
  opts.faults.straggler_ranks = {1};
  opts.faults.straggler_delay_seconds = 0.3;
  Universe::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      double in = -1;
      auto r = comm.irecv(&in, sizeof in, 1, 2);
      int deadline_errors = 0;
      try {
        comm.wait_for(r, 0.05);
      } catch (const DeadlineError&) {
        ++deadline_errors;
      }
      EXPECT_EQ(deadline_errors, 1);
      EXPECT_FALSE(r.done());
      comm.wait_for(r, 10.0);  // the straggler delivers eventually
      EXPECT_EQ(in, 6.5);
      comm.barrier();
    } else {
      double v = 6.5;
      comm.wait(comm.isend(&v, sizeof v, 0, 2));
      comm.barrier();
    }
  }, opts);
}

TEST(CommDeadline, WaitallForReportsEveryIncompleteRequest) {
  // A partially-completed set under duplicate injection: the report must
  // name each incomplete request and omit every completed one.
  Universe::Options opts;
  opts.faults.seed = 37;
  opts.faults.duplicate_probability = 0.5;
  Universe::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      double a = 0, b = 0, c = 0, d = 0;
      std::vector<tdg::mpi::Request> rs;
      rs.push_back(comm.irecv(&a, sizeof a, 1, 1));   // sent
      rs.push_back(comm.irecv(&b, sizeof b, 1, 97));  // never sent
      rs.push_back(comm.irecv(&c, sizeof c, 1, 2));   // sent
      rs.push_back(comm.irecv(&d, sizeof d, 1, 98));  // never sent
      try {
        comm.waitall_for(rs, 0.3);
        FAIL() << "waitall_for did not expire";
      } catch (const DeadlineError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("tag=97"), std::string::npos) << msg;
        EXPECT_NE(msg.find("tag=98"), std::string::npos) << msg;
        EXPECT_EQ(msg.find("tag=1 "), std::string::npos) << msg;
        EXPECT_EQ(msg.find("tag=2 "), std::string::npos) << msg;
      }
      comm.barrier();
    } else {
      double v = 1.5;
      comm.send(&v, sizeof v, 0, 1);
      comm.send(&v, sizeof v, 0, 2);
      comm.barrier();
    }
  }, opts);
}

TEST(CommDeadline, DeadlineErrorDoesNotLeakThePollingHook) {
  // A DeadlineError unwinding past a RequestPoller must leave the hook
  // machinery consistent: the surviving poller still completes later
  // requests, and once it is destroyed a fresh hook installs cleanly.
  Universe::Options opts;
  opts.faults.seed = 41;
  opts.faults.straggler_ranks = {1};
  opts.faults.straggler_delay_seconds = 0.2;
  Universe::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      Runtime rt({.num_threads = 2});
      {
        RequestPoller poller(rt, comm);
        double in = -1;
        auto r = comm.irecv(&in, sizeof in, 1, 3);
        EXPECT_THROW(comm.wait_for(r, 0.05), DeadlineError);
        // The poller's hook survived the unwind: a tracked request still
        // completes through runtime polling.
        tdg::Event* ev = rt.create_event();
        rt.submit([&, ev] { poller.complete_on_event(r, ev); }, {},
                  {.label = "late-recv", .detach = ev});
        rt.taskwait();
        EXPECT_EQ(in, 8.25);
      }
      // The destroyed poller uninstalled its hook; a fresh one installs
      // and is actually invoked: only the hook fulfills the detach event,
      // so this taskwait can complete no other way.
      std::atomic<int> hook_calls{0};
      tdg::Event* ev2 = rt.create_event();
      auto token = rt.set_polling_hook([&hook_calls, ev2] {
        if (hook_calls.fetch_add(1) == 3) ev2->fulfill();
      });
      rt.submit([] {}, {}, {.label = "hook-driven", .detach = ev2});
      rt.taskwait();
      EXPECT_GT(hook_calls.load(), 3);
      rt.clear_polling_hook(token);
      comm.barrier();
    } else {
      double v = 8.25;
      comm.wait(comm.isend(&v, sizeof v, 0, 3));
      comm.barrier();
    }
  }, opts);
}

// ---------------------------------------------------------------------------
// Universe exception propagation
// ---------------------------------------------------------------------------

TEST(Universe, RankExceptionRethrownOnJoiningThread) {
  try {
    Universe::run(3, [](Comm& comm) {
      if (comm.rank() == 1) throw std::runtime_error("rank 1 died");
    });
    FAIL() << "Universe::run did not rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "rank 1 died");
  }
}

TEST(Universe, LowestFailingRankWins) {
  try {
    Universe::run(4, [](Comm& comm) {
      throw std::runtime_error("rank " + std::to_string(comm.rank()));
    });
    FAIL() << "Universe::run did not rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "rank 0");
  }
}

TEST(Universe, BadArgumentsThrowUsageError) {
  EXPECT_THROW(Universe::run(0, [](Comm&) {}), UsageError);
  EXPECT_THROW(Universe::run(2,
                             [](Comm& comm) {
                               double v = 0;
                               comm.isend(&v, sizeof v, /*dest=*/7, 0);
                             }),
               UsageError);
}

// ---------------------------------------------------------------------------
// Deterministic fault injection
// ---------------------------------------------------------------------------

TEST(FaultInjection, DelayedMessagesStillDeliverCorrectData) {
  Universe::Options opts;
  opts.faults.seed = 42;
  opts.faults.delay_probability = 0.5;
  opts.faults.delay_seconds = 0.02;
  Universe::run(2, [](Comm& comm) {
    const int peer = 1 - comm.rank();
    constexpr int kMsgs = 24;
    for (int i = 0; i < kMsgs; ++i) {
      double out = comm.rank() * 100.0 + i, in = -1;
      auto s = comm.isend(&out, sizeof out, peer, i);
      auto r = comm.irecv(&in, sizeof in, peer, i);
      comm.wait_for(r, 10.0);
      comm.wait_for(s, 10.0);
      ASSERT_EQ(in, peer * 100.0 + i);
    }
    if (comm.rank() == 0) {
      EXPECT_GT(comm.fault_stats().delays, 0u);
    }
  }, opts);
}

TEST(FaultInjection, SameSeedSameFaults) {
  auto run_once = [](std::uint64_t seed) {
    tdg::mpi::FaultStats out{};
    Universe::Options opts;
    opts.faults.seed = seed;
    opts.faults.delay_probability = 0.3;
    opts.faults.delay_seconds = 0.001;
    opts.faults.duplicate_probability = 0.3;
    opts.faults.reorder_probability = 0.3;
    Universe::run(2, [&out](Comm& comm) {
      const int peer = 1 - comm.rank();
      for (int i = 0; i < 32; ++i) {
        double v = i, in = -1;
        auto s = comm.isend(&v, sizeof v, peer, i);
        auto r = comm.irecv(&in, sizeof in, peer, i);
        comm.wait_for(r, 10.0);
        comm.wait_for(s, 10.0);
      }
      comm.barrier();
      if (comm.rank() == 0) out = comm.fault_stats();
    }, opts);
    return out;
  };
  const auto a = run_once(7);
  const auto b = run_once(7);
  const auto c = run_once(8);
  EXPECT_EQ(a.delays, b.delays);
  EXPECT_EQ(a.duplicates, b.duplicates);
  EXPECT_EQ(a.reorders, b.reorders);
  EXPECT_GT(a.delays + a.duplicates + a.reorders, 0u);
  // A different seed draws a different plan (overwhelmingly likely).
  EXPECT_TRUE(a.delays != c.delays || a.duplicates != c.duplicates ||
              a.reorders != c.reorders);
}

TEST(FaultInjection, StragglerDelayBeyondDeadlineNamesPendingRequest) {
  // The acceptance scenario: a seeded plan makes rank 1 a straggler whose
  // messages arrive far beyond the watchdog deadline; the deadline-aware
  // wait must produce a diagnostic naming the pending request.
  Universe::Options opts;
  opts.faults.seed = 99;
  opts.faults.straggler_ranks = {1};
  opts.faults.straggler_delay_seconds = 5.0;
  Universe::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      double in = -1;
      auto r = comm.irecv(&in, sizeof in, 1, 13);
      try {
        comm.wait_for(r, 0.2);
        FAIL() << "straggler message arrived before the deadline";
      } catch (const DeadlineError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("irecv src=1 tag=13"), std::string::npos) << msg;
        EXPECT_NE(msg.find("pending"), std::string::npos) << msg;
      }
      // Collectives are never perturbed: the barrier both quiesces rank 1's
      // counter updates and proves the universe is still functional.
      comm.barrier();
      EXPECT_GT(comm.fault_stats().straggler_delays, 0u);
    } else {
      double v = 3.25;
      comm.wait(comm.isend(&v, sizeof v, 0, 13));  // eager: completes now
      comm.barrier();
    }
  }, opts);
}

TEST(FaultInjection, StragglerMessageEventuallyArrives) {
  Universe::Options opts;
  opts.faults.seed = 5;
  opts.faults.straggler_ranks = {1};
  opts.faults.straggler_delay_seconds = 0.05;
  Universe::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      double in = -1;
      auto r = comm.irecv(&in, sizeof in, 1, 4);
      comm.wait_for(r, 10.0);
      EXPECT_EQ(in, 2.5);
    } else {
      double v = 2.5;
      comm.wait(comm.isend(&v, sizeof v, 0, 4));
    }
  }, opts);
}

TEST(FaultInjection, WatchdogReportNamesPendingRequestUnderStraggler) {
  // Full-stack acceptance: runtime watchdog + RequestPoller diagnostic.
  // A detached receive task depends on a straggler's message that cannot
  // arrive before the watchdog deadline; the taskwait DeadlineError must
  // name the pending request and the owning task, and embed the per-rank
  // heartbeat/status table plus the fault counters injected since the
  // poller armed the diagnostic.
  Universe::Options opts;
  opts.faults.seed = 21;
  opts.faults.straggler_ranks = {1};
  opts.faults.straggler_delay_seconds = 30.0;
  Universe::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      Runtime::Config cfg;
      cfg.num_threads = 2;
      cfg.watchdog.deadline_seconds = 0.25;
      Runtime rt(cfg);
      RequestPoller poller(rt, comm);
      double in = -1;
      Event* ev = rt.create_event();
      rt.submit(
          [&, ev] {
            poller.complete_on_event(comm.irecv(&in, sizeof in, 1, 6), ev);
          },
          {Depend::out(&in)}, {.label = "halo-recv", .detach = ev});
      try {
        rt.taskwait();
        FAIL() << "watchdog did not trip";
      } catch (const DeadlineError& e) {
        const std::string report = e.report();
        EXPECT_NE(report.find("pending MPI request"), std::string::npos)
            << report;
        EXPECT_NE(report.find("irecv src=1 tag=6"), std::string::npos)
            << report;
        EXPECT_NE(report.find("halo-recv"), std::string::npos) << report;
        EXPECT_NE(report.find("rank 0:"), std::string::npos) << report;
        EXPECT_NE(report.find("heartbeat"), std::string::npos) << report;
        EXPECT_NE(report.find("injected faults since arming"),
                  std::string::npos)
            << report;
      }
      // Unwedge for teardown: the message does arrive, 30s out — fulfill
      // the event directly instead of waiting for it.
      ev->fulfill();
      rt.taskwait();
    } else {
      double v = 9.0;
      comm.wait(comm.isend(&v, sizeof v, 0, 6));
    }
  }, opts);
}

}  // namespace
