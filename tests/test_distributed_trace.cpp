// Distributed tracing: cross-rank trace stitching (merge + clock-offset
// rebasing), derived message edges feeding the comm-aware critical path,
// flow matching under duplicate injection, and the end-to-end multi-rank
// record -> merge -> export -> parse-back round-trip.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <sstream>
#include <thread>
#include <tuple>
#include <vector>

#include "core/analysis.hpp"
#include "core/tdg.hpp"
#include "core/trace_export.hpp"
#include "core/trace_merge.hpp"
#include "mpi/interop.hpp"
#include "mpi/mpi.hpp"

namespace tdg {
namespace {

TaskRecord make_record(std::uint64_t id, std::uint64_t t_start,
                       std::uint64_t t_end, const char* label) {
  TaskRecord r;
  r.task_id = id;
  r.t_create = t_start;
  r.t_ready = t_start;
  r.t_start = t_start;
  r.t_end = t_end;
  r.label = label;
  return r;
}

CommRecord make_comm(CommRecord::Kind kind, std::int32_t self,
                     std::int32_t peer, std::int32_t tag, std::uint64_t seq,
                     std::uint64_t t_post, std::uint64_t t_complete,
                     std::uint64_t task_id) {
  CommRecord c;
  c.kind = kind;
  c.self = self;
  c.peer = peer;
  c.tag = tag;
  c.seq = seq;
  c.bytes = 64;
  c.t_post = t_post;
  c.t_complete = t_complete;
  c.task_id = task_id;
  return c;
}

/// Two hand-built per-rank traces: rank 0 produces and sends, rank 1
/// receives and consumes. Rank 1's clock runs `skew_ns` ahead.
std::vector<ParsedTrace> two_rank_inputs(std::int64_t skew_ns) {
  const std::uint64_t skew = static_cast<std::uint64_t>(skew_ns);
  std::vector<ParsedTrace> inputs(2);
  inputs[0].records.push_back(make_record(1, 100, 1000, "produce"));
  inputs[0].comms.push_back(make_comm(CommRecord::Kind::Send, 0, 1, 5, 1,
                                      1000, 1100, 1));
  // Local ids intentionally collide with rank 0's (both use task id 1) to
  // exercise the global remapping.
  inputs[1].records.push_back(
      make_record(1, 2000 + skew, 3000 + skew, "consume"));
  inputs[1].comms.push_back(make_comm(CommRecord::Kind::Recv, 1, 0, 5, 1,
                                      500 + skew, 1900 + skew, 1));
  return inputs;
}

TEST(TraceMerge, StitchesRanksAndDerivesCrossRankEdges) {
  MergeResult res = merge_traces(two_rank_inputs(0));
  EXPECT_EQ(res.matched_messages, 1u);
  EXPECT_EQ(res.unmatched_messages, 0u);
  ASSERT_EQ(res.ranks.size(), 2u);
  EXPECT_EQ(res.ranks[0], 0);
  EXPECT_EQ(res.ranks[1], 1);

  // Colliding local ids became distinct global ids on distinct strides.
  ASSERT_EQ(res.trace.records.size(), 2u);
  const std::uint64_t id0 = kMergeRankStride + 1;
  const std::uint64_t id1 = 2 * kMergeRankStride + 1;
  EXPECT_EQ(res.trace.records[0].task_id, id0);
  EXPECT_EQ(res.trace.records[1].task_id, id1);
  EXPECT_EQ(res.trace.records[0].rank, 0);
  EXPECT_EQ(res.trace.records[1].rank, 1);

  ASSERT_EQ(res.cross_rank_edges.size(), 1u);
  EXPECT_EQ(res.cross_rank_edges[0].pred, id0);
  EXPECT_EQ(res.cross_rank_edges[0].succ, id1);

  // The comm-aware critical path traverses the message edge and reports
  // the rank crossing.
  const CriticalPath cp = critical_path(res.trace.records, res.trace.edges);
  ASSERT_EQ(cp.nodes.size(), 2u);
  EXPECT_GE(cp.comm_hops, 1u);
  EXPECT_EQ(cp.nodes[0].rank, 0);
  EXPECT_EQ(cp.nodes[1].rank, 1);
}

TEST(TraceMerge, ClockOffsetRebasingRestoresCausality) {
  // Rank 1's clock runs 10 ms ahead; without rebasing, its receive would
  // sit far in the future. After merging, every matched pair must be
  // causal (send post <= recv complete) and the offset must show up in
  // offset_ns for the skewed input.
  MergeResult res = merge_traces(two_rank_inputs(10'000'000));
  ASSERT_EQ(res.matched_messages, 1u);
  EXPECT_EQ(res.offset_ns[0], 0);
  EXPECT_GT(res.offset_ns[1], 0);

  const CommRecord* send = nullptr;
  const CommRecord* recv = nullptr;
  for (const CommRecord& c : res.trace.comms) {
    if (c.kind == CommRecord::Kind::Send) send = &c;
    if (c.kind == CommRecord::Kind::Recv) recv = &c;
  }
  ASSERT_NE(send, nullptr);
  ASSERT_NE(recv, nullptr);
  EXPECT_LE(send->t_post, recv->t_complete);
  // Merged timeline is normalized: it starts at zero somewhere.
  std::uint64_t tmin = UINT64_MAX;
  for (const TaskRecord& r : res.trace.records) {
    tmin = std::min(tmin, r.t_create);
  }
  for (const CommRecord& c : res.trace.comms) {
    tmin = std::min(tmin, c.t_post);
  }
  EXPECT_EQ(tmin, 0u);
  // Tasks stay internally monotone after rebasing.
  for (const TaskRecord& r : res.trace.records) {
    EXPECT_LE(r.t_create, r.t_start);
    EXPECT_LE(r.t_start, r.t_end);
  }
}

TEST(TraceMerge, MergedTraceRoundTripsThroughBothFormats) {
  MergeResult res = merge_traces(two_rank_inputs(0));
  {
    std::ostringstream os;
    write_perfetto(os, res.trace.records, res.trace.edges,
                   res.trace.accesses, {}, {}, res.trace.comms);
    std::istringstream is(os.str());
    const ParsedTrace back = parse_perfetto(is);
    EXPECT_EQ(back.records.size(), res.trace.records.size());
    EXPECT_EQ(back.edges.size(), res.trace.edges.size());
    EXPECT_EQ(back.comms.size(), res.trace.comms.size());
    // Ranks survive via the pid scheme.
    EXPECT_EQ(back.records[0].rank, 0);
    EXPECT_EQ(back.records[1].rank, 1);
  }
  {
    std::ostringstream os;
    write_trace_tsv(os, res.trace.records, res.trace.accesses, {}, {},
                    res.trace.comms);
    std::istringstream is(os.str());
    const ParsedTrace back = parse_trace_tsv(is);
    ASSERT_EQ(back.records.size(), res.trace.records.size());
    ASSERT_EQ(back.comms.size(), res.trace.comms.size());
    for (std::size_t i = 0; i < back.records.size(); ++i) {
      EXPECT_EQ(back.records[i].task_id, res.trace.records[i].task_id);
      EXPECT_EQ(back.records[i].rank, res.trace.records[i].rank);
      EXPECT_EQ(back.records[i].t_start, res.trace.records[i].t_start);
    }
    for (std::size_t i = 0; i < back.comms.size(); ++i) {
      EXPECT_EQ(back.comms[i].seq, res.trace.comms[i].seq);
      EXPECT_EQ(back.comms[i].t_post, res.trace.comms[i].t_post);
    }
  }
}

TEST(TraceMerge, CommWaitAndOverlapAnalyses) {
  MergeResult res = merge_traces(two_rank_inputs(0));
  const std::vector<CommWaitEntry> waits =
      comm_wait_by_label(res.trace.comms, res.trace.records);
  ASSERT_FALSE(waits.empty());
  // The receive is owned by "consume" and dominates the wait ranking.
  EXPECT_EQ(waits.front().label, "consume");
  EXPECT_GT(waits.front().wait_seconds, 0.0);

  const std::vector<RankOverlap> rows =
      rank_overlap_matrix(res.trace.records, res.trace.comms);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].rank, 0);
  EXPECT_EQ(rows[1].rank, 1);
  EXPECT_EQ(rows[0].tasks, 1u);
  EXPECT_GT(rows[1].comm_wait_seconds, 0.0);
}

/// Live 2-rank universe under duplicate injection with reliable delivery:
/// every recorded send must match exactly one recorded receive on the
/// same (src, dst, tag, seq) — duplicates are suppressed before they can
/// mint a second receive record.
TEST(DistributedTrace, FlowMatchingSurvivesDuplicateInjection) {
  mpi::Universe::Options opts;
  opts.comm_trace = true;
  opts.reliable.enabled = true;
  opts.faults.duplicate_probability = 0.5;
  opts.faults.seed = 42;

  TelemetryHub::instance().drain();  // isolate from other tests
  std::vector<std::vector<CommRecord>> per_rank(2);
  mpi::Universe::run(2, [&](mpi::Comm& comm) {
    Runtime rt({.num_threads = 2});
    rt.profiler().set_trace_enabled(true);
    mpi::RequestPoller poller(rt, comm);
    const int peer = 1 - comm.rank();
    constexpr int kRounds = 8;
    std::vector<double> sbuf(16, comm.rank() + 1.0), rbuf(16, 0.0);
    for (int i = 0; i < kRounds; ++i) {
      Event* sev = rt.create_event();
      rt.submit(
          [&, sev] {
            poller.complete_on_event(
                comm.isend(sbuf.data(), sbuf.size() * sizeof(double), peer,
                           i),
                sev);
          },
          {Depend::in(sbuf.data())}, {.label = "send", .detach = sev});
      Event* rev = rt.create_event();
      rt.submit(
          [&, rev] {
            poller.complete_on_event(
                comm.irecv(rbuf.data(), rbuf.size() * sizeof(double), peer,
                           i),
                rev);
          },
          {Depend::out(rbuf.data())}, {.label = "recv", .detach = rev});
      rt.taskwait();
    }
    per_rank[static_cast<std::size_t>(comm.rank())] =
        rt.profiler().comm_records();
  }, opts);

  // Every send pairs with exactly one receive and vice versa.
  std::map<std::tuple<int, int, int, std::uint64_t>, std::pair<int, int>>
      sides;
  std::size_t sends = 0, recvs = 0;
  for (const auto& comms : per_rank) {
    for (const CommRecord& c : comms) {
      ASSERT_NE(c.seq, 0u) << "universe did not assign stream sequences";
      if (c.kind == CommRecord::Kind::Send) {
        ++sends;
        ++sides[{c.self, c.peer, c.tag, c.seq}].first;
      } else if (c.kind == CommRecord::Kind::Recv) {
        ++recvs;
        ++sides[{c.peer, c.self, c.tag, c.seq}].second;
      }
    }
  }
  EXPECT_EQ(sends, 16u);  // 8 rounds x 2 ranks
  EXPECT_EQ(recvs, 16u);
  for (const auto& [key, counts] : sides) {
    EXPECT_EQ(counts.first, 1) << "duplicate send record";
    EXPECT_EQ(counts.second, 1) << "duplicate/missing recv record";
  }

  // And the merged view stitches all of them.
  std::vector<ParsedTrace> inputs(2);
  inputs[0].comms = per_rank[0];
  inputs[1].comms = per_rank[1];
  const MergeResult res = merge_traces(std::move(inputs));
  EXPECT_EQ(res.matched_messages, 16u);
  EXPECT_EQ(res.unmatched_messages, 0u);
}

/// Regression: Profiler::reset() between persistent-graph iterations must
/// quiesce the comm ring too, or replayed iterations re-attribute stale
/// records to fresh flow events.
TEST(DistributedTrace, ProfilerResetDropsCommRecords) {
  Profiler prof(2, /*trace_enabled=*/true);
  prof.record_comm(make_comm(CommRecord::Kind::Send, 0, 1, 1, 1, 10, 20, 7));
  ASSERT_EQ(prof.comm_records().size(), 1u);
  prof.reset();
  EXPECT_TRUE(prof.comm_records().empty());
  prof.record_comm(make_comm(CommRecord::Kind::Recv, 0, 1, 1, 1, 30, 40, 8));
  EXPECT_EQ(prof.comm_records().size(), 1u);
}

TEST(Telemetry, SamplerFeedsHubAndUniverseReport) {
  setenv("TDG_TELEMETRY", "on", 1);
  setenv("TDG_TELEMETRY_PERIOD_MS", "1", 1);
  TelemetryHub::instance().drain();

  mpi::Universe::Report report;
  mpi::Universe::run(2, [&](mpi::Comm& comm) {
    Runtime rt({.num_threads = 2});
    mpi::RequestPoller poller(rt, comm);
    const int peer = 1 - comm.rank();
    std::vector<double> sbuf(8, 1.0), rbuf(8, 0.0);
    for (int i = 0; i < 50; ++i) {
      Event* sev = rt.create_event();
      rt.submit(
          [&, sev] {
            poller.complete_on_event(
                comm.isend(sbuf.data(), sbuf.size() * sizeof(double), peer,
                           i),
                sev);
          },
          {}, {.detach = sev});
      Event* rev = rt.create_event();
      rt.submit(
          [&, rev] {
            poller.complete_on_event(
                comm.irecv(rbuf.data(), rbuf.size() * sizeof(double), peer,
                           i),
                rev);
          },
          {}, {.detach = rev});
      rt.taskwait();
    }
    // Guarantee a final sample that has seen all the traffic: wait out
    // one sampling period, then poll once more.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    poller.poll();
  }, {}, &report);
  unsetenv("TDG_TELEMETRY");
  unsetenv("TDG_TELEMETRY_PERIOD_MS");

  ASSERT_EQ(report.telemetry.size(), 2u);
  EXPECT_EQ(report.telemetry[0].rank, 0);
  EXPECT_EQ(report.telemetry[1].rank, 1);
  for (const RankTelemetry& t : report.telemetry) {
    ASSERT_FALSE(t.samples.empty());
    // Series are time-sorted and counters monotone.
    for (std::size_t i = 1; i < t.samples.size(); ++i) {
      EXPECT_LE(t.samples[i - 1].t_ns, t.samples[i].t_ns);
      EXPECT_LE(t.samples[i - 1].sends, t.samples[i].sends);
    }
    EXPECT_GT(t.samples.back().sends, 0u);
  }
  // Hub was drained into the report; a fresh drain is empty.
  EXPECT_TRUE(TelemetryHub::instance().drain().empty());

  std::ostringstream os;
  TelemetryHub::write_json(os, report.telemetry);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"rank\":0"), std::string::npos);
  EXPECT_NE(json.find("\"sends\":"), std::string::npos);
}

}  // namespace
}  // namespace tdg
