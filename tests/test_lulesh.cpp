// lulesh-mini: numerical equivalence of the serial reference, parallel-for,
// task-based (with/without persistence, any TPL, any optimization set) and
// distributed variants. Blocking never changes the arithmetic, so all
// digests must match the reference exactly.
#include <gtest/gtest.h>

#include "apps/lulesh/lulesh.hpp"
#include "core/tdg.hpp"
#include "mpi/interop.hpp"
#include "mpi/mpi.hpp"

namespace {

using tdg::Runtime;
using tdg::apps::lulesh::Config;
using tdg::apps::lulesh::Mesh;

Mesh::Digest reference_digest(const Config& cfg, std::int64_t global_n) {
  Mesh m(global_n);
  run_reference(m, cfg);
  return m.digest();
}

TEST(Lulesh, ReferenceIsDeterministicAndFinite) {
  Config cfg;
  cfg.npoints = 512;
  cfg.iterations = 10;
  Mesh m1(cfg.npoints), m2(cfg.npoints);
  run_reference(m1, cfg);
  run_reference(m2, cfg);
  EXPECT_TRUE(m1.all_finite());
  EXPECT_TRUE(m1.digest() == m2.digest());
  // The blast must actually move the mesh.
  EXPECT_NE(m1.digest().sum_xd, 0.0);
  EXPECT_GT(m1.dt, 0.0);
}

TEST(Lulesh, ParallelForMatchesReference) {
  Config cfg;
  cfg.npoints = 512;
  cfg.iterations = 8;
  cfg.tpl = 8;
  const auto ref = reference_digest(cfg, cfg.npoints);
  Runtime rt({.num_threads = 4});
  Mesh m(cfg.npoints);
  run_parallel_for(rt, m, cfg);
  EXPECT_TRUE(m.digest() == ref);
}

struct TaskParams {
  int tpl;
  bool persistent;
  bool minimized;
  bool dedup;
  bool redirect;
  unsigned threads;
};

class LuleshTask : public ::testing::TestWithParam<TaskParams> {};

TEST_P(LuleshTask, TaskBasedMatchesReference) {
  const auto p = GetParam();
  Config cfg;
  cfg.npoints = 384;
  cfg.iterations = 6;
  cfg.tpl = p.tpl;
  cfg.minimized_deps = p.minimized;
  const auto ref = reference_digest(cfg, cfg.npoints);

  Runtime::Config rc;
  rc.num_threads = p.threads;
  rc.discovery.dedup_edges = p.dedup;
  rc.discovery.inoutset_redirect = p.redirect;
  Runtime rt(rc);
  Mesh m(cfg.npoints);
  run_taskbased(rt, m, cfg, p.persistent);
  EXPECT_TRUE(m.all_finite());
  EXPECT_TRUE(m.digest() == ref)
      << "tpl=" << p.tpl << " persistent=" << p.persistent;
}

INSTANTIATE_TEST_SUITE_P(
    Variants, LuleshTask,
    ::testing::Values(
        TaskParams{1, false, true, true, true, 2},
        TaskParams{4, false, true, true, true, 4},
        TaskParams{16, false, true, true, true, 4},
        TaskParams{48, false, true, true, true, 4},
        TaskParams{8, true, true, true, true, 4},
        TaskParams{32, true, true, true, true, 4},
        TaskParams{8, false, false, true, true, 4},   // opt (a) off
        TaskParams{8, false, true, false, true, 4},   // opt (b) off
        TaskParams{8, false, true, true, false, 4},   // opt (c) off
        TaskParams{8, false, false, false, false, 4}, // all off
        TaskParams{8, true, false, false, false, 4},  // (p) with a,b,c off
        TaskParams{16, true, true, true, true, 1}));

TEST(Lulesh, TaskGraphShapeMatchesLoopStructure) {
  // 11 mesh-wide loops + dt + 2 ghost tasks per iteration (single rank):
  // tasks/iteration = 10*tpl + 1 + 2.
  Config cfg;
  cfg.npoints = 256;
  cfg.iterations = 3;
  cfg.tpl = 8;
  Runtime rt({.num_threads = 1});
  Mesh m(cfg.npoints);
  run_taskbased(rt, m, cfg, false);
  const auto s = rt.stats();
  const std::uint64_t per_iter = 10ull * cfg.tpl + 3;
  EXPECT_EQ(s.tasks_created,
            per_iter * static_cast<std::uint64_t>(cfg.iterations));
  EXPECT_GT(s.discovery.edges_created, 0u);
}

TEST(Lulesh, PersistentDiscoveryOnlyFirstIteration) {
  Config cfg;
  cfg.npoints = 256;
  cfg.iterations = 5;
  cfg.tpl = 8;
  Runtime rt({.num_threads = 2});
  Mesh m(cfg.npoints);
  run_taskbased(rt, m, cfg, true);
  const auto s = rt.stats();
  const std::uint64_t per_iter = 10ull * cfg.tpl + 3;
  // Tasks are created once, executed every iteration.
  EXPECT_EQ(s.tasks_created, per_iter);
  EXPECT_GE(s.tasks_executed,
            per_iter * static_cast<std::uint64_t>(cfg.iterations));
}

class LuleshDistributed : public ::testing::TestWithParam<int> {};

TEST_P(LuleshDistributed, MatchesBigSerialMeshExactly) {
  const int nranks = GetParam();
  constexpr std::int64_t kPerRank = 128;
  Config cfg;
  cfg.npoints = kPerRank;
  cfg.iterations = 6;
  cfg.tpl = 4;
  // The big serial mesh is the ground truth; the 1D-decomposed run must
  // reproduce every interior value bit-for-bit (the halo exchange feeds
  // each rank exactly the neighbour values the serial stencil reads).
  Mesh ref(kPerRank * nranks);
  run_reference(ref, cfg);

  std::vector<int> mismatches(static_cast<std::size_t>(nranks), 0);
  std::vector<double> dts(static_cast<std::size_t>(nranks), 0.0);
  tdg::mpi::Universe::run(nranks, [&](tdg::mpi::Comm& comm) {
    Runtime rt({.num_threads = 2});
    tdg::mpi::RequestPoller poller(rt);
    Mesh m(kPerRank);
    const std::int64_t offset = kPerRank * comm.rank();
    m.init_partition(kPerRank * nranks, offset);
    Config c = cfg;
    run_distributed(rt, comm, poller, m, c, /*persistent=*/false);
    int bad = 0;
    for (std::int64_t i = 1; i <= kPerRank; ++i) {
      const auto u = static_cast<std::size_t>(i);
      const auto g = static_cast<std::size_t>(offset + i);
      if (m.x[u] != ref.x[g] || m.e[u] != ref.e[g] ||
          m.xd[u] != ref.xd[g] || m.v[u] != ref.v[g]) {
        ++bad;
      }
    }
    mismatches[static_cast<std::size_t>(comm.rank())] = bad;
    dts[static_cast<std::size_t>(comm.rank())] = m.dt;
  });
  for (int r = 0; r < nranks; ++r) {
    EXPECT_EQ(mismatches[static_cast<std::size_t>(r)], 0)
        << "rank " << r << " diverged from the serial mesh";
    EXPECT_EQ(dts[static_cast<std::size_t>(r)], ref.dt);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, LuleshDistributed,
                         ::testing::Values(1, 2, 3, 4));

TEST(Lulesh, DistributedPersistentMatchesNonPersistent) {
  constexpr int kRanks = 2;
  constexpr std::int64_t kPerRank = 128;
  Config cfg;
  cfg.npoints = kPerRank;
  cfg.iterations = 5;
  cfg.tpl = 4;
  std::vector<Mesh::Digest> np(kRanks), pp(kRanks);
  for (bool persistent : {false, true}) {
    auto& out = persistent ? pp : np;
    tdg::mpi::Universe::run(kRanks, [&](tdg::mpi::Comm& comm) {
      Runtime rt({.num_threads = 2});
      tdg::mpi::RequestPoller poller(rt);
      Mesh m(kPerRank);
      m.init_partition(kPerRank * kRanks, kPerRank * comm.rank());
      Config c = cfg;
      run_distributed(rt, comm, poller, m, c, persistent);
      out[static_cast<std::size_t>(comm.rank())] = m.digest();
    });
  }
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_TRUE(np[static_cast<std::size_t>(r)] ==
                pp[static_cast<std::size_t>(r)])
        << "rank " << r;
  }
}

}  // namespace
