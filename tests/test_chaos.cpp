// Resilience layer: reliable delivery (exactly-once under loss+duplicate
// injection), rank-kill schedules, the heartbeat failure detector, failed
// requests and recovery at the task-graph layer (poisoning, reroute,
// shrink local completion), the TDG_FAULTS spec, and chaos soaks over the
// LULESH / Cholesky universes.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "apps/common/chaos.hpp"
#include "apps/common/emitter.hpp"
#include "core/tdg.hpp"
#include "mpi/interop.hpp"
#include "mpi/mpi.hpp"

namespace {

using tdg::DeadlineError;
using tdg::Depend;
using tdg::Event;
using tdg::RankFailedError;
using tdg::Runtime;
using tdg::TaskGroupError;
using tdg::mpi::Comm;
using tdg::mpi::FaultPlan;
using tdg::mpi::RankStatus;
using tdg::mpi::Request;
using tdg::mpi::RequestPoller;
using tdg::mpi::TrackOpts;
using tdg::mpi::Universe;

Universe::Options fast_detector_opts() {
  Universe::Options opts;
  opts.heartbeat.enabled = true;
  opts.heartbeat.period_seconds = 0.001;
  opts.heartbeat.suspect_seconds = 0.02;
  opts.heartbeat.fail_seconds = 0.06;
  return opts;
}

// ---------------------------------------------------------------------------
// Reliable delivery: exactly-once, in-order, under loss + duplicates
// ---------------------------------------------------------------------------

TEST(Reliable, ExactlyOnceInOrderUnderLossAndDuplicates) {
  // The duplicate injection is the exactly-once oracle: without sequence
  // numbers the receiver would observe stale re-deliveries; with the
  // reliable layer every payload arrives exactly once, in order, despite
  // 30% loss and 40% duplication.
  Universe::Options opts;
  opts.faults.seed = 1234;
  opts.faults.loss_probability = 0.3;
  opts.faults.duplicate_probability = 0.4;
  opts.reliable.enabled = true;
  opts.reliable.retransmit_timeout_seconds = 0.005;
  tdg::mpi::ReliableStats rel{};
  tdg::mpi::FaultStats faults{};
  Universe::run(2, [&](Comm& comm) {
    constexpr int kMsgs = 64;
    if (comm.rank() == 1) {
      for (int i = 0; i < kMsgs; ++i) {
        double v = 1000.0 + i;
        comm.wait(comm.isend(&v, sizeof v, 0, /*tag=*/3));
      }
      comm.barrier();
    } else {
      for (int i = 0; i < kMsgs; ++i) {
        double in = -1;
        comm.wait_for(comm.irecv(&in, sizeof in, 1, 3), 20.0);
        ASSERT_EQ(in, 1000.0 + i) << "message " << i;
      }
      // Exactly-once: no duplicate is left to satisfy an extra receive.
      double extra = -1;
      EXPECT_THROW(comm.wait_for(comm.irecv(&extra, sizeof extra, 1, 3), 0.2),
                   DeadlineError);
      comm.barrier();
      rel = comm.reliable_stats();
      faults = comm.fault_stats();
    }
  }, opts);
  EXPECT_GT(faults.drops, 0u);
  EXPECT_GT(rel.retransmits, 0u);
  EXPECT_GT(rel.dup_suppressed, 0u);
  EXPECT_EQ(rel.giveups, 0u);
}

TEST(Reliable, RendezvousPayloadsSurviveLoss) {
  // Above the eager threshold the reliable layer stages payloads
  // (store-and-forward), so rendezvous-sized messages survive loss too
  // and the sender completes at post instead of hanging.
  Universe::Options opts;
  opts.faults.seed = 77;
  opts.faults.loss_probability = 0.5;
  opts.reliable.enabled = true;
  opts.reliable.retransmit_timeout_seconds = 0.005;
  Universe::run(2, [](Comm& comm) {
    std::vector<double> buf(4096);  // 32 KiB > 8 KiB eager threshold
    if (comm.rank() == 0) {
      for (std::size_t i = 0; i < buf.size(); ++i) {
        buf[i] = static_cast<double>(i);
      }
      comm.wait_for(comm.isend(buf.data(), buf.size() * sizeof(double), 1, 0),
                    5.0);
      comm.barrier();
    } else {
      comm.wait_for(comm.irecv(buf.data(), buf.size() * sizeof(double), 0, 0),
                    20.0);
      for (std::size_t i = 0; i < buf.size(); i += 997) {
        ASSERT_EQ(buf[i], static_cast<double>(i));
      }
      comm.barrier();
    }
  }, opts);
}

TEST(Unreliable, LostMessageHangsObservably) {
  // Without the reliable layer a lost eager message is simply gone: the
  // receiver's deadline-aware wait names the never-matched receive.
  Universe::Options opts;
  opts.faults.seed = 11;
  opts.faults.loss_probability = 1.0;
  Universe::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      double in = -1;
      try {
        comm.wait_for(comm.irecv(&in, sizeof in, 1, 8), 0.25);
        FAIL() << "lost message was delivered";
      } catch (const DeadlineError& e) {
        EXPECT_NE(std::string(e.what()).find("irecv src=1 tag=8"),
                  std::string::npos);
      }
      comm.barrier();
      EXPECT_GT(comm.fault_stats().drops, 0u);
    } else {
      double v = 4.5;
      comm.wait(comm.isend(&v, sizeof v, 0, 8));  // eager: completes anyway
      comm.barrier();
    }
  }, opts);
}

// ---------------------------------------------------------------------------
// TDG_FAULTS spec parsing and env override
// ---------------------------------------------------------------------------

TEST(FaultSpec, ParsesFullGrammar) {
  FaultPlan fp;
  ASSERT_TRUE(tdg::mpi::parse_fault_spec(
      "seed=42,loss=0.25,dup=0.1,reorder=0.05,delay=0.5:0.002,"
      "straggler=2@0.03,kill=1@3,kill=2@7",
      fp));
  EXPECT_EQ(fp.seed, 42u);
  EXPECT_EQ(fp.loss_probability, 0.25);
  EXPECT_EQ(fp.duplicate_probability, 0.1);
  EXPECT_EQ(fp.reorder_probability, 0.05);
  EXPECT_EQ(fp.delay_probability, 0.5);
  EXPECT_EQ(fp.delay_seconds, 0.002);
  ASSERT_EQ(fp.straggler_ranks.size(), 1u);
  EXPECT_EQ(fp.straggler_ranks[0], 2);
  EXPECT_EQ(fp.straggler_delay_seconds, 0.03);
  ASSERT_EQ(fp.kill_rank_at_send_seq.size(), 2u);
  EXPECT_EQ(fp.kill_rank_at_send_seq[0], (std::pair<int, std::uint64_t>{1, 3}));
  EXPECT_EQ(fp.kill_rank_at_send_seq[1], (std::pair<int, std::uint64_t>{2, 7}));
  // Unnamed fields keep their values.
  FaultPlan partial;
  partial.duplicate_probability = 0.9;
  ASSERT_TRUE(tdg::mpi::parse_fault_spec("loss=0.5", partial));
  EXPECT_EQ(partial.duplicate_probability, 0.9);
  EXPECT_EQ(partial.loss_probability, 0.5);
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  FaultPlan fp;
  EXPECT_FALSE(tdg::mpi::parse_fault_spec("loss=banana", fp));
  EXPECT_FALSE(tdg::mpi::parse_fault_spec("unknown=1", fp));
  EXPECT_FALSE(tdg::mpi::parse_fault_spec("kill=1", fp));
  EXPECT_FALSE(tdg::mpi::parse_fault_spec("delay=0.5", fp));
  EXPECT_FALSE(tdg::mpi::parse_fault_spec("loss", fp));
}

TEST(FaultSpec, EnvOverrideAppliesOnTopOfOptions) {
  ::setenv("TDG_FAULTS", "seed=4,delay=0.6:0.001", 1);
  tdg::mpi::FaultStats stats{};
  Universe::run(2, [&](Comm& comm) {
    const int peer = 1 - comm.rank();
    for (int i = 0; i < 32; ++i) {
      double v = i, in = -1;
      auto s = comm.isend(&v, sizeof v, peer, i);
      auto r = comm.irecv(&in, sizeof in, peer, i);
      comm.wait_for(r, 10.0);
      comm.wait_for(s, 10.0);
      ASSERT_EQ(in, static_cast<double>(i));
    }
    comm.barrier();
    if (comm.rank() == 0) stats = comm.fault_stats();
  });
  ::unsetenv("TDG_FAULTS");
  EXPECT_GT(stats.delays, 0u);  // the env alone injected the plan
}

// ---------------------------------------------------------------------------
// Rank kills and the failure detector
// ---------------------------------------------------------------------------

TEST(RankDeath, KillScheduleFailsReceiversAndFillsReport) {
  Universe::Options opts = fast_detector_opts();
  opts.faults.seed = 9;
  opts.faults.kill_rank_at_send_seq = {{1, 2}};
  opts.tolerate_killed_ranks = true;
  Universe::Report report;
  Universe::run(2, [](Comm& comm) {
    if (comm.rank() == 1) {
      double v = 1.0;
      comm.wait(comm.isend(&v, sizeof v, 0, 0));  // send #1 delivers
      comm.wait(comm.isend(&v, sizeof v, 0, 1));  // send #2: dies here
      FAIL() << "rank 1 survived its scheduled death";
    } else {
      double in = -1;
      comm.wait_for(comm.irecv(&in, sizeof in, 1, 0), 10.0);
      EXPECT_EQ(in, 1.0);
      auto r = comm.irecv(&in, sizeof in, 1, 1);  // never satisfied
      try {
        comm.wait_for(r, 10.0);
        FAIL() << "receive from the dead rank completed";
      } catch (const RankFailedError& e) {
        EXPECT_EQ(e.rank(), 1);
      }
      EXPECT_TRUE(r.failed());
      EXPECT_EQ(r.failed_rank(), 1);
      EXPECT_TRUE(comm.rank_failed(1));
      EXPECT_EQ(comm.ranks_failed(), 1);
      EXPECT_EQ(comm.nearest_alive(0, +1), -1);  // no survivor to the right
      // Post-detection receives fail fast instead of waiting the timeout.
      auto r2 = comm.irecv(&in, sizeof in, 1, 2);
      EXPECT_THROW(comm.wait(r2), RankFailedError);
    }
  }, opts, &report);
  EXPECT_EQ(report.faults.kills, 1u);
  ASSERT_EQ(report.killed_ranks.size(), 1u);
  EXPECT_EQ(report.killed_ranks[0], 1);
  EXPECT_EQ(report.ranks_failed, 1);
  ASSERT_EQ(report.rank_status.size(), 2u);
  EXPECT_EQ(report.rank_status[1], RankStatus::Dead);
  EXPECT_TRUE(report.rank_errors[0].empty());
  EXPECT_FALSE(report.rank_errors[1].empty());
}

TEST(RankDeath, CollectivesCompleteOverSurvivors) {
  Universe::Options opts = fast_detector_opts();
  opts.faults.seed = 13;
  opts.faults.kill_rank_at_send_seq = {{1, 1}};
  opts.tolerate_killed_ranks = true;
  Universe::run(3, [](Comm& comm) {
    if (comm.rank() == 1) {
      double v = 0;
      comm.isend(&v, sizeof v, 0, 0);  // dies at its first send
      FAIL() << "rank 1 survived";
    } else {
      const double in = comm.rank() + 1.0;  // survivors contribute 1 and 3
      double out = 0;
      comm.wait_for(comm.iallreduce(&in, &out, 1, tdg::mpi::Op::Sum), 10.0);
      EXPECT_EQ(out, 4.0);
      // The survivor chain skips the dead middle rank.
      EXPECT_EQ(comm.nearest_alive(0, +1), 2);
      EXPECT_EQ(comm.nearest_alive(2, -1), 0);
    }
  }, opts);
}

TEST(RankDeath, FinishedRanksAreNotDeclaredDead) {
  Universe::Options opts = fast_detector_opts();
  Universe::Report report;
  Universe::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      // Outlive rank 1's exit by more than fail_seconds: a finished rank
      // must never be expelled as dead. A receive it will never fulfill
      // still fails fast (the dependence is permanently unsatisfiable),
      // but the detector records retirement, not death.
      double dummy = 0;
      auto r = comm.irecv(&dummy, sizeof dummy, 1, 42);  // never sent
      try {
        comm.wait_for(r, 10.0);
        FAIL() << "receive from the retired rank completed";
      } catch (const RankFailedError& e) {
        EXPECT_EQ(e.rank(), 1);
      }
      EXPECT_EQ(comm.ranks_failed(), 0);
      EXPECT_EQ(comm.rank_status(1), RankStatus::Finished);
    }
  }, opts, &report);
  EXPECT_EQ(report.ranks_failed, 0);
  EXPECT_EQ(report.rank_status[1], RankStatus::Finished);
}

// ---------------------------------------------------------------------------
// Task-graph recovery: poisoning, reroute, shrink local completion
// ---------------------------------------------------------------------------

TEST(Recovery, PoisonModeCancelsDependentsWhileIndependentsDrain) {
  Universe::Options opts = fast_detector_opts();
  opts.faults.seed = 17;
  opts.faults.kill_rank_at_send_seq = {{1, 1}};
  opts.tolerate_killed_ranks = true;
  Universe::run(2, [](Comm& comm) {
    if (comm.rank() == 1) {
      double v = 0;
      comm.isend(&v, sizeof v, 0, 5);
      return;
    }
    Runtime::Config cfg;
    cfg.num_threads = 2;
    cfg.watchdog.deadline_seconds = 30.0;
    Runtime rt(cfg);
    RequestPoller poller(rt, comm);
    double in = -1;
    std::atomic<bool> dependent_ran{false};
    std::atomic<bool> independent_ran{false};
    Event* ev = rt.create_event();
    rt.submit(
        [&, ev] {
          poller.complete_on_event(comm.irecv(&in, sizeof in, 1, 5), ev);
        },
        {Depend::out(&in)}, {.label = "doomed-recv", .detach = ev});
    rt.submit([&] { dependent_ran = true; }, {Depend::in(&in)},
              {.label = "dependent"});
    int other = 0;
    rt.submit([&] { independent_ran = true; }, {Depend::out(&other)});
    try {
      rt.taskwait();
      FAIL() << "poisoned graph did not throw";
    } catch (const TaskGroupError& e) {
      ASSERT_EQ(e.failures().size(), 1u);
      EXPECT_EQ(e.failures()[0].label, "doomed-recv");
      EXPECT_THROW(e.rethrow_first(), RankFailedError);
      ASSERT_EQ(e.cancelled().size(), 1u);
      EXPECT_EQ(e.cancelled()[0].label, "dependent");
    }
    EXPECT_FALSE(dependent_ran.load());
    EXPECT_TRUE(independent_ran.load());
    // The poller mirrors the detected death into the runtime metrics
    // (gauge deltas are time-gated; give the sync a fresh window).
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    poller.poll();
    const auto* gauge =
        rt.metrics().snapshot().find("universe.ranks_failed");
    ASSERT_NE(gauge, nullptr);
    EXPECT_EQ(gauge->level, 1);
  }, opts);
}

TEST(Recovery, FailedReceiveReroutesToSurvivor) {
  Universe::Options opts = fast_detector_opts();
  opts.faults.seed = 19;
  opts.faults.kill_rank_at_send_seq = {{1, 1}};
  opts.tolerate_killed_ranks = true;
  Universe::run(3, [](Comm& comm) {
    if (comm.rank() == 1) {
      double v = 0;
      comm.isend(&v, sizeof v, 0, 5);  // dies before delivering tag 5
      return;
    }
    if (comm.rank() == 2) {
      // The survivor that takes over rank 1's role.
      double v = 42.5;
      comm.wait(comm.isend(&v, sizeof v, 0, 5));
      return;
    }
    Runtime::Config cfg;
    cfg.num_threads = 2;
    cfg.watchdog.deadline_seconds = 30.0;
    Runtime rt(cfg);
    RequestPoller poller(rt, comm);
    double in = -1;
    Event* ev = rt.create_event();
    rt.submit(
        [&, ev] {
          TrackOpts track;
          track.on_peer_failed = [&comm, &in](int failed) -> Request {
            EXPECT_EQ(failed, 1);
            return comm.irecv(&in, sizeof in, 2, 5);
          };
          poller.complete_on_event(comm.irecv(&in, sizeof in, 1, 5), ev,
                                   std::move(track));
        },
        {Depend::out(&in)}, {.label = "rerouted-recv", .detach = ev});
    rt.taskwait();  // must not throw: the reroute replaced the poisoning
    EXPECT_EQ(in, 42.5);
    EXPECT_GT(rt.metrics().snapshot().value("comm.reroutes"), 0u);
  }, opts);
}

TEST(Recovery, ShrinkModeCompletesIdempotentShardLocally) {
  using tdg::apps::LDep;
  using tdg::apps::RuntimeEmitter;
  Universe::Options opts = fast_detector_opts();
  opts.faults.seed = 23;
  opts.faults.kill_rank_at_send_seq = {{1, 1}};
  opts.tolerate_killed_ranks = true;
  Universe::run(2, [](Comm& comm) {
    if (comm.rank() == 1) {
      double v = 0;
      comm.isend(&v, sizeof v, 0, 5);
      return;
    }
    Runtime::Config cfg;
    cfg.num_threads = 2;
    cfg.watchdog.deadline_seconds = 30.0;
    Runtime rt(cfg);
    RequestPoller poller(rt, comm);
    RuntimeEmitter::Options eopts;
    eopts.recovery = tdg::apps::RecoveryMode::ShrinkRedistribute;
    RuntimeEmitter em(rt, comm, poller, eopts);
    double in = 7.0;  // the local value the idempotent shard keeps
    std::atomic<bool> consumer_ran{false};
    em.recv("orphan-recv", {LDep::out(1)}, &in, sizeof in, 1, 5);
    em.compute("consumer", {LDep::in(1)}, 0, 0,
               [&] { consumer_ran = true; });
    rt.taskwait();  // no poisoning: the shard completed locally
    EXPECT_TRUE(consumer_ran.load());
    EXPECT_EQ(in, 7.0);
  }, opts);
}

// ---------------------------------------------------------------------------
// Chaos soaks: canned loss+kill plans over the example universes
// ---------------------------------------------------------------------------

tdg::apps::chaos::ChaosConfig chaos_base(int plan) {
  tdg::apps::chaos::ChaosConfig cfg;
  cfg.faults = tdg::apps::chaos::canned_plan(plan);
  cfg.reliable.enabled = true;
  cfg.reliable.retransmit_timeout_seconds = 0.005;
  cfg.heartbeat.enabled = true;
  cfg.heartbeat.period_seconds = 0.001;
  cfg.heartbeat.suspect_seconds = 0.03;
  cfg.heartbeat.fail_seconds = 0.1;
  cfg.watchdog_seconds = 45.0;
  return cfg;
}

void expect_sound(const tdg::apps::chaos::ChaosOutcome& out,
                  const tdg::apps::chaos::ChaosConfig& cfg) {
  for (const std::string& u : out.unexpected) {
    ADD_FAILURE() << "unexpected rank outcome: " << u;
  }
  EXPECT_TRUE(out.sound());
  EXPECT_FALSE(out.report.killed_ranks.empty());
  EXPECT_GT(out.report.faults.kills, 0u);
  EXPECT_GT(out.report.faults.drops, 0u);
  EXPECT_GT(out.report.reliable.retransmits, 0u);
  // Every rank is accounted for: scheduled deaths, clean survivors, and
  // (poison mode) survivors that failed through graph poisoning.
  EXPECT_EQ(out.survivors_ok + out.expected_failures +
                static_cast<int>(out.report.killed_ranks.size()),
            cfg.nranks);
}

TEST(ChaosSoak, LuleshPoisonPlan0) {
  auto cfg = chaos_base(0);
  cfg.app = tdg::apps::chaos::App::Lulesh;
  cfg.recovery = tdg::apps::RecoveryMode::Poison;
  expect_sound(tdg::apps::chaos::run_chaos(cfg), cfg);
}

TEST(ChaosSoak, LuleshShrinkPlan1) {
  auto cfg = chaos_base(1);
  cfg.app = tdg::apps::chaos::App::Lulesh;
  cfg.recovery = tdg::apps::RecoveryMode::ShrinkRedistribute;
  const auto out = tdg::apps::chaos::run_chaos(cfg);
  expect_sound(out, cfg);
  // Shrink mode: survivors re-route instead of failing.
  EXPECT_EQ(out.expected_failures, 0);
}

TEST(ChaosSoak, CholeskyPoisonPlan2) {
  auto cfg = chaos_base(2);
  cfg.app = tdg::apps::chaos::App::Cholesky;
  cfg.recovery = tdg::apps::RecoveryMode::Poison;
  expect_sound(tdg::apps::chaos::run_chaos(cfg), cfg);
}

TEST(ChaosSoak, CholeskyShrinkPlan0) {
  auto cfg = chaos_base(0);
  cfg.app = tdg::apps::chaos::App::Cholesky;
  cfg.recovery = tdg::apps::RecoveryMode::ShrinkRedistribute;
  const auto out = tdg::apps::chaos::run_chaos(cfg);
  expect_sound(out, cfg);
  EXPECT_EQ(out.expected_failures, 0);
}

TEST(ChaosSoak, CleanRunHasZeroResilienceCounters) {
  tdg::apps::chaos::ChaosConfig cfg;  // no faults, no reliable, no detector
  cfg.app = tdg::apps::chaos::App::Lulesh;
  const auto out = tdg::apps::chaos::run_chaos(cfg);
  EXPECT_TRUE(out.sound());
  EXPECT_EQ(out.survivors_ok, cfg.nranks);
  EXPECT_EQ(out.report.faults.drops, 0u);
  EXPECT_EQ(out.report.faults.kills, 0u);
  EXPECT_EQ(out.report.reliable.retransmits, 0u);
  EXPECT_EQ(out.report.ranks_failed, 0);
}

}  // namespace
