// Multi-tenant runtime: N runtimes sharing one WorkerPool. Covers
// exactly-once execution under concurrent submitters, weighted-fair
// stealing, per-tenant failure isolation, per-tenant admission quotas,
// batch-vs-loop submission equivalence (strict-verified), tenant slot
// recycling and the solo-runtime compatibility surface.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "core/tdg.hpp"
#include "core/worker_pool.hpp"

namespace {

using tdg::BatchItem;
using tdg::Depend;
using tdg::DependList;
using tdg::Runtime;
using tdg::TaskGroupError;
using tdg::UsageError;
using tdg::WorkerPool;

Runtime::Config tenant_cfg(WorkerPool& pool, std::uint32_t weight = 1) {
  Runtime::Config cfg;
  cfg.pool = &pool;
  cfg.tenant.weight = weight;
  return cfg;
}

/// Spin for roughly `us` microseconds (tasks need nonzero width for the
/// fairness test's sampling window).
void spin_us(unsigned us) {
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::microseconds(us);
  while (std::chrono::steady_clock::now() < until) {
  }
}

TEST(Multitenant, TwoTenantsShareOnePool) {
  WorkerPool::Config pc;
  pc.num_workers = 2;
  pc.max_tenants = 4;
  WorkerPool pool(pc);
  EXPECT_EQ(pool.num_workers(), 2u);
  EXPECT_EQ(pool.tenant_count(), 0u);

  Runtime a(tenant_cfg(pool));
  Runtime b(tenant_cfg(pool));
  EXPECT_EQ(pool.tenant_count(), 2u);
  EXPECT_NE(a.tenant_id(), b.tenant_id());
  EXPECT_EQ(a.num_threads(), 3u);  // producer + 2 shared workers

  std::atomic<int> hits_a{0};
  std::atomic<int> hits_b{0};
  for (int i = 0; i < 500; ++i) {
    a.submit([&] { ++hits_a; }, {});
    b.submit([&] { ++hits_b; }, {});
  }
  a.taskwait();
  b.taskwait();
  EXPECT_EQ(hits_a.load(), 500);
  EXPECT_EQ(hits_b.load(), 500);
  EXPECT_EQ(a.stats().tasks_executed, 500u);
  EXPECT_EQ(b.stats().tasks_executed, 500u);
}

// Thousands of small graphs from 8 submitter threads, each thread owning
// one tenant: every chain must run exactly once and in dependency order
// (the per-tenant checksum is order-sensitive).
TEST(Multitenant, EightSubmittersExactlyOnce) {
  constexpr unsigned kTenants = 8;
  constexpr int kGraphs = 150;
  constexpr int kChain = 4;

  WorkerPool::Config pc;
  pc.num_workers = 3;
  pc.max_tenants = kTenants;
  WorkerPool pool(pc);

  std::vector<std::uint64_t> checksum(kTenants, 0);
  std::vector<std::uint64_t> executed(kTenants, 0);
  std::vector<std::thread> submitters;
  submitters.reserve(kTenants);
  for (unsigned s = 0; s < kTenants; ++s) {
    submitters.emplace_back([&, s] {
      Runtime rt(tenant_cfg(pool));
      std::uint64_t sum = 0;  // serialized by the chain's inout clause
      for (int g = 0; g < kGraphs; ++g) {
        for (int k = 0; k < kChain; ++k) {
          const std::uint64_t term =
              static_cast<std::uint64_t>(s + 1) * 1000003u +
              static_cast<std::uint64_t>(g) * 131u +
              static_cast<std::uint64_t>(k);
          rt.submit([&sum, term] { sum += term; }, {Depend::inout(&sum)});
        }
        if (g % 16 == 15) rt.taskwait();  // interleave waits with discovery
      }
      rt.taskwait();
      checksum[s] = sum;
      executed[s] = rt.stats().tasks_executed;
    });
  }
  for (auto& t : submitters) t.join();

  for (unsigned s = 0; s < kTenants; ++s) {
    std::uint64_t expect = 0;
    for (int g = 0; g < kGraphs; ++g) {
      for (int k = 0; k < kChain; ++k) {
        expect += static_cast<std::uint64_t>(s + 1) * 1000003u +
                  static_cast<std::uint64_t>(g) * 131u +
                  static_cast<std::uint64_t>(k);
      }
    }
    EXPECT_EQ(checksum[s], expect) << "tenant " << s;
    EXPECT_EQ(executed[s],
              static_cast<std::uint64_t>(kGraphs) * kChain)
        << "tenant " << s;
  }
  // Every descriptor went back to the shared arena.
  EXPECT_EQ(pool.tenant_count(), 0u);
}

// Weighted-fair stealing: with both tenants backlogged, pool workers serve
// the weight-4 tenant ~4x as often as the weight-1 tenant. The weighted
// scan governs backlog acquisition from the tenant shards (tasks enabled
// by a worker chain through its local deque instead — that fast path is
// locality, not arbitration), so the workload is independent tasks, and
// the ratio only means anything while BOTH backlogs are live. On a small
// machine the producers may not publish concurrently — one batch can be
// fully drained before the other even lands — so a third tenant first
// plugs every pool worker with a spin-until-released task; the producers
// publish underneath the plugged pool, and the first real serve decision
// the scan makes already sees both backlogs at full depth.
TEST(Multitenant, WeightedFairStealDistribution) {
  constexpr int kTasks = 8000;
  WorkerPool::Config pc;
  pc.num_workers = 3;
  pc.max_tenants = 3;  // heavy, light, and the plug tenant
  WorkerPool pool(pc);

  std::atomic<unsigned> heavy_id{~0u};
  std::atomic<unsigned> light_id{~0u};
  std::atomic<int> ready_producers{0};
  std::atomic<int> plugs_running{0};
  std::atomic<bool> open{false};
  std::atomic<bool> release{false};

  // Occupy every pool worker so nothing is served until both backlogs
  // are published.
  Runtime plug_rt(tenant_cfg(pool));
  for (unsigned i = 0; i < pool.num_workers(); ++i) {
    plug_rt.submit(
        [&plugs_running, &open] {
          plugs_running.fetch_add(1);
          while (!open.load()) std::this_thread::yield();
        },
        {});
  }
  while (plugs_running.load() != static_cast<int>(pool.num_workers())) {
    std::this_thread::yield();
  }

  auto producer = [&](std::uint32_t weight, std::atomic<unsigned>& id_out) {
    Runtime rt(tenant_cfg(pool, weight));
    id_out.store(rt.tenant_id());
    rt.begin_batch();
    for (int i = 0; i < kTasks; ++i) {
      rt.submit([] { spin_us(1); }, {});
    }
    rt.end_batch();
    ready_producers.fetch_add(1);
    while (!release.load()) std::this_thread::yield();
    rt.taskwait();
  };
  std::thread th(producer, 4u, std::ref(heavy_id));
  std::thread tl(producer, 1u, std::ref(light_id));

  while (ready_producers.load() != 2) std::this_thread::yield();
  // Both 8000-task backlogs are in their shards and no worker has been
  // able to touch them; unplug the pool and watch the scan arbitrate.
  open.store(true);
  // Sample mid-flight: stop once the pool served a decent chunk but well
  // before either tenant's 8000-task backlog can be exhausted.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  std::uint64_t h = 0;
  std::uint64_t l = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    h = pool.served(heavy_id.load());
    l = pool.served(light_id.load());
    if (h + l >= 2000) break;
    std::this_thread::yield();
  }
  release.store(true);
  th.join();
  tl.join();
  plug_rt.taskwait();

  ASSERT_GE(h + l, 2000u) << "pool workers served too little in 30s";
  const double heavy_frac =
      static_cast<double>(h) / static_cast<double>(h + l);
  // Expected 4/5 = 0.8; generous slack for scheduling noise, but well
  // above the 0.5 an unweighted scan would produce.
  EXPECT_GE(heavy_frac, 0.55) << "heavy=" << h << " light=" << l;
  EXPECT_GT(l, 0u);  // weighted, not starved: the light tenant ran too
}

// One tenant's failing graph must neither poison a sibling tenant nor
// wedge the pool; the poisoned tenant itself stays usable after taskwait
// throws.
TEST(Multitenant, PoisonedTenantIsIsolated) {
  WorkerPool::Config pc;
  pc.num_workers = 2;
  pc.max_tenants = 2;
  WorkerPool pool(pc);

  Runtime bad(tenant_cfg(pool));
  Runtime good(tenant_cfg(pool));

  int chain = 0;
  bad.submit([] { throw std::runtime_error("tenant failure"); },
             {Depend::out(&chain)});
  bad.submit([&] { chain = 1; }, {Depend::inout(&chain)});  // cancelled

  std::atomic<int> good_hits{0};
  for (int i = 0; i < 200; ++i) {
    good.submit([&] { ++good_hits; }, {});
  }

  EXPECT_THROW(bad.taskwait(), TaskGroupError);
  EXPECT_EQ(chain, 0);  // dependent was cancelled, not run
  good.taskwait();      // sibling unaffected
  EXPECT_EQ(good_hits.load(), 200);

  // The poisoned tenant recovers: a fresh graph runs normally.
  std::atomic<int> retry_hits{0};
  for (int i = 0; i < 50; ++i) {
    bad.submit([&] { ++retry_hits; }, {});
  }
  bad.taskwait();
  EXPECT_EQ(retry_hits.load(), 50);
}

// Batch submission builds the same TDG as a loop of submit() calls: same
// serialized results, same task/edge counts. Runs under TDG_VERIFY=strict
// in the *_strict suite (any determinacy difference throws VerifyError).
TEST(Multitenant, BatchMatchesLoopSubmit) {
  constexpr int kChains = 16;
  constexpr int kLen = 32;
  auto run = [&](bool batched) {
    // Producer-only: with workers racing the submit loop, a predecessor
    // can complete before its successor is discovered and the already-
    // satisfied edge is never materialized, so per-task edge counts
    // would depend on timing. Deferring all execution to taskwait makes
    // both discovery episodes deterministic and directly comparable.
    Runtime rt({.num_threads = 1});
    std::vector<std::uint64_t> cell(kChains, 0);
    auto one_round = [&](int round) {
      if (batched) rt.begin_batch();
      for (int c = 0; c < kChains; ++c) {
        for (int k = 0; k < kLen; ++k) {
          const std::uint64_t term =
              static_cast<std::uint64_t>(round * 7 + c * 13 + k);
          std::uint64_t* p = &cell[static_cast<std::size_t>(c)];
          rt.submit([p, term] { *p = *p * 31 + term; },
                    {Depend::inout(p)});
        }
      }
      if (batched) rt.end_batch();
    };
    one_round(0);
    rt.taskwait();
    one_round(1);
    rt.taskwait();
    auto st = rt.stats();
    EXPECT_EQ(st.tasks_executed,
              static_cast<std::uint64_t>(2 * kChains * kLen));
    return std::make_pair(cell, st.edges_total());
  };
  auto [loop_cells, loop_edges] = run(false);
  auto [batch_cells, batch_edges] = run(true);
  EXPECT_EQ(loop_cells, batch_cells);
  EXPECT_EQ(loop_edges, batch_edges);
}

TEST(Multitenant, SubmitBatchVectorApi) {
  Runtime rt({.num_threads = 2});
  std::uint64_t acc = 0;
  using Body = std::function<void()>;
  std::vector<BatchItem<Body>> items;
  for (int i = 0; i < 64; ++i) {
    BatchItem<Body> it;
    it.fn = [&acc, i] { acc += static_cast<std::uint64_t>(i) * 3 + 1; };
    it.deps = DependList{Depend::inout(&acc)};
    items.push_back(std::move(it));
  }
  rt.submit_batch(items);
  rt.taskwait();
  std::uint64_t expect = 0;
  for (int i = 0; i < 64; ++i) expect += static_cast<std::uint64_t>(i) * 3 + 1;
  EXPECT_EQ(acc, expect);
}

// The throttle config acts as a per-tenant admission quota: a tenant
// drowning in its own backlog self-helps (throttle stalls recorded) while
// a sibling with default quotas sails through untouched.
TEST(Multitenant, AdmissionQuotaPerTenant) {
  WorkerPool::Config pc;
  pc.num_workers = 2;
  pc.max_tenants = 2;
  WorkerPool pool(pc);

  Runtime::Config qcfg = tenant_cfg(pool);
  qcfg.throttle.max_total = 64;  // tiny quota: throttles constantly
  Runtime quota(qcfg);
  Runtime free_rt(tenant_cfg(pool));

  std::atomic<int> qhits{0};
  std::atomic<int> fhits{0};
  for (int i = 0; i < 2000; ++i) {
    quota.submit([&] { ++qhits; }, {});
    free_rt.submit([&] { ++fhits; }, {});
  }
  quota.taskwait();
  free_rt.taskwait();
  EXPECT_EQ(qhits.load(), 2000);
  EXPECT_EQ(fhits.load(), 2000);
  if (quota.metrics().enabled()) {
    EXPECT_GT(quota.metrics().snapshot().value("sched.throttle_stalls"), 0u);
    EXPECT_EQ(free_rt.metrics().snapshot().value("sched.throttle_stalls"),
              0u);
  }
}

TEST(Multitenant, TenantSlotsRecycleAndCapacityIsEnforced) {
  WorkerPool::Config pc;
  pc.num_workers = 1;
  pc.max_tenants = 2;
  WorkerPool pool(pc);

  {
    Runtime a(tenant_cfg(pool));
    Runtime b(tenant_cfg(pool));
    EXPECT_EQ(pool.tenant_count(), 2u);
    EXPECT_THROW(Runtime c(tenant_cfg(pool)), UsageError);
    // The failed construction must not have corrupted this thread's
    // producer identity: the surviving runtimes still accept work.
    std::atomic<int> hits{0};
    a.submit([&] { ++hits; }, {});
    b.submit([&] { ++hits; }, {});
    a.taskwait();
    b.taskwait();
    EXPECT_EQ(hits.load(), 2);
  }
  EXPECT_EQ(pool.tenant_count(), 0u);
  // Freed slots are reusable.
  Runtime c(tenant_cfg(pool));
  std::atomic<int> hits{0};
  c.submit([&] { ++hits; }, {});
  c.taskwait();
  EXPECT_EQ(hits.load(), 1);
}

// Solo construction (no Config::pool) must look exactly like the
// pre-pool runtime: private team, tenant id 0, thread count honored.
TEST(Multitenant, SoloRuntimeCompatibilitySurface) {
  Runtime rt({.num_threads = 4});
  EXPECT_EQ(rt.num_threads(), 4u);
  EXPECT_EQ(rt.tenant_id(), 0u);
  EXPECT_EQ(rt.pool().num_workers(), 3u);
  EXPECT_EQ(rt.pool().max_tenants(), 1u);
  std::atomic<int> hits{0};
  for (int i = 0; i < 100; ++i) rt.submit([&] { ++hits; }, {});
  rt.taskwait();
  EXPECT_EQ(hits.load(), 100);
}

// A batch left open is published by taskwait (drain calls end_batch), so
// forgetting end_batch cannot deadlock.
TEST(Multitenant, OpenBatchIsFlushedByTaskwait) {
  Runtime rt({.num_threads = 2});
  std::atomic<int> hits{0};
  rt.begin_batch();
  for (int i = 0; i < 32; ++i) rt.submit([&] { ++hits; }, {});
  rt.taskwait();
  EXPECT_EQ(hits.load(), 32);
}

}  // namespace
