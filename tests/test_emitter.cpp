// Emitter parity: the SAME application graph generator must produce the
// SAME dependency structure through the real runtime (RuntimeEmitter) and
// through the simulator builder (SimEmitter) — this is the guarantee that
// the benchmark harnesses study the graphs the real library would run.
#include <gtest/gtest.h>

#include "apps/common/emitter.hpp"
#include "apps/hpcg/hpcg.hpp"
#include "apps/lulesh/lulesh.hpp"
#include "core/tdg.hpp"

namespace {

using tdg::Runtime;
using tdg::apps::RuntimeEmitter;
using tdg::apps::SimEmitter;

struct ParityParams {
  bool minimized;  // optimization (a)
  bool dedup;      // (b)
  bool redirect;   // (c)
};

class LuleshEmitterParity : public ::testing::TestWithParam<ParityParams> {};

TEST_P(LuleshEmitterParity, SameStructureBothBackends) {
  const auto p = GetParam();
  namespace lulesh = tdg::apps::lulesh;
  lulesh::Config cfg;
  cfg.npoints = 2048;
  cfg.iterations = 3;
  cfg.tpl = 16;
  cfg.minimized_deps = p.minimized;

  // Simulator side.
  SimEmitter sem({.builder = {.dedup_edges = p.dedup,
                              .inoutset_redirect = p.redirect},
                  .persistent = false});
  {
    lulesh::Mesh mesh(cfg.npoints);
    for (int it = 0; it < cfg.iterations; ++it) {
      sem.begin_iteration(static_cast<std::uint32_t>(it));
      emit_iteration(sem, mesh, cfg, static_cast<std::uint32_t>(it),
                     nullptr);
      sem.end_iteration();
    }
  }
  auto g = sem.take();

  // Real runtime side: single-threaded with no execution until taskwait,
  // so no pruning interferes with the comparison.
  Runtime::Config rc;
  rc.num_threads = 1;
  rc.discovery.dedup_edges = p.dedup;
  rc.discovery.inoutset_redirect = p.redirect;
  Runtime rt(rc);
  {
    RuntimeEmitter rem(rt, {.persistent = false});
    lulesh::Mesh mesh(cfg.npoints);
    for (int it = 0; it < cfg.iterations; ++it) {
      rem.begin_iteration(static_cast<std::uint32_t>(it));
      emit_iteration(rem, mesh, cfg, static_cast<std::uint32_t>(it),
                     nullptr);
      rem.end_iteration();
    }
    rt.taskwait();  // bodies reference `mesh`: drain before it dies
  }
  const auto s = rt.stats();
  EXPECT_EQ(s.discovery.edges_pruned, 0u) << "precondition: no pruning";
  EXPECT_EQ(g.tasks.size(),
            static_cast<std::size_t>(s.tasks_created + s.internal_nodes));
  EXPECT_EQ(g.structural_edges(), s.discovery.edges_created);
  EXPECT_EQ(g.duplicate_edges_skipped, s.discovery.edges_duplicate);
  EXPECT_EQ(g.redirect_nodes, s.discovery.redirect_nodes);
  rt.taskwait();
}

INSTANTIATE_TEST_SUITE_P(
    Options, LuleshEmitterParity,
    ::testing::Values(ParityParams{true, true, true},
                      ParityParams{false, true, true},
                      ParityParams{true, false, true},
                      ParityParams{true, true, false},
                      ParityParams{false, false, false}));

TEST(EmitterParity, HpcgGraphsMatch) {
  namespace hpcg = tdg::apps::hpcg;
  hpcg::Config cfg;
  cfg.nx = 6;
  cfg.ny = 6;
  cfg.nz_global = 6;
  cfg.cg_iterations = 4;
  cfg.tpl = 6;
  cfg.nspmv = 3;
  hpcg::Problem prob = hpcg::build_problem(cfg);

  SimEmitter sem({.builder = {}, .persistent = false});
  {
    hpcg::CgState st(prob, cfg.tpl);
    emit_init(sem, prob, st, cfg, nullptr);
    for (int it = 0; it < cfg.cg_iterations; ++it) {
      sem.begin_iteration(static_cast<std::uint32_t>(it));
      emit_iteration(sem, prob, st, cfg, static_cast<std::uint32_t>(it),
                     nullptr);
      sem.end_iteration();
    }
  }
  auto g = sem.take();

  Runtime rt({.num_threads = 1});
  {
    RuntimeEmitter rem(rt, {.persistent = false});
    hpcg::CgState st(prob, cfg.tpl);
    emit_init(rem, prob, st, cfg, nullptr);
    for (int it = 0; it < cfg.cg_iterations; ++it) {
      rem.begin_iteration(static_cast<std::uint32_t>(it));
      emit_iteration(rem, prob, st, cfg, static_cast<std::uint32_t>(it),
                     nullptr);
      rem.end_iteration();
    }
    rt.taskwait();  // bodies reference `st`: drain before it dies
  }
  const auto s = rt.stats();
  EXPECT_EQ(g.tasks.size(),
            static_cast<std::size_t>(s.tasks_created + s.internal_nodes));
  EXPECT_EQ(g.structural_edges(),
            s.discovery.edges_created + s.discovery.edges_pruned);
  rt.taskwait();
}

TEST(Emitter, SimEmitterPersistentCapturesOnlyFirstIteration) {
  namespace lulesh = tdg::apps::lulesh;
  lulesh::Config cfg;
  cfg.npoints = 512;
  cfg.iterations = 5;
  cfg.tpl = 4;
  SimEmitter em({.builder = {}, .persistent = true});
  lulesh::Mesh mesh(cfg.npoints);
  int emitted_iterations = 0;
  for (int it = 0; it < cfg.iterations; ++it) {
    if (em.begin_iteration(static_cast<std::uint32_t>(it))) {
      emit_iteration(em, mesh, cfg, static_cast<std::uint32_t>(it), nullptr);
      ++emitted_iterations;
    }
    em.end_iteration();
  }
  EXPECT_EQ(emitted_iterations, 1);
  auto g = em.take();
  // One iteration's tasks only: 10 loops x tpl + dt + 2 ghosts(+redirects).
  EXPECT_GE(g.tasks.size(), 10u * 4 + 3);
  EXPECT_LT(g.tasks.size(), 2u * (10u * 4 + 3));
}

TEST(Emitter, TaskwaitAroundCommExecutesCorrectly) {
  // The Section 4.1 ablation path on the real runtime: taskwait brackets
  // must not deadlock or change results.
  namespace lulesh = tdg::apps::lulesh;
  constexpr std::int64_t kPerRank = 128;
  constexpr int kRanks = 2;
  lulesh::Config cfg;
  cfg.npoints = kPerRank;
  cfg.iterations = 4;
  cfg.tpl = 4;
  cfg.distributed = true;

  lulesh::Mesh ref(kPerRank * kRanks);
  lulesh::Config rcfg = cfg;
  rcfg.npoints = kPerRank * kRanks;
  rcfg.distributed = false;
  run_reference(ref, rcfg);

  std::vector<int> bad(kRanks, 0);
  tdg::mpi::Universe::run(kRanks, [&](tdg::mpi::Comm& comm) {
    Runtime rt({.num_threads = 2});
    tdg::mpi::RequestPoller poller(rt);
    lulesh::Mesh m(kPerRank);
    const std::int64_t offset = kPerRank * comm.rank();
    m.init_partition(kPerRank * kRanks, offset);
    lulesh::Halo halo;
    halo.left = comm.rank() > 0 ? comm.rank() - 1 : -1;
    halo.right = comm.rank() + 1 < comm.size() ? comm.rank() + 1 : -1;
    RuntimeEmitter em(rt, comm, poller,
                      {.persistent = false, .taskwait_around_comm = true});
    for (int it = 0; it < cfg.iterations; ++it) {
      em.begin_iteration(static_cast<std::uint32_t>(it));
      emit_iteration(em, m, cfg, static_cast<std::uint32_t>(it), &halo);
      em.end_iteration();
    }
    rt.taskwait();
    for (std::int64_t i = 1; i <= kPerRank; ++i) {
      if (m.x[static_cast<std::size_t>(i)] !=
          ref.x[static_cast<std::size_t>(offset + i)]) {
        ++bad[static_cast<std::size_t>(comm.rank())];
      }
    }
  });
  for (int r = 0; r < kRanks; ++r) EXPECT_EQ(bad[static_cast<std::size_t>(r)], 0);
}

}  // namespace
