// The lulesh-mini simulator graph builder: intra-node and 3D-distributed
// structure, message size classes, persistent capture, and end-to-end
// execution of multi-rank graphs in the cluster simulator, including the
// Table-1 non-overlapped mode.
#include <gtest/gtest.h>

#include "apps/lulesh/simgraph.hpp"
#include "sim/sim_runtime.hpp"

namespace {

using tdg::apps::lulesh::build_sim_graph;
using tdg::apps::lulesh::SimGraphOptions;
using tdg::sim::ClusterSim;
using tdg::sim::SimConfig;
using tdg::sim::SimGraph;
using tdg::sim::SimTaskKind;

SimGraphOptions base_options(int tpl, int iterations) {
  SimGraphOptions o;
  o.cfg.tpl = tpl;
  o.cfg.iterations = iterations;
  o.cfg.npoints = 4L * tpl;
  o.cfg.sim_scale = 1000.0;
  return o;
}

TEST(SimGraphLulesh, IntraNodeTaskCountMatchesLoopStructure) {
  auto o = base_options(8, 3);
  SimGraph g = build_sim_graph(o);
  // 10 loops x tpl + dt + 2 ghosts per iteration, plus (c) redirects.
  const std::size_t user = (10u * 8 + 3) * 3;
  EXPECT_EQ(g.tasks.size() - g.redirect_nodes, user);
  EXPECT_GT(g.redirect_nodes, 0u);  // the SSUM inoutset fan-in
}

TEST(SimGraphLulesh, PersistentCapturesOneIteration) {
  auto o = base_options(8, 5);
  o.persistent = true;
  SimGraph g = build_sim_graph(o);
  EXPECT_EQ(g.tasks.size() - g.redirect_nodes,
            static_cast<std::size_t>(10u * 8 + 3));
}

TEST(SimGraphLulesh, CubeCornerHasSevenNeighbours) {
  auto o = base_options(4, 1);
  o.rx = o.ry = o.rz = 3;
  o.rank = 0;  // corner of the cube
  o.s = 16;
  SimGraph g = build_sim_graph(o);
  int sends = 0, recvs = 0, allreduce = 0;
  for (const auto& t : g.tasks) {
    sends += t.attrs.kind == SimTaskKind::Send;
    recvs += t.attrs.kind == SimTaskKind::Recv;
    allreduce += t.attrs.kind == SimTaskKind::Allreduce;
  }
  EXPECT_EQ(sends, 7);
  EXPECT_EQ(recvs, 7);
  EXPECT_EQ(allreduce, 1);
}

TEST(SimGraphLulesh, CentreRankHasTwentySixNeighboursInThreeSizeClasses) {
  auto o = base_options(4, 1);
  o.rx = o.ry = o.rz = 3;
  o.rank = 13;  // centre
  o.s = 16;
  SimGraph g = build_sim_graph(o);
  int faces = 0, edges = 0, corners = 0;
  for (const auto& t : g.tasks) {
    if (t.attrs.kind != SimTaskKind::Send) continue;
    if (t.attrs.msg_bytes == 8ull * 16 * 16) ++faces;
    else if (t.attrs.msg_bytes == 8ull * 16) ++edges;
    else if (t.attrs.msg_bytes == 8) ++corners;
  }
  EXPECT_EQ(faces, 6);
  EXPECT_EQ(edges, 12);
  EXPECT_EQ(corners, 8);
}

TEST(SimGraphLulesh, FullCubeExecutesToCompletion) {
  constexpr int kRanks = 8;
  std::vector<SimGraph> graphs;
  for (int r = 0; r < kRanks; ++r) {
    auto o = base_options(4, 2);
    o.rx = o.ry = o.rz = 2;
    o.rank = r;
    o.s = 16;
    graphs.push_back(build_sim_graph(o));
  }
  SimConfig cfg;
  cfg.machine.cores = 4;
  cfg.nranks = kRanks;
  ClusterSim sim(cfg);
  for (int r = 0; r < kRanks; ++r) {
    sim.set_graph(r, &graphs[static_cast<std::size_t>(r)]);
  }
  const auto res = sim.run();
  ASSERT_EQ(res.ranks.size(), static_cast<std::size_t>(kRanks));
  for (const auto& rk : res.ranks) {
    EXPECT_GT(rk.tasks_executed, 0u);
    EXPECT_GT(rk.comm.requests, 0u);  // sends + the collective tracked
  }
  EXPECT_GT(res.makespan, 0.0);
}

TEST(SimGraphLulesh, PersistentCubeRunsAllIterations) {
  constexpr int kRanks = 8;
  constexpr int kIters = 3;
  std::vector<SimGraph> graphs;
  for (int r = 0; r < kRanks; ++r) {
    auto o = base_options(4, kIters);
    o.persistent = true;
    o.rx = o.ry = o.rz = 2;
    o.rank = r;
    o.s = 16;
    graphs.push_back(build_sim_graph(o));
  }
  SimConfig cfg;
  cfg.machine.cores = 4;
  cfg.nranks = kRanks;
  cfg.persistent = true;
  cfg.iterations = kIters;
  ClusterSim sim(cfg);
  for (int r = 0; r < kRanks; ++r) {
    sim.set_graph(r, &graphs[static_cast<std::size_t>(r)]);
  }
  const auto res = sim.run();
  for (const auto& rk : res.ranks) {
    ASSERT_EQ(rk.discovery_per_iteration.size(),
              static_cast<std::size_t>(kIters));
    // Replay iterations cost far less than the discovery iteration.
    EXPECT_LT(rk.discovery_per_iteration[1],
              rk.discovery_per_iteration[0] / 2);
  }
}

TEST(SimGraphLulesh, NonOverlappedBlocksExecutionBehindDiscovery) {
  auto o = base_options(32, 2);
  SimGraph g = build_sim_graph(o);
  SimConfig cfg;
  cfg.machine.cores = 8;
  cfg.non_overlapped = true;
  cfg.trace = true;
  ClusterSim sim(cfg);
  sim.set_all_graphs(&g);
  const auto res = sim.run();
  const auto& rk = res.ranks[0];
  // Nothing starts before discovery ends.
  double min_start = 1e300;
  for (const auto& rec : rk.trace) min_start = std::min(min_start, rec.start);
  EXPECT_GE(min_start, rk.discovery_seconds * 0.999);
  // Every edge is visible to the scheduler: none pruned.
  EXPECT_EQ(rk.edges_pruned, 0u);
}

TEST(SimGraphLulesh, TaskwaitVariantAddsEdges) {
  auto mk = [&](bool tw) {
    auto o = base_options(8, 2);
    o.rx = 2;
    o.ry = o.rz = 1;
    o.rank = 0;
    o.s = 16;
    o.taskwait_around_comm = tw;
    return build_sim_graph(o).structural_edges();
  };
  EXPECT_GT(mk(true), mk(false));
}

}  // namespace
