// hpcg-mini: operator construction, CG convergence to the known all-ones
// solution, and equivalence of serial / task / persistent / distributed
// variants.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/hpcg/hpcg.hpp"
#include "core/tdg.hpp"
#include "mpi/interop.hpp"
#include "mpi/mpi.hpp"

namespace {

using tdg::Runtime;
using tdg::apps::hpcg::build_problem;
using tdg::apps::hpcg::CgState;
using tdg::apps::hpcg::Config;
using tdg::apps::hpcg::Problem;
using tdg::apps::hpcg::solution_error;

TEST(Hpcg, StencilOperatorShape) {
  Config cfg;
  cfg.nx = 4;
  cfg.ny = 4;
  cfg.nz_global = 4;
  Problem prob = build_problem(cfg);
  EXPECT_EQ(prob.nrows(), 64);
  // An interior point of a 4^3 lattice has all 27 neighbours.
  bool found27 = false;
  for (std::int64_t row = 0; row < prob.nrows(); ++row) {
    const auto nnz = prob.a.row_ptr[static_cast<std::size_t>(row) + 1] -
                     prob.a.row_ptr[static_cast<std::size_t>(row)];
    ASSERT_GE(nnz, 8);    // corner
    ASSERT_LE(nnz, 27);   // interior
    found27 |= (nnz == 27);
  }
  EXPECT_TRUE(found27);
  // Row sums land in b: interior rows sum to 26 - 26 = 0? No: 26 + 26*(-1)
  // = 0 for interior, positive near boundaries.
  for (std::int64_t row = 0; row < prob.nrows(); ++row) {
    EXPECT_GE(prob.b[static_cast<std::size_t>(row)], 0.0);
  }
}

TEST(Hpcg, ReferenceCgConvergesToOnes) {
  Config cfg;
  cfg.nx = 8;
  cfg.ny = 8;
  cfg.nz_global = 8;
  cfg.cg_iterations = 30;
  cfg.tpl = 4;
  Problem prob = build_problem(cfg);
  CgState st(prob, cfg.tpl);
  run_reference(prob, st, cfg);
  ASSERT_EQ(st.residual_history.size(), 30u);
  EXPECT_LT(st.residual_history.back(), st.residual_history.front() * 1e-6);
  EXPECT_LT(solution_error(prob, st), 1e-6);
}

struct HpcgParams {
  int tpl;
  int nspmv;
  bool persistent;
  unsigned threads;
};

class HpcgTask : public ::testing::TestWithParam<HpcgParams> {};

TEST_P(HpcgTask, MatchesReferenceBitwise) {
  const auto p = GetParam();
  Config cfg;
  cfg.nx = 8;
  cfg.ny = 8;
  cfg.nz_global = 8;
  cfg.cg_iterations = 20;
  cfg.tpl = p.tpl;
  cfg.nspmv = p.nspmv;
  Problem prob = build_problem(cfg);

  CgState ref(prob, cfg.tpl);
  run_reference(prob, ref, cfg);

  Runtime rt({.num_threads = p.threads});
  CgState st(prob, cfg.tpl);
  run_taskbased(rt, prob, st, cfg, p.persistent);

  // Same blocked dot association => identical floating-point trajectory.
  EXPECT_EQ(st.rtz, ref.rtz);
  EXPECT_EQ(st.alpha, ref.alpha);
  EXPECT_EQ(st.beta, ref.beta);
  for (std::size_t i = 0; i < st.x.size(); ++i) {
    ASSERT_EQ(st.x[i], ref.x[i]) << "x[" << i << "]";
  }
  ASSERT_EQ(st.residual_history.size(), ref.residual_history.size());
  for (std::size_t i = 0; i < st.residual_history.size(); ++i) {
    ASSERT_EQ(st.residual_history[i], ref.residual_history[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Variants, HpcgTask,
    ::testing::Values(HpcgParams{1, 1, false, 2},
                      HpcgParams{4, 2, false, 4},
                      HpcgParams{8, 4, false, 4},
                      HpcgParams{8, 8, false, 4},
                      HpcgParams{4, 2, true, 4},
                      HpcgParams{8, 4, true, 4},
                      HpcgParams{8, 4, true, 1}));

TEST(Hpcg, PersistentCreatesTasksOnce) {
  Config cfg;
  cfg.nx = 8;
  cfg.ny = 8;
  cfg.nz_global = 8;
  cfg.cg_iterations = 10;
  cfg.tpl = 4;
  Runtime rt({.num_threads = 2});
  Problem prob = build_problem(cfg);
  CgState st(prob, cfg.tpl);
  run_taskbased(rt, prob, st, cfg, /*persistent=*/true);
  const auto s = rt.stats();
  // init: 2*tpl + 1 tasks; per iteration: nspmv + 5*tpl + 4 (+redirects).
  const std::uint64_t init = 2ull * cfg.tpl + 1;
  const std::uint64_t per_iter = static_cast<std::uint64_t>(cfg.nspmv) +
                                 5ull * cfg.tpl + 4;
  EXPECT_EQ(s.tasks_created, init + per_iter);
  EXPECT_GE(s.tasks_executed,
            init + per_iter * static_cast<std::uint64_t>(cfg.cg_iterations));
}

class HpcgDistributed : public ::testing::TestWithParam<int> {};

TEST_P(HpcgDistributed, ConvergesAndMatchesSerialSolution) {
  const int nranks = GetParam();
  Config cfg;
  cfg.nx = 8;
  cfg.ny = 8;
  cfg.nz_global = 12;
  cfg.cg_iterations = 30;
  cfg.tpl = 4;
  cfg.nspmv = 2;

  std::vector<double> errors(static_cast<std::size_t>(nranks), 1.0);
  std::vector<double> final_res(static_cast<std::size_t>(nranks), 1.0);
  tdg::mpi::Universe::run(nranks, [&](tdg::mpi::Comm& comm) {
    Runtime rt({.num_threads = 2});
    tdg::mpi::RequestPoller poller(rt);
    Problem prob = build_problem(cfg, comm.rank(), comm.size());
    CgState st(prob, cfg.tpl);
    run_distributed(rt, comm, poller, prob, st, cfg, /*persistent=*/false);
    errors[static_cast<std::size_t>(comm.rank())] = solution_error(prob, st);
    final_res[static_cast<std::size_t>(comm.rank())] =
        st.residual_history.back();
  });
  for (int r = 0; r < nranks; ++r) {
    EXPECT_LT(errors[static_cast<std::size_t>(r)], 1e-6) << "rank " << r;
    // Every rank observes the same global residual via the allreduce.
    EXPECT_EQ(final_res[static_cast<std::size_t>(r)], final_res[0]);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, HpcgDistributed,
                         ::testing::Values(1, 2, 3, 4));

TEST(Hpcg, DistributedPersistentConverges) {
  constexpr int kRanks = 2;
  Config cfg;
  cfg.nx = 6;
  cfg.ny = 6;
  cfg.nz_global = 8;
  cfg.cg_iterations = 30;
  cfg.tpl = 4;
  std::vector<double> errors(kRanks, 1.0);
  tdg::mpi::Universe::run(kRanks, [&](tdg::mpi::Comm& comm) {
    Runtime rt({.num_threads = 2});
    tdg::mpi::RequestPoller poller(rt);
    Problem prob = build_problem(cfg, comm.rank(), comm.size());
    CgState st(prob, cfg.tpl);
    run_distributed(rt, comm, poller, prob, st, cfg, /*persistent=*/true);
    errors[static_cast<std::size_t>(comm.rank())] = solution_error(prob, st);
  });
  for (double e : errors) EXPECT_LT(e, 1e-6);
}

TEST(Hpcg, EdgesPerTaskGrowWithTpl) {
  // Fig. 9 (bottom): average edges per task grows with the block count
  // while the grain shrinks.
  Config cfg;
  cfg.nx = 8;
  cfg.ny = 8;
  cfg.nz_global = 8;
  cfg.cg_iterations = 5;
  auto edges_per_task = [&](int tpl) {
    Config c = cfg;
    c.tpl = tpl;
    c.nspmv = 4;
    Runtime rt({.num_threads = 1});
    Problem prob = build_problem(c);
    CgState st(prob, c.tpl);
    run_taskbased(rt, prob, st, c, false);
    const auto s = rt.stats();
    return static_cast<double>(s.discovery.edges_created) /
           static_cast<double>(s.tasks_created);
  };
  EXPECT_GT(edges_per_task(16), edges_per_task(2));
}

}  // namespace
