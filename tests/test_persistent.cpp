// Persistent Task Sub-Graph (optimization (p), Section 3.2): discovery-once
// replay, firstprivate update semantics, full-edge recording, the implicit
// end-of-iteration barrier, and interaction with detach/taskloop/inoutset.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "core/tdg.hpp"

namespace {

using tdg::Depend;
using tdg::PersistentRegion;
using tdg::Runtime;
using tdg::TaskOpts;

TEST(Persistent, ReplaysChainWithUpdatedFirstprivate) {
  Runtime rt({.num_threads = 4});
  constexpr int kIters = 6;
  constexpr int kLen = 50;
  std::vector<int> slot(kLen, -1);
  int chain = 0;
  PersistentRegion region(rt);
  for (int it = 0; it < kIters; ++it) {
    region.begin_iteration();
    for (int k = 0; k < kLen; ++k) {
      // `it` is the firstprivate datum updated by the replay memcpy.
      rt.submit([&slot, k, it] { slot[k] = it; },
                {Depend::inout(&chain), Depend::out(&slot[k])});
    }
    region.end_iteration();
    for (int k = 0; k < kLen; ++k) {
      ASSERT_EQ(slot[k], it) << "iteration " << it << " slot " << k;
    }
  }
  EXPECT_EQ(region.iterations_done(), static_cast<std::uint32_t>(kIters));
  EXPECT_EQ(region.task_count(), static_cast<std::size_t>(kLen));
  EXPECT_EQ(rt.stats().tasks_executed,
            static_cast<std::uint64_t>(kIters) * kLen);
}

TEST(Persistent, EdgesDiscoveredOnlyOnce) {
  Runtime rt({.num_threads = 2});
  int a = 0, b = 0;
  PersistentRegion region(rt);
  std::uint64_t edges_after_first = 0;
  for (int it = 0; it < 5; ++it) {
    region.begin_iteration();
    rt.submit([&] { a = 1; }, {Depend::out(&a)});
    rt.submit([&] { b = a + 1; }, {Depend::in(&a), Depend::out(&b)});
    region.end_iteration();
    if (it == 0) edges_after_first = rt.stats().discovery.edges_created;
  }
  EXPECT_GE(edges_after_first, 1u);
  EXPECT_EQ(rt.stats().discovery.edges_created, edges_after_first)
      << "replay iterations must not re-create edges";
}

TEST(Persistent, AllEdgesRecordedEvenToFinishedPredecessors) {
  // Force the producer to execute each task at submission (ready throttle
  // 0): in normal mode every edge would be pruned, but persistent-mode
  // discovery must record them anyway for correct replay ordering.
  Runtime::Config cfg;
  cfg.num_threads = 1;
  cfg.throttle.max_ready = 0;
  Runtime rt(cfg);
  constexpr int kLen = 20;
  int value = 0;
  PersistentRegion region(rt);
  for (int it = 0; it < 4; ++it) {
    region.begin_iteration();
    for (int i = 0; i < kLen; ++i) {
      rt.submit(
          [&value, i] {
            EXPECT_EQ(value, i);
            value = i + 1;
          },
          {Depend::inout(&value)});
    }
    region.end_iteration();
    EXPECT_EQ(value, kLen);
    value = 0;
  }
  // The chain has kLen-1 edges; all must exist in the cached graph.
  EXPECT_EQ(rt.stats().discovery.edges_created,
            static_cast<std::uint64_t>(kLen - 1));
  EXPECT_EQ(rt.stats().discovery.edges_pruned, 0u);
}

TEST(Persistent, ImplicitBarrierSeparatesIterations) {
  Runtime rt({.num_threads = 4});
  constexpr int kTasks = 16;
  std::atomic<int> completed{0};
  std::atomic<bool> overlap{false};
  int dummy = 0;
  PersistentRegion region(rt);
  for (int it = 0; it < 3; ++it) {
    region.begin_iteration();
    for (int i = 0; i < kTasks; ++i) {
      rt.submit(
          [&completed, &overlap, it] {
            // Every task of iteration `it` may only start once all tasks
            // of earlier iterations have completed (implicit barrier).
            if (completed.load() < it * kTasks) overlap = true;
            ++completed;
          },
          {Depend::in(&dummy)});
    }
    region.end_iteration();
    EXPECT_EQ(completed.load(), (it + 1) * kTasks)
        << "barrier must drain all tasks of iteration " << it;
  }
  EXPECT_FALSE(overlap.load());
}

TEST(Persistent, DiscoverySecondsRecordedPerIteration) {
  Runtime rt({.num_threads = 2});
  int x = 0;
  PersistentRegion region(rt);
  constexpr int kIters = 4;
  for (int it = 0; it < kIters; ++it) {
    region.begin_iteration();
    for (int i = 0; i < 100; ++i) {
      rt.submit([&] { ++x; }, {Depend::inout(&x)});
    }
    region.end_iteration();
  }
  ASSERT_EQ(region.discovery_seconds().size(),
            static_cast<std::size_t>(kIters));
  for (double d : region.discovery_seconds()) EXPECT_GE(d, 0.0);
}

TEST(Persistent, TaskloopInsideRegion) {
  Runtime rt({.num_threads = 4});
  constexpr std::int64_t kN = 4096;
  constexpr int kBlocks = 8;
  std::vector<double> v(kN, 0.0);
  PersistentRegion region(rt);
  constexpr int kIters = 5;
  for (int it = 0; it < kIters; ++it) {
    region.begin_iteration();
    rt.taskloop(
        0, kN, kBlocks,
        [&](int, std::int64_t lo, std::int64_t, tdg::DependList& d) {
          d.push_back(Depend::inout(&v[static_cast<std::size_t>(lo)]));
        },
        [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t i = lo; i < hi; ++i) v[i] += 1.0;
        });
    region.end_iteration();
  }
  for (double x : v) ASSERT_EQ(x, static_cast<double>(kIters));
}

TEST(Persistent, InOutSetRedirectSurvivesReplay) {
  Runtime rt({.num_threads = 4});
  constexpr int kMembers = 6;
  std::vector<int> partial(kMembers, 0);
  double x = 0;
  int total = 0;
  PersistentRegion region(rt);
  constexpr int kIters = 4;
  for (int it = 0; it < kIters; ++it) {
    region.begin_iteration();
    for (int m = 0; m < kMembers; ++m) {
      rt.submit([&partial, m, it] { partial[m] = it + 1; },
                {Depend::inoutset(&x)});
    }
    rt.submit(
        [&] {
          int s = 0;
          for (int p : partial) s += p;
          total = s;
        },
        {Depend::in(&x)});
    region.end_iteration();
    EXPECT_EQ(total, kMembers * (it + 1))
        << "consumer observed stale inoutset members at iteration " << it;
  }
  EXPECT_EQ(rt.stats().discovery.redirect_nodes, 1u);
}

TEST(Persistent, DetachEventRefulfilledEachIteration) {
  Runtime rt({.num_threads = 2});
  tdg::Event* ev = rt.create_event();
  std::atomic<bool> body_done{false};
  std::atomic<int> succ_runs{0};
  int x = 0;
  rt.set_polling_hook([&] {
    if (body_done.exchange(false)) ev->fulfill();
  });
  PersistentRegion region(rt);
  constexpr int kIters = 3;
  for (int it = 0; it < kIters; ++it) {
    region.begin_iteration();
    TaskOpts opts;
    opts.detach = ev;
    rt.submit([&] { body_done = true; }, {Depend::out(&x)}, opts);
    rt.submit([&] { ++succ_runs; }, {Depend::in(&x)});
    region.end_iteration();
  }
  EXPECT_EQ(succ_runs.load(), kIters);
}

TEST(Persistent, HeavyGraphManyIterationsStress) {
  Runtime rt({.num_threads = 4});
  constexpr int kBlocks = 24;
  constexpr int kLoops = 4;
  constexpr int kIters = 8;
  std::vector<std::vector<double>> data(kLoops + 1,
                                        std::vector<double>(kBlocks, 0.0));
  PersistentRegion region(rt);
  for (int it = 0; it < kIters; ++it) {
    region.begin_iteration();
    for (int l = 0; l < kLoops; ++l) {
      for (int b = 0; b < kBlocks; ++b) {
        rt.submit(
            [&data, l, b] { data[l + 1][b] = data[l][b] + 1.0; },
            {Depend::in(&data[l][b]), Depend::out(&data[l + 1][b])});
      }
    }
    region.end_iteration();
  }
  EXPECT_EQ(rt.stats().tasks_executed,
            static_cast<std::uint64_t>(kBlocks) * kLoops * kIters);
  EXPECT_EQ(region.task_count(),
            static_cast<std::size_t>(kBlocks) * kLoops);
}

}  // namespace
