// Round-trip tests for the Perfetto JSON and TSV trace formats, plus
// malformed-input rejection and the end-to-end runtime trace pipeline.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/profiler.hpp"
#include "core/runtime.hpp"
#include "core/trace_export.hpp"

namespace tdg {
namespace {

std::vector<TaskRecord> sample_records() {
  // Labels must outlive the records (TaskRecord stores const char*).
  static const char* kLabels[] = {"alpha", "beta", "gamma"};
  std::vector<TaskRecord> rec;
  for (std::uint64_t i = 0; i < 3; ++i) {
    TaskRecord r;
    r.task_id = i + 1;
    r.t_create = 1000 * i;
    r.t_ready = 1000 * i + 100;
    r.t_start = 1000 * i + 500;
    r.t_end = 1000 * i + 900;
    r.thread = static_cast<std::uint32_t>(i % 2);
    r.iteration = static_cast<std::uint32_t>(i);
    r.label = kLabels[i];
    rec.push_back(r);
  }
  return rec;
}

std::vector<TraceEdge> sample_edges() { return {{1, 2}, {2, 3}, {1, 3}}; }

TEST(PerfettoExport, RoundTripPreservesRecordsAndEdges) {
  const auto rec = sample_records();
  const auto edges = sample_edges();
  std::ostringstream os;
  write_perfetto(os, rec, edges);

  std::istringstream is(os.str());
  const ParsedTrace back = parse_perfetto(is);
  ASSERT_EQ(back.records.size(), rec.size());
  for (std::size_t i = 0; i < rec.size(); ++i) {
    EXPECT_EQ(back.records[i].task_id, rec[i].task_id);
    EXPECT_EQ(back.records[i].thread, rec[i].thread);
    EXPECT_EQ(back.records[i].iteration, rec[i].iteration);
    EXPECT_STREQ(back.records[i].label, rec[i].label);
    // Timestamps are normalized to the earliest record and re-expressed
    // from microsecond precision: equal up to rounding, deltas preserved.
    EXPECT_EQ(back.records[i].t_end - back.records[i].t_start,
              rec[i].t_end - rec[i].t_start);
    EXPECT_EQ(back.records[i].t_start - back.records[i].t_create,
              rec[i].t_start - rec[i].t_create);
    EXPECT_EQ(back.records[i].t_ready - back.records[i].t_create,
              rec[i].t_ready - rec[i].t_create);
  }
  ASSERT_EQ(back.edges.size(), edges.size());
  for (const TraceEdge& e : edges) {
    bool found = false;
    for (const TraceEdge& b : back.edges) {
      found |= b.pred == e.pred && b.succ == e.succ;
    }
    EXPECT_TRUE(found) << e.pred << "->" << e.succ;
  }
}

TEST(PerfettoExport, EmitsMetadataSlicesFlowsAndCounters) {
  const auto rec = sample_records();
  const auto edges = sample_edges();
  std::ostringstream os;
  write_perfetto(os, rec, edges);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"alpha\""), std::string::npos);
}

TEST(PerfettoExport, BareArrayFormAlsoParses) {
  // The trace-event spec allows a bare JSON array of events.
  std::istringstream is(
      R"([{"ph":"X","pid":0,"tid":0,"ts":0,"dur":5,"name":"t",)"
      R"("args":{"id":7,"iteration":0,"create_us":0,"ready_us":0}}])");
  const ParsedTrace t = parse_perfetto(is);
  ASSERT_EQ(t.records.size(), 1u);
  EXPECT_EQ(t.records[0].task_id, 7u);
  EXPECT_EQ(t.records[0].t_end - t.records[0].t_start, 5000u);
}

TEST(PerfettoExport, MalformedInputThrowsUsageError) {
  const char* bad[] = {
      "",
      "not json",
      "{\"traceEvents\": ",
      "{\"traceEvents\": 3}",
      "[{\"ph\":\"X\"",
      "{\"traceEvents\": [{]}",
  };
  for (const char* text : bad) {
    std::istringstream is(text);
    EXPECT_THROW(parse_perfetto(is), UsageError) << text;
  }
}

TEST(TsvExport, RoundTripIsLossless) {
  const auto rec = sample_records();
  std::ostringstream os;
  write_trace_tsv(os, rec);

  std::istringstream is(os.str());
  const ParsedTrace back = parse_trace_tsv(is);
  ASSERT_EQ(back.records.size(), rec.size());
  for (std::size_t i = 0; i < rec.size(); ++i) {
    EXPECT_EQ(back.records[i].task_id, rec[i].task_id);
    EXPECT_EQ(back.records[i].t_create, rec[i].t_create);
    EXPECT_EQ(back.records[i].t_ready, rec[i].t_ready);
    EXPECT_EQ(back.records[i].t_start, rec[i].t_start);
    EXPECT_EQ(back.records[i].t_end, rec[i].t_end);
    EXPECT_EQ(back.records[i].thread, rec[i].thread);
    EXPECT_EQ(back.records[i].iteration, rec[i].iteration);
    EXPECT_STREQ(back.records[i].label, rec[i].label);
  }
}

TEST(TsvExport, TruncatedRowThrows) {
  std::istringstream is(
      "task_id\tthread\titeration\tlabel\tt_create_ns\tt_ready_ns"
      "\tt_start_ns\tt_end_ns\n1\t0\t0\tx\t1\t2\n");
  EXPECT_THROW(parse_trace_tsv(is), UsageError);
}

TEST(TraceSniffing, SelectsFormatByFirstByte) {
  const auto rec = sample_records();
  std::ostringstream json_os, tsv_os;
  write_perfetto(json_os, rec, {});
  write_trace_tsv(tsv_os, rec);

  std::istringstream json_is(json_os.str()), tsv_is(tsv_os.str());
  EXPECT_EQ(parse_trace(json_is).records.size(), rec.size());
  EXPECT_EQ(parse_trace(tsv_is).records.size(), rec.size());
}

TEST(TraceEnv, ModeParsing) {
  // trace_env_config reads TDG_TRACE / TDG_TRACE_FILE from the process
  // environment; drive it via setenv.
  setenv("TDG_TRACE", "perfetto", 1);
  EXPECT_EQ(trace_env_config().mode, TraceMode::Perfetto);
  setenv("TDG_TRACE", "json", 1);
  EXPECT_EQ(trace_env_config().mode, TraceMode::Perfetto);
  setenv("TDG_TRACE", "tsv", 1);
  EXPECT_EQ(trace_env_config().mode, TraceMode::Tsv);
  setenv("TDG_TRACE", "off", 1);
  EXPECT_EQ(trace_env_config().mode, TraceMode::Off);
  setenv("TDG_TRACE_FILE", "/tmp/custom.json", 1);
  setenv("TDG_TRACE", "perfetto", 1);
  EXPECT_EQ(trace_env_config().path, "/tmp/custom.json");
  unsetenv("TDG_TRACE");
  unsetenv("TDG_TRACE_FILE");
  EXPECT_EQ(trace_env_config().mode, TraceMode::Off);
}

std::vector<CommRecord> sample_comms() {
  std::vector<CommRecord> comms;
  CommRecord s;
  s.kind = CommRecord::Kind::Send;
  s.self = 0;
  s.peer = 1;
  s.tag = 7;
  s.seq = 1;
  s.bytes = 64;
  s.t_post = 1200;
  s.t_complete = 1300;
  s.retransmits = 2;
  s.task_id = 1;
  comms.push_back(s);
  CommRecord r;
  r.kind = CommRecord::Kind::Recv;
  r.self = 1;
  r.peer = 0;
  r.tag = 7;
  r.seq = 1;
  r.bytes = 64;
  r.t_post = 1100;
  r.t_complete = 1500;
  r.task_id = 2;
  comms.push_back(r);
  CommRecord c;
  c.kind = CommRecord::Kind::Collective;
  c.self = 0;
  c.tag = 0;
  c.seq = 1;
  c.bytes = 8;
  c.t_post = 2000;
  c.t_complete = 2600;
  comms.push_back(c);
  return comms;
}

TEST(PerfettoExport, CommRecordsRoundTripAndDrawMessageFlows) {
  const auto rec = sample_records();
  const auto comms = sample_comms();
  std::ostringstream os;
  write_perfetto(os, rec, {}, {}, {}, {}, comms);
  const std::string json = os.str();
  // The matched pair becomes a "msg" flow between the two comm tracks.
  EXPECT_NE(json.find("\"cat\":\"msg\""), std::string::npos);
  EXPECT_NE(json.find("send to 1 tag 7"), std::string::npos);
  EXPECT_NE(json.find("recv from 0 tag 7"), std::string::npos);
  EXPECT_NE(json.find("collective slot 0"), std::string::npos);

  std::istringstream is(json);
  const ParsedTrace back = parse_perfetto(is);
  ASSERT_EQ(back.comms.size(), comms.size());
  // Parsed comms are sorted by t_post: recv (1100) < send (1200) < coll.
  const CommRecord& r0 = back.comms[0];
  const CommRecord& s0 = back.comms[1];
  const CommRecord& c0 = back.comms[2];
  EXPECT_EQ(r0.kind, CommRecord::Kind::Recv);
  EXPECT_EQ(s0.kind, CommRecord::Kind::Send);
  EXPECT_EQ(c0.kind, CommRecord::Kind::Collective);
  EXPECT_EQ(s0.self, 0);
  EXPECT_EQ(s0.peer, 1);
  EXPECT_EQ(s0.tag, 7);
  EXPECT_EQ(s0.seq, 1u);
  EXPECT_EQ(s0.bytes, 64u);
  EXPECT_EQ(s0.retransmits, 2u);
  EXPECT_EQ(s0.task_id, 1u);
  // Timestamps are rebased to the earliest event; spans are preserved.
  EXPECT_EQ(s0.t_complete - s0.t_post, 100u);
  EXPECT_EQ(r0.t_complete - r0.t_post, 400u);
  EXPECT_EQ(c0.t_complete - c0.t_post, 600u);
}

TEST(PerfettoExport, TaskRankRoundTripsThroughPid) {
  static const char* kLabel = "remote";
  std::vector<TaskRecord> rec = sample_records();
  rec[1].rank = 3;
  rec[1].label = kLabel;
  std::ostringstream os;
  write_perfetto(os, rec, {});
  std::istringstream is(os.str());
  const ParsedTrace back = parse_perfetto(is);
  ASSERT_EQ(back.records.size(), rec.size());
  for (const TaskRecord& r : back.records) {
    EXPECT_EQ(r.rank, std::string(r.label) == "remote" ? 3 : 0);
  }
}

TEST(TsvExport, CommRecordsAndRankRoundTripExactly) {
  std::vector<TaskRecord> rec = sample_records();
  rec[2].rank = 5;
  const auto comms = sample_comms();
  std::ostringstream os;
  write_trace_tsv(os, rec, {}, {}, {}, comms);

  std::istringstream is(os.str());
  const ParsedTrace back = parse_trace_tsv(is);
  ASSERT_EQ(back.records.size(), rec.size());
  EXPECT_EQ(back.records[2].rank, 5);
  ASSERT_EQ(back.comms.size(), comms.size());
  // TSV keeps absolute nanoseconds; everything must match bit-for-bit.
  const CommRecord& r0 = back.comms[0];  // sorted by t_post: the recv
  EXPECT_EQ(r0.kind, CommRecord::Kind::Recv);
  EXPECT_EQ(r0.self, 1);
  EXPECT_EQ(r0.peer, 0);
  EXPECT_EQ(r0.t_post, 1100u);
  EXPECT_EQ(r0.t_complete, 1500u);
  const CommRecord& s0 = back.comms[1];
  EXPECT_EQ(s0.kind, CommRecord::Kind::Send);
  EXPECT_EQ(s0.seq, 1u);
  EXPECT_EQ(s0.bytes, 64u);
  EXPECT_EQ(s0.retransmits, 2u);
  EXPECT_EQ(s0.task_id, 1u);
  EXPECT_EQ(s0.t_post, 1200u);
  EXPECT_EQ(s0.t_complete, 1300u);
}

TEST(RuntimeTrace, ProfilerStreamExportsAndParsesBack) {
  // End-to-end: run a small traced graph, export the profiler's stream,
  // parse it back and check the flow edges survived.
  std::vector<TaskRecord> records;
  std::vector<TraceEdge> edges;
  {
    Runtime rt({.num_threads = 2, .trace = true});
    double a = 0, b = 0, c = 0;
    rt.submit([&] { a = 1; }, {Depend::out(&a)}, {.label = "produce"});
    rt.submit([&] { b = a + 1; }, {Depend::in(&a), Depend::out(&b)},
              {.label = "left"});
    rt.submit([&] { c = a + 2; }, {Depend::in(&a), Depend::out(&c)},
              {.label = "right"});
    rt.submit([&] { a = b + c; },
              {Depend::in(&b), Depend::in(&c), Depend::out(&a)},
              {.label = "join"});
    rt.taskwait();
    records = rt.profiler().merged_trace();
    edges = rt.profiler().edges();
  }
  ASSERT_EQ(records.size(), 4u);
  ASSERT_GE(edges.size(), 4u);  // diamond: 2 from produce, 2 into join

  std::ostringstream os;
  write_perfetto(os, records, edges);
  std::istringstream is(os.str());
  const ParsedTrace back = parse_perfetto(is);
  EXPECT_EQ(back.records.size(), 4u);
  EXPECT_EQ(back.edges.size(), edges.size());
}

}  // namespace
}  // namespace tdg
