// Online sampling race detector: vector-clock ordering queries, seeded
// edge-drop detection at discovery time, strict-mode escalation through
// the offline verifier, deterministic sampling, cross-base range-overlap
// flags, taskbench/multi-tenant cleanliness, shadow-table churn, the
// clause lint's overlapping-range check and the trace extent round-trip.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <vector>

#include "apps/taskbench/taskbench.hpp"
#include "core/race.hpp"
#include "core/tdg.hpp"
#include "core/verify.hpp"
#include "core/worker_pool.hpp"

namespace tdg {
namespace {

namespace tb = tdg::apps::taskbench;

Runtime::Config race_config(RaceMode mode, int threads = 1) {
  Runtime::Config cfg;
  cfg.num_threads = threads;
  cfg.race.mode = mode;  // strict forces trace capture in the ctor
  return cfg;
}

// --- env parsing ------------------------------------------------------------

TEST(RaceEnv, UnsetAndOffLeaveModeOff) {
  unsetenv("TDG_RACE");
  EXPECT_EQ(race_env_options().mode, RaceMode::Off);
  setenv("TDG_RACE", "off", 1);
  EXPECT_EQ(race_env_options().mode, RaceMode::Off);
  setenv("TDG_RACE", "garbage", 1);
  EXPECT_EQ(race_env_options().mode, RaceMode::Off);  // unknown -> off
  unsetenv("TDG_RACE");
}

TEST(RaceEnv, SampleAndStrictDefaultsAndOverrides) {
  setenv("TDG_RACE", "sample", 1);
  RaceOptions o = race_env_options();
  EXPECT_EQ(o.mode, RaceMode::Sample);
  EXPECT_EQ(o.sample_tasks, 16u);  // sample default: every 16th task

  setenv("TDG_RACE", "strict", 1);
  o = race_env_options();
  EXPECT_EQ(o.mode, RaceMode::Strict);
  EXPECT_EQ(o.sample_tasks, 1u);  // strict default: check everything
  EXPECT_EQ(o.sample_addrs, 1u);

  setenv("TDG_RACE_SAMPLE_TASKS", "8", 1);
  setenv("TDG_RACE_SAMPLE_ADDRS", "4", 1);
  setenv("TDG_RACE_SEED", "7", 1);
  o = race_env_options();
  EXPECT_EQ(o.sample_tasks, 8u);
  EXPECT_EQ(o.sample_addrs, 4u);
  EXPECT_EQ(o.seed, 7u);

  unsetenv("TDG_RACE");
  unsetenv("TDG_RACE_SAMPLE_TASKS");
  unsetenv("TDG_RACE_SAMPLE_ADDRS");
  unsetenv("TDG_RACE_SEED");
}

// --- clock-ordering unit tests (detector used directly) ---------------------

RaceOptions unit_opts(RaceMode mode = RaceMode::Sample) {
  RaceOptions o;
  o.mode = mode;
  o.live_report = false;
  return o;
}

TEST(RaceClocks, EdgeJoinsProveOrderTransitively) {
  RaceDetector det(unit_opts(), 1);
  const std::vector<Depend> none;
  for (std::uint64_t id = 1; id <= 3; ++id) {
    det.on_task_discovered(id, none.data(), 0, "");
  }
  det.on_edge(1, 2);
  det.on_edge(2, 3);
  EXPECT_TRUE(det.ordered(1, 2));
  EXPECT_TRUE(det.ordered(2, 3));
  EXPECT_TRUE(det.ordered(1, 3));   // transitive through the join
  EXPECT_FALSE(det.ordered(3, 1));  // direction matters
  EXPECT_FALSE(det.ordered(2, 1));
}

TEST(RaceClocks, UnrelatedTasksAreUnorderedEvenAcrossLaneAliases) {
  // Ids 1 and 1+W share a clock lane; aliasing must never *invent* order.
  RaceOptions o = unit_opts();
  o.clock_lanes = 4;
  RaceDetector det(o, 1);
  const std::vector<Depend> none;
  for (std::uint64_t id = 1; id <= 9; ++id) {
    det.on_task_discovered(id, none.data(), 0, "");
  }
  det.on_edge(1, 2);
  EXPECT_FALSE(det.ordered(5, 2));  // 5 aliases lane of 1, never joined
  EXPECT_FALSE(det.ordered(1, 9));
}

TEST(RaceClocks, BarrierCutoffOrdersEverythingBefore) {
  RaceDetector det(unit_opts(), 1);
  const std::vector<Depend> none;
  det.on_task_discovered(1, none.data(), 0, "");
  det.on_task_discovered(2, none.data(), 0, "");
  EXPECT_FALSE(det.ordered(1, 2));
  det.on_barrier(2);
  det.on_task_discovered(3, none.data(), 0, "");
  EXPECT_TRUE(det.ordered(1, 3));  // pre-barrier id vs post-barrier id
  EXPECT_TRUE(det.ordered(2, 3));
  // Barrier freed every clock; task 3 has no edges yet (records are lazy).
  EXPECT_EQ(det.live_clock_records(), 0u);
}

TEST(RaceSampling, SampledSetIsAPureFunctionOfSeed) {
  RaceOptions o = unit_opts();
  o.sample_tasks = 4;
  o.seed = 42;
  RaceDetector a(o, 1);
  RaceDetector b(o, 1);
  o.seed = 43;
  RaceDetector c(o, 1);
  std::size_t sampled = 0, differs = 0;
  for (std::uint64_t id = 1; id <= 256; ++id) {
    EXPECT_EQ(a.would_sample_task(id), b.would_sample_task(id));
    sampled += a.would_sample_task(id) ? 1 : 0;
    differs += a.would_sample_task(id) != c.would_sample_task(id) ? 1 : 0;
  }
  // Roughly 1-in-4 sampled, and a different seed picks a different set.
  EXPECT_GT(sampled, 256u / 16);
  EXPECT_LT(sampled, 256u / 2);
  EXPECT_GT(differs, 0u);
  // Rate 1 samples everything (strict default).
  RaceDetector all(unit_opts(RaceMode::Strict), 1);
  for (std::uint64_t id = 1; id <= 32; ++id) {
    EXPECT_TRUE(all.would_sample_task(id));
    EXPECT_TRUE(all.would_sample_addr(id * 64));
  }
}

// --- online detection on the live runtime -----------------------------------

TEST(RaceOnline, SeededEdgeDropCaughtAtRateOneAndEscalatedPrecisely) {
  // Drop the writer->reader edge exactly as a missing depend clause would:
  // the pair is then unordered in the discovered TDG, the reader's shadow
  // check must flag it (rate 1: both endpoints checked), and strict mode
  // must escalate through the offline verifier into a RaceError whose
  // report names both endpoints.
  Runtime::Config cfg = race_config(RaceMode::Strict);
  cfg.discovery.seed_drop_edge = 1;
  Runtime rt(cfg);
  int x = 0;
  rt.submit([&] { x = 1; }, {Depend::out(&x)}, {.label = "writer"});
  rt.submit([&] { (void)x; }, {Depend::in(&x)}, {.label = "reader"});
  try {
    rt.taskwait();
    FAIL() << "strict race mode must throw on the seeded drop";
  } catch (const RaceError& e) {
    EXPECT_NE(e.report().find("race[same-base]"), std::string::npos)
        << e.report();
    EXPECT_NE(e.report().find("writer"), std::string::npos) << e.report();
    EXPECT_NE(e.report().find("reader"), std::string::npos) << e.report();
    // Escalation ran the offline verifier over the flagged window and
    // confirmed the violation with the precise pair report.
    EXPECT_NE(e.report().find("determinacy race"), std::string::npos)
        << e.report();
  }
  ASSERT_NE(rt.race_detector(), nullptr);
  EXPECT_GE(rt.race_detector()->flag_total(), 1u);
}

TEST(RaceOnline, SampleModeReportsWithoutThrowing) {
  Runtime::Config cfg = race_config(RaceMode::Sample);
  cfg.race.sample_tasks = 1;  // deterministic: check every task
  cfg.discovery.seed_drop_edge = 1;
  Runtime rt(cfg);
  int x = 0;
  rt.submit([&] { x = 1; }, {Depend::out(&x)});
  rt.submit([&] { (void)x; }, {Depend::in(&x)});
  rt.taskwait();  // reports to stderr, must not throw
  EXPECT_GE(rt.race_detector()->flag_total(), 1u);
  EXPECT_EQ(rt.race_detector()->tracked_count(), 2u);
}

TEST(RaceOnline, SeededDropComposesWithBatchSubmissionAndIsAttributable) {
  // Under batched submission one discovery window covers the whole batch;
  // the drop log must still attribute the suppressed edge to its endpoints
  // and clause address, and the detector must still flag the pair.
  Runtime::Config cfg = race_config(RaceMode::Sample);
  cfg.race.sample_tasks = 1;
  cfg.discovery.seed_drop_edge = 1;
  Runtime rt(cfg);
  int x = 0;
  std::vector<BatchItem<std::function<void()>>> items;
  items.push_back({[&] { x = 1; }, {Depend::out(&x)}, {.label = "bw"}});
  items.push_back({[&] { (void)x; }, {Depend::in(&x)}, {.label = "br"}});
  rt.submit_batch(items);
  rt.taskwait();
  const auto& drops = rt.dependency_map().dropped_edges();
  ASSERT_EQ(drops.size(), 1u);
  EXPECT_EQ(drops[0].nth, 1u);
  EXPECT_EQ(drops[0].addr, static_cast<const void*>(&x));
  EXPECT_LT(drops[0].pred_id, drops[0].succ_id);
  EXPECT_GE(rt.race_detector()->flag_total(), 1u);
}

TEST(RaceOnline, RuntimeStaysUsableAfterRaceError) {
  Runtime::Config cfg = race_config(RaceMode::Strict);
  cfg.discovery.seed_drop_edge = 1;
  Runtime rt(cfg);
  int x = 0;
  rt.submit([&] { x = 1; }, {Depend::out(&x)});
  rt.submit([&] { (void)x; }, {Depend::in(&x)});
  EXPECT_THROW(rt.taskwait(), RaceError);
  // The flagged window was drained at the barrier; clean work proceeds.
  int y = 0;
  rt.submit([&] { y = 1; }, {Depend::out(&y)});
  rt.submit([&] { (void)y; }, {Depend::in(&y)});
  EXPECT_NO_THROW(rt.taskwait());
  EXPECT_EQ(y, 1);
}

TEST(RaceOnline, CleanGraphsRaiseNoFlags) {
  Runtime rt(race_config(RaceMode::Strict, 2));
  double a = 0, b = 0, c = 0;
  for (int iter = 0; iter < 3; ++iter) {
    rt.submit([&] { a = 1; }, {Depend::out(&a)});
    rt.submit([&] { b = a; }, {Depend::in(&a), Depend::out(&b)});
    rt.submit([&] { c = a; }, {Depend::in(&a), Depend::out(&c)});
    rt.submit([&] { a = b + c; },
              {Depend::in(&b), Depend::in(&c), Depend::inout(&a)});
    EXPECT_NO_THROW(rt.taskwait());
  }
  EXPECT_EQ(rt.race_detector()->flag_total(), 0u);
  EXPECT_GE(rt.race_detector()->check_count(), 12u);
}

TEST(RaceOnline, ScopeClearSeparatedPairsAreNotFlagged) {
  // No ordering is *required* across a dependency-scope clear, so reusing
  // an address after the clear must not flag against the pre-clear writer.
  Runtime rt(race_config(RaceMode::Strict));
  int x = 0;
  rt.submit([&] { x = 1; }, {Depend::out(&x)});
  rt.clear_dependency_scope();
  rt.submit([&] { x = 2; }, {Depend::out(&x)});
  EXPECT_NO_THROW(rt.taskwait());
  EXPECT_EQ(rt.race_detector()->flag_total(), 0u);
}

TEST(RaceOnline, CrossBaseRangeOverlapIsFlagged) {
  // Two different base addresses whose declared extents overlap: discovery
  // matches identity only, so the depend clauses are structurally unable
  // to order the pair — the interval shadow table must flag it.
  Runtime::Config cfg = race_config(RaceMode::Strict);
  Runtime rt(cfg);
  alignas(8) char buf[32] = {};
  rt.submit([&] { buf[0] = 1; }, {Depend::out(&buf[0], 16)},
            {.label = "head-writer"});
  rt.submit([&] { (void)buf[8]; }, {Depend::in(&buf[8], 16)},
            {.label = "tail-reader"});
  try {
    rt.taskwait();
    FAIL() << "overlapping cross-base ranges must throw in strict mode";
  } catch (const RaceError& e) {
    EXPECT_NE(e.report().find("race[range-overlap]"), std::string::npos)
        << e.report();
    EXPECT_NE(e.report().find("head-writer"), std::string::npos);
    EXPECT_NE(e.report().find("tail-reader"), std::string::npos);
  }
}

TEST(RaceOnline, DisjointRangesOnDifferentBasesStayClean) {
  Runtime rt(race_config(RaceMode::Strict));
  alignas(8) char buf[32] = {};
  rt.submit([&] { buf[0] = 1; }, {Depend::out(&buf[0], 8)});
  rt.submit([&] { (void)buf[16]; }, {Depend::in(&buf[16], 8)});
  EXPECT_NO_THROW(rt.taskwait());
  EXPECT_EQ(rt.race_detector()->flag_total(), 0u);
}

TEST(RaceOnline, ShadowAndClockStateDrainToZeroAcrossWindows) {
  // Churn check: repeated windows must not leak shadow entries or clock
  // records (both are slab-backed; the leak shows up as a live count).
  Runtime rt(race_config(RaceMode::Sample, 2));
  std::vector<double> cells(16, 0.0);
  for (int round = 0; round < 4; ++round) {
    for (int t = 0; t < 64; ++t) {
      double* cell = &cells[t % cells.size()];
      rt.submit([cell] { *cell += 1; }, {Depend::inout(cell)});
    }
    rt.taskwait();
    EXPECT_EQ(rt.race_detector()->live_shadow_entries(), 0u);
    EXPECT_EQ(rt.race_detector()->live_clock_records(), 0u);
  }
  EXPECT_EQ(rt.race_detector()->flag_total(), 0u);
  EXPECT_EQ(rt.race_detector()->tracked_count(),
            rt.race_detector()->finished_tracked_count());
}

TEST(RaceOnline, MetricsExposeDetectorCounters) {
  Runtime rt(race_config(RaceMode::Sample));
  int x = 0;
  rt.submit([&] { x = 1; }, {Depend::out(&x)});
  rt.submit([&] { (void)x; }, {Depend::in(&x)});
  rt.taskwait();
  const auto snap = rt.metrics().snapshot();
  EXPECT_GE(snap.value("race.tracked_tasks"), 1u);
  EXPECT_GE(snap.value("race.checks"), 1u);
  EXPECT_EQ(snap.value("race.flags"), 0u);
  EXPECT_EQ(snap.value("race.shadow_entries"), 0u);  // drained at barrier
}

// --- sampling miss -> offline escalation ------------------------------------

TEST(RaceOffline, SamplingMissIsCaughtByStrictTraceReplay) {
  // Pick a seed under which neither racing task is sampled, so the online
  // pass provably misses the drop; the exported streams replayed through
  // race_scan (strict: rate 1) must then produce the precise report.
  RaceOptions probe = unit_opts();
  probe.sample_tasks = 1 << 20;
  while (true) {
    RaceDetector det(probe, 1);
    if (!det.would_sample_task(1) && !det.would_sample_task(2)) break;
    ++probe.seed;
  }
  Runtime::Config cfg = race_config(RaceMode::Sample);
  cfg.race.sample_tasks = probe.sample_tasks;
  cfg.race.seed = probe.seed;
  cfg.trace = true;  // sample mode does not force capture; opt in
  cfg.discovery.seed_drop_edge = 1;
  Runtime rt(cfg);
  int x = 0;
  rt.submit([&] { x = 1; }, {Depend::out(&x)}, {.label = "writer"});
  rt.submit([&] { (void)x; }, {Depend::in(&x)}, {.label = "reader"});
  rt.taskwait();
  EXPECT_EQ(rt.race_detector()->flag_total(), 0u);  // the online miss

  Profiler& prof = rt.profiler();
  const RaceScanResult res =
      race_scan(prof.accesses(), prof.edges(), prof.barriers(),
                prof.scope_clears());
  ASSERT_GE(res.flags.size(), 1u) << res.report;
  EXPECT_TRUE(res.any_confirmed());
  EXPECT_EQ(res.flags[0].addr, reinterpret_cast<std::uint64_t>(&x));
  EXPECT_NE(res.report.find("writer"), std::string::npos) << res.report;
  EXPECT_NE(res.report.find("reader"), std::string::npos) << res.report;
}

TEST(RaceOffline, CleanTraceScansClean) {
  Runtime::Config cfg = race_config(RaceMode::Off);
  cfg.trace = true;
  Runtime rt(cfg);
  int x = 0, y = 0;
  rt.submit([&] { x = 1; }, {Depend::out(&x)});
  rt.submit([&] { y = x; }, {Depend::in(&x), Depend::out(&y)});
  rt.taskwait();
  rt.submit([&] { x = y; }, {Depend::in(&y), Depend::out(&x)});
  rt.taskwait();
  Profiler& prof = rt.profiler();
  const RaceScanResult res =
      race_scan(prof.accesses(), prof.edges(), prof.barriers(),
                prof.scope_clears());
  EXPECT_TRUE(res.flags.empty()) << res.report;
  EXPECT_FALSE(res.any_confirmed());
}

TEST(RaceOffline, ClauseExtentsSurviveTheTraceRoundTrip) {
  // The `/hexbytes` suffix is emitted only for sized clauses, so legacy
  // zero-extent traces stay byte-identical and both forms parse back.
  Runtime::Config cfg = race_config(RaceMode::Off);
  cfg.trace = true;
  Runtime rt(cfg);
  alignas(8) char buf[32] = {};
  int x = 0;
  rt.submit([&] { buf[0] = 1; }, {Depend::out(&buf[0], 16)});
  rt.submit([&] { x = 1; }, {Depend::out(&x)});  // zero-extent clause
  rt.taskwait();
  std::ostringstream os;
  Profiler& prof = rt.profiler();
  write_trace_tsv(os, prof.merged_trace(), prof.accesses(), prof.barriers(),
                  prof.scope_clears());
  std::istringstream is(os.str());
  const ParsedTrace parsed = parse_trace_tsv(is);
  ASSERT_EQ(parsed.accesses.size(), 2u);
  EXPECT_EQ(parsed.accesses[0].bytes, 16u);
  EXPECT_EQ(parsed.accesses[1].bytes, 0u);
  EXPECT_EQ(parsed.accesses[0].addr, reinterpret_cast<std::uint64_t>(buf));
}

// --- clause lint: overlapping ranges ----------------------------------------

TEST(RaceLint, OverlappingRangesOnOneTaskAreFlagged) {
  std::vector<AccessRecord> accesses = {
      AccessRecord{1, 0x1000, DependType::Out, 16, "a"},
      AccessRecord{1, 0x1008, DependType::In, 16, "a"},   // overlaps [0x1000,+16)
      AccessRecord{2, 0x2000, DependType::Out, 8, "b"},
      AccessRecord{2, 0x2008, DependType::In, 8, "b"},    // adjacent, disjoint
  };
  const auto findings = lint_clauses(accesses);
  std::size_t overlaps = 0;
  for (const auto& f : findings) {
    if (f.kind != LintKind::OverlappingRange) continue;
    ++overlaps;
    EXPECT_EQ(f.task_id, 1u);
    EXPECT_NE(f.message.find("overlap"), std::string::npos) << f.message;
  }
  EXPECT_EQ(overlaps, 1u);
}

TEST(RaceLint, ZeroExtentClausesNeverTriggerOverlapFindings) {
  std::vector<AccessRecord> accesses = {
      AccessRecord{1, 0x1000, DependType::Out, 0, ""},
      AccessRecord{1, 0x1001, DependType::In, 0, ""},
  };
  for (const auto& f : lint_clauses(accesses)) {
    EXPECT_NE(f.kind, LintKind::OverlappingRange) << f.message;
  }
}

// --- taskbench & multi-tenant cleanliness -----------------------------------

TEST(RaceWorkloads, AllNineTaskbenchPatternsAreRaceCleanUnderStrict) {
  for (const tb::Pattern p : tb::all_patterns()) {
    tb::Config cfg;
    cfg.pattern = p;
    cfg.width = 8;
    cfg.steps = 4;
    cfg.iterations = 1;
    Runtime rt(race_config(RaceMode::Strict, 4));
    const auto res = tb::run_taskbased(rt, cfg, /*persistent=*/false);
    EXPECT_EQ(res.tasks_executed,
              static_cast<std::uint64_t>(cfg.width) * cfg.steps)
        << tb::pattern_name(p);
    EXPECT_EQ(rt.race_detector()->flag_total(), 0u) << tb::pattern_name(p);
    EXPECT_GT(rt.race_detector()->tracked_count(), 0u);
  }
}

TEST(RaceWorkloads, TenantsAreIsolatedOnASharedPool) {
  // A race in one tenant must throw in *that* tenant only; the co-located
  // clean tenant keeps running with zero flags (per-tenant detectors).
  WorkerPool::Config pc;
  pc.num_workers = 2;
  pc.max_tenants = 4;
  WorkerPool pool(pc);

  Runtime::Config ca;
  ca.pool = &pool;
  ca.race.mode = RaceMode::Strict;
  ca.discovery.seed_drop_edge = 1;
  Runtime racy(ca);

  Runtime::Config cb;
  cb.pool = &pool;
  cb.race.mode = RaceMode::Strict;
  Runtime clean(cb);

  int x = 0;
  racy.submit([&] { x = 1; }, {Depend::out(&x)});
  racy.submit([&] { (void)x; }, {Depend::in(&x)});

  int y = 0;
  for (int i = 0; i < 8; ++i) {
    clean.submit([&] { y += 1; }, {Depend::inout(&y)});
  }

  EXPECT_THROW(racy.taskwait(), RaceError);
  EXPECT_NO_THROW(clean.taskwait());
  EXPECT_EQ(y, 8);
  EXPECT_GE(racy.race_detector()->flag_total(), 1u);
  EXPECT_EQ(clean.race_detector()->flag_total(), 0u);
}

}  // namespace
}  // namespace tdg
