// Profiler: the Section 2.3.1 methodology — work/overhead/idle breakdown,
// task traces, Gantt export.
#include <gtest/gtest.h>

#include <chrono>
#include <sstream>

#include "core/tdg.hpp"

namespace {

using tdg::Depend;
using tdg::Runtime;

void busy_wait_us(int us) {
  const auto t0 = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() - t0 <
         std::chrono::microseconds(us)) {
  }
}

TEST(Profiler, WorkTimeAccountedForBusyTasks) {
  Runtime rt({.num_threads = 2});
  constexpr int kTasks = 20;
  constexpr int kUsPerTask = 500;
  for (int i = 0; i < kTasks; ++i) {
    rt.submit([] { busy_wait_us(kUsPerTask); }, {});
  }
  rt.taskwait();
  const auto b = rt.profiler().breakdown();
  const double expected = kTasks * kUsPerTask * 1e-6;
  EXPECT_GE(b.work, 0.9 * expected);
  EXPECT_LT(b.work, 5.0 * expected);  // loose upper bound (1-core machine)
  ASSERT_EQ(b.per_thread.size(), 2u);
}

TEST(Profiler, IdleAccumulatesWhenNoTasksExist) {
  Runtime rt({.num_threads = 2});
  // Sleep (not busy-wait): on a single-core machine the worker must get
  // scheduled to accumulate idle time.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  rt.taskwait();
  const auto b = rt.profiler().breakdown();
  EXPECT_GT(b.idle, 0.0);
  EXPECT_EQ(b.work, 0.0);
}

TEST(Profiler, TraceRecordsCompleteAndConsistent) {
  Runtime rt({.num_threads = 2, .trace = true});
  constexpr int kTasks = 50;
  int chain = 0;
  for (int i = 0; i < kTasks; ++i) {
    rt.submit([] { busy_wait_us(20); }, {Depend::inout(&chain)},
              {.label = "chain"});
  }
  rt.taskwait();
  const auto trace = rt.profiler().merged_trace();
  ASSERT_EQ(trace.size(), static_cast<std::size_t>(kTasks));
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& r = trace[i];
    EXPECT_LE(r.t_create, r.t_end);
    EXPECT_LE(r.t_start, r.t_end);
    EXPECT_LT(r.thread, 2u);
    EXPECT_STREQ(r.label, "chain");
    if (i > 0) {
      EXPECT_GE(r.t_start, trace[i - 1].t_start) << "trace must be sorted";
      // The chain serializes execution: no two bodies overlap.
      EXPECT_GE(r.t_start, trace[i - 1].t_end);
    }
  }
}

TEST(Profiler, TraceDisabledRecordsNothing) {
  Runtime rt({.num_threads = 2, .trace = false});
  for (int i = 0; i < 10; ++i) rt.submit([] {}, {});
  rt.taskwait();
  EXPECT_TRUE(rt.profiler().merged_trace().empty());
}

TEST(Profiler, GanttExportIsParseable) {
  Runtime rt({.num_threads = 2, .trace = true});
  int x = 0;
  rt.submit([] { busy_wait_us(50); }, {Depend::out(&x)}, {.label = "a"});
  rt.submit([] { busy_wait_us(50); }, {Depend::in(&x)}, {.label = "b"});
  rt.taskwait();
  std::ostringstream os;
  rt.profiler().write_gantt(os);
  std::istringstream is(os.str());
  std::string header;
  std::getline(is, header);
  EXPECT_EQ(header, "thread\tstart_s\tend_s\titeration\tlabel");
  int rows = 0;
  std::string line;
  while (std::getline(is, line)) {
    unsigned thread, iteration;
    double start, end;
    char label[32];
    ASSERT_EQ(std::sscanf(line.c_str(), "%u\t%lf\t%lf\t%u\t%31s", &thread,
                          &start, &end, &iteration, label),
              5)
        << "bad gantt row: " << line;
    EXPECT_LE(start, end);
    ++rows;
  }
  EXPECT_EQ(rows, 2);
}

TEST(Profiler, ResetClearsAccumulatorsAndTrace) {
  Runtime rt({.num_threads = 2, .trace = true});
  for (int i = 0; i < 10; ++i) rt.submit([] { busy_wait_us(50); }, {});
  rt.taskwait();
  rt.profiler().reset();
  const auto b = rt.profiler().breakdown();
  EXPECT_EQ(b.work, 0.0);
  EXPECT_TRUE(rt.profiler().merged_trace().empty());
}

TEST(Profiler, BreakdownAveragesMatchTotals) {
  Runtime rt({.num_threads = 4});
  for (int i = 0; i < 40; ++i) rt.submit([] { busy_wait_us(100); }, {});
  rt.taskwait();
  const auto b = rt.profiler().breakdown();
  EXPECT_NEAR(b.avg_work * 4.0, b.work, 1e-9);
  EXPECT_NEAR(b.avg_idle * 4.0, b.idle, 1e-9);
  EXPECT_NEAR(b.avg_overhead * 4.0, b.overhead, 1e-9);
}

TEST(Profiler, DiscoverySpanCoversSubmissionWindow) {
  Runtime rt({.num_threads = 2});
  const double t0 = tdg::now_seconds();
  int x = 0;
  for (int i = 0; i < 100; ++i) {
    rt.submit([] {}, {Depend::inout(&x)});
  }
  rt.taskwait();
  const double span = rt.stats().discovery_seconds();
  const double elapsed = tdg::now_seconds() - t0;
  EXPECT_GT(span, 0.0);
  EXPECT_LE(span, elapsed + 1e-3);
}

}  // namespace
