// ClusterSim: discrete-event execution of SimGraphs — scheduling, the
// discovery/execution overlap, cache & contention model, persistence,
// communication coupling and the Section 4.1 metrics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "sim/graph.hpp"
#include "sim/sim_runtime.hpp"

namespace {

using tdg::sim::ClusterSim;
using tdg::sim::SimConfig;
using tdg::sim::SimDep;
using tdg::sim::SimGraph;
using tdg::sim::SimGraphBuilder;
using tdg::sim::SimPolicy;
using tdg::sim::SimResult;
using tdg::sim::SimTaskAttrs;
using tdg::sim::SimTaskKind;

SimTaskAttrs compute(double secs, std::uint64_t bytes = 0) {
  SimTaskAttrs a;
  a.cpu_seconds = secs;
  a.bytes = bytes;
  return a;
}

SimConfig base_config(int cores) {
  SimConfig cfg;
  cfg.machine.cores = cores;
  return cfg;
}

TEST(SimRuntime, SerialChainMakespanIsSumOfWork) {
  SimGraphBuilder b;
  constexpr int kLen = 100;
  constexpr double kGrain = 100e-6;
  for (int i = 0; i < kLen; ++i) b.task(compute(kGrain), {SimDep::inout(1)});
  SimGraph g = b.take();
  ClusterSim sim(base_config(4));
  sim.set_all_graphs(&g);
  SimResult r = sim.run();
  const double work = kLen * kGrain;
  EXPECT_GE(r.makespan, work);
  EXPECT_LT(r.makespan, work * 1.2);  // overheads are small vs 100us grains
  EXPECT_NEAR(r.ranks[0].work, work, work * 0.01);
  EXPECT_EQ(r.ranks[0].tasks_executed, static_cast<std::uint64_t>(kLen));
  EXPECT_EQ(r.ranks[0].edges_created, static_cast<std::uint64_t>(kLen - 1));
}

TEST(SimRuntime, IndependentTasksScaleWithCores) {
  constexpr int kTasks = 400;
  constexpr double kGrain = 200e-6;
  auto build = [] {
    SimGraphBuilder b;
    for (int i = 0; i < kTasks; ++i) b.task(compute(kGrain), {});
    return b.take();
  };
  SimGraph g = build();
  double t1 = 0, t8 = 0;
  {
    ClusterSim sim(base_config(1));
    sim.set_all_graphs(&g);
    t1 = sim.run().makespan;
  }
  {
    ClusterSim sim(base_config(8));
    sim.set_all_graphs(&g);
    t8 = sim.run().makespan;
  }
  const double speedup = t1 / t8;
  EXPECT_GT(speedup, 5.0) << "t1=" << t1 << " t8=" << t8;
  EXPECT_LE(speedup, 8.1);
}

TEST(SimRuntime, DiscoveryBoundExecutionTracksDiscoveryTime) {
  // Tiny task grains: the single producer cannot feed the cores, so the
  // makespan approaches the discovery time (Fig. 1's right-hand regime).
  SimConfig cfg = base_config(16);
  cfg.discovery.per_task = 5e-6;
  constexpr int kTasks = 2000;
  SimGraphBuilder b;
  for (int i = 0; i < kTasks; ++i) b.task(compute(1e-6), {});
  SimGraph g = b.take();
  ClusterSim sim(cfg);
  sim.set_all_graphs(&g);
  SimResult r = sim.run();
  const double disc = r.ranks[0].discovery_seconds;
  EXPECT_GT(disc, kTasks * 5e-6 * 0.99);
  EXPECT_GE(r.makespan, disc * 0.95);
  EXPECT_LT(r.makespan, disc * 1.2);
  // Most core time is idleness: cores starve behind the producer.
  EXPECT_GT(r.ranks[0].idle, r.ranks[0].work);
}

TEST(SimRuntime, EdgesPrunedWhenExecutionOutrunsDiscovery) {
  // Slow discovery + instant execution: predecessors are consumed before
  // successors are discovered, so edges are pruned (Section 2.3.3).
  SimConfig cfg = base_config(4);
  cfg.discovery.per_task = 10e-6;
  SimGraphBuilder b;
  constexpr int kLen = 50;
  for (int i = 0; i < kLen; ++i) b.task(compute(0.1e-6), {SimDep::inout(1)});
  SimGraph g = b.take();
  ClusterSim sim(cfg);
  sim.set_all_graphs(&g);
  SimResult r = sim.run();
  EXPECT_EQ(r.ranks[0].edges_created + r.ranks[0].edges_pruned,
            static_cast<std::uint64_t>(kLen - 1));
  EXPECT_GT(r.ranks[0].edges_pruned, static_cast<std::uint64_t>(kLen / 2));
}

TEST(SimRuntime, PersistentReplayShrinksDiscovery) {
  constexpr int kTasks = 500;
  constexpr int kIters = 8;
  SimGraphBuilder b;
  for (int i = 0; i < kTasks; ++i) {
    b.task(compute(5e-6), {SimDep::inout(static_cast<std::uint64_t>(i % 16) + 1)});
  }
  SimGraph g = b.take();
  SimConfig cfg = base_config(4);
  cfg.persistent = true;
  cfg.iterations = kIters;
  ClusterSim sim(cfg);
  sim.set_all_graphs(&g);
  SimResult r = sim.run();
  const auto& per_iter = r.ranks[0].discovery_per_iteration;
  ASSERT_EQ(per_iter.size(), static_cast<std::size_t>(kIters));
  // First iteration builds the graph; replays are ~10x cheaper (Table 2:
  // "the first iteration is about 10 times more costly than the others").
  for (std::size_t i = 1; i < per_iter.size(); ++i) {
    EXPECT_LT(per_iter[i], per_iter[0] / 5.0) << "iteration " << i;
  }
  EXPECT_EQ(r.ranks[0].tasks_executed,
            static_cast<std::uint64_t>(kTasks) * kIters);
  // Persistent iteration 0 records every edge and prunes none.
  EXPECT_EQ(r.ranks[0].edges_pruned, 0u);
}

TEST(SimRuntime, PersistentBarrierKeepsIterationsOrdered) {
  // A two-task pipeline with 1 core; with the implicit barrier, iteration
  // n+1's first task cannot start before iteration n's last.
  SimGraphBuilder b;
  b.task(compute(10e-6), {SimDep::out(1)});
  b.task(compute(10e-6), {SimDep::in(1)});
  SimGraph g = b.take();
  SimConfig cfg = base_config(2);
  cfg.persistent = true;
  cfg.iterations = 4;
  cfg.trace = true;
  ClusterSim sim(cfg);
  sim.set_all_graphs(&g);
  SimResult r = sim.run();
  ASSERT_EQ(r.ranks[0].trace.size(), 8u);
  // Group records by iteration; max end of iter i <= min start of iter i+1.
  double max_end[4] = {0, 0, 0, 0};
  double min_start[4] = {1e30, 1e30, 1e30, 1e30};
  for (const auto& rec : r.ranks[0].trace) {
    max_end[rec.iteration] = std::max(max_end[rec.iteration], rec.end);
    min_start[rec.iteration] = std::min(min_start[rec.iteration], rec.start);
  }
  for (int i = 0; i + 1 < 4; ++i) {
    EXPECT_LE(max_end[i], min_start[i + 1] + 1e-12) << "iteration " << i;
  }
}

TEST(SimRuntime, DepthFirstBeatsBreadthFirstOnProducerConsumerPairs) {
  // N producer->consumer pairs, each touching 512 KiB. Depth-first LIFO
  // runs each consumer right after its producer (L2-warm); breadth-first
  // FIFO runs all producers first, evicting everything (Fig. 2 (d-f)).
  constexpr int kPairs = 128;
  constexpr std::uint64_t kBytes = 512 * 1024;
  auto build = [] {
    SimGraphBuilder b;
    for (int i = 0; i < kPairs; ++i) {
      const auto addr = static_cast<std::uint64_t>(i) + 1;
      b.task(compute(1e-6, kBytes), {SimDep::out(addr)});
      b.task(compute(1e-6, kBytes), {SimDep::in(addr)});
    }
    return b.take();
  };
  SimGraph g = build();
  auto run_policy = [&](SimPolicy p) {
    SimConfig cfg = base_config(1);
    cfg.policy = p;
    // Discover everything before executing (pure scheduling comparison).
    cfg.discovery.per_task = 0;
    cfg.discovery.per_edge = 0;
    cfg.discovery.per_dep = 0;
    cfg.throttle.max_ready = static_cast<std::size_t>(-1);
    ClusterSim sim(cfg);
    sim.set_all_graphs(&g);
    return sim.run();
  };
  SimResult lifo = run_policy(SimPolicy::DepthFirstLifo);
  SimResult fifo = run_policy(SimPolicy::BreadthFirstFifo);
  EXPECT_LT(lifo.ranks[0].work, 0.8 * fifo.ranks[0].work)
      << "depth-first must benefit from cache reuse";
  EXPECT_LT(lifo.ranks[0].cache.l3_misses, fifo.ranks[0].cache.l3_misses);
}

TEST(SimRuntime, DramContentionInflatesWorkWithMoreCores) {
  // Independent DRAM-heavy tasks: per-task work inflates when many cores
  // hammer memory together (Fig. 2 (d) "work time inflation").
  constexpr int kTasks = 256;
  constexpr std::uint64_t kBytes = 4 * 1024 * 1024;
  SimGraphBuilder b;
  for (int i = 0; i < kTasks; ++i) b.task(compute(1e-6, kBytes), {});
  SimGraph g = b.take();
  auto work_with_cores = [&](int cores) {
    ClusterSim sim(base_config(cores));
    sim.set_all_graphs(&g);
    return sim.run().ranks[0].work;
  };
  const double w1 = work_with_cores(1);
  const double w16 = work_with_cores(16);
  EXPECT_GT(w16, 1.3 * w1);
}

TEST(SimRuntime, ThrottleForcesProducerToHelp) {
  SimConfig cfg = base_config(2);
  cfg.throttle.max_total = 4;
  constexpr int kTasks = 200;
  SimGraphBuilder b;
  for (int i = 0; i < kTasks; ++i) b.task(compute(2e-6), {});
  SimGraph g = b.take();
  ClusterSim sim(cfg);
  sim.set_all_graphs(&g);
  SimResult r = sim.run();
  EXPECT_EQ(r.ranks[0].tasks_executed, static_cast<std::uint64_t>(kTasks));
}

TEST(SimRuntime, ConcurrencyNeverExceedsCoreCount) {
  // Regression: a completing core must not be handed a second task by
  // dispatch_idle while its finish handler picks its own successor.
  constexpr int kCores = 8;
  SimGraphBuilder b;
  for (int i = 0; i < 2000; ++i) {
    b.task(compute(5e-6, 1000),
           {SimDep::inout(static_cast<std::uint64_t>(i % 3) + 1),
            SimDep::in(static_cast<std::uint64_t>(i % 7) + 10)});
  }
  for (int i = 0; i < 500; ++i) b.task(compute(2e-6), {});
  SimGraph g = b.take();
  SimConfig cfg = base_config(kCores);
  cfg.discovery = tdg::sim::DiscoveryCosts{0, 0, 0, 0, 0};
  cfg.trace = true;
  ClusterSim sim(cfg);
  sim.set_all_graphs(&g);
  SimResult r = sim.run();
  std::vector<std::pair<double, int>> evs;
  for (const auto& rec : r.ranks[0].trace) {
    evs.emplace_back(rec.start, 1);
    evs.emplace_back(rec.end, -1);
  }
  std::sort(evs.begin(), evs.end());
  int cur = 0, mx = 0;
  for (const auto& [t, d] : evs) {
    cur += d;
    mx = std::max(mx, cur);
  }
  EXPECT_LE(mx, kCores);
}

TEST(SimRuntime, DeterministicReplay) {
  SimGraphBuilder b;
  for (int i = 0; i < 300; ++i) {
    b.task(compute(3e-6, 10000),
           {SimDep::inout(static_cast<std::uint64_t>(i % 7) + 1)});
  }
  SimGraph g = b.take();
  auto once = [&] {
    ClusterSim sim(base_config(6));
    sim.set_all_graphs(&g);
    return sim.run();
  };
  SimResult a = once();
  SimResult bres = once();
  EXPECT_EQ(a.makespan, bres.makespan);
  EXPECT_EQ(a.ranks[0].work, bres.ranks[0].work);
  EXPECT_EQ(a.ranks[0].cache.l3_misses, bres.ranks[0].cache.l3_misses);
}

// --- communications ---------------------------------------------------------

SimGraph exchange_graph(int peer, std::uint64_t msg_bytes, double work_grain,
                        int work_tasks) {
  SimGraphBuilder b;
  // pack -> send, recv -> unpack, plus independent work for overlap.
  SimTaskAttrs pack = compute(2e-6, 0);
  pack.label = "pack";
  b.task(pack, {SimDep::out(100)});
  SimTaskAttrs send;
  send.kind = SimTaskKind::Send;
  send.peer = peer;
  send.tag = 0;
  send.msg_bytes = msg_bytes;
  send.cpu_seconds = 0.5e-6;
  b.task(send, {SimDep::in(100)});
  SimTaskAttrs recv;
  recv.kind = SimTaskKind::Recv;
  recv.peer = peer;
  recv.tag = 0;
  recv.msg_bytes = msg_bytes;
  recv.cpu_seconds = 0.5e-6;
  b.task(recv, {SimDep::out(200)});
  SimTaskAttrs unpack = compute(2e-6, 0);
  unpack.label = "unpack";
  b.task(unpack, {SimDep::in(200)});
  for (int i = 0; i < work_tasks; ++i) b.task(compute(work_grain), {});
  return b.take();
}

TEST(SimRuntime, TwoRankExchangeCompletes) {
  SimGraph g0 = exchange_graph(1, 256, 20e-6, 50);
  SimGraph g1 = exchange_graph(0, 256, 20e-6, 50);
  SimConfig cfg = base_config(4);
  cfg.nranks = 2;
  ClusterSim sim(cfg);
  sim.set_graph(0, &g0);
  sim.set_graph(1, &g1);
  SimResult r = sim.run();
  ASSERT_EQ(r.ranks.size(), 2u);
  for (const auto& rr : r.ranks) {
    EXPECT_EQ(rr.tasks_executed, 54u);
    EXPECT_EQ(rr.comm.requests, 1u);  // the send is tracked
    EXPECT_GE(rr.comm.total_comm_seconds, 0.0);
  }
}

TEST(SimRuntime, RendezvousSendSpansLongerThanEager) {
  auto comm_seconds = [](std::uint64_t bytes) {
    SimGraph g0 = exchange_graph(1, bytes, 20e-6, 20);
    SimGraph g1 = exchange_graph(0, bytes, 20e-6, 20);
    SimConfig cfg = base_config(2);
    cfg.nranks = 2;
    ClusterSim sim(cfg);
    sim.set_graph(0, &g0);
    sim.set_graph(1, &g1);
    SimResult r = sim.run();
    return r.ranks[0].comm.p2p_seconds;
  };
  const double eager = comm_seconds(256);            // below threshold
  const double rendezvous = comm_seconds(1 << 20);   // 1 MiB
  EXPECT_LT(eager, 1e-6);  // eager send completes at post time
  EXPECT_GT(rendezvous, 50e-6);
}

TEST(SimRuntime, AllreduceWaitsForSlowestRank) {
  // Rank 1 computes longer before contributing; rank 0's collective span
  // must cover that imbalance.
  auto graph_with_precompute = [](double pre) {
    SimGraphBuilder b;
    b.task(compute(pre), {SimDep::out(1)});
    SimTaskAttrs ar;
    ar.kind = SimTaskKind::Allreduce;
    ar.msg_bytes = 8;
    ar.cpu_seconds = 0.5e-6;
    b.task(ar, {SimDep::in(1)});
    return b.take();
  };
  SimGraph fast = graph_with_precompute(5e-6);
  SimGraph slow = graph_with_precompute(500e-6);
  SimConfig cfg = base_config(2);
  cfg.nranks = 2;
  ClusterSim sim(cfg);
  sim.set_graph(0, &fast);
  sim.set_graph(1, &slow);
  SimResult r = sim.run();
  EXPECT_GT(r.ranks[0].comm.collective_seconds, 400e-6);
  EXPECT_LT(r.ranks[1].comm.collective_seconds,
            r.ranks[0].comm.collective_seconds);
}

TEST(SimRuntime, OverlapRatioBoundedAndPositiveWithIndependentWork) {
  SimGraph g0 = exchange_graph(1, 1 << 20, 50e-6, 100);
  SimGraph g1 = exchange_graph(0, 1 << 20, 50e-6, 100);
  SimConfig cfg = base_config(4);
  cfg.nranks = 2;
  ClusterSim sim(cfg);
  sim.set_graph(0, &g0);
  sim.set_graph(1, &g1);
  SimResult r = sim.run();
  for (const auto& rr : r.ranks) {
    const double ratio = rr.comm.overlap_ratio(4);
    EXPECT_GE(ratio, 0.0);
    EXPECT_LE(ratio, 1.0 + 1e-9);
    EXPECT_GT(rr.comm.overlapped_work, 0.0)
        << "independent tasks should overlap the rendezvous transfer";
  }
}

TEST(SimRuntime, RepresentativeModeModelsVirtualPeers) {
  SimGraph g = exchange_graph(1, 1 << 16, 20e-6, 30);
  SimConfig cfg = base_config(4);
  cfg.nranks = 1024;  // virtual peers
  cfg.representative = true;
  ClusterSim sim(cfg);
  sim.set_graph(0, &g);
  SimResult r = sim.run();
  ASSERT_EQ(r.ranks.size(), 1u);
  EXPECT_EQ(r.ranks[0].tasks_executed, 34u);
  EXPECT_GT(r.ranks[0].comm.p2p_seconds, 0.0);
}

TEST(SimRuntime, RepresentativeAllreduceScalesWithLogP) {
  auto collective_span = [](int nranks) {
    SimGraphBuilder b;
    SimTaskAttrs ar;
    ar.kind = SimTaskKind::Allreduce;
    ar.msg_bytes = 8;
    b.task(ar, {});
    SimGraph g = b.take();
    SimConfig cfg;
    cfg.machine.cores = 2;
    cfg.nranks = nranks;
    cfg.representative = true;
    ClusterSim sim(cfg);
    sim.set_graph(0, &g);
    return sim.run().ranks[0].comm.collective_seconds;
  };
  const double p8 = collective_span(8);
  const double p4096 = collective_span(4096);
  EXPECT_GT(p4096, p8);
}

}  // namespace
