// Tiled Cholesky: kernel correctness, reconstruction, task-graph
// equivalence with the serial reference, persistence across repeated
// factorizations, and the Section 4.4 graph properties.
#include <gtest/gtest.h>

#include "apps/cholesky/cholesky.hpp"
#include "core/tdg.hpp"

namespace {

using tdg::Runtime;
using tdg::apps::cholesky::Config;
using tdg::apps::cholesky::kernel_count;
using tdg::apps::cholesky::TiledMatrix;

TEST(Cholesky, ReferenceFactorizationReconstructs) {
  TiledMatrix a(4, 8), ref(4, 8);
  a.fill_spd();
  ref.fill_spd();
  run_reference(a);
  EXPECT_LT(a.reconstruction_error(ref), 1e-9 * a.n());
}

TEST(Cholesky, SingleTileEqualsDensePotrf) {
  TiledMatrix a(1, 32), ref(1, 32);
  a.fill_spd();
  ref.fill_spd();
  run_reference(a);
  EXPECT_LT(a.reconstruction_error(ref), 1e-9 * a.n());
}

struct CholParams {
  int nt;
  int b;
  unsigned threads;
  bool persistent;
  int iterations;
};

class CholeskyTask : public ::testing::TestWithParam<CholParams> {};

TEST_P(CholeskyTask, MatchesReferenceBitwise) {
  const auto p = GetParam();
  Config cfg;
  cfg.nt = p.nt;
  cfg.b = p.b;
  cfg.iterations = p.iterations;

  TiledMatrix ref(p.nt, p.b);
  ref.fill_spd();
  run_reference(ref);

  Runtime rt({.num_threads = p.threads});
  TiledMatrix a(p.nt, p.b);
  a.fill_spd();
  run_taskbased(rt, a, cfg, p.persistent);

  // Tile updates are ordered identically by the dependences, so every
  // entry matches the serial result exactly (even after re-filled
  // iterations, which recompute the same factorization).
  for (int i = 0; i < p.nt; ++i) {
    for (int j = 0; j < p.nt; ++j) {
      const auto& ta = a.tile(i, j);
      const auto& tr = ref.tile(i, j);
      for (std::size_t u = 0; u < ta.size(); ++u) {
        ASSERT_EQ(ta[u], tr[u]) << "tile(" << i << "," << j << ")[" << u
                                << "]";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Variants, CholeskyTask,
    ::testing::Values(CholParams{1, 16, 2, false, 1},
                      CholParams{2, 8, 2, false, 1},
                      CholParams{4, 8, 4, false, 1},
                      CholParams{6, 4, 4, false, 1},
                      CholParams{4, 8, 4, false, 3},
                      CholParams{4, 8, 4, true, 3},
                      CholParams{6, 4, 1, true, 4}));

TEST(Cholesky, TaskCountMatchesFormula) {
  Config cfg;
  cfg.nt = 5;
  cfg.b = 4;
  cfg.iterations = 1;
  Runtime rt({.num_threads = 1});
  TiledMatrix a(cfg.nt, cfg.b);
  a.fill_spd();
  run_taskbased(rt, a, cfg, false);
  EXPECT_EQ(rt.stats().tasks_created, kernel_count(cfg.nt));
}

TEST(Cholesky, EdgeOptimizationsDoNotChangeDenseGraph) {
  // Section 4.4: optimizations (a)(b)(c) have no effect on the dense
  // dependency scheme — same edge counts with or without them.
  auto edges = [](bool dedup, bool redirect) {
    Runtime::Config rc;
    rc.num_threads = 1;
    rc.discovery.dedup_edges = dedup;
    rc.discovery.inoutset_redirect = redirect;
    Runtime rt(rc);
    Config cfg;
    cfg.nt = 6;
    cfg.b = 4;
    TiledMatrix a(cfg.nt, cfg.b);
    a.fill_spd();
    run_taskbased(rt, a, cfg, false);
    return rt.stats().discovery.edges_created +
           rt.stats().discovery.edges_pruned;
  };
  const auto base = edges(true, true);
  EXPECT_EQ(edges(false, true), base);
  EXPECT_EQ(edges(true, false), base);
  EXPECT_EQ(edges(false, false), base);
}

TEST(Cholesky, PersistentReplayCreatesTasksOnce) {
  Config cfg;
  cfg.nt = 4;
  cfg.b = 8;
  cfg.iterations = 5;
  Runtime rt({.num_threads = 2});
  TiledMatrix a(cfg.nt, cfg.b);
  a.fill_spd();
  run_taskbased(rt, a, cfg, true);
  const auto s = rt.stats();
  const std::uint64_t per_iter =
      kernel_count(cfg.nt) +
      static_cast<std::uint64_t>(cfg.nt) * cfg.nt;  // + init tasks
  EXPECT_EQ(s.tasks_created, per_iter);
  EXPECT_EQ(s.tasks_executed,
            per_iter * static_cast<std::uint64_t>(cfg.iterations));
}

TEST(Cholesky, NotPositiveDefiniteAborts) {
  std::vector<double> t(4, 0.0);  // 2x2 zero tile
  EXPECT_DEATH(tdg::apps::cholesky::kernels::potrf(t, 2),
               "positive definite");
}

}  // namespace
