// SimGraphBuilder: dependency semantics on abstract addresses, and parity
// with the real runtime's DependencyMap on randomized clause sequences.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/tdg.hpp"
#include "sim/graph.hpp"

namespace {

using tdg::Depend;
using tdg::DependType;
using tdg::Runtime;
using tdg::sim::SimDep;
using tdg::sim::SimGraph;
using tdg::sim::SimGraphBuilder;
using tdg::sim::SimTaskAttrs;
using tdg::sim::SimTaskKind;

TEST(SimGraph, ChainHasLinearEdges) {
  SimGraphBuilder b;
  for (int i = 0; i < 10; ++i) {
    b.task(SimTaskAttrs{}, {SimDep::inout(1)});
  }
  SimGraph g = b.take();
  EXPECT_EQ(g.tasks.size(), 10u);
  EXPECT_EQ(g.structural_edges(), 9u);
  for (std::uint32_t i = 1; i < 10; ++i) {
    ASSERT_EQ(g.tasks[i].preds.size(), 1u);
    EXPECT_EQ(g.tasks[i].preds[0], i - 1);
  }
}

TEST(SimGraph, SuccessorsInvertPreds) {
  SimGraphBuilder b;
  b.task(SimTaskAttrs{}, {SimDep::out(1)});
  b.task(SimTaskAttrs{}, {SimDep::in(1)});
  b.task(SimTaskAttrs{}, {SimDep::in(1)});
  SimGraph g = b.take();
  const auto succ = g.successors();
  ASSERT_EQ(succ.size(), 3u);
  EXPECT_EQ(succ[0], (std::vector<std::uint32_t>{1, 2}));
  EXPECT_TRUE(succ[1].empty());
  EXPECT_TRUE(succ[2].empty());
}

TEST(SimGraph, DedupSkipsRepeatedPairs) {
  SimGraphBuilder with({.dedup_edges = true});
  with.task(SimTaskAttrs{}, {SimDep::out(1), SimDep::out(2)});
  with.task(SimTaskAttrs{}, {SimDep::in(1), SimDep::in(2)});
  SimGraph g1 = with.take();
  EXPECT_EQ(g1.structural_edges(), 1u);
  EXPECT_EQ(g1.duplicate_edges_skipped, 1u);

  SimGraphBuilder without({.dedup_edges = false});
  without.task(SimTaskAttrs{}, {SimDep::out(1), SimDep::out(2)});
  without.task(SimTaskAttrs{}, {SimDep::in(1), SimDep::in(2)});
  SimGraph g2 = without.take();
  EXPECT_EQ(g2.structural_edges(), 2u);
}

TEST(SimGraph, InOutSetRedirectReducesEdges) {
  constexpr int kM = 8, kN = 8;
  for (bool redirect : {true, false}) {
    SimGraphBuilder b({.dedup_edges = true, .inoutset_redirect = redirect});
    for (int i = 0; i < kM; ++i) b.task(SimTaskAttrs{}, {SimDep::inoutset(7)});
    for (int j = 0; j < kN; ++j) b.task(SimTaskAttrs{}, {SimDep::in(7)});
    SimGraph g = b.take();
    if (redirect) {
      EXPECT_EQ(g.structural_edges(), static_cast<std::uint64_t>(kM + kN));
      EXPECT_EQ(g.redirect_nodes, 1u);
      EXPECT_EQ(g.tasks.size(), static_cast<std::size_t>(kM + kN + 1));
      // The redirect node's kind must be marked for the simulator.
      bool found = false;
      for (const auto& t : g.tasks) {
        found |= t.attrs.kind == SimTaskKind::Redirect;
      }
      EXPECT_TRUE(found);
    } else {
      EXPECT_EQ(g.structural_edges(),
                static_cast<std::uint64_t>(kM) * kN);
      EXPECT_EQ(g.redirect_nodes, 0u);
    }
  }
}

TEST(SimGraph, ClearScopeSeparatesPhases) {
  SimGraphBuilder b;
  b.task(SimTaskAttrs{}, {SimDep::out(1)});
  b.clear_scope();
  b.task(SimTaskAttrs{}, {SimDep::in(1)});
  SimGraph g = b.take();
  EXPECT_EQ(g.structural_edges(), 0u);
}

// ---------------------------------------------------------------------------
// Parity with the real runtime: identical clause sequences must produce
// identical edge/duplicate/redirect counts. This is the guarantee that the
// simulator studies the *same* TDGs as the real runtime.
// ---------------------------------------------------------------------------

struct ParityParams {
  bool dedup;
  bool redirect;
  std::uint64_t seed;
};

class GraphParity : public ::testing::TestWithParam<ParityParams> {};

TEST_P(GraphParity, RandomClauseSequencesMatchRuntimeCounts) {
  const auto p = GetParam();
  constexpr int kTasks = 400;
  constexpr int kAddrs = 12;

  std::uint64_t s = p.seed;
  auto rnd = [&s](int mod) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<int>((s >> 33) % static_cast<std::uint64_t>(mod));
  };

  // Pre-generate the clause sequence so both consumers see the same one.
  struct Clause {
    std::vector<std::pair<int, DependType>> items;
  };
  std::vector<Clause> clauses(kTasks);
  for (auto& c : clauses) {
    const int nitems = 1 + rnd(3);
    for (int i = 0; i < nitems; ++i) {
      const DependType types[] = {DependType::In, DependType::Out,
                                  DependType::InOut, DependType::InOutSet};
      c.items.emplace_back(rnd(kAddrs), types[rnd(4)]);
    }
  }

  // Simulator-side.
  SimGraphBuilder builder(
      {.dedup_edges = p.dedup, .inoutset_redirect = p.redirect});
  for (const auto& c : clauses) {
    std::vector<SimDep> deps;
    for (auto [addr, type] : c.items) {
      deps.push_back(SimDep{static_cast<std::uint64_t>(addr + 1), type});
    }
    builder.task(SimTaskAttrs{}, std::span<const SimDep>(deps));
  }
  SimGraph g = builder.take();

  // Runtime-side: single-threaded, no taskwait during submission, so no
  // task executes and no edge is pruned.
  Runtime::Config cfg;
  cfg.num_threads = 1;
  cfg.discovery.dedup_edges = p.dedup;
  cfg.discovery.inoutset_redirect = p.redirect;
  Runtime rt(cfg);
  static double addr_pool[kAddrs];
  for (const auto& c : clauses) {
    std::vector<Depend> deps;
    for (auto [addr, type] : c.items) {
      deps.push_back(Depend{&addr_pool[addr], type});
    }
    rt.submit([] {}, std::span<const Depend>(deps));
  }
  const auto st = rt.stats();
  EXPECT_EQ(st.discovery.edges_pruned, 0u) << "test precondition violated";
  EXPECT_EQ(g.structural_edges(), st.discovery.edges_created);
  EXPECT_EQ(g.duplicate_edges_skipped, st.discovery.edges_duplicate);
  EXPECT_EQ(g.redirect_nodes, st.discovery.redirect_nodes);
  EXPECT_EQ(g.tasks.size(),
            static_cast<std::size_t>(st.tasks_created + st.internal_nodes));
  rt.taskwait();
}

INSTANTIATE_TEST_SUITE_P(
    OptionsAndSeeds, GraphParity,
    ::testing::Values(ParityParams{true, true, 1},
                      ParityParams{true, false, 2},
                      ParityParams{false, true, 3},
                      ParityParams{false, false, 4},
                      ParityParams{true, true, 99},
                      ParityParams{false, false, 99}));

}  // namespace
