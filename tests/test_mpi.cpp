// The in-process MPI substrate: point-to-point matching (eager and
// rendezvous), collectives, ordering and counters.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mpi/mpi.hpp"

namespace {

using tdg::mpi::Comm;
using tdg::mpi::Op;
using tdg::mpi::Request;
using tdg::mpi::Universe;

TEST(Mpi, EagerPingPong) {
  Universe::run(2, [](Comm& comm) {
    double payload = 42.0;
    if (comm.rank() == 0) {
      comm.send(&payload, sizeof payload, 1, 7);
      double back = 0;
      comm.recv(&back, sizeof back, 1, 8);
      EXPECT_EQ(back, 43.0);
    } else {
      double got = 0;
      comm.recv(&got, sizeof got, 0, 7);
      EXPECT_EQ(got, 42.0);
      got += 1.0;
      comm.send(&got, sizeof got, 0, 8);
    }
  });
}

TEST(Mpi, RendezvousTransfersLargeBuffer) {
  Universe::Options opts;
  opts.eager_threshold = 64;  // force rendezvous for this payload
  Universe::run(2, [](Comm& comm) {
    std::vector<double> buf(1024);
    if (comm.rank() == 0) {
      std::iota(buf.begin(), buf.end(), 0.0);
      Request r = comm.isend(buf.data(), buf.size() * sizeof(double), 1, 0);
      comm.wait(r);
      EXPECT_EQ(comm.stats().rendezvous_sends, 1u);
      EXPECT_EQ(comm.stats().eager_sends, 0u);
    } else {
      std::vector<double> got(1024, -1.0);
      comm.recv(got.data(), got.size() * sizeof(double), 0, 0);
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i], static_cast<double>(i));
      }
    }
  }, opts);
}

TEST(Mpi, RendezvousSendIncompleteUntilMatched) {
  Universe::Options opts;
  opts.eager_threshold = 0;
  Universe::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      double x = 3.14;
      Request r = comm.isend(&x, sizeof x, 1, 0);
      // No receive posted yet: a rendezvous send must not complete.
      EXPECT_FALSE(Comm::test(r));
      comm.barrier();  // rank 1 posts its receive after this barrier
      comm.wait(r);
      EXPECT_TRUE(Comm::test(r));
    } else {
      comm.barrier();
      double y = 0;
      comm.recv(&y, sizeof y, 0, 0);
      EXPECT_EQ(y, 3.14);
    }
  }, opts);
}

TEST(Mpi, PostedReceiveMatchedDirectly) {
  Universe::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      double y = 0;
      Request r = comm.irecv(&y, sizeof y, 1, 5);
      comm.barrier();
      comm.wait(r);
      EXPECT_EQ(y, 2.71);
    } else {
      comm.barrier();  // ensure the receive is posted first
      double x = 2.71;
      comm.send(&x, sizeof x, 0, 5);
    }
  });
}

TEST(Mpi, MessagesDoNotOvertakeWithinTag) {
  Universe::run(2, [](Comm& comm) {
    constexpr int kMsgs = 64;
    if (comm.rank() == 0) {
      for (int i = 0; i < kMsgs; ++i) {
        comm.send(&i, sizeof i, 1, 3);
      }
    } else {
      for (int i = 0; i < kMsgs; ++i) {
        int got = -1;
        comm.recv(&got, sizeof got, 0, 3);
        ASSERT_EQ(got, i) << "messages overtook each other";
      }
    }
  });
}

TEST(Mpi, TagsSelectMessages) {
  Universe::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      int a = 1, b = 2;
      comm.send(&a, sizeof a, 1, 10);
      comm.send(&b, sizeof b, 1, 20);
    } else {
      int hi = 0, lo = 0;
      // Receive in reverse tag order: matching must be by tag, not FIFO.
      comm.recv(&hi, sizeof hi, 0, 20);
      comm.recv(&lo, sizeof lo, 0, 10);
      EXPECT_EQ(hi, 2);
      EXPECT_EQ(lo, 1);
    }
  });
}

class MpiAllreduce : public ::testing::TestWithParam<int> {};

TEST_P(MpiAllreduce, SumMinMaxAcrossRanks) {
  const int nranks = GetParam();
  Universe::run(nranks, [nranks](Comm& comm) {
    const double mine = static_cast<double>(comm.rank() + 1);
    double sum = 0, mn = 0, mx = 0;
    comm.allreduce(&mine, &sum, 1, Op::Sum);
    comm.allreduce(&mine, &mn, 1, Op::Min);
    comm.allreduce(&mine, &mx, 1, Op::Max);
    EXPECT_EQ(sum, nranks * (nranks + 1) / 2.0);
    EXPECT_EQ(mn, 1.0);
    EXPECT_EQ(mx, static_cast<double>(nranks));
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, MpiAllreduce,
                         ::testing::Values(1, 2, 3, 8, 16));

TEST(Mpi, VectorAllreduce) {
  Universe::run(4, [](Comm& comm) {
    std::vector<double> mine(32), out(32);
    for (std::size_t i = 0; i < mine.size(); ++i) {
      mine[i] = static_cast<double>(comm.rank()) * 100 + static_cast<double>(i);
    }
    comm.allreduce(mine.data(), out.data(), mine.size(), Op::Max);
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i], 300.0 + static_cast<double>(i));
    }
  });
}

TEST(Mpi, SequentialCollectivesMatchBySequence) {
  Universe::run(3, [](Comm& comm) {
    for (int round = 0; round < 50; ++round) {
      double mine = static_cast<double>(round * comm.size() + comm.rank());
      double mx = 0;
      comm.allreduce(&mine, &mx, 1, Op::Max);
      ASSERT_EQ(mx, static_cast<double>(round * comm.size() + comm.size() - 1))
          << "round " << round;
    }
  });
}

TEST(Mpi, NonblockingAllreduceOverlapsWork) {
  Universe::run(2, [](Comm& comm) {
    double mine = static_cast<double>(comm.rank());
    double out = -1;
    Request r = comm.iallreduce(&mine, &out, 1, Op::Sum);
    // Do unrelated work before waiting; result must still be correct.
    volatile double sink = 0;
    for (int i = 0; i < 10000; ++i) sink = sink + 1;
    comm.wait(r);
    EXPECT_EQ(out, 1.0);
  });
}

TEST(Mpi, RingExchangeStress) {
  constexpr int kRanks = 8;
  constexpr int kIters = 100;
  Universe::run(kRanks, [](Comm& comm) {
    const int right = (comm.rank() + 1) % comm.size();
    const int left = (comm.rank() + comm.size() - 1) % comm.size();
    long token = comm.rank();
    for (int it = 0; it < kIters; ++it) {
      long incoming = -1;
      Request rr = comm.irecv(&incoming, sizeof incoming, left, it);
      Request sr = comm.isend(&token, sizeof token, right, it);
      comm.wait(rr);
      comm.wait(sr);
      token = incoming + 1;
    }
    // After kIters hops, the token started at (rank - kIters) mod size and
    // was incremented once per hop.
    const long origin = ((comm.rank() - kIters) % comm.size() +
                         comm.size()) % comm.size();
    EXPECT_EQ(token, origin + kIters);
  });
}

TEST(Mpi, StatsCountTraffic) {
  Universe::Options opts;
  opts.eager_threshold = 16;
  Universe::run(2, [](Comm& comm) {
    std::vector<std::byte> small(8), big(64);
    if (comm.rank() == 0) {
      comm.barrier();
      comm.send(small.data(), small.size(), 1, 1);
      comm.send(big.data(), big.size(), 1, 2);
      EXPECT_EQ(comm.stats().sends, 2u);
      EXPECT_EQ(comm.stats().bytes_sent, 72u);
      EXPECT_EQ(comm.stats().allreduces, 1u);
    } else {
      comm.barrier();
      comm.recv(small.data(), small.size(), 0, 1);
      comm.recv(big.data(), big.size(), 0, 2);
      EXPECT_EQ(comm.stats().recvs, 2u);
    }
  }, opts);
}

TEST(Mpi, SingleRankUniverse) {
  Universe::run(1, [](Comm& comm) {
    EXPECT_EQ(comm.size(), 1);
    double x = 5, y = 0;
    comm.allreduce(&x, &y, 1, Op::Sum);
    EXPECT_EQ(y, 5.0);
    comm.barrier();
    // Self-send must also work.
    double got = 0;
    Request rr = comm.irecv(&got, sizeof got, 0, 0);
    comm.send(&x, sizeof x, 0, 0);
    comm.wait(rr);
    EXPECT_EQ(got, 5.0);
  });
}

}  // namespace
