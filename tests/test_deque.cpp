// Chase-Lev deque: single-threaded protocol checks plus the owner/thief
// stress test the sanitizer CI runs under TSAN, and slab-arena churn tests
// (descriptor recycling, leak check via the task refcount paths).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/deque.hpp"
#include "core/slab.hpp"
#include "core/tdg.hpp"

namespace {

using tdg::ChaseLevDeque;
using tdg::Depend;
using tdg::Runtime;
using tdg::TaskArena;

TEST(ChaseLevDeque, OwnerPopsLifo) {
  ChaseLevDeque<int> dq;
  int a = 1, b = 2, c = 3;
  dq.push_bottom(&a);
  dq.push_bottom(&b);
  dq.push_bottom(&c);
  EXPECT_EQ(dq.approx_size(), 3u);
  EXPECT_EQ(dq.pop_bottom(), &c);
  EXPECT_EQ(dq.pop_bottom(), &b);
  EXPECT_EQ(dq.pop_bottom(), &a);
  EXPECT_EQ(dq.pop_bottom(), nullptr);
  EXPECT_TRUE(dq.approx_empty());
}

TEST(ChaseLevDeque, StealTakesFifoFromTop) {
  ChaseLevDeque<int> dq;
  int a = 1, b = 2, c = 3;
  dq.push_bottom(&a);
  dq.push_bottom(&b);
  dq.push_bottom(&c);
  EXPECT_EQ(dq.steal_top(), &a);
  EXPECT_EQ(dq.steal_top(), &b);
  // Owner and thief converge on the last element; here, sequentially, the
  // steal wins it cleanly.
  EXPECT_EQ(dq.steal_top(), &c);
  EXPECT_EQ(dq.steal_top(), nullptr);
}

TEST(ChaseLevDeque, GrowPreservesOrderAndContents) {
  ChaseLevDeque<int> dq(/*initial_capacity=*/8);
  constexpr int kItems = 1000;
  std::vector<int> items(kItems);
  for (int i = 0; i < kItems; ++i) dq.push_bottom(&items[i]);
  EXPECT_GE(dq.capacity(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) {
    EXPECT_EQ(dq.steal_top(), &items[i]) << "index " << i;
  }
  EXPECT_EQ(dq.steal_top(), nullptr);
}

TEST(ChaseLevDeque, EmptyAfterInterleavedPushPop) {
  ChaseLevDeque<int> dq(/*initial_capacity=*/4);
  int x = 0;
  for (int round = 0; round < 100; ++round) {
    dq.push_bottom(&x);
    dq.push_bottom(&x);
    EXPECT_NE(dq.pop_bottom(), nullptr);
    EXPECT_NE(dq.steal_top(), nullptr);
    EXPECT_EQ(dq.pop_bottom(), nullptr);
  }
  EXPECT_TRUE(dq.approx_empty());
}

// The stress test the sanitizer script runs under TSAN and ASAN: one owner
// pushing and popping at the bottom while thieves hammer the top, with a
// deliberately tiny initial ring so the owner grows it mid-flight. Every
// element must be claimed exactly once across all participants.
TEST(ChaseLevDequeStress, ExactlyOnceUnderConcurrentSteals) {
  constexpr int kItems = 50000;
  const unsigned kThieves = 3;
  ChaseLevDeque<int> dq(/*initial_capacity=*/8);
  std::vector<int> items(kItems);
  std::vector<std::atomic<int>> claims(kItems);
  for (auto& c : claims) c.store(0, std::memory_order_relaxed);
  std::atomic<int> taken{0};
  std::atomic<bool> done{false};

  auto claim = [&](int* p) {
    const auto idx = static_cast<std::size_t>(p - items.data());
    ASSERT_LT(idx, items.size());
    EXPECT_EQ(claims[idx].fetch_add(1, std::memory_order_relaxed), 0)
        << "element " << idx << " claimed twice";
    taken.fetch_add(1, std::memory_order_relaxed);
  };

  std::vector<std::thread> thieves;
  for (unsigned i = 0; i < kThieves; ++i) {
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        if (int* p = dq.steal_top()) {
          claim(p);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }

  // Owner: pushes everything, popping a few along the way to exercise the
  // bottom-side Dekker reservation against in-flight steals.
  for (int i = 0; i < kItems; ++i) {
    dq.push_bottom(&items[i]);
    if (i % 7 == 0) {
      if (int* p = dq.pop_bottom()) claim(p);
    }
  }
  while (taken.load(std::memory_order_relaxed) < kItems) {
    if (int* p = dq.pop_bottom()) {
      claim(p);
    } else {
      std::this_thread::yield();
    }
  }
  done.store(true, std::memory_order_release);
  for (auto& th : thieves) th.join();

  EXPECT_EQ(taken.load(), kItems);
  for (int i = 0; i < kItems; ++i) {
    EXPECT_EQ(claims[i].load(), 1) << "element " << i;
  }
}

TEST(InjectQueue, FifoOrderSingleThread) {
  tdg::InjectQueue<int> q;
  int a = 1, b = 2, c = 3;
  EXPECT_TRUE(q.approx_empty());
  EXPECT_EQ(q.pop(), nullptr);
  q.push(&a);
  q.push(&b);
  q.push(&c);
  EXPECT_EQ(q.approx_size(), 3u);
  EXPECT_EQ(q.pop(), &a);
  EXPECT_EQ(q.pop(), &b);
  EXPECT_EQ(q.pop(), &c);
  EXPECT_EQ(q.pop(), nullptr);
  EXPECT_TRUE(q.approx_empty());
}

TEST(InjectQueue, HeadCursorCompactsLongStreams) {
  tdg::InjectQueue<int> q;
  std::vector<int> items(10000);
  // Interleave so the head cursor runs far ahead of the tail repeatedly,
  // crossing the compaction threshold many times.
  std::size_t popped = 0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    q.push(&items[i]);
    if (i % 3 != 0) {
      ASSERT_EQ(q.pop(), &items[popped]);
      ++popped;
    }
  }
  while (int* p = q.pop()) {
    ASSERT_EQ(p, &items[popped]);
    ++popped;
  }
  EXPECT_EQ(popped, items.size());
  EXPECT_TRUE(q.approx_empty());
}

// The satellite regression for the count-mirror ordering: the push must
// publish the element BEFORE the release increment, and the consumer's
// acquire read of a nonzero count must therefore always find the element
// under the lock — the empty-probe fast path may never lose a published
// inject. Multi-producer / multi-consumer, exactly once, run under TSAN
// and ASAN by scripts/ci_sanitize.sh.
TEST(InjectQueueStress, CountMirrorNeverLosesAPublishedInject) {
  constexpr int kPerProducer = 20000;
  constexpr unsigned kProducers = 4;
  constexpr unsigned kConsumers = 3;
  constexpr int kItems = kPerProducer * static_cast<int>(kProducers);
  tdg::InjectQueue<int> q;
  std::vector<int> items(kItems);
  std::vector<std::atomic<int>> claims(kItems);
  for (auto& c : claims) c.store(0, std::memory_order_relaxed);
  std::atomic<int> taken{0};

  std::vector<std::thread> consumers;
  for (unsigned i = 0; i < kConsumers; ++i) {
    consumers.emplace_back([&] {
      while (taken.load(std::memory_order_relaxed) < kItems) {
        if (int* p = q.pop()) {
          const auto idx = static_cast<std::size_t>(p - items.data());
          ASSERT_LT(idx, items.size());
          EXPECT_EQ(claims[idx].fetch_add(1, std::memory_order_relaxed), 0)
              << "element " << idx << " claimed twice";
          taken.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  std::vector<std::thread> producers;
  for (unsigned pi = 0; pi < kProducers; ++pi) {
    producers.emplace_back([&, pi] {
      for (int i = 0; i < kPerProducer; ++i) {
        q.push(&items[static_cast<std::size_t>(pi) * kPerProducer + i]);
      }
    });
  }
  for (auto& t : producers) t.join();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(taken.load(), kItems);
  for (int i = 0; i < kItems; ++i) {
    EXPECT_EQ(claims[i].load(), 1) << "element " << i;
  }
}

// Single consumer: once the mirror says non-empty, pop() must deliver —
// nobody else can take the element, so a nullptr here would mean the
// count was published before the element (the ordering bug this guards).
TEST(InjectQueueStress, NonEmptyProbeAlwaysDeliversToSoleConsumer) {
  constexpr int kItems = 50000;
  tdg::InjectQueue<int> q;
  std::vector<int> items(kItems);
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) q.push(&items[i]);
  });
  int got = 0;
  while (got < kItems) {
    if (!q.approx_empty()) {
      int* p = q.pop();
      ASSERT_NE(p, nullptr) << "non-empty probe lost a published inject";
      ASSERT_EQ(p, &items[got]);  // FIFO across the push stream
      ++got;
    }
  }
  producer.join();
  EXPECT_EQ(q.pop(), nullptr);
}

TEST(TaskArena, RecyclesThroughRemoteFreeStack) {
  TaskArena arena(/*block_bytes=*/48, /*nshards=*/2);
  TaskArena::Source src;
  void* a = arena.allocate(0, src);
  EXPECT_EQ(src, TaskArena::Source::NewChunk);
  void* b = arena.allocate(0, src);
  EXPECT_EQ(src, TaskArena::Source::Fresh);
  EXPECT_EQ(arena.live_blocks(), 2u);
  // Blocks are cache-line sized and aligned.
  EXPECT_EQ(arena.block_bytes() % tdg::kCacheLine, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % tdg::kCacheLine, 0u);

  arena.deallocate(a);
  arena.deallocate(b);
  EXPECT_EQ(arena.live_blocks(), 0u);

  // The freed blocks come back without carving new chunk memory: the
  // first allocate grabs the whole remote stack into the shard-local
  // freelist, the second is served straight from that freelist.
  const std::size_t chunks = arena.chunks_allocated();
  void* c = arena.allocate(0, src);
  EXPECT_EQ(src, TaskArena::Source::Recycled);
  void* d = arena.allocate(0, src);
  EXPECT_EQ(src, TaskArena::Source::Recycled);
  EXPECT_EQ(arena.chunks_allocated(), chunks);
  EXPECT_TRUE((c == a && d == b) || (c == b && d == a));
  arena.deallocate(c);
  arena.deallocate(d);
}

// Churn: many waves of short-lived tasks through a live runtime. The leak
// check rides the existing refcount paths — every release() must hand the
// descriptor back to the arena, so live_blocks() returns to zero once the
// dependency scope (which holds last-writer references) is cleared.
TEST(SlabChurn, DescriptorCountReturnsToZero) {
  Runtime rt({.num_threads = 2});
  int cell = 0;
  for (int wave = 0; wave < 40; ++wave) {
    std::atomic<int> hits{0};
    for (int i = 0; i < 120; ++i) {
      rt.submit([&hits] { ++hits; }, {});
    }
    rt.submit([&cell] { ++cell; }, {Depend::inout(&cell)});
    rt.taskwait();
    ASSERT_EQ(hits.load(), 120);
  }
  EXPECT_EQ(cell, 40);
  rt.clear_dependency_scope();
  EXPECT_EQ(rt.task_arena().live_blocks(), 0u);
  // ~4800 descriptors flowed through, but recycling bounds the footprint
  // near the per-wave high-water mark, far below one block per task.
  EXPECT_LT(rt.task_arena().chunks_allocated() * TaskArena::kBlocksPerChunk,
            static_cast<std::size_t>(40 * 121));
  EXPECT_GT(rt.metrics().snapshot().value("alloc.slab_recycled"), 0u);
}

}  // namespace
