// Discovery data layer (PR 4): the open-addressing address table, slab-
// backed AddrEntry payloads, small_vector history/successor lists, the
// process-global chunk cache, and the metrics the layer exports. These are
// structural tests — exact edge counts under adversarial address patterns,
// spill behaviour, lifetime accounting — complementing the semantic
// ordering tests in test_depend.cpp.
#include <gtest/gtest.h>

#include <cstdint>
#include <mutex>
#include <new>
#include <vector>

#include "core/slab.hpp"
#include "core/tdg.hpp"

namespace {

using tdg::ChunkCache;
using tdg::Depend;
using tdg::Runtime;
using tdg::TaskArena;
using tdg::small_vector;

Runtime::Config solo_config(bool dedup = true, bool redirect = true) {
  Runtime::Config cfg;
  cfg.num_threads = 1;
  cfg.discovery.dedup_edges = dedup;
  cfg.discovery.inoutset_redirect = redirect;
  return cfg;
}

// --- small_vector -----------------------------------------------------------

TEST(SmallVector, StaysInlineUpToN) {
  small_vector<int, 4> v;
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_FALSE(v.spilled());
  EXPECT_EQ(v.size(), 4u);
  EXPECT_EQ(v.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(v[i], i);
}

TEST(SmallVector, SpillPreservesElements) {
  small_vector<int, 4> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_TRUE(v.spilled());
  EXPECT_EQ(v.size(), 100u);
  EXPECT_GE(v.capacity(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v[i], i);
}

TEST(SmallVector, ClearKeepsSpilledCapacity) {
  // Access-history lists churn through clear/refill cycles; re-spilling
  // every generation would defeat the layout.
  small_vector<int, 4> v;
  for (int i = 0; i < 20; ++i) v.push_back(i);
  const std::size_t cap = v.capacity();
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_TRUE(v.spilled());
  EXPECT_EQ(v.capacity(), cap);
  for (int i = 0; i < 20; ++i) v.push_back(-i);
  EXPECT_EQ(v.capacity(), cap);
  EXPECT_EQ(v[19], -19);
}

TEST(SmallVector, CopyInlineAndSpilled) {
  small_vector<int, 4> a;
  for (int i = 0; i < 3; ++i) a.push_back(i);
  small_vector<int, 4> b(a);
  EXPECT_FALSE(b.spilled());
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b[2], 2);

  for (int i = 3; i < 40; ++i) a.push_back(i);
  b = a;
  EXPECT_TRUE(b.spilled());
  ASSERT_EQ(b.size(), 40u);
  for (int i = 0; i < 40; ++i) EXPECT_EQ(b[i], i);
  EXPECT_NE(a.data(), b.data()) << "copy must not alias the source buffer";
}

TEST(SmallVector, MoveTransfersHeapAndResetsSource) {
  small_vector<int, 4> a;
  for (int i = 0; i < 40; ++i) a.push_back(i);
  const int* heap = a.data();
  small_vector<int, 4> b(std::move(a));
  EXPECT_EQ(b.data(), heap) << "move must steal the heap buffer";
  EXPECT_EQ(b.size(), 40u);
  EXPECT_TRUE(a.empty());
  EXPECT_FALSE(a.spilled()) << "moved-from must be reusable inline";
  a.push_back(7);
  EXPECT_EQ(a[0], 7);
}

TEST(SmallVector, SwapMixedInlineAndSpilled) {
  small_vector<int, 4> a;
  small_vector<int, 4> b;
  a.push_back(1);
  for (int i = 0; i < 30; ++i) b.push_back(100 + i);
  swap(a, b);
  EXPECT_TRUE(a.spilled());
  EXPECT_EQ(a.size(), 30u);
  EXPECT_EQ(a[29], 129);
  EXPECT_FALSE(b.spilled());
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0], 1);
}

// --- chunk cache ------------------------------------------------------------

TEST(ChunkCacheTest, GiveTakeRoundTrip) {
  ChunkCache::trim();
  constexpr std::size_t kBytes = 1 << 16;
  void* p = ::operator new(kBytes, std::align_val_t{tdg::kCacheLine});
  ChunkCache::give(p, kBytes);
  EXPECT_EQ(ChunkCache::cached(), kBytes);
  EXPECT_EQ(ChunkCache::take(kBytes + 64), nullptr)
      << "size classes must match exactly";
  EXPECT_EQ(ChunkCache::take(kBytes), p);
  EXPECT_EQ(ChunkCache::cached(), 0u);
  ::operator delete(p, std::align_val_t{tdg::kCacheLine});
}

TEST(ChunkCacheTest, ArenaChunksSurviveArenaTeardown) {
  // The point of the cache: a rebuilt arena (new runtime instance) reuses
  // the previous instance's chunk memory instead of re-faulting fresh
  // pages inside the measured region.
  ChunkCache::trim();
  void* first_block = nullptr;
  {
    TaskArena arena(64, 1);
    TaskArena::Source src{};
    first_block = arena.allocate(0, src);
    arena.deallocate(first_block);
  }
  EXPECT_GE(ChunkCache::cached(), 64u * TaskArena::kBlocksPerChunk);
  {
    TaskArena arena(64, 1);
    TaskArena::Source src{};
    void* again = arena.allocate(0, src);
    EXPECT_EQ(again, first_block) << "chunk memory must be recycled";
    arena.deallocate(again);
  }
  ChunkCache::trim();
  EXPECT_EQ(ChunkCache::cached(), 0u);
}

// --- address table under adversarial patterns -------------------------------

TEST(DiscoveryTable, PageStridedAddressesExactEdges) {
  // Page-strided addresses are the classic open-addressing pathology: under
  // a power-of-two mask an identity hash would fold them onto a handful of
  // slots. The folded pointer hash must keep probe chains short enough that
  // discovery stays exact and the table grows normally.
  Runtime rt(solo_config());
  constexpr std::size_t kAddrs = 3000;
  constexpr std::size_t kStride = 4096;
  static std::vector<unsigned char> heap(kAddrs * kStride);
  for (std::size_t i = 0; i < kAddrs; ++i) {
    unsigned char* a = heap.data() + i * kStride;
    rt.submit([] {}, {Depend::out(a)});
    rt.submit([] {}, {Depend::in(a)});
  }
  EXPECT_EQ(rt.stats().discovery.edges_created, kAddrs);
  const auto& map = rt.dependency_map();
  EXPECT_EQ(map.tracked_addresses(), kAddrs);
  EXPECT_EQ(map.live_entries(), kAddrs);
  EXPECT_GE(map.rehash_count(), 1u) << "table must have grown";
  // Load-factor invariant: size stays under 3/4 of capacity.
  EXPECT_LE(map.tracked_addresses() * 4, map.table_capacity() * 3);
  rt.taskwait();
}

TEST(DiscoveryTable, TenThousandAddressGenerationsWithRedirect) {
  // 10k independent inoutset generations (2 members + 1 consumer each):
  // optimization (c) gives exactly m+n = 3 edges per address, one redirect
  // node each, and one AddrEntry per address in the arena.
  Runtime rt(solo_config());
  constexpr std::size_t kAddrs = 10000;
  static std::vector<double> x(kAddrs);
  for (std::size_t i = 0; i < kAddrs; ++i) {
    rt.submit([] {}, {Depend::inoutset(&x[i])});
    rt.submit([] {}, {Depend::inoutset(&x[i])});
    rt.submit([] {}, {Depend::in(&x[i])});
  }
  const auto s = rt.stats();
  EXPECT_EQ(s.discovery.edges_created, 3 * kAddrs);
  EXPECT_EQ(s.discovery.redirect_nodes, kAddrs);
  const auto& map = rt.dependency_map();
  EXPECT_EQ(map.tracked_addresses(), kAddrs);
  EXPECT_EQ(map.live_entries(), kAddrs);
  EXPECT_GT(map.arena_bytes(), kAddrs * sizeof(void*));
  rt.taskwait();
}

TEST(DiscoveryTable, GenerationReuseAndDedupAtScale) {
  // Members write a pair of addresses, the consumer reads both: the second
  // address contributes only duplicate (pred, succ) pairs, which
  // optimization (b) must eliminate — per pair: 2 created + 2 duplicate.
  Runtime rt(solo_config(/*dedup=*/true, /*redirect=*/false));
  constexpr std::size_t kPairs = 5000;
  static std::vector<double> a(kPairs), b(kPairs);
  for (std::size_t i = 0; i < kPairs; ++i) {
    rt.submit([] {}, {Depend::inoutset(&a[i]), Depend::inoutset(&b[i])});
    rt.submit([] {}, {Depend::inoutset(&a[i]), Depend::inoutset(&b[i])});
    rt.submit([] {}, {Depend::in(&a[i]), Depend::in(&b[i])});
  }
  const auto s = rt.stats();
  EXPECT_EQ(s.discovery.edges_created, 2 * kPairs);
  EXPECT_EQ(s.discovery.edges_duplicate, 2 * kPairs);
  EXPECT_EQ(s.discovery.redirect_nodes, 0u);
  EXPECT_EQ(rt.dependency_map().tracked_addresses(), 2 * kPairs);
  rt.taskwait();
}

TEST(DiscoveryTable, WideFanoutSpillsSuccessorList) {
  // 64 readers after one writer: the writer's successor list spills far
  // past its inline capacity, and the closing writer must still collect an
  // edge from every reader.
  Runtime rt(solo_config());
  constexpr int kReaders = 64;
  int x = 0;
  std::mutex mu;
  std::vector<int> order;
  auto mark = [&](int id) {
    std::lock_guard<std::mutex> g(mu);
    order.push_back(id);
  };
  rt.submit([&] { mark(0); }, {Depend::out(&x)});
  for (int i = 1; i <= kReaders; ++i) {
    rt.submit([&, i] { mark(i); }, {Depend::in(&x)});
  }
  rt.submit([&] { mark(kReaders + 1); }, {Depend::out(&x)});
  EXPECT_EQ(rt.stats().discovery.edges_created,
            static_cast<std::uint64_t>(2 * kReaders + 1));
  rt.taskwait();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kReaders + 2));
  EXPECT_EQ(order.front(), 0);
  EXPECT_EQ(order.back(), kReaders + 1);
}

// --- lifetime accounting ----------------------------------------------------

TEST(DiscoveryTable, ChurnReleasesEveryEntry) {
  // `data` is declared before the runtime (and all tasks complete at the
  // per-round taskwait), and is per-invocation so --gtest_repeat starts
  // from fresh counts.
  constexpr int kRounds = 50;
  constexpr std::size_t kAddrs = 100;
  std::vector<int> data(kAddrs, 0);
  Runtime rt(solo_config());
  for (int r = 0; r < kRounds; ++r) {
    for (std::size_t i = 0; i < kAddrs; ++i) {
      rt.submit([&, i] { ++data[i]; }, {Depend::inout(&data[i])});
      rt.submit([&, i] { (void)data[i]; }, {Depend::in(&data[i])});
    }
    rt.taskwait();
    rt.clear_dependency_scope();
    ASSERT_EQ(rt.dependency_map().live_entries(), 0u) << "round " << r;
    ASSERT_EQ(rt.dependency_map().tracked_addresses(), 0u) << "round " << r;
  }
  for (std::size_t i = 0; i < kAddrs; ++i) EXPECT_EQ(data[i], kRounds);
}

TEST(DiscoveryTable, LookupCacheInvalidatedByClear) {
  // Regression guard for the one-entry lookup cache: after clear() frees
  // every AddrEntry, a lookup of the very address cached last must miss
  // (a stale hit would dereference freed arena memory and resurrect the
  // released history).
  Runtime rt(solo_config());
  int x = 0;
  rt.submit([&] { x = 1; }, {Depend::out(&x)});
  rt.clear_dependency_scope();
  rt.submit([&] { x = 2; }, {Depend::out(&x)});
  rt.submit([&] { EXPECT_EQ(x, 2); }, {Depend::in(&x)});
  EXPECT_EQ(rt.stats().discovery.edges_created, 1u)
      << "only the fresh out->in edge; no edge from the cleared history";
  rt.taskwait();
}

// --- replay plan ------------------------------------------------------------

TEST(DiscoveryReplay, PlanMatchesRediscoveryResults) {
  // The same stencil sweep, run once through PTSG replay and once with
  // per-iteration rediscovery, must compute identical values — the compiled
  // replay plan is an encoding of the discovered graph, not a new schedule.
  constexpr int kIters = 5;
  constexpr std::size_t kLen = 64;
  auto sweep = [&](Runtime& rt, std::vector<double>& v, int iter) {
    for (std::size_t i = 1; i + 1 < kLen; ++i) {
      rt.submit([&v, i, iter] { v[i] += 0.25 * iter + 0.5 * i; },
                {Depend::in(&v[i - 1]), Depend::inout(&v[i]),
                 Depend::in(&v[i + 1])});
    }
  };

  std::vector<double> replayed(kLen, 1.0);
  {
    Runtime rt(solo_config());
    tdg::PersistentRegion region(rt);
    for (int it = 0; it < kIters; ++it) {
      region.begin_iteration();
      sweep(rt, replayed, it);
      region.end_iteration();
    }
    ASSERT_EQ(region.discovery_seconds().size(),
              static_cast<std::size_t>(kIters));
    // Replay iterations skip discovery entirely: the per-iteration
    // discovery window can only shrink once the plan is compiled.
    EXPECT_GT(region.discovery_seconds()[0], 0.0);
  }

  std::vector<double> rediscovered(kLen, 1.0);
  {
    Runtime rt(solo_config());
    for (int it = 0; it < kIters; ++it) {
      sweep(rt, rediscovered, it);
      rt.taskwait();
      rt.clear_dependency_scope();
    }
  }
  for (std::size_t i = 0; i < kLen; ++i) {
    EXPECT_DOUBLE_EQ(replayed[i], rediscovered[i]) << "index " << i;
  }
}

// --- metrics surface --------------------------------------------------------

TEST(DiscoveryMetrics, TableAndArenaGaugesExported) {
  Runtime::Config cfg = solo_config();
  cfg.metrics = true;
  Runtime rt(cfg);
  constexpr std::size_t kAddrs = 500;
  static std::vector<int> xs(kAddrs);
  for (std::size_t i = 0; i < kAddrs; ++i) {
    rt.submit([] {}, {Depend::out(&xs[i])});
    rt.submit([] {}, {Depend::in(&xs[i])});
  }
  rt.taskwait();
  const tdg::MetricsSnapshot s = rt.metrics().snapshot();
  const auto* entries = s.find("discovery.addr_entries");
  ASSERT_NE(entries, nullptr);
  EXPECT_EQ(entries->level, static_cast<std::int64_t>(kAddrs));
  EXPECT_GE(s.value("discovery.rehash"), 1u);
  const auto* arena = s.find("discovery.arena_bytes");
  ASSERT_NE(arena, nullptr);
  EXPECT_GT(arena->level, 0);
  const auto* probe = s.find("discovery.probe_len");
  ASSERT_NE(probe, nullptr);
  EXPECT_GT(probe->value, 0u) << "every lookup records a probe length";

  rt.clear_dependency_scope();
  const tdg::MetricsSnapshot s2 = rt.metrics().snapshot();
  const auto* entries2 = s2.find("discovery.addr_entries");
  ASSERT_NE(entries2, nullptr);
  EXPECT_EQ(entries2->level, 0)
      << "gauge must return to zero when the history is dropped";
}

}  // namespace
