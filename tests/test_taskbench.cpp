// taskbench generator tests: exact expected edge sets on both engines
// (derived independently from the pattern definition), engine parity,
// persistent-replay stability, strict-verify soundness, and the METG
// helper regressions (frontier on non-monotonic curves, zero-task grain).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "apps/taskbench/taskbench.hpp"
#include "bench/bench_util.hpp"
#include "core/runtime.hpp"

namespace {

using namespace tdg;
using namespace tdg::apps;
namespace tb = tdg::apps::taskbench;

tb::Config small_config(tb::Pattern p) {
  tb::Config cfg;
  cfg.pattern = p;
  cfg.width = 8;  // power of two so fft/tree stay in range
  cfg.steps = 4;
  cfg.iterations = 1;
  return cfg;
}

/// Expected in-edge set of task (step, point), computed from the pattern
/// definition alone (no engine involved). With double-buffered slots the
/// predecessors of (s, i) are exactly:
///   true deps:  (s-1, j) for every j the task reads,
///   WAR:        (s-1, k) for every previous-step reader of slot i,
///   WAW:        (s-2, i), the previous writer of the same slot.
std::set<int> expected_in_edges(const tb::Config& cfg, int s, int i) {
  std::set<int> preds;
  if (s == 0) return preds;
  auto id = [&](int step, int point) { return step * cfg.width + point; };
  std::vector<int> deps;
  tb::dependencies(cfg, s, i, deps);
  for (int j : deps) preds.insert(id(s - 1, j));
  for (int k = 0; k < cfg.width; ++k) {
    tb::dependencies(cfg, s - 1, k, deps);
    for (int j : deps) {
      if (j == i) preds.insert(id(s - 1, k));
    }
  }
  if (s >= 2) preds.insert(id(s - 2, i));
  return preds;
}

TEST(TaskbenchPatterns, DependenciesAreSortedUniqueInRange) {
  std::vector<int> deps;
  for (tb::Pattern p : tb::all_patterns()) {
    const tb::Config cfg = small_config(p);
    for (int s = 0; s < cfg.steps; ++s) {
      for (int i = 0; i < cfg.width; ++i) {
        tb::dependencies(cfg, s, i, deps);
        if (s == 0) EXPECT_TRUE(deps.empty());
        for (std::size_t k = 0; k < deps.size(); ++k) {
          EXPECT_GE(deps[k], 0);
          EXPECT_LT(deps[k], cfg.width);
          if (k > 0) EXPECT_LT(deps[k - 1], deps[k]);
        }
      }
    }
  }
}

TEST(TaskbenchPatterns, RandomNearestIsDeterministic) {
  const tb::Config cfg = small_config(tb::Pattern::RandomNearest);
  std::vector<int> a, b;
  for (int s = 0; s < cfg.steps; ++s) {
    for (int i = 0; i < cfg.width; ++i) {
      tb::dependencies(cfg, s, i, a);
      tb::dependencies(cfg, s, i, b);
      EXPECT_EQ(a, b);
    }
  }
  // A different seed draws different neighbourhoods somewhere.
  tb::Config other = cfg;
  other.seed ^= 0xdeadbeef;
  bool differs = false;
  for (int s = 1; s < cfg.steps && !differs; ++s) {
    for (int i = 0; i < cfg.width && !differs; ++i) {
      tb::dependencies(cfg, s, i, a);
      tb::dependencies(other, s, i, b);
      differs = a != b;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(TaskbenchSimGraph, ExactEdgeSetsMatchTheFormula) {
  for (tb::Pattern p : tb::all_patterns()) {
    const tb::Config cfg = small_config(p);
    const sim::SimGraph g =
        tb::build_sim_graph(cfg, {.dedup_edges = true}, /*persistent=*/false);
    ASSERT_EQ(g.tasks.size(),
              static_cast<std::size_t>(cfg.width) * cfg.steps)
        << tb::pattern_name(p);
    for (int s = 0; s < cfg.steps; ++s) {
      for (int i = 0; i < cfg.width; ++i) {
        const auto& t = g.tasks[static_cast<std::size_t>(s * cfg.width + i)];
        const std::set<int> got(t.preds.begin(), t.preds.end());
        EXPECT_EQ(got.size(), t.preds.size())
            << tb::pattern_name(p) << ": duplicate edge at (" << s << "," << i
            << ")";
        std::set<int> want;
        for (int w : expected_in_edges(cfg, s, i)) want.insert(w);
        EXPECT_EQ(got, std::set<int>(want.begin(), want.end()))
            << tb::pattern_name(p) << " task (" << s << "," << i << ")";
      }
    }
  }
}

TEST(TaskbenchRealRuntime, ExactEdgeSetsMatchTheFormula) {
  for (tb::Pattern p : tb::all_patterns()) {
    const tb::Config cfg = small_config(p);
    // Single worker, no taskwait during submission: nothing executes, so
    // no edge is pruned and the trace holds the complete TDG.
    Runtime::Config rc;
    rc.num_threads = 1;
    rc.trace = true;
    Runtime rt(rc);
    RuntimeEmitter em(rt, {});
    tb::Workspace ws(cfg);
    tb::emit(em, cfg, &ws);
    EXPECT_EQ(rt.stats().discovery.edges_pruned, 0u);

    // Map trace task ids to submission order = (step * width + point).
    std::map<std::uint64_t, int> index;
    for (const auto& a : rt.profiler().accesses()) {
      index.emplace(a.task_id, static_cast<int>(index.size()));
    }
    ASSERT_EQ(index.size(), static_cast<std::size_t>(cfg.width) * cfg.steps);
    std::vector<std::set<int>> in_edges(index.size());
    for (const auto& e : rt.profiler().edges()) {
      in_edges[static_cast<std::size_t>(index.at(e.succ))].insert(
          index.at(e.pred));
    }
    for (int s = 0; s < cfg.steps; ++s) {
      for (int i = 0; i < cfg.width; ++i) {
        EXPECT_EQ(in_edges[static_cast<std::size_t>(s * cfg.width + i)],
                  expected_in_edges(cfg, s, i))
            << tb::pattern_name(p) << " task (" << s << "," << i << ")";
      }
    }
    rt.taskwait();
    EXPECT_EQ(ws.executed.load(),
              static_cast<std::uint64_t>(cfg.width) * cfg.steps);
  }
}

TEST(TaskbenchParity, EnginesCreateTheSameEdgeCounts) {
  for (tb::Pattern p : tb::all_patterns()) {
    tb::Config cfg = small_config(p);
    cfg.iterations = 2;  // cross-iteration edges too
    const sim::SimGraph g =
        tb::build_sim_graph(cfg, {.dedup_edges = true}, /*persistent=*/false);
    Runtime::Config rc;
    rc.num_threads = 1;
    Runtime rt(rc);
    RuntimeEmitter em(rt, {});
    tb::Workspace ws(cfg);
    tb::emit(em, cfg, &ws);
    const auto st = rt.stats();
    EXPECT_EQ(st.discovery.edges_pruned, 0u);
    EXPECT_EQ(g.structural_edges(), st.discovery.edges_created)
        << tb::pattern_name(p);
    rt.taskwait();
  }
}

TEST(TaskbenchExecution, ChecksumIsScheduleIndependent) {
  for (tb::Pattern p : tb::all_patterns()) {
    tb::Config cfg = small_config(p);
    cfg.iterations = 2;
    std::optional<double> reference;
    for (unsigned threads : {1u, 4u}) {
      Runtime::Config rc;
      rc.num_threads = threads;
      Runtime rt(rc);
      const auto res = tb::run_taskbased(rt, cfg, /*persistent=*/false);
      EXPECT_EQ(res.tasks_executed,
                static_cast<std::uint64_t>(cfg.width) * cfg.steps *
                    cfg.iterations);
      if (!reference) {
        reference = res.checksum;
      } else {
        EXPECT_DOUBLE_EQ(*reference, res.checksum) << tb::pattern_name(p);
      }
    }
  }
}

TEST(TaskbenchPersistent, ReplayMatchesReEmission) {
  for (tb::Pattern p :
       {tb::Pattern::Stencil1D, tb::Pattern::Spread, tb::Pattern::Fft,
        tb::Pattern::RandomNearest}) {
    tb::Config cfg = small_config(p);
    cfg.iterations = 3;
    std::optional<double> reference;
    for (bool persistent : {false, true}) {
      Runtime::Config rc;
      rc.num_threads = 2;
      Runtime rt(rc);
      const auto res = tb::run_taskbased(rt, cfg, persistent);
      EXPECT_EQ(res.tasks_executed,
                static_cast<std::uint64_t>(cfg.width) * cfg.steps *
                    cfg.iterations)
          << tb::pattern_name(p) << " persistent=" << persistent;
      if (!reference) {
        reference = res.checksum;
      } else {
        EXPECT_DOUBLE_EQ(*reference, res.checksum)
            << tb::pattern_name(p) << ": replay drifted from re-emission";
      }
    }
  }
}

TEST(TaskbenchPersistent, SimCapturesOneIterationOnly) {
  tb::Config cfg = small_config(tb::Pattern::Stencil1D);
  cfg.iterations = 4;
  const auto persistent =
      tb::build_sim_graph(cfg, {}, /*persistent=*/true);
  const auto inlined = tb::build_sim_graph(cfg, {}, /*persistent=*/false);
  EXPECT_EQ(persistent.tasks.size(),
            static_cast<std::size_t>(cfg.width) * cfg.steps);
  EXPECT_EQ(inlined.tasks.size(),
            static_cast<std::size_t>(cfg.width) * cfg.steps * cfg.iterations);
}

TEST(TaskbenchStrictVerify, AllPatternsDiscoverSoundGraphs) {
  // Redundant with the TDG_VERIFY=strict ctest variant, but this keeps the
  // soundness property pinned even in a plain run.
  for (tb::Pattern p : tb::all_patterns()) {
    tb::Config cfg = small_config(p);
    cfg.iterations = 2;
    Runtime::Config rc;
    rc.num_threads = 4;
    rc.verify = VerifyMode::Strict;
    Runtime rt(rc);
    EXPECT_NO_THROW({
      const auto res = tb::run_taskbased(rt, cfg, /*persistent=*/false);
      EXPECT_GT(res.tasks_executed, 0u);
    }) << tb::pattern_name(p);
  }
}

TEST(TaskbenchCollectives, PeriodicAllreduceGatesTheNextStep) {
  tb::Config cfg = small_config(tb::Pattern::Trivial);
  cfg.collective_period = 2;
  const auto g = tb::build_sim_graph(cfg, {}, /*persistent=*/false);
  // steps=4 -> one collective, before step 2.
  EXPECT_EQ(tb::tasks_per_iteration(cfg),
            static_cast<std::uint64_t>(cfg.width) * cfg.steps + 1);
  ASSERT_EQ(g.tasks.size(), tb::tasks_per_iteration(cfg));
  const std::size_t coll = static_cast<std::size_t>(cfg.width) * 2;
  ASSERT_EQ(g.tasks[coll].attrs.kind, sim::SimTaskKind::Allreduce);
  // Every task of the gated step depends on the collective; trivial tasks
  // have no other inputs, so the edge is easy to see.
  for (int i = 0; i < cfg.width; ++i) {
    const auto& t = g.tasks[coll + 1 + static_cast<std::size_t>(i)];
    EXPECT_TRUE(std::find(t.preds.begin(), t.preds.end(),
                          static_cast<std::uint32_t>(coll)) != t.preds.end())
        << "step-2 task " << i << " not gated by the allreduce";
  }
}

TEST(TaskbenchAccounting, TaskSecondsSumAndImbalance) {
  tb::Config cfg = small_config(tb::Pattern::Nearest);
  cfg.grain_us = 10.0;
  cfg.iterations = 2;
  const double uniform = tb::total_task_seconds(cfg);
  EXPECT_NEAR(uniform, 1e-5 * cfg.width * cfg.steps * cfg.iterations, 1e-12);
  cfg.kernel = tb::Kernel::Imbalanced;
  cfg.imbalance = 4.0;
  const double spread = tb::total_task_seconds(cfg);
  EXPECT_GT(spread, uniform);  // grains stretch into [1, 4] x grain
  EXPECT_LT(spread, 4.0 * uniform);
}

// ---------------------------------------------------------------------------
// METG helper regressions (the bench_metg bugfixes)
// ---------------------------------------------------------------------------

TEST(MetgHelpers, GrainGuardsZeroTasks) {
  tdg::sim::RankResult r;
  r.tasks_executed = 0;
  r.work = 1.0;
  EXPECT_FALSE(bench::grain_us_of(r).has_value());  // was a divide-by-zero
  r.tasks_executed = 10;
  ASSERT_TRUE(bench::grain_us_of(r).has_value());
  EXPECT_NEAR(*bench::grain_us_of(r), 1e5, 1e-6);
}

TEST(MetgHelpers, FrontierStopsAtTheFirstDip) {
  // Non-monotonic curve: a raw min over >=0.95 samples would jump the
  // 0.60 valley and report 10us; the frontier stops at 100us.
  const std::vector<bench::MetgSample> s = {
      {1000, 0.99}, {400, 0.98}, {100, 0.96}, {40, 0.60}, {10, 0.97}};
  const auto metg = bench::metg_frontier(s);
  ASSERT_TRUE(metg.has_value());
  EXPECT_DOUBLE_EQ(*metg, 100.0);
}

TEST(MetgHelpers, FrontierAnchorsAtTheBestSample) {
  // Coarse grains can starve the machine of parallelism and sit under the
  // bar; METG bounds the fine end, so the walk starts at the best sample.
  const std::vector<bench::MetgSample> s = {
      {4000, 0.66}, {1000, 0.80}, {400, 1.00}, {100, 0.97}, {10, 0.50}};
  const auto metg = bench::metg_frontier(s);
  ASSERT_TRUE(metg.has_value());
  EXPECT_DOUBLE_EQ(*metg, 100.0);
}

TEST(MetgHelpers, FrontierEmptyWhenNothingClearsTheBar) {
  EXPECT_FALSE(bench::metg_frontier({{100, 0.5}, {10, 0.4}}).has_value());
  EXPECT_FALSE(bench::metg_frontier({}).has_value());
  EXPECT_EQ(bench::fmt_metg(std::nullopt), "n/a");
  EXPECT_EQ(bench::fmt_metg(12.34, 1), "12.3");
}

TEST(MetgHelpers, NormalizeRatesIsBestRelative) {
  const auto out = bench::normalize_rates({{100, 50.0}, {10, 25.0}});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0].efficiency, 1.0);
  EXPECT_DOUBLE_EQ(out[1].efficiency, 0.5);
  EXPECT_TRUE(bench::normalize_rates({}).empty());
}

}  // namespace
