// TDG soundness verifier (offline determinacy-race detection), the
// TDG_VERIFY runtime modes, PTSG replay-safety diffing, depend-clause
// lint, and the verification streams' trace round-trip.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <vector>

#include "core/persistent.hpp"
#include "core/tdg.hpp"
#include "core/trace_export.hpp"
#include "core/verify.hpp"

namespace tdg {
namespace {

Runtime::Config verified_config(VerifyMode mode = VerifyMode::Post,
                                int threads = 1) {
  Runtime::Config cfg;
  cfg.num_threads = threads;
  cfg.verify = mode;  // forces trace capture in the Runtime constructor
  return cfg;
}

AccessRecord acc(std::uint64_t task, std::uint64_t addr, DependType type,
                 const char* label = "") {
  return AccessRecord{task, addr, type, /*bytes=*/0, label};
}

// --- soundness checker on live runtime graphs -------------------------------

TEST(Verify, CleanChainIsSound) {
  Runtime rt(verified_config());
  int x = 0, y = 0;
  rt.submit([&] { x = 1; }, {Depend::out(&x)});
  rt.submit([&] { y = x; }, {Depend::in(&x), Depend::out(&y)});
  rt.submit([&] { x = y; }, {Depend::in(&y), Depend::inout(&x)});
  rt.taskwait();
  const VerifyReport rep = rt.verify_graph();
  EXPECT_TRUE(rep.ok()) << rep.summary();
  EXPECT_GE(rep.pairs_checked, 3u);
  EXPECT_EQ(rep.races_total, 0u);
  EXPECT_EQ(rep.addresses, 2u);
}

TEST(Verify, DiamondDedupedEdgesStillSound) {
  // Dedup (optimization b) removes duplicate edges; the pairs they would
  // have ordered must still be reachable through the remaining ones.
  Runtime rt(verified_config());
  double a = 0, b = 0, c = 0;
  rt.submit([&] { a = 1; }, {Depend::out(&a)});
  rt.submit([&] { b = a; }, {Depend::in(&a), Depend::out(&b)});
  rt.submit([&] { c = a; }, {Depend::in(&a), Depend::out(&c)});
  rt.submit([&] { a = b + c; },
            {Depend::in(&b), Depend::in(&c), Depend::out(&a)});
  rt.taskwait();
  const VerifyReport rep = rt.verify_graph();
  EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST(Verify, SeededEdgeDropIsReportedAsRace) {
  // Fault injection: silently drop the first discovered edge — exactly
  // what a missing depend clause (or a discovery bug) would cause. The
  // verifier must call it out with both endpoints.
  Runtime::Config cfg = verified_config(VerifyMode::Post);
  cfg.discovery.seed_drop_edge = 1;
  Runtime rt(cfg);
  int x = 0;
  rt.submit([&] { x = 1; }, {Depend::out(&x)}, {.label = "writer"});
  rt.submit([&] { (void)x; }, {Depend::in(&x)}, {.label = "reader"});
  const VerifyReport rep = rt.verify_graph();
  ASSERT_EQ(rep.races_total, 1u) << rep.summary();
  ASSERT_EQ(rep.races.size(), 1u);
  const RaceFinding& f = rep.races[0];
  EXPECT_EQ(f.addr, reinterpret_cast<std::uint64_t>(&x));
  EXPECT_EQ(f.pred_type, DependType::Out);
  EXPECT_EQ(f.succ_type, DependType::In);
  EXPECT_EQ(f.pred_label, "writer");
  EXPECT_EQ(f.succ_label, "reader");
  EXPECT_NE(f.to_string().find("determinacy race"), std::string::npos);
  rt.taskwait();  // Post mode: reports to stderr, must not throw
}

TEST(Verify, SeededEdgeDropStrictThrowsAtTaskwait) {
  Runtime::Config cfg = verified_config(VerifyMode::Strict);
  cfg.discovery.seed_drop_edge = 1;
  Runtime rt(cfg);
  int x = 0;
  rt.submit([&] { x = 1; }, {Depend::out(&x)});
  rt.submit([&] { (void)x; }, {Depend::in(&x)});
  EXPECT_THROW(rt.taskwait(), VerifyError);
}

TEST(Verify, SeededDropOfLaterEdgeCaughtInLargerGraph) {
  // Drop an edge in the middle of a chain; transitive reachability through
  // the others must NOT mask it (the shadow requires the direct pair).
  Runtime::Config cfg = verified_config(VerifyMode::Post);
  cfg.discovery.seed_drop_edge = 3;
  Runtime rt(cfg);
  std::vector<int> cells(4, 0);
  for (int i = 0; i < 4; ++i) {
    rt.submit([] {}, {Depend::inout(&cells[0])});
  }
  rt.taskwait();
  const VerifyReport rep = rt.verify_graph();
  EXPECT_GE(rep.races_total, 1u) << rep.summary();
}

TEST(Verify, InoutsetGenerationOrderingVerified) {
  // Members of one generation are mutually unordered (no required pair),
  // but the generation must follow the preceding writer and precede the
  // next one — with and without redirect nodes (optimization c).
  for (const bool redirect : {true, false}) {
    Runtime::Config cfg = verified_config();
    cfg.discovery.inoutset_redirect = redirect;
    Runtime rt(cfg);
    int x = 0;
    rt.submit([&] { x = 1; }, {Depend::out(&x)});
    for (int i = 0; i < 3; ++i) {
      rt.submit([&] {}, {Depend::inoutset(&x)});
    }
    rt.submit([&] { x = 2; }, {Depend::out(&x)});
    rt.taskwait();
    const VerifyReport rep = rt.verify_graph();
    EXPECT_TRUE(rep.ok()) << "redirect=" << redirect << "\n"
                          << rep.summary();
    // writer->3 members + 3 members->writer2: 6 distinct required pairs
    // whatever the graph realization (writer->writer2 is transitive).
    EXPECT_GE(rep.pairs_checked, 6u);
  }
}

TEST(Verify, RedirectNodeProvidesTransitiveOrdering) {
  // With redirect enabled and a wide generation, successors of the set are
  // ordered through the internal redirect node: member -> R -> successor.
  // The verifier must follow that two-hop path, not demand direct edges.
  Runtime rt(verified_config());
  int x = 0;
  rt.submit([&] { x = 1; }, {Depend::out(&x)});
  for (int i = 0; i < 8; ++i) {
    rt.submit([&] {}, {Depend::inoutset(&x)});
  }
  rt.submit([&] { x = 2; }, {Depend::inout(&x)});
  rt.taskwait();
  EXPECT_GE(rt.stats().discovery.redirect_nodes, 1u)
      << "test assumes the redirect path is exercised";
  const VerifyReport rep = rt.verify_graph();
  EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST(Verify, ScopeClearDoesNotFabricateRaces) {
  // clear_dependency_scope severs discovery history: conflicting accesses
  // across the cut are intentionally unordered and must not be reported.
  Runtime rt(verified_config());
  int x = 0;
  rt.submit([&] { x = 1; }, {Depend::out(&x)});
  rt.taskwait();
  rt.clear_dependency_scope();
  rt.submit([&] { x = 2; }, {Depend::out(&x)});
  rt.taskwait();
  const VerifyReport rep = rt.verify_graph();
  EXPECT_TRUE(rep.ok()) << rep.summary();
}

// --- soundness checker on synthetic streams ---------------------------------

TEST(Verify, BarrierOrdersPairWithoutEdges) {
  // Two writers with no edge between them: a race — unless a taskwait
  // cutoff >= pred and < succ separates them.
  const std::vector<AccessRecord> accesses = {
      acc(1, 0x1000, DependType::Out), acc(2, 0x1000, DependType::Out)};
  const VerifyReport racy = verify_tdg(accesses, {});
  EXPECT_EQ(racy.races_total, 1u);
  const std::vector<std::uint64_t> barriers = {1};
  const VerifyReport ok = verify_tdg(accesses, {}, barriers);
  EXPECT_TRUE(ok.ok()) << ok.summary();
  // A barrier after both tasks separates nothing.
  const std::vector<std::uint64_t> late = {2};
  EXPECT_EQ(verify_tdg(accesses, {}, late).races_total, 1u);
}

TEST(Verify, ScopeClearCutResetsShadowHistory) {
  const std::vector<AccessRecord> accesses = {
      acc(1, 0x2000, DependType::Out), acc(2, 0x2000, DependType::Out)};
  const std::vector<std::uint64_t> cuts = {1};
  const VerifyReport rep = verify_tdg(accesses, {}, {}, cuts);
  EXPECT_TRUE(rep.ok()) << rep.summary();
  EXPECT_EQ(rep.pairs_checked, 0u);
}

TEST(Verify, CycleIsFatalFinding) {
  const std::vector<AccessRecord> accesses = {
      acc(1, 0x1, DependType::Out), acc(2, 0x1, DependType::Out)};
  const std::vector<TraceEdge> cyc = {{1, 2}, {2, 1}};
  const VerifyReport rep = verify_tdg(accesses, cyc);
  EXPECT_TRUE(rep.cycle);
  EXPECT_FALSE(rep.ok());
  EXPECT_NE(rep.summary().find("CYCLE"), std::string::npos);
  // Self-edges are cycles too.
  const std::vector<TraceEdge> self = {{1, 1}};
  EXPECT_TRUE(verify_tdg(accesses, self).cycle);
}

TEST(Verify, TransitiveOrderingAccepted) {
  // writer(1) -> readers(2,3) -> writer(4): the closing writer must be
  // ordered after the previous writer AND both readers, but a deduping
  // discovery never materializes the 1->4 edge — it is implied through
  // either reader. The verifier must accept the transitive path.
  const std::vector<AccessRecord> accesses = {
      acc(1, 0x10, DependType::Out), acc(2, 0x10, DependType::In),
      acc(3, 0x10, DependType::In), acc(4, 0x10, DependType::Out)};
  const std::vector<TraceEdge> edges = {{1, 2}, {1, 3}, {2, 4}, {3, 4}};
  const VerifyReport rep = verify_tdg(accesses, edges);
  EXPECT_TRUE(rep.ok()) << rep.summary();
  // Required pairs: 1->2, 1->3, 1->4 (prior writer), 2->4, 3->4.
  EXPECT_EQ(rep.pairs_checked, 5u);
}

TEST(Verify, SparseModeAgreesWithDense) {
  // dense_limit=0 forces the per-pair DFS fallback; both modes must agree
  // on a graph mixing sound chains with one seeded violation.
  std::vector<AccessRecord> accesses;
  std::vector<TraceEdge> edges;
  for (std::uint64_t t = 1; t <= 50; ++t) {
    accesses.push_back(acc(t, 0xA0, DependType::InOut));
    if (t > 1 && t != 30) edges.push_back({t - 1, t});  // 29->30 missing
  }
  const VerifyReport dense = verify_tdg(accesses, edges);
  VerifyOptions sparse_opts;
  sparse_opts.dense_limit = 0;
  const VerifyReport sparse =
      verify_tdg(accesses, edges, {}, {}, sparse_opts);
  EXPECT_EQ(dense.races_total, sparse.races_total);
  EXPECT_EQ(dense.pairs_checked, sparse.pairs_checked);
  ASSERT_EQ(dense.races_total, 1u) << dense.summary();
  EXPECT_EQ(dense.races[0].pred_id, 29u);
  EXPECT_EQ(dense.races[0].succ_id, 30u);
}

TEST(Verify, MaxReportsCapsFindingsNotTotals) {
  std::vector<AccessRecord> accesses;
  for (std::uint64_t t = 1; t <= 10; ++t) {
    accesses.push_back(acc(t, 0xB0, DependType::Out));
  }
  VerifyOptions opts;
  opts.max_reports = 2;
  const VerifyReport rep = verify_tdg(accesses, {}, {}, {}, opts);
  EXPECT_EQ(rep.races.size(), 2u);
  EXPECT_EQ(rep.races_total, 9u);  // chain of consecutive-writer pairs
  EXPECT_NE(rep.summary().find("7 more"), std::string::npos);
}

TEST(Verify, EnvModeParsing) {
  setenv("TDG_VERIFY", "off", 1);
  EXPECT_EQ(verify_env_mode(), VerifyEnvMode::Off);
  setenv("TDG_VERIFY", "post", 1);
  EXPECT_EQ(verify_env_mode(), VerifyEnvMode::Post);
  setenv("TDG_VERIFY", "strict", 1);
  EXPECT_EQ(verify_env_mode(), VerifyEnvMode::Strict);
  setenv("TDG_VERIFY", "bogus", 1);
  EXPECT_EQ(verify_env_mode(), VerifyEnvMode::Default);
  unsetenv("TDG_VERIFY");
  EXPECT_EQ(verify_env_mode(), VerifyEnvMode::Default);
}

// --- PTSG replay-safety -----------------------------------------------------

TEST(ReplaySafety, CleanRegionHasNoDrift) {
  Runtime rt(verified_config(VerifyMode::Strict, 2));
  int a = 0, b = 0;
  PersistentRegion region(rt);
  for (int it = 0; it < 4; ++it) {
    region.begin_iteration();
    rt.submit([&] { a = 1; }, {Depend::out(&a)});
    rt.submit([&] { b = a; }, {Depend::in(&a), Depend::out(&b)});
    region.end_iteration();  // strict: would throw on any drift
    EXPECT_TRUE(region.last_drift().empty());
  }
}

TEST(ReplaySafety, AddressDriftDetectedPostMode) {
  // Same task count, but one replay clause names a different address —
  // firstprivate-address drift: the cached plan no longer matches the
  // program. Post mode records findings without throwing.
  Runtime rt(verified_config(VerifyMode::Post, 1));
  int a = 0, b = 0;
  PersistentRegion region(rt);
  region.begin_iteration();
  rt.submit([&] { a = 1; }, {Depend::out(&a)});
  rt.submit([&] {}, {Depend::in(&a)});
  region.end_iteration();

  region.begin_iteration();
  rt.submit([&] { a = 1; }, {Depend::out(&a)});
  rt.submit([&] {}, {Depend::in(&b)});  // drifted address
  region.end_iteration();
  ASSERT_FALSE(region.last_drift().empty());
  EXPECT_NE(region.last_drift()[0].message.find("drift"),
            std::string::npos);
}

TEST(ReplaySafety, AddressDriftStrictThrows) {
  Runtime rt(verified_config(VerifyMode::Strict, 1));
  int a = 0, b = 0;
  PersistentRegion region(rt);
  region.begin_iteration();
  rt.submit([&] { a = 1; }, {Depend::out(&a)});
  rt.submit([&] {}, {Depend::in(&a)});
  region.end_iteration();

  region.begin_iteration();
  rt.submit([&] { a = 1; }, {Depend::out(&a)});
  rt.submit([&] {}, {Depend::in(&b)});
  EXPECT_THROW(region.end_iteration(), VerifyError);
}

TEST(ReplaySafety, DiffReportsStructuralConsequences) {
  // Unit-level: a drifted address both changes the clause and drops the
  // required ordering slot0 -> slot1; the diff reports both views.
  int a = 0, b = 0;
  ClauseStream ref, rep;
  {
    const Depend d0[] = {Depend::out(&a)};
    const Depend d1[] = {Depend::in(&a)};
    ref.add_task(d0);
    ref.add_task(d1);
  }
  {
    const Depend d0[] = {Depend::out(&a)};
    const Depend d1[] = {Depend::in(&b)};
    rep.add_task(d0);
    rep.add_task(d1);
  }
  const auto findings = diff_replay_clauses(ref, rep);
  ASSERT_GE(findings.size(), 2u);
  bool clause = false, structural = false;
  for (const ReplayDriftFinding& f : findings) {
    clause |= f.message.find("clause drift") != std::string::npos;
    structural |=
        f.message.find("drops required ordering") != std::string::npos;
  }
  EXPECT_TRUE(clause);
  EXPECT_TRUE(structural);
}

TEST(ReplaySafety, DiffReportsTaskCountDrift) {
  int a = 0;
  ClauseStream ref, rep;
  const Depend d0[] = {Depend::out(&a)};
  ref.add_task(d0);
  ref.add_task(d0);
  rep.add_task(d0);
  const auto findings = diff_replay_clauses(ref, rep);
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings[0].slot, SIZE_MAX);
  EXPECT_NE(findings[0].message.find("task count drift"),
            std::string::npos);
}

// --- depend-clause lint -----------------------------------------------------

TEST(Lint, FlagsDeadDependence) {
  const std::vector<AccessRecord> accesses = {
      acc(1, 0xD0, DependType::Out, "solo"),
      acc(1, 0xD1, DependType::In, "solo"),
      acc(2, 0xD1, DependType::In, "peer")};
  const auto findings = lint_clauses(accesses);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].kind, LintKind::DeadDependence);
  EXPECT_EQ(findings[0].addr, 0xD0u);
  EXPECT_EQ(findings[0].task_id, 1u);
  EXPECT_STREQ(lint_kind_name(findings[0].kind), "dead-dependence");
}

TEST(Lint, FlagsRedundantInout) {
  // Readers precede a final inout whose write is never consumed: `in`
  // would avoid the reader->task edges.
  const std::vector<AccessRecord> accesses = {
      acc(1, 0xE0, DependType::Out),  acc(2, 0xE0, DependType::In),
      acc(3, 0xE0, DependType::In),   acc(4, 0xE0, DependType::InOut)};
  const auto findings = lint_clauses(accesses);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].kind, LintKind::RedundantInout);
  EXPECT_EQ(findings[0].task_id, 4u);
  EXPECT_NE(findings[0].message.find("redundant inout"),
            std::string::npos);
}

TEST(Lint, ConsumedInoutIsNotRedundant) {
  const std::vector<AccessRecord> accesses = {
      acc(1, 0xE1, DependType::Out), acc(2, 0xE1, DependType::In),
      acc(3, 0xE1, DependType::InOut), acc(4, 0xE1, DependType::In)};
  EXPECT_TRUE(lint_clauses(accesses).empty());
}

TEST(Lint, FlagsSingletonInoutsetGeneration) {
  const std::vector<AccessRecord> accesses = {
      acc(1, 0xF0, DependType::Out),
      acc(2, 0xF0, DependType::InOutSet),
      acc(3, 0xF0, DependType::In)};
  const auto findings = lint_clauses(accesses);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].kind, LintKind::SingletonInoutset);
  EXPECT_EQ(findings[0].task_id, 2u);
}

TEST(Lint, WideInoutsetGenerationIsClean) {
  const std::vector<AccessRecord> accesses = {
      acc(1, 0xF1, DependType::Out),
      acc(2, 0xF1, DependType::InOutSet),
      acc(3, 0xF1, DependType::InOutSet),
      acc(4, 0xF1, DependType::In)};
  EXPECT_TRUE(lint_clauses(accesses).empty());
}

// --- DependencyMap episode statistics ---------------------------------------

TEST(EpisodeStats, ResetOnScopeClearCumulativeKept) {
  Runtime rt(verified_config());
  int x = 0;
  rt.submit([&] { x = 1; }, {Depend::out(&x)});
  rt.submit([&] { (void)x; }, {Depend::in(&x)});
  EXPECT_EQ(rt.dependency_map().episode_stats().edges_created, 1u);
  rt.taskwait();
  rt.clear_dependency_scope();
  // The episode counters describe the current discovery scope: they must
  // reset with the history they describe (pre-fix they kept growing).
  EXPECT_EQ(rt.dependency_map().episode_stats().edges_created, 0u);
  EXPECT_EQ(rt.dependency_map().episode_stats().edges_duplicate, 0u);
  EXPECT_EQ(rt.dependency_map().episode_stats().edges_pruned, 0u);
  EXPECT_EQ(rt.dependency_map().episode_stats().redirect_nodes, 0u);
  // The runtime's cumulative counters keep running across scopes.
  EXPECT_EQ(rt.stats().discovery.edges_created, 1u);
  rt.submit([&] { x = 2; }, {Depend::out(&x)});
  rt.submit([&] { (void)x; }, {Depend::in(&x)});
  EXPECT_EQ(rt.dependency_map().episode_stats().edges_created, 1u);
  EXPECT_EQ(rt.stats().discovery.edges_created, 2u);
  rt.taskwait();
}

// --- trace round-trip of the verification streams ---------------------------

std::vector<TaskRecord> verification_records() {
  static const char* kLabels[] = {"w", "r1", "r2"};
  std::vector<TaskRecord> rec;
  for (std::uint64_t i = 0; i < 3; ++i) {
    TaskRecord r;
    r.task_id = i + 1;
    r.t_create = 1000 * i;
    r.t_ready = 1000 * i + 100;
    r.t_start = 1000 * i + 500;
    r.t_end = 1000 * i + 900;
    r.thread = 0;
    r.iteration = 0;
    r.label = kLabels[i];
    rec.push_back(r);
  }
  return rec;
}

std::vector<AccessRecord> verification_accesses() {
  return {acc(1, 0xABC0, DependType::Out, "w"),
          acc(1, 0xABD0, DependType::InOutSet, "w"),
          acc(2, 0xABC0, DependType::In, "r1"),
          acc(3, 0xABC0, DependType::InOut, "r2")};
}

void expect_streams_roundtrip(const ParsedTrace& back) {
  const auto want = verification_accesses();
  ASSERT_EQ(back.accesses.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(back.accesses[i].task_id, want[i].task_id) << i;
    EXPECT_EQ(back.accesses[i].addr, want[i].addr) << i;
    EXPECT_EQ(back.accesses[i].type, want[i].type) << i;
  }
  ASSERT_EQ(back.barriers.size(), 2u);
  EXPECT_EQ(back.barriers[0], 1u);
  EXPECT_EQ(back.barriers[1], 3u);
  ASSERT_EQ(back.scope_clears.size(), 1u);
  EXPECT_EQ(back.scope_clears[0], 3u);
}

TEST(VerifyTraceRoundTrip, PerfettoCarriesVerificationStreams) {
  const auto rec = verification_records();
  const auto accesses = verification_accesses();
  const std::vector<TraceEdge> edges = {{1, 2}, {1, 3}, {2, 3}};
  const std::vector<std::uint64_t> barriers = {1, 3};
  const std::vector<std::uint64_t> scope_clears = {3};
  std::ostringstream os;
  write_perfetto(os, rec, edges, accesses, barriers, scope_clears);

  std::istringstream is(os.str());
  const ParsedTrace back = parse_perfetto(is);
  ASSERT_EQ(back.records.size(), rec.size());
  expect_streams_roundtrip(back);
  // ... and the parsed streams feed the verifier directly.
  const VerifyReport rep = verify_tdg(back.accesses, back.edges,
                                      back.barriers, back.scope_clears);
  EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST(VerifyTraceRoundTrip, TsvCarriesVerificationStreams) {
  const auto rec = verification_records();
  const auto accesses = verification_accesses();
  const std::vector<std::uint64_t> barriers = {1, 3};
  const std::vector<std::uint64_t> scope_clears = {3};
  std::ostringstream os;
  write_trace_tsv(os, rec, accesses, barriers, scope_clears);

  std::istringstream is(os.str());
  const ParsedTrace back = parse_trace_tsv(is);
  ASSERT_EQ(back.records.size(), rec.size());
  expect_streams_roundtrip(back);
}

TEST(VerifyTraceRoundTrip, LegacyEightColumnTsvStillParses) {
  std::istringstream is(
      "task_id\tthread\titeration\tlabel\tt_create_ns\tt_ready_ns"
      "\tt_start_ns\tt_end_ns\n"
      "1\t0\t0\tx\t1\t2\t3\t4\n");
  const ParsedTrace back = parse_trace_tsv(is);
  ASSERT_EQ(back.records.size(), 1u);
  EXPECT_TRUE(back.accesses.empty());
}

TEST(VerifyTraceRoundTrip, RuntimeStreamsSurviveExport) {
  // End-to-end: a verified runtime's captured streams, exported and parsed
  // back, still verify clean.
  std::vector<TaskRecord> records;
  std::vector<TraceEdge> edges;
  std::vector<AccessRecord> accesses;
  std::vector<std::uint64_t> barriers;
  std::vector<std::uint64_t> scope_clears;
  {
    Runtime rt(verified_config(VerifyMode::Post, 2));
    double a = 0, b = 0;
    rt.submit([&] { a = 1; }, {Depend::out(&a)}, {.label = "p"});
    rt.submit([&] { b = a; }, {Depend::in(&a), Depend::out(&b)},
              {.label = "c"});
    rt.taskwait();
    records = rt.profiler().merged_trace();
    edges = rt.profiler().edges();
    accesses.assign(rt.profiler().accesses().begin(),
                    rt.profiler().accesses().end());
    barriers.assign(rt.profiler().barriers().begin(),
                    rt.profiler().barriers().end());
    scope_clears.assign(rt.profiler().scope_clears().begin(),
                        rt.profiler().scope_clears().end());
  }
  ASSERT_EQ(accesses.size(), 3u);
  ASSERT_FALSE(barriers.empty());

  std::ostringstream os;
  write_perfetto(os, records, edges, accesses, barriers, scope_clears);
  std::istringstream is(os.str());
  const ParsedTrace back = parse_perfetto(is);
  EXPECT_EQ(back.accesses.size(), accesses.size());
  EXPECT_EQ(back.barriers.size(), barriers.size());
  const VerifyReport rep = verify_tdg(back.accesses, back.edges,
                                      back.barriers, back.scope_clears);
  EXPECT_TRUE(rep.ok()) << rep.summary();
}

}  // namespace
}  // namespace tdg
