// Unit tests for the metrics registry: bucketing, snapshot/delta
// semantics, the enabled flag, idempotent registration, and the runtime's
// own instrumentation counters.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "core/metrics.hpp"
#include "core/runtime.hpp"

namespace tdg {
namespace {

TEST(MetricsBucket, BucketOfIsBitWidth) {
  EXPECT_EQ(MetricsRegistry::bucket_of(0), 0u);
  EXPECT_EQ(MetricsRegistry::bucket_of(1), 1u);
  EXPECT_EQ(MetricsRegistry::bucket_of(2), 2u);
  EXPECT_EQ(MetricsRegistry::bucket_of(3), 2u);
  EXPECT_EQ(MetricsRegistry::bucket_of(4), 3u);
  EXPECT_EQ(MetricsRegistry::bucket_of(7), 3u);
  EXPECT_EQ(MetricsRegistry::bucket_of(8), 4u);
  EXPECT_EQ(MetricsRegistry::bucket_of(1023), 10u);
  EXPECT_EQ(MetricsRegistry::bucket_of(1024), 11u);
}

TEST(MetricsBucket, WideValuesClampToLastBucket) {
  EXPECT_EQ(MetricsRegistry::bucket_of(UINT64_MAX),
            MetricsRegistry::kHistBuckets - 1);
  EXPECT_EQ(MetricsRegistry::bucket_of(1ULL << 62),
            MetricsRegistry::kHistBuckets - 1);
}

TEST(MetricsRegistryTest, CounterSumsAcrossShards) {
  MetricsRegistry reg(4);
  const auto id = reg.counter("test.counter");
  reg.add(id, 1, 0);
  reg.add(id, 2, 1);
  reg.add(id, 3, 2);
  reg.add(id, 4, 3);
  reg.add(id, 5, 99);  // out-of-range shard hint folds in, never crashes
  EXPECT_EQ(reg.snapshot().value("test.counter"), 15u);
}

TEST(MetricsRegistryTest, GaugeLevelsCancelAcrossShards) {
  MetricsRegistry reg(2);
  const auto id = reg.gauge("test.gauge");
  reg.gauge_add(id, +5, 0);
  reg.gauge_add(id, -3, 1);  // matched decrement on a different shard
  const MetricsSnapshot s = reg.snapshot();
  const auto* e = s.find("test.gauge");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->level, 2);
}

TEST(MetricsRegistryTest, HistogramCountSumBuckets) {
  MetricsRegistry reg(1);
  const auto id = reg.histogram("test.hist");
  reg.observe(id, 0);
  reg.observe(id, 3);
  reg.observe(id, 3);
  reg.observe(id, 1000);
  const MetricsSnapshot s = reg.snapshot();
  const auto* e = s.find("test.hist");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind, MetricKind::Histogram);
  EXPECT_EQ(e->value, 4u);  // sample count
  EXPECT_EQ(e->sum, 1006u);
  ASSERT_EQ(e->buckets.size(), MetricsRegistry::kHistBuckets);
  EXPECT_EQ(e->buckets[0], 1u);
  EXPECT_EQ(e->buckets[2], 2u);
  EXPECT_EQ(e->buckets[10], 1u);
  EXPECT_NEAR(e->mean(), 1006.0 / 4.0, 1e-9);
}

TEST(MetricsRegistryTest, HistogramPercentilesFromLog2Buckets) {
  MetricsRegistry reg(1);
  const auto id = reg.histogram("test.pctl");
  // 100 samples of 100 ns and 1 sample of 100000 ns: the tail lives in a
  // far bucket, the bulk in [64, 128).
  for (int i = 0; i < 100; ++i) reg.observe(id, 100);
  reg.observe(id, 100000);
  const MetricsSnapshot s = reg.snapshot();
  const auto* e = s.find("test.pctl");
  ASSERT_NE(e, nullptr);
  const double p50 = e->percentile(0.50);
  const double p95 = e->percentile(0.95);
  const double p99 = e->percentile(0.99);
  // Log2 buckets promise the right bucket: within [64, 128) for the bulk.
  EXPECT_GE(p50, 64.0);
  EXPECT_LE(p50, 128.0);
  EXPECT_GE(p95, 64.0);
  EXPECT_LE(p95, 128.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // p100 lands in the tail sample's bucket [65536, 131072).
  const double p100 = e->percentile(1.0);
  EXPECT_GE(p100, 65536.0);
  EXPECT_LE(p100, 131072.0);
  // All-zero histogram: percentiles are exactly zero (bucket 0).
  const auto zid = reg.histogram("test.pctl_zero");
  reg.observe(zid, 0);
  reg.observe(zid, 0);
  const MetricsSnapshot sz = reg.snapshot();
  EXPECT_EQ(sz.find("test.pctl_zero")->percentile(0.99), 0.0);
  // Empty histogram is defined and zero.
  const auto eid = reg.histogram("test.pctl_empty");
  (void)eid;
  EXPECT_EQ(reg.snapshot().find("test.pctl_empty")->percentile(0.5), 0.0);
}

TEST(MetricsSnapshotTest, WritersEmitPercentiles) {
  MetricsRegistry reg(1);
  const auto id = reg.histogram("lat.ns");
  for (int i = 0; i < 10; ++i) reg.observe(id, 1000);
  const MetricsSnapshot s = reg.snapshot();
  std::ostringstream text, json;
  s.write_text(text);
  s.write_json(json);
  EXPECT_NE(text.str().find("p50="), std::string::npos);
  EXPECT_NE(text.str().find("p95="), std::string::npos);
  EXPECT_NE(text.str().find("p99="), std::string::npos);
  EXPECT_NE(json.str().find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.str().find("\"p99\":"), std::string::npos);
}

TEST(MetricsRegistryTest, ReadSumsOneSlotAcrossShards) {
  MetricsRegistry reg(4);
  const auto id = reg.counter("read.me");
  reg.add(id, 5, 0);
  reg.add(id, 7, 3);
  EXPECT_EQ(reg.read(id), 12u);
  EXPECT_EQ(reg.read(MetricsRegistry::Id{}), 0u);
}

TEST(MetricsRegistryTest, RegistrationIsIdempotentByName) {
  MetricsRegistry reg(1);
  const auto a = reg.counter("shared.name");
  const auto b = reg.counter("shared.name");
  EXPECT_EQ(a.slot, b.slot);
  reg.add(a);
  reg.add(b);
  EXPECT_EQ(reg.snapshot().value("shared.name"), 2u);
  EXPECT_EQ(reg.num_metrics(), 1u);
}

TEST(MetricsRegistryTest, KindMismatchOnReregistrationThrows) {
  MetricsRegistry reg(1);
  reg.counter("test.metric");
  EXPECT_THROW(reg.histogram("test.metric"), UsageError);
}

TEST(MetricsRegistryTest, DisabledRegistryDropsWrites) {
  MetricsRegistry reg(1, /*enabled=*/false);
  const auto id = reg.counter("test.counter");
  reg.add(id, 100);
  EXPECT_EQ(reg.snapshot().value("test.counter"), 0u);
  reg.set_enabled(true);
  reg.add(id, 1);
  EXPECT_EQ(reg.snapshot().value("test.counter"), 1u);
}

TEST(MetricsRegistryTest, InvalidIdIsNoOp) {
  MetricsRegistry reg(1);
  MetricsRegistry::Id invalid;
  EXPECT_FALSE(invalid.valid());
  reg.add(invalid, 7);       // must not crash
  reg.gauge_add(invalid, 7);
  reg.observe(invalid, 7);
}

TEST(MetricsRegistryTest, ConcurrentRegistrationAndWrites) {
  // Registration while writers run: preallocated shards make this safe.
  MetricsRegistry reg(4);
  const auto hot = reg.counter("hot");
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t) {
    ts.emplace_back([&reg, hot, t] {
      for (int i = 0; i < 10000; ++i) {
        reg.add(hot, 1, static_cast<unsigned>(t));
      }
      reg.counter("late." + std::to_string(t));
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(reg.snapshot().value("hot"), 40000u);
  EXPECT_EQ(reg.num_metrics(), 5u);
}

TEST(MetricsSnapshotTest, DeltaSubtractsByName) {
  MetricsRegistry reg(1);
  const auto c = reg.counter("c");
  const auto g = reg.gauge("g");
  const auto h = reg.histogram("h");
  reg.add(c, 10);
  reg.gauge_add(g, 5);
  reg.observe(h, 8);
  const MetricsSnapshot older = reg.snapshot();
  reg.add(c, 7);
  reg.gauge_add(g, -2);
  reg.observe(h, 8);
  reg.observe(h, 0);
  const MetricsSnapshot d = MetricsSnapshot::delta(reg.snapshot(), older);
  EXPECT_EQ(d.value("c"), 7u);
  const auto* ge = d.find("g");
  ASSERT_NE(ge, nullptr);
  EXPECT_EQ(ge->level, -2);
  const auto* he = d.find("h");
  ASSERT_NE(he, nullptr);
  EXPECT_EQ(he->value, 2u);
  EXPECT_EQ(he->sum, 8u);
  EXPECT_EQ(he->buckets[4], 1u);
  EXPECT_EQ(he->buckets[0], 1u);
}

TEST(MetricsSnapshotTest, DeltaKeepsMetricsAbsentFromOlder) {
  MetricsRegistry reg(1);
  const auto a = reg.counter("a");
  reg.add(a, 3);
  const MetricsSnapshot older = reg.snapshot();
  const auto b = reg.counter("b");  // registered after the baseline
  reg.add(b, 9);
  const MetricsSnapshot d = MetricsSnapshot::delta(reg.snapshot(), older);
  EXPECT_EQ(d.value("a"), 0u);
  EXPECT_EQ(d.value("b"), 9u);
}

TEST(MetricsSnapshotTest, TextAndJsonWriters) {
  MetricsRegistry reg(1);
  reg.add(reg.counter("written"), 42);
  reg.counter("zero");
  const MetricsSnapshot s = reg.snapshot();

  std::ostringstream text_all, text_nz, json;
  s.write_text(text_all);
  s.write_text(text_nz, /*nonzero_only=*/true);
  s.write_json(json);
  EXPECT_NE(text_all.str().find("written"), std::string::npos);
  EXPECT_NE(text_all.str().find("zero"), std::string::npos);
  EXPECT_NE(text_nz.str().find("written"), std::string::npos);
  EXPECT_EQ(text_nz.str().find("zero"), std::string::npos);
  EXPECT_NE(json.str().find("\"written\""), std::string::npos);
  EXPECT_NE(json.str().find("42"), std::string::npos);
}

TEST(RuntimeMetricsTest, DiscoveryAndExecutionCountersMatchWorkload) {
  Runtime rt({.num_threads = 2});
  double a = 0, b = 0;
  for (int i = 0; i < 10; ++i) {
    rt.submit([&a] { a += 1; }, {Depend::out(&a)});
    rt.submit([&a, &b] { b += a; }, {Depend::in(&a), Depend::out(&b)});
  }
  rt.taskwait();
  const MetricsSnapshot s = rt.metrics().snapshot();
  EXPECT_EQ(s.value("discovery.tasks"), 20u);
  EXPECT_EQ(s.value("exec.tasks"), 20u);
  // Each in(&a) depends on the preceding out(&a); each out(&a) and out(&b)
  // serializes with its predecessors — at least the chain edges exist.
  EXPECT_GE(s.value("discovery.edges_created"), 19u);
  EXPECT_EQ(s.value("sched.spawns"), 20u);
  const auto* depth = s.find("sched.ready_depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_EQ(depth->level, 0);  // all enqueues matched by dequeues
  const auto* body = s.find("exec.body_ns");
  ASSERT_NE(body, nullptr);
  EXPECT_EQ(body->value, 20u);
}

TEST(RuntimeMetricsTest, ConfigDisablesCollection) {
  Runtime rt({.num_threads = 1, .metrics = false});
  double x = 0;
  rt.submit([&x] { x = 1; }, {Depend::out(&x)});
  rt.taskwait();
  EXPECT_FALSE(rt.metrics().enabled());
  EXPECT_EQ(rt.metrics().snapshot().value("discovery.tasks"), 0u);
}

}  // namespace
}  // namespace tdg
