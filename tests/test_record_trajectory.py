#!/usr/bin/env python3
"""Regression tests for scripts/record_trajectory.py: validation, name
normalization, dedupe of same-commit re-runs, the record cap, corrupt-file
quarantine, and bulk-mode schema enforcement."""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir,
                      "scripts", "record_trajectory.py")


def run(args, cwd, env=None, expect_fail=False):
    full_env = dict(os.environ)
    if env:
        full_env.update(env)
    proc = subprocess.run([sys.executable, SCRIPT] + args, cwd=cwd,
                          env=full_env, capture_output=True, text=True)
    if expect_fail:
        assert proc.returncode != 0, proc.stdout + proc.stderr
    else:
        assert proc.returncode == 0, proc.stdout + proc.stderr
    return proc


def load(path):
    with open(path) as f:
        return json.load(f)


class RecordTrajectoryTest(unittest.TestCase):
    def setUp(self):
        # Run outside any git repo so git_sha is the stable "unknown".
        self.tmp = tempfile.TemporaryDirectory()
        self.cwd = self.tmp.name
        self.path = os.path.join(self.cwd, "BENCH_test.json")

    def tearDown(self):
        self.tmp.cleanup()

    def test_single_append_normalizes_name(self):
        run([self.path, "BM_Spawn", "2", "123.5"], self.cwd)
        records = load(self.path)
        self.assertEqual(len(records), 1)
        self.assertEqual(records[0]["name"], "BM_Spawn/2")
        self.assertEqual(records[0]["threads"], 2)
        self.assertEqual(records[0]["median_items_per_second"], 123.5)

    def test_rejects_bad_values(self):
        for bad in ["nan", "-1", "0", "bogus"]:
            run([self.path, "x", "1", bad], self.cwd, expect_fail=True)
        run([self.path, "x", "0", "1.0"], self.cwd, expect_fail=True)
        self.assertFalse(os.path.exists(self.path))

    def test_dedupe_keeps_latest_per_commit(self):
        # Same (name, threads, git_sha): a re-run replaces, not appends.
        run([self.path, "BM_Spawn/1", "1", "100"], self.cwd)
        run([self.path, "BM_Spawn/1", "1", "200"], self.cwd)
        run([self.path, "BM_Other/1", "1", "50"], self.cwd)
        records = load(self.path)
        self.assertEqual(len(records), 2)
        by_name = {r["name"]: r for r in records}
        self.assertEqual(by_name["BM_Spawn/1"]["median_items_per_second"],
                         200.0)

    def test_cap_drops_oldest(self):
        env = {"TRAJECTORY_CAP": "3"}
        for i in range(5):
            run([self.path, f"BM_{i}/1", "1", "10"], self.cwd, env=env)
        records = load(self.path)
        self.assertEqual([r["name"] for r in records],
                         ["BM_2/1", "BM_3/1", "BM_4/1"])

    def test_corrupt_file_is_quarantined(self):
        with open(self.path, "w") as f:
            f.write("{not json")
        run([self.path, "BM_Spawn/1", "1", "100"], self.cwd)
        self.assertEqual(len(load(self.path)), 1)
        self.assertTrue(os.path.exists(self.path + ".corrupt"))

    def test_malformed_records_are_dropped(self):
        with open(self.path, "w") as f:
            json.dump([{"name": "ok/1", "threads": 1,
                        "median_items_per_second": 5.0},
                       {"name": "missing-fields"}, 42], f)
        run([self.path, "BM_Spawn/1", "1", "100"], self.cwd)
        names = [r["name"] for r in load(self.path)]
        self.assertEqual(names, ["ok/1", "BM_Spawn/1"])

    def test_bulk_append_and_mixed_shapes_survive(self):
        src = os.path.join(self.cwd, "bulk.json")
        with open(src, "w") as f:
            json.dump([
                {"name": "metg/stencil_1d/real/opt", "threads": 2,
                 "value": 12.5, "unit": "us"},
                {"name": "taskbench/fft/sim/opt", "threads": 24,
                 "value": 5e5, "unit": "tasks_per_second"},
            ], f)
        run([self.path, "BM_Spawn/1", "1", "100"], self.cwd)
        run(["--bulk", src, self.path], self.cwd)
        records = load(self.path)
        self.assertEqual(len(records), 3)
        self.assertEqual(records[1]["unit"], "us")
        # The legacy throughput record coexists with the generalized ones.
        run(["--bulk", src, self.path], self.cwd)  # same sha: dedupes
        self.assertEqual(len(load(self.path)), 3)

    def test_bulk_rejects_malformed_source(self):
        src = os.path.join(self.cwd, "bulk.json")
        with open(src, "w") as f:
            json.dump([{"name": "x", "threads": 1, "value": 1.0}], f)  # no unit
        run(["--bulk", src, self.path], self.cwd, expect_fail=True)
        with open(src, "w") as f:
            json.dump([{"name": "x", "threads": 1, "value": float("inf"),
                        "unit": "us"}], f)
        run(["--bulk", src, self.path], self.cwd, expect_fail=True)
        with open(src, "w") as f:
            json.dump([], f)
        run(["--bulk", src, self.path], self.cwd, expect_fail=True)
        self.assertFalse(os.path.exists(self.path))


if __name__ == "__main__":
    unittest.main()
