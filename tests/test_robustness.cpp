// Robustness and edge cases across the runtime: task-body storage paths
// (inline / heap / non-trivially-copyable) under persistent replay,
// throttled persistence, iteration tagging in traces, and randomized
// persistent graphs.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "core/tdg.hpp"

namespace {

using tdg::Depend;
using tdg::PersistentRegion;
using tdg::Runtime;

TEST(TaskBody, LargeCaptureSpillsToHeapAndExecutes) {
  Runtime rt({.num_threads = 2});
  std::array<double, 64> big{};  // 512 bytes: beyond the inline buffer
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<double>(i);
  }
  double sum = 0;
  rt.submit(
      [big, &sum] {
        for (double v : big) sum += v;
      },
      {});
  rt.taskwait();
  EXPECT_EQ(sum, 63.0 * 64 / 2);
}

TEST(TaskBody, HeapCaptureReplaysWithUpdatedValues) {
  Runtime rt({.num_threads = 2});
  std::array<std::int64_t, 64> payload{};
  std::int64_t out = 0;
  PersistentRegion region(rt);
  for (int it = 0; it < 4; ++it) {
    payload.fill(it);
    region.begin_iteration();
    rt.submit(
        [payload, &out] {
          std::int64_t s = 0;
          for (auto v : payload) s += v;
          out = s;
        },
        {Depend::out(&out)});
    region.end_iteration();
    EXPECT_EQ(out, 64 * it) << "heap-stored firstprivate not updated";
  }
}

TEST(TaskBody, NonTriviallyCopyableCaptureReplays) {
  // std::string captures exercise the destroy + copy-construct replay
  // path (no memcpy shortcut).
  Runtime rt({.num_threads = 2});
  std::string result;
  PersistentRegion region(rt);
  for (int it = 0; it < 4; ++it) {
    const std::string label = "iteration-" + std::to_string(it) +
                              std::string(64, 'x');  // defeat SSO
    region.begin_iteration();
    rt.submit([label, &result] { result = label; }, {Depend::out(&result)});
    region.end_iteration();
    EXPECT_EQ(result, label);
  }
}

TEST(Persistent, WorksUnderTightTotalThrottle) {
  Runtime::Config cfg;
  cfg.num_threads = 2;
  cfg.throttle.max_total = 8;
  Runtime rt(cfg);
  constexpr int kTasks = 64;
  constexpr int kIters = 4;
  std::vector<int> hits(kTasks, 0);
  int chain = 0;
  PersistentRegion region(rt);
  for (int it = 0; it < kIters; ++it) {
    region.begin_iteration();
    for (int k = 0; k < kTasks; ++k) {
      rt.submit([&hits, k] { ++hits[static_cast<std::size_t>(k)]; },
                {Depend::inout(&chain)});
    }
    region.end_iteration();
  }
  for (int k = 0; k < kTasks; ++k) EXPECT_EQ(hits[static_cast<std::size_t>(k)], kIters);
}

TEST(Persistent, TraceRecordsCarryIterationIndex) {
  Runtime rt({.num_threads = 2, .trace = true});
  int x = 0;
  PersistentRegion region(rt);
  constexpr int kIters = 3;
  for (int it = 0; it < kIters; ++it) {
    region.begin_iteration();
    for (int k = 0; k < 5; ++k) {
      rt.submit([&x] { ++x; }, {Depend::inout(&x)}, {.label = "inc"});
    }
    region.end_iteration();
  }
  const auto trace = rt.profiler().merged_trace();
  ASSERT_EQ(trace.size(), 5u * kIters);
  std::array<int, kIters> per_iter{};
  for (const auto& rec : trace) {
    ASSERT_LT(rec.iteration, static_cast<std::uint32_t>(kIters));
    ++per_iter[rec.iteration];
  }
  for (int c : per_iter) EXPECT_EQ(c, 5);
}

TEST(Persistent, RandomGraphReplaysCorrectlyEveryIteration) {
  // A randomized layered DAG under a persistent region: every iteration
  // must recompute the same dataflow with the iteration's inputs.
  Runtime rt({.num_threads = 4});
  constexpr int kLayers = 8;
  constexpr int kWidth = 12;
  constexpr int kIters = 6;
  std::vector<std::vector<std::int64_t>> data(
      kLayers, std::vector<std::int64_t>(kWidth, 0));
  std::uint64_t seed = 777;
  auto rnd = [&seed] {
    seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<int>((seed >> 33) % kWidth);
  };
  // Fixed topology, generated once.
  std::vector<std::array<int, 2>> inputs(kLayers * kWidth);
  for (auto& in : inputs) in = {rnd(), rnd()};

  PersistentRegion region(rt);
  for (int it = 0; it < kIters; ++it) {
    region.begin_iteration();
    for (int w = 0; w < kWidth; ++w) {
      rt.submit(
          [&data, w, it] { data[0][static_cast<std::size_t>(w)] = w + it; },
          {Depend::out(&data[0][static_cast<std::size_t>(w)])});
    }
    for (int l = 1; l < kLayers; ++l) {
      for (int w = 0; w < kWidth; ++w) {
        const auto in = inputs[static_cast<std::size_t>(l * kWidth + w)];
        rt.submit(
            [&data, l, w, in] {
              data[static_cast<std::size_t>(l)][static_cast<std::size_t>(w)] =
                  data[static_cast<std::size_t>(l - 1)]
                      [static_cast<std::size_t>(in[0])] +
                  data[static_cast<std::size_t>(l - 1)]
                      [static_cast<std::size_t>(in[1])];
            },
            {Depend::in(&data[static_cast<std::size_t>(l - 1)]
                             [static_cast<std::size_t>(in[0])]),
             Depend::in(&data[static_cast<std::size_t>(l - 1)]
                             [static_cast<std::size_t>(in[1])]),
             Depend::out(&data[static_cast<std::size_t>(l)]
                              [static_cast<std::size_t>(w)])});
      }
    }
    region.end_iteration();

    // Serial recomputation must match exactly.
    std::vector<std::vector<std::int64_t>> check(
        kLayers, std::vector<std::int64_t>(kWidth, 0));
    for (int w = 0; w < kWidth; ++w) check[0][static_cast<std::size_t>(w)] = w + it;
    for (int l = 1; l < kLayers; ++l) {
      for (int w = 0; w < kWidth; ++w) {
        const auto in = inputs[static_cast<std::size_t>(l * kWidth + w)];
        check[static_cast<std::size_t>(l)][static_cast<std::size_t>(w)] =
            check[static_cast<std::size_t>(l - 1)]
                 [static_cast<std::size_t>(in[0])] +
            check[static_cast<std::size_t>(l - 1)]
                 [static_cast<std::size_t>(in[1])];
      }
    }
    EXPECT_EQ(data, check) << "iteration " << it;
  }
}

TEST(Runtime, ManySmallRegionsBackToBack) {
  // Persistent regions are per-scope; creating and destroying several in
  // one runtime must not leak state between them.
  Runtime rt({.num_threads = 2});
  int x = 0;
  for (int round = 0; round < 5; ++round) {
    PersistentRegion region(rt);
    for (int it = 0; it < 3; ++it) {
      region.begin_iteration();
      rt.submit([&x] { ++x; }, {Depend::inout(&x)});
      region.end_iteration();
    }
  }
  EXPECT_EQ(x, 15);
}

TEST(Runtime, EdgePublicationRaceRegression) {
  // Regression for the discover_edge TOCTOU: a predecessor completing
  // between edge publication and the successor's refcount increment used
  // to double-enqueue the successor (double execution, double release).
  // Tiny tasks + immediate chains maximize the window.
  for (int round = 0; round < 30; ++round) {
    Runtime rt({.num_threads = 4});
    std::vector<double> cells(16, 0.0);
    std::atomic<int> runs{0};
    for (int i = 0; i < 400; ++i) {
      const auto c = static_cast<std::size_t>(i % cells.size());
      rt.submit([&runs] { ++runs; }, {Depend::inout(&cells[c])});
    }
    rt.taskwait();
    ASSERT_EQ(runs.load(), 400) << "task executed twice or lost";
    ASSERT_EQ(rt.stats().tasks_executed, 400u);
  }
}

TEST(Runtime, RedirectLifetimeRaceRegression) {
  // Regression: an inoutset redirect node completing inline at seal time
  // must survive for the consumer edge (the map holds a reference).
  for (int round = 0; round < 50; ++round) {
    Runtime::Config cfg;
    cfg.num_threads = 2;
    cfg.throttle.max_ready = 0;  // members finish before the consumer
    Runtime rt(cfg);
    double x = 0;
    std::atomic<int> n{0};
    for (int i = 0; i < 8; ++i) {
      rt.submit([&n] { ++n; }, {Depend::inoutset(&x)});
    }
    rt.submit([&n] { ++n; }, {Depend::in(&x)});
    rt.taskwait();
    ASSERT_EQ(n.load(), 9);
  }
}

TEST(Runtime, StatsSurviveHeavyChurn) {
  Runtime rt({.num_threads = 4});
  constexpr int kTasks = 5000;
  std::atomic<int> n{0};
  for (int i = 0; i < kTasks; ++i) {
    rt.submit([&n] { ++n; }, {});
    if (i % 512 == 0) rt.taskwait();
  }
  rt.taskwait();
  EXPECT_EQ(n.load(), kTasks);
  EXPECT_EQ(rt.stats().tasks_executed, static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(rt.live_tasks(), 0u);
}

}  // namespace
