#include "core/persistent.hpp"

namespace tdg {

PersistentRegion::PersistentRegion(Runtime& rt) : rt_(rt) {
  TDG_REQUIRE(rt.region_ == nullptr,
              "nested persistent regions are not supported");
  rt_.region_ = this;
  // Replay-safety check: capture every iteration's clause stream so
  // end_iteration can diff replays against the cached discovery graph.
  rt_.verify_clauses_ = rt_.config().verify != VerifyMode::Off;
}

PersistentRegion::~PersistentRegion() {
  // Barrier without the failure rethrow: destructors must not throw, and
  // any recorded failures stay pending for the next explicit taskwait().
  try {
    rt_.drain();
  } catch (const DeadlineError& e) {
    std::fprintf(stderr,
                 "tdg: persistent region destroyed while wedged:\n%s\n",
                 e.what());
    std::abort();
  }
  rt_.discovering_persistent_ = false;
  rt_.replay_active_ = false;
  rt_.region_ = nullptr;
  rt_.verify_clauses_ = false;
  for (Task* t : tasks_) {
    // Two references die with the region: its own (record_task) and the
    // task's self-reference, which complete_task deliberately keeps on
    // persistent tasks so the descriptor survives between replays.
    t->release();
    t->release();
  }
}

void PersistentRegion::begin_iteration() {
  TDG_REQUIRE(!active_, "begin_iteration called twice without end_iteration");
  active_ = true;
  if (iterations_done_ == 0) {
    // First iteration: normal discovery, tasks marked persistent. Start
    // from a clean dependency scope so no out-of-region predecessor leaks
    // into the cached graph.
    rt_.clear_dependency_scope();
    rt_.discovering_persistent_ = true;
  } else {
    rearm_all();
    rt_.replay_active_ = true;
    replayed_ = 0;
    iter_clauses_.clear();  // fresh capture for this replay iteration
  }
  rt_.discovery_begin_ns_ = 0;  // per-iteration discovery span
  rt_.discovery_end_ns_ = 0;
}

void PersistentRegion::end_iteration() {
  TDG_REQUIRE(active_, "end_iteration without begin_iteration");
  if (iterations_done_ > 0) {
    // A replay miscount leaves un-replayed tasks holding their discovery
    // guard — the graph is wedged, not recoverable: stays a fatal check.
    TDG_CHECK(replayed_ == replayable_count_,
              "persistent region replayed a different number of tasks than "
              "it discovered");
    // Replay-safety diff (capture complete at this point): re-discover
    // this iteration's graph from its clauses and compare against the
    // discovery iteration's. Findings are raised after the barrier and
    // bookkeeping below, so the region stays consistent either way.
    if (rt_.verify_clauses_) {
      last_drift_ = diff_replay_clauses(first_clauses_, iter_clauses_);
    }
  }
  // Implicit barrier (Section 3.2): every task of iteration n completes
  // before iteration n+1 is instantiated; inter-iteration edges never
  // exist. Drain without throwing: the region's bookkeeping below must run
  // even when tasks failed, so the region stays reusable — the aggregated
  // TaskGroupError is thrown at the end of this call.
  rt_.drain();
  discovery_seconds_.push_back(rt_.stats().discovery_seconds());
  if (iterations_done_ == 0) {
    // Discovery is over: release the access history (it holds references
    // into the cached graph) and compile the flat replay plan the later
    // iterations sweep over.
    rt_.discovering_persistent_ = false;
    rt_.clear_dependency_scope();
    compile_replay_plan();
  }
  rt_.replay_active_ = false;
  rt_.madd(rt_.m_.iterations);
  ++iterations_done_;
  active_ = false;
  // Rethrow after the region state is consistent: a failed iteration's
  // tasks are re-armed by the next begin_iteration and can be replayed.
  rt_.throw_if_failed();
  if (!last_drift_.empty()) {
    std::string report = "PTSG replay drift detected:";
    for (const ReplayDriftFinding& f : last_drift_) {
      report += "\n  " + f.message;
    }
    if (rt_.config().verify == VerifyMode::Strict) {
      throw VerifyError(std::move(report));
    }
    std::fprintf(stderr, "tdg: %s\n", report.c_str());
  }
}

void PersistentRegion::record_task(Task* t) {
  t->retain();
  tasks_.push_back(t);
}

void PersistentRegion::log_clause(std::span<const Depend> deps) {
  if (!active_) return;  // submissions outside an iteration: not ours
  if (iterations_done_ == 0) {
    first_clauses_.add_task(deps);
  } else {
    iter_clauses_.add_task(deps);
  }
}

void PersistentRegion::compile_replay_plan() {
  const std::size_t n = tasks_.size();
  rearm_npred_.resize(n);
  rearm_latch_.resize(n);
  plan_tasks_.clear();
  plan_copy_dst_.clear();
  plan_copy_bytes_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    Task* t = tasks_[i];
    // Internal redirect nodes are not re-submitted by the producer, so
    // they carry no discovery guard; user tasks hold one until their
    // firstprivate block has been updated.
    rearm_npred_[i] =
        t->persistent_indegree + (t->opts.internal ? 0 : 1);
    rearm_latch_[i] = t->detach_event != nullptr ? 2 : 1;
    if (!t->opts.internal) {
      plan_tasks_.push_back(t);
      plan_copy_dst_.push_back(
          t->body.trivially_copyable() ? t->body.capture_dst() : nullptr);
      plan_copy_bytes_.push_back(
          static_cast<std::uint32_t>(t->body.capture_bytes()));
    }
  }
  replayable_count_ = plan_tasks_.size();
}

PersistentRegion::ReplayRef PersistentRegion::next_replay_slot() {
  TDG_CHECK(replayed_ < plan_tasks_.size(),
            "persistent region replayed more tasks than were discovered");
  const std::size_t i = replayed_++;
  return ReplayRef{plan_tasks_[i], plan_copy_dst_[i], plan_copy_bytes_[i]};
}

void PersistentRegion::rearm_all() {
  const std::size_t n = tasks_.size();
  for (std::size_t i = 0; i < n; ++i) {
    Task* t = tasks_[i];
    t->rearm_persistent();
    t->state.store(TaskState::Created, std::memory_order_relaxed);
    t->npredecessors.store(rearm_npred_[i], std::memory_order_relaxed);
    t->completion_latch.store(rearm_latch_[i], std::memory_order_relaxed);
    if (rearm_latch_[i] == 2) {
      t->detach_event->fulfilled_.store(false, std::memory_order_relaxed);
    }
    t->iteration = iterations_done_;
  }
  rt_.pending_.fetch_add(n, std::memory_order_relaxed);
  rt_.live_tasks_.fetch_add(n, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
}

}  // namespace tdg
