#include "core/analysis.hpp"

#include <algorithm>
#include <unordered_map>

#include "core/error.hpp"

namespace tdg {

CriticalPath critical_path(std::span<const TaskRecord> records,
                           std::span<const TraceEdge> edges) {
  CriticalPath cp;
  if (records.empty()) return cp;

  std::unordered_map<std::uint64_t, std::size_t> index;
  index.reserve(records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    index.emplace(records[i].task_id, i);
  }

  // Adjacency restricted to traced endpoints. Duplicate edges are
  // harmless for a longest-path computation (the relaxation is idempotent)
  // but would inflate indegrees symmetrically, so they can stay.
  const std::size_t n = records.size();
  std::vector<std::vector<std::uint32_t>> succs(n);
  std::vector<std::uint32_t> indegree(n, 0);
  for (const TraceEdge& e : edges) {
    auto pi = index.find(e.pred);
    auto si = index.find(e.succ);
    if (pi == index.end() || si == index.end()) continue;
    if (pi->second == si->second) continue;
    succs[pi->second].push_back(static_cast<std::uint32_t>(si->second));
    ++indegree[si->second];
  }

  auto dur = [&](std::size_t i) {
    return records[i].t_end >= records[i].t_start
               ? records[i].t_end - records[i].t_start
               : 0;
  };

  // Longest path by summed duration over a Kahn topological sweep.
  std::vector<std::uint64_t> dist(n);
  std::vector<std::int64_t> parent(n, -1);
  std::vector<std::uint32_t> frontier;
  for (std::size_t i = 0; i < n; ++i) {
    dist[i] = dur(i);
    if (indegree[i] == 0) frontier.push_back(static_cast<std::uint32_t>(i));
  }
  std::size_t visited = 0;
  while (!frontier.empty()) {
    const std::uint32_t u = frontier.back();
    frontier.pop_back();
    ++visited;
    for (std::uint32_t v : succs[u]) {
      if (dist[u] + dur(v) > dist[v]) {
        dist[v] = dist[u] + dur(v);
        parent[v] = u;
      }
      if (--indegree[v] == 0) frontier.push_back(v);
    }
  }
  TDG_REQUIRE(visited == n, "trace edge set contains a cycle");

  std::size_t best = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (dist[i] > dist[best]) best = i;
  }

  std::vector<std::size_t> path;
  for (std::int64_t i = static_cast<std::int64_t>(best); i >= 0;
       i = parent[static_cast<std::size_t>(i)]) {
    path.push_back(static_cast<std::size_t>(i));
  }
  std::reverse(path.begin(), path.end());

  std::uint64_t t_min = UINT64_MAX, t_max = 0;
  for (const TaskRecord& r : records) {
    t_min = std::min(t_min, r.t_start);
    t_max = std::max(t_max, r.t_end);
  }
  cp.span_seconds = static_cast<double>(t_max - t_min) * 1e-9;
  cp.length_seconds = static_cast<double>(dist[best]) * 1e-9;

  std::unordered_map<std::string, double> by_label;
  for (std::size_t i : path) {
    const TaskRecord& r = records[i];
    CriticalPathNode node;
    node.task_id = r.task_id;
    node.label = r.label;
    node.t_start = r.t_start;
    node.t_end = r.t_end;
    by_label[node.label] += node.seconds();
    cp.nodes.push_back(std::move(node));
  }
  cp.label_seconds.assign(by_label.begin(), by_label.end());
  std::sort(cp.label_seconds.begin(), cp.label_seconds.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return cp;
}

ParallelismProfile parallelism_profile(
    std::span<const TaskRecord> records) {
  ParallelismProfile p;
  if (records.empty()) return p;

  std::vector<std::pair<std::uint64_t, int>> ev;
  ev.reserve(records.size() * 2);
  for (const TaskRecord& r : records) {
    if (r.t_end < r.t_start) continue;
    ev.emplace_back(r.t_start, +1);
    ev.emplace_back(r.t_end, -1);
  }
  if (ev.empty()) return p;
  std::sort(ev.begin(), ev.end());

  std::uint32_t running = 0;
  std::uint64_t prev = ev.front().first;
  double weighted = 0;
  for (const auto& [t, d] : ev) {
    if (t > prev) {
      const double secs = static_cast<double>(t - prev) * 1e-9;
      if (p.seconds_at.size() <= running) {
        p.seconds_at.resize(running + 1, 0.0);
      }
      p.seconds_at[running] += secs;
      if (running > 0) p.busy_seconds += secs;
      weighted += static_cast<double>(running) * secs;
      prev = t;
    }
    if (d > 0) {
      ++running;
      p.max_concurrency = std::max(p.max_concurrency, running);
    } else {
      --running;
    }
  }
  p.span_seconds = static_cast<double>(ev.back().first - ev.front().first) *
                   1e-9;
  p.avg_concurrency =
      p.span_seconds > 0 ? weighted / p.span_seconds : 0.0;
  return p;
}

double discovery_execution_overlap(std::span<const TaskRecord> records) {
  if (records.size() < 2) return 0.0;
  std::uint64_t w_lo = UINT64_MAX, w_hi = 0;
  for (const TaskRecord& r : records) {
    w_lo = std::min(w_lo, r.t_create);
    w_hi = std::max(w_hi, r.t_create);
  }
  if (w_hi <= w_lo) return 0.0;

  // Merge execution intervals clipped to the discovery window.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> iv;
  iv.reserve(records.size());
  for (const TaskRecord& r : records) {
    const std::uint64_t lo = std::max(r.t_start, w_lo);
    const std::uint64_t hi = std::min(r.t_end, w_hi);
    if (hi > lo) iv.emplace_back(lo, hi);
  }
  if (iv.empty()) return 0.0;
  std::sort(iv.begin(), iv.end());
  std::uint64_t covered = 0, cur_lo = iv.front().first,
                cur_hi = iv.front().second;
  for (std::size_t i = 1; i < iv.size(); ++i) {
    if (iv[i].first <= cur_hi) {
      cur_hi = std::max(cur_hi, iv[i].second);
    } else {
      covered += cur_hi - cur_lo;
      cur_lo = iv[i].first;
      cur_hi = iv[i].second;
    }
  }
  covered += cur_hi - cur_lo;
  return static_cast<double>(covered) / static_cast<double>(w_hi - w_lo);
}

}  // namespace tdg
