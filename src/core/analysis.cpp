#include "core/analysis.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "core/error.hpp"

namespace tdg {

CriticalPath critical_path(std::span<const TaskRecord> records,
                           std::span<const TraceEdge> edges) {
  CriticalPath cp;
  if (records.empty()) return cp;

  std::unordered_map<std::uint64_t, std::size_t> index;
  index.reserve(records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    index.emplace(records[i].task_id, i);
  }

  // Adjacency restricted to traced endpoints. Duplicate edges are
  // harmless for a longest-path computation (the relaxation is idempotent)
  // but would inflate indegrees symmetrically, so they can stay.
  const std::size_t n = records.size();
  std::vector<std::vector<std::uint32_t>> succs(n);
  std::vector<std::uint32_t> indegree(n, 0);
  for (const TraceEdge& e : edges) {
    auto pi = index.find(e.pred);
    auto si = index.find(e.succ);
    if (pi == index.end() || si == index.end()) continue;
    if (pi->second == si->second) continue;
    succs[pi->second].push_back(static_cast<std::uint32_t>(si->second));
    ++indegree[si->second];
  }

  auto dur = [&](std::size_t i) {
    return records[i].t_end >= records[i].t_start
               ? records[i].t_end - records[i].t_start
               : 0;
  };

  // Longest path by summed duration over a Kahn topological sweep.
  std::vector<std::uint64_t> dist(n);
  std::vector<std::int64_t> parent(n, -1);
  std::vector<std::uint32_t> frontier;
  for (std::size_t i = 0; i < n; ++i) {
    dist[i] = dur(i);
    if (indegree[i] == 0) frontier.push_back(static_cast<std::uint32_t>(i));
  }
  std::size_t visited = 0;
  while (!frontier.empty()) {
    const std::uint32_t u = frontier.back();
    frontier.pop_back();
    ++visited;
    for (std::uint32_t v : succs[u]) {
      if (dist[u] + dur(v) > dist[v]) {
        dist[v] = dist[u] + dur(v);
        parent[v] = u;
      }
      if (--indegree[v] == 0) frontier.push_back(v);
    }
  }
  TDG_REQUIRE(visited == n, "trace edge set contains a cycle");

  std::size_t best = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (dist[i] > dist[best]) best = i;
  }

  std::vector<std::size_t> path;
  for (std::int64_t i = static_cast<std::int64_t>(best); i >= 0;
       i = parent[static_cast<std::size_t>(i)]) {
    path.push_back(static_cast<std::size_t>(i));
  }
  std::reverse(path.begin(), path.end());

  std::uint64_t t_min = UINT64_MAX, t_max = 0;
  for (const TaskRecord& r : records) {
    t_min = std::min(t_min, r.t_start);
    t_max = std::max(t_max, r.t_end);
  }
  cp.span_seconds = static_cast<double>(t_max - t_min) * 1e-9;
  cp.length_seconds = static_cast<double>(dist[best]) * 1e-9;

  std::unordered_map<std::string, double> by_label;
  for (std::size_t i : path) {
    const TaskRecord& r = records[i];
    CriticalPathNode node;
    node.task_id = r.task_id;
    node.label = r.label;
    node.t_start = r.t_start;
    node.t_end = r.t_end;
    node.rank = r.rank;
    by_label[node.label] += node.seconds();
    if (!cp.nodes.empty() && cp.nodes.back().rank != node.rank) {
      ++cp.comm_hops;
    }
    cp.nodes.push_back(std::move(node));
  }
  cp.label_seconds.assign(by_label.begin(), by_label.end());
  std::sort(cp.label_seconds.begin(), cp.label_seconds.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return cp;
}

ParallelismProfile parallelism_profile(
    std::span<const TaskRecord> records) {
  ParallelismProfile p;
  if (records.empty()) return p;

  std::vector<std::pair<std::uint64_t, int>> ev;
  ev.reserve(records.size() * 2);
  for (const TaskRecord& r : records) {
    if (r.t_end < r.t_start) continue;
    ev.emplace_back(r.t_start, +1);
    ev.emplace_back(r.t_end, -1);
  }
  if (ev.empty()) return p;
  std::sort(ev.begin(), ev.end());

  std::uint32_t running = 0;
  std::uint64_t prev = ev.front().first;
  double weighted = 0;
  for (const auto& [t, d] : ev) {
    if (t > prev) {
      const double secs = static_cast<double>(t - prev) * 1e-9;
      if (p.seconds_at.size() <= running) {
        p.seconds_at.resize(running + 1, 0.0);
      }
      p.seconds_at[running] += secs;
      if (running > 0) p.busy_seconds += secs;
      weighted += static_cast<double>(running) * secs;
      prev = t;
    }
    if (d > 0) {
      ++running;
      p.max_concurrency = std::max(p.max_concurrency, running);
    } else {
      --running;
    }
  }
  p.span_seconds = static_cast<double>(ev.back().first - ev.front().first) *
                   1e-9;
  p.avg_concurrency =
      p.span_seconds > 0 ? weighted / p.span_seconds : 0.0;
  return p;
}

double discovery_execution_overlap(std::span<const TaskRecord> records) {
  if (records.size() < 2) return 0.0;
  std::uint64_t w_lo = UINT64_MAX, w_hi = 0;
  for (const TaskRecord& r : records) {
    w_lo = std::min(w_lo, r.t_create);
    w_hi = std::max(w_hi, r.t_create);
  }
  if (w_hi <= w_lo) return 0.0;

  // Merge execution intervals clipped to the discovery window.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> iv;
  iv.reserve(records.size());
  for (const TaskRecord& r : records) {
    const std::uint64_t lo = std::max(r.t_start, w_lo);
    const std::uint64_t hi = std::min(r.t_end, w_hi);
    if (hi > lo) iv.emplace_back(lo, hi);
  }
  if (iv.empty()) return 0.0;
  std::sort(iv.begin(), iv.end());
  std::uint64_t covered = 0, cur_lo = iv.front().first,
                cur_hi = iv.front().second;
  for (std::size_t i = 1; i < iv.size(); ++i) {
    if (iv[i].first <= cur_hi) {
      cur_hi = std::max(cur_hi, iv[i].second);
    } else {
      covered += cur_hi - cur_lo;
      cur_lo = iv[i].first;
      cur_hi = iv[i].second;
    }
  }
  covered += cur_hi - cur_lo;
  return static_cast<double>(covered) / static_cast<double>(w_hi - w_lo);
}

std::vector<TraceEdge> message_edges(std::span<const CommRecord> comms) {
  // Match sends to receives by (src, dst, tag, seq); a pair with task
  // attribution on both sides yields one edge. seq 0 (stream sequencing
  // off) and collectives are unmatchable.
  struct Key {
    std::int32_t src, dst, tag;
    std::uint64_t seq;
    bool operator<(const Key& o) const {
      if (src != o.src) return src < o.src;
      if (dst != o.dst) return dst < o.dst;
      if (tag != o.tag) return tag < o.tag;
      return seq < o.seq;
    }
  };
  std::map<Key, std::pair<const CommRecord*, const CommRecord*>> pairs;
  for (const CommRecord& c : comms) {
    if (c.seq == 0 || c.kind == CommRecord::Kind::Collective) continue;
    const Key k = c.kind == CommRecord::Kind::Send
                      ? Key{c.self, c.peer, c.tag, c.seq}
                      : Key{c.peer, c.self, c.tag, c.seq};
    if (c.kind == CommRecord::Kind::Send) {
      pairs[k].first = &c;
    } else {
      pairs[k].second = &c;
    }
  }
  std::vector<TraceEdge> edges;
  for (const auto& [k, pr] : pairs) {
    if (pr.first == nullptr || pr.second == nullptr) continue;
    if (pr.first->task_id == 0 || pr.second->task_id == 0) continue;
    if (pr.first->task_id == pr.second->task_id) continue;
    edges.push_back(TraceEdge{pr.first->task_id, pr.second->task_id});
  }
  return edges;
}

std::vector<CommWaitEntry> comm_wait_by_label(
    std::span<const CommRecord> comms,
    std::span<const TaskRecord> records) {
  std::unordered_map<std::uint64_t, const char*> label_of;
  label_of.reserve(records.size());
  for (const TaskRecord& r : records) {
    label_of.emplace(r.task_id, r.label);
  }
  auto fallback = [](CommRecord::Kind k) {
    switch (k) {
      case CommRecord::Kind::Send: return "(send)";
      case CommRecord::Kind::Recv: return "(recv)";
      case CommRecord::Kind::Collective: return "(collective)";
    }
    return "(send)";
  };
  std::unordered_map<std::string, CommWaitEntry> by_label;
  for (const CommRecord& c : comms) {
    const char* label = fallback(c.kind);
    if (auto it = label_of.find(c.task_id);
        c.task_id != 0 && it != label_of.end() && it->second[0] != '\0') {
      label = it->second;
    }
    CommWaitEntry& e = by_label[label];
    if (e.label.empty()) e.label = label;
    ++e.ops;
    e.bytes += c.bytes;
    if (c.t_complete > c.t_post) {
      e.wait_seconds +=
          static_cast<double>(c.t_complete - c.t_post) * 1e-9;
    }
  }
  std::vector<CommWaitEntry> out;
  out.reserve(by_label.size());
  for (auto& [label, e] : by_label) out.push_back(std::move(e));
  std::sort(out.begin(), out.end(),
            [](const CommWaitEntry& a, const CommWaitEntry& b) {
              return a.wait_seconds > b.wait_seconds;
            });
  return out;
}

std::vector<RankOverlap> rank_overlap_matrix(
    std::span<const TaskRecord> records,
    std::span<const CommRecord> comms) {
  std::map<std::int32_t, std::vector<TaskRecord>> by_rank;
  for (const TaskRecord& r : records) by_rank[r.rank].push_back(r);
  std::map<std::int32_t, double> comm_wait;
  for (const CommRecord& c : comms) {
    if (c.kind == CommRecord::Kind::Send) continue;
    if (c.t_complete > c.t_post) {
      comm_wait[c.self] +=
          static_cast<double>(c.t_complete - c.t_post) * 1e-9;
    }
    by_rank[c.self];  // a rank that only communicated still gets a row
  }
  std::vector<RankOverlap> out;
  out.reserve(by_rank.size());
  for (const auto& [rank, recs] : by_rank) {
    RankOverlap row;
    row.rank = rank;
    row.tasks = recs.size();
    row.overlap = discovery_execution_overlap(recs);
    const ParallelismProfile p = parallelism_profile(recs);
    row.span_seconds = p.span_seconds;
    row.busy_seconds = p.busy_seconds;
    if (auto it = comm_wait.find(rank); it != comm_wait.end()) {
      row.comm_wait_seconds = it->second;
    }
    out.push_back(row);
  }
  return out;
}

}  // namespace tdg
