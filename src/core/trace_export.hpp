// Trace export/import for the profiler's TaskRecord stream.
//
// The primary format is the Chrome/Perfetto trace-event JSON format
// (https://ui.perfetto.dev loads it directly): one track per thread, one
// "X" (complete) slice per executed task with id/iteration/latency args,
// flow arrows ("s"/"f" pairs) along discovered dependence edges, and a
// counter track of the number of concurrently-running tasks. A lossless
// extended TSV is also provided for spreadsheet-style consumers, superset
// of the Fig. 8 Gantt TSV.
//
// Both formats can be parsed back (tests round-trip them; the tdg-trace
// CLI and the post-mortem analysis in core/analysis.hpp consume the
// result), so every emitted trace is also an analysis input.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "core/profiler.hpp"

namespace tdg {

/// `TDG_TRACE` environment switch.
enum class TraceMode : std::uint8_t { Off, Tsv, Perfetto };

struct TraceEnvConfig {
  TraceMode mode = TraceMode::Off;
  /// Output path from `TDG_TRACE_FILE`; empty = auto ("tdg_trace.json" /
  /// "tdg_trace.tsv", suffixed with a sequence number for later runtimes
  /// in the same process).
  std::string path;
};

/// Parse TDG_TRACE (perfetto | tsv | off, default off) and TDG_TRACE_FILE.
TraceEnvConfig trace_env_config();

struct PerfettoOptions {
  /// Base process-id track. Each task slice lands on pid + record.rank and
  /// each comm slice on its recording rank, so a single-rank runtime sets
  /// pid to its rank (records carry rank 0) while the merged multi-rank
  /// timeline keeps pid 0 and per-record ranks.
  int pid = 0;
  const char* process_name = "tdg";
  bool flows = true;          ///< emit flow arrows along dependence edges
  bool counter_track = true;  ///< emit the running-task counter track
};

/// Write records (+ optional dependence edges) as trace-event JSON.
/// Timestamps are normalized to the earliest record and expressed in
/// microseconds, as the format requires.
///
/// The verification streams ride along when provided: each task's depend
/// clause is encoded as an `"accesses"` arg on its first slice
/// ("in:<hex>;out:<hex>;..."), and taskwait barriers / dependency-scope
/// clears become instant events carrying the cutoff task id. A trace
/// written with them can be re-verified offline (`tdg-trace verify`).
///
/// Comm records become "X" slices (cat "comm") on a dedicated per-rank
/// track; matched send/recv pairs — same (src, dst, tag, seq) — add
/// "s"/"f" flow pairs (cat "msg"), the arrows between rank tracks in the
/// Perfetto UI.
void write_perfetto(std::ostream& os, std::span<const TaskRecord> records,
                    std::span<const TraceEdge> edges = {},
                    std::span<const AccessRecord> accesses = {},
                    std::span<const std::uint64_t> barriers = {},
                    std::span<const std::uint64_t> scope_clears = {},
                    std::span<const CommRecord> comms = {},
                    const PerfettoOptions& opts = {});

/// Write the extended TSV: one header line, one row per record with
/// task_id/thread/iteration/label, all four absolute ns timestamps, the
/// task's encoded depend clause in an `accesses` column, and the record's
/// rank. Barrier / scope-clear cutoffs are `#barrier <id>` / `#scope <id>`
/// comment lines (tab-separated) after the header; comm records are
/// `#comm` lines with all fields in absolute ns (lossless round-trip).
void write_trace_tsv(std::ostream& os, std::span<const TaskRecord> records,
                     std::span<const AccessRecord> accesses = {},
                     std::span<const std::uint64_t> barriers = {},
                     std::span<const std::uint64_t> scope_clears = {},
                     std::span<const CommRecord> comms = {});

/// A parsed trace. Owns the label storage the records point into (the
/// pool is a deque so grown entries never relocate).
struct ParsedTrace {
  std::vector<TaskRecord> records;  ///< sorted by t_start
  std::vector<TraceEdge> edges;
  /// Depend-clause stream in submission order (task_id ascending, clause
  /// order preserved within a task); labels point into label_pool.
  std::vector<AccessRecord> accesses;
  std::vector<std::uint64_t> barriers;      ///< taskwait cutoffs, sorted
  std::vector<std::uint64_t> scope_clears;  ///< scope-clear cutoffs, sorted
  std::vector<CommRecord> comms;            ///< sorted by t_post
  std::deque<std::string> label_pool;
};

/// Parse trace-event JSON produced by write_perfetto (accepts both the
/// {"traceEvents": [...]} object form and a bare event array). Throws
/// tdg::UsageError on malformed input — the round-trip tests use this as
/// the well-formedness check.
ParsedTrace parse_perfetto(std::istream& is);

/// Parse the extended TSV of write_trace_tsv.
ParsedTrace parse_trace_tsv(std::istream& is);

/// Parse either format, sniffing the first non-whitespace byte ('{' or
/// '[' selects JSON).
ParsedTrace parse_trace(std::istream& is);

}  // namespace tdg
