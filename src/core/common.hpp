// Common low-level utilities shared by the tdg runtime.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace tdg {

/// Monotonic wall-clock in seconds (equivalent of omp_get_wtime).
inline double now_seconds() {
  using namespace std::chrono;
  return duration<double>(steady_clock::now().time_since_epoch()).count();
}

/// Monotonic wall-clock in nanoseconds.
inline std::uint64_t now_ns() {
  using namespace std::chrono;
  return static_cast<std::uint64_t>(
      duration_cast<nanoseconds>(steady_clock::now().time_since_epoch())
          .count());
}

/// Test-and-set spin lock. Used to guard tiny critical sections
/// (per-task successor lists); never held across user code.
class SpinLock {
 public:
  void lock() noexcept {
    while (flag_.test_and_set(std::memory_order_acquire)) {
      while (flag_.test(std::memory_order_relaxed)) cpu_relax();
    }
  }
  bool try_lock() noexcept {
    return !flag_.test_and_set(std::memory_order_acquire);
  }
  void unlock() noexcept { flag_.clear(std::memory_order_release); }

  static void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::this_thread::yield();
#endif
  }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

/// RAII guard for SpinLock.
class SpinGuard {
 public:
  explicit SpinGuard(SpinLock& l) noexcept : lock_(l) { lock_.lock(); }
  ~SpinGuard() { lock_.unlock(); }
  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  SpinLock& lock_;
};

/// Spin-then-yield-then-sleep ladder for blocking waits that must keep
/// polling (taskwait drains, throttling stalls, worker idle loops). The
/// first stage burns a few pause instructions (a task usually shows up
/// within nanoseconds on a busy graph), the second yields the core, and
/// the tail sleeps in exponentially-growing quanta capped at kMaxSleepUs —
/// bounded so MPI polling hooks and deferred-retry deadlines are still
/// serviced promptly. Workers use should_park() to switch from the ladder
/// to condition-variable parking instead of the sleep tail.
class Backoff {
 public:
  static constexpr int kSpin = 32;       ///< stage 1: cpu_relax probes
  static constexpr int kYield = 8;       ///< stage 2: sched_yield probes
  static constexpr std::int64_t kMaxSleepUs = 64;  ///< stage 3 cap

  /// One failed probe: escalate and stall accordingly.
  void pause() noexcept {
    ++n_;
    if (n_ <= kSpin) {
      SpinLock::cpu_relax();
    } else if (n_ <= kSpin + kYield) {
      std::this_thread::yield();
    } else {
      const int over = n_ - kSpin - kYield;
      const std::int64_t us =
          over < 7 ? (std::int64_t{1} << over) : kMaxSleepUs;
      std::this_thread::sleep_for(std::chrono::microseconds(us));
    }
  }
  /// True once the spin and yield stages are exhausted (worker loops park
  /// on a condition variable instead of entering the sleep tail).
  bool should_park() const noexcept { return n_ >= kSpin + kYield; }
  /// Work was found: restart the ladder from the spin stage.
  void reset() noexcept { n_ = 0; }

 private:
  int n_ = 0;
};

/// Fatal invariant failure. TDG_CHECK is reserved for conditions whose
/// violation means runtime state is corrupt (protocol bugs, wedged
/// refcounts): recovery is impossible, so we abort without unwinding.
/// Recoverable API misuse uses TDG_REQUIRE (core/error.hpp), which throws
/// tdg::UsageError and leaves the runtime usable.
[[noreturn]] inline void fatal(const char* file, int line, const char* msg) {
  std::fprintf(stderr, "tdg fatal: %s:%d: %s\n", file, line, msg);
  std::abort();
}

#define TDG_CHECK(cond, msg)                              \
  do {                                                    \
    if (!(cond)) ::tdg::fatal(__FILE__, __LINE__, (msg)); \
  } while (0)

#ifdef NDEBUG
#define TDG_DCHECK(cond, msg) ((void)0)
#else
#define TDG_DCHECK(cond, msg) TDG_CHECK(cond, msg)
#endif

/// Cache-line size used for padding hot atomics.
inline constexpr std::size_t kCacheLine = 64;

}  // namespace tdg
