// Common low-level utilities shared by the tdg runtime.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <thread>
#include <type_traits>

namespace tdg {

/// Monotonic wall-clock in seconds (equivalent of omp_get_wtime).
inline double now_seconds() {
  using namespace std::chrono;
  return duration<double>(steady_clock::now().time_since_epoch()).count();
}

/// Monotonic wall-clock in nanoseconds.
inline std::uint64_t now_ns() {
  using namespace std::chrono;
  return static_cast<std::uint64_t>(
      duration_cast<nanoseconds>(steady_clock::now().time_since_epoch())
          .count());
}

/// Test-and-set spin lock. Used to guard tiny critical sections
/// (per-task successor lists); never held across user code.
class SpinLock {
 public:
  /// Spins are bounded before yielding the core: when threads outnumber
  /// cores (producer + worker on one CPU), a holder preempted inside the
  /// critical section would otherwise cost the spinner its entire
  /// scheduling quantum — milliseconds burned guarding a nanosecond
  /// section, the dominant term of discovery throughput on small machines.
  static constexpr int kSpinsBeforeYield = 128;

  void lock() noexcept {
    int spins = 0;
    while (flag_.test_and_set(std::memory_order_acquire)) {
      while (flag_.test(std::memory_order_relaxed)) {
        if (++spins < kSpinsBeforeYield) {
          cpu_relax();
        } else {
          std::this_thread::yield();
          spins = 0;
        }
      }
    }
  }
  bool try_lock() noexcept {
    return !flag_.test_and_set(std::memory_order_acquire);
  }
  void unlock() noexcept { flag_.clear(std::memory_order_release); }

  static void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::this_thread::yield();
#endif
  }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

/// RAII guard for SpinLock.
class SpinGuard {
 public:
  explicit SpinGuard(SpinLock& l) noexcept : lock_(l) { lock_.lock(); }
  ~SpinGuard() { lock_.unlock(); }
  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  SpinLock& lock_;
};

/// Spin-then-yield-then-sleep ladder for blocking waits that must keep
/// polling (taskwait drains, throttling stalls, worker idle loops). The
/// first stage burns a few pause instructions (a task usually shows up
/// within nanoseconds on a busy graph), the second yields the core, and
/// the tail sleeps in exponentially-growing quanta capped at kMaxSleepUs —
/// bounded so MPI polling hooks and deferred-retry deadlines are still
/// serviced promptly. Workers use should_park() to switch from the ladder
/// to condition-variable parking instead of the sleep tail.
class Backoff {
 public:
  static constexpr int kSpin = 32;       ///< stage 1: cpu_relax probes
  static constexpr int kYield = 8;       ///< stage 2: sched_yield probes
  static constexpr std::int64_t kMaxSleepUs = 64;  ///< stage 3 cap

  /// One failed probe: escalate and stall accordingly.
  void pause() noexcept {
    ++n_;
    if (n_ <= kSpin) {
      SpinLock::cpu_relax();
    } else if (n_ <= kSpin + kYield) {
      std::this_thread::yield();
    } else {
      const int over = n_ - kSpin - kYield;
      const std::int64_t us =
          over < 7 ? (std::int64_t{1} << over) : kMaxSleepUs;
      std::this_thread::sleep_for(std::chrono::microseconds(us));
    }
  }
  /// True once the spin and yield stages are exhausted (worker loops park
  /// on a condition variable instead of entering the sleep tail).
  bool should_park() const noexcept { return n_ >= kSpin + kYield; }
  /// Work was found: restart the ladder from the spin stage.
  void reset() noexcept { n_ = 0; }

 private:
  int n_ = 0;
};

/// Fatal invariant failure. TDG_CHECK is reserved for conditions whose
/// violation means runtime state is corrupt (protocol bugs, wedged
/// refcounts): recovery is impossible, so we abort without unwinding.
/// Recoverable API misuse uses TDG_REQUIRE (core/error.hpp), which throws
/// tdg::UsageError and leaves the runtime usable.
[[noreturn]] inline void fatal(const char* file, int line, const char* msg) {
  std::fprintf(stderr, "tdg fatal: %s:%d: %s\n", file, line, msg);
  std::abort();
}

#define TDG_CHECK(cond, msg)                              \
  do {                                                    \
    if (!(cond)) ::tdg::fatal(__FILE__, __LINE__, (msg)); \
  } while (0)

#ifdef NDEBUG
#define TDG_DCHECK(cond, msg) ((void)0)
#else
#define TDG_DCHECK(cond, msg) TDG_CHECK(cond, msg)
#endif

/// Cache-line size used for padding hot atomics.
inline constexpr std::size_t kCacheLine = 64;

/// Inline-first vector for the discovery/graph hot paths: the first N
/// elements live inside the object (no heap traffic for the common case —
/// a task's few successors, an address's last writer and readers), and
/// larger sets spill to a geometrically-grown heap buffer. Restricted to
/// trivially-copyable element types so growth is a memcpy, destruction is
/// free, and push_back never throws between a retain() and its recording
/// (the refcount discipline of DependencyMap/Task depends on that).
///
/// Layout: the heap pointer and the inline storage share a union, with
/// `cap_ > N` discriminating — 8 bytes of header instead of a separate
/// data pointer. Task descriptors are slab-allocated in cache-line-rounded
/// blocks, so those 8 bytes are the difference between sizeof(Task)
/// staying in its pre-refactor block size and every task growing a line.
template <class T, std::size_t N>
class small_vector {
  static_assert(std::is_trivially_copyable_v<T>,
                "small_vector is restricted to trivially-copyable types");
  static_assert(N > 0, "small_vector needs a nonzero inline capacity");

 public:
  static constexpr std::size_t kInlineCapacity = N;

  small_vector() noexcept {}
  small_vector(const small_vector& o) { assign(o); }
  small_vector(small_vector&& o) noexcept { steal(std::move(o)); }
  small_vector& operator=(const small_vector& o) {
    if (this != &o) {
      size_ = 0;
      assign(o);
    }
    return *this;
  }
  small_vector& operator=(small_vector&& o) noexcept {
    if (this != &o) {
      release_heap();
      steal(std::move(o));
    }
    return *this;
  }
  ~small_vector() { release_heap(); }

  void push_back(const T& v) {
    if (size_ == cap_) grow(cap_ * 2);
    data()[size_++] = v;
  }
  /// Drop the elements but keep the current (possibly spilled) capacity:
  /// access-history entries churn through clear/refill cycles, and
  /// re-spilling every generation would defeat the inline layout.
  void clear() noexcept { size_ = 0; }

  T* begin() noexcept { return data(); }
  T* end() noexcept { return data() + size_; }
  const T* begin() const noexcept { return data(); }
  const T* end() const noexcept { return data() + size_; }
  T& operator[](std::size_t i) noexcept { return data()[i]; }
  const T& operator[](std::size_t i) const noexcept { return data()[i]; }
  T* data() noexcept { return spilled() ? heap_ : inline_ptr(); }
  const T* data() const noexcept {
    return spilled() ? heap_ : inline_ptr();
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t capacity() const noexcept { return cap_; }
  /// True once the elements live on the heap instead of inline storage.
  bool spilled() const noexcept { return cap_ > N; }

  void swap(small_vector& o) noexcept {
    small_vector tmp(std::move(o));
    o.steal_after_release(std::move(*this));
    steal_after_release(std::move(tmp));
  }
  friend void swap(small_vector& a, small_vector& b) noexcept { a.swap(b); }

 private:
  T* inline_ptr() noexcept { return reinterpret_cast<T*>(inline_); }
  const T* inline_ptr() const noexcept {
    return reinterpret_cast<const T*>(inline_);
  }

  void grow(std::size_t new_cap) {
    T* heap = static_cast<T*>(
        ::operator new(new_cap * sizeof(T), std::align_val_t{alignof(T)}));
    std::memcpy(static_cast<void*>(heap), data(), size_ * sizeof(T));
    release_heap();
    heap_ = heap;
    cap_ = static_cast<std::uint32_t>(new_cap);
  }

  void assign(const small_vector& o) {
    if (o.size_ > cap_) grow(o.size_);
    std::memcpy(static_cast<void*>(data()), o.data(), o.size_ * sizeof(T));
    size_ = o.size_;
  }

  /// Take o's contents; own heap buffer (if any) must already be released.
  void steal(small_vector&& o) noexcept {
    if (o.spilled()) {
      heap_ = o.heap_;
      cap_ = o.cap_;
      size_ = o.size_;
      o.cap_ = N;
    } else {
      cap_ = N;
      size_ = o.size_;
      // Whole-buffer copy, not o.size_ * sizeof(T): the fixed size lets
      // the compiler inline the copy as a few wide moves instead of a
      // libc memcpy call — this runs on every task completion (the
      // successor-list snapshot is a move).
      std::memcpy(inline_, o.inline_, sizeof(inline_));
    }
    o.size_ = 0;
  }
  void steal_after_release(small_vector&& o) noexcept {
    release_heap();
    steal(std::move(o));
  }

  void release_heap() noexcept {
    if (spilled()) {
      ::operator delete(heap_, std::align_val_t{alignof(T)});
      cap_ = N;
    }
  }

  std::uint32_t size_ = 0;
  std::uint32_t cap_ = N;
  union {
    T* heap_;
    alignas(T) unsigned char inline_[N * sizeof(T)];
  };
};

}  // namespace tdg
