#include "core/worker_pool.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>

#include "core/runtime.hpp"
#include "core/task.hpp"

namespace tdg {

thread_local WorkerPool* WorkerPool::tls_pool = nullptr;
thread_local unsigned WorkerPool::tls_pool_slot = 0;

namespace {
unsigned resolve_workers(unsigned n) {
  if (n != WorkerPool::kAutoWorkers) return n;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  return hw - 1;  // the tenants' producer threads supply the rest
}

unsigned clamp_tenants(unsigned n) {
  if (n == 0) n = 1;
  return std::min(n, WorkerPool::kMaxTenantCap);
}
}  // namespace

WorkerPool::WorkerPool(Config cfg) : WorkerPool(cfg, nullptr) {}

WorkerPool::WorkerPool(Config cfg, Runtime* solo)
    : cfg_(cfg),
      solo_(solo),
      arena_(sizeof(Task), clamp_tenants(cfg.max_tenants)),
      tenants_(clamp_tenants(cfg.max_tenants)) {
  cfg_.max_tenants = static_cast<unsigned>(tenants_.size());
  cfg_.num_workers = resolve_workers(cfg_.num_workers);
  metrics_dump_ = metrics_env_mode() == MetricsEnvMode::Dump;
  const unsigned nw = cfg_.num_workers;
  deques_.reserve(nw);
  for (unsigned i = 0; i < nw; ++i) {
    deques_.push_back(std::make_unique<WorkDeque>());
  }
  rng_ = std::vector<Rng>(nw);
  for (unsigned i = 0; i < nw; ++i) {
    // Worker i occupies what used to be runtime slot i+1; seed the same
    // xorshift stream the pre-pool runtime used for that slot.
    rng_[i].s.store(0x9e3779b97f4a7c15ull * (i + 2) + 1,
                    std::memory_order_relaxed);
  }
  workers_.reserve(nw);
  for (unsigned i = 0; i < nw; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

WorkerPool::~WorkerPool() {
  TDG_CHECK(tenant_count_.load(std::memory_order_acquire) == 0,
            "WorkerPool destroyed with tenants still attached");
  shutdown_.store(true, std::memory_order_release);
  {
    // Serialize with a worker between its shutdown re-check and its cv
    // wait, then wake the whole team for the join.
    std::lock_guard<std::mutex> g(park_mu_);
  }
  park_cv_.notify_all();
  for (auto& w : workers_) w.join();
  if (metrics_dump_ && aggregate_any_ && solo_ == nullptr) {
    std::string text;
    {
      std::ostringstream os;
      aggregate_.write_text(os, /*nonzero_only=*/true);
      text = os.str();
    }
    std::fprintf(stderr, "tdg: pool aggregate metrics at teardown:\n%s",
                 text.c_str());
  }
}

// ---------------------------------------------------------------------------
// Tenant lifecycle
// ---------------------------------------------------------------------------

unsigned WorkerPool::attach(Runtime* rt, const TenantOptions& opts) {
  SpinGuard g(tenants_lock_);
  unsigned id = static_cast<unsigned>(tenants_.size());
  for (unsigned i = 0; i < tenants_.size(); ++i) {
    // Acquire on both: everything the detacher and the last pinned
    // workers did to this slot (wd_token read, vruntime charge) must
    // happen-before the re-initialization below overwrites it.
    if (tenants_[i].rt.load(std::memory_order_acquire) == nullptr &&
        tenants_[i].pins.load(std::memory_order_acquire) == 0) {
      id = i;
      break;
    }
  }
  TDG_REQUIRE(id < tenants_.size(),
              "WorkerPool: tenant capacity exhausted (raise "
              "Config::max_tenants)");
  TenantSlot& slot = tenants_[id];
  slot.weight.store(std::max(1u, opts.weight),
                    std::memory_order_relaxed);
  // A newcomer starts at the minimum vruntime of the active tenants: it is
  // immediately the preferred victim (it has been served least) without
  // being owed the pool's entire service history.
  std::uint64_t vmin = UINT64_MAX;
  for (const TenantSlot& s : tenants_) {
    if (s.rt.load(std::memory_order_relaxed) != nullptr) {
      vmin = std::min(vmin, s.vruntime.load(std::memory_order_relaxed));
    }
  }
  slot.vruntime.store(vmin == UINT64_MAX ? 0 : vmin,
                      std::memory_order_relaxed);
  slot.served.store(0, std::memory_order_relaxed);
  // Per-tenant hang isolation: the pool state is appended to this tenant's
  // OWN watchdog report — a wedged tenant trips its own deadline with the
  // pool context attached, without flagging (or being masked by) siblings.
  // Solo runtimes keep the unlabelled report text they have always emitted.
  if (solo_ == nullptr) {
    rt->watchdog_.set_name("tenant " + std::to_string(id));
  }
  slot.wd_token = rt->watchdog_.add_diagnostic(
      [this](std::string& out) { diagnostic(out); });
  if (rt->timed_) timed_tenants_.fetch_add(1, std::memory_order_relaxed);
  slot.rt.store(rt, std::memory_order_seq_cst);
  const unsigned hi = tenant_high_.load(std::memory_order_relaxed);
  if (id + 1 > hi) tenant_high_.store(id + 1, std::memory_order_release);
  tenant_count_.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void WorkerPool::detach(unsigned id) {
  if (id >= tenants_.size()) return;
  TenantSlot& slot = tenants_[id];
  Runtime* rt = slot.rt.load(std::memory_order_relaxed);
  if (rt == nullptr) return;
  rt->watchdog_.remove_diagnostic(slot.wd_token);
  // Publish the vacancy, then wait out every worker still inside its
  // pinned window: either the worker's seq_cst rt load sees the nullptr,
  // or this seq_cst pins load sees the worker's increment.
  slot.rt.store(nullptr, std::memory_order_seq_cst);
  Backoff bo;
  while (slot.pins.load(std::memory_order_seq_cst) != 0) bo.pause();
  if (solo_ == nullptr && rt->metrics_->enabled()) {
    fold_aggregate(rt->metrics_->snapshot());
  }
  if (rt->timed_) timed_tenants_.fetch_sub(1, std::memory_order_relaxed);
  tenant_count_.fetch_sub(1, std::memory_order_relaxed);
}

void WorkerPool::fold_aggregate(const MetricsSnapshot& snap) {
  SpinGuard g(agg_lock_);
  if (!aggregate_any_) {
    aggregate_ = snap;
    aggregate_any_ = true;
  } else {
    aggregate_ = MetricsSnapshot::merge(aggregate_, snap);
  }
}

// ---------------------------------------------------------------------------
// Work publication
// ---------------------------------------------------------------------------

void WorkerPool::push_local(Task* t) {
  TDG_DCHECK(on_pool_worker(), "push_local from a non-pool thread");
  deques_[tls_pool_slot]->push_front(t);
}

void WorkerPool::wake_workers(std::size_t n, Runtime* waker) {
  if (n == 0) return;
  // One seq_cst load on the hot publish path; the mutex is only touched
  // when somebody is actually parked. Taking and dropping park_mu_ before
  // notifying closes the race against a worker that passed its re-check
  // but has not yet entered cv.wait (it holds the mutex for that window).
  if (parked_.load(std::memory_order_seq_cst) == 0) return;
  { std::lock_guard<std::mutex> g(park_mu_); }
  if (n == 1) {
    park_cv_.notify_one();
  } else {
    park_cv_.notify_all();
  }
  wakeups_.fetch_add(1, std::memory_order_relaxed);
  if (waker != nullptr) waker->madd(waker->m_.wakeups);
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

unsigned WorkerPool::rng_next(std::atomic<std::uint64_t>& state, unsigned n) {
  std::uint64_t x = state.load(std::memory_order_relaxed);
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  state.store(x, std::memory_order_relaxed);
  return static_cast<unsigned>(x % n);
}

Task* WorkerPool::poll_tenant(Runtime* r, bool& stole, bool& deferred) {
  Task* t = r->shard_.steal();
  if (t != nullptr) {
    stole = true;
    return t;
  }
  t = r->pop_inject();
  if (t != nullptr) return t;
  if (r->next_deferred_ns_.load(std::memory_order_relaxed) != UINT64_MAX) {
    t = r->take_due_deferred();
    if (t != nullptr) {
      deferred = true;
      return t;
    }
  }
  return nullptr;
}

Task* WorkerPool::take_tenant_work(unsigned slot, Runtime*& owner,
                                   bool& stole, bool& deferred) {
  (void)slot;
  const unsigned hi = std::min<unsigned>(
      tenant_high_.load(std::memory_order_acquire),
      static_cast<unsigned>(tenants_.size()));
  if (hi == 0) return nullptr;
  // Weighted-fair scan: probe tenants in ascending-vruntime order, so the
  // least-served (per weight) tenant with backlog is preferred. The racy
  // vruntime reads only affect probe ORDER; every attached tenant is
  // probed at most once per scan (64-bit visited mask).
  std::uint64_t visited = 0;
  for (;;) {
    unsigned best = hi;
    std::uint64_t bestv = UINT64_MAX;
    for (unsigned i = 0; i < hi; ++i) {
      if ((visited >> i) & 1u) continue;
      TenantSlot& ts = tenants_[i];
      if (ts.rt.load(std::memory_order_relaxed) == nullptr) {
        visited |= 1ull << i;
        continue;
      }
      const std::uint64_t v = ts.vruntime.load(std::memory_order_relaxed);
      if (v <= bestv) {
        bestv = v;
        best = i;
      }
    }
    if (best >= hi) return nullptr;
    visited |= 1ull << best;
    TenantSlot& ts = tenants_[best];
    // Pin protocol (Dekker with detach): pin BEFORE loading rt, both
    // seq_cst. A non-null load means the detacher has not yet passed its
    // pins==0 spin, so the runtime stays alive for this probe. The unpin
    // is a release so the detacher's pins==0 observation orders every
    // probe-side read before the teardown that follows it. Executing the
    // task after unpinning is safe without the pin: a popped task is
    // pending, and its owner's destructor drains pending work before it
    // can detach (try_execute_one re-pins around the execution so the
    // post-completion epilogue cannot outlive the tenant either).
    ts.pins.fetch_add(1, std::memory_order_seq_cst);
    Runtime* r = ts.rt.load(std::memory_order_seq_cst);
    Task* t = r != nullptr ? poll_tenant(r, stole, deferred) : nullptr;
    ts.pins.fetch_sub(1, std::memory_order_release);
    if (t != nullptr) {
      owner = r;
      return t;
    }
  }
}

Task* WorkerPool::steal_for(Runtime* self, std::atomic<std::uint64_t>& rng) {
  const unsigned n = static_cast<unsigned>(deques_.size());
  if (n == 0) return nullptr;
  const unsigned start = n > 1 ? rng_next(rng, n) : 0;
  for (unsigned k = 0; k < n; ++k) {
    WorkDeque& dq = *deques_[(start + k) % n];
    for (;;) {
      Task* t = dq.steal();
      if (t == nullptr) break;
      if (t->owner() == self) return t;
      // Tenant isolation: a self-helping producer never executes another
      // tenant's task. Hand it back through the owner's inject queue (it
      // stays findable by the fair scan) and keep probing this deque.
      foreign_reroutes_.fetch_add(1, std::memory_order_relaxed);
      t->owner()->push_inject(t);
      wake_workers(1, nullptr);
    }
  }
  return nullptr;
}

void WorkerPool::note_served(unsigned id) {
  if (id >= tenants_.size()) return;
  TenantSlot& ts = tenants_[id];
  ts.served.fetch_add(1, std::memory_order_relaxed);
  ts.vruntime.fetch_add(
      kVrUnit / std::max(1u, ts.weight.load(std::memory_order_relaxed)),
      std::memory_order_relaxed);
}

bool WorkerPool::try_execute_one(unsigned slot) {
  Runtime* const s = solo_;
  // The probe-overhead clock reads are only paid when some attached tenant
  // consumes them (metrics or tracing enabled).
  const bool timed = timed_tenants_.load(std::memory_order_relaxed) > 0;
  const std::uint64_t t0 = timed ? now_ns() : 0;
  // Attribution sample, taken once up front: reading it after the failed
  // probes would flip genuine idle time into "overhead + steal failure"
  // whenever a task was enqueued and taken elsewhere mid-scan.
  const bool work_existed = ready_.load(std::memory_order_relaxed) > 0;
  Runtime* owner = nullptr;
  bool stole = false;
  bool deferred = false;
  // 1) Own deque: depth-first cache reuse — successors this worker pushed
  //    while completing its previous task.
  WorkDeque& own = *deques_[slot];
  Task* t = cfg_.policy == SchedulePolicy::DepthFirstLifo ? own.pop_front()
                                                          : own.pop_back();
  // 2) Weighted-fair tenant scan (shards, injects, due deferred retries).
  if (t == nullptr) t = take_tenant_work(slot, owner, stole, deferred);
  // 3) Randomized steal from sibling workers.
  if (t == nullptr && deques_.size() > 1) {
    const unsigned n = static_cast<unsigned>(deques_.size());
    const unsigned start = rng_next(rng_[slot].s, n - 1);
    for (unsigned k = 0; k < n - 1 && t == nullptr; ++k) {
      const unsigned v = (slot + 1 + (start + k) % (n - 1)) % n;
      t = deques_[v]->steal();
    }
    stole = t != nullptr;
  }
  if (t == nullptr) {
    if (timed && s != nullptr) {
      const std::uint64_t t1 = now_ns();
      if (work_existed) {
        s->profiler_->add_overhead(1 + slot, t1 - t0);
        // Work existed somewhere but every probe came up empty.
        s->metrics_->add(s->m_.steal_failures, 1, 1 + slot);
      } else {
        s->profiler_->add_idle(1 + slot, t1 - t0);
      }
    }
    if (work_existed) steal_failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (owner == nullptr) owner = t->owner();
  TDG_DCHECK(owner != nullptr, "pool task without an owning runtime");
  // Pin the tenant for the WHOLE execution, not just the poll: run_task's
  // post-completion epilogue (overhead attribution, metrics) touches the
  // owner after the publication that lets its drain return, so an unpinned
  // epilogue races the tenant's destructor. The owner cannot detach
  // between acquiring the task and this pin — the un-completed task keeps
  // its drain from returning — so no rt re-check is needed.
  TenantSlot& ts = tenants_[owner->tenant_id_];
  ts.pins.fetch_add(1, std::memory_order_seq_cst);
  note_served(owner->tenant_id_);
  owner->run_from_pool(t, 1 + slot, stole, deferred, t0);
  ts.pins.fetch_sub(1, std::memory_order_seq_cst);
  return true;
}

void WorkerPool::poll_tenants() {
  const unsigned hi = std::min<unsigned>(
      tenant_high_.load(std::memory_order_acquire),
      static_cast<unsigned>(tenants_.size()));
  for (unsigned i = 0; i < hi; ++i) {
    TenantSlot& ts = tenants_[i];
    if (ts.rt.load(std::memory_order_relaxed) == nullptr) continue;
    ts.pins.fetch_add(1, std::memory_order_seq_cst);
    Runtime* r = ts.rt.load(std::memory_order_seq_cst);
    if (r != nullptr) r->poll();
    ts.pins.fetch_sub(1, std::memory_order_release);
  }
}

void WorkerPool::park_worker(unsigned slot) {
  parks_.fetch_add(1, std::memory_order_relaxed);
  if (solo_ != nullptr) {
    solo_->metrics_->add(solo_->m_.parks, 1, 1 + slot);
  }
  std::unique_lock<std::mutex> lk(park_mu_);
  parked_.fetch_add(1, std::memory_order_seq_cst);
  // Dekker pairing with ready_inc: a publisher increments ready_ (seq_cst)
  // and then loads parked_; we increment parked_ and then load ready_. At
  // least one side observes the other, so either the publisher notifies or
  // we skip the wait entirely.
  const bool may_sleep = ready_.load(std::memory_order_seq_cst) == 0 &&
                         !shutdown_.load(std::memory_order_acquire);
  if (may_sleep) {
    // Bounded wait: parked workers still service the tenants' polling
    // hooks (MPI progress, held fault-injection deliveries) and
    // deferred-retry deadlines at this cadence.
    std::uint64_t wait_ns = 2'000'000;  // 2 ms
    const unsigned hi = std::min<unsigned>(
        tenant_high_.load(std::memory_order_acquire),
        static_cast<unsigned>(tenants_.size()));
    for (unsigned i = 0; i < hi; ++i) {
      TenantSlot& ts = tenants_[i];
      if (ts.rt.load(std::memory_order_relaxed) == nullptr) continue;
      ts.pins.fetch_add(1, std::memory_order_seq_cst);
      Runtime* r = ts.rt.load(std::memory_order_seq_cst);
      if (r != nullptr) {
        const std::uint64_t nd =
            r->next_deferred_ns_.load(std::memory_order_relaxed);
        if (nd != UINT64_MAX) {
          const std::uint64_t now = now_ns();
          wait_ns = nd > now ? std::min(wait_ns, nd - now) : 0;
        }
      }
      ts.pins.fetch_sub(1, std::memory_order_release);
    }
    if (wait_ns > 0) {
      park_cv_.wait_for(lk, std::chrono::nanoseconds(wait_ns));
    }
  }
  parked_.fetch_sub(1, std::memory_order_relaxed);
}

void WorkerPool::worker_loop(unsigned slot) {
  tls_pool = this;
  tls_pool_slot = slot;
  Backoff bo;
  while (true) {
    if (try_execute_one(slot)) {
      bo.reset();
      continue;
    }
    if (shutdown_.load(std::memory_order_acquire)) break;
    Runtime* const s = solo_;
    const std::uint64_t t0 = (s != nullptr && s->timed_) ? now_ns() : 0;
    const bool work_existed = ready_.load(std::memory_order_relaxed) > 0;
    poll_tenants();
    if (bo.should_park()) {
      park_worker(slot);
    } else {
      bo.pause();
    }
    if (t0 != 0) {
      const std::uint64_t t1 = now_ns();
      if (work_existed) {
        s->profiler_->add_overhead(1 + slot, t1 - t0);
      } else {
        s->profiler_->add_idle(1 + slot, t1 - t0);
      }
    }
  }
  tls_pool = nullptr;
}

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

void WorkerPool::diagnostic(std::string& out) const {
  out += "\n  pool: " + std::to_string(num_workers()) + " workers, " +
         std::to_string(tenant_count()) + " tenants, " +
         std::to_string(parked()) + " parked, ready mirror " +
         std::to_string(ready_.load(std::memory_order_relaxed));
  const unsigned hi = std::min<unsigned>(
      tenant_high_.load(std::memory_order_acquire),
      static_cast<unsigned>(tenants_.size()));
  for (unsigned i = 0; i < hi; ++i) {
    const TenantSlot& ts = tenants_[i];
    if (ts.rt.load(std::memory_order_relaxed) == nullptr) continue;
    out += "\n  pool tenant " + std::to_string(i) + ": served " +
           std::to_string(ts.served.load(std::memory_order_relaxed)) +
           ", weight " +
           std::to_string(ts.weight.load(std::memory_order_relaxed)) +
           ", vruntime " +
           std::to_string(ts.vruntime.load(std::memory_order_relaxed) /
                          kVrUnit);
  }
}

}  // namespace tdg
