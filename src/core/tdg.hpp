// Umbrella header for the tdg dependent-task runtime.
//
// tdg reproduces the runtime system of Pereira et al., "Investigating
// Dependency Graph Discovery Impact on Task-based MPI+OpenMP Applications
// Performances" (ICPP 2023): an OpenMP-style dependent-task engine with
// sequential TDG discovery overlapped with parallel execution, discovery
// optimizations (duplicate-edge elimination, inoutset redirection) and the
// Persistent Task Sub-Graph extension.
#pragma once

#include "core/analysis.hpp"
#include "core/common.hpp"
#include "core/depend.hpp"
#include "core/depend_types.hpp"
#include "core/error.hpp"
#include "core/metrics.hpp"
#include "core/persistent.hpp"
#include "core/profiler.hpp"
#include "core/runtime.hpp"
#include "core/scheduler.hpp"
#include "core/task.hpp"
#include "core/trace_export.hpp"
#include "core/watchdog.hpp"
