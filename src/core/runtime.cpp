#include "core/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/persistent.hpp"

namespace tdg {

namespace {
// The runtime this thread is the producer of (the one it constructed most
// recently and has not destroyed). The submission shard's Chase-Lev bottom
// is single-owner, so push/pop fast paths are only taken when the calling
// thread verifiably IS the producer of this runtime — foreign threads
// (detach fulfilment from another rank's team, nested runtimes on one
// thread, sibling tenants) go through the inject queue / steal path
// instead. Pool workers are identified separately (WorkerPool's own TLS).
thread_local Runtime* tls_runtime = nullptr;
// Task whose body is executing on this thread (for current_task_event).
thread_local Task* tls_current_task = nullptr;

unsigned resolve_threads(unsigned n) {
  return n != 0 ? n : std::max(1u, std::thread::hardware_concurrency());
}
}  // namespace

// ---------------------------------------------------------------------------
// Event
// ---------------------------------------------------------------------------

void Event::fulfill() {
  if (fulfilled_.exchange(true, std::memory_order_acq_rel)) return;
  Task* t = task_;
  if (t == nullptr) return;
  runtime_->watchdog_.note_progress();
  if (t->completion_latch.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    runtime_->complete_task(t, runtime_->current_slot());
  }
}

void Event::poison(std::exception_ptr err) {
  if (fulfilled_.exchange(true, std::memory_order_acq_rel)) return;
  Task* t = task_;
  if (t == nullptr) return;
  // Failing the owning task before releasing the latch routes completion
  // through the normal failed-task path: successors are cancelled by
  // graph poisoning and the group error surfaces at taskwait.
  runtime_->record_failure(t, std::move(err),
                           std::max(1u, t->retry_attempts));
  runtime_->watchdog_.note_progress();
  if (t->completion_latch.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    runtime_->complete_task(t, runtime_->current_slot());
  }
}

// ---------------------------------------------------------------------------
// Construction / teardown
// ---------------------------------------------------------------------------

void RuntimeMetricIds::register_into(MetricsRegistry& reg) {
  tasks_submitted = reg.counter("discovery.tasks");
  internal_nodes = reg.counter("discovery.redirect_nodes");
  edges_created = reg.counter("discovery.edges_created");
  edges_duplicate = reg.counter("discovery.edges_duplicate");
  edges_pruned = reg.counter("discovery.edges_pruned");
  hash_probes = reg.counter("discovery.hash_probes");
  probe_len = reg.histogram("discovery.probe_len");
  rehash = reg.counter("discovery.rehash");
  addr_entries = reg.gauge("discovery.addr_entries");
  arena_bytes = reg.gauge("discovery.arena_bytes");
  spawns = reg.counter("sched.spawns");
  steals = reg.counter("sched.steals");
  steal_failures = reg.counter("sched.steal_failures");
  throttle_stalls = reg.counter("sched.throttle_stalls");
  parks = reg.counter("sched.parks");
  wakeups = reg.counter("sched.wakeups");
  retry_defers = reg.counter("sched.retry_defers");
  ready_depth = reg.gauge("sched.ready_depth");
  slab_recycled = reg.counter("alloc.slab_recycled");
  slab_fresh = reg.counter("alloc.slab_fresh");
  slab_chunks = reg.counter("alloc.slab_chunks");
  tasks_executed = reg.counter("exec.tasks");
  body_ns = reg.histogram("exec.body_ns");
  queue_ns = reg.histogram("exec.queue_ns");
  replay_tasks = reg.counter("persistent.replay_tasks");
  replay_bytes = reg.counter("persistent.memcpy_bytes");
  iterations = reg.counter("persistent.iterations");
  race_checks = reg.counter("race.checks");
  race_flags = reg.counter("race.flags");
  race_tracked = reg.counter("race.tracked_tasks");
  race_escalations = reg.counter("race.escalations");
  race_shadow = reg.gauge("race.shadow_entries");
}

Runtime::Runtime(Config cfg)
    : cfg_(cfg),
      watchdog_(cfg.watchdog),
      dep_map_(*static_cast<DiscoveryHooks*>(this)) {
  watchdog_.add_diagnostic(
      [this](std::string& out) { runtime_diagnostic(out); });
  // Environment overrides (see Config::metrics): TDG_METRICS gates
  // collection, TDG_TRACE force-enables tracing and selects the teardown
  // export format.
  bool metrics_on = cfg_.metrics;
  switch (metrics_env_mode()) {
    case MetricsEnvMode::Off: metrics_on = false; break;
    case MetricsEnvMode::On: metrics_on = true; break;
    case MetricsEnvMode::Dump:
      metrics_on = true;
      metrics_dump_ = true;
      break;
    case MetricsEnvMode::Default: break;
  }
  trace_env_ = trace_env_config();
  if (trace_env_.mode != TraceMode::Off) cfg_.trace = true;
  // TDG_VERIFY (off|post|strict) overrides Config::verify; any checking
  // mode needs the clause/edge/barrier capture, so it forces trace
  // collection on (the teardown file export stays gated on TDG_TRACE).
  switch (verify_env_mode()) {
    case VerifyEnvMode::Off: cfg_.verify = VerifyMode::Off; break;
    case VerifyEnvMode::Post: cfg_.verify = VerifyMode::Post; break;
    case VerifyEnvMode::Strict: cfg_.verify = VerifyMode::Strict; break;
    case VerifyEnvMode::Default: break;
  }
  if (cfg_.verify != VerifyMode::Off) cfg_.trace = true;
  // TDG_RACE (off|sample|strict) replaces Config::race when set. Strict
  // escalation replays the offline verifier over the profiler streams at
  // the next taskwait, so it forces trace capture on; sample mode stays
  // capture-free (the detector's own state is all it needs).
  if (std::getenv("TDG_RACE") != nullptr) cfg_.race = race_env_options();
  if (cfg_.race.mode == RaceMode::Strict) cfg_.trace = true;
  timed_ = metrics_on || cfg_.trace;
  // Slot layout: 0 is the producer, 1..num_workers are the pool workers —
  // identical to the pre-pool slot numbering for a solo runtime.
  const unsigned n = cfg_.pool != nullptr
                         ? 1 + cfg_.pool->num_workers()
                         : resolve_threads(cfg_.num_threads);
  cfg_.num_threads = n;
  metrics_ = std::make_unique<MetricsRegistry>(n, metrics_on);
  m_.register_into(*metrics_);
  dep_map_.bind_metrics(
      metrics_.get(),
      {m_.probe_len, m_.rehash, m_.addr_entries, m_.arena_bytes});
  profiler_ = std::make_unique<Profiler>(n, cfg_.trace);
  if (cfg_.race.mode != RaceMode::Off) {
    race_ = std::make_unique<RaceDetector>(cfg_.race, n);
  }
  tls_runtime = this;  // caller becomes the producer
  if (cfg_.pool != nullptr) {
    pool_ = cfg_.pool;
  } else {
    // Solo mode: a private pool inheriting this runtime's policy and
    // thread count. Workers spawn idle (no tenant attached yet); the
    // metrics/profiler members they attribute into are already built.
    WorkerPool::Config pc;
    pc.num_workers = n - 1;
    pc.policy = cfg_.policy;
    pc.max_tenants = 1;
    owned_pool_.reset(new WorkerPool(pc, this));
    pool_ = owned_pool_.get();
  }
  try {
    tenant_id_ = pool_->attach(this, cfg_.tenant);
  } catch (...) {
    // Capacity exhausted: unwind the producer identity so the thread can
    // construct another runtime after catching the UsageError.
    if (tls_runtime == this) tls_runtime = nullptr;
    throw;
  }
}

Runtime::~Runtime() {
  try {
    drain();
  } catch (const DeadlineError& e) {
    // Destroying a wedged runtime cannot be recovered from (tasks still
    // reference it); print the watchdog report and die loudly rather than
    // unwinding through a noexcept destructor.
    std::fprintf(stderr, "tdg: runtime destroyed while wedged:\n%s\n",
                 e.what());
    std::abort();
  }
  // Last verification chance for graphs never followed by a taskwait;
  // destructors cannot throw, so strict mode degrades to the stderr report.
  verify_now(/*allow_throw=*/false);
  race_now(/*allow_throw=*/false);
  // Failures no caller waited for can no longer be thrown; drop them.
  {
    SpinGuard g(failures_lock_);
    failures_.clear();
    cancelled_.clear();
    has_failures_.store(false, std::memory_order_relaxed);
  }
  if (tls_runtime == this) tls_runtime = nullptr;
  // Leave the pool: workers stop scanning this tenant (detach waits out
  // any pinned probe). The graph is drained, so no task of this tenant
  // exists anywhere in the pool.
  pool_->detach(tenant_id_);
  // Release the dependency map's holdover task references while the
  // (possibly private) pool — and with it the slab arena backing the
  // descriptors — is still alive.
  dep_map_.clear();
  // Solo mode: tear the private pool down (joins the workers), making the
  // trace/metrics streams quiescent for the export below.
  owned_pool_.reset();
  finalize_observability();
}

void Runtime::finalize_observability() {
  // Trace export (TDG_TRACE): workers have joined, the record stream is
  // quiescent. Later runtimes in the same process (e.g. one per Universe
  // rank) get sequence-numbered files so they do not clobber each other.
  if (trace_env_.mode != TraceMode::Off) {
    const std::vector<TaskRecord> records = profiler_->merged_trace();
    const std::vector<CommRecord> comms = profiler_->comm_records();
    if (!records.empty() || !comms.empty()) {
      static std::atomic<int> seq{0};
      const int k = seq.fetch_add(1, std::memory_order_relaxed);
      const char* ext =
          trace_env_.mode == TraceMode::Perfetto ? "json" : "tsv";
      std::string path = trace_env_.path;
      if (path.empty()) {
        path = k == 0 ? std::string("tdg_trace.") + ext
                      : "tdg_trace." + std::to_string(k) + "." + ext;
      } else if (k > 0) {
        path += "." + std::to_string(k);
      }
      std::ofstream os(path);
      if (os) {
        if (trace_env_.mode == TraceMode::Perfetto) {
          // Base pid = this runtime's rank so per-rank files from one
          // Universe land on distinct process tracks even before merging.
          PerfettoOptions popts;
          popts.pid = profiler_->rank();
          write_perfetto(os, records, profiler_->edges(),
                         profiler_->accesses(), profiler_->barriers(),
                         profiler_->scope_clears(), comms, popts);
        } else {
          write_trace_tsv(os, records, profiler_->accesses(),
                          profiler_->barriers(), profiler_->scope_clears(),
                          comms);
        }
        std::fprintf(stderr,
                     "tdg: trace written to %s (%zu records, %zu edges)\n",
                     path.c_str(), records.size(),
                     profiler_->edges().size());
      } else {
        std::fprintf(stderr, "tdg: cannot open trace file %s\n",
                     path.c_str());
      }
    }
  }
  if (metrics_dump_ && metrics_->enabled()) {
    // Shared-pool tenants tag every row with their tenant id (the
    // `tenant=<id>` dimension); the pool prints the untagged aggregate at
    // its own teardown, so existing parsers keep seeing plain totals. A
    // solo runtime's dump is byte-identical to the pre-pool format.
    const int tenant =
        cfg_.pool != nullptr ? static_cast<int>(tenant_id_) : -1;
    std::string text;
    {
      std::ostringstream os;
      metrics_->snapshot().write_text(os, /*nonzero_only=*/true, tenant);
      text = os.str();
    }
    std::fprintf(stderr, "tdg: metrics at teardown:\n%s", text.c_str());
  }
}

// ---------------------------------------------------------------------------
// Discovery
// ---------------------------------------------------------------------------

Task* Runtime::allocate_task(const TaskOpts& opts) {
  TDG_REQUIRE(opts.detach == nullptr || !opts.detach->fulfilled(),
              "detach event fulfilled before the task was submitted");
  // Slab allocation: discovery recycles fixed-size blocks instead of
  // paying a global-heap new/delete per task (PTSG replay allocates
  // nothing either way). The arena is pool-owned with one allocation shard
  // per tenant — the producer is the only allocator of its tenant, and
  // blocks freed by any worker recycle through the remote-free stack.
  TaskArena& arena = pool_->arena_;
  TaskArena::Source src;
  void* mem = arena.allocate(tenant_id_, src);
  Task* t = new (mem) Task(
      next_task_id_.fetch_add(1, std::memory_order_relaxed), &arena, this);
  if (metrics_->enabled()) switch (src) {
    case TaskArena::Source::Recycled: madd(m_.slab_recycled); break;
    case TaskArena::Source::NewChunk:
      madd(m_.slab_chunks);
      [[fallthrough]];
    case TaskArena::Source::Fresh: madd(m_.slab_fresh); break;
  }
  t->opts = opts;
  if (timed_) t->t_create = now_ns();
  if (opts.internal) {
    ++internal_nodes_;
    madd(m_.internal_nodes);
  } else {
    ++tasks_created_;
    madd(m_.tasks_submitted);
  }
  if (tls_runtime == this && batch_active_ && !opts.internal) {
    // Batched submission defers the pending/live publication to
    // end_batch (one pair of RMWs per batch). Internal redirect nodes
    // keep immediate accounting — they complete inline mid-batch, and
    // their decrement must not land before the increment. A batched
    // task unblocked early (a pool worker completing its predecessor
    // publishes it directly) can transiently wrap these unsigned
    // counters until end_batch restores the sum; only this producer
    // reads them for control flow (drain/throttle run outside a batch),
    // so the skew is visible to diagnostics alone.
    ++batch_pending_;
    ++batch_live_;
  } else {
    pending_.fetch_add(1, std::memory_order_relaxed);
    live_tasks_.fetch_add(1, std::memory_order_relaxed);
  }
  if (opts.detach != nullptr) {
    t->completion_latch.store(2, std::memory_order_relaxed);
    t->detach_event = opts.detach;
    opts.detach->runtime_ = this;
    opts.detach->task_ = t;
    opts.detach->task_label_ = opts.label;
    opts.detach->task_id_ = t->id();
    opts.detach->task_idempotent_ = opts.idempotent;
  }
  if (discovering_persistent_) {
    t->persistent = true;
    region_->record_task(t);
  }
  return t;
}

void Runtime::finish_submission(Task* t, std::span<const Depend> deps) {
  // Each depend item is one probe of the per-address access history.
  if (!deps.empty()) madd(m_.hash_probes, deps.size());
  // Capture the clause before discovery mutates the history: the verifier
  // re-derives the required ordering from exactly this stream.
  if (!deps.empty() && profiler_->trace_enabled()) {
    profiler_->record_accesses(t->id(), t->opts.label, deps.data(),
                               deps.size());
  }
  dep_map_.apply(t, deps, cfg_.discovery);
  // Race sampling decision, made after apply so every edge of this task
  // has already joined the clocks, and before the guard drop below so the
  // npredecessors acq_rel chain publishes race_clock (and the record it
  // points at) to whichever worker starts the task.
  if (race_ != nullptr && !deps.empty()) {
    t->race_clock = race_->on_task_discovered(t->id(), deps.data(),
                                              deps.size(), t->opts.label);
  }
  const bool in_batch = tls_runtime == this && batch_active_;
  if (!in_batch) {
    const std::uint64_t ts = now_ns();
    if (discovery_begin_ns_ == 0) discovery_begin_ns_ = ts;
    discovery_end_ns_ = ts;
  } else if (!batch_stamped_) {
    // One discovery-window stamp per batch instead of one per submit;
    // end_batch refreshes the end of the window.
    const std::uint64_t ts = now_ns();
    if (discovery_begin_ns_ == 0) discovery_begin_ns_ = ts;
    discovery_end_ns_ = ts;
    batch_stamped_ = true;
  }
  // Drop the discovery guard; the task may become ready immediately.
  if (t->npredecessors.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    enqueue_ready(t, current_slot(), /*successor=*/false);
  }
  if (!in_batch) throttle(current_slot());
}

EdgeOutcome Runtime::discover_edge(Task* pred, Task* succ) {
  if (pred == succ) {  // e.g. in+out on the same address in one clause
    return EdgeOutcome::SelfSkip;
  }
  if (cfg_.discovery.dedup_edges && pred->last_successor_id == succ->id()) {
    ++disc_stats_.edges_duplicate;
    madd(m_.edges_duplicate);
    return EdgeOutcome::Duplicate;  // optimization (b): O(1) dedup
  }
  pred->last_successor_id = succ->id();
  // Clock join covers every non-duplicate outcome below — including
  // Pruned, whose ordering is real even though no runtime edge is needed.
  // A Duplicate was joined when the pair was first discovered.
  if (race_ != nullptr) race_->on_edge(pred->id(), succ->id());
  // The successor's count must be raised BEFORE the edge is published:
  // otherwise a predecessor completing in between decrements a count that
  // does not yet include this edge, reaching zero early (the discovery
  // guard is +1, so 1-1 = 0) and enqueueing the task twice. The undo on
  // the pruned paths can never hit zero: the guard is still held.
  succ->npredecessors.fetch_add(1, std::memory_order_relaxed);
  switch (pred->add_successor(succ, discovering_persistent_)) {
    case Task::EdgeResult::Created:
      if (discovering_persistent_) ++succ->persistent_indegree;
      ++disc_stats_.edges_created;
      madd(m_.edges_created);
      if (profiler_->trace_enabled()) {
        profiler_->record_edge(pred->id(), succ->id());
      }
      return EdgeOutcome::Created;
    case Task::EdgeResult::Recorded:
      succ->npredecessors.fetch_sub(1, std::memory_order_relaxed);
      ++succ->persistent_indegree;
      ++disc_stats_.edges_created;
      madd(m_.edges_created);
      if (profiler_->trace_enabled()) {
        profiler_->record_edge(pred->id(), succ->id());
      }
      return EdgeOutcome::Created;
    case Task::EdgeResult::Pruned:
      succ->npredecessors.fetch_sub(1, std::memory_order_relaxed);
      ++disc_stats_.edges_pruned;
      madd(m_.edges_pruned);
      // The dependence is real even though no runtime edge is needed (the
      // predecessor already finished); the trace stream keeps it so the
      // verifier — and critical-path analysis — see the full precedence
      // relation, not just the materialized subset. Without this, a pruned
      // pair whose repeat is then dedup'd away would surface as a false
      // race.
      if (profiler_->trace_enabled()) {
        profiler_->record_edge(pred->id(), succ->id());
      }
      return EdgeOutcome::Pruned;
  }
  return EdgeOutcome::SelfSkip;  // unreachable; switch is exhaustive
}

Task* Runtime::make_internal_node() {
  TaskOpts opts;
  opts.label = "tdg::redirect";
  opts.internal = true;
  Task* t = allocate_task(opts);
  ++disc_stats_.redirect_nodes;
  return t;
}

void Runtime::seal_internal_node(Task* node) {
  if (node->npredecessors.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    enqueue_ready(node, current_slot(), /*successor=*/false);
  }
}

std::uint64_t Runtime::replay_submit_erased(void (*update)(Task*, void*),
                                            void* ctx, const void* src,
                                            std::size_t bytes) {
  const PersistentRegion::ReplayRef r = region_->next_replay_slot();
  Task* t = r.task;
  if (src != nullptr && r.copy_dst != nullptr) {
    // Compiled-plan fast path: the capture is trivially copyable and its
    // destination was precomputed, so re-initialization really is the
    // paper's "single memcpy on firstprivate data".
    TDG_DCHECK(bytes == r.copy_bytes, "persistent replay size mismatch");
    std::memcpy(r.copy_dst, src, bytes);
  } else {
    update(t, ctx);  // non-trivial capture: destroy + copy-construct
  }
  madd(m_.replay_tasks);
  madd(m_.replay_bytes, t->body.capture_bytes());
  const std::uint64_t ts = now_ns();
  t->t_create = ts;
  if (discovery_begin_ns_ == 0) discovery_begin_ns_ = ts;
  discovery_end_ns_ = ts;
  if (t->npredecessors.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    enqueue_ready(t, current_slot(), /*successor=*/false);
  }
  // No throttling here: replay allocates nothing (the graph already
  // exists), and the re-armed iteration counts towards live_tasks_ up
  // front — waiting for it to drop below a total-task bound smaller than
  // the region would deadlock, since un-replayed tasks cannot run.
  return t->id();
}

void Runtime::clear_dependency_scope() {
  dep_map_.clear();
  // Mirror the cut in the verifier's input: no dependence is required
  // across a scope clear (the caller asserted phase independence), so the
  // shadow discovery must forget its history exactly where the map did.
  if (profiler_->trace_enabled()) {
    profiler_->record_scope_clear(
        next_task_id_.load(std::memory_order_relaxed) - 1);
  }
  if (race_ != nullptr) {
    race_->on_scope_clear(next_task_id_.load(std::memory_order_relaxed) - 1);
  }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

void Runtime::enqueue_ready(Task* t, unsigned thread_hint, bool successor) {
  if (timed_) t->t_ready = now_ns();
  t->state.store(TaskState::Ready, std::memory_order_relaxed);
  if (t->body.empty()) {
    // Runtime-internal nodes (inoutset redirects) complete inline; they
    // carry no user work and queueing them would only add latency.
    run_task(t, thread_hint);
    return;
  }
  // Open batch (producer only — the tls check keeps other threads off the
  // plain flag): buffer the task; end_batch publishes the whole set with
  // one ready/mirror/wake round.
  if (tls_runtime == this && batch_active_) {
    batch_ready_.push_back(t);
    return;
  }
  ready_count_.fetch_add(1, std::memory_order_relaxed);
  // seq_cst: Dekker pairing with a parking pool worker's ready re-check.
  pool_->ready_inc(1);
  madd(m_.spawns);
  metrics_->gauge_add(m_.ready_depth, +1, thread_hint);
  // Depth-first heuristic: a newly-ready successor goes to the head of the
  // completing thread's deque so it runs right after its producer, while
  // its data is still cached. A pool worker pushes to its own pool deque;
  // the producer pushes to this tenant's submission shard; anyone else
  // (foreign-thread detach fulfilment, nested runtimes, pool reroutes)
  // goes through the inject queue.
  (void)successor;
  if (pool_->on_pool_worker()) {
    pool_->push_local(t);
  } else if (tls_runtime == this) {
    shard_.push_front(t);
  } else {
    push_inject(t);
  }
  pool_->wake_workers(1, this);
}

void Runtime::push_inject(Task* t) { inject_.push(t); }

Task* Runtime::pop_inject() { return inject_.pop(); }

void Runtime::begin_batch() {
  TDG_REQUIRE(tls_runtime == this,
              "begin_batch must be called by the producer thread");
  TDG_REQUIRE(!batch_active_, "begin_batch: a batch is already open");
  batch_active_ = true;
  batch_stamped_ = false;
}

void Runtime::end_batch() {
  TDG_REQUIRE(tls_runtime == this,
              "end_batch must be called by the producer thread");
  if (!batch_active_) return;
  batch_active_ = false;
  const std::uint64_t ts = now_ns();
  if (batch_stamped_) discovery_end_ns_ = ts;
  // Publish the deferred pending/live counts BEFORE releasing the tasks:
  // a worker may pop and complete one immediately, and its decrement must
  // find the increment already in place.
  if (batch_pending_ > 0) {
    pending_.fetch_add(batch_pending_, std::memory_order_relaxed);
    live_tasks_.fetch_add(batch_live_, std::memory_order_relaxed);
    batch_pending_ = 0;
    batch_live_ = 0;
  }
  const std::size_t k = batch_ready_.size();
  if (k > 0) {
    ready_count_.fetch_add(k, std::memory_order_relaxed);
    pool_->ready_inc(k);  // one Dekker-ordered RMW for the whole batch
    madd(m_.spawns, k);
    metrics_->gauge_add(m_.ready_depth, static_cast<std::int64_t>(k), 0);
    for (Task* t : batch_ready_) {
      if (timed_) t->t_ready = ts;
      shard_.push_front(t);
    }
    batch_ready_.clear();
    pool_->wake_workers(k, this);
  }
  throttle(0);
}

void Runtime::run_task(Task* t, unsigned thread) {
  t->exec_thread = thread;
  if (timed_) t->t_start = now_ns();
  // Graph poisoning: a task whose (transitive) predecessor failed reaches
  // readiness normally but its body is skipped; completing it propagates
  // cancellation to its own successors.
  const bool cancelled = t->cancelled.load(std::memory_order_acquire);
  bool ok = !cancelled;
  if (cancelled) {
    if (!t->opts.internal) record_cancelled(t);
  } else {
    t->state.store(TaskState::Running, std::memory_order_relaxed);
    watchdog_.note_progress();
    // Shadow check-then-install at the start boundary: of any unordered
    // conflicting pair, the later-starting task sees the earlier one's
    // entry. Replay iterations skip it (their window's clocks flushed at
    // the discovery-iteration taskwait; the graph is fixed anyway).
    if (race_ != nullptr && t->race_clock != nullptr && t->iteration == 0) {
      race_->on_task_start(t->id(), thread, t->race_clock);
    }
    Task* prev_current = tls_current_task;
    tls_current_task = t;
    BodyOutcome oc = BodyOutcome::Success;
    if (!t->body.empty()) oc = run_body_with_retries(t);
    tls_current_task = prev_current;
    if (oc == BodyOutcome::Deferred) {
      // The attempt failed but the retry budget is not exhausted. Instead
      // of sleeping out the backoff on this worker, park the task on the
      // deferred queue with a not-before deadline and move on. The
      // completion latch is untouched — the task is still pending and
      // comes back through run_task once the deadline passes.
      if (timed_) profiler_->add_work(thread, now_ns() - t->t_start);
      schedule_retry(t);
      return;
    }
    ok = oc == BodyOutcome::Success;
  }
  const std::uint64_t t_body_end = timed_ ? now_ns() : 0;
  if (timed_) {
    profiler_->add_work(thread, t_body_end - t->t_start);
    if (!t->opts.internal && ok) {
      metrics_->observe(m_.body_ns, t_body_end - t->t_start, thread);
      metrics_->observe(
          m_.queue_ns,
          t->t_start >= t->t_ready ? t->t_start - t->t_ready : 0, thread);
    }
  }
  // A failed or cancelled task never posts the operation that would
  // fulfill its detach event; force-fulfill so the latch resolves instead
  // of wedging taskwait (idempotent if the body got far enough to post).
  if (!ok && t->detach_event != nullptr) t->detach_event->fulfill();
  if (t->completion_latch.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    complete_task(t, thread);
  } else {
    t->state.store(TaskState::Detached, std::memory_order_relaxed);
  }
  if (timed_) profiler_->add_overhead(thread, now_ns() - t_body_end);
}

Runtime::BodyOutcome Runtime::run_body_with_retries(Task* t) {
  // Attempts are counted on the task itself so the count survives a trip
  // through the deferred-retry queue.
  for (;;) {
    try {
      t->body.invoke();
      t->retry_attempts = 0;
      return BodyOutcome::Success;
    } catch (...) {
      const std::uint32_t attempt = ++t->retry_attempts;
      if (attempt > t->opts.max_retries) {
        record_failure(t, std::current_exception(), attempt);
        return BodyOutcome::Failed;
      }
      task_retries_.fetch_add(1, std::memory_order_relaxed);
      watchdog_.note_progress();  // a retry attempt is forward progress
      if (t->opts.retry_backoff_seconds > 0.0) {
        // The old implementation slept the backoff out right here,
        // stalling this worker for the whole window. Hand the task back
        // with a not-before deadline instead; the caller requeues it and
        // the worker stays available for other work.
        const double backoff =
            t->opts.retry_backoff_seconds *
            static_cast<double>(1u << std::min(attempt - 1, 20u));
        t->retry_not_before_ns =
            now_ns() + static_cast<std::uint64_t>(backoff * 1e9);
        return BodyOutcome::Deferred;
      }
      // Zero backoff: retry immediately, inline.
    }
  }
}

void Runtime::schedule_retry(Task* t) {
  t->state.store(TaskState::Ready, std::memory_order_relaxed);
  madd(m_.retry_defers);
  const std::uint64_t deadline = t->retry_not_before_ns;
  // The gate update stays under the lock so it can't race with the
  // recompute in take_due_deferred and strand a task behind a stale
  // UINT64_MAX.
  SpinGuard g(deferred_lock_);
  deferred_.push_back(DeferredTask{deadline, t});
  if (deadline < next_deferred_ns_.load(std::memory_order_relaxed)) {
    next_deferred_ns_.store(deadline, std::memory_order_release);
  }
}

Task* Runtime::take_due_deferred() {
  const std::uint64_t nd = next_deferred_ns_.load(std::memory_order_acquire);
  if (nd == UINT64_MAX || now_ns() < nd) return nullptr;
  SpinGuard g(deferred_lock_);
  if (deferred_.empty()) return nullptr;
  const std::uint64_t now = now_ns();
  Task* due = nullptr;
  for (std::size_t i = 0; i < deferred_.size(); ++i) {
    if (deferred_[i].not_before_ns <= now) {
      due = deferred_[i].task;
      deferred_[i] = deferred_.back();
      deferred_.pop_back();
      break;
    }
  }
  std::uint64_t next = UINT64_MAX;
  for (const DeferredTask& d : deferred_) {
    next = std::min(next, d.not_before_ns);
  }
  next_deferred_ns_.store(next, std::memory_order_release);
  return due;
}

void Runtime::record_failure(Task* t, std::exception_ptr err,
                             std::uint32_t tries) {
  t->failed = true;  // ordered for the completer by the latch decrement
  t->state.store(TaskState::Failed, std::memory_order_relaxed);
  TaskFailure f;
  f.task_id = t->id();
  f.label = t->opts.label;
  f.message = describe_exception(err);
  f.error = std::move(err);
  f.attempts = tries;
  SpinGuard g(failures_lock_);
  failures_.push_back(std::move(f));
  has_failures_.store(true, std::memory_order_release);
}

void Runtime::record_cancelled(Task* t) {
  SpinGuard g(failures_lock_);
  cancelled_.push_back(CancelledTask{t->id(), t->opts.label});
  has_failures_.store(true, std::memory_order_release);
}

void Runtime::complete_task(Task* t, unsigned thread) {
  if (timed_) t->t_end = now_ns();
  if (race_ != nullptr && t->race_clock != nullptr) {
    race_->on_task_finish(t->id(), thread);
  }
  const bool failed = t->failed;
  const bool cancelled = !failed && t->cancelled.load(std::memory_order_acquire);
  const bool poisoned = failed || cancelled;
  if (failed) {
    // state already TaskState::Failed (set in record_failure)
    tasks_failed_.fetch_add(1, std::memory_order_relaxed);
  } else if (cancelled) {
    t->state.store(TaskState::Cancelled, std::memory_order_relaxed);
    tasks_cancelled_.fetch_add(1, std::memory_order_relaxed);
  } else {
    t->state.store(TaskState::Finished, std::memory_order_relaxed);
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    if (!t->opts.internal) metrics_->add(m_.tasks_executed, 1, thread);
  }
  if (profiler_->trace_enabled() && !t->opts.internal) {
    TaskRecord rec;
    rec.task_id = t->id();
    rec.t_create = t->t_create;
    rec.t_ready = t->t_ready;
    rec.t_start = t->t_start;
    rec.t_end = t->t_end;
    rec.thread = thread;
    rec.iteration = t->iteration;
    rec.label = t->opts.label;
    profiler_->record(thread, rec);
  }
  const bool keep = t->persistent;
  Task::SuccessorList succs = t->snapshot_successors_and_finish(keep, poisoned);
  for (Task* s : succs) {
    // Poison before dropping the count: the release of fetch_sub publishes
    // the cancelled flag to whichever thread makes the successor ready.
    if (poisoned) s->cancelled.store(true, std::memory_order_release);
    if (s->npredecessors.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      enqueue_ready(s, thread, /*successor=*/true);
    }
  }
  live_tasks_.fetch_sub(1, std::memory_order_relaxed);
  watchdog_.note_progress();
  pending_.fetch_sub(1, std::memory_order_acq_rel);
  if (!keep) t->release();  // drop the self-reference
}

void Runtime::run_from_pool(Task* t, unsigned slot, bool stole,
                            bool deferred, std::uint64_t t0) {
  if (stole) metrics_->add(m_.steals, 1, slot);
  if (!deferred) {
    // Deferred retries left the ready count when they were first taken;
    // don't decrement twice.
    ready_count_.fetch_sub(1, std::memory_order_relaxed);
    pool_->ready_dec();
    metrics_->gauge_add(m_.ready_depth, -1, slot);
  }
  // t0 was sampled by the pool when ANY attached tenant is timed; only
  // charge the probe overhead if this one is.
  if (timed_ && t0 != 0) profiler_->add_overhead(slot, now_ns() - t0);
  run_task(t, slot);
}

bool Runtime::try_execute_one(unsigned slot) {
  const std::uint64_t t0 = timed_ ? now_ns() : 0;
  // Attribution sample, taken once up front: reading it after the failed
  // probes would flip genuine idle time into "overhead + steal failure"
  // whenever a task was enqueued and taken elsewhere mid-scan.
  const bool work_existed = ready_count_.load(std::memory_order_relaxed) > 0;
  // Deferred-retry gate inlined here: one relaxed load on the common path
  // (nothing deferred); the queue scan only runs when a deadline is set.
  Task* t = next_deferred_ns_.load(std::memory_order_relaxed) != UINT64_MAX
                ? take_due_deferred()
                : nullptr;
  const bool deferred = t != nullptr;
  bool stole = false;
  if (t == nullptr) {
    if (tls_runtime == this) {
      t = cfg_.policy == SchedulePolicy::DepthFirstLifo ? shard_.pop_front()
                                                        : shard_.pop_back();
    } else {
      // A foreign thread (nested runtime, external helper) must not touch
      // the Chase-Lev bottom; it competes through the steal CAS instead.
      t = shard_.steal();
    }
    if (t == nullptr) t = pop_inject();
    if (t == nullptr && pool_->num_workers() > 0) {
      // Self-help steal from the pool worker deques. Only this tenant's
      // tasks come back; foreign finds are rerouted to their owner.
      t = pool_->steal_for(this, producer_rng_);
      stole = t != nullptr;
    }
  }
  if (t == nullptr) {
    if (timed_) {
      const std::uint64_t t1 = now_ns();
      if (work_existed) {
        profiler_->add_overhead(slot, t1 - t0);
        // Work existed somewhere but every probe came up empty.
        metrics_->add(m_.steal_failures, 1, slot);
      } else {
        profiler_->add_idle(slot, t1 - t0);
      }
    }
    return false;
  }
  if (stole) metrics_->add(m_.steals, 1, slot);
  if (!deferred) {
    // Deferred retries left the ready count when they were first taken;
    // don't decrement twice.
    ready_count_.fetch_sub(1, std::memory_order_relaxed);
    pool_->ready_dec();
    metrics_->gauge_add(m_.ready_depth, -1, slot);
  }
  if (timed_) profiler_->add_overhead(slot, now_ns() - t0);
  run_task(t, slot);
  return true;
}

void Runtime::taskwait() {
  drain();
  // Failure order matters: a TaskGroupError must not be masked by a
  // verification report (and vice versa a clean drain may still carry a
  // determinacy race — the interleaving just happened to be benign).
  throw_if_failed();
  verify_now(/*allow_throw=*/true);
  race_now(/*allow_throw=*/true);
}

void Runtime::drain() {
  // A drain inside an open batch would wait forever on buffered tasks;
  // close the batch first (producer-only state, and drain is documented
  // producer-only).
  if (tls_runtime == this && batch_active_) end_batch();
  const unsigned slot = current_slot();
  arm_watchdog_baseline();
  Watchdog::Scope ws(&watchdog_, "taskwait");
  Backoff bo;
  while (pending_.load(std::memory_order_acquire) > 0) {
    if (try_execute_one(slot)) {
      bo.reset();
    } else {
      poll();
      ws.poll();
      // Spin-then-yield-then-sleep: the sleep tail is capped well below
      // the watchdog/poll cadence, so hooks stay serviced while an empty
      // wait stops burning the core the workers need.
      bo.pause();
    }
  }
  // Everything submitted so far has completed: tasks on either side of
  // this point are ordered without an edge. The cutoff feeds the verifier
  // (taskwait separation) — dedup in the profiler keeps idle re-drains
  // free. drain() only runs on the producer, so the id read is exact.
  if (profiler_->trace_enabled()) {
    profiler_->record_barrier(
        next_task_id_.load(std::memory_order_relaxed) - 1);
  }
  // Epoch advance AFTER the flag buffer was filled by the drained tasks:
  // everything <= the cutoff is done, so the detector flushes its shadow
  // table and clock records (bounding its footprint by the window size)
  // and future ordered() queries answer by cutoff alone.
  if (race_ != nullptr) {
    race_->on_barrier(next_task_id_.load(std::memory_order_relaxed) - 1);
  }
}

void Runtime::verify_now(bool allow_throw) {
  if (cfg_.verify == VerifyMode::Off) return;
  const auto& accesses = profiler_->accesses();
  const auto& edges = profiler_->edges();
  const auto& barriers = profiler_->barriers();
  if (accesses.size() == verified_accesses_ &&
      edges.size() == verified_edges_ &&
      barriers.size() == verified_barriers_) {
    return;  // nothing new since the last check
  }
  VerifyReport rep = verify_graph();
  verified_accesses_ = accesses.size();
  verified_edges_ = edges.size();
  verified_barriers_ = barriers.size();
  if (rep.ok()) return;
  if (cfg_.verify == VerifyMode::Strict && allow_throw) {
    throw VerifyError(rep.summary());
  }
  std::fprintf(stderr, "tdg: TDG verification FAILED:\n%s\n",
               rep.summary().c_str());
}

void Runtime::race_now(bool allow_throw) {
  if (race_ == nullptr) return;
  // Counter sync: the detector keeps cheap internal atomics; taskwait is
  // the natural cadence to fold the deltas into the metrics namespace.
  if (metrics_->enabled()) {
    const std::uint64_t checks = race_->check_count();
    const std::uint64_t flags = race_->flag_total();
    const std::uint64_t tracked = race_->tracked_count();
    if (checks > race_synced_checks_) {
      metrics_->add(m_.race_checks, checks - race_synced_checks_, 0);
      race_synced_checks_ = checks;
    }
    if (flags > race_synced_flags_) {
      metrics_->add(m_.race_flags, flags - race_synced_flags_, 0);
      race_synced_flags_ = flags;
    }
    if (tracked > race_synced_tracked_) {
      metrics_->add(m_.race_tracked, tracked - race_synced_tracked_, 0);
      race_synced_tracked_ = tracked;
    }
    const std::int64_t shadow =
        static_cast<std::int64_t>(race_->live_shadow_entries());
    if (shadow != race_shadow_reported_) {
      metrics_->gauge_add(m_.race_shadow, shadow - race_shadow_reported_, 0);
      race_shadow_reported_ = shadow;
    }
  }
  std::vector<RaceFlag> flags = race_->take_flags();
  if (flags.empty()) return;
  std::string report;
  for (const RaceFlag& f : flags) {
    report += f.to_string();
    report += '\n';
  }
  bool confirmed = false;
  if (cfg_.race.mode == RaceMode::Strict) {
    // Escalation: replay the offline verifier restricted to the flagged
    // windows for the precise report. RangeOverlap flags are confirmed
    // as-is — the identity-based verifier structurally cannot re-derive
    // cross-base conflicts.
    bool any_same_base = false;
    std::uint64_t window_lo = ~std::uint64_t{0};
    for (const RaceFlag& f : flags) {
      if (f.kind == RaceFlag::Kind::SameBase) {
        any_same_base = true;
        if (f.window_lo < window_lo) window_lo = f.window_lo;
      } else {
        confirmed = true;
      }
    }
    if (any_same_base) {
      madd(m_.race_escalations);
      VerifyReport rep =
          verify_window(profiler_->accesses(), profiler_->edges(),
                        profiler_->barriers(), profiler_->scope_clears(),
                        window_lo);
      report += rep.summary();
      confirmed = confirmed || !rep.ok();
    }
    if (confirmed && allow_throw) throw RaceError(report);
  }
  std::fprintf(stderr, "tdg: race detector flagged %zu pair(s)%s:\n%s\n",
               flags.size(),
               cfg_.race.mode == RaceMode::Strict
                   ? (confirmed ? " (escalation CONFIRMED)"
                                : " (escalation did not confirm)")
                   : "",
               report.c_str());
}

void Runtime::log_verify_clause(std::span<const Depend> deps) {
  if (region_ != nullptr) region_->log_clause(deps);
}

void Runtime::throw_if_failed() {
  if (!has_failures_.load(std::memory_order_acquire)) return;
  std::vector<TaskFailure> failures;
  std::vector<CancelledTask> cancelled;
  {
    SpinGuard g(failures_lock_);
    failures.swap(failures_);
    cancelled.swap(cancelled_);
    has_failures_.store(false, std::memory_order_relaxed);
  }
  throw TaskGroupError(std::move(failures), std::move(cancelled));
}

void Runtime::throttle(unsigned slot) {
  const auto& th = cfg_.throttle;
  if (ready_count_.load(std::memory_order_relaxed) <= th.max_ready &&
      live_tasks_.load(std::memory_order_relaxed) <= th.max_total) {
    return;  // fast path: no stall, no watchdog arming
  }
  madd(m_.throttle_stalls);
  arm_watchdog_baseline();
  Watchdog::Scope ws(&watchdog_, "throttle");
  Backoff bo;
  while (ready_count_.load(std::memory_order_relaxed) > th.max_ready ||
         live_tasks_.load(std::memory_order_relaxed) > th.max_total) {
    if (try_execute_one(slot)) {
      bo.reset();
    } else {
      poll();
      ws.poll();
      bo.pause();
      if (pending_.load(std::memory_order_acquire) == 0) break;
    }
  }
}

void Runtime::poll() {
  std::shared_ptr<const std::function<void()>> hook;
  {
    SpinGuard g(hook_lock_);
    hook = polling_hook_;
  }
  if (hook) (*hook)();
}

Runtime::PollingHookToken Runtime::set_polling_hook(
    std::function<void()> hook) {
  std::shared_ptr<const std::function<void()>> p;
  if (hook) {
    p = std::make_shared<const std::function<void()>>(std::move(hook));
  }
  SpinGuard g(hook_lock_);
  polling_hook_ = p;
  return p;
}

void Runtime::clear_polling_hook(const PollingHookToken& token) {
  if (token == nullptr) return;
  SpinGuard g(hook_lock_);
  if (polling_hook_ == token) polling_hook_.reset();
}

Event* Runtime::create_event() {
  SpinGuard g(events_lock_);
  events_.push_back(std::make_unique<Event>());
  return events_.back().get();
}

Event* Runtime::current_task_event() const {
  return tls_current_task != nullptr ? tls_current_task->detach_event
                                     : nullptr;
}

unsigned Runtime::current_slot() const {
  // Pool workers occupy slots 1..num_workers (metrics shards, profiler
  // attribution); every other thread — the producer, external helpers —
  // maps to slot 0, exactly as in the pre-pool numbering.
  if (pool_->on_pool_worker()) return 1 + WorkerPool::calling_slot();
  return 0;
}

void Runtime::arm_watchdog_baseline() {
  if (!watchdog_.enabled() || !metrics_->enabled()) return;
  MetricsSnapshot snap = metrics_->snapshot();
  SpinGuard g(wd_baseline_lock_);
  wd_baseline_ = std::move(snap);
  wd_baseline_set_ = true;
}

void Runtime::runtime_diagnostic(std::string& out) const {
  out += "\n  tenant " + std::to_string(tenant_id_) +
         ": live tasks: " + std::to_string(live_tasks()) + " (ready " +
         std::to_string(ready_tasks()) + ")";
  {
    SpinGuard dg(deferred_lock_);
    if (!deferred_.empty()) {
      out += "\n  deferred retries: " + std::to_string(deferred_.size());
    }
  }
  // Discovery data layer: a producer wedged mid-discovery shows up here
  // (table growth, arena footprint), complementing the metric deltas below.
  if (race_ != nullptr) {
    out += "\n  ";
    race_->diagnostic(out);
  }
  out += "\n  discovery table: " +
         std::to_string(dep_map_.tracked_addresses()) + " addresses (cap " +
         std::to_string(dep_map_.table_capacity()) + ", " +
         std::to_string(dep_map_.rehash_count()) + " rehashes, " +
         std::to_string(dep_map_.arena_bytes()) + " bytes)";
  // Counter deltas since the stalled wait was armed: a hang report that
  // shows "0 steals, 0 completions since arming" pinpoints starvation vs
  // livelock at a glance.
  if (metrics_->enabled()) {
    MetricsSnapshot now = metrics_->snapshot();
    bool have_baseline = false;
    {
      SpinGuard g(wd_baseline_lock_);
      if (wd_baseline_set_) {
        now = MetricsSnapshot::delta(now, wd_baseline_);
        have_baseline = true;
      }
    }
    std::ostringstream os;
    now.write_text(os, /*nonzero_only=*/true);
    out += have_baseline ? "\n  metrics delta since arming:\n"
                         : "\n  metrics:\n";
    out += os.str();
  }
  SpinGuard g(events_lock_);
  std::size_t shown = 0;
  for (const auto& ev : events_) {
    if (ev->fulfilled() || ev->task_id() == 0) continue;
    out += "\n  unfulfilled detach event: task '";
    out += ev->task_label();
    out += "' (id " + std::to_string(ev->task_id()) + ")";
    if (++shown == 16) {
      out += "\n  (more unfulfilled events elided)";
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

RuntimeStats Runtime::stats() const {
  RuntimeStats s;
  s.tasks_created = tasks_created_;
  s.internal_nodes = internal_nodes_;
  s.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
  s.tasks_failed = tasks_failed_.load(std::memory_order_relaxed);
  s.tasks_cancelled = tasks_cancelled_.load(std::memory_order_relaxed);
  s.task_retries = task_retries_.load(std::memory_order_relaxed);
  s.discovery = disc_stats_;
  s.discovery_begin_ns = discovery_begin_ns_;
  s.discovery_end_ns = discovery_end_ns_;
  return s;
}

void Runtime::reset_stats() {
  tasks_created_ = 0;
  internal_nodes_ = 0;
  disc_stats_ = DiscoveryStats{};
  discovery_begin_ns_ = 0;
  discovery_end_ns_ = 0;
  tasks_executed_.store(0, std::memory_order_relaxed);
  tasks_failed_.store(0, std::memory_order_relaxed);
  tasks_cancelled_.store(0, std::memory_order_relaxed);
  task_retries_.store(0, std::memory_order_relaxed);
}

}  // namespace tdg
