// Structured failure model of the tdg runtime.
//
// Failure taxonomy (see DESIGN.md, "Failure model"):
//   * UsageError     — recoverable API misuse (bad argument, protocol
//                      violation the caller can fix). Thrown by TDG_REQUIRE;
//                      the runtime's internal state stays valid.
//   * TaskGroupError — one or more task bodies threw. Raised at taskwait()
//                      after the graph has drained: failed tasks carry their
//                      original exception_ptr, transitively-dependent tasks
//                      are reported as cancelled (their bodies never ran).
//   * DeadlineError  — a watchdog or deadline-aware wait detected no
//                      progress; carries a diagnostic report naming what is
//                      stuck (live tasks, unfulfilled detach events, pending
//                      MPI requests).
//
// Genuine invariant violations (memory-corrupting protocol bugs) remain
// TDG_CHECK -> abort: a broken runtime must not unwind through user frames.
#pragma once

#include <cstdint>
#include <exception>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace tdg {

/// Root of the tdg exception hierarchy.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Recoverable API misuse: the call is rejected, the runtime stays usable.
class UsageError : public Error {
 public:
  using Error::Error;
};

/// A watchdog deadline expired with no progress. `what()` is the full
/// diagnostic report.
class DeadlineError : public Error {
 public:
  explicit DeadlineError(std::string report)
      : Error(report), report_(std::move(report)) {}
  const std::string& report() const noexcept { return report_; }

 private:
  std::string report_;
};

/// The TDG soundness verifier (TDG_VERIFY=strict) found violations at a
/// taskwait or persistent-region boundary: a conflicting access pair the
/// discovered graph does not order (determinacy race), a cyclic edge set,
/// or PTSG replay drift. `what()` is the full report.
class VerifyError : public Error {
 public:
  explicit VerifyError(std::string report)
      : Error(report), report_(std::move(report)) {}
  const std::string& report() const noexcept { return report_; }

 private:
  std::string report_;
};

/// The online race detector (TDG_RACE=strict) confirmed a happens-before
/// violation: two conflicting accesses the discovered graph does not order,
/// flagged live by the shadow table and — where possible — escalated to the
/// offline verifier over the flagged window. `what()` is the full report.
class RaceError : public Error {
 public:
  explicit RaceError(std::string report)
      : Error(report), report_(std::move(report)) {}
  const std::string& report() const noexcept { return report_; }

 private:
  std::string report_;
};

/// A remote rank died (fault-plan kill or heartbeat timeout) while an
/// operation depended on it: in-flight receives from the dead rank fail
/// fast with this error, and the dead rank's own unwinding uses it too.
/// `rank()` names the failed rank.
class RankFailedError : public Error {
 public:
  RankFailedError(int rank, std::string msg)
      : Error(std::move(msg)), rank_(rank) {}
  int rank() const noexcept { return rank_; }

 private:
  int rank_;
};

/// One task whose body threw (after exhausting its retry budget).
struct TaskFailure {
  std::uint64_t task_id = 0;
  std::string label;
  std::string message;       ///< what() of the captured exception
  std::exception_ptr error;  ///< the original exception, rethrowable
  std::uint32_t attempts = 0;  ///< executions tried (1 + retries used)
};

/// One task cancelled because a (transitive) predecessor failed. Its body
/// never ran.
struct CancelledTask {
  std::uint64_t task_id = 0;
  std::string label;
};

/// Aggregated failure state of a task graph, thrown by Runtime::taskwait()
/// once every live task has drained (ran, failed, or was cancelled).
class TaskGroupError : public Error {
 public:
  TaskGroupError(std::vector<TaskFailure> failures,
                 std::vector<CancelledTask> cancelled)
      : Error(format(failures, cancelled)),
        failures_(std::move(failures)),
        cancelled_(std::move(cancelled)) {}

  const std::vector<TaskFailure>& failures() const noexcept {
    return failures_;
  }
  const std::vector<CancelledTask>& cancelled() const noexcept {
    return cancelled_;
  }

  /// Rethrow the first captured task exception (debugging helper).
  [[noreturn]] void rethrow_first() const {
    std::rethrow_exception(failures_.front().error);
  }

 private:
  static std::string format(const std::vector<TaskFailure>& failures,
                            const std::vector<CancelledTask>& cancelled) {
    std::string s = "task group failed: " +
                    std::to_string(failures.size()) + " task(s) threw, " +
                    std::to_string(cancelled.size()) + " cancelled";
    for (const TaskFailure& f : failures) {
      s += "\n  failed: task '" + f.label + "' (id " +
           std::to_string(f.task_id) + ", " + std::to_string(f.attempts) +
           " attempt(s)): " + f.message;
    }
    for (const CancelledTask& c : cancelled) {
      s += "\n  cancelled: task '" + c.label + "' (id " +
           std::to_string(c.task_id) + ")";
    }
    return s;
  }

  std::vector<TaskFailure> failures_;
  std::vector<CancelledTask> cancelled_;
};

/// Extract a human-readable message from an in-flight exception.
inline std::string describe_exception(const std::exception_ptr& e) {
  if (!e) return "<no exception>";
  try {
    std::rethrow_exception(e);
  } catch (const std::exception& ex) {
    return ex.what();
  } catch (...) {
    return "<non-std exception>";
  }
}

/// Recoverable-misuse check: throws tdg::UsageError instead of aborting.
/// Use for conditions a caller can cause (and fix); keep TDG_CHECK for
/// internal invariants whose violation means the runtime state is corrupt.
#define TDG_REQUIRE(cond, msg)              \
  do {                                      \
    if (!(cond)) throw ::tdg::UsageError(msg); \
  } while (0)

}  // namespace tdg
