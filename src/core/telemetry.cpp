#include "core/telemetry.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <ostream>

namespace tdg {

TelemetryConfig telemetry_env_config() {
  TelemetryConfig cfg;
  const char* mode = std::getenv("TDG_TELEMETRY");
  if (mode != nullptr) {
    if (std::strcmp(mode, "on") == 0 || std::strcmp(mode, "1") == 0 ||
        std::strcmp(mode, "true") == 0) {
      cfg.enabled = true;
    } else if (std::strcmp(mode, "dump") == 0) {
      cfg.enabled = true;
      cfg.dump = true;
    }
    // anything else (off, 0, empty, typos) leaves telemetry off
  }
  if (const char* path = std::getenv("TDG_TELEMETRY_FILE");
      path != nullptr && *path != '\0') {
    cfg.path = path;
  }
  if (const char* period = std::getenv("TDG_TELEMETRY_PERIOD_MS");
      period != nullptr && *period != '\0') {
    const long ms = std::strtol(period, nullptr, 10);
    if (ms > 0) cfg.period_ns = static_cast<std::uint64_t>(ms) * 1'000'000;
  }
  return cfg;
}

TelemetryHub& TelemetryHub::instance() {
  static TelemetryHub hub;
  return hub;
}

std::shared_ptr<TelemetryRing> TelemetryHub::attach(int rank,
                                                    std::size_t capacity) {
  auto ring = std::make_shared<TelemetryRing>(capacity);
  std::lock_guard<std::mutex> g(mu_);
  rings_.emplace_back(rank, ring);
  return ring;
}

std::vector<RankTelemetry> TelemetryHub::collect() const {
  std::vector<std::pair<int, std::shared_ptr<TelemetryRing>>> rings;
  {
    std::lock_guard<std::mutex> g(mu_);
    rings = rings_;
  }
  std::vector<RankTelemetry> out;
  for (const auto& [rank, ring] : rings) {
    auto it = std::find_if(out.begin(), out.end(), [rank = rank](
                               const RankTelemetry& t) {
      return t.rank == rank;
    });
    if (it == out.end()) {
      out.push_back(RankTelemetry{rank, {}});
      it = out.end() - 1;
    }
    std::vector<TelemetrySample> samples = ring->snapshot();
    it->samples.insert(it->samples.end(), samples.begin(), samples.end());
  }
  for (RankTelemetry& t : out) {
    std::stable_sort(t.samples.begin(), t.samples.end(),
                     [](const TelemetrySample& a, const TelemetrySample& b) {
                       return a.t_ns < b.t_ns;
                     });
  }
  std::sort(out.begin(), out.end(),
            [](const RankTelemetry& a, const RankTelemetry& b) {
              return a.rank < b.rank;
            });
  return out;
}

std::vector<RankTelemetry> TelemetryHub::drain() {
  std::vector<RankTelemetry> out = collect();
  std::lock_guard<std::mutex> g(mu_);
  rings_.clear();
  return out;
}

void TelemetryHub::write_json(std::ostream& os,
                              const std::vector<RankTelemetry>& telemetry) {
  os << "{\"ranks\":[";
  bool first_rank = true;
  for (const RankTelemetry& t : telemetry) {
    if (!first_rank) os << ',';
    first_rank = false;
    os << "\n{\"rank\":" << t.rank << ",\"samples\":[";
    bool first = true;
    for (const TelemetrySample& s : t.samples) {
      if (!first) os << ',';
      first = false;
      os << "\n{\"t_ns\":" << s.t_ns
         << ",\"tasks_executed\":" << s.tasks_executed
         << ",\"tasks_ready\":" << s.tasks_ready
         << ",\"sends\":" << s.sends << ",\"recvs\":" << s.recvs
         << ",\"bytes_sent\":" << s.bytes_sent
         << ",\"allreduces\":" << s.allreduces
         << ",\"retransmits\":" << s.retransmits
         << ",\"dup_suppressed\":" << s.dup_suppressed
         << ",\"giveups\":" << s.giveups
         << ",\"drops_injected\":" << s.drops_injected
         << ",\"ranks_failed\":" << s.ranks_failed << '}';
    }
    os << "]}";
  }
  os << "\n]}\n";
}

}  // namespace tdg
