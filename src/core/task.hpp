// Task descriptor: body storage, readiness refcount, successor edges,
// detach events and persistent-graph bookkeeping.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <exception>
#include <new>
#include <type_traits>
#include <utility>

#include "core/common.hpp"
#include "core/depend_types.hpp"
#include "core/slab.hpp"

namespace tdg {

class Task;
class Runtime;

/// Lifecycle states of a task (profiling / assertions).
enum class TaskState : std::uint8_t {
  Created,    ///< discovered, predecessors outstanding
  Ready,      ///< all predecessors satisfied, queued
  Running,    ///< body executing on some thread
  Detached,   ///< body done, waiting on a detach event
  Finished,   ///< complete; successors released
  Failed,     ///< body threw after exhausting retries; successors cancelled
  Cancelled,  ///< a transitive predecessor failed; body never ran
};

/// Detach event (OpenMP `detach(event)` clause). A task carrying an event
/// only completes once both its body has returned and the event has been
/// fulfilled — e.g. by an MPI request completion callback.
class Event {
 public:
  /// Fulfill the event. Idempotent; safe from any thread. If the owning
  /// task body has already returned, this triggers task completion.
  void fulfill();

  /// Fail the event: the owning task is marked Failed carrying `err`, its
  /// dependents are cancelled through graph poisoning, and the graph keeps
  /// draining. Used when the operation a detach waits on can never
  /// complete (e.g. a receive from a dead rank). Idempotent with respect
  /// to fulfill(): whichever happens first wins.
  void poison(std::exception_ptr err);

  bool fulfilled() const noexcept {
    return fulfilled_.load(std::memory_order_acquire);
  }

  /// Label / id of the owning task (watchdog diagnostics; valid once the
  /// event has been attached via TaskOpts::detach). Labels are static
  /// strings, so the snapshot stays readable for the event's lifetime.
  const char* task_label() const noexcept { return task_label_; }
  std::uint64_t task_id() const noexcept { return task_id_; }
  /// TaskOpts::idempotent of the owning task (recovery contract probe).
  bool task_idempotent() const noexcept { return task_idempotent_; }

 private:
  friend class Runtime;
  friend class Task;
  friend class PersistentRegion;
  std::atomic<bool> fulfilled_{false};
  Task* task_ = nullptr;     // owning task, set at submit
  Runtime* runtime_ = nullptr;
  const char* task_label_ = "";  // diagnostic snapshot, set at submit
  std::uint64_t task_id_ = 0;
  bool task_idempotent_ = false;  // snapshot of TaskOpts::idempotent
};

/// Type-erased task body with inline small-buffer storage.
///
/// Persistent-graph replay (optimization (p) of the paper) overwrites the
/// stored capture with the bytes of a freshly-built callable of the same
/// type: a plain memcpy for trivially-copyable captures, the type's copy
/// assignment otherwise. This mirrors the paper's "task initialization cost
/// reduced to a single memcpy on firstprivate data".
class TaskBody {
 public:
  static constexpr std::size_t kInlineBytes = 192;

  TaskBody() = default;
  TaskBody(const TaskBody&) = delete;
  TaskBody& operator=(const TaskBody&) = delete;

  ~TaskBody() { reset(); }

  template <class F>
  void emplace(F&& fn) {
    using Fn = std::decay_t<F>;
    reset();
    void* where;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      where = inline_;
    } else {
      heap_ = ::operator new(sizeof(Fn), std::align_val_t{alignof(Fn)});
      where = heap_;
      align_ = alignof(Fn);
    }
    ::new (where) Fn(std::forward<F>(fn));
    size_ = sizeof(Fn);
    invoke_ = [](void* p) { (*static_cast<Fn*>(p))(); };
    destroy_ = [](void* p) { static_cast<Fn*>(p)->~Fn(); };
    if constexpr (std::is_trivially_copyable_v<Fn>) {
      assign_ = nullptr;  // plain memcpy is valid
    } else {
      // Lambdas have no copy assignment: destroy + copy-construct.
      assign_ = [](void* dst, const void* src) {
        static_cast<Fn*>(dst)->~Fn();
        ::new (dst) Fn(*static_cast<const Fn*>(src));
      };
    }
  }

  /// Replay-path update: overwrite the stored capture with the capture of
  /// `fn`, which must be the same type as the originally-stored callable
  /// (guaranteed by identical submission order in a persistent region).
  template <class F>
  void update(F&& fn) {
    using Fn = std::decay_t<F>;
    TDG_DCHECK(size_ == sizeof(Fn), "persistent replay type mismatch");
    Fn tmp(std::forward<F>(fn));
    if (assign_ == nullptr) {
      std::memcpy(storage(), &tmp, sizeof(Fn));
    } else {
      assign_(storage(), &tmp);
    }
  }

  void invoke() {
    TDG_DCHECK(invoke_ != nullptr, "invoking empty task body");
    invoke_(storage());
  }

  bool empty() const noexcept { return invoke_ == nullptr; }
  std::size_t capture_bytes() const noexcept { return size_; }
  bool trivially_copyable() const noexcept { return assign_ == nullptr; }

  /// Stable pointer to the stored capture bytes, for compiled PTSG replay
  /// plans: when the capture is trivially copyable, replay overwrites it
  /// with one memcpy straight from the freshly-built callable, skipping
  /// the type-erased update() dispatch. Valid while a callable is stored;
  /// replay never re-emplaces, so the pointer is stable across iterations.
  void* capture_dst() noexcept {
    return invoke_ != nullptr ? storage() : nullptr;
  }

  void reset() {
    if (invoke_ != nullptr) {
      destroy_(storage());
      invoke_ = nullptr;
      destroy_ = nullptr;
      assign_ = nullptr;
    }
    if (heap_ != nullptr) {
      ::operator delete(heap_, std::align_val_t{align_});
      heap_ = nullptr;
    }
    size_ = 0;
  }

 private:
  void* storage() noexcept { return heap_ != nullptr ? heap_ : inline_; }

  alignas(std::max_align_t) unsigned char inline_[kInlineBytes];
  void* heap_ = nullptr;
  std::size_t align_ = alignof(std::max_align_t);
  std::size_t size_ = 0;
  void (*invoke_)(void*) = nullptr;
  void (*destroy_)(void*) = nullptr;
  void (*assign_)(void*, const void*) = nullptr;
};

/// Per-task options supplied at submission.
struct TaskOpts {
  const char* label = "";     ///< profiler label (static string)
  Event* detach = nullptr;    ///< detach event; task completes on fulfill
  bool internal = false;      ///< runtime-inserted node (e.g. inoutset R)
  /// The body's effect is safe to re-execute or re-satisfy locally: the
  /// recovery layer may re-route or locally complete this task's detach
  /// instead of poisoning it when a peer rank dies. Annotating a
  /// non-idempotent task invites stale/duplicated effects — the contract
  /// is that the body writes only its declared outputs, from inputs that
  /// remain valid after a failure.
  bool idempotent = false;
  /// Transient-failure policy: a body that throws is re-run up to
  /// `max_retries` times before the task is declared failed and its
  /// dependents cancelled. Retries sleep `retry_backoff_seconds * 2^k`
  /// (k = 0, 1, ...) between attempts, on the executing worker.
  std::uint32_t max_retries = 0;
  double retry_backoff_seconds = 0.0;
};

/// A task descriptor. Instances are reference counted: the dependency map,
/// the persistent region and the task itself (until completion) each hold a
/// reference, so a pointer obtained from the map is always valid.
/// Descriptors are normally placement-constructed in a TaskArena slab
/// block (Runtime::allocate_task) and recycled on final release; a
/// plain-`new`ed descriptor (arena == nullptr) still works for tests.
class Task {
 public:
  /// Successor-edge storage. The inline capacity matches the graph shapes
  /// of the figure benches (telemetry: LULESH/HPCG writers fan out to 1-3
  /// consumers after dedup, chains to exactly 1); larger fan-outs —
  /// inoutset redirects, wide reader sets — spill to the heap. The
  /// inline-or-heap union keeps the list at 40 bytes, so sizeof(Task)
  /// stays within the 448-byte slab block of the std::vector layout.
  static constexpr std::size_t kInlineSuccessors = 4;
  using SuccessorList = small_vector<Task*, kInlineSuccessors>;

  explicit Task(std::uint64_t id, TaskArena* arena = nullptr,
                Runtime* owner = nullptr)
      : id_(id), arena_(arena), owner_(owner) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  std::uint64_t id() const noexcept { return id_; }

  /// The tenant runtime this task belongs to. Shared-pool workers execute
  /// tasks of many tenants and dispatch completion/metrics/poisoning
  /// through this backpointer; a pending task keeps its runtime alive (the
  /// runtime's destructor drains before detaching from the pool), so the
  /// pointer is valid for as long as the task is reachable from any queue.
  /// Null only for plain-heap descriptors constructed outside a runtime
  /// (tests).
  Runtime* owner() const noexcept { return owner_; }

  // --- descriptor reference counting -------------------------------------
  void retain() noexcept { refs_.fetch_add(1, std::memory_order_relaxed); }
  /// Returns true when this release destroyed the task. The block goes
  /// back to the owning arena's freelist (lock-free, any thread) instead
  /// of the global heap.
  bool release() noexcept {
    if (refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      TaskArena* a = arena_;
      if (a != nullptr) {
        this->~Task();
        a->deallocate(this);
      } else {
        delete this;
      }
      return true;
    }
    return false;
  }

  // --- edges ---------------------------------------------------------------
  /// Outcome of attempting to create an edge  this -> succ.
  enum class EdgeResult : std::uint8_t {
    Created,   ///< edge recorded; successor refcount must be incremented
    Pruned,    ///< predecessor already finished; no constraint needed
    Recorded,  ///< persistent mode: edge recorded for replay, but the
               ///< predecessor already finished so no refcount this round
  };

  /// Create a precedence edge from this task to `succ`. Thread-safe against
  /// concurrent completion of `this`. In persistent mode edges to finished
  /// predecessors are still recorded (the paper: "creating every edge is
  /// necessary since no edges are recreated on future iterations").
  /// Graph poisoning: an edge to a predecessor that already finished in a
  /// failed/cancelled state cancels the successor immediately — pruning
  /// must not let a late-discovered dependent escape cancellation.
  EdgeResult add_successor(Task* succ, bool persistent) {
    SpinGuard g(succ_lock_);
    if (finished_flag_) {
      if (poisoned_flag_) {
        succ->cancelled.store(true, std::memory_order_release);
      }
      if (!persistent) return EdgeResult::Pruned;
      successors_.push_back(succ);
      return EdgeResult::Recorded;
    }
    successors_.push_back(succ);
    return EdgeResult::Created;
  }

  /// Snapshot successors and mark finished, so that later add_successor
  /// calls observe completion. Called once per execution instance. When
  /// `keep` (persistent task), the recorded list is preserved for replay.
  /// `poisoned` marks this instance failed/cancelled, so late edges to it
  /// cancel their successor (see add_successor).
  SuccessorList snapshot_successors_and_finish(bool keep,
                                                    bool poisoned) {
    SpinGuard g(succ_lock_);
    finished_flag_ = true;
    poisoned_flag_ = poisoned;
    if (keep) return successors_;  // copy
    return std::move(successors_);
  }

  /// Persistent re-arm: clear the finished flag so the recorded successor
  /// list applies again next iteration (the list is NOT cleared), and
  /// reset the failure state of the previous iteration's instance.
  void rearm_persistent() {
    SpinGuard g(succ_lock_);
    finished_flag_ = false;
    poisoned_flag_ = false;
    failed = false;
    retry_attempts = 0;  // each replayed instance gets the full budget
    cancelled.store(false, std::memory_order_relaxed);
  }

  const SuccessorList& successors_unsafe() const { return successors_; }

  // --- readiness refcount ---------------------------------------------------
  /// Predecessor counter. Convention: a task is created with value 1 (the
  /// discovery guard); each inbound edge adds 1; the producer drops the
  /// guard once the depend clause is fully processed. Reaching 0 => ready.
  std::atomic<std::int32_t> npredecessors{1};

  /// Completion latch: 1 for the body, +1 when a detach event is attached.
  std::atomic<std::int32_t> completion_latch{1};

  // --- failure state ----------------------------------------------------------
  /// Set (with release) before the predecessor's count is dropped when a
  /// transitive predecessor failed; observed (acquire via npredecessors)
  /// when the task becomes ready, where its body is skipped.
  std::atomic<bool> cancelled{false};
  /// Set by the executing thread after the final failed attempt, before
  /// the completion-latch decrement (which orders it for the completer).
  bool failed = false;
  /// Clock record handed out by the online race detector at discovery
  /// (producer-side, before the discovery guard drops, so workers see it
  /// via the npredecessors acq_rel chain). Null for unsampled tasks, which
  /// then skip the detector's start/finish hooks entirely; non-null lets
  /// the start hook reach its clauses without a map lookup. Valid until
  /// the next taskwait barrier, by which point the task has completed.
  void* race_clock = nullptr;
  /// Attempts already burned by the retry policy. Persists across
  /// deferred-retry requeues (the task leaves and re-enters the scheduler
  /// between attempts instead of sleeping on a worker).
  std::uint32_t retry_attempts = 0;
  /// Earliest time the next retry attempt may run (set when the body
  /// failed with a nonzero backoff; consumed by the deferred queue).
  std::uint64_t retry_not_before_ns = 0;

  // --- persistent-graph bookkeeping -----------------------------------------
  bool persistent = false;
  /// Total inbound edges recorded during first-iteration discovery,
  /// including edges to then-already-finished predecessors.
  std::int32_t persistent_indegree = 0;

  // --- duplicate-edge detection (optimization (b)) ---------------------------
  /// Id of the most recent successor an edge was created to. Discovery is
  /// sequential, so a repeated (pred,succ) pair is detected in O(1).
  std::uint64_t last_successor_id = 0;

  // --- body / metadata -------------------------------------------------------
  TaskBody body;
  TaskOpts opts;
  Event* detach_event = nullptr;
  std::atomic<TaskState> state{TaskState::Created};

  // --- profiling --------------------------------------------------------------
  std::uint64_t t_create = 0;
  std::uint64_t t_ready = 0;
  std::uint64_t t_start = 0;
  std::uint64_t t_end = 0;
  std::uint32_t exec_thread = 0;
  std::uint32_t iteration = 0;  ///< persistent-region iteration index

 private:
  ~Task() = default;  // heap-only; destroyed via release()

  const std::uint64_t id_;
  TaskArena* arena_ = nullptr;  // recycle target; nullptr = plain heap
  Runtime* owner_ = nullptr;    // owning tenant runtime (see owner())
  std::atomic<std::int32_t> refs_{1};

  SpinLock succ_lock_;
  bool finished_flag_ = false;
  bool poisoned_flag_ = false;  // finished in a failed/cancelled state
  SuccessorList successors_;
};

}  // namespace tdg
