// Offline TDG soundness verification, PTSG replay-safety checking, and
// depend-clause linting.
//
// The runtime's entire contract is that the discovered Task Dependency
// Graph is a correct serialization of the program's depend clauses: every
// pair of tasks with a conflicting access (W/W, W/R, cross-generation
// inoutset) must be transitively ordered by graph edges (or separated by a
// taskwait barrier). After the scheduler and discovery layers were rebuilt
// as hand-rolled lock-free/open-addressing code, nothing checked that
// independently — this module is the correctness oracle.
//
// Everything here is pure: inputs are the Profiler's access/edge/barrier
// streams (or a parsed trace file), outputs are value-type reports, so the
// in-runtime TDG_VERIFY modes, the tdg-lint CLI and the self-tests share
// one code path. The checker re-derives the *required* ordering relation
// from the clauses alone (a shadow of the sequential discovery semantics,
// deliberately independent of DependencyMap's dedup/redirect machinery)
// and then proves or refutes each required pair against the graph the
// runtime actually built, using a reachability-bitset pass over the
// discovered edges in topological order.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/depend_types.hpp"
#include "core/profiler.hpp"

namespace tdg {

/// `TDG_VERIFY` runtime switch.
///   off    — no capture, no checking (default).
///   post   — the checker runs at every taskwait / end_iteration;
///            violations are reported to stderr, execution continues.
///   strict — violations raise tdg::VerifyError at the taskwait.
enum class VerifyMode : std::uint8_t { Off, Post, Strict };

/// Parse TDG_VERIFY (off | post | strict; anything else = Default, which
/// leaves the Config value in charge).
enum class VerifyEnvMode : std::uint8_t { Default, Off, Post, Strict };
VerifyEnvMode verify_env_mode();

struct VerifyOptions {
  /// Cap on the findings materialized in the report (the totals keep
  /// counting past it).
  std::size_t max_reports = 64;
  /// Graphs up to this many vertices get the O(V*E/64) dense
  /// reachability-bitset pass with O(1) pair queries; larger graphs fall
  /// back to per-pair BFS pruned by topological position (edges are a hash
  /// lookup, misses cost one bounded traversal). Tests set 0 to force the
  /// sparse path.
  std::size_t dense_limit = std::size_t{1} << 14;
};

/// One determinacy race: a conflicting access pair the discovered graph
/// does not order.
struct RaceFinding {
  std::uint64_t addr = 0;
  std::uint64_t pred_id = 0;  ///< earlier submission
  std::uint64_t succ_id = 0;  ///< later submission
  DependType pred_type = DependType::In;
  DependType succ_type = DependType::In;
  std::string pred_label;
  std::string succ_label;

  std::string to_string() const;
};

/// Result of one soundness check.
struct VerifyReport {
  std::size_t tasks = 0;      ///< vertices (user tasks + internal nodes)
  std::size_t edges = 0;      ///< discovered edges examined
  std::size_t addresses = 0;  ///< distinct depend addresses
  std::size_t pairs_checked = 0;  ///< required ordering constraints tested
  std::size_t races_total = 0;    ///< violations found (>= races.size())
  bool cycle = false;             ///< edge set is cyclic (malformed graph)
  std::uint64_t cycle_task = 0;   ///< one task id on a cycle, if any
  std::vector<RaceFinding> races;  ///< first max_reports violations

  bool ok() const { return races_total == 0 && !cycle; }
  /// Multi-line human-readable report (violations, then totals).
  std::string summary() const;
};

/// Prove or refute that the discovered graph orders every conflicting
/// access pair. `accesses` is the per-task depend-clause stream in
/// submission order (ids strictly increasing task by task), `edges` the
/// discovered edge stream (including pruned and redirect-node edges), and
/// `barriers` the taskwait cutoffs: tasks with id <= cutoff completed
/// before any task with id > cutoff was submitted, so such pairs are
/// ordered even without a path. `scope_clears` mirrors
/// Runtime::clear_dependency_scope — the shadow history resets at each
/// cutoff, since the program explicitly severed discovery there.
VerifyReport verify_tdg(std::span<const AccessRecord> accesses,
                        std::span<const TraceEdge> edges,
                        std::span<const std::uint64_t> barriers = {},
                        std::span<const std::uint64_t> scope_clears = {},
                        const VerifyOptions& opts = {});

/// Escalation entry point for the online race detector: run verify_tdg
/// restricted to tasks with id > window_lo (the barrier cutoff in force
/// when a window was flagged). Edges/barriers/scope-clears are filtered to
/// the window too — sound because discovered edges ascend in id, so an
/// ordering path between in-window tasks never leaves the window.
VerifyReport verify_window(std::span<const AccessRecord> accesses,
                           std::span<const TraceEdge> edges,
                           std::span<const std::uint64_t> barriers,
                           std::span<const std::uint64_t> scope_clears,
                           std::uint64_t window_lo,
                           const VerifyOptions& opts = {});

// ---------------------------------------------------------------------------
// Depend-clause lint (the user-side minimization of paper optimization (a))
// ---------------------------------------------------------------------------

enum class LintKind : std::uint8_t {
  /// `inout` whose write-ordering is never consumed (no later access on the
  /// address) while readers since the last modification forced extra
  /// reader->task edges: if the task only reads, `in` drops those edges.
  RedundantInout,
  /// A depend address touched by exactly one task: the clause never matched
  /// any other access and created no edges.
  DeadDependence,
  /// An inoutset generation with a single member: `inout` expresses the
  /// same ordering without the concurrent-set machinery (and without ever
  /// paying for a redirect node).
  SingletonInoutset,
  /// Two clause items on the same task whose declared byte ranges overlap
  /// but use different base addresses: discovery matches base identity
  /// only, so the items never order against each other's conflicting
  /// partners — a likely aliasing mistake.
  OverlappingRange,
};

struct LintFinding {
  LintKind kind = LintKind::DeadDependence;
  std::uint64_t addr = 0;
  std::uint64_t task_id = 0;
  std::string label;
  std::string message;  ///< full diagnostic, including the suggestion
};

/// Lint a depend-clause stream. Findings are advisory: they flag clauses
/// that are semantically sound but cost discovery work (edges, redirect
/// nodes, history churn) that a tighter clause avoids.
std::vector<LintFinding> lint_clauses(std::span<const AccessRecord> accesses);

const char* lint_kind_name(LintKind kind);

// ---------------------------------------------------------------------------
// PTSG replay-safety check (optimization (p))
// ---------------------------------------------------------------------------

/// The depend-clause stream of one persistent-region iteration: every
/// clause of every task, in submission order. Replay iterations must
/// reproduce the discovery iteration's stream exactly — same addresses,
/// same types, same order — or the cached graph no longer matches the
/// program (firstprivate-address drift, stale redirect nodes).
class ClauseStream {
 public:
  void add_task(std::span<const Depend> deps) {
    items_.insert(items_.end(), deps.begin(), deps.end());
    offsets_.push_back(static_cast<std::uint32_t>(items_.size()));
  }
  void clear() {
    items_.clear();
    offsets_.clear();
  }

  std::size_t tasks() const { return offsets_.size(); }
  std::span<const Depend> clause(std::size_t i) const {
    const std::uint32_t begin = i == 0 ? 0 : offsets_[i - 1];
    return {items_.data() + begin, offsets_[i] - begin};
  }
  std::size_t total_items() const { return items_.size(); }

 private:
  std::vector<Depend> items_;
  std::vector<std::uint32_t> offsets_;  ///< end offset of task i's clause
};

struct ReplayDriftFinding {
  /// Replay slot (submission index within the iteration); SIZE_MAX for
  /// stream-level findings (task-count mismatch, graph-level diffs).
  std::size_t slot = SIZE_MAX;
  std::string message;
};

/// Diff a replay iteration's clause stream against the discovery
/// iteration's. Reports per-slot clause divergence (address/type/count
/// drift) and then re-discovers both graphs from the clauses alone and
/// diffs them edge by edge, so a drift that changes the graph shape is
/// reported as the missing/extra orderings it causes.
std::vector<ReplayDriftFinding> diff_replay_clauses(
    const ClauseStream& reference, const ClauseStream& replay,
    std::size_t max_reports = 16);

}  // namespace tdg
