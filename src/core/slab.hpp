// Slab / freelist arena for task descriptors, replacing the global-heap
// `new`/`delete` per discovered task. Discovery is sequential (single
// producer), so allocation is effectively single-threaded, but tasks are
// *freed* by whichever thread drops the last reference — usually a worker
// completing the task. The arena therefore splits the two paths:
//
//  * allocate(shard): owner-local freelist, then a wait-free grab of the
//    whole remote-free stack, then a bump pointer into the shard's current
//    slab chunk, then a new chunk (the only path that takes a lock, once
//    per kBlocksPerChunk tasks).
//  * deallocate(p): a single CAS push onto a Treiber stack from any
//    thread. Consumers never pop individual nodes — allocate() exchanges
//    the whole stack head with nullptr — so the classic ABA problem cannot
//    arise.
//
// Blocks are fixed-size, cache-line aligned and recycled indefinitely.
// When an arena is destroyed (after the owning runtime has drained, so no
// task can outlive it), its chunks are handed to a process-global bounded
// ChunkCache rather than freed: iterative workloads that construct and
// tear down runtimes (benchmarks, per-phase solvers) would otherwise let
// the allocator return tens of megabytes of chunk memory to the OS and
// minor-fault every page back in on the next warm-up — a cost that lands
// inside the measured region and dwarfs the allocator work it replaces.
// PTSG replay is untouched by design: replayed iterations allocate no
// descriptors at all.
//
// Ownership: the task arena belongs to the WorkerPool, not to individual
// runtimes. Each tenant allocates from its own shard (shard = tenant id),
// so discovery stays single-threaded per shard even with many tenants, and
// per-tenant accounting falls out of the shard split. The pool outlives
// every attached tenant (Runtime::~Runtime detaches before the pool dies),
// which is what lets a tenant's in-flight tasks be freed by pool workers
// after the tenant's own front end has been torn down to the drain point.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "core/common.hpp"

namespace tdg {

/// Process-global bounded cache of arena chunks, keyed by chunk byte size.
/// Arenas push their chunks here on destruction and pull from here before
/// asking the system allocator, so chunk memory — and, critically, its
/// already-faulted pages — survives runtime teardown. The cache is cold
/// path only (one touch per kBlocksPerChunk block allocations) and guarded
/// by a spin lock. Retention is capped (default 64 MiB, override with
/// TDG_CHUNK_CACHE_MB; 0 disables); chunks over the cap are freed.
class ChunkCache {
 public:
  static constexpr std::size_t kDefaultCapBytes = 64u << 20;

  /// Pop a cached chunk of exactly `bytes`, or nullptr if none.
  static void* take(std::size_t bytes) {
    Impl& im = impl();
    SpinGuard g(im.lock);
    for (std::size_t i = im.items.size(); i-- > 0;) {
      if (im.items[i].bytes == bytes) {
        void* p = im.items[i].ptr;
        im.cached_bytes -= bytes;
        im.items[i] = im.items.back();
        im.items.pop_back();
        return p;
      }
    }
    return nullptr;
  }

  /// Retire a chunk: cached if under the cap, otherwise freed.
  static void give(void* p, std::size_t bytes) {
    Impl& im = impl();
    {
      SpinGuard g(im.lock);
      if (im.cached_bytes + bytes <= im.cap_bytes) {
        im.items.push_back(Item{p, bytes});
        im.cached_bytes += bytes;
        return;
      }
    }
    ::operator delete(p, std::align_val_t{kCacheLine});
  }

  /// Bytes currently retained (observability / tests).
  static std::size_t cached() {
    Impl& im = impl();
    SpinGuard g(im.lock);
    return im.cached_bytes;
  }

  /// Free everything retained (tests; apps that want the memory back).
  static void trim() {
    Impl& im = impl();
    std::vector<Item> drop;
    {
      SpinGuard g(im.lock);
      drop.swap(im.items);
      im.cached_bytes = 0;
    }
    for (const Item& it : drop) {
      ::operator delete(it.ptr, std::align_val_t{kCacheLine});
    }
  }

 private:
  struct Item {
    void* ptr;
    std::size_t bytes;
  };
  struct Impl {
    SpinLock lock;
    std::vector<Item> items;
    std::size_t cached_bytes = 0;
    std::size_t cap_bytes = cap_from_env();
  };
  /// Intentionally never destroyed: arenas may retire chunks during static
  /// destruction, and the live pointer keeps retained chunks reachable
  /// (leak checkers report them as still-referenced, not leaked).
  static Impl& impl() {
    static Impl* im = new Impl();
    return *im;
  }
  static std::size_t cap_from_env() {
    const char* s = std::getenv("TDG_CHUNK_CACHE_MB");
    if (s == nullptr || *s == '\0') return kDefaultCapBytes;
    char* end = nullptr;
    const unsigned long long mb = std::strtoull(s, &end, 10);
    if (end == s) return kDefaultCapBytes;
    return static_cast<std::size_t>(mb) << 20;
  }
};

class TaskArena {
 public:
  /// Blocks handed out per chunk carve. 256 blocks of ~5 cache lines is a
  /// ~80 KiB chunk: big enough to amortize the lock, small enough that a
  /// tiny runtime (tests, single taskwait) does not balloon.
  static constexpr std::size_t kBlocksPerChunk = 256;

  /// Where an allocation came from (drives the alloc.slab_* counters).
  enum class Source : std::uint8_t {
    Recycled,  ///< served from a freelist (local or grabbed remote stack)
    Fresh,     ///< bump-carved from the shard's current chunk
    NewChunk,  ///< fresh, and a new chunk had to be allocated first
  };

  /// `block_bytes` is the fixed block size (rounded up to a cache line);
  /// `nshards` is the worker-team size (shard i is only ever used by
  /// thread slot i, matching the runtime's single-producer discipline).
  TaskArena(std::size_t block_bytes, unsigned nshards)
      : block_bytes_((block_bytes + kCacheLine - 1) & ~(kCacheLine - 1)),
        shards_(nshards > 0 ? nshards : 1) {}

  ~TaskArena() {
    const std::size_t bytes = block_bytes_ * kBlocksPerChunk;
    for (void* c : chunks_) {
      ChunkCache::give(c, bytes);
    }
  }
  TaskArena(const TaskArena&) = delete;
  TaskArena& operator=(const TaskArena&) = delete;

  /// Allocate one block. Owner-sharded: concurrent calls with the same
  /// `shard` are not allowed (the runtime's submission path is already
  /// single-producer).
  void* allocate(unsigned shard, Source& src) {
    Shard& s = shards_[shard < shards_.size() ? shard : 0];
    FreeNode* n = s.local;
    if (n == nullptr) {
      // Grab the entire remote-free stack in one exchange (wait-free).
      n = remote_.exchange(nullptr, std::memory_order_acquire);
    }
    if (n != nullptr) {
      s.local = n->next;
      live_blocks_.fetch_add(1, std::memory_order_relaxed);
      src = Source::Recycled;
      return n;
    }
    src = Source::Fresh;
    if (s.bump == s.bump_end) {
      carve_chunk(s);
      src = Source::NewChunk;
    }
    void* p = s.bump;
    s.bump += block_bytes_;
    live_blocks_.fetch_add(1, std::memory_order_relaxed);
    return p;
  }

  /// Return one block (any thread, lock-free).
  void deallocate(void* p) noexcept {
    FreeNode* n = static_cast<FreeNode*>(p);
    FreeNode* head = remote_.load(std::memory_order_relaxed);
    do {
      n->next = head;
    } while (!remote_.compare_exchange_weak(head, n,
                                            std::memory_order_release,
                                            std::memory_order_relaxed));
    live_blocks_.fetch_sub(1, std::memory_order_relaxed);
  }

  std::size_t block_bytes() const { return block_bytes_; }
  unsigned num_shards() const {
    return static_cast<unsigned>(shards_.size());
  }
  /// Blocks currently handed out (allocated minus freed) — the leak check
  /// used by the churn test: zero once every task descriptor was released.
  std::size_t live_blocks() const {
    return live_blocks_.load(std::memory_order_relaxed);
  }
  /// Chunks carved so far (monotonic; memory high-water mark).
  std::size_t chunks_allocated() const {
    SpinGuard g(chunks_lock_);
    return chunks_.size();
  }
  /// Chunks carved on behalf of one shard — per-tenant memory attribution
  /// under a shared pool (shard = tenant id). Racy-by-design read of the
  /// owner-thread counter; monitoring only.
  std::size_t chunks_carved(unsigned shard) const {
    return shard < shards_.size() ? shards_[shard].carved : 0;
  }
  /// Blocks a shard ever carved fresh (recycles not included): an upper
  /// bound on the tenant's descriptor footprint.
  std::size_t blocks_carved(unsigned shard) const {
    return chunks_carved(shard) * kBlocksPerChunk;
  }

 private:
  struct FreeNode {
    FreeNode* next;
  };
  struct alignas(kCacheLine) Shard {
    FreeNode* local = nullptr;        // owner-thread only
    unsigned char* bump = nullptr;    // owner-thread only
    unsigned char* bump_end = nullptr;
    std::size_t carved = 0;           // chunks this shard triggered
  };

  void carve_chunk(Shard& s) {
    const std::size_t bytes = block_bytes_ * kBlocksPerChunk;
    void* chunk = ChunkCache::take(bytes);
    if (chunk == nullptr) {
      chunk = ::operator new(bytes, std::align_val_t{kCacheLine});
    }
    {
      SpinGuard g(chunks_lock_);
      chunks_.push_back(chunk);
    }
    s.bump = static_cast<unsigned char*>(chunk);
    s.bump_end = s.bump + bytes;
    ++s.carved;
  }

  const std::size_t block_bytes_;
  alignas(kCacheLine) std::atomic<FreeNode*> remote_{nullptr};
  alignas(kCacheLine) std::atomic<std::size_t> live_blocks_{0};
  std::vector<Shard> shards_;
  mutable SpinLock chunks_lock_;
  std::vector<void*> chunks_;
};

}  // namespace tdg
