// Online sampling determinacy-race detection, checked at discovery time.
//
// The offline verifier (core/verify.hpp) is post-mortem and O(V*E/64) — a
// correctness oracle for CI, not something to run under production traffic.
// This module is the always-on complement: discovery is the one place every
// task's depend clauses flow through (the paper's central observation is
// that this path is cheap enough to live on the critical path), so the
// detector rides it.
//
//   * Per-task vector clocks are maintained at discovery time: every
//     discovered TDG edge joins the predecessor's clock into the successor
//     (lane-compressed: lane = id % W, value = max predecessor id on that
//     lane), and taskwait drains advance a global epoch cutoff. The clock
//     query `ordered(a, b)` is sound-for-flagging: it answers "ordered"
//     only with proof (a joined lane, a barrier cutoff), so a flag is
//     never the product of lane aliasing — collisions can only hide races,
//     never invent them.
//   * An address-range shadow table (interval entries storing the last
//     writer set + reader set, slab-allocated like DependencyMap's
//     AddrEntrys) is checked at task start/finish: check-then-install runs
//     atomically under one lock, so of any unordered conflicting pair the
//     later-starting task is guaranteed to see the earlier one's entry.
//   * Sampling (`TDG_RACE=off|sample|strict`, `TDG_RACE_SAMPLE_TASKS=N`,
//     `TDG_RACE_SAMPLE_ADDRS=M`) bounds the shadow-check cost: clocks are
//     joined for every task (cheap, and required for transitive soundness),
//     but only every Nth task / Mth address pays the shadow-table work.
//   * `strict` escalates: at the next taskwait, flagged windows are
//     replayed through the offline verifier (verify_window) for a precise
//     report, and confirmed violations raise tdg::RaceError.
//
// Threading: on_task_discovered / on_edge / cutoffs are producer-only
// (discovery is sequential per tenant), so the whole clock side — records,
// lane arrays, arenas — is producer-owned and entirely lock-free: the hot
// per-edge join takes no lock and performs no atomics. Workers reach a
// task's clock through the record pointer the producer stashed in the Task
// at discovery (published by the npredecessors acq_rel chain), and a
// task's own clock is final once it is discoverable, so reading it from
// the start hook needs no synchronization either. Only the shadow table,
// the flag buffer and the scope-cut list are shared, guarded by one spin
// lock that sampled task starts take — held for a few map operations,
// never across user code. Per-slot clock caches let the completion path
// skip even that.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/common.hpp"
#include "core/depend_types.hpp"
#include "core/profiler.hpp"
#include "core/slab.hpp"
#include "core/verify.hpp"

namespace tdg {

/// `TDG_RACE` runtime switch.
///   off    — no clocks, no shadow table (default).
///   sample — flags are reported to stderr, execution continues.
///   strict — flagged windows are escalated through the offline verifier
///            at the next taskwait and raise tdg::RaceError.
enum class RaceMode : std::uint8_t { Off, Sample, Strict };

const char* race_mode_name(RaceMode mode);

struct RaceOptions {
  RaceMode mode = RaceMode::Off;
  /// Shadow-check every Nth task (1 = all). Clock joins are unaffected.
  std::uint64_t sample_tasks = 1;
  /// Of a checked task's clauses, shadow-check every Mth address (1 = all).
  std::uint64_t sample_addrs = 1;
  /// Sampling hash seed: the sampled task set is a pure function of
  /// (seed, id), so two runs with the same seed sample identically.
  std::uint64_t seed = 0;
  /// Vector-clock width W (lane = task id % W). More lanes = fewer
  /// collisions = fewer missed races; never affects flag soundness.
  unsigned clock_lanes = 64;
  /// Flags materialized per window (totals keep counting past it).
  std::size_t max_flags = 64;
  /// Report flags to stderr the moment they are raised.
  bool live_report = true;
};

/// Parse TDG_RACE / TDG_RACE_SAMPLE_TASKS / TDG_RACE_SAMPLE_ADDRS /
/// TDG_RACE_SEED into options. Unset TDG_RACE leaves mode = Off;
/// mode `sample` defaults to sample_tasks 16 (overridable), `strict`
/// to 1 (check everything).
RaceOptions race_env_options();

/// One happens-before violation flagged by the shadow table.
struct RaceFlag {
  enum class Kind : std::uint8_t {
    /// Conflicting accesses to the same clause base address, unordered by
    /// the discovered graph — a determinacy race the offline verifier can
    /// confirm (discovery matches on base identity).
    SameBase,
    /// Conflicting accesses whose declared byte ranges overlap but whose
    /// base addresses differ: discovery *cannot* order these (it matches
    /// identity only), so if the extent annotations are truthful this is
    /// a race the depend clauses are structurally unable to express.
    RangeOverlap,
  };
  Kind kind = Kind::SameBase;
  std::uint64_t addr = 0;       ///< checking task's clause base
  std::uint32_t bytes = 0;      ///< checking task's clause extent (0 = id)
  std::uint64_t other_addr = 0; ///< conflicting entry's base
  std::uint64_t pred_id = 0;    ///< earlier-installed endpoint
  std::uint64_t succ_id = 0;    ///< checking task
  DependType pred_type = DependType::In;
  DependType succ_type = DependType::In;
  const char* pred_label = "";
  const char* succ_label = "";
  /// Barrier cutoff in force when the flag was raised: the offline
  /// escalation replays the access stream restricted to ids > window_lo.
  std::uint64_t window_lo = 0;

  std::string to_string() const;
};

class RaceDetector {
 public:
  /// `nslots` sizes the per-slot clock caches: 1 + worker count, matching
  /// Runtime::current_slot() (0 = producer, 1+i = pool worker i).
  RaceDetector(const RaceOptions& opts, unsigned nslots);
  ~RaceDetector();
  RaceDetector(const RaceDetector&) = delete;
  RaceDetector& operator=(const RaceDetector&) = delete;

  const RaceOptions& options() const { return opts_; }

  // --- discovery side (producer thread only) -----------------------------
  /// Register a submitted task's clause list. Returns the task's opaque
  /// clock record when the task is sampled for shadow checking (null
  /// otherwise) — the caller stamps it into Task::race_clock so unsampled
  /// tasks pay nothing on the execution path and sampled ones hand their
  /// record straight back to on_task_start. The pointer stays valid until
  /// the next barrier. `label` must outlive the current window.
  void* on_task_discovered(std::uint64_t id, const Depend* deps,
                           std::size_t n, const char* label);
  /// Join pred's vector clock into succ's (one discovered TDG edge).
  void on_edge(std::uint64_t pred, std::uint64_t succ);
  /// Taskwait drain: every task <= max_id completed before anything later
  /// is submitted. Flushes the shadow table and all clock records and
  /// advances the epoch cutoff.
  void on_barrier(std::uint64_t max_id);
  /// Dependency-scope clear: no ordering is *required* across the clear,
  /// so the shadow table is flushed and pairs straddling the cut are
  /// exempt — but clocks survive (pre-clear tasks may still be running).
  void on_scope_clear(std::uint64_t max_id);

  // --- execution side (any thread) ---------------------------------------
  /// Shadow-check `id`'s sampled clauses against the table, then install
  /// them — one atomic check+install per task. `rec` is the opaque record
  /// on_task_discovered returned for this id (Task::race_clock); passing
  /// null makes this a no-op, so unsampled tasks never take the lock.
  void on_task_start(std::uint64_t id, unsigned slot, void* rec);
  /// Completion bookkeeping; uses the slot's clock cache, lock-free.
  void on_task_finish(std::uint64_t id, unsigned slot);

  // --- reporting ----------------------------------------------------------
  /// Drain the flag buffer (runtime escalation path; clears it).
  std::vector<RaceFlag> take_flags();
  std::uint64_t flag_total() const {
    return flags_total_.load(std::memory_order_relaxed);
  }
  std::uint64_t check_count() const {
    return checks_.load(std::memory_order_relaxed);
  }
  std::uint64_t tracked_count() const {
    return tracked_.load(std::memory_order_relaxed);
  }
  std::uint64_t finished_tracked_count() const {
    return finished_tracked_.load(std::memory_order_relaxed);
  }

  // --- introspection (tests, watchdog) ------------------------------------
  /// Sampling decision for a task id — pure, so tests can predict the
  /// sampled set and assert determinism.
  bool would_sample_task(std::uint64_t id) const;
  bool would_sample_addr(std::uint64_t addr) const;
  /// Clock query: true only when ordering is *proven* (lane join or
  /// barrier cutoff). Producer-thread / quiescent use only (tests,
  /// offline replay) — it walks the producer-owned record table.
  bool ordered(std::uint64_t pred, std::uint64_t succ) const;
  /// Live shadow-table entries (leak check: zero after a taskwait).
  std::size_t live_shadow_entries() const;
  /// Live clock records (leak check: zero after a taskwait).
  std::size_t live_clock_records() const;
  /// One-line state summary appended to watchdog reports.
  void diagnostic(std::string& out) const;

 private:
  struct ClockRec;
  struct ShadowAccess;
  struct ShadowEntry;
  struct alignas(kCacheLine) SlotCache {
    std::uint64_t id = 0;
    ClockRec* rec = nullptr;
  };

  ClockRec* find_or_create_clock(std::uint64_t id);
  ClockRec* find_clock(std::uint64_t id) const;
  ClockRec* acquire_rec();
  void carve_rec_slab();
  bool ordered_rec(const ClockRec* rec, std::uint64_t pred) const;
  bool cut_separated(std::uint64_t a, std::uint64_t b) const;
  void flush_shadow_locked();
  void reset_clocks();
  void flag(RaceFlag::Kind kind, const ShadowAccess& prior,
            std::uint64_t succ_id, const Depend& clause,
            const char* succ_label, std::uint64_t entry_addr,
            std::vector<std::string>& live_lines);

  const RaceOptions opts_;

  // --- producer-owned clock side (no lock; see the header comment) -------
  /// Clock records come from a producer-private pool of combined
  /// ClockRec + lane-array blocks (one cache-line-aligned slab carve per
  /// kRecsPerSlab records). Barriers retire *every* record at once, so the
  /// pool needs no freelist: "free" is resetting rec_used_ to zero and the
  /// same constructed records are re-issued next window — the hot path
  /// performs no allocation, no deallocation and no atomics.
  static constexpr std::size_t kRecsPerSlab = 256;
  std::size_t rec_stride_ = 0;      ///< sizeof(ClockRec) + W lanes, aligned
  std::vector<char*> rec_slabs_;    ///< slab allocations (ChunkCache-backed)
  std::vector<ClockRec*> rec_pool_; ///< every constructed record, in order
  std::size_t rec_used_ = 0;        ///< pool prefix handed out this window
  /// Clock records, dense by id: clock_recs_[id - clock_base_]. Task ids
  /// ascend within a window, so the hot join path's lookup is one bounds
  /// check + index instead of a hash probe. Barriers clear the table and
  /// rebase past the cutoff. Workers never touch it — they receive their
  /// record pointer through Task::race_clock.
  std::vector<ClockRec*> clock_recs_;
  std::uint64_t clock_base_ = 1;
  /// Barrier epoch: ids <= cutoff_ are proven complete. Written by the
  /// producer at quiescent points, read by workers in ordering queries.
  std::atomic<std::uint64_t> cutoff_{0};
  std::atomic<std::size_t> live_clocks_{0};

  // --- shared shadow side, guarded by lock_ ------------------------------
  /// Guards shadow_, shadow_arena_, flags_, flag_keys_, scope_cuts_ and
  /// max_range_. Cache-line-aligned so worker acquisitions don't bounce
  /// the producer's hot clock fields above.
  alignas(kCacheLine) mutable SpinLock lock_;
  TaskArena shadow_arena_;  ///< ShadowEntry blocks
  std::map<std::uint64_t, ShadowEntry*> shadow_;  ///< keyed by range start
  std::vector<RaceFlag> flags_;
  /// (pred, succ, addr) triples already flagged — dedupes the same pair
  /// flagging once per clause item.
  std::vector<std::uint64_t> flag_keys_;
  std::vector<std::uint64_t> scope_cuts_;  ///< active scope-clear cutoffs
  /// Largest installed extent: bounds the backward scan of the interval
  /// overlap query (entries are keyed by start, so an overlapping entry
  /// can start at most max_range_ bytes before the queried range).
  std::uint64_t max_range_ = 0;

  std::vector<SlotCache> slot_cache_;

  std::atomic<std::uint64_t> checks_{0};
  std::atomic<std::uint64_t> flags_total_{0};
  std::atomic<std::uint64_t> tracked_{0};
  std::atomic<std::uint64_t> finished_tracked_{0};
};

// ---------------------------------------------------------------------------
// Offline replay (the `tdg-trace race` subcommand)
// ---------------------------------------------------------------------------

/// Result of replaying an exported trace through the detector.
struct RaceScanResult {
  std::vector<RaceFlag> flags;      ///< online-style flags, replay order
  std::size_t confirmed = 0;        ///< flags the offline verifier confirmed
  std::size_t flags_total = 0;      ///< including past the flag cap
  VerifyReport offline;             ///< escalation report over the windows
  std::string report;               ///< rendered flagged windows
  bool any_confirmed() const {
    // RangeOverlap flags count as confirmed: the offline verifier is
    // identity-based and structurally cannot re-derive them.
    return confirmed > 0;
  }
};

/// Replay an access/edge stream through the online detector in submission
/// order (each task "starts" immediately after discovery — timing cannot
/// change the flagged set, which depends only on graph ordering), then
/// escalate flagged windows through verify_window exactly as the strict
/// runtime would.
RaceScanResult race_scan(std::span<const AccessRecord> accesses,
                         std::span<const TraceEdge> edges,
                         std::span<const std::uint64_t> barriers = {},
                         std::span<const std::uint64_t> scope_clears = {},
                         const RaceOptions& opts = RaceOptions{
                             RaceMode::Strict, 1, 1, 0, 64, 64, false});

}  // namespace tdg
