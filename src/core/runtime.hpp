// The tdg runtime: an MPC-OMP-like dependent-task execution engine.
//
// One producer thread discovers the task dependency graph sequentially
// (submit / taskloop) while a team of workers executes it concurrently —
// the overlap whose speed balance the paper studies. Workers use per-thread
// deques with work stealing; the depth-first LIFO policy pushes newly-ready
// successors to the head of the completing thread's deque (cache reuse).
//
// Multi-tenancy (see core/worker_pool.hpp): the worker team lives in a
// WorkerPool that N runtimes may share. A Runtime is then a thin per-tenant
// front end — discovery state, PTSG, verifier, metrics namespace, watchdog,
// submission shard, inject and deferred queues, throttle quota — while the
// pool owns threads, worker deques, parking and victim selection. A solo
// Runtime (Config::pool == nullptr) constructs a private pool and behaves
// exactly as the single-team runtime always did.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/common.hpp"
#include "core/depend.hpp"
#include "core/deque.hpp"
#include "core/error.hpp"
#include "core/metrics.hpp"
#include "core/profiler.hpp"
#include "core/race.hpp"
#include "core/scheduler.hpp"
#include "core/slab.hpp"
#include "core/task.hpp"
#include "core/trace_export.hpp"
#include "core/verify.hpp"
#include "core/watchdog.hpp"
#include "core/worker_pool.hpp"

namespace tdg {

class PersistentRegion;

/// Pre-registered handles into a runtime's metrics registry — the unified
/// observability namespace covering discovery, scheduling, execution and
/// persistent replay. MPI-layer components add their own `comm.*` metrics
/// to the same registry (see mpi/interop.hpp).
struct RuntimeMetricIds {
  using Id = MetricsRegistry::Id;
  // discovery
  Id tasks_submitted;   ///< counter discovery.tasks
  Id internal_nodes;    ///< counter discovery.redirect_nodes
  Id edges_created;     ///< counter discovery.edges_created
  Id edges_duplicate;   ///< counter discovery.edges_duplicate
  Id edges_pruned;      ///< counter discovery.edges_pruned
  Id hash_probes;       ///< counter discovery.hash_probes (depend items)
  Id probe_len;         ///< histogram discovery.probe_len (table probes)
  Id rehash;            ///< counter discovery.rehash (table grows)
  Id addr_entries;      ///< gauge discovery.addr_entries (live history)
  Id arena_bytes;       ///< gauge discovery.arena_bytes (table + entries)
  // scheduler
  Id spawns;            ///< counter sched.spawns (ready enqueues)
  Id steals;            ///< counter sched.steals
  Id steal_failures;    ///< counter sched.steal_failures
  Id throttle_stalls;   ///< counter sched.throttle_stalls
  Id parks;             ///< counter sched.parks (worker cv waits)
  Id wakeups;           ///< counter sched.wakeups (cv notifies sent)
  Id retry_defers;      ///< counter sched.retry_defers (backoff requeues)
  Id ready_depth;       ///< gauge   sched.ready_depth
  // task descriptor slab allocator
  Id slab_recycled;     ///< counter alloc.slab_recycled (freelist hits)
  Id slab_fresh;        ///< counter alloc.slab_fresh (bump-carved blocks)
  Id slab_chunks;       ///< counter alloc.slab_chunks (chunk carves)
  // execution
  Id tasks_executed;    ///< counter exec.tasks
  Id body_ns;           ///< histogram exec.body_ns
  Id queue_ns;          ///< histogram exec.queue_ns (ready -> start)
  // persistent regions
  Id replay_tasks;      ///< counter persistent.replay_tasks
  Id replay_bytes;      ///< counter persistent.memcpy_bytes
  Id iterations;        ///< counter persistent.iterations
  // online race detection (synced from the detector at each taskwait)
  Id race_checks;       ///< counter race.checks (shadow clause checks)
  Id race_flags;        ///< counter race.flags (HB violations flagged)
  Id race_tracked;      ///< counter race.tracked_tasks (sampled tasks)
  Id race_escalations;  ///< counter race.escalations (offline replays)
  Id race_shadow;       ///< gauge race.shadow_entries (live intervals)

  void register_into(MetricsRegistry& reg);
};

/// Snapshot of runtime counters (graph structure + discovery span).
struct RuntimeStats {
  std::uint64_t tasks_created = 0;    ///< user tasks discovered
  std::uint64_t internal_nodes = 0;   ///< inoutset redirect nodes
  std::uint64_t tasks_executed = 0;   ///< task instances run (replays count)
  std::uint64_t tasks_failed = 0;     ///< instances whose body threw (final)
  std::uint64_t tasks_cancelled = 0;  ///< instances skipped by poisoning
  std::uint64_t task_retries = 0;     ///< extra attempts by the retry policy
  DiscoveryStats discovery;
  /// Discovery span: first to last task creation since the last reset
  /// ("the time from the first to the last task creation", Section 1).
  std::uint64_t discovery_begin_ns = 0;
  std::uint64_t discovery_end_ns = 0;

  double discovery_seconds() const {
    return discovery_end_ns > discovery_begin_ns
               ? static_cast<double>(discovery_end_ns - discovery_begin_ns) *
                     1e-9
               : 0.0;
  }
  std::uint64_t edges_total() const {
    return discovery.edges_created;
  }
};

/// One element of a submit_batch call: a task body plus its depend clause.
template <class F>
struct BatchItem {
  F fn;
  DependList deps;
  TaskOpts opts{};
};

/// Dependent-task runtime. One instance owns a worker team (or attaches to
/// a shared WorkerPool as one tenant); the thread that constructs it
/// becomes thread slot 0, the producer, which discovers the graph and helps
/// execute during taskwait and when throttled.
class Runtime : public DiscoveryHooks {
 public:
  struct Config {
    unsigned num_threads = 0;  ///< 0 = hardware concurrency
    SchedulePolicy policy = SchedulePolicy::DepthFirstLifo;
    DiscoveryOptions discovery;
    ThrottleConfig throttle;
    WatchdogConfig watchdog;  ///< hang detection; disabled by default
    bool trace = false;  ///< record full task traces (Gantt etc.)
    /// Collect runtime metrics (counters/gauges/histograms). Compiled in
    /// either way; this only toggles collection. The TDG_METRICS
    /// environment variable overrides it: `off` disables, `on`/`dump`
    /// force-enable (`dump` also prints a report at teardown). TDG_TRACE
    /// (perfetto|tsv) similarly force-enables `trace` and exports the
    /// trace to a file when the runtime is destroyed.
    bool metrics = true;
    /// TDG soundness verification (see core/verify.hpp): Off = free; Post
    /// and Strict capture the clause/edge/barrier streams (forcing `trace`
    /// on) and run the determinacy-race checker at every taskwait — Post
    /// reports violations to stderr and continues, Strict throws
    /// VerifyError. The TDG_VERIFY environment variable (off|post|strict)
    /// overrides this field.
    VerifyMode verify = VerifyMode::Off;
    /// Online sampling race detection (see core/race.hpp): vector clocks
    /// maintained at discovery time, shadow-table checks at task start.
    /// Sample mode reports flags to stderr and continues; Strict escalates
    /// flagged windows through the offline verifier at the next taskwait
    /// (forcing `trace` on for the capture) and throws tdg::RaceError on
    /// confirmation. The TDG_RACE environment variable
    /// (off|sample|strict, plus TDG_RACE_SAMPLE_TASKS/SAMPLE_ADDRS/SEED)
    /// overrides this field entirely when set.
    RaceOptions race;
    /// Attach to a shared WorkerPool (multi-tenant mode) instead of
    /// constructing a private worker team. The pool must outlive the
    /// runtime. With a shared pool `num_threads` is ignored (the pool
    /// sizes the team) and `throttle` becomes this tenant's admission
    /// quota: when the tenant's own ready/total backlog exceeds it, its
    /// producer stops discovering and executes its own tasks — other
    /// tenants are unaffected.
    WorkerPool* pool = nullptr;
    /// Per-tenant scheduling options (weight for weighted-fair stealing).
    /// Only meaningful with a shared pool.
    TenantOptions tenant;
  };

  Runtime() : Runtime(Config{}) {}
  explicit Runtime(Config cfg);
  ~Runtime() override;
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // --- task submission (producer side) ------------------------------------
  /// Submit one dependent task. Returns its id. Submissions must be
  /// serialized (single producer), per the sequential-discovery model.
  template <class F>
  std::uint64_t submit(F&& fn, std::span<const Depend> deps,
                       TaskOpts opts = {}) {
    // Replay-safety capture must see the clause of every iteration —
    // including replays, which never reach discovery — so it hooks in
    // before the replay branch.
    if (verify_clauses_) log_verify_clause(deps);
    if (replay_active_) return replay_submit(std::forward<F>(fn));
    Task* t = allocate_task(opts);
    t->body.emplace(std::forward<F>(fn));
    finish_submission(t, deps);
    return t->id();
  }

  template <class F>
  std::uint64_t submit(F&& fn, std::initializer_list<Depend> deps,
                       TaskOpts opts = {}) {
    return submit(std::forward<F>(fn),
                  std::span<const Depend>(deps.begin(), deps.size()), opts);
  }

  /// OpenMP `taskloop num_tasks(n) depend(...)`: split [begin,end) into
  /// `num_tasks` contiguous chunks; `depgen(chunk, lo, hi, out_deps)` fills
  /// the depend clause of each chunk, `body(lo, hi)` is the chunk kernel.
  template <class DepGen, class Body>
  void taskloop(std::int64_t begin, std::int64_t end, int num_tasks,
                DepGen&& depgen, Body&& body, TaskOpts opts = {}) {
    TDG_REQUIRE(num_tasks > 0, "taskloop requires num_tasks > 0");
    const std::int64_t n = end - begin;
    if (n <= 0) return;
    const std::int64_t chunks = std::min<std::int64_t>(num_tasks, n);
    DependList deps;
    for (std::int64_t c = 0; c < chunks; ++c) {
      const std::int64_t lo = begin + n * c / chunks;
      const std::int64_t hi = begin + n * (c + 1) / chunks;
      deps.clear();
      depgen(static_cast<int>(c), lo, hi, deps);
      submit([body, lo, hi] { body(lo, hi); },
             std::span<const Depend>(deps.data(), deps.size()), opts);
    }
  }

  /// Batched submission: open one discovery episode covering every submit
  /// until end_batch(). Per-submit costs that exist only to publish tasks
  /// promptly — the discovery-window clock stamp, the ready-count and
  /// pool-mirror RMWs, the parked-worker probe, the throttle check — are
  /// deferred and paid once per batch; tasks that become ready inside the
  /// batch are buffered producer-locally and released together. Discovery
  /// itself (hash probes, edge wiring) is identical to the loop of
  /// submit() calls, so the resulting TDG is the same — `TDG_VERIFY=strict`
  /// equivalence is part of the test suite. Producer-only, like submit.
  void begin_batch();
  /// Publish everything buffered since begin_batch() and resume immediate
  /// mode. Implicitly called by taskwait()/drain if a batch is open.
  void end_batch();

  /// Submit a vector of clause sets as one discovery episode (sugar over
  /// begin_batch / submit loop / end_batch). Bodies are moved out of the
  /// items; deps are read in place.
  template <class F>
  void submit_batch(std::span<BatchItem<F>> items) {
    begin_batch();
    for (auto& it : items) {
      submit(std::move(it.fn),
             std::span<const Depend>(it.deps.data(), it.deps.size()),
             it.opts);
    }
    end_batch();
  }
  template <class F>
  void submit_batch(std::vector<BatchItem<F>>& items) {
    submit_batch(std::span<BatchItem<F>>(items.data(), items.size()));
  }

  /// Wait until every submitted task has completed; the calling thread
  /// executes tasks while waiting (an OpenMP taskwait-at-region-scope).
  ///
  /// Failure model: if any task body threw (after exhausting its retry
  /// budget), the graph is first fully drained — transitive dependents of
  /// failed tasks are cancelled, independent tasks still run — and then a
  /// TaskGroupError aggregating every failure and cancellation is thrown.
  /// The runtime remains usable afterwards. With a watchdog deadline
  /// configured, a no-progress stall instead raises DeadlineError (or
  /// invokes the configured callback) with a diagnostic report.
  void taskwait();

  /// Create a detach event to attach to a task via TaskOpts::detach.
  /// Events live until the runtime is destroyed.
  Event* create_event();

  /// The detach event of the task currently executing on the calling
  /// thread (nullptr outside a task body or if it has none). This is how a
  /// replayed persistent task reaches its own event: the TaskOpts of
  /// replay submissions are ignored, the discovery-time event is reused
  /// and re-armed each iteration.
  Event* current_task_event() const;

  // --- scheduling-point hook (MPI interoperability) ------------------------
  /// Identifies one installed polling hook, so an owner can uninstall its
  /// own hook without clobbering a newer one installed after it.
  using PollingHookToken = std::shared_ptr<const std::function<void()>>;

  /// Called repeatedly from worker idle loops, task boundaries and
  /// taskwait: the MPI polling hook of the paper ("polling MPI requests on
  /// OpenMP scheduling points"). Must be thread-safe. Returns a token for
  /// clear_polling_hook; installing a new hook replaces the previous one.
  PollingHookToken set_polling_hook(std::function<void()> hook);
  /// Uninstall the hook identified by `token` — only if it is still the
  /// installed one (a later set_polling_hook wins and is left in place).
  void clear_polling_hook(const PollingHookToken& token);

  // --- introspection --------------------------------------------------------
  /// Run the TDG soundness checker over everything captured so far
  /// (requires Config::trace or a non-Off verify mode; otherwise the
  /// streams are empty and the report is trivially clean). Pure — no
  /// runtime state changes; callable at any quiescent point.
  VerifyReport verify_graph(const VerifyOptions& opts = {}) const {
    return verify_tdg(profiler_->accesses(), profiler_->edges(),
                      profiler_->barriers(), profiler_->scope_clears(),
                      opts);
  }
  RuntimeStats stats() const;
  /// Reset graph counters and the discovery span (not the profiler).
  void reset_stats();
  Profiler& profiler() { return *profiler_; }
  /// The unified metrics registry (see core/metrics.hpp). Components may
  /// register additional metrics at any time; snapshot() anywhere.
  MetricsRegistry& metrics() { return *metrics_; }
  const MetricsRegistry& metrics() const { return *metrics_; }
  /// Handles of the runtime's own metrics (tests / tools).
  const RuntimeMetricIds& metric_ids() const { return m_; }
  /// Shard hint for metrics written on behalf of this runtime from the
  /// calling thread (its worker slot).
  unsigned metrics_shard() const { return current_slot(); }
  /// The runtime's hang watchdog (configure via Config::watchdog; attach
  /// extra diagnostics, e.g. a RequestPoller's pending-request dump).
  Watchdog& watchdog() { return watchdog_; }
  /// True if failures/cancellations have been recorded since the last
  /// taskwait() that reported them.
  bool has_failures() const {
    return has_failures_.load(std::memory_order_acquire);
  }
  /// Execution slots visible to this runtime: slot 0 (the producer) plus
  /// one per pool worker. For a solo runtime this equals the configured
  /// thread count, exactly as before the pool split.
  unsigned num_threads() const { return 1 + pool_->num_workers(); }
  /// The worker pool executing this runtime's tasks (private for a solo
  /// runtime, shared across tenants otherwise).
  WorkerPool& pool() { return *pool_; }
  const WorkerPool& pool() const { return *pool_; }
  /// This runtime's tenant slot in the pool (allocation shard index,
  /// fairness accounting key, `tenant=<id>` metrics dimension).
  unsigned tenant_id() const { return tenant_id_; }
  /// The slab arena backing task descriptors — owned by the pool, one
  /// allocation shard per tenant (leak checks in tests: live_blocks()
  /// returns to the dependency map's holdover count after a drain, and to
  /// zero after clear_dependency_scope()).
  const TaskArena& task_arena() const { return pool_->arena(); }
  /// The producer's access-history table (tests / tools: table capacity,
  /// live entries, rehash count, arena footprint).
  const DependencyMap& dependency_map() const { return dep_map_; }
  /// The online race detector (nullptr when Config::race / TDG_RACE is
  /// off). Tests use it to predict the sampled set and check churn.
  const RaceDetector* race_detector() const { return race_.get(); }
  const Config& config() const { return cfg_; }
  /// Live tasks = created and not yet finished. Ready = queued, not started.
  std::size_t live_tasks() const {
    return live_tasks_.load(std::memory_order_relaxed);
  }
  std::size_t ready_tasks() const {
    return ready_count_.load(std::memory_order_relaxed);
  }

  /// Clear the producer's dependency history: subsequent tasks see no
  /// predecessors. Used between independent graph phases and by
  /// persistent regions at discovery end.
  void clear_dependency_scope();

  // --- DiscoveryHooks (used by DependencyMap) ------------------------------
  EdgeOutcome discover_edge(Task* pred, Task* succ) override;
  Task* make_internal_node() override;
  void seal_internal_node(Task* node) override;

 private:
  friend class PersistentRegion;
  friend class Event;
  friend class WorkerPool;

  Task* allocate_task(const TaskOpts& opts);
  void finish_submission(Task* t, std::span<const Depend> deps);
  /// Replay one task from the region's compiled plan. `src`/`bytes` are
  /// the raw capture of the freshly-built callable when it is trivially
  /// copyable — the fast path memcpys them straight into the task's stored
  /// body (the paper's "single memcpy on firstprivate data") without the
  /// type-erased `update` dispatch; non-trivial captures pass src=nullptr
  /// and go through `update` (destroy + copy-construct).
  std::uint64_t replay_submit_erased(void (*update)(Task*, void*), void* ctx,
                                     const void* src, std::size_t bytes);

  template <class F>
  std::uint64_t replay_submit(F&& fn) {
    using Fn = std::decay_t<F>;
    struct Ctx {
      std::remove_reference_t<F>* fn;
    } ctx{&fn};
    return replay_submit_erased(
        [](Task* t, void* c) {
          t->body.update(std::forward<F>(*static_cast<Ctx*>(c)->fn));
        },
        &ctx,
        std::is_trivially_copyable_v<Fn>
            ? static_cast<const void*>(std::addressof(fn))
            : nullptr,
        sizeof(Fn));
  }

  void enqueue_ready(Task* t, unsigned thread_hint, bool successor);
  void run_task(Task* t, unsigned thread);
  void complete_task(Task* t, unsigned thread);
  /// Outcome of one scheduling of a task body under the retry policy.
  enum class BodyOutcome : std::uint8_t {
    Success,   ///< body returned (possibly after immediate retries)
    Failed,    ///< retry budget exhausted; failure recorded
    Deferred,  ///< transient failure with backoff: requeue, don't complete
  };
  /// Execute the body with the task's retry policy. Zero-backoff retries
  /// loop inline; a nonzero backoff returns Deferred with
  /// `t->retry_not_before_ns` set, and the caller requeues the task so
  /// the worker keeps executing other ready tasks instead of sleeping.
  BodyOutcome run_body_with_retries(Task* t);
  /// Park the deferred retry until its not-before deadline.
  void schedule_retry(Task* t);
  /// Pop one deferred task whose deadline has passed (nullptr if none).
  Task* take_due_deferred();
  /// Cross-thread ready-queue: enqueues from threads that do not own the
  /// hinted deque (e.g. an external thread fulfilling a detach event, or
  /// a pool reroute of a foreign task).
  void push_inject(Task* t);
  Task* pop_inject();
  /// Pool-worker entry: account for the acquisition (steal / deferred /
  /// ready bookkeeping, probe-overhead attribution since `t0`) and run the
  /// task on slot `slot`.
  void run_from_pool(Task* t, unsigned slot, bool stole, bool deferred,
                     std::uint64_t t0);
  void record_failure(Task* t, std::exception_ptr err, std::uint32_t tries);
  void record_cancelled(Task* t);
  /// taskwait minus the failure rethrow (used by destructors, which must
  /// not throw, and by PersistentRegion's barrier bookkeeping).
  void drain();
  /// Throw the aggregated TaskGroupError if any failure was recorded;
  /// clears the recorded state first (the runtime stays usable).
  void throw_if_failed();
  void runtime_diagnostic(std::string& out) const;
  /// Producer/taskwait self-help: obtain and run one of THIS runtime's
  /// tasks from the calling thread; returns false if none was available
  /// (pool workers use WorkerPool::try_execute_one instead).
  bool try_execute_one(unsigned thread);
  void throttle(unsigned thread);
  void poll();
  unsigned current_slot() const;
  /// Counter increment routed to the calling thread's shard.
  void madd(MetricsRegistry::Id id, std::uint64_t v = 1) {
    metrics_->add(id, v, current_slot());
  }
  /// Capture the metrics baseline a later watchdog report deltas against.
  void arm_watchdog_baseline();
  /// Run the soundness checker if the verify mode asks for it and anything
  /// changed since the last check. Strict mode throws VerifyError when
  /// `allow_throw` (taskwait); Post mode — and Strict from contexts that
  /// must not throw (destructor) — reports to stderr.
  void verify_now(bool allow_throw);
  /// Drain the race detector's flag buffer and sync its counters into the
  /// metrics namespace. Strict mode escalates same-base flags through
  /// verify_window for the precise offline report and throws RaceError
  /// when `allow_throw` (taskwait); Sample mode — and Strict from the
  /// destructor — reports to stderr.
  void race_now(bool allow_throw);
  /// Out-of-line clause capture for the replay-safety check (keeps the
  /// submit template free of PersistentRegion's definition).
  void log_verify_clause(std::span<const Depend> deps);
  /// Teardown observability: export the trace (TDG_TRACE) and dump the
  /// metrics report (TDG_METRICS=dump). Called from the destructor.
  void finalize_observability();

  Config cfg_;
  std::unique_ptr<MetricsRegistry> metrics_;
  RuntimeMetricIds m_;
  TraceEnvConfig trace_env_;
  bool metrics_dump_ = false;
  /// Timeline stamps (t_create/t_ready/t_start/t_end and the profiler's
  /// work/overhead/idle attribution) cost a clock read each — several per
  /// task lifecycle, which dominates discovery-rate microbenches. They are
  /// only consumed by metrics, traces and the teardown reports, so when
  /// both are off the stamps are skipped wholesale. The per-episode
  /// discovery window (discovery_seconds) is always maintained: one clock
  /// read per submission, it is the paper's headline statistic.
  bool timed_ = true;
  /// Baseline snapshot for "counters since arming" watchdog diagnostics.
  mutable SpinLock wd_baseline_lock_;
  MetricsSnapshot wd_baseline_;
  bool wd_baseline_set_ = false;
  std::unique_ptr<Profiler> profiler_;
  /// Online race detector (Config::race / TDG_RACE); null when off.
  std::unique_ptr<RaceDetector> race_;
  /// Detector counter values already synced into metrics (race_now runs at
  /// every taskwait; deltas keep the counters from double counting).
  std::uint64_t race_synced_checks_ = 0;
  std::uint64_t race_synced_flags_ = 0;
  std::uint64_t race_synced_tracked_ = 0;
  std::int64_t race_shadow_reported_ = 0;
  Watchdog watchdog_;
  DependencyMap dep_map_;
  /// Private pool of a solo runtime (Config::pool == nullptr). Destroyed
  /// explicitly at the end of ~Runtime, after every task reference has
  /// been released back into the pool-owned arena.
  std::unique_ptr<WorkerPool> owned_pool_;
  /// The pool this runtime is attached to (owned_pool_.get() or
  /// Config::pool). Always non-null after construction.
  WorkerPool* pool_ = nullptr;
  unsigned tenant_id_ = 0;
  /// This tenant's submission shard: the producer pushes/pops the bottom,
  /// pool workers and sibling producers steal the top.
  WorkDeque shard_;
  /// Producer-side xorshift state for randomized steal scans (atomic:
  /// external submitter threads may share the stream).
  std::atomic<std::uint64_t> producer_rng_{0x9e3779b97f4a7c15ull};
  std::vector<std::unique_ptr<Event>> events_;
  mutable SpinLock events_lock_;  // also taken by the watchdog diagnostic

  /// Injected ready tasks from threads that do not own a deque slot
  /// (detach fulfilment from foreign threads, nested-runtime producers,
  /// pool reroutes of this tenant's tasks found in sibling shards). The
  /// queue's lock-free count mirror is release/acquire-paired so the
  /// empty-probe fast path never misses a published inject.
  InjectQueue<Task> inject_;

  // Batched submission (begin_batch/end_batch, producer-only). Tasks that
  // become ready inside a batch are buffered here and published together;
  // pending_/live_tasks_ increments of non-internal tasks are deferred
  // alongside (internal redirect nodes keep immediate accounting — they
  // can complete inline during the batch).
  bool batch_active_ = false;
  bool batch_stamped_ = false;  ///< discovery-begin stamped for this batch
  std::vector<Task*> batch_ready_;
  std::size_t batch_pending_ = 0;
  std::size_t batch_live_ = 0;

  /// Deferred retry queue: tasks waiting out a retry backoff without
  /// occupying a worker. Tiny (one entry per in-flight flaky task), so a
  /// spinlocked vector scan beats a heap.
  mutable SpinLock deferred_lock_;
  struct DeferredTask {
    std::uint64_t not_before_ns;
    Task* task;
  };
  std::vector<DeferredTask> deferred_;
  /// Earliest deferred deadline (UINT64_MAX when none): the hot-path
  /// gate so try_execute_one pays one relaxed load when no retry is
  /// pending.
  std::atomic<std::uint64_t> next_deferred_ns_{UINT64_MAX};

  /// The polling hook is installed/cleared concurrently with workers
  /// invoking it (e.g. a RequestPoller tearing down), so pollers pin the
  /// closure via a shared_ptr copied under a spin lock.
  std::shared_ptr<const std::function<void()>> polling_hook_;
  mutable SpinLock hook_lock_;

  std::atomic<std::size_t> pending_{0};     ///< submitted, not finished
  std::atomic<std::size_t> live_tasks_{0};  ///< descriptors alive (throttle)
  std::atomic<std::size_t> ready_count_{0};

  // failure aggregation (executing threads write under failures_lock_;
  // taskwait drains the graph, then swaps the lists out and throws)
  mutable SpinLock failures_lock_;
  std::vector<TaskFailure> failures_;
  std::vector<CancelledTask> cancelled_;
  std::atomic<bool> has_failures_{false};

  // counters (producer-written except tasks_executed)
  std::uint64_t tasks_created_ = 0;
  std::uint64_t internal_nodes_ = 0;
  DiscoveryStats disc_stats_;
  std::uint64_t discovery_begin_ns_ = 0;
  std::uint64_t discovery_end_ns_ = 0;
  std::atomic<std::uint64_t> tasks_executed_{0};
  std::atomic<std::uint64_t> tasks_failed_{0};
  std::atomic<std::uint64_t> tasks_cancelled_{0};
  std::atomic<std::uint64_t> task_retries_{0};
  std::atomic<std::uint64_t> next_task_id_{1};

  // persistent-region state (managed by PersistentRegion)
  PersistentRegion* region_ = nullptr;
  bool discovering_persistent_ = false;
  bool replay_active_ = false;

  // verification state (producer-only)
  /// True while a persistent region wants per-submission clause capture
  /// for the replay-safety diff (verify mode != Off and a region active).
  bool verify_clauses_ = false;
  /// Watermarks of the last verified capture: when nothing was appended
  /// since, the taskwait re-check is skipped (repeated taskwaits stay
  /// O(1) instead of re-verifying the whole history).
  std::size_t verified_accesses_ = 0;
  std::size_t verified_edges_ = 0;
  std::size_t verified_barriers_ = 0;
};

}  // namespace tdg
