// Persistent Task Sub-Graph (PTSG) — optimization (p), Section 3.2.
//
// The first iteration of an annotated loop discovers the TDG as usual but
// marks tasks persistent so they survive completion, and records *every*
// edge (edges to already-finished predecessors are not pruned, since no
// edge is recreated on later iterations). Subsequent iterations re-execute
// the producer's instruction flow, but each submit collapses to updating
// the cached task's firstprivate capture — a memcpy — and dropping its
// discovery guard. An implicit barrier ends every iteration, so no
// inter-iteration edges exist.
#pragma once

#include <cstdint>
#include <vector>

#include "core/runtime.hpp"

namespace tdg {

/// RAII handle for a persistent-graph region (`#pragma omp ptsg` in the
/// paper). Usage:
///
///   PersistentRegion region(rt);
///   for (int it = 0; it < iters; ++it) {
///     region.begin_iteration();
///     ... submit the same task sequence, captures may differ ...
///     region.end_iteration();   // implicit barrier
///   }
///
/// Every iteration must submit the same tasks in the same order with the
/// same dependences (checked where cheap).
class PersistentRegion {
 public:
  explicit PersistentRegion(Runtime& rt);
  ~PersistentRegion();
  PersistentRegion(const PersistentRegion&) = delete;
  PersistentRegion& operator=(const PersistentRegion&) = delete;

  void begin_iteration();
  /// Implicit barrier: waits for every task of the iteration, then re-arms
  /// refcounts for the next one.
  void end_iteration();

  std::uint32_t iterations_done() const { return iterations_done_; }
  std::size_t task_count() const { return tasks_.size(); }
  bool discovering() const { return iterations_done_ == 0 && active_; }

  /// Per-iteration discovery durations in seconds (first = graph build,
  /// later = firstprivate update pass); Table 2's 0.86 s + 15 x 0.08 s.
  const std::vector<double>& discovery_seconds() const {
    return discovery_seconds_;
  }

 private:
  friend class Runtime;

  void record_task(Task* t);        // first-iteration discovery
  Task* next_replay_task();         // later iterations
  void rearm_all();                 // refcounts for the next iteration

  Runtime& rt_;
  std::vector<Task*> tasks_;        // creation order; holds references
  std::size_t cursor_ = 0;          // replay cursor over non-internal tasks
  std::size_t replayed_ = 0;        // user tasks replayed this iteration
  std::size_t replayable_count_ = 0;
  std::uint32_t iterations_done_ = 0;
  bool active_ = false;
  double iter_begin_s_ = 0;
  std::vector<double> discovery_seconds_;
};

}  // namespace tdg
