// Persistent Task Sub-Graph (PTSG) — optimization (p), Section 3.2.
//
// The first iteration of an annotated loop discovers the TDG as usual but
// marks tasks persistent so they survive completion, and records *every*
// edge (edges to already-finished predecessors are not pruned, since no
// edge is recreated on later iterations). Subsequent iterations re-execute
// the producer's instruction flow, but each submit collapses to updating
// the cached task's firstprivate capture — a memcpy — and dropping its
// discovery guard. An implicit barrier ends every iteration, so no
// inter-iteration edges exist.
//
// At the end of the first iteration the region compiles the discovered
// graph into a flat structure-of-arrays replay plan: creation-order task
// pointers with precomputed firstprivate copy descriptors (dst, bytes) for
// the replay path, and precomputed re-arm predecessor counts / completion
// latches for the barrier path. begin_iteration / end_iteration then become
// linear sweeps over these arrays — no per-task branching on internal/
// detach state, no pointer chasing beyond the task itself.
#pragma once

#include <cstdint>
#include <vector>

#include "core/runtime.hpp"

namespace tdg {

/// RAII handle for a persistent-graph region (`#pragma omp ptsg` in the
/// paper). Usage:
///
///   PersistentRegion region(rt);
///   for (int it = 0; it < iters; ++it) {
///     region.begin_iteration();
///     ... submit the same task sequence, captures may differ ...
///     region.end_iteration();   // implicit barrier
///   }
///
/// Every iteration must submit the same tasks in the same order with the
/// same dependences (checked where cheap).
class PersistentRegion {
 public:
  explicit PersistentRegion(Runtime& rt);
  ~PersistentRegion();
  PersistentRegion(const PersistentRegion&) = delete;
  PersistentRegion& operator=(const PersistentRegion&) = delete;

  void begin_iteration();
  /// Implicit barrier: waits for every task of the iteration, then re-arms
  /// refcounts for the next one.
  void end_iteration();

  std::uint32_t iterations_done() const { return iterations_done_; }
  std::size_t task_count() const { return tasks_.size(); }
  bool discovering() const { return iterations_done_ == 0 && active_; }

  /// Per-iteration discovery durations in seconds (first = graph build,
  /// later = firstprivate update pass); Table 2's 0.86 s + 15 x 0.08 s.
  const std::vector<double>& discovery_seconds() const {
    return discovery_seconds_;
  }

  /// Replay-safety findings of the most recent replay iteration (empty
  /// when the iteration's clauses matched the cached discovery stream, or
  /// when the runtime's verify mode is Off). In Post mode the findings are
  /// also printed to stderr at end_iteration; Strict mode throws
  /// VerifyError there.
  const std::vector<ReplayDriftFinding>& last_drift() const {
    return last_drift_;
  }

 private:
  friend class Runtime;

  /// One compiled replay slot, handed to Runtime::replay_submit_erased.
  /// copy_dst is the task's stored-capture address when the capture is
  /// trivially copyable (replay = one memcpy), nullptr otherwise (replay
  /// goes through the type-erased update dispatch).
  struct ReplayRef {
    Task* task;
    void* copy_dst;
    std::uint32_t copy_bytes;
  };

  void record_task(Task* t);        // first-iteration discovery
  /// Clause capture for the replay-safety check (called from the submit
  /// template via Runtime::log_verify_clause when verification is on).
  void log_clause(std::span<const Depend> deps);
  /// Build the SoA replay plan from the discovered graph (end of the
  /// first iteration, after the barrier drained every task).
  void compile_replay_plan();
  ReplayRef next_replay_slot();     // later iterations
  void rearm_all();                 // refcounts for the next iteration

  Runtime& rt_;
  std::vector<Task*> tasks_;        // creation order; holds references
  std::size_t replayed_ = 0;        // user tasks replayed this iteration
  std::size_t replayable_count_ = 0;
  std::uint32_t iterations_done_ = 0;
  bool active_ = false;
  double iter_begin_s_ = 0;
  std::vector<double> discovery_seconds_;

  // Compiled replay plan (built once, at first-iteration end).
  // Replay sweep: non-internal tasks in creation order — the producer's
  // replay submissions map 1:1 onto these slots.
  std::vector<Task*> plan_tasks_;
  std::vector<void*> plan_copy_dst_;
  std::vector<std::uint32_t> plan_copy_bytes_;
  // Re-arm sweep: parallel to tasks_ (internal nodes included).
  // npred = persistent_indegree + discovery guard (0 for internal nodes,
  // which are not re-submitted); latch = 2 with a detach event, else 1.
  std::vector<std::int32_t> rearm_npred_;
  std::vector<std::int32_t> rearm_latch_;

  // Replay-safety capture (only populated when the runtime verifies):
  // the discovery iteration's clause stream is the reference every replay
  // iteration is diffed against at end_iteration.
  ClauseStream first_clauses_;
  ClauseStream iter_clauses_;
  std::vector<ReplayDriftFinding> last_drift_;
};

}  // namespace tdg
