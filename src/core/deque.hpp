// Lock-free Chase-Lev work-stealing deque (Chase & Lev, SPAA'05) with a
// growable ring buffer, replacing the SpinLock+std::deque WorkDeque: the
// paper shows TDG discovery speed bounds application performance, and a
// mutex acquisition per deque operation on the discovery/ready path is one
// of the two classic contention sources (the other being the per-task heap
// allocation, see core/slab.hpp).
//
// Protocol: the owner thread pushes and pops at the *bottom*; thieves take
// the oldest element from the *top* with a CAS. The only contended case is
// a single-element deque, where the owner's pop and a thief's steal race on
// the same top CAS.
//
// Memory-order argument (following Le, Pop, Cohen & Zappa Nardelli,
// PPoPP'13, but using seq_cst operations on top/bottom instead of
// standalone fences — ThreadSanitizer models atomic operations precisely
// but has historically incomplete support for atomic_thread_fence, and on
// x86 a seq_cst store on the pop path costs the same locked instruction
// the CAS variant would):
//
//  * push_bottom: the element store into the ring slot (relaxed atomic)
//    happens-before the release store of bottom; a thief acquire-loads
//    bottom, so if it observes the new bottom it also observes the slot.
//  * pop_bottom: the owner first publishes the decremented bottom with a
//    seq_cst store, then seq_cst-loads top. steal_top loads top then
//    bottom, both seq_cst. The seq_cst total order makes the classic
//    store->load Dekker pattern sound: either the thief sees the owner's
//    reservation (bottom already decremented => t >= b, steal retries) or
//    the owner sees the thief's CAS on top, and they race on the final
//    element through the top CAS, which exactly one side wins.
//  * grow: only the owner grows. The new ring is fully populated before
//    the release store of the ring pointer. A thief may still read from a
//    *stale* ring: the indices it can legitimately read ([top, bottom))
//    hold identical values in both rings, and any element the owner has
//    since overwritten belongs to an index range whose top CAS must fail.
//    Retired rings are kept until the deque is destroyed, so stale readers
//    never touch freed memory (a handful of geometrically-growing buffers;
//    memory is bounded by 2x the high-water mark).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/common.hpp"

namespace tdg {

template <class T>
class ChaseLevDeque {
 public:
  /// `initial_capacity` must be a power of two.
  explicit ChaseLevDeque(std::size_t initial_capacity = 256)
      : live_(std::make_unique<Ring>(initial_capacity)),
        ring_(live_.get()) {}

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  /// Owner only: push one element at the bottom.
  void push_bottom(T* x) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Ring* a = ring_.load(std::memory_order_relaxed);
    if (b - t > static_cast<std::int64_t>(a->capacity) - 1) {
      a = grow(a, b, t);
    }
    a->put(b, x);
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Owner only: pop the newest element (LIFO end). nullptr when empty.
  T* pop_bottom() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Ring* a = ring_.load(std::memory_order_relaxed);
    // Reserve the bottom slot before inspecting top (Dekker store->load).
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    T* x = nullptr;
    if (t <= b) {
      x = a->get(b);
      if (t == b) {
        // Last element: race the thieves for it via the top CAS.
        if (!top_.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          x = nullptr;  // a thief won
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
    } else {
      // Deque was empty; undo the reservation.
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return x;
  }

  /// Any thread: steal the oldest element (FIFO end). nullptr when the
  /// deque is empty or the probe lost a race (callers treat both as "no
  /// work here, move on").
  T* steal_top() {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return nullptr;
    Ring* a = ring_.load(std::memory_order_acquire);
    T* x = a->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;  // another thief (or the owner's pop) won index t
    }
    return x;
  }

  /// Racy size estimate (diagnostics only).
  std::size_t approx_size() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }
  bool approx_empty() const { return approx_size() == 0; }

  /// Current ring capacity (tests).
  std::size_t capacity() const {
    return ring_.load(std::memory_order_acquire)->capacity;
  }

 private:
  struct Ring {
    explicit Ring(std::size_t cap)
        : capacity(cap),
          mask(cap - 1),
          slots(std::make_unique<std::atomic<T*>[]>(cap)) {}
    const std::size_t capacity;
    const std::size_t mask;
    std::unique_ptr<std::atomic<T*>[]> slots;

    T* get(std::int64_t i) const {
      return slots[static_cast<std::size_t>(i) & mask].load(
          std::memory_order_relaxed);
    }
    void put(std::int64_t i, T* v) {
      slots[static_cast<std::size_t>(i) & mask].store(
          v, std::memory_order_relaxed);
    }
  };

  /// Owner only: double the ring, copying the live window [t, b).
  Ring* grow(Ring* a, std::int64_t b, std::int64_t t) {
    auto bigger = std::make_unique<Ring>(a->capacity * 2);
    for (std::int64_t i = t; i != b; ++i) bigger->put(i, a->get(i));
    retired_.push_back(std::move(live_));  // stale thieves may still read it
    live_ = std::move(bigger);
    ring_.store(live_.get(), std::memory_order_release);
    return live_.get();
  }

  alignas(kCacheLine) std::atomic<std::int64_t> top_{0};
  alignas(kCacheLine) std::atomic<std::int64_t> bottom_{0};
  alignas(kCacheLine) std::unique_ptr<Ring> live_;  // owner-side ownership
  std::atomic<Ring*> ring_;                         // readers' view
  std::vector<std::unique_ptr<Ring>> retired_;      // owner only
};

/// MPMC FIFO inject queue for ready tasks published by threads that own no
/// deque slot (foreign detach fulfilment, nested-runtime producers, the
/// pool's foreign-task reroute). Cold path by design — a spin lock guards
/// the storage — but the *empty probe* is on every scheduling decision, so
/// it reads a lock-free size mirror instead of taking the lock.
///
/// Mirror ordering contract: push() links the element under the lock and
/// THEN publishes the count with a release fetch_add; an empty probe
/// acquire-loads the count, so a nonzero observation happens-after the
/// element became poppable — the fast path can never miss a published
/// inject. pop() decrements with release only after the element left the
/// queue, so the count never over-reports into a stale fast path either
/// (a racing pop may still win the element; the loser's locked re-check
/// returns null, which is the ordinary lost-race outcome, not a missed
/// publication). The previous implementation re-stored `size()` on both
/// paths, which was torn-value-safe only because every store sat under the
/// lock — fetch_add/fetch_sub pairs make the ordering explicit and keep
/// the mirror exact under concurrent pushers. (Mid-operation the mirror
/// may transiently over- or under-shoot by the number of in-flight ops —
/// size_t wraparound included, which is harmless: a too-large reading only
/// sends the caller into the locked re-check, a too-small reading is always
/// an unfinished push whose increment is still coming.)
///
/// Pops are amortized O(1): a head cursor walks the vector and storage is
/// compacted when the dead prefix dominates (the old erase(begin) pop was
/// O(n) per element under backlog).
template <class T>
class InjectQueue {
 public:
  void push(T* t) {
    {
      SpinGuard g(lock_);
      items_.push_back(t);
    }
    count_.fetch_add(1, std::memory_order_release);
  }

  T* pop() {
    // Empty probe: pairs with push()'s release increment (see above).
    if (count_.load(std::memory_order_acquire) == 0) return nullptr;
    T* t;
    {
      SpinGuard g(lock_);
      if (head_ == items_.size()) return nullptr;  // lost the race
      t = items_[head_++];
      if (head_ == items_.size()) {
        items_.clear();
        head_ = 0;
      } else if (head_ >= 64 && head_ * 2 >= items_.size()) {
        items_.erase(items_.begin(),
                     items_.begin() + static_cast<std::ptrdiff_t>(head_));
        head_ = 0;
      }
    }
    count_.fetch_sub(1, std::memory_order_release);
    return t;
  }

  std::size_t approx_size() const {
    return count_.load(std::memory_order_acquire);
  }
  bool approx_empty() const { return approx_size() == 0; }

 private:
  mutable SpinLock lock_;
  std::vector<T*> items_;  // FIFO window is [head_, size)
  std::size_t head_ = 0;
  std::atomic<std::size_t> count_{0};
};

}  // namespace tdg
