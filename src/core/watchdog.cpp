#include "core/watchdog.hpp"

#include <cstdio>

#include "core/common.hpp"

namespace tdg {

std::uint64_t Watchdog::add_diagnostic(Diagnostic fn) {
  std::lock_guard<std::mutex> g(mu_);
  const std::uint64_t token = next_token_++;
  diags_.emplace_back(token, std::move(fn));
  return token;
}

void Watchdog::remove_diagnostic(std::uint64_t token) {
  std::lock_guard<std::mutex> g(mu_);
  for (std::size_t i = 0; i < diags_.size(); ++i) {
    if (diags_[i].first == token) {
      diags_.erase(diags_.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

std::string Watchdog::build_report(const char* what,
                                   double stalled_seconds) const {
  char head[160];
  if (name_.empty()) {
    std::snprintf(head, sizeof head,
                  "watchdog: no progress for %.3fs while waiting in %s",
                  stalled_seconds, what);
  } else {
    std::snprintf(head, sizeof head,
                  "watchdog [%s]: no progress for %.3fs while waiting in %s",
                  name_.c_str(), stalled_seconds, what);
  }
  std::string report = head;
  std::lock_guard<std::mutex> g(mu_);
  for (const auto& [token, diag] : diags_) {
    (void)token;
    diag(report);
  }
  return report;
}

Watchdog::Scope::Scope(Watchdog* wd, const char* what)
    : wd_(wd != nullptr && wd->enabled() ? wd : nullptr), what_(what) {
  if (wd_ != nullptr) {
    last_epoch_ = wd_->progress_epoch();
    last_change_s_ = now_seconds();
  }
}

void Watchdog::Scope::poll() {
  if (wd_ == nullptr) return;
  const std::uint64_t epoch = wd_->progress_epoch();
  const double now = now_seconds();
  if (epoch != last_epoch_) {
    last_epoch_ = epoch;
    last_change_s_ = now;
    return;
  }
  const double stalled = now - last_change_s_;
  if (stalled < wd_->cfg_.deadline_seconds) return;
  std::string report = wd_->build_report(what_, stalled);
  // Re-arm before reporting: a callback that chooses to keep waiting gets
  // one report per deadline period, not one per poll.
  last_change_s_ = now;
  if (wd_->cfg_.on_deadline) {
    wd_->cfg_.on_deadline(report);
  } else {
    throw DeadlineError(std::move(report));
  }
}

}  // namespace tdg
