#include "core/depend.hpp"

namespace tdg {

DependencyMap::~DependencyMap() {
  clear();
  delete[] slots_;
}

void DependencyMap::grow_table() {
  const std::size_t new_cap = cap_ == 0 ? 64 : cap_ * 2;
  Slot* fresh = new Slot[new_cap]();  // entry == nullptr marks empty
  const std::size_t mask = new_cap - 1;
  for (std::size_t i = 0; i < cap_; ++i) {
    if (slots_[i].entry == nullptr) continue;
    std::size_t j = mix_pointer_hash(slots_[i].key) & mask;
    while (fresh[j].entry != nullptr) j = (j + 1) & mask;
    fresh[j] = slots_[i];
  }
  delete[] slots_;
  slots_ = fresh;
  if (mreg_ != nullptr) {
    mreg_->add(mids_.rehash);
    mreg_->gauge_add(mids_.arena_bytes,
                     static_cast<std::int64_t>((new_cap - cap_) *
                                               sizeof(Slot)));
  }
  cap_ = new_cap;
  ++rehashes_;
}

DependencyMap::AddrEntry& DependencyMap::lookup(const void* addr) {
  if (addr == last_addr_ && last_entry_ != nullptr) return *last_entry_;
  // Grow before probing so the insert below always finds a free slot and
  // the load factor stays under 3/4 (probe sequences stay short).
  if ((size_ + 1) * 4 > cap_ * 3) grow_table();
  const std::size_t mask = cap_ - 1;
  std::size_t i = mix_pointer_hash(addr) & mask;
  std::uint64_t probes = 1;
  while (slots_[i].entry != nullptr) {
    if (slots_[i].key == addr) {
      if (mreg_ != nullptr) mreg_->observe(mids_.probe_len, probes);
      last_addr_ = addr;
      last_entry_ = slots_[i].entry;
      return *last_entry_;
    }
    i = (i + 1) & mask;
    ++probes;
  }
  TaskArena::Source src{};
  AddrEntry* e = ::new (arena_.allocate(/*shard=*/0, src)) AddrEntry();
  slots_[i].key = addr;
  slots_[i].entry = e;
  ++size_;
  last_addr_ = addr;
  last_entry_ = e;
  if (mreg_ != nullptr) {
    mreg_->observe(mids_.probe_len, probes);
    mreg_->gauge_add(mids_.addr_entries, 1);
    if (src == TaskArena::Source::NewChunk) {
      mreg_->gauge_add(
          mids_.arena_bytes,
          static_cast<std::int64_t>(TaskArena::kBlocksPerChunk *
                                    arena_.block_bytes()));
    }
  }
  return *e;
}

void DependencyMap::edge(Task* pred, Task* succ,
                         const DiscoveryOptions& opts, const void* addr) {
  // Seeded fault (verifier self-tests): the Nth discovery silently
  // vanishes, exactly as if the clause that would have produced it were
  // missing from the program. The drop is logged with both endpoint ids
  // so it stays attributable under batch submission, where the whole
  // batch shares one discovery window and the Nth edge call corresponds
  // to no single submit index.
  if (opts.seed_drop_edge != 0 && ++edge_calls_ == opts.seed_drop_edge) {
    dropped_edges_.push_back(
        DroppedEdge{edge_calls_, pred->id(), succ->id(), addr});
    return;
  }
  switch (hooks_->discover_edge(pred, succ)) {
    case EdgeOutcome::Created: ++episode_stats_.edges_created; break;
    case EdgeOutcome::Duplicate: ++episode_stats_.edges_duplicate; break;
    case EdgeOutcome::Pruned: ++episode_stats_.edges_pruned; break;
    case EdgeOutcome::SelfSkip: break;
  }
}

// Order `succ` after the last modifying access of `e`. For an open inoutset
// generation this is either one edge through the redirect node (optimization
// (c)) or one edge per generation member.
void DependencyMap::edges_from_mod(AddrEntry& e, Task* succ,
                                   const DiscoveryOptions& opts,
                                   const void* addr) {
  // If succ itself is a member of the open generation (inoutset + in on
  // the same address in one clause), routing through a redirect node would
  // create an indirect self-cycle (succ -> R -> succ); use direct edges,
  // where the self-edge is skipped.
  bool self_in_mod = false;
  if (e.mod_is_set) {
    for (Task* m : e.last_mod) self_in_mod |= (m == succ);
  }
  if (e.mod_is_set && opts.inoutset_redirect && e.last_mod.size() > 1 &&
      !self_in_mod) {
    if (e.redirect == nullptr) {
      Task* r = hooks_->make_internal_node();
      // Take the map's reference BEFORE sealing: if every member already
      // finished, sealing completes the node inline and drops its
      // self-reference — the descriptor must survive for the consumer
      // edge below (which will then be correctly pruned).
      r->retain();
      ++episode_stats_.redirect_nodes;
      for (Task* m : e.last_mod) edge(m, r, opts, addr);
      hooks_->seal_internal_node(r);
      e.redirect = r;
    }
    edge(e.redirect, succ, opts, addr);
    return;
  }
  for (Task* m : e.last_mod) edge(m, succ, opts, addr);
}

// Install `task` as the unique last writer, releasing the previous history.
void DependencyMap::become_writer(AddrEntry& e, Task* task) {
  release_all(e.last_mod);
  release_all(e.gen_base);
  release_all(e.readers);
  if (e.redirect != nullptr) {
    e.redirect->release();
    e.redirect = nullptr;
  }
  e.mod_is_set = false;
  retain_into(e.last_mod, task);
}

void DependencyMap::apply(Task* task, std::span<const Depend> deps,
                          const DiscoveryOptions& opts) {
  for (const Depend& d : deps) {
    AddrEntry& e = lookup(d.addr);
    switch (d.type) {
      case DependType::In:
        // Ordered after the last modifying access only; transitivity covers
        // anything earlier.
        edges_from_mod(e, task, opts, d.addr);
        retain_into(e.readers, task);
        break;

      case DependType::Out:
      case DependType::InOut:
        // Ordered after the last modifying access and all reads since.
        edges_from_mod(e, task, opts, d.addr);
        for (Task* r : e.readers) edge(r, task, opts, d.addr);
        become_writer(e, task);
        break;

      case DependType::InOutSet:
        if (!e.mod_is_set) {
          // Open a new generation. Its base is the previous writer plus the
          // reads since: every member must be ordered after those.
          e.mod_is_set = true;
          e.gen_base.clear();
          std::swap(e.gen_base, e.last_mod);
          for (Task* r : e.readers) retain_into(e.gen_base, r);
          release_all(e.readers);
          if (e.redirect != nullptr) {
            e.redirect->release();
            e.redirect = nullptr;
          }
        } else if (e.redirect != nullptr) {
          // The generation grows: consumers discovered so far keep their
          // edges to the old redirect (they must not depend on this new
          // member), but future consumers need a fresh one.
          e.redirect->release();
          e.redirect = nullptr;
        }
        // A member is ordered after the generation base and any reader that
        // arrived while the generation was open (OpenMP 5.1: inoutset
        // depends on prior in/out/inout accesses, not prior inoutset).
        for (Task* b : e.gen_base) edge(b, task, opts, d.addr);
        for (Task* r : e.readers) edge(r, task, opts, d.addr);
        retain_into(e.last_mod, task);
        break;
    }
  }
}

void DependencyMap::clear() {
  for (std::size_t i = 0; i < cap_; ++i) {
    AddrEntry* e = slots_[i].entry;
    if (e == nullptr) continue;
    release_all(e->last_mod);
    release_all(e->gen_base);
    release_all(e->readers);
    if (e->redirect != nullptr) e->redirect->release();
    e->~AddrEntry();
    arena_.deallocate(e);
    slots_[i].entry = nullptr;
    slots_[i].key = nullptr;
  }
  if (mreg_ != nullptr && size_ != 0) {
    mreg_->gauge_add(mids_.addr_entries,
                     -static_cast<std::int64_t>(size_));
  }
  size_ = 0;
  last_addr_ = nullptr;
  last_entry_ = nullptr;
  // Episode boundary: per-scope statistics restart with the history so
  // persistent regions / phase clears report their own numbers instead of
  // accumulating across iterations. (edge_calls_ deliberately survives —
  // seed_drop_edge targets a lifetime position.)
  episode_stats_ = DiscoveryStats{};
}

}  // namespace tdg
