#include "core/depend.hpp"

namespace tdg {

void DependencyMap::retain_into(std::vector<Task*>& v, Task* t) {
  t->retain();
  v.push_back(t);
}

void DependencyMap::release_all(std::vector<Task*>& v) {
  for (Task* t : v) t->release();
  v.clear();
}

// Order `succ` after the last modifying access of `e`. For an open inoutset
// generation this is either one edge through the redirect node (optimization
// (c)) or one edge per generation member.
void DependencyMap::edges_from_mod(AddrEntry& e, Task* succ,
                                   const DiscoveryOptions& opts) {
  // If succ itself is a member of the open generation (inoutset + in on
  // the same address in one clause), routing through a redirect node would
  // create an indirect self-cycle (succ -> R -> succ); use direct edges,
  // where the self-edge is skipped.
  bool self_in_mod = false;
  if (e.mod_is_set) {
    for (Task* m : e.last_mod) self_in_mod |= (m == succ);
  }
  if (e.mod_is_set && opts.inoutset_redirect && e.last_mod.size() > 1 &&
      !self_in_mod) {
    if (e.redirect == nullptr) {
      Task* r = hooks_->make_internal_node();
      // Take the map's reference BEFORE sealing: if every member already
      // finished, sealing completes the node inline and drops its
      // self-reference — the descriptor must survive for the consumer
      // edge below (which will then be correctly pruned).
      r->retain();
      for (Task* m : e.last_mod) hooks_->discover_edge(m, r);
      hooks_->seal_internal_node(r);
      e.redirect = r;
    }
    hooks_->discover_edge(e.redirect, succ);
    return;
  }
  for (Task* m : e.last_mod) hooks_->discover_edge(m, succ);
}

// Install `task` as the unique last writer, releasing the previous history.
void DependencyMap::become_writer(AddrEntry& e, Task* task) {
  release_all(e.last_mod);
  release_all(e.gen_base);
  release_all(e.readers);
  if (e.redirect != nullptr) {
    e.redirect->release();
    e.redirect = nullptr;
  }
  e.mod_is_set = false;
  retain_into(e.last_mod, task);
}

void DependencyMap::apply(Task* task, std::span<const Depend> deps,
                          const DiscoveryOptions& opts) {
  for (const Depend& d : deps) {
    AddrEntry& e = entries_[d.addr];
    switch (d.type) {
      case DependType::In:
        // Ordered after the last modifying access only; transitivity covers
        // anything earlier.
        edges_from_mod(e, task, opts);
        retain_into(e.readers, task);
        break;

      case DependType::Out:
      case DependType::InOut:
        // Ordered after the last modifying access and all reads since.
        edges_from_mod(e, task, opts);
        for (Task* r : e.readers) hooks_->discover_edge(r, task);
        become_writer(e, task);
        break;

      case DependType::InOutSet:
        if (!e.mod_is_set) {
          // Open a new generation. Its base is the previous writer plus the
          // reads since: every member must be ordered after those.
          e.mod_is_set = true;
          e.gen_base.clear();
          std::swap(e.gen_base, e.last_mod);
          for (Task* r : e.readers) retain_into(e.gen_base, r);
          release_all(e.readers);
          if (e.redirect != nullptr) {
            e.redirect->release();
            e.redirect = nullptr;
          }
        } else if (e.redirect != nullptr) {
          // The generation grows: consumers discovered so far keep their
          // edges to the old redirect (they must not depend on this new
          // member), but future consumers need a fresh one.
          e.redirect->release();
          e.redirect = nullptr;
        }
        // A member is ordered after the generation base and any reader that
        // arrived while the generation was open (OpenMP 5.1: inoutset
        // depends on prior in/out/inout accesses, not prior inoutset).
        for (Task* b : e.gen_base) hooks_->discover_edge(b, task);
        for (Task* r : e.readers) hooks_->discover_edge(r, task);
        retain_into(e.last_mod, task);
        break;
    }
  }
}

void DependencyMap::clear() {
  for (auto& [addr, e] : entries_) {
    (void)addr;
    release_all(e.last_mod);
    release_all(e.gen_base);
    release_all(e.readers);
    if (e.redirect != nullptr) e.redirect->release();
  }
  entries_.clear();
}

}  // namespace tdg
