// In-runtime profiler reproducing the methodology of Section 2.3.1:
// task create/schedule/complete traces with omp_get_wtime-style timestamps,
// and the parallel-time breakdown of Tallent & Mellor-Crummey adapted to
// dependent tasks — work (inside a task body), overhead (outside a body
// while ready tasks exist), idleness (outside a body with none ready).
#pragma once

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "core/common.hpp"
#include "core/depend_types.hpp"

namespace tdg {

/// One executed task instance (one record per persistent-region iteration).
struct TaskRecord {
  std::uint64_t task_id = 0;
  std::uint64_t t_create = 0;  ///< ns, discovery timestamp
  std::uint64_t t_ready = 0;   ///< ns, last predecessor satisfied
  std::uint64_t t_start = 0;   ///< ns, body began
  std::uint64_t t_end = 0;     ///< ns, completion
  std::uint32_t thread = 0;    ///< executing thread slot
  std::uint32_t iteration = 0; ///< persistent-region iteration
  const char* label = "";
  std::int32_t rank = 0;       ///< owning rank (merged multi-rank traces)
};

/// One completed communication operation of the recording rank (trace mode
/// only). Matched send/recv records across ranks share (src, dst, tag, seq)
/// — per-stream non-overtaking means the nth send on a (peer, tag) stream
/// pairs with the nth receive — and become Perfetto message-flow arrows and
/// the cross-rank edges of the merged critical-path analysis.
struct CommRecord {
  enum class Kind : std::uint8_t { Send, Recv, Collective };
  Kind kind = Kind::Send;
  std::int32_t self = 0;          ///< recording rank
  std::int32_t peer = -1;         ///< dest for sends, src for recvs
  std::int32_t tag = -1;          ///< message tag (collective slot id)
  std::uint64_t seq = 0;          ///< 1-based per-(src,dst,tag) stream seq
  std::uint64_t bytes = 0;
  std::uint64_t t_post = 0;       ///< ns, operation posted
  std::uint64_t t_complete = 0;   ///< ns, request completed
  std::uint32_t retransmits = 0;  ///< universe retransmit total at complete
  std::uint64_t task_id = 0;      ///< owning detach task (0 = none)
};

/// One discovered dependence edge, by task id (trace mode only; feeds the
/// Perfetto flow arrows and the post-mortem critical-path analysis).
struct TraceEdge {
  std::uint64_t pred = 0;
  std::uint64_t succ = 0;
};

/// One depend-clause item of one submitted task (trace mode only; feeds the
/// TDG soundness verifier and the depend-clause lint). Addresses are erased
/// to integers — the verifier only needs identity, never dereferences.
struct AccessRecord {
  std::uint64_t task_id = 0;
  std::uint64_t addr = 0;
  DependType type = DependType::In;
  std::uint32_t bytes = 0;  ///< clause extent annotation (0 = identity only)
  const char* label = "";
};

/// Per-thread cumulative time split, in seconds.
struct ThreadBreakdown {
  double work = 0;
  double overhead = 0;
  double idle = 0;
};

/// Aggregated breakdown over the team (Fig. 2(c) / Fig. 6 / Fig. 7 style).
struct Breakdown {
  std::vector<ThreadBreakdown> per_thread;
  double work = 0;      ///< cumulated seconds on all threads
  double overhead = 0;
  double idle = 0;
  double avg_work = 0;  ///< averaged per thread
  double avg_overhead = 0;
  double avg_idle = 0;
};

/// Event collector. Accumulator counters are always on (a few relaxed
/// atomic adds per scheduling decision); full task tracing is opt-in, as in
/// the paper where tracing costs 0-5% and is bounded by DRAM capacity.
class Profiler {
 public:
  explicit Profiler(unsigned nthreads, bool trace_enabled = false);

  bool trace_enabled() const {
    return trace_enabled_.load(std::memory_order_relaxed);
  }
  /// Safe while workers run: the flag is atomic, so toggling mid-flight
  /// merely starts/stops recording at the next task boundary.
  void set_trace_enabled(bool on) {
    trace_enabled_.store(on, std::memory_order_relaxed);
  }

  // --- accumulators, called from worker loops ----------------------------
  // Relaxed atomics: each slot is written by its own thread only, but
  // breakdown() reads them while idle workers are still accumulating.
  // Thread indices are clamped so a caller holding a slot id from before a
  // reset(nthreads) shrink cannot write out of bounds.
  void add_work(unsigned thread, std::uint64_t ns) {
    acc_[clamp_slot(thread)].work_ns.fetch_add(ns,
                                               std::memory_order_relaxed);
  }
  void add_overhead(unsigned thread, std::uint64_t ns) {
    acc_[clamp_slot(thread)].overhead_ns.fetch_add(
        ns, std::memory_order_relaxed);
  }
  void add_idle(unsigned thread, std::uint64_t ns) {
    acc_[clamp_slot(thread)].idle_ns.fetch_add(ns,
                                               std::memory_order_relaxed);
  }

  /// Record a completed task instance (trace mode only).
  void record(unsigned thread, const TaskRecord& rec);

  /// Record a discovered dependence edge (trace mode only). Called from
  /// the producer thread only — discovery is sequential — so the edge log
  /// is unsynchronized; read it post-mortem.
  void record_edge(std::uint64_t pred, std::uint64_t succ);

  /// Record a task's depend clause (trace mode only, producer thread only,
  /// same discipline as record_edge). `label` must outlive the profiler.
  void record_accesses(std::uint64_t task_id, const char* label,
                       const Depend* deps, std::size_t n);

  /// Record a taskwait barrier: every task with id <= max_task_id completed
  /// before any later task was submitted. Producer thread only; consecutive
  /// identical cutoffs are deduplicated.
  void record_barrier(std::uint64_t max_task_id);

  /// Record a dependency-scope clear: the access history was dropped, so
  /// no dependence is required between tasks with id <= max_task_id and
  /// later ones. Producer thread only; consecutive duplicates dropped.
  void record_scope_clear(std::uint64_t max_task_id);

  /// Record a completed communication operation (trace mode only).
  /// Thread-safe: the request poller fires from whichever worker hits the
  /// polling hook, so the comm ring has its own lock.
  void record_comm(const CommRecord& rec);

  // --- post-mortem analysis ----------------------------------------------
  Breakdown breakdown() const;
  /// All records, merged and sorted by start time.
  std::vector<TaskRecord> merged_trace() const;
  /// Dependence edges logged during discovery (trace mode only).
  const std::vector<TraceEdge>& edges() const { return edges_; }
  /// Depend-clause items logged during discovery (trace mode only).
  const std::vector<AccessRecord>& accesses() const { return accesses_; }
  /// Taskwait cutoffs (max task id submitted before each barrier).
  const std::vector<std::uint64_t>& barriers() const { return barriers_; }
  /// Dependency-scope clear cutoffs (max task id before each clear).
  const std::vector<std::uint64_t>& scope_clears() const {
    return scope_clears_;
  }
  /// Completed comm operations, in recording order (copies under the comm
  /// ring lock — safe while the poller is still recording).
  std::vector<CommRecord> comm_records() const;

  /// Rank identity stamped into exported traces. Set once by the comm-
  /// aware request poller; stays 0 for single-process runtimes.
  void set_rank(int rank) { rank_.store(rank, std::memory_order_relaxed); }
  int rank() const { return rank_.load(std::memory_order_relaxed); }

  /// Write a Gantt-chart-friendly TSV: thread, start_s, end_s, iteration,
  /// label (Fig. 8 input format).
  void write_gantt(std::ostream& os) const;

  /// Reset accumulators and traces (between experiment phases).
  void reset();
  /// Reset and resize to a new team width. Call only while no worker is
  /// accumulating (the slot arrays are reallocated).
  void reset(unsigned nthreads);

  unsigned num_threads() const { return static_cast<unsigned>(acc_.size()); }

 private:
  struct alignas(kCacheLine) Accum {
    std::atomic<std::uint64_t> work_ns{0};
    std::atomic<std::uint64_t> overhead_ns{0};
    std::atomic<std::uint64_t> idle_ns{0};
  };
  struct alignas(kCacheLine) TraceBuf {
    std::vector<TaskRecord> records;
  };

  unsigned clamp_slot(unsigned thread) const {
    return thread < acc_.size() ? thread
                                : static_cast<unsigned>(acc_.size()) - 1;
  }

  std::atomic<bool> trace_enabled_;
  std::atomic<int> rank_{0};
  std::vector<Accum> acc_;
  std::vector<TraceBuf> trace_;
  std::vector<TraceEdge> edges_;
  std::vector<AccessRecord> accesses_;
  std::vector<std::uint64_t> barriers_;
  std::vector<std::uint64_t> scope_clears_;
  mutable SpinLock comm_lock_;  // record_comm runs on any worker thread
  std::vector<CommRecord> comms_;
};

}  // namespace tdg
