// Sequential task-dependency discovery: the per-address access history that
// turns depend clauses into TDG edges, with the paper's runtime-side
// optimizations:
//   (b) O(1) duplicate-edge elimination (Section 3.1),
//   (c) inoutset redirection nodes reducing m*n edges to m+n (Fig. 4).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/depend_types.hpp"
#include "core/task.hpp"

namespace tdg {

/// Toggles for the discovery optimizations studied in Section 3.
/// Optimization (a) lives in user code (fewer depend addresses) and has no
/// runtime switch.
struct DiscoveryOptions {
  bool dedup_edges = true;        ///< (b): skip repeated (pred,succ) pairs
  bool inoutset_redirect = true;  ///< (c): aggregate inoutset generations
};

/// Counters describing one discovery episode.
struct DiscoveryStats {
  std::uint64_t edges_created = 0;    ///< runtime edges materialized
  std::uint64_t edges_pruned = 0;     ///< skipped: predecessor already done
  std::uint64_t edges_duplicate = 0;  ///< skipped by optimization (b)
  std::uint64_t redirect_nodes = 0;   ///< inoutset R nodes inserted by (c)
};

/// Services the dependency map needs from the runtime: creating edges
/// (with pruning/dedup/persistence policy) and inserting internal nodes.
class DiscoveryHooks {
 public:
  virtual ~DiscoveryHooks() = default;
  /// Create precedence edge pred -> succ, applying dedup and pruning.
  virtual void discover_edge(Task* pred, Task* succ) = 0;
  /// Create an empty runtime-internal node (inoutset redirect).
  /// The node is returned with its discovery guard held; the map adds the
  /// member edges and then calls seal_internal_node.
  virtual Task* make_internal_node() = 0;
  /// Drop the internal node's discovery guard (it may complete inline).
  virtual void seal_internal_node(Task* node) = 0;
};

/// Per-address access history with OpenMP 5.1 `in`/`out`/`inout`/`inoutset`
/// semantics. Single-writer: depend clauses are processed sequentially by
/// the producer thread (the paper's "sequential submission of dependent
/// tasks"), which is what makes duplicate detection O(1).
class DependencyMap {
 public:
  explicit DependencyMap(DiscoveryHooks& hooks) : hooks_(&hooks) {}
  ~DependencyMap() { clear(); }
  DependencyMap(const DependencyMap&) = delete;
  DependencyMap& operator=(const DependencyMap&) = delete;

  /// Process the depend clause of `task`, creating all required edges.
  void apply(Task* task, std::span<const Depend> deps,
             const DiscoveryOptions& opts);

  /// Drop the whole access history, releasing task references. Used at
  /// persistent-region discovery end and runtime shutdown.
  void clear();

  std::size_t tracked_addresses() const { return entries_.size(); }

 private:
  struct AddrEntry {
    /// Last modifying access: a single out/inout writer, or the members of
    /// the currently-open inoutset generation. Holds task references.
    std::vector<Task*> last_mod;
    bool mod_is_set = false;  ///< last_mod is an open inoutset generation
    /// Predecessors every new member of the open generation must be
    /// ordered after (the writer/readers present when the generation
    /// opened). Holds references.
    std::vector<Task*> gen_base;
    /// `in` tasks since last_mod changed. Holds references.
    std::vector<Task*> readers;
    /// Optimization (c): redirect node summarizing last_mod when it is an
    /// inoutset generation; invalidated when the generation grows.
    Task* redirect = nullptr;
  };

  void edges_from_mod(AddrEntry& e, Task* succ, const DiscoveryOptions& opts);
  void become_writer(AddrEntry& e, Task* task);
  static void retain_into(std::vector<Task*>& v, Task* t);
  static void release_all(std::vector<Task*>& v);

  DiscoveryHooks* hooks_;
  std::unordered_map<const void*, AddrEntry> entries_;
};

}  // namespace tdg
