// Sequential task-dependency discovery: the per-address access history that
// turns depend clauses into TDG edges, with the paper's runtime-side
// optimizations:
//   (b) O(1) duplicate-edge elimination (Section 3.1),
//   (c) inoutset redirection nodes reducing m*n edges to m+n (Fig. 4).
//
// Data layout (see DESIGN.md "Discovery data layout"): the access history
// is an open-addressing hash table — one flat power-of-two array of
// (address, entry*) slots probed linearly under a mixed pointer hash — and
// the AddrEntry payloads live in a slab arena (core/slab.hpp), so a rehash
// moves only 16-byte slots while entries (which hold task references and
// possibly-spilled small_vectors) never move. History lists use
// small_vector: the single writer / few readers of the common case stay
// inline in the arena block, wide inoutset generations spill.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/depend_types.hpp"
#include "core/metrics.hpp"
#include "core/slab.hpp"
#include "core/task.hpp"

namespace tdg {

/// Toggles for the discovery optimizations studied in Section 3.
/// Optimization (a) lives in user code (fewer depend addresses) and has no
/// runtime switch.
struct DiscoveryOptions {
  bool dedup_edges = true;        ///< (b): skip repeated (pred,succ) pairs
  bool inoutset_redirect = true;  ///< (c): aggregate inoutset generations
  /// Fault injection for the TDG soundness verifier's self-tests (in the
  /// spirit of the MPI substrate's FaultPlan): when nonzero, the Nth edge
  /// discovery of the map's lifetime (1-based, counting every would-be
  /// hooks call) is silently dropped — the runtime neither orders nor
  /// records it, exactly what a missing depend clause would cause. The
  /// drop is logged in DependencyMap::dropped_edges() with both endpoint
  /// ids and the clause address, so tests remain able to attribute it even
  /// under batch submission (where one discovery window covers the whole
  /// batch and the Nth edge call maps to no single submit index). Never
  /// set outside tests.
  std::uint64_t seed_drop_edge = 0;
};

/// One edge suppressed by DiscoveryOptions::seed_drop_edge.
struct DroppedEdge {
  std::uint64_t nth = 0;      ///< 1-based lifetime edge-call position
  std::uint64_t pred_id = 0;
  std::uint64_t succ_id = 0;
  const void* addr = nullptr; ///< clause address whose history produced it
};

/// Counters describing one discovery episode.
struct DiscoveryStats {
  std::uint64_t edges_created = 0;    ///< runtime edges materialized
  std::uint64_t edges_pruned = 0;     ///< skipped: predecessor already done
  std::uint64_t edges_duplicate = 0;  ///< skipped by optimization (b)
  std::uint64_t redirect_nodes = 0;   ///< inoutset R nodes inserted by (c)
};

/// What one discover_edge call did — reported back so the map can keep
/// per-episode statistics that reset with its history (clear()), while the
/// runtime's own cumulative counters keep running.
enum class EdgeOutcome : std::uint8_t {
  Created,    ///< edge materialized (or recorded for persistent replay)
  Duplicate,  ///< skipped by optimization (b)
  Pruned,     ///< skipped: predecessor already finished
  SelfSkip,   ///< pred == succ (same task, two clause items)
};

/// Services the dependency map needs from the runtime: creating edges
/// (with pruning/dedup/persistence policy) and inserting internal nodes.
class DiscoveryHooks {
 public:
  virtual ~DiscoveryHooks() = default;
  /// Create precedence edge pred -> succ, applying dedup and pruning.
  virtual EdgeOutcome discover_edge(Task* pred, Task* succ) = 0;
  /// Create an empty runtime-internal node (inoutset redirect).
  /// The node is returned with its discovery guard held; the map adds the
  /// member edges and then calls seal_internal_node.
  virtual Task* make_internal_node() = 0;
  /// Drop the internal node's discovery guard (it may complete inline).
  virtual void seal_internal_node(Task* node) = 0;
};

/// Locality-preserving pointer hash. Depend addresses arrive in array
/// order in real applications (mesh blocks, matrix tiles), so a hash that
/// scatters neighbours — a murmur-style finalizer — turns the sequential
/// table walk the hardware prefetcher would eat for free into one random
/// cache miss per probe; measured on the discovery microbench that costs
/// ~2x at 10k+ addresses. Instead: drop the alignment zeros and *add*
/// shifted copies. Sequential addresses stay in adjacent slots (prefetch
/// works, no collisions), while the folded terms break the power-of-two
/// stride pathology a pure identity hash has under a power-of-two mask —
/// e.g. page-strided addresses (4096 apart) get slot stride 512+1 = 513,
/// odd and therefore coprime with every table size, so they cycle through
/// the whole table instead of colliding into 32 slots. Residual
/// clustering from adversarial patterns is absorbed by linear probing and
/// monitored by the discovery.probe_len histogram.
inline std::size_t mix_pointer_hash(const void* p) noexcept {
  const std::uintptr_t x = reinterpret_cast<std::uintptr_t>(p) >> 3;
  return static_cast<std::size_t>(x + (x >> 9) + (x >> 18));
}

/// Per-address access history with OpenMP 5.1 `in`/`out`/`inout`/`inoutset`
/// semantics. Single-writer: depend clauses are processed sequentially by
/// the producer thread (the paper's "sequential submission of dependent
/// tasks"), which is what makes duplicate detection O(1) and lets the
/// table skip all synchronization.
class DependencyMap {
 public:
  explicit DependencyMap(DiscoveryHooks& hooks)
      : hooks_(&hooks), arena_(sizeof(AddrEntry), /*nshards=*/1) {}
  ~DependencyMap();
  DependencyMap(const DependencyMap&) = delete;
  DependencyMap& operator=(const DependencyMap&) = delete;

  /// Process the depend clause of `task`, creating all required edges.
  void apply(Task* task, std::span<const Depend> deps,
             const DiscoveryOptions& opts);

  /// Drop the whole access history, releasing task references. Used at
  /// persistent-region discovery end and runtime shutdown. The slot array
  /// and arena chunks are retained for the next episode (capacity is
  /// sticky; chunk memory returns to the OS only at destruction).
  void clear();

  /// Observability handles (registered by the owning runtime): probe-length
  /// histogram, rehash counter, live-entry and arena-footprint gauges.
  struct MetricIds {
    MetricsRegistry::Id probe_len;     ///< histogram discovery.probe_len
    MetricsRegistry::Id rehash;        ///< counter discovery.rehash
    MetricsRegistry::Id addr_entries;  ///< gauge discovery.addr_entries
    MetricsRegistry::Id arena_bytes;   ///< gauge discovery.arena_bytes
  };
  void bind_metrics(MetricsRegistry* reg, MetricIds ids) {
    mreg_ = reg;
    mids_ = ids;
  }

  /// Discovery statistics of the current episode — since construction or
  /// the last clear(). Unlike the runtime's cumulative RuntimeStats
  /// counters, these reset with the history, so per-region / per-iteration
  /// numbers (persistent regions clear between discovery episodes) do not
  /// accumulate across scopes.
  const DiscoveryStats& episode_stats() const { return episode_stats_; }

  /// Edges suppressed by seed_drop_edge over the map's lifetime (survives
  /// clear(), like edge_calls_: the fault targets a lifetime position).
  const std::vector<DroppedEdge>& dropped_edges() const {
    return dropped_edges_;
  }

  std::size_t tracked_addresses() const { return size_; }
  std::size_t table_capacity() const { return cap_; }
  /// AddrEntry blocks currently handed out by the arena (leak checks:
  /// returns to zero after clear()).
  std::size_t live_entries() const { return arena_.live_blocks(); }
  /// Total discovery-layer footprint: arena chunks plus the slot array.
  std::size_t arena_bytes() const {
    return arena_.chunks_allocated() * TaskArena::kBlocksPerChunk *
               arena_.block_bytes() +
           cap_ * sizeof(Slot);
  }
  std::uint64_t rehash_count() const { return rehashes_; }

 private:
  /// History lists share one inline capacity so an opening inoutset
  /// generation can swap last_mod into gen_base without copying through
  /// the heap. 4 pointers covers the figure benches' telemetry (one
  /// writer, 1-3 readers between writes); generations of 5+ members and
  /// wide reader sets spill.
  static constexpr std::size_t kInlineHistory = 4;
  using TaskList = small_vector<Task*, kInlineHistory>;

  struct AddrEntry {
    /// Last modifying access: a single out/inout writer, or the members of
    /// the currently-open inoutset generation. Holds task references.
    TaskList last_mod;
    /// Predecessors every new member of the open generation must be
    /// ordered after (the writer/readers present when the generation
    /// opened). Holds references.
    TaskList gen_base;
    /// `in` tasks since last_mod changed. Holds references.
    TaskList readers;
    /// Optimization (c): redirect node summarizing last_mod when it is an
    /// inoutset generation; invalidated when the generation grows.
    Task* redirect = nullptr;
    bool mod_is_set = false;  ///< last_mod is an open inoutset generation
  };

  /// One open-addressing slot. Empty iff entry == nullptr (the key is an
  /// arbitrary user address, so no address value can serve as a sentinel).
  struct Slot {
    const void* key;
    AddrEntry* entry;
  };

  /// Find the entry for `addr`, inserting an empty one if absent.
  AddrEntry& lookup(const void* addr);
  /// Double the slot array and reinsert the (key, entry) pairs. Entries
  /// themselves never move — the table only stores pointers into the
  /// arena — so no task reference is touched during a rehash.
  void grow_table();

  void edges_from_mod(AddrEntry& e, Task* succ, const DiscoveryOptions& opts,
                      const void* addr);
  void become_writer(AddrEntry& e, Task* task);
  /// All edge discovery funnels through here: applies the seeded-drop
  /// fault (verifier self-tests) and folds the outcome into episode_stats_.
  /// `addr` is the clause address whose history produced the edge — only
  /// used to attribute seeded drops.
  void edge(Task* pred, Task* succ, const DiscoveryOptions& opts,
            const void* addr);
  static void retain_into(TaskList& v, Task* t) {
    t->retain();
    v.push_back(t);
  }
  static void release_all(TaskList& v) {
    for (Task* t : v) t->release();
    v.clear();
  }

  DiscoveryHooks* hooks_;
  TaskArena arena_;  ///< AddrEntry payload slab (PR 3 machinery)
  /// One-entry lookup cache: depend clauses touch the same address in
  /// bursts (out/in/inout items of one clause, stencil neighbours across
  /// consecutive submits), so the last (addr, entry) pair short-circuits
  /// the probe. Entries never move on rehash, so only clear() — which
  /// frees them — must invalidate the cache.
  const void* last_addr_ = nullptr;
  AddrEntry* last_entry_ = nullptr;
  Slot* slots_ = nullptr;
  std::size_t cap_ = 0;   ///< power of two (0 until the first insert)
  std::size_t size_ = 0;  ///< live entries
  std::uint64_t rehashes_ = 0;
  DiscoveryStats episode_stats_;   ///< reset by clear()
  std::uint64_t edge_calls_ = 0;  ///< lifetime counter for seed_drop_edge
  std::vector<DroppedEdge> dropped_edges_;  ///< lifetime log (see accessor)
  MetricsRegistry* mreg_ = nullptr;
  MetricIds mids_{};
};

}  // namespace tdg
