// Post-mortem analysis over an executed TDG trace: critical-path
// extraction, parallelism profiling, and a discovery-vs-execution overlap
// metric. All functions are pure — they consume the TaskRecord/TraceEdge
// streams of the profiler (or a parsed trace file) and allocate their own
// results, so benches, tests and the tdg-trace CLI share one code path.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/profiler.hpp"

namespace tdg {

/// One task on the critical path.
struct CriticalPathNode {
  std::uint64_t task_id = 0;
  std::string label;
  std::uint64_t t_start = 0;
  std::uint64_t t_end = 0;

  double seconds() const {
    return static_cast<double>(t_end - t_start) * 1e-9;
  }
};

/// The longest (by summed body duration) dependence chain of an executed
/// TDG, i.e. the lower bound on makespan at infinite parallelism.
struct CriticalPath {
  std::vector<CriticalPathNode> nodes;  ///< in execution order
  double length_seconds = 0;  ///< sum of node durations along the path
  double span_seconds = 0;    ///< wall span of the whole trace
  /// Per-label seconds contributed to the path, descending.
  std::vector<std::pair<std::string, double>> label_seconds;

  /// span / length: an upper bound on achievable speedup relative to the
  /// observed schedule (1.0 = execution was critical-path bound).
  double slack_ratio() const {
    return length_seconds > 0 ? span_seconds / length_seconds : 0.0;
  }
};

/// Compute the critical path. Edges whose endpoints have no record are
/// ignored; a cyclic edge set (malformed input) throws tdg::UsageError.
CriticalPath critical_path(std::span<const TaskRecord> records,
                           std::span<const TraceEdge> edges);

/// Concurrency histogram over time: how long exactly k task bodies ran
/// simultaneously.
struct ParallelismProfile {
  double span_seconds = 0;  ///< first start to last end
  double busy_seconds = 0;  ///< time with >= 1 body running
  double avg_concurrency = 0;  ///< time-weighted mean over the span
  std::uint32_t max_concurrency = 0;
  /// seconds_at[k] = seconds during which exactly k bodies were running
  /// (index 0 = gaps inside the span).
  std::vector<double> seconds_at;
};

ParallelismProfile parallelism_profile(std::span<const TaskRecord> records);

/// Fraction of the discovery window (first to last task creation) during
/// which at least one task body was executing — the paper's
/// discovery/execution overlap, computed from the trace alone. Returns 0
/// for traces with fewer than two records or a zero-width window.
double discovery_execution_overlap(std::span<const TaskRecord> records);

}  // namespace tdg
