// Post-mortem analysis over an executed TDG trace: critical-path
// extraction, parallelism profiling, and a discovery-vs-execution overlap
// metric. All functions are pure — they consume the TaskRecord/TraceEdge
// streams of the profiler (or a parsed trace file) and allocate their own
// results, so benches, tests and the tdg-trace CLI share one code path.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/profiler.hpp"

namespace tdg {

/// One task on the critical path.
struct CriticalPathNode {
  std::uint64_t task_id = 0;
  std::string label;
  std::uint64_t t_start = 0;
  std::uint64_t t_end = 0;
  std::int32_t rank = 0;  ///< owning rank (merged multi-rank traces)

  double seconds() const {
    return static_cast<double>(t_end - t_start) * 1e-9;
  }
};

/// The longest (by summed body duration) dependence chain of an executed
/// TDG, i.e. the lower bound on makespan at infinite parallelism.
struct CriticalPath {
  std::vector<CriticalPathNode> nodes;  ///< in execution order
  double length_seconds = 0;  ///< sum of node durations along the path
  double span_seconds = 0;    ///< wall span of the whole trace
  /// Per-label seconds contributed to the path, descending.
  std::vector<std::pair<std::string, double>> label_seconds;
  /// Number of rank changes along the path — each one is a communication
  /// edge the path traversed (0 for single-rank traces).
  std::size_t comm_hops = 0;

  /// span / length: an upper bound on achievable speedup relative to the
  /// observed schedule (1.0 = execution was critical-path bound).
  double slack_ratio() const {
    return length_seconds > 0 ? span_seconds / length_seconds : 0.0;
  }
};

/// Compute the critical path. Edges whose endpoints have no record are
/// ignored; a cyclic edge set (malformed input) throws tdg::UsageError.
/// For a merged multi-rank trace whose edge set includes the derived
/// cross-rank message edges, the path traverses them like any dependence
/// edge and reports the crossings as comm_hops.
CriticalPath critical_path(std::span<const TaskRecord> records,
                           std::span<const TraceEdge> edges);

/// Cross-rank task edges derived from matched send/recv comm records of
/// an already-merged comm stream (same (src, dst, tag, seq), task
/// attribution on both sides). merge_traces appends these automatically;
/// this entry point serves analyses over hand-assembled streams.
std::vector<TraceEdge> message_edges(std::span<const CommRecord> comms);

/// Concurrency histogram over time: how long exactly k task bodies ran
/// simultaneously.
struct ParallelismProfile {
  double span_seconds = 0;  ///< first start to last end
  double busy_seconds = 0;  ///< time with >= 1 body running
  double avg_concurrency = 0;  ///< time-weighted mean over the span
  std::uint32_t max_concurrency = 0;
  /// seconds_at[k] = seconds during which exactly k bodies were running
  /// (index 0 = gaps inside the span).
  std::vector<double> seconds_at;
};

ParallelismProfile parallelism_profile(std::span<const TaskRecord> records);

/// Fraction of the discovery window (first to last task creation) during
/// which at least one task body was executing — the paper's
/// discovery/execution overlap, computed from the trace alone. Returns 0
/// for traces with fewer than two records or a zero-width window.
double discovery_execution_overlap(std::span<const TaskRecord> records);

/// Communication wait attributed to the owning task's label: for each
/// label, how many tracked operations its tasks waited on and for how
/// long (receives and collectives; sends complete at post under eager /
/// store-and-forward staging and contribute their actual span). Sorted by
/// wait_seconds descending — the "top comm-blocked labels" view.
struct CommWaitEntry {
  std::string label;
  std::size_t ops = 0;
  std::uint64_t bytes = 0;
  double wait_seconds = 0;
};
std::vector<CommWaitEntry> comm_wait_by_label(
    std::span<const CommRecord> comms,
    std::span<const TaskRecord> records);

/// One row of the per-rank discovery/execution overlap matrix.
struct RankOverlap {
  std::int32_t rank = 0;
  std::size_t tasks = 0;
  double overlap = 0;       ///< discovery_execution_overlap of this rank
  double span_seconds = 0;  ///< first start to last end on this rank
  double busy_seconds = 0;  ///< time with >= 1 body running on this rank
  double comm_wait_seconds = 0;  ///< recv + collective wait on this rank
};

/// Split a (merged) trace by rank and compute each rank's overlap /
/// utilization / comm-wait row. Sorted by rank ascending.
std::vector<RankOverlap> rank_overlap_matrix(
    std::span<const TaskRecord> records,
    std::span<const CommRecord> comms = {});

}  // namespace tdg
