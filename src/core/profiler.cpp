#include "core/profiler.hpp"

#include <algorithm>

namespace tdg {

Profiler::Profiler(unsigned nthreads, bool trace_enabled)
    : trace_enabled_(trace_enabled),
      acc_(std::max(1u, nthreads)),
      trace_(std::max(1u, nthreads)) {
  for (auto& tb : trace_) tb.records.reserve(1024);
  edges_.reserve(1024);
}

void Profiler::record(unsigned thread, const TaskRecord& rec) {
  if (!trace_enabled()) return;
  trace_[clamp_slot(thread)].records.push_back(rec);
}

void Profiler::record_edge(std::uint64_t pred, std::uint64_t succ) {
  if (!trace_enabled()) return;
  edges_.push_back(TraceEdge{pred, succ});
}

void Profiler::record_accesses(std::uint64_t task_id, const char* label,
                               const Depend* deps, std::size_t n) {
  if (!trace_enabled()) return;
  for (std::size_t i = 0; i < n; ++i) {
    accesses_.push_back(AccessRecord{
        task_id, reinterpret_cast<std::uint64_t>(deps[i].addr), deps[i].type,
        deps[i].bytes, label != nullptr ? label : ""});
  }
}

void Profiler::record_barrier(std::uint64_t max_task_id) {
  if (!trace_enabled()) return;
  // Back-to-back taskwaits (or a taskwait with no intervening submissions)
  // carry no extra ordering information; keep the log minimal.
  if (!barriers_.empty() && barriers_.back() == max_task_id) return;
  barriers_.push_back(max_task_id);
}

void Profiler::record_scope_clear(std::uint64_t max_task_id) {
  if (!trace_enabled()) return;
  if (!scope_clears_.empty() && scope_clears_.back() == max_task_id) return;
  scope_clears_.push_back(max_task_id);
}

void Profiler::record_comm(const CommRecord& rec) {
  if (!trace_enabled()) return;
  SpinGuard g(comm_lock_);
  comms_.push_back(rec);
}

std::vector<CommRecord> Profiler::comm_records() const {
  SpinGuard g(comm_lock_);
  return comms_;
}

Breakdown Profiler::breakdown() const {
  Breakdown b;
  // Sized from the accumulators at call time, not from a cached width, so
  // a reset(nthreads) between arming and reading cannot leave per_thread
  // stale relative to acc_.
  b.per_thread.resize(acc_.size());
  for (std::size_t i = 0; i < acc_.size(); ++i) {
    b.per_thread[i].work =
        static_cast<double>(
            acc_[i].work_ns.load(std::memory_order_relaxed)) *
        1e-9;
    b.per_thread[i].overhead =
        static_cast<double>(
            acc_[i].overhead_ns.load(std::memory_order_relaxed)) *
        1e-9;
    b.per_thread[i].idle =
        static_cast<double>(
            acc_[i].idle_ns.load(std::memory_order_relaxed)) *
        1e-9;
    b.work += b.per_thread[i].work;
    b.overhead += b.per_thread[i].overhead;
    b.idle += b.per_thread[i].idle;
  }
  const double n = acc_.empty() ? 1.0 : static_cast<double>(acc_.size());
  b.avg_work = b.work / n;
  b.avg_overhead = b.overhead / n;
  b.avg_idle = b.idle / n;
  return b;
}

std::vector<TaskRecord> Profiler::merged_trace() const {
  std::vector<TaskRecord> all;
  std::size_t total = 0;
  for (const auto& tb : trace_) total += tb.records.size();
  all.reserve(total);
  for (const auto& tb : trace_) {
    all.insert(all.end(), tb.records.begin(), tb.records.end());
  }
  std::sort(all.begin(), all.end(),
            [](const TaskRecord& a, const TaskRecord& b) {
              return a.t_start < b.t_start;
            });
  return all;
}

void Profiler::write_gantt(std::ostream& os) const {
  os << "thread\tstart_s\tend_s\titeration\tlabel\n";
  for (const TaskRecord& r : merged_trace()) {
    os << r.thread << '\t' << static_cast<double>(r.t_start) * 1e-9 << '\t'
       << static_cast<double>(r.t_end) * 1e-9 << '\t' << r.iteration << '\t'
       << r.label << '\n';
  }
}

void Profiler::reset() {
  for (auto& a : acc_) {
    a.work_ns.store(0, std::memory_order_relaxed);
    a.overhead_ns.store(0, std::memory_order_relaxed);
    a.idle_ns.store(0, std::memory_order_relaxed);
  }
  for (auto& tb : trace_) tb.records.clear();
  edges_.clear();
  accesses_.clear();
  barriers_.clear();
  scope_clears_.clear();
  // Quiesce the comm ring under its own lock: the request poller records
  // from arbitrary worker threads, so clearing without the lock (or not
  // clearing at all) would leave stale comm records attributed to flow
  // events of a graph that was just reset.
  SpinGuard g(comm_lock_);
  comms_.clear();
}

void Profiler::reset(unsigned nthreads) {
  const unsigned n = std::max(1u, nthreads);
  // Atomics are not movable; build fresh arrays and swap them in. Callers
  // must be quiescent (documented in the header).
  std::vector<Accum> acc(n);
  std::vector<TraceBuf> trace(n);
  for (auto& tb : trace) tb.records.reserve(1024);
  acc_.swap(acc);
  trace_.swap(trace);
  edges_.clear();
  accesses_.clear();
  barriers_.clear();
  scope_clears_.clear();
  SpinGuard g(comm_lock_);
  comms_.clear();
}

}  // namespace tdg
