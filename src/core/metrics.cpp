#include "core/metrics.hpp"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <ostream>

#include "core/error.hpp"

namespace tdg {

MetricsEnvMode metrics_env_mode() {
  const char* v = std::getenv("TDG_METRICS");
  if (v == nullptr || *v == '\0') return MetricsEnvMode::Default;
  if (std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0 ||
      std::strcmp(v, "false") == 0) {
    return MetricsEnvMode::Off;
  }
  if (std::strcmp(v, "dump") == 0) return MetricsEnvMode::Dump;
  return MetricsEnvMode::On;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

MetricsRegistry::MetricsRegistry(unsigned nshards, bool enabled)
    : enabled_(enabled), shards_(nshards > 0 ? nshards : 1) {
  for (auto& sh : shards_) {
    sh.slots = std::make_unique<std::atomic<std::uint64_t>[]>(kMaxSlots);
    for (std::uint32_t i = 0; i < kMaxSlots; ++i) {
      sh.slots[i].store(0, std::memory_order_relaxed);
    }
  }
}

MetricsRegistry::Id MetricsRegistry::register_metric(std::string_view name,
                                                     MetricKind kind,
                                                     std::uint32_t nslots) {
  SpinGuard g(reg_lock_);
  for (const Info& info : infos_) {
    if (info.name == name) {
      TDG_REQUIRE(info.kind == kind,
                  "metric re-registered with a different kind");
      return Id{info.slot};
    }
  }
  TDG_REQUIRE(next_slot_ + nslots <= kMaxSlots,
              "metrics registry slot budget exhausted");
  Info info{std::string(name), kind, next_slot_, nslots};
  next_slot_ += nslots;
  infos_.push_back(std::move(info));
  return Id{infos_.back().slot};
}

MetricsRegistry::Id MetricsRegistry::counter(std::string_view name) {
  return register_metric(name, MetricKind::Counter, 1);
}

MetricsRegistry::Id MetricsRegistry::gauge(std::string_view name) {
  return register_metric(name, MetricKind::Gauge, 1);
}

MetricsRegistry::Id MetricsRegistry::histogram(std::string_view name) {
  return register_metric(name, MetricKind::Histogram, kHistBuckets + 1);
}

std::size_t MetricsRegistry::num_metrics() const {
  SpinGuard g(reg_lock_);
  return infos_.size();
}

std::size_t MetricsRegistry::slots_used() const {
  SpinGuard g(reg_lock_);
  return next_slot_;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::vector<Info> infos;
  {
    SpinGuard g(reg_lock_);
    infos = infos_;
  }
  MetricsSnapshot snap;
  snap.taken_ns = now_ns();
  snap.entries.reserve(infos.size());
  for (const Info& info : infos) {
    MetricsSnapshot::Entry e;
    e.name = info.name;
    e.kind = info.kind;
    auto sum_slot = [this](std::uint32_t s) {
      std::uint64_t total = 0;
      for (const Shard& sh : shards_) {
        total += sh.slots[s].load(std::memory_order_relaxed);
      }
      return total;
    };
    switch (info.kind) {
      case MetricKind::Counter:
        e.value = sum_slot(info.slot);
        break;
      case MetricKind::Gauge:
        // Negative contributions wrap per-shard; the two's-complement sum
        // across shards is the true level.
        e.level = static_cast<std::int64_t>(sum_slot(info.slot));
        break;
      case MetricKind::Histogram: {
        e.buckets.resize(kHistBuckets);
        for (std::uint32_t b = 0; b < kHistBuckets; ++b) {
          e.buckets[b] = sum_slot(info.slot + b);
          e.value += e.buckets[b];
        }
        e.sum = sum_slot(info.slot + kHistBuckets);
        break;
      }
    }
    snap.entries.push_back(std::move(e));
  }
  return snap;
}

// ---------------------------------------------------------------------------
// MetricsSnapshot
// ---------------------------------------------------------------------------

const MetricsSnapshot::Entry* MetricsSnapshot::find(
    std::string_view name) const {
  for (const Entry& e : entries) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

std::uint64_t MetricsSnapshot::value(std::string_view name) const {
  const Entry* e = find(name);
  return e != nullptr ? e->value : 0;
}

double MetricsSnapshot::Entry::percentile(double p) const {
  if (value == 0 || buckets.empty()) return 0.0;
  if (p <= 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  const double target = p * static_cast<double>(value);
  std::uint64_t cum = 0;
  double hi = 0.0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    // Bucket 0 holds zeros; bucket b >= 1 holds [2^(b-1), 2^b).
    const double lo = b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b) - 1);
    hi = b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b));
    const std::uint64_t prev = cum;
    cum += buckets[b];
    if (static_cast<double>(cum) >= target) {
      double frac = (target - static_cast<double>(prev)) /
                    static_cast<double>(buckets[b]);
      if (frac < 0.0) frac = 0.0;
      if (frac > 1.0) frac = 1.0;
      return lo + frac * (hi - lo);
    }
  }
  // Rounding fell off the end: the upper edge of the last populated bucket.
  return hi;
}

MetricsSnapshot MetricsSnapshot::delta(const MetricsSnapshot& newer,
                                       const MetricsSnapshot& older) {
  MetricsSnapshot d;
  d.taken_ns = newer.taken_ns;
  d.entries.reserve(newer.entries.size());
  for (const Entry& n : newer.entries) {
    Entry e = n;
    if (const Entry* o = older.find(n.name); o != nullptr) {
      e.value -= o->value;
      e.level -= o->level;
      e.sum -= o->sum;
      for (std::size_t b = 0;
           b < e.buckets.size() && b < o->buckets.size(); ++b) {
        e.buckets[b] -= o->buckets[b];
      }
    }
    d.entries.push_back(std::move(e));
  }
  return d;
}

MetricsSnapshot MetricsSnapshot::merge(const MetricsSnapshot& a,
                                       const MetricsSnapshot& b) {
  MetricsSnapshot m = a;
  if (b.taken_ns > m.taken_ns) m.taken_ns = b.taken_ns;
  for (const Entry& eb : b.entries) {
    Entry* ea = nullptr;
    for (Entry& cand : m.entries) {
      if (cand.name == eb.name) {
        ea = &cand;
        break;
      }
    }
    if (ea == nullptr) {
      m.entries.push_back(eb);
      continue;
    }
    ea->value += eb.value;
    ea->level += eb.level;
    ea->sum += eb.sum;
    if (ea->buckets.size() < eb.buckets.size()) {
      ea->buckets.resize(eb.buckets.size(), 0);
    }
    for (std::size_t i = 0; i < eb.buckets.size(); ++i) {
      ea->buckets[i] += eb.buckets[i];
    }
  }
  return m;
}

void MetricsSnapshot::write_text(std::ostream& os, bool nonzero_only,
                                 int tenant) const {
  std::string dim;
  if (tenant >= 0) {
    dim = "{tenant=" + std::to_string(tenant) + "}";
  }
  for (const Entry& e : entries) {
    if (nonzero_only && e.value == 0 && e.level == 0) continue;
    os << "  " << e.name << dim;
    for (std::size_t pad = e.name.size() + dim.size(); pad < 32; ++pad) {
      os << ' ';
    }
    switch (e.kind) {
      case MetricKind::Counter:
        os << e.value;
        break;
      case MetricKind::Gauge:
        os << e.level;
        break;
      case MetricKind::Histogram: {
        os << "count=" << e.value << " mean=" << e.mean();
        if (e.value > 0) {
          os << " p50=" << e.percentile(0.50) << " p95=" << e.percentile(0.95)
             << " p99=" << e.percentile(0.99);
        }
        os << " buckets=[";
        bool first = true;
        for (std::size_t b = 0; b < e.buckets.size(); ++b) {
          if (e.buckets[b] == 0) continue;
          if (!first) os << ' ';
          first = false;
          os << b << ':' << e.buckets[b];
        }
        os << ']';
        break;
      }
    }
    os << '\n';
  }
}

void MetricsSnapshot::write_json(std::ostream& os, int tenant) const {
  os << "{\"taken_ns\":" << taken_ns;
  if (tenant >= 0) os << ",\"tenant\":" << tenant;
  os << ",\"metrics\":{";
  bool first_entry = true;
  for (const Entry& e : entries) {
    if (!first_entry) os << ',';
    first_entry = false;
    os << '"' << e.name << "\":{";
    switch (e.kind) {
      case MetricKind::Counter:
        os << "\"kind\":\"counter\",\"value\":" << e.value;
        break;
      case MetricKind::Gauge:
        os << "\"kind\":\"gauge\",\"level\":" << e.level;
        break;
      case MetricKind::Histogram: {
        os << "\"kind\":\"histogram\",\"count\":" << e.value
           << ",\"sum\":" << e.sum << ",\"p50\":" << e.percentile(0.50)
           << ",\"p95\":" << e.percentile(0.95)
           << ",\"p99\":" << e.percentile(0.99) << ",\"buckets\":[";
        for (std::size_t b = 0; b < e.buckets.size(); ++b) {
          if (b != 0) os << ',';
          os << e.buckets[b];
        }
        os << ']';
        break;
      }
    }
    os << '}';
  }
  os << "}}";
}

}  // namespace tdg
