// Process-wide elastic worker pool shared by N logical runtimes (tenants).
//
// The paper's model is one runtime owning one thread team per rank. The
// production-service regime ("millions of users" sharing one process) needs
// the opposite split: many thin per-tenant front ends — discovery state,
// PTSG, verifier, metrics namespace, watchdog — submitting into ONE team of
// workers, so N tenants do not mean N x oversubscribed threads and idle
// cycles of one tenant absorb the bursts of another.
//
// Ownership split:
//   * WorkerPool owns the threads, the per-worker Chase-Lev deques, the
//     parking lot (mutex/cv + Dekker-paired ready mirror) and the task-
//     descriptor slab arena (one allocation shard per tenant, recycled
//     cross-tenant through the arena's remote-free stack).
//   * Runtime keeps its submission shard (a Chase-Lev deque whose bottom
//     only the producer touches), inject queue, deferred-retry queue,
//     throttle quota, metrics/profiler/watchdog and all discovery state.
//
// Work acquisition of a pool worker: own deque first (depth-first cache
// reuse), then a weighted-fair scan of the tenant table (the tenant with
// the minimum virtual runtime — served/weight — is preferred, so a starved
// tenant's shard is the first victim), then a randomized steal from sibling
// workers. Tenant producers never steal other tenants' work: a foreign task
// found while self-helping is rerouted to its owner's inject queue.
//
// A solo Runtime (no Config::pool) constructs a private pool inheriting its
// policy and thread count, and behaves exactly as the pre-pool runtime —
// same slots, same metrics attribution, same parking cadence.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/common.hpp"
#include "core/metrics.hpp"
#include "core/scheduler.hpp"
#include "core/slab.hpp"

namespace tdg {

class Runtime;
class Task;

/// Per-tenant scheduling options, supplied at attach time
/// (Runtime::Config::tenant).
struct TenantOptions {
  /// Weighted-fair share of pool worker time relative to other tenants.
  /// A tenant of weight 2 is served twice as often as a weight-1 tenant
  /// when both have backlog (min-vruntime victim selection).
  std::uint32_t weight = 1;
};

class WorkerPool {
 public:
  /// Sentinel: size the pool to hardware_concurrency - 1 workers.
  static constexpr unsigned kAutoWorkers = ~0u;
  /// Tenant-table capacity ceiling (the fair scan uses a 64-bit visited
  /// mask, and per-slot pin counters are scanned on detach).
  static constexpr unsigned kMaxTenantCap = 64;

  struct Config {
    /// Worker threads owned by the pool (the tenants' producer threads are
    /// additional). 0 is valid: tenants execute everything themselves.
    unsigned num_workers = kAutoWorkers;
    /// Pop policy of the pool-worker deques. Private (solo) pools inherit
    /// the owning runtime's policy.
    SchedulePolicy policy = SchedulePolicy::DepthFirstLifo;
    /// Tenant slots (attach beyond this fails). Clamped to kMaxTenantCap.
    unsigned max_tenants = 16;
  };

  // Delegation instead of a `= Config()` default argument: NSDMIs of a
  // nested aggregate are not usable in the enclosing class's default
  // arguments until the enclosing class is complete (mem-init lists are).
  WorkerPool() : WorkerPool(Config()) {}
  explicit WorkerPool(Config cfg);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  unsigned num_workers() const {
    return static_cast<unsigned>(workers_.size());
  }
  unsigned max_tenants() const {
    return static_cast<unsigned>(tenants_.size());
  }
  unsigned tenant_count() const {
    return tenant_count_.load(std::memory_order_relaxed);
  }
  /// Tasks a pool worker executed on behalf of tenant `id` (fairness
  /// accounting; tenant producers self-helping are not counted).
  std::uint64_t served(unsigned id) const {
    return id < tenants_.size()
               ? tenants_[id].served.load(std::memory_order_relaxed)
               : 0;
  }
  unsigned parked() const { return parked_.load(std::memory_order_relaxed); }
  /// Pool-wide ready mirror (sum of attached tenants' ready backlogs).
  std::size_t ready() const {
    return ready_.load(std::memory_order_relaxed);
  }
  std::uint64_t steal_failure_count() const {
    return steal_failures_.load(std::memory_order_relaxed);
  }
  std::uint64_t park_count() const {
    return parks_.load(std::memory_order_relaxed);
  }
  /// Foreign tasks a self-helping producer handed back to their owner's
  /// inject queue instead of executing (tenant isolation).
  std::uint64_t foreign_reroutes() const {
    return foreign_reroutes_.load(std::memory_order_relaxed);
  }
  /// The shared slab arena backing every tenant's task descriptors
  /// (leak checks: live_blocks() is zero once all tenants drained).
  const TaskArena& arena() const { return arena_; }

  /// Human-readable pool state (appended to every tenant's watchdog
  /// report, so a wedged tenant's diagnostic shows whether the pool —
  /// or just that tenant — is starved).
  void diagnostic(std::string& out) const;

 private:
  friend class Runtime;

  /// Private-pool constructor: `solo` is the single owning runtime, which
  /// restores the pre-pool exact metrics/profiler attribution for parks,
  /// wakeups, steal failures and idle time.
  WorkerPool(Config cfg, Runtime* solo);

  // --- tenant lifecycle (Runtime ctor/dtor) -------------------------------
  unsigned attach(Runtime* rt, const TenantOptions& opts);
  void detach(unsigned id);

  // --- work publication (Runtime::enqueue_ready / end_batch) --------------
  /// seq_cst: the Dekker pairing with a parking worker's ready re-check.
  void ready_inc(std::size_t n) {
    ready_.fetch_add(n, std::memory_order_seq_cst);
  }
  void ready_dec() { ready_.fetch_sub(1, std::memory_order_relaxed); }
  /// Push to the calling pool worker's own deque (requires the calling
  /// thread to be a worker of this pool — see on_pool_worker()).
  void push_local(Task* t);
  /// True when the calling thread is one of this pool's workers.
  bool on_pool_worker() const { return tls_pool == this; }
  /// Calling worker's slot (valid only when on_pool_worker()).
  static unsigned calling_slot() { return tls_pool_slot; }
  /// Wake up to `n` parked workers after publishing ready work; wakeups
  /// are attributed to `waker`'s metrics namespace (may be null).
  void wake_workers(std::size_t n, Runtime* waker);

  // --- execution (pool worker side) ---------------------------------------
  bool try_execute_one(unsigned slot);
  /// Weighted-fair tenant scan: probe tenants in ascending vruntime order
  /// (shard steal, then inject, then due deferred retries). On success the
  /// owner is pinned-safe to run (a pending task keeps its runtime alive).
  Task* take_tenant_work(unsigned slot, Runtime*& owner, bool& stole,
                         bool& deferred);
  /// Probe one pinned tenant for work.
  static Task* poll_tenant(Runtime* r, bool& stole, bool& deferred);
  /// Producer-side steal from the pool worker deques. Only tasks owned by
  /// `self` are returned; foreign tasks are rerouted to their owner's
  /// inject queue (bounded displacement, preserves tenant isolation).
  Task* steal_for(Runtime* self, std::atomic<std::uint64_t>& rng);
  void note_served(unsigned id);
  void worker_loop(unsigned slot);
  void park_worker(unsigned slot);
  /// Run every attached tenant's polling hook (MPI progress etc.) from an
  /// idle worker.
  void poll_tenants();
  static unsigned rng_next(std::atomic<std::uint64_t>& state, unsigned n);
  /// Fold a detaching tenant's final counters into the pool aggregate
  /// (TDG_METRICS=dump prints it at pool teardown, keeping aggregate
  /// totals available next to the per-tenant tagged sections).
  void fold_aggregate(const MetricsSnapshot& snap);

  struct alignas(kCacheLine) TenantSlot {
    /// Published with release at attach; workers pin (pins++) BEFORE
    /// loading rt (both seq_cst), detach stores nullptr (seq_cst) and then
    /// spins until pins drain — either the worker sees the nullptr or the
    /// detacher sees the pin.
    std::atomic<Runtime*> rt{nullptr};
    std::atomic<int> pins{0};
    std::atomic<std::uint64_t> served{0};
    /// Virtual runtime, fixed-point: += kVrUnit / weight per served task.
    std::atomic<std::uint64_t> vruntime{0};
    /// Relaxed: note_served runs after the pinned poll (and on steal
    /// paths with no pin), so a recycling attach can race it — a stale
    /// read only mischarges a single serve.
    std::atomic<std::uint32_t> weight{1};
    std::uint64_t wd_token = 0;  // pool diagnostic in the tenant's watchdog
  };
  static constexpr std::uint64_t kVrUnit = 1u << 16;

  Config cfg_;
  /// Non-null for private pools: the one runtime that owns us, enabling
  /// the exact pre-pool attribution of parks/idle/steal-failures.
  Runtime* const solo_;
  /// Shared descriptor arena, one allocation shard per tenant slot (the
  /// producer is the only allocator of its tenant). Freed blocks recycle
  /// across tenants through the arena's remote-free stack.
  TaskArena arena_;
  std::vector<std::unique_ptr<WorkDeque>> deques_;  // one per worker
  struct alignas(kCacheLine) Rng {
    std::atomic<std::uint64_t> s;
  };
  std::vector<Rng> rng_;
  std::vector<TenantSlot> tenants_;
  std::atomic<unsigned> tenant_count_{0};
  /// Scan bound: one past the highest slot ever attached.
  std::atomic<unsigned> tenant_high_{0};
  SpinLock tenants_lock_;
  /// Count of attached tenants with timing enabled: workers only pay the
  /// probe-overhead clock reads when somebody consumes them.
  std::atomic<int> timed_tenants_{0};

  std::vector<std::thread> workers_;

  // Parking: spin-then-yield-then-park, same ladder as the pre-pool
  // runtime. parked_ is read seq_cst on every enqueue (Dekker pairing
  // with ready_).
  std::mutex park_mu_;
  std::condition_variable park_cv_;
  std::atomic<unsigned> parked_{0};
  std::atomic<std::size_t> ready_{0};
  std::atomic<bool> shutdown_{false};

  // Pool-level counters. For private pools these are mirrored into the
  // solo tenant's sched.* metrics so the pre-pool dump stays identical.
  std::atomic<std::uint64_t> parks_{0};
  std::atomic<std::uint64_t> wakeups_{0};
  std::atomic<std::uint64_t> steal_failures_{0};
  std::atomic<std::uint64_t> foreign_reroutes_{0};

  /// Aggregate of detached tenants' final metric snapshots
  /// (TDG_METRICS=dump prints it when the pool is destroyed).
  mutable SpinLock agg_lock_;
  MetricsSnapshot aggregate_;
  bool aggregate_any_ = false;
  bool metrics_dump_ = false;

  static thread_local WorkerPool* tls_pool;
  static thread_local unsigned tls_pool_slot;
};

}  // namespace tdg
