#include "core/trace_export.hpp"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cstdlib>
#include <cstring>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <variant>

#include "core/error.hpp"

namespace tdg {

// ---------------------------------------------------------------------------
// Environment configuration
// ---------------------------------------------------------------------------

TraceEnvConfig trace_env_config() {
  TraceEnvConfig cfg;
  const char* mode = std::getenv("TDG_TRACE");
  if (mode != nullptr) {
    if (std::strcmp(mode, "perfetto") == 0 ||
        std::strcmp(mode, "json") == 0) {
      cfg.mode = TraceMode::Perfetto;
    } else if (std::strcmp(mode, "tsv") == 0) {
      cfg.mode = TraceMode::Tsv;
    }
    // anything else (off, 0, empty, typos) leaves tracing off
  }
  if (const char* path = std::getenv("TDG_TRACE_FILE"); path != nullptr) {
    cfg.path = path;
  }
  return cfg;
}

// ---------------------------------------------------------------------------
// Perfetto writer
// ---------------------------------------------------------------------------

namespace {

void json_escape(std::ostream& os, const char* s) {
  os << '"';
  for (; *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << static_cast<char>(c);
        }
    }
  }
  os << '"';
}

/// Microseconds (with ns resolution kept as decimals) relative to t0.
void emit_us(std::ostream& os, std::uint64_t ns, std::uint64_t t0) {
  const std::uint64_t rel = ns >= t0 ? ns - t0 : 0;
  char buf[40];
  std::snprintf(buf, sizeof buf, "%" PRIu64 ".%03u", rel / 1000,
                static_cast<unsigned>(rel % 1000));
  os << buf;
}

// --- depend-clause access encoding (shared by both formats) ---
//
// One task's clause becomes "code:hexaddr;code:hexaddr;..." with codes
// in / out / io / ios. Extent-annotated clauses (Depend::bytes != 0, used
// by the race detector's interval shadow table) append "/hexbytes" —
// emitted only when set, so traces without extents stay byte-identical to
// the old format and old traces parse unchanged. Clause order is
// preserved — the offline verifier replays the stream exactly as
// discovery saw it.

const char* access_code(DependType t) {
  switch (t) {
    case DependType::In: return "in";
    case DependType::Out: return "out";
    case DependType::InOut: return "io";
    case DependType::InOutSet: return "ios";
  }
  return "in";
}

bool access_type_from_code(std::string_view code, DependType& out) {
  if (code == "in") out = DependType::In;
  else if (code == "out") out = DependType::Out;
  else if (code == "io") out = DependType::InOut;
  else if (code == "ios") out = DependType::InOutSet;
  else return false;
  return true;
}

/// Contiguous [first, last) run of the access stream for each task id
/// (record_accesses appends a task's whole clause at once, so runs are
/// contiguous; redirect nodes never record accesses).
std::unordered_map<std::uint64_t, std::pair<std::size_t, std::size_t>>
group_accesses(std::span<const AccessRecord> accesses) {
  std::unordered_map<std::uint64_t, std::pair<std::size_t, std::size_t>>
      runs;
  std::size_t i = 0;
  while (i < accesses.size()) {
    std::size_t j = i + 1;
    while (j < accesses.size() &&
           accesses[j].task_id == accesses[i].task_id) {
      ++j;
    }
    runs.emplace(accesses[i].task_id, std::make_pair(i, j));
    i = j;
  }
  return runs;
}

std::string encode_accesses(std::span<const AccessRecord> accesses,
                            std::size_t first, std::size_t last) {
  std::string out;
  char buf[24];
  for (std::size_t i = first; i < last; ++i) {
    if (!out.empty()) out.push_back(';');
    out += access_code(accesses[i].type);
    out.push_back(':');
    std::snprintf(buf, sizeof buf, "%" PRIx64, accesses[i].addr);
    out += buf;
    if (accesses[i].bytes != 0) {
      std::snprintf(buf, sizeof buf, "/%x", accesses[i].bytes);
      out += buf;
    }
  }
  return out;
}

/// Decode one task's encoded clause into trace.accesses. Unknown codes or
/// malformed segments are a hard error — a half-read clause would make the
/// verifier report phantom races.
void decode_accesses(ParsedTrace& trace, std::uint64_t task_id,
                     const char* label, std::string_view enc) {
  std::size_t pos = 0;
  while (pos < enc.size()) {
    std::size_t end = enc.find(';', pos);
    if (end == std::string_view::npos) end = enc.size();
    const std::string_view item = enc.substr(pos, end - pos);
    const std::size_t colon = item.find(':');
    TDG_REQUIRE(colon != std::string_view::npos,
                "malformed accesses item in trace");
    AccessRecord a;
    a.task_id = task_id;
    a.label = label;
    TDG_REQUIRE(access_type_from_code(item.substr(0, colon), a.type),
                "unknown access type code in trace");
    std::string_view addr_part = item.substr(colon + 1);
    const std::size_t slash = addr_part.find('/');
    std::string_view bytes_part;
    if (slash != std::string_view::npos) {
      bytes_part = addr_part.substr(slash + 1);
      addr_part = addr_part.substr(0, slash);
    }
    const std::string hex(addr_part);
    char* stop = nullptr;
    a.addr = std::strtoull(hex.c_str(), &stop, 16);
    TDG_REQUIRE(stop != nullptr && *stop == '\0' && !hex.empty(),
                "malformed access address in trace");
    if (slash != std::string_view::npos) {
      const std::string bhex(bytes_part);
      a.bytes = static_cast<std::uint32_t>(
          std::strtoul(bhex.c_str(), &stop, 16));
      TDG_REQUIRE(stop != nullptr && *stop == '\0' && !bhex.empty(),
                  "malformed access extent in trace");
    }
    trace.accesses.push_back(a);
    pos = end + 1;
  }
}

const char* comm_kind_code(CommRecord::Kind k) {
  switch (k) {
    case CommRecord::Kind::Send: return "send";
    case CommRecord::Kind::Recv: return "recv";
    case CommRecord::Kind::Collective: return "coll";
  }
  return "send";
}

bool comm_kind_from_code(std::string_view code, CommRecord::Kind& out) {
  if (code == "send") out = CommRecord::Kind::Send;
  else if (code == "recv") out = CommRecord::Kind::Recv;
  else if (code == "coll") out = CommRecord::Kind::Collective;
  else return false;
  return true;
}

/// (src, dst, tag, seq) — the cross-rank identity of one message; the nth
/// send on a stream pairs with the nth receive (non-overtaking delivery).
struct MsgKey {
  std::int32_t src, dst, tag;
  std::uint64_t seq;
  bool operator<(const MsgKey& o) const {
    if (src != o.src) return src < o.src;
    if (dst != o.dst) return dst < o.dst;
    if (tag != o.tag) return tag < o.tag;
    return seq < o.seq;
  }
};

MsgKey msg_key(const CommRecord& c) {
  return c.kind == CommRecord::Kind::Send
             ? MsgKey{c.self, c.peer, c.tag, c.seq}
             : MsgKey{c.peer, c.self, c.tag, c.seq};
}

}  // namespace

/// Dedicated tid for the per-rank communication track (above any worker).
constexpr std::uint32_t kCommTid = 1000;

void write_perfetto(std::ostream& os, std::span<const TaskRecord> records,
                    std::span<const TraceEdge> edges,
                    std::span<const AccessRecord> accesses,
                    std::span<const std::uint64_t> barriers,
                    std::span<const std::uint64_t> scope_clears,
                    std::span<const CommRecord> comms,
                    const PerfettoOptions& opts) {
  std::uint64_t t0 = UINT64_MAX;
  for (const TaskRecord& r : records) t0 = std::min(t0, r.t_create);
  for (const CommRecord& c : comms) t0 = std::min(t0, c.t_post);
  if (t0 == UINT64_MAX) t0 = 0;

  os << "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };

  // Metadata: per-rank process tracks and per-(rank, thread) track names.
  // A single-rank trace keeps the configured process name; a merged
  // multi-rank trace names each pid track "rank N".
  std::vector<int> pids;
  std::map<std::pair<int, std::uint32_t>, bool> threads;  // (pid,tid)->comm
  for (const TaskRecord& r : records) {
    const int pid = opts.pid + r.rank;
    if (std::find(pids.begin(), pids.end(), pid) == pids.end()) {
      pids.push_back(pid);
    }
    threads.emplace(std::make_pair(pid, r.thread), false);
  }
  for (const CommRecord& c : comms) {
    if (std::find(pids.begin(), pids.end(), c.self) == pids.end()) {
      pids.push_back(c.self);
    }
    threads.emplace(std::make_pair(static_cast<int>(c.self), kCommTid),
                    true);
  }
  if (pids.empty()) pids.push_back(opts.pid);
  std::sort(pids.begin(), pids.end());
  for (int pid : pids) {
    sep();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":";
    if (pids.size() == 1) {
      json_escape(os, opts.process_name);
    } else {
      json_escape(os, ("rank " + std::to_string(pid)).c_str());
    }
    os << "}}";
  }
  for (const auto& [key, is_comm] : threads) {
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << key.first
       << ",\"tid\":" << key.second << ",\"args\":{\"name\":\""
       << (is_comm ? std::string("comm")
                   : (key.second == 0
                          ? "producer/worker 0"
                          : "worker " + std::to_string(key.second)))
       << "\"}}";
  }

  // Task slices. The absolute create/ready times ride along in args so a
  // parsed-back trace is lossless (ts/dur only cover start..end). A task's
  // depend clause is attached to its first slice only — persistent-region
  // replays produce one slice per iteration but the clause was recorded
  // once, at discovery.
  const auto access_runs = group_accesses(accesses);
  std::unordered_set<std::uint64_t> clause_emitted;
  for (const TaskRecord& r : records) {
    sep();
    os << "{\"name\":";
    json_escape(os, r.label[0] != '\0' ? r.label : "task");
    os << ",\"cat\":\"task\",\"ph\":\"X\",\"pid\":" << (opts.pid + r.rank)
       << ",\"tid\":" << r.thread << ",\"ts\":";
    emit_us(os, r.t_start, t0);
    os << ",\"dur\":";
    emit_us(os, r.t_end, r.t_start);
    os << ",\"args\":{\"id\":" << r.task_id
       << ",\"iteration\":" << r.iteration << ",\"create_us\":";
    emit_us(os, r.t_create, t0);
    os << ",\"ready_us\":";
    emit_us(os, r.t_ready, t0);
    os << ",\"queue_us\":";
    emit_us(os, r.t_start, r.t_ready);
    if (auto it = access_runs.find(r.task_id);
        it != access_runs.end() && clause_emitted.insert(r.task_id).second) {
      os << ",\"accesses\":";
      json_escape(
          os,
          encode_accesses(accesses, it->second.first, it->second.second)
              .c_str());
    }
    os << "}}";
  }

  // Taskwait barriers and dependency-scope clears as global instant
  // events. They carry no timestamp of their own — the cutoff task id is
  // the payload the offline verifier needs.
  for (std::uint64_t b : barriers) {
    sep();
    os << "{\"name\":\"taskwait\",\"cat\":\"verify\",\"ph\":\"i\","
          "\"s\":\"g\",\"pid\":"
       << opts.pid << ",\"tid\":0,\"ts\":0,\"args\":{\"barrier_max_id\":"
       << b << "}}";
  }
  for (std::uint64_t s : scope_clears) {
    sep();
    os << "{\"name\":\"scope_clear\",\"cat\":\"verify\",\"ph\":\"i\","
          "\"s\":\"g\",\"pid\":"
       << opts.pid << ",\"tid\":0,\"ts\":0,\"args\":{\"scope_max_id\":"
       << s << "}}";
  }

  // Communication slices: one "X" per completed operation, on each rank's
  // dedicated comm track. All fields ride along in args so a parsed-back
  // trace is lossless.
  for (const CommRecord& c : comms) {
    sep();
    char name[64];
    switch (c.kind) {
      case CommRecord::Kind::Send:
        std::snprintf(name, sizeof name, "send to %d tag %d", c.peer,
                      c.tag);
        break;
      case CommRecord::Kind::Recv:
        std::snprintf(name, sizeof name, "recv from %d tag %d", c.peer,
                      c.tag);
        break;
      case CommRecord::Kind::Collective:
        std::snprintf(name, sizeof name, "collective slot %d", c.tag);
        break;
    }
    os << "{\"name\":";
    json_escape(os, name);
    os << ",\"cat\":\"comm\",\"ph\":\"X\",\"pid\":" << c.self
       << ",\"tid\":" << kCommTid << ",\"ts\":";
    emit_us(os, c.t_post, t0);
    os << ",\"dur\":";
    emit_us(os, c.t_complete, c.t_post);
    os << ",\"args\":{\"kind\":\"" << comm_kind_code(c.kind)
       << "\",\"self\":" << c.self << ",\"peer\":" << c.peer
       << ",\"tag\":" << c.tag << ",\"seq\":" << c.seq
       << ",\"bytes\":" << c.bytes << ",\"retransmits\":" << c.retransmits
       << ",\"task\":" << c.task_id << "}}";
  }

  std::uint64_t flow_id = 0;

  // Flow arrows along dependence edges: an "s" event at the predecessor's
  // end, an "f" (bind-enclosing) event at the successor's start. Edges
  // whose endpoints were not traced (internal redirect nodes, records
  // dropped mid-toggle) are skipped.
  if (opts.flows) {
    std::unordered_map<std::uint64_t, const TaskRecord*> by_id;
    by_id.reserve(records.size());
    for (const TaskRecord& r : records) by_id.emplace(r.task_id, &r);
    for (const TraceEdge& e : edges) {
      auto pi = by_id.find(e.pred);
      auto si = by_id.find(e.succ);
      if (pi == by_id.end() || si == by_id.end()) continue;
      ++flow_id;
      sep();
      os << "{\"name\":\"dep\",\"cat\":\"dep\",\"ph\":\"s\",\"id\":"
         << flow_id << ",\"pid\":" << (opts.pid + pi->second->rank)
         << ",\"tid\":" << pi->second->thread << ",\"ts\":";
      emit_us(os, pi->second->t_end, t0);
      os << ",\"args\":{\"pred\":" << e.pred << ",\"succ\":" << e.succ
         << "}}";
      sep();
      os << "{\"name\":\"dep\",\"cat\":\"dep\",\"ph\":\"f\",\"bp\":\"e\","
         << "\"id\":" << flow_id << ",\"pid\":"
         << (opts.pid + si->second->rank)
         << ",\"tid\":" << si->second->thread << ",\"ts\":";
      emit_us(os, si->second->t_start, t0);
      os << "}";
    }
  }

  // Message flow arrows: matched send/recv pairs — same (src, dst, tag,
  // seq), seq 0 means the universe was not assigning stream sequence
  // numbers — draw as arrows from the send's post on the source rank to
  // the receive's completion on the destination rank. The flow id space is
  // shared with the dependence arrows so ids never collide.
  if (opts.flows && !comms.empty()) {
    std::map<MsgKey, std::pair<const CommRecord*, const CommRecord*>>
        paired;
    for (const CommRecord& c : comms) {
      if (c.seq == 0) continue;
      if (c.kind == CommRecord::Kind::Send) {
        paired[msg_key(c)].first = &c;
      } else if (c.kind == CommRecord::Kind::Recv) {
        paired[msg_key(c)].second = &c;
      }
    }
    for (const auto& [key, pair] : paired) {
      if (pair.first == nullptr || pair.second == nullptr) continue;
      ++flow_id;
      sep();
      os << "{\"name\":\"msg\",\"cat\":\"msg\",\"ph\":\"s\",\"id\":"
         << flow_id << ",\"pid\":" << pair.first->self
         << ",\"tid\":" << kCommTid << ",\"ts\":";
      emit_us(os, pair.first->t_post, t0);
      os << ",\"args\":{\"src\":" << key.src << ",\"dst\":" << key.dst
         << ",\"tag\":" << key.tag << ",\"seq\":" << key.seq << "}}";
      sep();
      os << "{\"name\":\"msg\",\"cat\":\"msg\",\"ph\":\"f\",\"bp\":\"e\","
         << "\"id\":" << flow_id << ",\"pid\":" << pair.second->self
         << ",\"tid\":" << kCommTid << ",\"ts\":";
      emit_us(os, pair.second->t_complete, t0);
      os << "}";
    }
  }

  // Counter track: number of concurrently-running task bodies per rank,
  // sampled at every start/end transition (the parallelism profile, live
  // in the UI).
  if (opts.counter_track && !records.empty()) {
    std::map<int, std::vector<std::pair<std::uint64_t, int>>> by_pid;
    for (const TaskRecord& r : records) {
      auto& ev = by_pid[opts.pid + r.rank];
      ev.emplace_back(r.t_start, +1);
      ev.emplace_back(r.t_end, -1);
    }
    for (auto& [pid, ev] : by_pid) {
      std::sort(ev.begin(), ev.end());
      int running = 0;
      for (std::size_t i = 0; i < ev.size(); ++i) {
        running += ev[i].second;
        // Collapse simultaneous transitions into one sample.
        if (i + 1 < ev.size() && ev[i + 1].first == ev[i].first) continue;
        sep();
        os << "{\"name\":\"running tasks\",\"ph\":\"C\",\"pid\":" << pid
           << ",\"ts\":";
        emit_us(os, ev[i].first, t0);
        os << ",\"args\":{\"running\":" << running << "}}";
      }
    }
  }

  os << "\n]}\n";
}

// ---------------------------------------------------------------------------
// Extended TSV
// ---------------------------------------------------------------------------

void write_trace_tsv(std::ostream& os, std::span<const TaskRecord> records,
                     std::span<const AccessRecord> accesses,
                     std::span<const std::uint64_t> barriers,
                     std::span<const std::uint64_t> scope_clears,
                     std::span<const CommRecord> comms) {
  os << "task_id\tthread\titeration\tlabel\tt_create_ns\tt_ready_ns\t"
        "t_start_ns\tt_end_ns\taccesses\trank\n";
  // Cutoffs and comm records as comment lines so spreadsheet consumers of
  // the plain rows keep working; parse_trace_tsv picks them back up.
  for (std::uint64_t b : barriers) os << "#barrier\t" << b << '\n';
  for (std::uint64_t s : scope_clears) os << "#scope\t" << s << '\n';
  for (const CommRecord& c : comms) {
    os << "#comm\t" << comm_kind_code(c.kind) << '\t' << c.self << '\t'
       << c.peer << '\t' << c.tag << '\t' << c.seq << '\t' << c.bytes
       << '\t' << c.t_post << '\t' << c.t_complete << '\t' << c.retransmits
       << '\t' << c.task_id << '\n';
  }
  const auto access_runs = group_accesses(accesses);
  std::unordered_set<std::uint64_t> clause_emitted;
  for (const TaskRecord& r : records) {
    os << r.task_id << '\t' << r.thread << '\t' << r.iteration << '\t'
       << (r.label[0] != '\0' ? r.label : "task") << '\t' << r.t_create
       << '\t' << r.t_ready << '\t' << r.t_start << '\t' << r.t_end << '\t';
    if (auto it = access_runs.find(r.task_id);
        it != access_runs.end() && clause_emitted.insert(r.task_id).second) {
      os << encode_accesses(accesses, it->second.first, it->second.second);
    }
    os << '\t' << r.rank << '\n';
  }
}

// ---------------------------------------------------------------------------
// Minimal JSON parser (recursive descent, tailored to trace files)
// ---------------------------------------------------------------------------

namespace {

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      v = nullptr;

  bool is_object() const { return std::holds_alternative<JsonObject>(v); }
  bool is_array() const { return std::holds_alternative<JsonArray>(v); }
  const JsonValue* get(std::string_view key) const {
    if (!is_object()) return nullptr;
    for (const auto& [k, val] : std::get<JsonObject>(v)) {
      if (k == key) return &val;
    }
    return nullptr;
  }
  double number(double fallback = 0.0) const {
    const double* d = std::get_if<double>(&v);
    return d != nullptr ? *d : fallback;
  }
  std::string_view str() const {
    const std::string* s = std::get_if<std::string>(&v);
    return s != nullptr ? std::string_view(*s) : std::string_view();
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::istream& is) {
    std::ostringstream buf;
    buf << is.rdbuf();
    text_ = buf.str();
  }

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    TDG_REQUIRE(pos_ == text_.size(), "trailing data after JSON document");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  char peek() {
    skip_ws();
    TDG_REQUIRE(pos_ < text_.size(), "unexpected end of JSON input");
    return text_[pos_];
  }
  void expect(char c) {
    TDG_REQUIRE(peek() == c, "malformed JSON: unexpected character");
    ++pos_;
  }
  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonValue value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return JsonValue{string()};
      case 't': return literal("true", JsonValue{true});
      case 'f': return literal("false", JsonValue{false});
      case 'n': return literal("null", JsonValue{nullptr});
      default: return number();
    }
  }

  JsonValue literal(const char* word, JsonValue v) {
    const std::size_t len = std::strlen(word);
    TDG_REQUIRE(text_.compare(pos_, len, word) == 0,
                "malformed JSON literal");
    pos_ += len;
    return v;
  }

  JsonValue number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    TDG_REQUIRE(pos_ > start, "malformed JSON number");
    char* end = nullptr;
    const double d = std::strtod(text_.c_str() + start, &end);
    TDG_REQUIRE(end == text_.c_str() + pos_, "malformed JSON number");
    return JsonValue{d};
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      TDG_REQUIRE(pos_ < text_.size(), "unterminated JSON string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      TDG_REQUIRE(pos_ < text_.size(), "unterminated JSON escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          TDG_REQUIRE(pos_ + 4 <= text_.size(), "truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code += static_cast<unsigned>(h - 'A' + 10);
            else
              TDG_REQUIRE(false, "malformed \\u escape");
          }
          // Traces only escape control characters; keep it simple (Latin-1
          // range; anything else would round-trip through raw UTF-8).
          out.push_back(static_cast<char>(code & 0xff));
          break;
        }
        default:
          TDG_REQUIRE(false, "unknown JSON escape");
      }
    }
    return out;
  }

  JsonValue array() {
    expect('[');
    JsonArray items;
    if (consume(']')) return JsonValue{std::move(items)};
    while (true) {
      items.push_back(value());
      if (consume(']')) break;
      expect(',');
    }
    return JsonValue{std::move(items)};
  }

  JsonValue object() {
    expect('{');
    JsonObject members;
    if (consume('}')) return JsonValue{std::move(members)};
    while (true) {
      std::string key = string();
      expect(':');
      members.emplace_back(std::move(key), value());
      if (consume('}')) break;
      expect(',');
    }
    return JsonValue{std::move(members)};
  }

  std::string text_;
  std::size_t pos_ = 0;
};

const char* intern_label(ParsedTrace& t, std::string_view label) {
  for (const std::string& s : t.label_pool) {
    if (s == label) return s.c_str();
  }
  t.label_pool.emplace_back(label);
  return t.label_pool.back().c_str();
}

std::uint64_t us_to_ns(double us) {
  return us > 0 ? static_cast<std::uint64_t>(us * 1000.0 + 0.5) : 0;
}

}  // namespace

// ---------------------------------------------------------------------------
// Parsers
// ---------------------------------------------------------------------------

ParsedTrace parse_perfetto(std::istream& is) {
  JsonParser parser(is);
  const JsonValue root = parser.parse();

  const JsonArray* events = nullptr;
  if (root.is_array()) {
    events = &std::get<JsonArray>(root.v);
  } else if (root.is_object()) {
    const JsonValue* te = root.get("traceEvents");
    TDG_REQUIRE(te != nullptr && te->is_array(),
                "trace JSON has no traceEvents array");
    events = &std::get<JsonArray>(te->v);
  } else {
    TDG_REQUIRE(false, "trace JSON root must be an object or array");
  }

  ParsedTrace out;
  for (const JsonValue& ev : *events) {
    TDG_REQUIRE(ev.is_object(), "trace event is not a JSON object");
    const JsonValue* ph = ev.get("ph");
    TDG_REQUIRE(ph != nullptr, "trace event lacks a ph field");
    if (ph->str() == "X") {
      const JsonValue* args = ev.get("args");
      const JsonValue* cat = ev.get("cat");
      const double ts = ev.get("ts") != nullptr ? ev.get("ts")->number() : 0;
      const double dur =
          ev.get("dur") != nullptr ? ev.get("dur")->number() : 0;
      if (cat != nullptr && cat->str() == "comm") {
        CommRecord c;
        c.t_post = us_to_ns(ts);
        c.t_complete = us_to_ns(ts + dur);
        c.self = ev.get("pid") != nullptr
                     ? static_cast<std::int32_t>(ev.get("pid")->number())
                     : 0;
        if (args != nullptr && args->is_object()) {
          if (const JsonValue* k = args->get("kind"); k != nullptr) {
            TDG_REQUIRE(comm_kind_from_code(k->str(), c.kind),
                        "unknown comm kind code in trace");
          }
          if (const JsonValue* s = args->get("self"); s != nullptr) {
            c.self = static_cast<std::int32_t>(s->number());
          }
          if (const JsonValue* p = args->get("peer"); p != nullptr) {
            c.peer = static_cast<std::int32_t>(p->number());
          }
          if (const JsonValue* t = args->get("tag"); t != nullptr) {
            c.tag = static_cast<std::int32_t>(t->number());
          }
          if (const JsonValue* q = args->get("seq"); q != nullptr) {
            c.seq = static_cast<std::uint64_t>(q->number());
          }
          if (const JsonValue* b = args->get("bytes"); b != nullptr) {
            c.bytes = static_cast<std::uint64_t>(b->number());
          }
          if (const JsonValue* rx = args->get("retransmits");
              rx != nullptr) {
            c.retransmits = static_cast<std::uint32_t>(rx->number());
          }
          if (const JsonValue* tk = args->get("task"); tk != nullptr) {
            c.task_id = static_cast<std::uint64_t>(tk->number());
          }
        }
        out.comms.push_back(c);
        continue;
      }
      TaskRecord r;
      r.t_start = us_to_ns(ts);
      r.t_end = us_to_ns(ts + dur);
      r.thread = ev.get("tid") != nullptr
                     ? static_cast<std::uint32_t>(ev.get("tid")->number())
                     : 0;
      // The writer lands each task on pid = base + rank with base 0 in
      // practice (the runtime passes its rank as the base for a
      // single-rank file; merge keeps base 0), so pid is the rank.
      r.rank = ev.get("pid") != nullptr
                   ? static_cast<std::int32_t>(ev.get("pid")->number())
                   : 0;
      if (args != nullptr && args->is_object()) {
        if (const JsonValue* id = args->get("id"); id != nullptr) {
          r.task_id = static_cast<std::uint64_t>(id->number());
        }
        if (const JsonValue* it = args->get("iteration"); it != nullptr) {
          r.iteration = static_cast<std::uint32_t>(it->number());
        }
        if (const JsonValue* c = args->get("create_us"); c != nullptr) {
          r.t_create = us_to_ns(c->number());
        } else {
          r.t_create = r.t_start;
        }
        if (const JsonValue* rd = args->get("ready_us"); rd != nullptr) {
          r.t_ready = us_to_ns(rd->number());
        } else {
          r.t_ready = r.t_start;
        }
      } else {
        r.t_create = r.t_ready = r.t_start;
      }
      const JsonValue* name = ev.get("name");
      r.label = intern_label(out, name != nullptr ? name->str() : "task");
      if (args != nullptr && args->is_object()) {
        if (const JsonValue* acc = args->get("accesses"); acc != nullptr) {
          decode_accesses(out, r.task_id, r.label,
                          std::string(acc->str()));
        }
      }
      out.records.push_back(r);
    } else if (ph->str() == "s") {
      // Flow start events carry the edge's task ids in args. Message
      // flows ("msg" category) carry src/dst/tag/seq instead — those are
      // derivable from the comm records, so they are not re-parsed.
      const JsonValue* args = ev.get("args");
      if (args != nullptr && args->get("pred") != nullptr &&
          args->get("succ") != nullptr) {
        out.edges.push_back(TraceEdge{
            static_cast<std::uint64_t>(args->get("pred")->number()),
            static_cast<std::uint64_t>(args->get("succ")->number())});
      }
    } else if (ph->str() == "i") {
      // Verification instant events: taskwait barriers / scope clears.
      const JsonValue* args = ev.get("args");
      if (args == nullptr) continue;
      if (const JsonValue* b = args->get("barrier_max_id"); b != nullptr) {
        out.barriers.push_back(static_cast<std::uint64_t>(b->number()));
      } else if (const JsonValue* s = args->get("scope_max_id");
                 s != nullptr) {
        out.scope_clears.push_back(
            static_cast<std::uint64_t>(s->number()));
      }
    }
    // "M" metadata, "f" flow finish, "C" counters carry no record data.
  }
  std::sort(out.records.begin(), out.records.end(),
            [](const TaskRecord& a, const TaskRecord& b) {
              return a.t_start < b.t_start;
            });
  // Restore discovery order: the producer submits tasks with ascending
  // ids and a task's clause items stay contiguous, so a stable sort by
  // task id reconstructs the original access stream.
  std::stable_sort(out.accesses.begin(), out.accesses.end(),
                   [](const AccessRecord& a, const AccessRecord& b) {
                     return a.task_id < b.task_id;
                   });
  std::sort(out.barriers.begin(), out.barriers.end());
  std::sort(out.scope_clears.begin(), out.scope_clears.end());
  std::stable_sort(out.comms.begin(), out.comms.end(),
                   [](const CommRecord& a, const CommRecord& b) {
                     return a.t_post < b.t_post;
                   });
  return out;
}

ParsedTrace parse_trace_tsv(std::istream& is) {
  ParsedTrace out;
  std::string line;
  TDG_REQUIRE(static_cast<bool>(std::getline(is, line)),
              "empty TSV trace");
  TDG_REQUIRE(line.rfind("task_id\t", 0) == 0,
              "unrecognized TSV trace header");
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Cutoff comment lines: "#barrier\t<id>" / "#scope\t<id>", and comm
      // records as "#comm\t<kind>\t<self>\t<peer>\t<tag>\t<seq>\t<bytes>
      // \t<t_post>\t<t_complete>\t<retransmits>\t<task>". Other comments
      // are ignored for forward compatibility.
      std::vector<std::string> ccols;
      std::size_t cstart = 0;
      while (true) {
        const std::size_t tab = line.find('\t', cstart);
        ccols.push_back(line.substr(cstart, tab - cstart));
        if (tab == std::string::npos) break;
        cstart = tab + 1;
      }
      if (ccols.size() >= 2 && ccols[0] == "#barrier") {
        out.barriers.push_back(std::strtoull(ccols[1].c_str(), nullptr, 10));
      } else if (ccols.size() >= 2 && ccols[0] == "#scope") {
        out.scope_clears.push_back(
            std::strtoull(ccols[1].c_str(), nullptr, 10));
      } else if (ccols.size() == 11 && ccols[0] == "#comm") {
        CommRecord c;
        TDG_REQUIRE(comm_kind_from_code(ccols[1], c.kind),
                    "unknown comm kind code in TSV trace");
        c.self = static_cast<std::int32_t>(
            std::strtol(ccols[2].c_str(), nullptr, 10));
        c.peer = static_cast<std::int32_t>(
            std::strtol(ccols[3].c_str(), nullptr, 10));
        c.tag = static_cast<std::int32_t>(
            std::strtol(ccols[4].c_str(), nullptr, 10));
        c.seq = std::strtoull(ccols[5].c_str(), nullptr, 10);
        c.bytes = std::strtoull(ccols[6].c_str(), nullptr, 10);
        c.t_post = std::strtoull(ccols[7].c_str(), nullptr, 10);
        c.t_complete = std::strtoull(ccols[8].c_str(), nullptr, 10);
        c.retransmits = static_cast<std::uint32_t>(
            std::strtoul(ccols[9].c_str(), nullptr, 10));
        c.task_id = std::strtoull(ccols[10].c_str(), nullptr, 10);
        out.comms.push_back(c);
      }
      continue;
    }
    std::vector<std::string> cols;
    std::size_t start = 0;
    while (true) {
      const std::size_t tab = line.find('\t', start);
      cols.push_back(line.substr(start, tab - start));
      if (tab == std::string::npos) break;
      start = tab + 1;
    }
    // 8 columns is the pre-verification format; 9 adds the (possibly
    // empty) encoded accesses column; 10 adds the rank column.
    TDG_REQUIRE(cols.size() >= 8 && cols.size() <= 10, "bad TSV trace row");
    TaskRecord r;
    r.task_id = std::strtoull(cols[0].c_str(), nullptr, 10);
    r.thread = static_cast<std::uint32_t>(
        std::strtoul(cols[1].c_str(), nullptr, 10));
    r.iteration = static_cast<std::uint32_t>(
        std::strtoul(cols[2].c_str(), nullptr, 10));
    r.label = intern_label(out, cols[3]);
    r.t_create = std::strtoull(cols[4].c_str(), nullptr, 10);
    r.t_ready = std::strtoull(cols[5].c_str(), nullptr, 10);
    r.t_start = std::strtoull(cols[6].c_str(), nullptr, 10);
    r.t_end = std::strtoull(cols[7].c_str(), nullptr, 10);
    if (cols.size() >= 9 && !cols[8].empty()) {
      decode_accesses(out, r.task_id, r.label, cols[8]);
    }
    if (cols.size() == 10) {
      r.rank = static_cast<std::int32_t>(
          std::strtol(cols[9].c_str(), nullptr, 10));
    }
    out.records.push_back(r);
  }
  std::sort(out.records.begin(), out.records.end(),
            [](const TaskRecord& a, const TaskRecord& b) {
              return a.t_start < b.t_start;
            });
  std::stable_sort(out.accesses.begin(), out.accesses.end(),
                   [](const AccessRecord& a, const AccessRecord& b) {
                     return a.task_id < b.task_id;
                   });
  std::sort(out.barriers.begin(), out.barriers.end());
  std::sort(out.scope_clears.begin(), out.scope_clears.end());
  std::stable_sort(out.comms.begin(), out.comms.end(),
                   [](const CommRecord& a, const CommRecord& b) {
                     return a.t_post < b.t_post;
                   });
  return out;
}

ParsedTrace parse_trace(std::istream& is) {
  int c = is.peek();
  while (c != EOF && std::isspace(c)) {
    is.get();
    c = is.peek();
  }
  TDG_REQUIRE(c != EOF, "empty trace input");
  if (c == '{' || c == '[') return parse_perfetto(is);
  return parse_trace_tsv(is);
}

}  // namespace tdg
