// Cross-rank trace stitching: combine N per-rank trace files into one
// global timeline (the `tdg-trace merge` command).
//
// Each rank timestamps with its own monotonic clock, so the stitcher
// estimates per-rank clock offsets from matched send/recv pairs the way
// TaskTorrent's post-mortem tooling does: the minimum observed one-way
// delay in each direction bounds the skew, and with traffic in both
// directions the offset is the half-difference of the two minima. Offsets
// propagate over a BFS spanning tree of the message graph rooted at the
// lowest-numbered rank; a final causality pass shifts ranks forward until
// no matched message completes before it was posted.
#pragma once

#include <cstdint>
#include <vector>

#include "core/trace_export.hpp"

namespace tdg {

struct MergeOptions {
  /// Estimate and apply per-rank clock offsets (off = trust raw clocks).
  bool estimate_clock_offsets = true;
  /// Append a TraceEdge from the send's task to the receive's task for
  /// every matched message whose both sides carry task attribution — the
  /// cross-rank edges the comm-aware critical path traverses.
  bool derive_cross_rank_edges = true;
};

struct MergeResult {
  /// The stitched trace: records/comms from every input with rebased
  /// timestamps, per-record ranks, globally unique task ids, and (when
  /// derived) cross-rank message edges appended to `trace.edges`.
  /// Barriers and scope clears are intentionally dropped — a per-rank
  /// submission-order cutoff is meaningless across ranks.
  ParsedTrace trace;
  std::vector<int> ranks;               ///< rank resolved for each input
  std::vector<std::int64_t> offset_ns;  ///< clock offset subtracted, per input
  std::vector<TraceEdge> cross_rank_edges;  ///< also appended to trace.edges
  std::size_t matched_messages = 0;  ///< send/recv pairs matched
  std::size_t unmatched_messages = 0;  ///< one-sided sends/recvs
};

/// Task-id remapping stride: input task id N of rank r becomes
/// (r + 1) << 40 | N, keeping ids unique across ranks, nonzero, and well
/// inside double precision (Perfetto JSON numbers survive a round-trip).
inline constexpr std::uint64_t kMergeRankStride = std::uint64_t{1} << 40;

/// Stitch per-rank traces into one global timeline. The rank of each
/// input is taken from its comm records (every record of a per-rank file
/// carries the same recording rank), falling back to the records' rank
/// column and finally to the input's position.
MergeResult merge_traces(std::vector<ParsedTrace> inputs,
                         const MergeOptions& opts = {});

}  // namespace tdg
