// Hang watchdog: a cooperative progress monitor for the runtime's blocking
// waits (taskwait, Comm::wait/waitall, RequestPoller drains).
//
// Design: there is no monitor thread. Every blocking wait in the runtime is
// a spin-with-yield loop already; arming the watchdog wraps that loop in a
// Scope whose poll() compares a shared progress epoch (bumped by task
// starts/completions, detach fulfilment, message delivery, ...) against a
// no-progress deadline. On expiry it assembles a diagnostic report from
// registered providers — live/ready task counts, unfulfilled detach events
// with owning task labels, pending MPI requests — and either throws
// DeadlineError or invokes a user callback (which may log and keep
// waiting). Polling is a relaxed atomic load plus a clock read; the
// disabled path is a single branch.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/error.hpp"

namespace tdg {

/// Watchdog knobs. A zero deadline disables the watchdog entirely.
struct WatchdogConfig {
  /// Seconds without observed progress before the watchdog trips. Must
  /// exceed the longest task body / injected fault delay; progress is
  /// noted at task start, task completion, retry attempts and detach
  /// fulfilment, not inside user code.
  double deadline_seconds = 0.0;
  /// If set, invoked with the diagnostic report instead of throwing
  /// DeadlineError; the wait then continues (the timer re-arms), so a
  /// callback can log repeatedly or escalate on its own policy.
  std::function<void(const std::string& report)> on_deadline;
};

/// Progress monitor shared by one runtime and its attached waiters.
/// Thread-safety: note_progress() is wait-free from any thread;
/// add/remove_diagnostic are mutex-guarded; configure() must precede
/// arming (it is read unsynchronized by waiters).
class Watchdog {
 public:
  Watchdog() = default;
  explicit Watchdog(WatchdogConfig cfg) : cfg_(std::move(cfg)) {}
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  bool enabled() const noexcept { return cfg_.deadline_seconds > 0.0; }
  const WatchdogConfig& config() const noexcept { return cfg_; }
  /// Replace the configuration. Call only while no wait is armed.
  void configure(WatchdogConfig cfg) { cfg_ = std::move(cfg); }

  /// Label prepended to reports ("tenant 3" under a shared pool), so a
  /// hang report from one of many runtimes names which front end stalled.
  /// Set once at attach time, before any wait is armed.
  void set_name(std::string name) { name_ = std::move(name); }
  const std::string& name() const noexcept { return name_; }

  /// Record forward progress (any thread, hot path).
  void note_progress() noexcept {
    progress_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t progress_epoch() const noexcept {
    return progress_.load(std::memory_order_relaxed);
  }

  /// A diagnostic provider appends stuck-state details to the report.
  using Diagnostic = std::function<void(std::string& out)>;
  /// Register a provider; returns a token for remove_diagnostic.
  std::uint64_t add_diagnostic(Diagnostic fn);
  void remove_diagnostic(std::uint64_t token);

  /// Build the report the watchdog would emit right now (also used by
  /// deadline-aware waits that track their own timer).
  std::string build_report(const char* what, double stalled_seconds) const;

  /// An armed wait. Construct at the top of a blocking loop, call poll()
  /// each time the loop found nothing to do. A null/disabled watchdog
  /// makes every operation a no-op.
  class Scope {
   public:
    Scope(Watchdog* wd, const char* what);
    /// Throws DeadlineError (or invokes the configured callback) once
    /// `deadline_seconds` elapse with no progress-epoch change.
    void poll();

   private:
    Watchdog* wd_ = nullptr;  // null when disabled
    const char* what_ = "";
    std::uint64_t last_epoch_ = 0;
    double last_change_s_ = 0.0;
  };

 private:
  WatchdogConfig cfg_;
  std::string name_;
  std::atomic<std::uint64_t> progress_{0};
  mutable std::mutex mu_;  // diagnostics registry
  std::vector<std::pair<std::uint64_t, Diagnostic>> diags_;
  std::uint64_t next_token_ = 1;
};

}  // namespace tdg
