#include "core/trace_merge.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <map>
#include <queue>
#include <set>

namespace tdg {

namespace {

const char* intern_label(ParsedTrace& t, const char* label) {
  for (const std::string& s : t.label_pool) {
    if (s == label) return s.c_str();
  }
  t.label_pool.emplace_back(label);
  return t.label_pool.back().c_str();
}

struct MsgKey {
  std::int32_t src, dst, tag;
  std::uint64_t seq;
  bool operator<(const MsgKey& o) const {
    if (src != o.src) return src < o.src;
    if (dst != o.dst) return dst < o.dst;
    if (tag != o.tag) return tag < o.tag;
    return seq < o.seq;
  }
};

/// (input index, comm index) of one side of a matched message.
struct Side {
  std::size_t input = SIZE_MAX;
  std::size_t comm = 0;
  bool present() const { return input != SIZE_MAX; }
};

}  // namespace

MergeResult merge_traces(std::vector<ParsedTrace> inputs,
                         const MergeOptions& opts) {
  MergeResult res;
  const std::size_t n = inputs.size();
  if (n == 0) return res;

  // Resolve each input's rank. A per-rank file stamps its rank into every
  // comm record (self) and, for files written with a rank base, into the
  // records' rank column. Colliding resolutions (e.g. two single-rank
  // files that both claim rank 0) fall back to positional ranks.
  res.ranks.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!inputs[i].comms.empty()) {
      res.ranks[i] = inputs[i].comms.front().self;
    } else if (!inputs[i].records.empty()) {
      res.ranks[i] = inputs[i].records.front().rank;
    } else {
      res.ranks[i] = static_cast<int>(i);
    }
  }
  {
    std::set<int> distinct(res.ranks.begin(), res.ranks.end());
    if (distinct.size() != n) {
      for (std::size_t i = 0; i < n; ++i) {
        res.ranks[i] = static_cast<int>(i);
      }
    }
  }

  // Match send/recv pairs by (src, dst, tag, seq). Collectives and
  // seq-0 records (stream sequencing was off) cannot be paired.
  std::map<MsgKey, std::pair<Side, Side>> pairs;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < inputs[i].comms.size(); ++c) {
      const CommRecord& rec = inputs[i].comms[c];
      if (rec.seq == 0 || rec.kind == CommRecord::Kind::Collective) {
        continue;
      }
      const MsgKey key = rec.kind == CommRecord::Kind::Send
                             ? MsgKey{rec.self, rec.peer, rec.tag, rec.seq}
                             : MsgKey{rec.peer, rec.self, rec.tag, rec.seq};
      Side& side = rec.kind == CommRecord::Kind::Send ? pairs[key].first
                                                      : pairs[key].second;
      side = Side{i, c};
    }
  }
  for (const auto& [key, pr] : pairs) {
    if (pr.first.present() && pr.second.present()) {
      ++res.matched_messages;
    } else {
      ++res.unmatched_messages;
    }
  }

  // Clock-offset estimation from the matched pairs: the minimum observed
  // one-way delay in each direction bounds the skew; with bidirectional
  // traffic the offset is the half-difference of the two minima
  // (NTP-style, assuming roughly symmetric minimum latency), with one-way
  // traffic the zero-latency bound. Offsets propagate over a BFS spanning
  // tree rooted, per connected component, at the lowest-ranked input.
  std::vector<std::int64_t> theta(n, 0);
  if (opts.estimate_clock_offsets && n > 1) {
    std::map<std::pair<std::size_t, std::size_t>, std::int64_t> dmin;
    for (const auto& [key, pr] : pairs) {
      if (!pr.first.present() || !pr.second.present()) continue;
      if (pr.first.input == pr.second.input) continue;  // self-send
      const CommRecord& s = inputs[pr.first.input].comms[pr.first.comm];
      const CommRecord& r = inputs[pr.second.input].comms[pr.second.comm];
      const std::int64_t d = static_cast<std::int64_t>(r.t_complete) -
                             static_cast<std::int64_t>(s.t_post);
      const auto e = std::make_pair(pr.first.input, pr.second.input);
      auto it = dmin.find(e);
      if (it == dmin.end() || d < it->second) dmin[e] = d;
    }
    std::vector<char> visited(n, 0);
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return res.ranks[a] < res.ranks[b];
    });
    for (std::size_t root : order) {
      if (visited[root]) continue;
      visited[root] = 1;
      theta[root] = 0;
      std::queue<std::size_t> bfs;
      bfs.push(root);
      while (!bfs.empty()) {
        const std::size_t a = bfs.front();
        bfs.pop();
        for (std::size_t b = 0; b < n; ++b) {
          if (visited[b]) continue;
          const auto fwd = dmin.find(std::make_pair(a, b));
          const auto rev = dmin.find(std::make_pair(b, a));
          if (fwd == dmin.end() && rev == dmin.end()) continue;
          std::int64_t off;
          if (fwd != dmin.end() && rev != dmin.end()) {
            off = (fwd->second - rev->second) / 2;
          } else if (fwd != dmin.end()) {
            off = fwd->second;
          } else {
            off = -rev->second;
          }
          theta[b] = theta[a] + off;
          visited[b] = 1;
          bfs.push(b);
        }
      }
    }
    // Causality pass: estimation error is bounded by the true minimum
    // latency, so a matched message may still complete "before" it was
    // posted. Shift receiver ranks forward until every matched pair is
    // causal; capped, since each fix can cascade along a cycle once.
    for (std::size_t iter = 0; iter < 4 * n + 4; ++iter) {
      bool changed = false;
      for (const auto& [key, pr] : pairs) {
        if (!pr.first.present() || !pr.second.present()) continue;
        if (pr.first.input == pr.second.input) continue;
        const CommRecord& s = inputs[pr.first.input].comms[pr.first.comm];
        const CommRecord& r = inputs[pr.second.input].comms[pr.second.comm];
        const std::int64_t send_post =
            static_cast<std::int64_t>(s.t_post) - theta[pr.first.input];
        const std::int64_t recv_done =
            static_cast<std::int64_t>(r.t_complete) - theta[pr.second.input];
        if (send_post > recv_done) {
          theta[pr.second.input] -= send_post - recv_done;
          changed = true;
        }
      }
      if (!changed) break;
    }
  }
  res.offset_ns = theta;

  // Rebase to a common origin: after subtracting each input's offset,
  // shift everything by the global minimum so the merged timeline starts
  // at zero and no timestamp underflows.
  std::int64_t tmin = std::numeric_limits<std::int64_t>::max();
  for (std::size_t i = 0; i < n; ++i) {
    for (const TaskRecord& r : inputs[i].records) {
      tmin = std::min(tmin,
                      static_cast<std::int64_t>(r.t_create) - theta[i]);
    }
    for (const CommRecord& c : inputs[i].comms) {
      tmin =
          std::min(tmin, static_cast<std::int64_t>(c.t_post) - theta[i]);
    }
  }
  if (tmin == std::numeric_limits<std::int64_t>::max()) tmin = 0;

  ParsedTrace& out = res.trace;
  auto remap_id = [&](std::uint64_t id, std::size_t input) {
    return id == 0 ? 0
                   : static_cast<std::uint64_t>(res.ranks[input] + 1) *
                             kMergeRankStride +
                         id;
  };
  for (std::size_t i = 0; i < n; ++i) {
    auto rebase = [&](std::uint64_t t) {
      return static_cast<std::uint64_t>(static_cast<std::int64_t>(t) -
                                        theta[i] - tmin);
    };
    for (TaskRecord r : inputs[i].records) {
      r.task_id = remap_id(r.task_id, i);
      r.rank = res.ranks[i];
      r.t_create = rebase(r.t_create);
      r.t_ready = rebase(r.t_ready);
      r.t_start = rebase(r.t_start);
      r.t_end = rebase(r.t_end);
      r.label = intern_label(out, r.label);
      out.records.push_back(r);
    }
    for (const TraceEdge& e : inputs[i].edges) {
      out.edges.push_back(
          TraceEdge{remap_id(e.pred, i), remap_id(e.succ, i)});
    }
    for (AccessRecord a : inputs[i].accesses) {
      a.task_id = remap_id(a.task_id, i);
      a.label = intern_label(out, a.label);
      out.accesses.push_back(a);
    }
    for (CommRecord c : inputs[i].comms) {
      c.self = res.ranks[i];
      c.task_id = remap_id(c.task_id, i);
      c.t_post = rebase(c.t_post);
      c.t_complete = rebase(c.t_complete);
      out.comms.push_back(c);
    }
    // Barriers / scope clears are per-rank submission-order cutoffs; they
    // carry no meaning across ranks and are dropped from the merged view.
  }

  // Cross-rank message edges: send task -> receive task for every matched
  // pair with task attribution on both sides. These are the edges the
  // comm-aware critical path traverses.
  if (opts.derive_cross_rank_edges) {
    for (const auto& [key, pr] : pairs) {
      if (!pr.first.present() || !pr.second.present()) continue;
      const CommRecord& s = inputs[pr.first.input].comms[pr.first.comm];
      const CommRecord& r = inputs[pr.second.input].comms[pr.second.comm];
      const std::uint64_t pred = remap_id(s.task_id, pr.first.input);
      const std::uint64_t succ = remap_id(r.task_id, pr.second.input);
      if (pred == 0 || succ == 0 || pred == succ) continue;
      const TraceEdge edge{pred, succ};
      res.cross_rank_edges.push_back(edge);
      out.edges.push_back(edge);
    }
  }

  std::stable_sort(out.records.begin(), out.records.end(),
                   [](const TaskRecord& a, const TaskRecord& b) {
                     return a.t_start < b.t_start;
                   });
  std::stable_sort(out.accesses.begin(), out.accesses.end(),
                   [](const AccessRecord& a, const AccessRecord& b) {
                     return a.task_id < b.task_id;
                   });
  std::stable_sort(out.comms.begin(), out.comms.end(),
                   [](const CommRecord& a, const CommRecord& b) {
                     return a.t_post < b.t_post;
                   });
  return res;
}

}  // namespace tdg
