#include "core/verify.hpp"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace tdg {
namespace {

const char* dep_type_name(DependType t) {
  switch (t) {
    case DependType::In: return "in";
    case DependType::Out: return "out";
    case DependType::InOut: return "inout";
    case DependType::InOutSet: return "inoutset";
  }
  return "?";
}

void append_hex(std::ostringstream& os, std::uint64_t v) {
  os << "0x" << std::hex << v << std::dec;
}

/// One endpoint of a shadow-discovery ordering constraint.
struct ShadowRef {
  std::uint64_t id = 0;
  DependType type = DependType::In;
};

/// Shadow of DependencyMap's per-address history: the same sequential
/// semantics, re-derived from the clause stream alone so the verifier does
/// not trust the component it is checking. No dedup, no pruning, no
/// redirect nodes — this produces the *required* ordering relation; the
/// discovered graph may realize each constraint through any path.
struct ShadowAddr {
  std::vector<ShadowRef> mods;      ///< last modification (or open inoutset
                                    ///< generation when mod_is_set)
  std::vector<ShadowRef> gen_base;  ///< accesses the open generation follows
  std::vector<ShadowRef> readers;   ///< readers since the last modification
  bool mod_is_set = false;
};

/// A conflicting access pair the graph must order (pred submitted first).
struct RequiredPair {
  std::uint64_t pred = 0;
  std::uint64_t succ = 0;
  std::uint64_t addr = 0;
  DependType pred_type = DependType::In;
  DependType succ_type = DependType::In;
};

/// Derive the required ordering pairs from the access stream. Mirrors
/// DependencyMap::apply: In follows the modification set; Out/InOut follow
/// the modification set and all readers since; InOutSet members follow the
/// generation base (the pre-generation modification set + readers) and are
/// mutually unordered within one generation. Transitive closure of these
/// pairs orders every conflicting access pair, so checking them suffices.
std::vector<RequiredPair> shadow_required_pairs(
    std::span<const AccessRecord> accesses,
    std::span<const std::uint64_t> scope_clears = {}) {
  std::vector<RequiredPair> pairs;
  std::unordered_map<std::uint64_t, ShadowAddr> table;
  table.reserve(256);

  // clear_dependency_scope cutoffs, ascending: when the stream crosses
  // one, the real history was dropped, so the shadow drops too.
  std::vector<std::uint64_t> cuts(scope_clears.begin(), scope_clears.end());
  std::sort(cuts.begin(), cuts.end());
  std::size_t next_cut = 0;

  for (const AccessRecord& a : accesses) {
    while (next_cut < cuts.size() && a.task_id > cuts[next_cut]) {
      table.clear();
      ++next_cut;
    }
    ShadowAddr& st = table[a.addr];
    auto require = [&](const ShadowRef& from) {
      if (from.id == a.task_id) return;  // same task, both clause items
      pairs.push_back(
          RequiredPair{from.id, a.task_id, a.addr, from.type, a.type});
    };
    switch (a.type) {
      case DependType::In:
        for (const ShadowRef& m : st.mods) require(m);
        st.readers.push_back({a.task_id, a.type});
        break;
      case DependType::Out:
      case DependType::InOut:
        for (const ShadowRef& m : st.mods) require(m);
        for (const ShadowRef& r : st.readers) require(r);
        st.mods.clear();
        st.mods.push_back({a.task_id, a.type});
        st.gen_base.clear();
        st.readers.clear();
        st.mod_is_set = false;
        break;
      case DependType::InOutSet:
        if (!st.mod_is_set) {
          // Open a new generation: it must follow everything outstanding.
          st.gen_base.clear();
          st.gen_base.insert(st.gen_base.end(), st.mods.begin(),
                             st.mods.end());
          st.gen_base.insert(st.gen_base.end(), st.readers.begin(),
                             st.readers.end());
          st.mods.clear();
          st.readers.clear();
          st.mod_is_set = true;
        }
        for (const ShadowRef& g : st.gen_base) require(g);
        // Readers that arrived while the generation was open also precede
        // new members (OpenMP 5.1: inoutset follows prior in accesses).
        for (const ShadowRef& r : st.readers) require(r);
        st.mods.push_back({a.task_id, a.type});
        break;
    }
  }
  return pairs;
}

/// Dense-index graph with topological order, shared by both query modes.
struct Graph {
  std::vector<std::uint64_t> ids;  ///< sorted task ids; index = position
  std::unordered_map<std::uint64_t, std::uint32_t> index;
  std::vector<std::vector<std::uint32_t>> adj;
  std::vector<std::uint32_t> topo_pos;  ///< vertex -> position in topo order
  std::vector<std::uint32_t> topo;      ///< position -> vertex
  bool cycle = false;
  std::uint64_t cycle_task = 0;
};

Graph build_graph(std::span<const AccessRecord> accesses,
                  std::span<const TraceEdge> edges) {
  Graph g;
  g.ids.reserve(accesses.size() + 2 * edges.size());
  for (const AccessRecord& a : accesses) g.ids.push_back(a.task_id);
  for (const TraceEdge& e : edges) {
    g.ids.push_back(e.pred);
    g.ids.push_back(e.succ);
  }
  std::sort(g.ids.begin(), g.ids.end());
  g.ids.erase(std::unique(g.ids.begin(), g.ids.end()), g.ids.end());

  const std::size_t n = g.ids.size();
  g.index.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    g.index.emplace(g.ids[i], static_cast<std::uint32_t>(i));
  }

  g.adj.resize(n);
  std::vector<std::uint32_t> indeg(n, 0);
  // The edge stream may repeat a pair (pruned-then-created across barrier
  // scopes); dedup so Kahn in-degrees stay consistent with adj.
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(edges.size());
  for (const TraceEdge& e : edges) {
    const std::uint32_t u = g.index.at(e.pred);
    const std::uint32_t v = g.index.at(e.succ);
    if (u == v) {  // self-edge: malformed, surfaces as a cycle
      g.cycle = true;
      g.cycle_task = e.pred;
      continue;
    }
    const std::uint64_t key =
        (static_cast<std::uint64_t>(u) << 32) | v;
    if (!seen.insert(key).second) continue;
    g.adj[u].push_back(v);
    ++indeg[v];
  }

  // Kahn's algorithm; ties broken by task id so the order is deterministic.
  g.topo.reserve(n);
  std::vector<std::uint32_t> ready;
  for (std::uint32_t v = 0; v < n; ++v) {
    if (indeg[v] == 0) ready.push_back(v);
  }
  // ids are sorted, so vertex index order == submission order; a plain
  // FIFO over ascending indices keeps the order stable.
  std::size_t head = 0;
  while (head < ready.size()) {
    const std::uint32_t v = ready[head++];
    g.topo.push_back(v);
    for (std::uint32_t w : g.adj[v]) {
      if (--indeg[w] == 0) ready.push_back(w);
    }
  }
  if (g.topo.size() != n) {
    g.cycle = true;
    for (std::uint32_t v = 0; v < n; ++v) {
      if (indeg[v] != 0) {
        g.cycle_task = g.ids[v];
        break;
      }
    }
  }
  g.topo_pos.assign(n, 0);
  for (std::uint32_t p = 0; p < g.topo.size(); ++p) {
    g.topo_pos[g.topo[p]] = p;
  }
  return g;
}

/// O(1)-query reachability: one bitset row per vertex, filled in reverse
/// topological order (row[v] = bit(v) | union of successor rows). Memory is
/// n^2/8 bytes, which is why it is gated behind dense_limit.
class DenseReach {
 public:
  explicit DenseReach(const Graph& g)
      : words_((g.ids.size() + 63) / 64), rows_(g.ids.size() * words_, 0) {
    for (auto it = g.topo.rbegin(); it != g.topo.rend(); ++it) {
      const std::uint32_t v = *it;
      std::uint64_t* row = rows_.data() + std::size_t{v} * words_;
      row[v / 64] |= std::uint64_t{1} << (v % 64);
      for (std::uint32_t w : g.adj[v]) {
        const std::uint64_t* succ = rows_.data() + std::size_t{w} * words_;
        for (std::size_t i = 0; i < words_; ++i) row[i] |= succ[i];
      }
    }
  }
  bool reachable(std::uint32_t from, std::uint32_t to) const {
    const std::uint64_t* row = rows_.data() + std::size_t{from} * words_;
    return (row[to / 64] >> (to % 64)) & 1;
  }

 private:
  std::size_t words_;
  std::vector<std::uint64_t> rows_;
};

/// Per-pair DFS fallback for graphs above dense_limit: a direct-edge hash
/// hit answers common pairs in O(1); misses walk successors, pruned by
/// topological position (a vertex past the target's position cannot reach
/// it). Visited marks use a query stamp so no per-query clearing.
class SparseReach {
 public:
  explicit SparseReach(const Graph& g) : g_(g), stamp_(g.ids.size(), 0) {
    direct_.reserve(g.ids.size() * 2);
    for (std::uint32_t u = 0; u < g.adj.size(); ++u) {
      for (std::uint32_t v : g.adj[u]) {
        direct_.insert((static_cast<std::uint64_t>(u) << 32) | v);
      }
    }
  }
  bool reachable(std::uint32_t from, std::uint32_t to) {
    if (from == to) return true;
    if (direct_.count((static_cast<std::uint64_t>(from) << 32) | to) != 0) {
      return true;
    }
    ++query_;
    const std::uint32_t limit = g_.topo_pos[to];
    stack_.clear();
    stack_.push_back(from);
    stamp_[from] = query_;
    while (!stack_.empty()) {
      const std::uint32_t v = stack_.back();
      stack_.pop_back();
      for (std::uint32_t w : g_.adj[v]) {
        if (w == to) return true;
        if (stamp_[w] == query_ || g_.topo_pos[w] >= limit) continue;
        stamp_[w] = query_;
        stack_.push_back(w);
      }
    }
    return false;
  }

 private:
  const Graph& g_;
  std::unordered_set<std::uint64_t> direct_;
  std::vector<std::uint32_t> stamp_;
  std::vector<std::uint32_t> stack_;
  std::uint32_t query_ = 0;
};

}  // namespace

std::string RaceFinding::to_string() const {
  std::ostringstream os;
  os << "determinacy race on ";
  append_hex(os, addr);
  os << ": task " << pred_id;
  if (!pred_label.empty()) os << " [" << pred_label << "]";
  os << " (" << dep_type_name(pred_type) << ") and task " << succ_id;
  if (!succ_label.empty()) os << " [" << succ_label << "]";
  os << " (" << dep_type_name(succ_type)
     << ") conflict but are not ordered by the discovered graph";
  return os.str();
}

std::string VerifyReport::summary() const {
  std::ostringstream os;
  if (cycle) {
    os << "CYCLE: discovered edge set is cyclic (task " << cycle_task
       << " is on a cycle); the graph is not a valid schedule\n";
  }
  for (const RaceFinding& r : races) os << r.to_string() << '\n';
  if (races_total > races.size()) {
    os << "... " << (races_total - races.size()) << " more violation(s)\n";
  }
  os << "verify: " << tasks << " tasks, " << edges << " edges, " << addresses
     << " addresses, " << pairs_checked << " ordering constraints checked, "
     << races_total << " violation(s)"
     << (ok() ? " -- TDG is sound" : "");
  return os.str();
}

VerifyEnvMode verify_env_mode() {
  const char* v = std::getenv("TDG_VERIFY");
  if (v == nullptr) return VerifyEnvMode::Default;
  const std::string s(v);
  if (s == "off") return VerifyEnvMode::Off;
  if (s == "post") return VerifyEnvMode::Post;
  if (s == "strict") return VerifyEnvMode::Strict;
  return VerifyEnvMode::Default;
}

VerifyReport verify_tdg(std::span<const AccessRecord> accesses,
                        std::span<const TraceEdge> edges,
                        std::span<const std::uint64_t> barriers,
                        std::span<const std::uint64_t> scope_clears,
                        const VerifyOptions& opts) {
  VerifyReport rep;
  rep.edges = edges.size();

  Graph g = build_graph(accesses, edges);
  rep.tasks = g.ids.size();
  rep.cycle = g.cycle;
  rep.cycle_task = g.cycle_task;

  std::vector<RequiredPair> pairs =
      shadow_required_pairs(accesses, scope_clears);
  {
    std::unordered_set<std::uint64_t> addrs;
    addrs.reserve(64);
    for (const AccessRecord& a : accesses) addrs.insert(a.addr);
    rep.addresses = addrs.size();
  }
  if (g.cycle) {
    // A cyclic edge set has no topological order; reachability queries
    // would be ill-defined. The cycle itself is the (fatal) finding.
    return rep;
  }

  // Labels for reporting: the first clause item of each task carries it.
  std::unordered_map<std::uint64_t, const char*> labels;
  labels.reserve(accesses.size());
  for (const AccessRecord& a : accesses) labels.emplace(a.task_id, a.label);

  // Taskwait cutoffs order pairs that span a barrier even when the edge was
  // pruned before recording ever existed (e.g. pre-trace history). Sorted
  // copy so the lookup can binary-search without trusting the producer.
  std::vector<std::uint64_t> cuts(barriers.begin(), barriers.end());
  std::sort(cuts.begin(), cuts.end());
  auto barrier_separated = [&](std::uint64_t a, std::uint64_t b) {
    auto it = std::lower_bound(cuts.begin(), cuts.end(), a);
    return it != cuts.end() && *it < b;
  };

  DenseReach* dense = nullptr;
  SparseReach* sparse = nullptr;
  // Construct lazily-by-mode: the dense table is O(n^2) bits.
  std::unique_ptr<DenseReach> dense_owner;
  std::unique_ptr<SparseReach> sparse_owner;
  if (g.ids.size() <= opts.dense_limit) {
    dense_owner = std::make_unique<DenseReach>(g);
    dense = dense_owner.get();
  } else {
    sparse_owner = std::make_unique<SparseReach>(g);
    sparse = sparse_owner.get();
  }

  std::unordered_set<std::uint64_t> checked;
  checked.reserve(pairs.size());
  for (const RequiredPair& p : pairs) {
    const std::uint32_t u = g.index.at(p.pred);
    const std::uint32_t v = g.index.at(p.succ);
    const std::uint64_t key = (static_cast<std::uint64_t>(u) << 32) | v;
    if (!checked.insert(key).second) continue;  // same pair, another addr
    ++rep.pairs_checked;
    if (barrier_separated(p.pred, p.succ)) continue;
    const bool ordered =
        dense != nullptr ? dense->reachable(u, v) : sparse->reachable(u, v);
    if (ordered) continue;
    ++rep.races_total;
    if (rep.races.size() < opts.max_reports) {
      RaceFinding f;
      f.addr = p.addr;
      f.pred_id = p.pred;
      f.succ_id = p.succ;
      f.pred_type = p.pred_type;
      f.succ_type = p.succ_type;
      auto pl = labels.find(p.pred);
      if (pl != labels.end()) f.pred_label = pl->second;
      auto sl = labels.find(p.succ);
      if (sl != labels.end()) f.succ_label = sl->second;
      rep.races.push_back(std::move(f));
    }
  }
  return rep;
}

VerifyReport verify_window(std::span<const AccessRecord> accesses,
                           std::span<const TraceEdge> edges,
                           std::span<const std::uint64_t> barriers,
                           std::span<const std::uint64_t> scope_clears,
                           std::uint64_t window_lo,
                           const VerifyOptions& opts) {
  // Restrict every stream to ids > window_lo. This is sound for in-window
  // pair proofs: discovered edges always point from an earlier id to a
  // later one, so any ordering path between two in-window tasks ascends
  // through in-window ids only — boundary-crossing edges are never needed
  // and dropping them cannot invent a violation.
  std::vector<AccessRecord> acc;
  acc.reserve(accesses.size());
  for (const AccessRecord& a : accesses) {
    if (a.task_id > window_lo) acc.push_back(a);
  }
  std::vector<TraceEdge> edg;
  edg.reserve(edges.size());
  for (const TraceEdge& e : edges) {
    if (e.pred > window_lo && e.succ > window_lo) edg.push_back(e);
  }
  std::vector<std::uint64_t> bar;
  for (std::uint64_t b : barriers) {
    if (b > window_lo) bar.push_back(b);
  }
  std::vector<std::uint64_t> cuts;
  for (std::uint64_t c : scope_clears) {
    if (c > window_lo) cuts.push_back(c);
  }
  return verify_tdg(acc, edg, bar, cuts, opts);
}

// ---------------------------------------------------------------------------
// Depend-clause lint
// ---------------------------------------------------------------------------

const char* lint_kind_name(LintKind kind) {
  switch (kind) {
    case LintKind::RedundantInout: return "redundant-inout";
    case LintKind::DeadDependence: return "dead-dependence";
    case LintKind::SingletonInoutset: return "singleton-inoutset";
    case LintKind::OverlappingRange: return "overlapping-range";
  }
  return "?";
}

std::vector<LintFinding> lint_clauses(
    std::span<const AccessRecord> accesses) {
  std::vector<LintFinding> findings;

  // Overlapping address ranges within one task's clause: two items whose
  // declared byte ranges partially overlap but name different bases are a
  // likely aliasing mistake — discovery matches on base identity, so the
  // two items will never order against each other's conflicting partners.
  // Scans contiguous per-task runs (the stream is in submission order).
  for (std::size_t i = 0; i < accesses.size();) {
    std::size_t j = i;
    while (j < accesses.size() &&
           accesses[j].task_id == accesses[i].task_id) {
      ++j;
    }
    for (std::size_t a = i; a < j; ++a) {
      if (accesses[a].bytes == 0) continue;
      const std::uint64_t alo = accesses[a].addr;
      const std::uint64_t ahi = alo + accesses[a].bytes;
      for (std::size_t b = a + 1; b < j; ++b) {
        if (accesses[b].bytes == 0) continue;
        if (accesses[b].addr == accesses[a].addr) continue;
        const std::uint64_t blo = accesses[b].addr;
        const std::uint64_t bhi = blo + accesses[b].bytes;
        if (alo >= bhi || blo >= ahi) continue;
        std::ostringstream os;
        os << "overlapping ranges: task " << accesses[a].task_id;
        if (accesses[a].label != nullptr && accesses[a].label[0] != '\0') {
          os << " [" << accesses[a].label << "]";
        }
        os << " declares " << dep_type_name(accesses[a].type) << "(";
        append_hex(os, alo);
        os << "+" << accesses[a].bytes << ") and "
           << dep_type_name(accesses[b].type) << "(";
        append_hex(os, blo);
        os << "+" << accesses[b].bytes
           << ") whose byte ranges overlap under different bases; "
              "discovery matches base identity only, so these items never "
              "order against each other -- use one base address";
        LintFinding f;
        f.kind = LintKind::OverlappingRange;
        f.addr = alo;
        f.task_id = accesses[a].task_id;
        f.label = accesses[a].label;
        f.message = os.str();
        findings.push_back(std::move(f));
      }
    }
    i = j;
  }

  // Regroup the stream per address, keeping submission order.
  struct Item {
    std::uint64_t task_id;
    DependType type;
    const char* label;
  };
  std::unordered_map<std::uint64_t, std::vector<Item>> by_addr;
  by_addr.reserve(64);
  std::vector<std::uint64_t> addr_order;  // deterministic output order
  for (const AccessRecord& a : accesses) {
    auto [it, fresh] = by_addr.try_emplace(a.addr);
    if (fresh) addr_order.push_back(a.addr);
    it->second.push_back(Item{a.task_id, a.type, a.label});
  }

  auto emit = [&](LintKind kind, std::uint64_t addr, const Item& item,
                  const std::string& msg) {
    LintFinding f;
    f.kind = kind;
    f.addr = addr;
    f.task_id = item.task_id;
    f.label = item.label;
    f.message = msg;
    findings.push_back(std::move(f));
  };

  for (std::uint64_t addr : addr_order) {
    const std::vector<Item>& items = by_addr[addr];

    // Dead dependence: the address never matched another task's access, so
    // every clause item on it was pure discovery cost.
    bool single_task = true;
    for (const Item& it : items) {
      if (it.task_id != items.front().task_id) {
        single_task = false;
        break;
      }
    }
    if (single_task) {
      std::ostringstream os;
      os << "dead dependence: ";
      append_hex(os, addr);
      os << " is only accessed by task " << items.front().task_id;
      if (items.front().label != nullptr && items.front().label[0] != '\0') {
        os << " [" << items.front().label << "]";
      }
      os << "; the clause never matches and creates no edges -- drop it";
      emit(LintKind::DeadDependence, addr, items.front(), os.str());
      continue;  // the remaining lints assume cross-task traffic
    }

    // Redundant inout: the write-ordering half is never consumed (no later
    // task touches the address) while readers since the last modification
    // forced reader->task edges that `in` would not create.
    std::size_t readers_since_mod = 0;
    for (std::size_t i = 0; i < items.size(); ++i) {
      const Item& it = items[i];
      if (it.type == DependType::InOut && readers_since_mod > 0) {
        bool consumed = false;
        for (std::size_t j = i + 1; j < items.size(); ++j) {
          if (items[j].task_id != it.task_id) {
            consumed = true;
            break;
          }
        }
        if (!consumed) {
          std::ostringstream os;
          os << "redundant inout: task " << it.task_id;
          if (it.label != nullptr && it.label[0] != '\0') {
            os << " [" << it.label << "]";
          }
          os << " takes inout(";
          append_hex(os, addr);
          os << ") after " << readers_since_mod
             << " reader(s) but nothing ever follows the write; `in` "
                "avoids the reader->task edges";
          emit(LintKind::RedundantInout, addr, it, os.str());
        }
      }
      switch (it.type) {
        case DependType::In:
          ++readers_since_mod;
          break;
        case DependType::Out:
        case DependType::InOut:
        case DependType::InOutSet:
          readers_since_mod = 0;
          break;
      }
    }

    // Singleton inoutset generation: one member gains nothing from the
    // concurrent-set semantics but still pays its bookkeeping (and, with
    // redirect enabled, risks a pointless redirect node later).
    std::size_t gen_begin = SIZE_MAX;
    auto close_gen = [&](std::size_t end) {
      if (gen_begin == SIZE_MAX) return;
      if (end - gen_begin == 1) {
        const Item& m = items[gen_begin];
        std::ostringstream os;
        os << "singleton inoutset: task " << m.task_id;
        if (m.label != nullptr && m.label[0] != '\0') {
          os << " [" << m.label << "]";
        }
        os << " is the only member of an inoutset generation on ";
        append_hex(os, addr);
        os << "; `inout` gives the same ordering without set bookkeeping";
        emit(LintKind::SingletonInoutset, addr, m, os.str());
      }
      gen_begin = SIZE_MAX;
    };
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (items[i].type == DependType::InOutSet) {
        if (gen_begin == SIZE_MAX) gen_begin = i;
      } else {
        close_gen(i);
      }
    }
    close_gen(items.size());
  }
  return findings;
}

// ---------------------------------------------------------------------------
// PTSG replay-safety check
// ---------------------------------------------------------------------------

namespace {

/// Re-discover a clause stream into an edge set over slot indices (the
/// submission index within the iteration), so two iterations are compared
/// structurally even though their runtime task ids differ.
std::unordered_set<std::uint64_t> rediscover_edges(const ClauseStream& cs) {
  std::vector<AccessRecord> accesses;
  accesses.reserve(cs.total_items());
  for (std::size_t i = 0; i < cs.tasks(); ++i) {
    for (const Depend& d : cs.clause(i)) {
      accesses.push_back(AccessRecord{
          static_cast<std::uint64_t>(i),
          reinterpret_cast<std::uint64_t>(d.addr), d.type, d.bytes, ""});
    }
  }
  std::unordered_set<std::uint64_t> set;
  for (const RequiredPair& p : shadow_required_pairs(accesses)) {
    set.insert((p.pred << 32) | p.succ);
  }
  return set;
}

}  // namespace

std::vector<ReplayDriftFinding> diff_replay_clauses(
    const ClauseStream& reference, const ClauseStream& replay,
    std::size_t max_reports) {
  std::vector<ReplayDriftFinding> findings;
  auto report = [&](std::size_t slot, std::string msg) {
    if (findings.size() >= max_reports) return false;
    findings.push_back(ReplayDriftFinding{slot, std::move(msg)});
    return findings.size() < max_reports;
  };

  if (reference.tasks() != replay.tasks()) {
    std::ostringstream os;
    os << "task count drift: discovery iteration submitted "
       << reference.tasks() << " task(s), replay submitted "
       << replay.tasks();
    report(SIZE_MAX, os.str());
  }

  const std::size_t n = std::min(reference.tasks(), replay.tasks());
  for (std::size_t i = 0; i < n; ++i) {
    std::span<const Depend> ref = reference.clause(i);
    std::span<const Depend> rep = replay.clause(i);
    if (ref.size() != rep.size()) {
      std::ostringstream os;
      os << "clause drift at slot " << i << ": " << ref.size()
         << " item(s) at discovery vs " << rep.size() << " at replay";
      if (!report(i, os.str())) return findings;
      continue;
    }
    for (std::size_t j = 0; j < ref.size(); ++j) {
      if (ref[j] == rep[j]) continue;
      std::ostringstream os;
      os << "clause drift at slot " << i << " item " << j << ": "
         << dep_type_name(ref[j].type) << "(";
      append_hex(os, reinterpret_cast<std::uint64_t>(ref[j].addr));
      os << ") at discovery vs " << dep_type_name(rep[j].type) << "(";
      append_hex(os, reinterpret_cast<std::uint64_t>(rep[j].addr));
      os << ") at replay -- firstprivate address drift invalidates the "
            "cached plan";
      if (!report(i, os.str())) return findings;
    }
  }

  // Structural diff: re-discover both graphs and compare edge sets, so a
  // clause drift is also reported as the orderings it loses or invents.
  const auto ref_edges = rediscover_edges(reference);
  const auto rep_edges = rediscover_edges(replay);
  auto describe = [](std::uint64_t key) {
    std::ostringstream os;
    os << "slot " << (key >> 32) << " -> slot "
       << (key & 0xffffffffu);
    return os.str();
  };
  for (std::uint64_t key : ref_edges) {
    if (rep_edges.count(key) != 0) continue;
    std::ostringstream os;
    os << "replay drops required ordering " << describe(key)
       << ": the cached plan enforces it but the replayed clauses do not "
          "require it";
    if (!report(SIZE_MAX, os.str())) return findings;
  }
  for (std::uint64_t key : rep_edges) {
    if (ref_edges.count(key) != 0) continue;
    std::ostringstream os;
    os << "replay requires ordering " << describe(key)
       << " that the cached plan never recorded -- a determinacy race "
          "under replay";
    if (!report(SIZE_MAX, os.str())) return findings;
  }
  return findings;
}

}  // namespace tdg
