#include "core/race.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>

namespace tdg {

namespace {

const char* dep_name(DependType t) {
  switch (t) {
    case DependType::In:
      return "in";
    case DependType::Out:
      return "out";
    case DependType::InOut:
      return "inout";
    case DependType::InOutSet:
      return "inoutset";
  }
  return "?";
}

void append_hex(std::string& s, std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%" PRIx64, v);
  s += buf;
}

/// splitmix64: the sampling hash. Bijective and well-mixed, so "every Nth
/// task" is a uniform pseudo-random subset that is still a pure function
/// of (seed, id) — two runs with the same seed sample the same set.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s) return fallback;
  return v;
}

RaceOptions sanitize(RaceOptions o) {
  if (o.sample_tasks == 0) o.sample_tasks = 1;
  if (o.sample_addrs == 0) o.sample_addrs = 1;
  if (o.clock_lanes == 0) o.clock_lanes = 1;
  if (o.clock_lanes > 4096) o.clock_lanes = 4096;
  if (o.max_flags == 0) o.max_flags = 1;
  return o;
}

std::uint64_t range_end(std::uint64_t addr, std::uint32_t bytes) {
  // Identity-only clauses (bytes 0) occupy one byte so exact-base matches
  // still collide in the interval scan.
  return addr + (bytes != 0 ? bytes : 1);
}

}  // namespace

const char* race_mode_name(RaceMode mode) {
  switch (mode) {
    case RaceMode::Off:
      return "off";
    case RaceMode::Sample:
      return "sample";
    case RaceMode::Strict:
      return "strict";
  }
  return "?";
}

RaceOptions race_env_options() {
  RaceOptions o;
  const char* s = std::getenv("TDG_RACE");
  if (s == nullptr || *s == '\0' || std::strcmp(s, "off") == 0) {
    o.mode = RaceMode::Off;
    return o;
  }
  if (std::strcmp(s, "sample") == 0) {
    o.mode = RaceMode::Sample;
    // Production default: shadow-check 1 task in 16 (all of its clauses).
    o.sample_tasks = 16;
  } else if (std::strcmp(s, "strict") == 0) {
    o.mode = RaceMode::Strict;
    o.sample_tasks = 1;
  } else {
    std::fprintf(stderr,
                 "tdg: unknown TDG_RACE mode '%s' "
                 "(expected off|sample|strict); race detection off\n",
                 s);
    o.mode = RaceMode::Off;
    return o;
  }
  o.sample_tasks = env_u64("TDG_RACE_SAMPLE_TASKS", o.sample_tasks);
  o.sample_addrs = env_u64("TDG_RACE_SAMPLE_ADDRS", o.sample_addrs);
  o.seed = env_u64("TDG_RACE_SEED", o.seed);
  o.clock_lanes = static_cast<unsigned>(
      env_u64("TDG_RACE_LANES", o.clock_lanes));
  return sanitize(o);
}

std::string RaceFlag::to_string() const {
  std::string s = kind == Kind::SameBase ? "race[same-base] addr "
                                         : "race[range-overlap] addr ";
  append_hex(s, addr);
  if (bytes != 0) s += "+" + std::to_string(bytes);
  if (kind == Kind::RangeOverlap && other_addr != addr) {
    s += " overlapping ";
    append_hex(s, other_addr);
  }
  s += ": task '";
  s += pred_label;
  s += "' (id " + std::to_string(pred_id) + ", " + dep_name(pred_type) +
       ") vs task '";
  s += succ_label;
  s += "' (id " + std::to_string(succ_id) + ", " + dep_name(succ_type) +
       "): no ordering in the discovered TDG";
  if (window_lo != 0) {
    s += " (window > " + std::to_string(window_lo) + ")";
  }
  return s;
}

// ---------------------------------------------------------------------------
// RaceDetector
// ---------------------------------------------------------------------------

/// One access installed in a shadow entry. Trivially copyable so the
/// writer/reader lists ride in small_vector inline storage.
struct RaceDetector::ShadowAccess {
  std::uint64_t task_id = 0;
  DependType type = DependType::In;
  std::uint32_t bytes = 0;
  const char* label = "";
};

/// One interval shadow entry, keyed by clause base address. Mirrors the
/// shape of DependencyMap's AddrEntry (last-modification set + readers,
/// generation flag) so the check semantics track discovery semantics:
/// a conflict the shadow table derives is one discovery was obliged to
/// order. Slab-allocated from shadow_arena_ under lock_.
struct RaceDetector::ShadowEntry {
  /// Writer/reader history caps: overflow drops the oldest information,
  /// which can only hide a race (a missed check), never invent one.
  static constexpr std::size_t kMaxWriters = 16;
  static constexpr std::size_t kMaxReaders = 16;

  std::uint64_t start = 0;
  std::uint64_t end = 0;  ///< max extent installed, [start, end)
  bool mod_is_set = false;  ///< writers form an open inoutset generation
  small_vector<ShadowAccess, 2> writers;
  small_vector<ShadowAccess, 4> readers;
};

/// Per-task clock record. `lanes` is the lane-compressed vector clock
/// (lane i holds the max id of any happens-before predecessor with
/// id % W == i); the array lives in the trailing bytes of the record's
/// pool block, so record and clock share one allocation and one cache
/// locality. `has_lanes` defers the W-word fill to the first join, so
/// records that only ever carry clauses never touch the array.
struct RaceDetector::ClockRec {
  std::uint64_t id = 0;
  /// Scalar prefix clock: every id in (clock_base_ - 1, seq_lo] is a
  /// proven happens-before predecessor. A pure chain keeps its entire
  /// ordering in this one word (each link inherits `pred` when pred
  /// dominated everything before it), so the common shape never touches
  /// the W-word lane array at all; divergent graphs fall back to lanes.
  std::uint64_t seq_lo = 0;
  std::uint64_t* lanes = nullptr;  ///< trailing pool-block storage, fixed
  const char* label = "";
  bool tracked = false;
  bool has_lanes = false;
  small_vector<Depend, 4> clauses;  ///< sampled tasks only
};

RaceDetector::RaceDetector(const RaceOptions& opts, unsigned nslots)
    : opts_(sanitize(opts)),
      shadow_arena_(sizeof(ShadowEntry), 1),
      slot_cache_(nslots > 0 ? nslots : 1) {
  rec_stride_ =
      (sizeof(ClockRec) + opts_.clock_lanes * sizeof(std::uint64_t) +
       kCacheLine - 1) &
      ~(kCacheLine - 1);
}

void RaceDetector::carve_rec_slab() {
  const std::size_t bytes = rec_stride_ * kRecsPerSlab;
  void* mem = ChunkCache::take(bytes);
  if (mem == nullptr) {
    mem = ::operator new(bytes, std::align_val_t{kCacheLine});
  }
  char* base = static_cast<char*>(mem);
  rec_slabs_.push_back(base);
  rec_pool_.reserve(rec_pool_.size() + kRecsPerSlab);
  for (std::size_t i = 0; i < kRecsPerSlab; ++i) {
    ClockRec* r = new (base + i * rec_stride_) ClockRec();
    r->lanes = reinterpret_cast<std::uint64_t*>(base + i * rec_stride_ +
                                                sizeof(ClockRec));
    rec_pool_.push_back(r);
  }
}

/// Hand out the next pool record, reset for a fresh task. Records stay
/// constructed for the detector's whole lifetime (a clause list that grew
/// past its inline capacity keeps that capacity across reuse).
RaceDetector::ClockRec* RaceDetector::acquire_rec() {
  if (rec_used_ == rec_pool_.size()) carve_rec_slab();
  ClockRec* r = rec_pool_[rec_used_++];
  live_clocks_.store(rec_used_, std::memory_order_relaxed);
  r->seq_lo = clock_base_ - 1;  // covers nothing yet
  r->label = "";
  r->tracked = false;
  r->has_lanes = false;
  r->clauses.clear();
  return r;
}

/// Producer-side; callers run at quiescent points (barrier, destructor).
/// O(1): every record is retired at once by resetting the pool cursor.
void RaceDetector::reset_clocks() {
  clock_recs_.clear();
  rec_used_ = 0;
  live_clocks_.store(0, std::memory_order_relaxed);
}

RaceDetector::~RaceDetector() {
  {
    SpinGuard g(lock_);
    flush_shadow_locked();
  }
  for (ClockRec* r : rec_pool_) r->~ClockRec();
  const std::size_t bytes = rec_stride_ * kRecsPerSlab;
  for (char* slab : rec_slabs_) ChunkCache::give(slab, bytes);
}

bool RaceDetector::would_sample_task(std::uint64_t id) const {
  if (opts_.mode == RaceMode::Off) return false;
  if (opts_.sample_tasks <= 1) return true;
  return mix64(opts_.seed ^ id) % opts_.sample_tasks == 0;
}

bool RaceDetector::would_sample_addr(std::uint64_t addr) const {
  if (opts_.sample_addrs <= 1) return true;
  // Mix the seed in at a different rotation than the task hash so the
  // task and address subsets are independent.
  return mix64((opts_.seed << 1 | 1) ^ addr) % opts_.sample_addrs == 0;
}

RaceDetector::ClockRec* RaceDetector::find_clock(std::uint64_t id) const {
  if (id < clock_base_ || id - clock_base_ >= clock_recs_.size()) {
    return nullptr;
  }
  return clock_recs_[id - clock_base_];
}

RaceDetector::ClockRec* RaceDetector::find_or_create_clock(std::uint64_t id) {
  // Pre-barrier ids are ordered by the cutoff alone — no record needed.
  if (id < clock_base_) return nullptr;
  const std::size_t idx = static_cast<std::size_t>(id - clock_base_);
  if (idx >= clock_recs_.size()) clock_recs_.resize(idx + 1, nullptr);
  ClockRec*& slot = clock_recs_[idx];
  if (slot == nullptr) {
    slot = acquire_rec();
    slot->id = id;
  }
  return slot;
}

void* RaceDetector::on_task_discovered(std::uint64_t id, const Depend* deps,
                                       std::size_t n, const char* label) {
  if (n == 0 || !would_sample_task(id)) return nullptr;
  ClockRec* rec = find_or_create_clock(id);
  if (rec == nullptr) return nullptr;
  rec->tracked = true;
  rec->label = label != nullptr ? label : "";
  rec->clauses.clear();
  for (std::size_t i = 0; i < n; ++i) rec->clauses.push_back(deps[i]);
  tracked_.fetch_add(1, std::memory_order_relaxed);
  return rec;
}

void RaceDetector::on_edge(std::uint64_t pred, std::uint64_t succ) {
  if (opts_.mode == RaceMode::Off || pred == succ) return;
  ClockRec* s = find_or_create_clock(succ);
  if (s == nullptr) return;
  // Join: every discovered edge is joined (not just sampled tasks'):
  // skipping an intermediate task would break transitivity and turn a
  // properly ordered pair into a false flag.
  ClockRec* p = find_clock(pred);
  std::uint64_t p_seq = clock_base_ - 1;
  bool p_has_lanes = false;
  if (p != nullptr) {
    p_seq = p->seq_lo;
    p_has_lanes = p->has_lanes;
  } else if (pred < clock_base_) {
    // Pre-barrier predecessor: the cutoff already orders it before
    // everything in this window — the edge carries no new information.
    return;
  }
  // Scalar-prefix join: when the predecessor dominated every id before it,
  // the successor's coverage extends through the predecessor itself; the
  // pure-chain shape rides entirely on this word and never touches lanes.
  const std::uint64_t inherit = p_seq == pred - 1 ? pred : p_seq;
  if (inherit > s->seq_lo) s->seq_lo = inherit;
  if (!p_has_lanes && inherit >= pred) return;  // fully covered by seq_lo
  if (!s->has_lanes) {
    s->has_lanes = true;
    // First lane touch: inherit the predecessor's clock wholesale instead
    // of zero-filling and re-maxing.
    if (p_has_lanes) {
      std::memcpy(s->lanes, p->lanes,
                  opts_.clock_lanes * sizeof(std::uint64_t));
    } else {
      std::memset(s->lanes, 0, opts_.clock_lanes * sizeof(std::uint64_t));
    }
  } else if (p_has_lanes) {
    for (unsigned i = 0; i < opts_.clock_lanes; ++i) {
      if (s->lanes[i] < p->lanes[i]) s->lanes[i] = p->lanes[i];
    }
  }
  std::uint64_t& lane = s->lanes[pred % opts_.clock_lanes];
  if (lane < pred) lane = pred;
}

void RaceDetector::on_barrier(std::uint64_t max_id) {
  if (opts_.mode == RaceMode::Off) return;
  // Barriers run at quiescent points (taskwait drained), so the clock side
  // can be swept without coordination; the shadow side still takes the
  // lock against a concurrently-diagnosing watchdog.
  std::uint64_t cutoff = cutoff_.load(std::memory_order_relaxed);
  if (cutoff < max_id) {
    cutoff = max_id;
    cutoff_.store(cutoff, std::memory_order_relaxed);
  }
  reset_clocks();
  clock_base_ = cutoff + 1;
  SpinGuard g(lock_);
  scope_cuts_.clear();
  flush_shadow_locked();
  flag_keys_.clear();
}

void RaceDetector::on_scope_clear(std::uint64_t max_id) {
  if (opts_.mode == RaceMode::Off) return;
  SpinGuard g(lock_);
  // Clocks survive: pre-clear tasks may still be running and their
  // conflicts *among themselves* are still real. Only cross-cut pairs are
  // exempt — the program explicitly severed discovery there, which is
  // exactly the offline verifier's scope_clears contract.
  flush_shadow_locked();
  if (scope_cuts_.empty() || scope_cuts_.back() != max_id) {
    scope_cuts_.push_back(max_id);
  }
}

void RaceDetector::flush_shadow_locked() {
  for (auto& [start, e] : shadow_) {
    e->~ShadowEntry();
    shadow_arena_.deallocate(e);
  }
  shadow_.clear();
  max_range_ = 0;
}

bool RaceDetector::cut_separated(std::uint64_t a, std::uint64_t b) const {
  const std::uint64_t lo = a < b ? a : b;
  const std::uint64_t hi = a < b ? b : a;
  auto it = std::lower_bound(scope_cuts_.begin(), scope_cuts_.end(), lo);
  return it != scope_cuts_.end() && *it < hi;
}

/// Is `pred` proven ordered before the task owning `rec`? Safe from any
/// thread: a task's clock is final once the task is discoverable (in-edges
/// only arrive during its own discovery), and `cutoff_` is atomic.
bool RaceDetector::ordered_rec(const ClockRec* rec,
                               std::uint64_t pred) const {
  if (pred <= cutoff_.load(std::memory_order_relaxed)) return true;
  if (rec == nullptr) return false;
  if (pred <= rec->seq_lo) return true;  // scalar prefix coverage
  if (!rec->has_lanes) return false;
  return rec->lanes[pred % opts_.clock_lanes] >= pred;
}

bool RaceDetector::ordered(std::uint64_t pred, std::uint64_t succ) const {
  if (pred == succ) return true;
  return ordered_rec(find_clock(succ), pred);
}

void RaceDetector::flag(RaceFlag::Kind kind, const ShadowAccess& prior,
                        std::uint64_t succ_id, const Depend& clause,
                        const char* succ_label, std::uint64_t entry_addr,
                        std::vector<std::string>& live_lines) {
  // One flag per (pred, succ, entry) triple: the same unordered pair would
  // otherwise flag once per clause item touching the address.
  const std::uint64_t key =
      mix64(prior.task_id) ^ mix64(succ_id * 0x9e3779b97f4a7c15ull) ^
      entry_addr;
  if (std::find(flag_keys_.begin(), flag_keys_.end(), key) !=
      flag_keys_.end()) {
    return;
  }
  flag_keys_.push_back(key);
  flags_total_.fetch_add(1, std::memory_order_relaxed);
  RaceFlag f;
  f.kind = kind;
  f.addr = reinterpret_cast<std::uint64_t>(clause.addr);
  f.bytes = clause.bytes;
  f.other_addr = entry_addr;
  f.pred_id = prior.task_id;
  f.succ_id = succ_id;
  f.pred_type = prior.type;
  f.succ_type = clause.type;
  f.pred_label = prior.label;
  f.succ_label = succ_label;
  f.window_lo = cutoff_.load(std::memory_order_relaxed);
  if (opts_.live_report) live_lines.push_back(f.to_string());
  if (flags_.size() < opts_.max_flags) flags_.push_back(std::move(f));
}

void RaceDetector::on_task_start(std::uint64_t id, unsigned slot,
                                 void* rec_opaque) {
  if (opts_.mode == RaceMode::Off || rec_opaque == nullptr) return;
  // The caller hands back the record on_task_discovered returned, so no
  // lookup is needed — and the record is read-only from here (a task's
  // clock and clauses are final once it is discoverable), so only the
  // shadow table itself needs the lock.
  ClockRec* rec = static_cast<ClockRec*>(rec_opaque);
  std::vector<std::string> live;
  {
    SpinGuard g(lock_);
    {
      // Phase 1: check every sampled clause against the installed state.
      // Self-conflicts (duplicate clause addresses) are skipped by id.
      for (const Depend& d : rec->clauses) {
        const std::uint64_t a = reinterpret_cast<std::uint64_t>(d.addr);
        if (!would_sample_addr(a)) continue;
        checks_.fetch_add(1, std::memory_order_relaxed);
        const bool i_write = d.type != DependType::In;
        // Same-base conflicts: mirrors discovery's identity matching, so
        // every flag here is a pair discovery was obliged to order.
        if (auto it = shadow_.find(a); it != shadow_.end()) {
          ShadowEntry* e = it->second;
          const bool same_gen_set =
              e->mod_is_set && d.type == DependType::InOutSet;
          if (!same_gen_set) {
            for (const ShadowAccess& w : e->writers) {
              if (w.task_id == id) continue;
              if (cut_separated(w.task_id, id)) continue;
              if (ordered_rec(rec, w.task_id)) continue;
              flag(RaceFlag::Kind::SameBase, w, id, d, rec->label, a, live);
            }
          }
          if (i_write) {
            for (const ShadowAccess& r : e->readers) {
              if (r.task_id == id) continue;
              if (cut_separated(r.task_id, id)) continue;
              if (ordered_rec(rec, r.task_id)) continue;
              flag(RaceFlag::Kind::SameBase, r, id, d, rec->label, a, live);
            }
          }
        }
        // Cross-base range overlaps: discovery matches identity only, so
        // it cannot have ordered these — if both extent annotations are
        // truthful, the clauses are structurally unable to express the
        // needed dependence. Only extent-annotated clauses participate.
        if (d.bytes != 0 && max_range_ != 0) {
          const std::uint64_t lo = a;
          const std::uint64_t hi = range_end(a, d.bytes);
          const std::uint64_t scan_from =
              lo > max_range_ ? lo - max_range_ : 0;
          for (auto jt = shadow_.lower_bound(scan_from);
               jt != shadow_.end() && jt->first < hi; ++jt) {
            if (jt->first == a) continue;  // same base handled above
            ShadowEntry* e = jt->second;
            if (e->end <= lo) continue;
            auto overlap = [&](const ShadowAccess& o) {
              if (o.bytes == 0) return false;
              const std::uint64_t olo = e->start;
              const std::uint64_t ohi = range_end(e->start, o.bytes);
              return olo < hi && lo < ohi;
            };
            for (const ShadowAccess& w : e->writers) {
              if (w.task_id == id || !overlap(w)) continue;
              if (cut_separated(w.task_id, id)) continue;
              if (ordered_rec(rec, w.task_id)) continue;
              flag(RaceFlag::Kind::RangeOverlap, w, id, d, rec->label,
                   e->start, live);
            }
            if (i_write) {
              for (const ShadowAccess& r : e->readers) {
                if (r.task_id == id || !overlap(r)) continue;
                if (cut_separated(r.task_id, id)) continue;
                if (ordered_rec(rec, r.task_id)) continue;
                flag(RaceFlag::Kind::RangeOverlap, r, id, d, rec->label,
                     e->start, live);
              }
            }
          }
        }
      }
      // Phase 2: install. Same lock hold as the checks, so of any
      // unordered pair the later-starting task always sees the earlier
      // one's entry — detection does not depend on timing.
      for (const Depend& d : rec->clauses) {
        const std::uint64_t a = reinterpret_cast<std::uint64_t>(d.addr);
        if (!would_sample_addr(a)) continue;
        auto [it, inserted] = shadow_.try_emplace(a, nullptr);
        ShadowEntry* e;
        if (inserted) {
          TaskArena::Source src;
          e = new (shadow_arena_.allocate(0, src)) ShadowEntry();
          e->start = a;
          e->end = range_end(a, d.bytes);
          it->second = e;
        } else {
          e = it->second;
          const std::uint64_t hi = range_end(a, d.bytes);
          if (e->end < hi) e->end = hi;
        }
        if (e->end - e->start > max_range_) max_range_ = e->end - e->start;
        const ShadowAccess acc{id, d.type, d.bytes, rec->label};
        switch (d.type) {
          case DependType::In:
            if (e->readers.size() < ShadowEntry::kMaxReaders) {
              e->readers.push_back(acc);
            }
            break;
          case DependType::Out:
          case DependType::InOut:
            e->writers.clear();
            e->writers.push_back(acc);
            e->mod_is_set = false;
            e->readers.clear();
            break;
          case DependType::InOutSet:
            if (!e->mod_is_set) {
              // New generation: previous modification set and readers are
              // all ordered before this set's members (discovery gave the
              // members edges from both), so they stop being checkable —
              // exactly discovery's fold-into-gen_base step.
              e->writers.clear();
              e->readers.clear();
              e->mod_is_set = true;
            }
            if (e->writers.size() < ShadowEntry::kMaxWriters) {
              e->writers.push_back(acc);
            }
            break;
        }
      }
    }
  }
  SlotCache& c = slot_cache_[slot < slot_cache_.size() ? slot : 0];
  c.id = id;
  c.rec = rec;
  for (const std::string& line : live) {
    std::fprintf(stderr, "tdg %s\n", line.c_str());
  }
}

void RaceDetector::on_task_finish(std::uint64_t id, unsigned slot) {
  if (opts_.mode == RaceMode::Off) return;
  // Lock-free completion path: the slot cache carries the start-time
  // lookup across, so finishing a tracked task never re-takes lock_.
  SlotCache& c = slot_cache_[slot < slot_cache_.size() ? slot : 0];
  if (c.id == id && c.rec != nullptr) {
    finished_tracked_.fetch_add(1, std::memory_order_relaxed);
  }
  c.id = 0;
  c.rec = nullptr;
}

std::vector<RaceFlag> RaceDetector::take_flags() {
  SpinGuard g(lock_);
  std::vector<RaceFlag> out;
  out.swap(flags_);
  flag_keys_.clear();
  return out;
}

std::size_t RaceDetector::live_shadow_entries() const {
  SpinGuard g(lock_);
  return shadow_.size();
}

std::size_t RaceDetector::live_clock_records() const {
  return live_clocks_.load(std::memory_order_relaxed);
}

void RaceDetector::diagnostic(std::string& out) const {
  std::size_t shadow;
  {
    SpinGuard g(lock_);
    shadow = shadow_.size();
  }
  const std::size_t clocks = live_clocks_.load(std::memory_order_relaxed);
  const std::uint64_t cutoff = cutoff_.load(std::memory_order_relaxed);
  out += "race: mode=";
  out += race_mode_name(opts_.mode);
  out += " sample=1/" + std::to_string(opts_.sample_tasks);
  out += " tracked=" + std::to_string(tracked_count());
  out += " checks=" + std::to_string(check_count());
  out += " flags=" + std::to_string(flag_total());
  out += " shadow=" + std::to_string(shadow);
  out += " clocks=" + std::to_string(clocks);
  out += " cutoff=" + std::to_string(cutoff);
}

// ---------------------------------------------------------------------------
// Offline replay (tdg-trace race)
// ---------------------------------------------------------------------------

RaceScanResult race_scan(std::span<const AccessRecord> accesses,
                         std::span<const TraceEdge> edges,
                         std::span<const std::uint64_t> barriers,
                         std::span<const std::uint64_t> scope_clears,
                         const RaceOptions& opts) {
  RaceOptions o = sanitize(opts);
  if (o.mode == RaceMode::Off) o.mode = RaceMode::Strict;
  o.live_report = false;
  RaceDetector det(o, 1);
  RaceScanResult res;

  // Group the access stream into per-task clause runs (submission order:
  // ids are non-decreasing run to run).
  struct Run {
    std::uint64_t id;
    std::size_t begin;
    std::size_t n;
  };
  std::vector<Run> runs;
  for (std::size_t i = 0; i < accesses.size();) {
    std::size_t j = i;
    while (j < accesses.size() &&
           accesses[j].task_id == accesses[i].task_id) {
      ++j;
    }
    runs.push_back(Run{accesses[i].task_id, i, j - i});
    i = j;
  }

  // Edges applied in succ order: preds always carry smaller ids (they
  // were discovered earlier), so by the time an edge joins into succ the
  // pred's clock is transitively complete.
  std::vector<std::size_t> eidx(edges.size());
  std::iota(eidx.begin(), eidx.end(), std::size_t{0});
  std::stable_sort(eidx.begin(), eidx.end(),
                   [&](std::size_t a, std::size_t b) {
                     return edges[a].succ < edges[b].succ;
                   });

  std::vector<std::uint64_t> bar(barriers.begin(), barriers.end());
  std::sort(bar.begin(), bar.end());
  std::vector<std::uint64_t> cuts(scope_clears.begin(), scope_clears.end());
  std::sort(cuts.begin(), cuts.end());

  std::vector<Depend> deps;
  std::size_t bi = 0, si = 0, ei = 0;
  for (const Run& run : runs) {
    // A barrier cutoff c < run.id fired before this task was submitted.
    while (bi < bar.size() && bar[bi] < run.id) det.on_barrier(bar[bi++]);
    while (si < cuts.size() && cuts[si] < run.id) {
      det.on_scope_clear(cuts[si++]);
    }
    while (ei < eidx.size() && edges[eidx[ei]].succ <= run.id) {
      det.on_edge(edges[eidx[ei]].pred, edges[eidx[ei]].succ);
      ++ei;
    }
    deps.clear();
    for (std::size_t k = 0; k < run.n; ++k) {
      const AccessRecord& rec = accesses[run.begin + k];
      deps.push_back(Depend{reinterpret_cast<const void*>(rec.addr),
                            rec.type, rec.bytes});
    }
    void* rec = det.on_task_discovered(run.id, deps.data(), deps.size(),
                                       accesses[run.begin].label);
    // Sequential replay: "start" right after discovery. Timing cannot
    // change the flagged set — a flag depends only on graph ordering and
    // cut separation, both of which are replay-invariant.
    det.on_task_start(run.id, 0, rec);
    det.on_task_finish(run.id, 0);
  }

  res.flags = det.take_flags();
  res.flags_total = det.flag_total();

  // Escalation: replay the offline verifier over the flagged windows
  // (ids > the smallest window_lo among same-base flags) for the precise
  // report, exactly as the strict runtime does at a taskwait.
  bool any_same_base = false;
  std::uint64_t window_lo = ~std::uint64_t{0};
  for (const RaceFlag& f : res.flags) {
    if (f.kind == RaceFlag::Kind::SameBase) {
      any_same_base = true;
      if (f.window_lo < window_lo) window_lo = f.window_lo;
    } else {
      ++res.confirmed;  // offline is identity-based; confirmed as flagged
    }
  }
  if (any_same_base) {
    res.offline =
        verify_window(accesses, edges, barriers, scope_clears, window_lo);
    if (!res.offline.ok()) {
      for (const RaceFlag& f : res.flags) {
        if (f.kind == RaceFlag::Kind::SameBase) ++res.confirmed;
      }
    }
  }

  for (const RaceFlag& f : res.flags) {
    res.report += f.to_string();
    res.report += "\n";
  }
  if (any_same_base) {
    res.report += res.offline.summary();
  } else if (res.flags.empty()) {
    res.report += "race scan: no flags\n";
  }
  return res;
}

}  // namespace tdg
