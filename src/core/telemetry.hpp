// Live telemetry aggregation: a periodic sampler (driven from the same
// polling hook as the heartbeat detector) snapshots each rank's counters
// into a fixed-capacity ring; the rings are registered with a process-wide
// hub — the in-process analogue of piggybacking samples to rank 0 — which
// Universe::run drains into Report::telemetry and, when enabled, into
// telemetry.json on exit. The watchdog path dumps the same file on a hang,
// so chaos-soak runs show *when* retransmits and poisonings happened, not
// just final counts.
//
// Environment: TDG_TELEMETRY=on|dump (off by default; dump also writes the
// JSON file), TDG_TELEMETRY_FILE=<path> (default telemetry.json),
// TDG_TELEMETRY_PERIOD_MS=<ms> (default 5).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/common.hpp"

namespace tdg {

/// One point-in-time snapshot of a rank's counters.
struct TelemetrySample {
  std::uint64_t t_ns = 0;           ///< sample timestamp
  std::uint64_t tasks_executed = 0; ///< runtime exec.tasks counter
  std::uint64_t tasks_ready = 0;    ///< ready backlog at sample time
  std::uint64_t sends = 0;
  std::uint64_t recvs = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t allreduces = 0;
  std::uint64_t retransmits = 0;    ///< universe-wide reliable retransmits
  std::uint64_t dup_suppressed = 0; ///< universe-wide duplicate deliveries
  std::uint64_t giveups = 0;        ///< universe-wide reliable giveups
  std::uint64_t drops_injected = 0; ///< universe-wide injected drops
  std::int64_t ranks_failed = 0;    ///< detector's failed-rank count
};

struct TelemetryConfig {
  bool enabled = false;
  bool dump = false;  ///< write the JSON file on universe exit / hang
  std::uint64_t period_ns = 5'000'000;  ///< sampling period (5 ms)
  std::size_t ring_capacity = 1024;
  std::string path = "telemetry.json";
};

/// Parse the TDG_TELEMETRY* environment (see the header comment).
TelemetryConfig telemetry_env_config();

/// Fixed-capacity sample ring: the oldest sample is overwritten once full,
/// bounding memory like the paper bounds trace size by DRAM. push() is
/// serialized by the sampler's time gate; snapshot() may race it and takes
/// the same lock.
class TelemetryRing {
 public:
  explicit TelemetryRing(std::size_t capacity)
      : buf_(capacity > 0 ? capacity : 1) {}

  void push(const TelemetrySample& s) {
    SpinGuard g(mu_);
    buf_[head_] = s;
    head_ = (head_ + 1) % buf_.size();
    if (size_ < buf_.size()) {
      ++size_;
    } else {
      ++overwritten_;
    }
  }

  /// Samples oldest to newest.
  std::vector<TelemetrySample> snapshot() const {
    SpinGuard g(mu_);
    std::vector<TelemetrySample> out;
    out.reserve(size_);
    const std::size_t start = (head_ + buf_.size() - size_) % buf_.size();
    for (std::size_t i = 0; i < size_; ++i) {
      out.push_back(buf_[(start + i) % buf_.size()]);
    }
    return out;
  }

  std::size_t size() const {
    SpinGuard g(mu_);
    return size_;
  }
  /// Samples lost to ring wrap-around.
  std::size_t overwritten() const {
    SpinGuard g(mu_);
    return overwritten_;
  }

 private:
  mutable SpinLock mu_;
  std::vector<TelemetrySample> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::size_t overwritten_ = 0;
};

/// One rank's aggregated time-series.
struct RankTelemetry {
  int rank = 0;
  std::vector<TelemetrySample> samples;  ///< sorted by t_ns
};

/// Process-wide aggregation point. Each rank's sampler attaches its ring
/// here (ranks are threads of one process, so "piggybacking to rank 0"
/// is a registry lookup); Universe::run drains everything on exit, and
/// the watchdog dump path collects without detaching.
class TelemetryHub {
 public:
  static TelemetryHub& instance();

  std::shared_ptr<TelemetryRing> attach(int rank, std::size_t capacity);

  /// Per-rank series, merged across multiple rings of the same rank and
  /// sorted by time. Rings stay attached.
  std::vector<RankTelemetry> collect() const;
  /// collect(), then detach every ring — successive universes in one
  /// process must not inherit each other's series.
  std::vector<RankTelemetry> drain();

  static void write_json(std::ostream& os,
                         const std::vector<RankTelemetry>& telemetry);

 private:
  mutable std::mutex mu_;
  std::vector<std::pair<int, std::shared_ptr<TelemetryRing>>> rings_;
};

}  // namespace tdg
