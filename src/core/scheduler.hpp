// Per-thread work deques and the scheduling policies studied in the paper:
// LIFO depth-first (MPC-OMP's heuristic, favouring cache reuse by running a
// task's successors right after it) versus FIFO breadth-first.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

#include "core/common.hpp"
#include "core/deque.hpp"
#include "core/task.hpp"

namespace tdg {

/// Scheduling heuristic for ready tasks.
enum class SchedulePolicy : std::uint8_t {
  DepthFirstLifo,    ///< newly-ready successors run first (cache reuse)
  BreadthFirstFifo,  ///< oldest ready task runs first
};

/// Task-throttling configuration (Section 5, "Task Throttling").
/// `max_ready` mimics the GCC/LLVM ready-task threshold; `max_total` is the
/// MPC-OMP bound on all co-existing tasks, ready or not (default 10,000,000
/// in the paper). When a bound is exceeded the producer thread stops
/// discovering and executes tasks instead.
///
/// Under a shared WorkerPool these bounds double as the tenant's admission
/// quota: each runtime counts only its own ready/live tasks against its own
/// config, and a throttled tenant's producer self-helps on that tenant's
/// work alone — one tenant exceeding its quota never stalls another.
struct ThrottleConfig {
  std::size_t max_ready = std::numeric_limits<std::size_t>::max();
  std::size_t max_total = 10'000'000;
};

/// Per-thread work deque, a thin policy adapter over the lock-free
/// Chase-Lev deque (core/deque.hpp). The owner pushes and pops at the
/// front (the Chase-Lev *bottom*); thieves take from the back (the *top* —
/// the oldest work, which in depth-first mode is the coarsest-grained and
/// farthest from the victim's cache). In FIFO breadth-first mode the owner
/// wants the oldest task too, so it self-steals from the top: Chase-Lev
/// explicitly supports the owner competing through the steal CAS.
class WorkDeque {
 public:
  /// Owner only.
  void push_front(Task* t) { dq_.push_bottom(t); }
  /// Owner only: newest task (depth-first LIFO).
  Task* pop_front() { return dq_.pop_bottom(); }
  /// Oldest task via the steal CAS (FIFO owner path; safe from any
  /// thread).
  Task* pop_back() { return dq_.steal_top(); }
  /// Steal the oldest task (any thread).
  Task* steal() { return dq_.steal_top(); }

  bool empty() const { return dq_.approx_empty(); }
  std::size_t size() const { return dq_.approx_size(); }

 private:
  ChaseLevDeque<Task> dq_;
};

}  // namespace tdg
