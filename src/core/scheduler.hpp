// Per-thread work deques and the scheduling policies studied in the paper:
// LIFO depth-first (MPC-OMP's heuristic, favouring cache reuse by running a
// task's successors right after it) versus FIFO breadth-first.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <limits>

#include "core/common.hpp"
#include "core/task.hpp"

namespace tdg {

/// Scheduling heuristic for ready tasks.
enum class SchedulePolicy : std::uint8_t {
  DepthFirstLifo,    ///< newly-ready successors run first (cache reuse)
  BreadthFirstFifo,  ///< oldest ready task runs first
};

/// Task-throttling configuration (Section 5, "Task Throttling").
/// `max_ready` mimics the GCC/LLVM ready-task threshold; `max_total` is the
/// MPC-OMP bound on all co-existing tasks, ready or not (default 10,000,000
/// in the paper). When a bound is exceeded the producer thread stops
/// discovering and executes tasks instead.
struct ThrottleConfig {
  std::size_t max_ready = std::numeric_limits<std::size_t>::max();
  std::size_t max_total = 10'000'000;
};

/// A mutex-protected double-ended work queue. The owner pushes/pops at the
/// front; thieves take from the back (the oldest work, which in depth-first
/// mode is the coarsest-grained and farthest from the victim's cache).
class WorkDeque {
 public:
  void push_front(Task* t) {
    SpinGuard g(lock_);
    dq_.push_front(t);
  }
  void push_back(Task* t) {
    SpinGuard g(lock_);
    dq_.push_back(t);
  }
  Task* pop_front() {
    SpinGuard g(lock_);
    if (dq_.empty()) return nullptr;
    Task* t = dq_.front();
    dq_.pop_front();
    return t;
  }
  Task* pop_back() {
    SpinGuard g(lock_);
    if (dq_.empty()) return nullptr;
    Task* t = dq_.back();
    dq_.pop_back();
    return t;
  }
  /// Steal the oldest task.
  Task* steal() { return pop_back(); }

  bool empty() const {
    SpinGuard g(lock_);
    return dq_.empty();
  }
  std::size_t size() const {
    SpinGuard g(lock_);
    return dq_.size();
  }

 private:
  mutable SpinLock lock_;
  std::deque<Task*> dq_;
};

}  // namespace tdg
