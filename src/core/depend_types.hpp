// OpenMP-style dependence descriptors (the `depend` clause).
#pragma once

#include <cstdint>
#include <vector>

namespace tdg {

/// Dependence type of one `depend` clause item, matching OpenMP 5.1
/// semantics for `in`, `out`, `inout` and `inoutset`.
enum class DependType : std::uint8_t {
  In,        ///< read access: ordered after the last modifying access
  Out,       ///< write access: ordered after last modification and all reads
  InOut,     ///< read-write access: same ordering as Out
  InOutSet,  ///< concurrent-write set: mutually unordered within one
             ///< generation, ordered against any other access type
};

/// One item of a task's depend clause: a base address plus an access type.
/// Discovery matches on address identity only (OpenMP list-item base rule),
/// exactly as in the paper's applications which depend on block base
/// addresses. `bytes` is an optional extent annotation consumed by the
/// online race detector's interval shadow table and by the clause lint's
/// overlapping-range check; 0 means "identity only" and keeps the legacy
/// aggregate initializers `{addr, type}` valid.
struct Depend {
  const void* addr = nullptr;
  DependType type = DependType::In;
  std::uint32_t bytes = 0;

  static constexpr Depend in(const void* a) { return {a, DependType::In}; }
  static constexpr Depend out(const void* a) { return {a, DependType::Out}; }
  static constexpr Depend inout(const void* a) {
    return {a, DependType::InOut};
  }
  static constexpr Depend inoutset(const void* a) {
    return {a, DependType::InOutSet};
  }
  static constexpr Depend in(const void* a, std::uint32_t n) {
    return {a, DependType::In, n};
  }
  static constexpr Depend out(const void* a, std::uint32_t n) {
    return {a, DependType::Out, n};
  }
  static constexpr Depend inout(const void* a, std::uint32_t n) {
    return {a, DependType::InOut, n};
  }
  static constexpr Depend inoutset(const void* a, std::uint32_t n) {
    return {a, DependType::InOutSet, n};
  }

  friend bool operator==(const Depend&, const Depend&) = default;
};

/// Reusable buffer for building depend lists without per-task allocation.
using DependList = std::vector<Depend>;

}  // namespace tdg
