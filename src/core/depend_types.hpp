// OpenMP-style dependence descriptors (the `depend` clause).
#pragma once

#include <cstdint>
#include <vector>

namespace tdg {

/// Dependence type of one `depend` clause item, matching OpenMP 5.1
/// semantics for `in`, `out`, `inout` and `inoutset`.
enum class DependType : std::uint8_t {
  In,        ///< read access: ordered after the last modifying access
  Out,       ///< write access: ordered after last modification and all reads
  InOut,     ///< read-write access: same ordering as Out
  InOutSet,  ///< concurrent-write set: mutually unordered within one
             ///< generation, ordered against any other access type
};

/// One item of a task's depend clause: a base address plus an access type.
/// Only the address identity matters (OpenMP list-item base rule); ranges
/// are not modelled, exactly as in the paper's applications which depend on
/// block base addresses.
struct Depend {
  const void* addr = nullptr;
  DependType type = DependType::In;

  static constexpr Depend in(const void* a) { return {a, DependType::In}; }
  static constexpr Depend out(const void* a) { return {a, DependType::Out}; }
  static constexpr Depend inout(const void* a) {
    return {a, DependType::InOut};
  }
  static constexpr Depend inoutset(const void* a) {
    return {a, DependType::InOutSet};
  }

  friend bool operator==(const Depend&, const Depend&) = default;
};

/// Reusable buffer for building depend lists without per-task allocation.
using DependList = std::vector<Depend>;

}  // namespace tdg
