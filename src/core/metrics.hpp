// Unified metrics registry for the tdg runtime (counters, gauges, log2
// histograms), replacing the scattered ad-hoc counters with one namespace
// that discovery, scheduling, persistent replay and the MPI layer all
// write into.
//
// Design: writes are lock-free relaxed atomic adds into per-thread shards
// (cache-line aligned, one slot array per shard), so the hot path costs a
// branch on the enabled flag plus one uncontended fetch_add. Slots are
// pre-allocated at construction (kMaxSlots per shard) and never
// reallocated, so metrics may be registered while workers are running —
// registration only bumps a cursor under a spin lock. Reads (snapshot)
// sum across shards; they are racy-by-design against concurrent writers,
// which is fine for monitoring.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/common.hpp"

namespace tdg {

enum class MetricKind : std::uint8_t { Counter, Gauge, Histogram };

/// `TDG_METRICS` environment switch: `off`/`0`/`false` disables collection,
/// `dump` additionally emits a text report on Runtime/Universe teardown,
/// anything else (including unset) leaves the Config default in charge.
enum class MetricsEnvMode { Default, Off, On, Dump };
MetricsEnvMode metrics_env_mode();

/// Point-in-time copy of every registered metric, summed across shards.
struct MetricsSnapshot {
  struct Entry {
    std::string name;
    MetricKind kind = MetricKind::Counter;
    std::uint64_t value = 0;  ///< counter total / histogram sample count
    std::int64_t level = 0;   ///< gauge level (delta: change between snaps)
    std::uint64_t sum = 0;    ///< histogram: sum of observed values
    /// Histogram: buckets[i] counts samples whose bit width is i, i.e.
    /// bucket 0 holds zeros and bucket i>=1 holds values in [2^(i-1), 2^i).
    /// The last bucket absorbs everything wider.
    std::vector<std::uint64_t> buckets;

    double mean() const {
      return value > 0 ? static_cast<double>(sum) / static_cast<double>(value)
                       : 0.0;
    }

    /// Approximate percentile (p in (0, 1]) from the log2 buckets: walk
    /// the cumulative counts to the target rank and interpolate linearly
    /// inside the bucket's [2^(i-1), 2^i) value range. Exact for zeros
    /// (bucket 0); within a factor of 2 otherwise, which is what a
    /// log-scale latency histogram can promise.
    double percentile(double p) const;
  };

  std::uint64_t taken_ns = 0;
  std::vector<Entry> entries;

  const Entry* find(std::string_view name) const;
  /// Counter/histogram total by name; 0 when absent.
  std::uint64_t value(std::string_view name) const;

  /// Per-metric difference `newer - older`, matched by name. Metrics
  /// absent from `older` keep their `newer` values; gauges report the
  /// level change.
  static MetricsSnapshot delta(const MetricsSnapshot& newer,
                               const MetricsSnapshot& older);

  /// Element-wise sum of two snapshots, matched by name (union of both
  /// entry sets). Used by a shared WorkerPool to fold detaching tenants'
  /// final counters into the aggregate its teardown dump prints, keeping
  /// untagged totals available next to the per-tenant tagged sections.
  static MetricsSnapshot merge(const MetricsSnapshot& a,
                               const MetricsSnapshot& b);

  /// Human-readable table. With `nonzero_only`, rows whose value, level
  /// and histogram count are all zero are skipped (watchdog reports).
  /// A non-negative `tenant` appends a `{tenant=<id>}` dimension to every
  /// metric name (shared-pool per-tenant dumps); -1 keeps the plain names.
  void write_text(std::ostream& os, bool nonzero_only = false,
                  int tenant = -1) const;
  /// JSON object: {"taken_ns": ..., "metrics": {"name": {...}, ...}}.
  /// A non-negative `tenant` adds a top-level "tenant" field.
  void write_json(std::ostream& os, int tenant = -1) const;
};

class MetricsRegistry {
 public:
  /// log2 buckets per histogram (bit widths 0..kHistBuckets-1, clamped).
  static constexpr std::uint32_t kHistBuckets = 32;
  /// Slot budget per shard; a histogram consumes kHistBuckets + 1 slots.
  static constexpr std::uint32_t kMaxSlots = 256;

  /// Opaque handle to a registered metric. Value-type, cheap to copy; a
  /// default-constructed id is invalid and all operations on it no-op.
  struct Id {
    std::uint32_t slot = UINT32_MAX;
    bool valid() const { return slot != UINT32_MAX; }
  };

  explicit MetricsRegistry(unsigned nshards, bool enabled = true);
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Register (or look up) a metric. Re-registering an existing name with
  /// the same kind returns the same id, so independently-constructed
  /// components (e.g. successive RequestPollers) share one counter.
  Id counter(std::string_view name);
  Id gauge(std::string_view name);
  Id histogram(std::string_view name);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Increment a counter. `shard` is a routing hint (the caller's thread
  /// slot); out-of-range hints are folded in.
  void add(Id id, std::uint64_t v = 1, unsigned shard = 0) {
    if (!enabled() || !id.valid()) return;
    slot(shard, id.slot).fetch_add(v, std::memory_order_relaxed);
  }

  /// Move a gauge up or down (levels are summed across shards, so
  /// matched +1/-1 pairs from different threads still cancel).
  void gauge_add(Id id, std::int64_t v, unsigned shard = 0) {
    if (!enabled() || !id.valid()) return;
    slot(shard, id.slot)
        .fetch_add(static_cast<std::uint64_t>(v), std::memory_order_relaxed);
  }

  /// Record one histogram sample.
  void observe(Id id, std::uint64_t value, unsigned shard = 0) {
    if (!enabled() || !id.valid()) return;
    slot(shard, id.slot + bucket_of(value))
        .fetch_add(1, std::memory_order_relaxed);
    slot(shard, id.slot + kHistBuckets)
        .fetch_add(value, std::memory_order_relaxed);
  }

  /// Bucket index for a sample: its bit width, clamped to the last bucket
  /// (bucket 0 = zeros, bucket i = [2^(i-1), 2^i)).
  static std::uint32_t bucket_of(std::uint64_t value) {
    std::uint32_t w = 0;
    while (value != 0) {
      ++w;
      value >>= 1;
    }
    return w < kHistBuckets ? w : kHistBuckets - 1;
  }

  /// Sum one registered counter/gauge slot across shards — the telemetry
  /// sampler's cheap single-metric read (no snapshot allocation).
  std::uint64_t read(Id id) const {
    if (!id.valid()) return 0;
    std::uint64_t total = 0;
    for (const Shard& sh : shards_) {
      total += sh.slots[id.slot].load(std::memory_order_relaxed);
    }
    return total;
  }

  MetricsSnapshot snapshot() const;

  unsigned num_shards() const {
    return static_cast<unsigned>(shards_.size());
  }
  std::size_t num_metrics() const;
  std::size_t slots_used() const;

 private:
  struct alignas(kCacheLine) Shard {
    std::unique_ptr<std::atomic<std::uint64_t>[]> slots;
  };
  struct Info {
    std::string name;
    MetricKind kind;
    std::uint32_t slot;
    std::uint32_t nslots;
  };

  Id register_metric(std::string_view name, MetricKind kind,
                     std::uint32_t nslots);

  std::atomic<std::uint64_t>& slot(unsigned shard, std::uint32_t s) {
    return shards_[shard < shards_.size() ? shard : shard % shards_.size()]
        .slots[s];
  }

  std::atomic<bool> enabled_;
  std::vector<Shard> shards_;
  mutable SpinLock reg_lock_;  // guards infos_ / next_slot_
  std::vector<Info> infos_;
  std::uint32_t next_slot_ = 0;
};

}  // namespace tdg
