// Deterministic discrete-event simulator of the tasking runtime + MPI
// cluster. It replays a SimGraph per rank on virtual cores, mirroring the
// real runtime's semantics: sequential discovery on the producer core
// overlapped with execution, LIFO depth-first scheduling with stealing,
// edge pruning, throttling, persistent-graph replay with its implicit
// barrier, and eager/rendezvous/allreduce communication coupling ranks.
//
// Virtual durations come from the cost models in params.hpp: a cache
// hierarchy rewarding depth-first producer->successor locality, DRAM
// contention growing with concurrently-working cores, and per-task/
// per-edge discovery costs. This is what lets the repository regenerate
// the paper's figures on arbitrary core counts deterministically.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/graph.hpp"
#include "sim/params.hpp"

namespace tdg::sim {

struct SimConfig {
  MachineParams machine;
  DiscoveryCosts discovery;
  NetworkParams network;
  SimPolicy policy = SimPolicy::DepthFirstLifo;
  SimThrottle throttle;
  /// Persistent mode: the graph describes ONE iteration, replayed
  /// `iterations` times with the implicit end-of-iteration barrier.
  /// Non-persistent mode: the graph already contains all iterations.
  bool persistent = false;
  int iterations = 1;
  int nranks = 1;
  /// Representative-rank mode: simulate one rank; peers are virtual and
  /// post messages/collectives with NetworkParams::peer_skew. Used for the
  /// 8..4096-process scaling study (Table 3).
  bool representative = false;
  /// Table 1's "Non overlapped" configuration: execution is blocked until
  /// the TDG has been fully discovered, giving the scheduler in-depth
  /// knowledge of all dependencies before any decision.
  bool non_overlapped = false;
  /// Scheduling cost charged per executed task (overhead bucket).
  double sched_cost = 0.2e-6;
  bool trace = false;  ///< collect per-task records (Gantt, Fig. 8)
  int trace_rank = -1;  ///< -1 = trace all ranks, else only this rank
};

/// One executed (virtual) task instance.
struct SimTraceRecord {
  std::uint32_t task = 0;
  int core = 0;
  double start = 0;
  double end = 0;
  std::uint32_t iteration = 0;
  const char* label = "";
};

/// Hardware-counter-style cache statistics (Fig. 2 (e,f) substitutes).
struct CacheStats {
  std::uint64_t l1_misses = 0;  ///< lines missing L1 (hit L2 or beyond)
  std::uint64_t l2_misses = 0;  ///< lines missing L2 (hit L3 or DRAM)
  std::uint64_t l3_misses = 0;  ///< lines from DRAM
  double stall_seconds = 0;     ///< memory stall time inside task work
};

/// Communication metrics per the paper's Section 4.1 methodology.
struct CommMetrics {
  double total_comm_seconds = 0;  ///< sum of c(r) over send+collective reqs
  double p2p_seconds = 0;
  double collective_seconds = 0;
  double overlapped_work = 0;     ///< sum of ov(r): work during c(r) windows
  std::uint64_t requests = 0;
  /// r_overlap = W / (n_threads * C), Section 4.1.
  double overlap_ratio(int nthreads) const {
    const double denom = nthreads * total_comm_seconds;
    return denom > 0 ? overlapped_work / denom : 0.0;
  }
};

struct RankResult {
  double work = 0;       ///< cumulated seconds over cores
  double overhead = 0;   ///< scheduling + discovery costs
  double idle = 0;       ///< makespan * cores - work - overhead
  double discovery_seconds = 0;  ///< producer time spent discovering
  std::vector<double> discovery_per_iteration;
  std::uint64_t tasks_executed = 0;
  std::uint64_t edges_created = 0;
  std::uint64_t edges_pruned = 0;
  CacheStats cache;
  CommMetrics comm;
  std::vector<SimTraceRecord> trace;

  double avg_work(int cores) const { return work / cores; }
  double avg_idle(int cores) const { return idle / cores; }
  double avg_overhead(int cores) const { return overhead / cores; }
};

struct SimResult {
  double makespan = 0;  ///< virtual seconds, global
  std::vector<RankResult> ranks;
};

class ClusterSim {
 public:
  explicit ClusterSim(SimConfig cfg);
  ~ClusterSim();
  ClusterSim(const ClusterSim&) = delete;
  ClusterSim& operator=(const ClusterSim&) = delete;

  /// Assign the TDG of one rank. The graph must outlive run(). In
  /// representative mode only rank 0 is simulated.
  void set_graph(int rank, const SimGraph* graph);
  /// Convenience: same graph on every rank (SPMD).
  void set_all_graphs(const SimGraph* graph);

  SimResult run();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tdg::sim
