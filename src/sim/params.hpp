// Cost-model parameters of the execution simulator.
//
// The simulator reproduces the *mechanisms* the paper measures — discovery
// rate vs execution rate, cache reuse under depth-first scheduling, DRAM
// contention, eager/rendezvous communication and collective coupling — on
// deterministic virtual time. Default values are calibrated against the
// paper's Skylake node (Fig. 2, Table 2): ~1 us task creation, ~0.15 us
// per edge, persistent replay ~10x cheaper per iteration than discovery.
#pragma once

#include <cstddef>
#include <cstdint>

namespace tdg::sim {

/// One multi-core NUMA domain (an "MPI process slot" in the paper's runs).
struct MachineParams {
  int cores = 24;

  // Cache hierarchy (per-core L1/L2, shared L3), bytes.
  double l1_bytes = 32e3;
  double l2_bytes = 1e6;
  double l3_bytes = 33e6;

  // Cost of bringing one byte from each level into the pipeline, seconds.
  // (Inverse bandwidths; DRAM is additionally subject to contention.)
  double l1_cost_per_byte = 1.0 / 400e9;
  double l2_cost_per_byte = 1.0 / 200e9;
  double l3_cost_per_byte = 1.0 / 100e9;
  double dram_cost_per_byte = 1.0 / 25e9;

  /// Number of concurrent DRAM-bound cores the memory controller sustains
  /// at full speed; beyond it, DRAM access cost scales linearly (the
  /// paper's "work time inflation" under memory contention).
  double dram_streams = 6.0;
};

/// TDG-discovery cost model (the producer thread's work, Section 3).
struct DiscoveryCosts {
  double per_task = 0.9e-6;    ///< descriptor allocation, ICV setup
  double per_dep = 0.25e-6;    ///< hashing one depend-clause item
  double per_edge = 0.15e-6;   ///< materializing one edge
  double per_pruned = 0.05e-6; ///< detecting an already-consumed pred
  /// Persistent replay: the firstprivate memcpy (optimization (p)).
  double per_replay = 0.09e-6;
};

/// Interconnect model (BXI-like, Section 4: eager for O(1)/O(s) messages,
/// rendezvous for O(s^2)).
struct NetworkParams {
  std::size_t eager_threshold = 8 * 1024;  ///< bytes
  double eager_latency = 2e-6;             ///< seconds
  double rendezvous_latency = 8e-6;
  double bandwidth = 12e9;  ///< bytes/s per link

  // Allreduce: alpha * ceil(log2 P) + beta, plus arrival coupling.
  double allreduce_alpha = 3e-6;
  double allreduce_beta = 2e-6;

  /// Representative-rank mode: virtual peers post a collective/message
  /// this many seconds of relative skew after the local rank (models load
  /// imbalance across the machine; grows slowly with P).
  double peer_skew = 20e-6;
};

/// Scheduling policy mirrored from the real runtime.
enum class SimPolicy : std::uint8_t { DepthFirstLifo, BreadthFirstFifo };

struct SimThrottle {
  std::size_t max_ready = static_cast<std::size_t>(-1);
  std::size_t max_total = 10'000'000;
};

}  // namespace tdg::sim
