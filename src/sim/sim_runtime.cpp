#include "sim/sim_runtime.hpp"

#include <cmath>
#include <cstring>
#include <deque>
#include <queue>
#include <unordered_map>

#include "core/common.hpp"

namespace tdg::sim {

namespace {

enum class EvType : std::uint8_t {
  ProducerStep,  ///< producer core became free: discover / help / barrier
  TaskFinish,    ///< compute task body completed on a core
  CoreFree,      ///< core released after posting a communication
  CommComplete,  ///< detached communication completed (network time)
  TaskResolve,   ///< base discovery done: resolve edges against live state
  TaskVisible,   ///< discovery of this task finished: it may become ready
};

struct Ev {
  double t = 0;
  std::uint64_t seq = 0;  // FIFO tie-break => deterministic replay
  EvType type = EvType::ProducerStep;
  int rank = 0;
  int core = 0;
  std::uint32_t task = 0;
};

struct EvLater {
  bool operator()(const Ev& a, const Ev& b) const {
    if (a.t != b.t) return a.t > b.t;
    return a.seq > b.seq;
  }
};

struct P2PKey {
  int src, dst, tag;
  bool operator==(const P2PKey&) const = default;
};
struct P2PKeyHash {
  std::size_t operator()(const P2PKey& k) const {
    std::uint64_t h = static_cast<std::uint32_t>(k.src);
    h = h * 1000003u + static_cast<std::uint32_t>(k.dst);
    h = h * 1000003u + static_cast<std::uint32_t>(k.tag);
    return static_cast<std::size_t>(h * 0x9E3779B97F4A7C15ull >> 16);
  }
};

struct PostedMsg {
  double t;            // post time
  std::uint64_t bytes;
  int rank;
  std::uint32_t task;
};

struct CollSlot {
  int posted = 0;
  double max_t = 0;
  std::vector<std::pair<int, std::uint32_t>> members;  // (rank, task)
};

}  // namespace

struct ClusterSim::Impl {
  explicit Impl(SimConfig c) : cfg(std::move(c)) {
    const int n = cfg.representative ? 1 : cfg.nranks;
    ranks.resize(static_cast<std::size_t>(n));
  }

  // ---- per-rank simulation state -----------------------------------------
  struct TaskState {
    std::int32_t npred = 0;
    bool discovered = false;
    bool finished = false;
    bool comm_posted = false;
    int exec_core = -1;
    double finish_coreclk = 0;
    double finish_globalclk = 0;
    double cur_work = 0;         // duration of the running instance
    double comm_post_t = 0;      // communication span start
    double comm_post_integral = 0;
  };

  struct Core {
    std::deque<std::uint32_t> dq;
    bool busy = false;
    double byte_clk = 0;  // monotonic bytes executed on this core
    double work = 0;
    double overhead = 0;
  };

  struct Rank {
    const SimGraph* g = nullptr;
    std::vector<std::vector<std::uint32_t>> succs;
    std::vector<TaskState> ts;
    std::vector<Core> cores;
    double global_clk = 0;  // monotonic bytes executed on this rank
    std::uint32_t cursor = 0;
    int iteration = 0;
    std::uint32_t finished_count = 0;
    std::size_t ready = 0;
    std::size_t live = 0;
    bool producer_waiting = false;
    bool done = false;
    double end_time = 0;
    std::uint64_t coll_seq = 0;
    // overlap accounting
    double work_integral = 0;
    double integral_t = 0;
    int active_compute = 0;
    double iter_discovery = 0;  // discovery seconds, current iteration
    RankResult res;
  };

  SimConfig cfg;
  std::vector<Rank> ranks;
  std::priority_queue<Ev, std::vector<Ev>, EvLater> queue;
  std::uint64_t seq = 0;
  double now = 0;
  std::unordered_map<P2PKey, std::pair<std::deque<PostedMsg>,
                                       std::deque<PostedMsg>>,
                     P2PKeyHash>
      p2p;  // sends, recvs
  std::unordered_map<std::uint64_t, CollSlot> collectives;

  void push(double t, EvType type, int rank, int core = 0,
            std::uint32_t task = 0) {
    queue.push(Ev{t, seq++, type, rank, core, task});
  }

  // ---- helpers -------------------------------------------------------------
  const SimTaskDesc& desc(const Rank& r, std::uint32_t t) const {
    return r.g->tasks[t];
  }

  void advance_integral(Rank& r, double t) {
    r.work_integral += r.active_compute * (t - r.integral_t);
    r.integral_t = t;
  }

  double allreduce_close_time() const {
    const double p = std::max(2, cfg.nranks);
    return cfg.network.allreduce_alpha * std::ceil(std::log2(p)) +
           cfg.network.allreduce_beta;
  }
  double transfer_time(std::uint64_t bytes) const {
    const bool eager = bytes <= cfg.network.eager_threshold;
    return (eager ? cfg.network.eager_latency
                  : cfg.network.rendezvous_latency) +
           static_cast<double>(bytes) / cfg.network.bandwidth;
  }

  void wake_producer(int rank, double t) {
    Rank& r = ranks[static_cast<std::size_t>(rank)];
    if (r.producer_waiting) {
      r.producer_waiting = false;
      push(t, EvType::ProducerStep, rank);
    }
  }

  // Push a ready task to `core`'s deque head and try to dispatch idle cores.
  void make_ready(int rank, std::uint32_t task, int core, double t) {
    Rank& r = ranks[static_cast<std::size_t>(rank)];
    if (desc(r, task).attrs.kind == SimTaskKind::Redirect) {
      finish_common(rank, task, t);  // internal nodes complete inline
      return;
    }
    r.cores[static_cast<std::size_t>(core)].dq.push_front(task);
    ++r.ready;
    dispatch_idle(rank, t);
    wake_producer(rank, t);
  }

  // Owner pop / steal mirroring the real WorkDeque discipline.
  bool obtain(Rank& r, int core, std::uint32_t& out) {
    Core& own = r.cores[static_cast<std::size_t>(core)];
    if (!own.dq.empty()) {
      if (cfg.policy == SimPolicy::DepthFirstLifo) {
        out = own.dq.front();
        own.dq.pop_front();
      } else {
        out = own.dq.back();
        own.dq.pop_back();
      }
      return true;
    }
    const int n = static_cast<int>(r.cores.size());
    for (int k = 1; k < n; ++k) {
      Core& v = r.cores[static_cast<std::size_t>((core + k) % n)];
      if (!v.dq.empty()) {
        out = v.dq.back();  // steal the oldest
        v.dq.pop_back();
        return true;
      }
    }
    return false;
  }

  bool throttled(const Rank& r) const {
    return r.ready > cfg.throttle.max_ready ||
           r.live > cfg.throttle.max_total;
  }

  void dispatch_idle(int rank, double t) {
    Rank& r = ranks[static_cast<std::size_t>(rank)];
    // Non-overlapped mode (Table 1): nothing executes until the whole
    // graph has been discovered.
    if (cfg.non_overlapped &&
        r.cursor < static_cast<std::uint32_t>(r.g->tasks.size())) {
      return;
    }
    // Core 0 is the producer; it picks up work through ProducerStep.
    for (int c = 1; c < static_cast<int>(r.cores.size()); ++c) {
      if (r.cores[static_cast<std::size_t>(c)].busy) continue;
      std::uint32_t task;
      if (!obtain(r, c, task)) break;  // nothing stealable anywhere
      start_execution(rank, c, task, t);
    }
  }

  // ---- cost model -----------------------------------------------------------
  double compute_duration(Rank& r, int core, std::uint32_t task) {
    const auto& a = desc(r, task).attrs;
    const auto& m = cfg.machine;
    const double contention =
        std::max(1.0, static_cast<double>(r.active_compute + 1) /
                          m.dram_streams);
    double remaining = static_cast<double>(a.bytes);
    double mem = 0;
    std::uint64_t lines;
    Core& c = r.cores[static_cast<std::size_t>(core)];
    for (std::uint32_t p : desc(r, task).preds) {
      if (remaining <= 0) break;
      const TaskState& pt = r.ts[p];
      const double pb = static_cast<double>(desc(r, p).attrs.bytes);
      if (pb <= 0 || !pt.finished) continue;
      const double b = std::min(pb, remaining);
      remaining -= b;
      lines = static_cast<std::uint64_t>(b / 64.0);
      // A level holds the data only if footprint + intervening traffic
      // since the producer wrote it still fits its capacity.
      const double core_span = c.byte_clk - pt.finish_coreclk + b;
      const double l3_span = r.global_clk - pt.finish_globalclk + b;
      if (pt.exec_core == core && core_span <= m.l1_bytes) {
        mem += b * m.l1_cost_per_byte;  // still L1-resident: no misses
      } else if (pt.exec_core == core && core_span <= m.l2_bytes) {
        mem += b * m.l2_cost_per_byte;
        r.res.cache.l1_misses += lines;
      } else if (l3_span <= m.l3_bytes) {
        mem += b * m.l3_cost_per_byte;
        r.res.cache.l1_misses += lines;
        r.res.cache.l2_misses += lines;
      } else {
        mem += b * m.dram_cost_per_byte * contention;
        r.res.cache.l1_misses += lines;
        r.res.cache.l2_misses += lines;
        r.res.cache.l3_misses += lines;
      }
    }
    if (remaining > 0) {  // cold data: first touch comes from DRAM
      lines = static_cast<std::uint64_t>(remaining / 64.0);
      mem += remaining * m.dram_cost_per_byte * contention;
      r.res.cache.l1_misses += lines;
      r.res.cache.l2_misses += lines;
      r.res.cache.l3_misses += lines;
    }
    r.res.cache.stall_seconds += mem;
    return a.cpu_seconds + mem;
  }

  // ---- execution -----------------------------------------------------------
  void start_execution(int rank, int core, std::uint32_t task, double t) {
    Rank& r = ranks[static_cast<std::size_t>(rank)];
    TaskState& ts = r.ts[task];
    --r.ready;
    Core& c = r.cores[static_cast<std::size_t>(core)];
    c.busy = true;
    c.overhead += cfg.sched_cost;
    const auto& a = desc(r, task).attrs;
    switch (a.kind) {
      case SimTaskKind::Compute:
      case SimTaskKind::Redirect: {
        advance_integral(r, t);
        const double dur = compute_duration(r, core, task);
        ++r.active_compute;
        ts.cur_work = dur;
        ts.exec_core = core;
        push(t + cfg.sched_cost + dur, EvType::TaskFinish, rank, core, task);
        break;
      }
      case SimTaskKind::Send:
      case SimTaskKind::Recv:
      case SimTaskKind::Allreduce: {
        // Posting occupies the core for cpu_seconds; the task itself is
        // detached and completes at network time.
        const double t_post = t + cfg.sched_cost + a.cpu_seconds;
        c.work += a.cpu_seconds;
        ts.exec_core = core;
        ts.cur_work = a.cpu_seconds;
        advance_integral(r, t);
        // The span starts when the core begins posting, matching the
        // overlap integral's origin (ratio stays <= 1 by construction).
        ts.comm_post_t = t;
        ts.comm_post_integral = r.work_integral;
        ts.comm_posted = true;
        post_comm(rank, task, t_post);
        push(t_post, EvType::CoreFree, rank, core, task);
        break;
      }
    }
  }

  void post_comm(int rank, std::uint32_t task, double t) {
    Rank& r = ranks[static_cast<std::size_t>(rank)];
    const auto& a = desc(r, task).attrs;
    const bool eager = a.msg_bytes <= cfg.network.eager_threshold;
    if (cfg.representative) {
      double tc = t;
      switch (a.kind) {
        case SimTaskKind::Send:
          tc = eager ? t
                     : t + cfg.network.peer_skew + transfer_time(a.msg_bytes);
          break;
        case SimTaskKind::Recv:
          tc = t + cfg.network.peer_skew + transfer_time(a.msg_bytes);
          break;
        case SimTaskKind::Allreduce:
          tc = t + cfg.network.peer_skew + allreduce_close_time();
          break;
        default:
          break;
      }
      push(tc, EvType::CommComplete, rank, 0, task);
      return;
    }
    switch (a.kind) {
      case SimTaskKind::Send: {
        if (eager) push(t, EvType::CommComplete, rank, 0, task);
        P2PKey key{rank, a.peer, a.tag};
        auto& [sends, recvs] = p2p[key];
        if (!recvs.empty()) {
          const PostedMsg rv = recvs.front();
          recvs.pop_front();
          const double tend =
              std::max(t, rv.t) + transfer_time(a.msg_bytes);
          push(tend, EvType::CommComplete, rv.rank, 0, rv.task);
          if (!eager) push(tend, EvType::CommComplete, rank, 0, task);
        } else {
          sends.push_back(PostedMsg{t, a.msg_bytes, rank, task});
        }
        break;
      }
      case SimTaskKind::Recv: {
        P2PKey key{a.peer, rank, a.tag};
        auto& [sends, recvs] = p2p[key];
        if (!sends.empty()) {
          const PostedMsg sd = sends.front();
          sends.pop_front();
          const bool s_eager = sd.bytes <= cfg.network.eager_threshold;
          const double tend = std::max(t, sd.t) + transfer_time(sd.bytes);
          push(tend, EvType::CommComplete, rank, 0, task);
          if (!s_eager) push(tend, EvType::CommComplete, sd.rank, 0, sd.task);
        } else {
          recvs.push_back(PostedMsg{t, a.msg_bytes, rank, task});
        }
        break;
      }
      case SimTaskKind::Allreduce: {
        CollSlot& slot = collectives[r.coll_seq++];
        slot.max_t = std::max(slot.max_t, t);
        slot.members.emplace_back(rank, task);
        if (++slot.posted == cfg.nranks) {
          const double tend = slot.max_t + allreduce_close_time();
          for (auto [rk, tk] : slot.members) {
            push(tend, EvType::CommComplete, rk, 0, tk);
          }
          collectives.erase(r.coll_seq - 1);
        }
        break;
      }
      default:
        break;
    }
  }

  // Completion bookkeeping shared by compute finish / comm completion /
  // inline redirect nodes: release successors, count, detect barriers.
  void finish_common(int rank, std::uint32_t task, double t) {
    Rank& r = ranks[static_cast<std::size_t>(rank)];
    TaskState& ts = r.ts[task];
    ts.finished = true;
    ++r.finished_count;
    ++r.res.tasks_executed;
    if (r.live > 0) --r.live;
    for (std::uint32_t s : r.succs[task]) {
      TaskState& st = r.ts[s];
      // Successors not yet discovered hold no edge to us (it will be
      // pruned at their discovery); only discovered ones carry a count.
      if (st.discovered && --st.npred == 0) {
        make_ready(rank, s, ts.exec_core >= 0 ? ts.exec_core : 0, t);
      }
    }
    wake_producer(rank, t);
    check_rank_completion(rank, t);
  }

  void on_task_finish(int rank, int core, std::uint32_t task, double t) {
    Rank& r = ranks[static_cast<std::size_t>(rank)];
    TaskState& ts = r.ts[task];
    Core& c = r.cores[static_cast<std::size_t>(core)];
    advance_integral(r, t);
    --r.active_compute;
    c.work += ts.cur_work;
    const auto& a = desc(r, task).attrs;
    c.byte_clk += static_cast<double>(a.bytes);
    r.global_clk += static_cast<double>(a.bytes);
    ts.finish_coreclk = c.byte_clk;
    ts.finish_globalclk = r.global_clk;
    if (cfg.trace && (cfg.trace_rank < 0 || cfg.trace_rank == rank)) {
      // Persistent replays inherit the rank's live iteration counter.
      const std::uint32_t iter =
          cfg.persistent ? static_cast<std::uint32_t>(r.iteration)
                         : a.iteration;
      r.res.trace.push_back(
          SimTraceRecord{task, core, t - ts.cur_work, t, iter, a.label});
    }
    // The core stays marked busy through successor release: dispatch_idle
    // inside finish_common must not hand it a second task (this handler
    // picks the next one itself, depth-first from its own deque head).
    finish_common(rank, task, t);
    c.busy = false;
    if (r.done) return;
    if (core == 0) {
      push(t, EvType::ProducerStep, rank);
    } else {
      std::uint32_t next;
      if (obtain(r, core, next)) {
        start_execution(rank, core, next, t);
      }
    }
  }

  void on_comm_complete(int rank, std::uint32_t task, double t) {
    Rank& r = ranks[static_cast<std::size_t>(rank)];
    TaskState& ts = r.ts[task];
    advance_integral(r, t);
    const auto& a = desc(r, task).attrs;
    // Section 4.1 metrics: c(r) for send + collective requests, and the
    // work overlapped with them.
    if (a.kind == SimTaskKind::Send || a.kind == SimTaskKind::Allreduce) {
      const double span = t - ts.comm_post_t;
      r.res.comm.total_comm_seconds += span;
      if (a.kind == SimTaskKind::Send) {
        r.res.comm.p2p_seconds += span;
      } else {
        r.res.comm.collective_seconds += span;
      }
      r.res.comm.overlapped_work +=
          r.work_integral - ts.comm_post_integral;
      ++r.res.comm.requests;
    }
    if (cfg.trace && (cfg.trace_rank < 0 || cfg.trace_rank == rank)) {
      const std::uint32_t iter =
          cfg.persistent ? static_cast<std::uint32_t>(r.iteration)
                         : a.iteration;
      r.res.trace.push_back(SimTraceRecord{task, ts.exec_core,
                                           ts.comm_post_t, t, iter,
                                           a.label});
    }
    finish_common(rank, task, t);
    if (!r.done) dispatch_idle(rank, t);
  }

  // ---- discovery (producer core) -------------------------------------------
  void on_producer_step(int rank, double t) {
    Rank& r = ranks[static_cast<std::size_t>(rank)];
    if (r.done || r.cores[0].busy) return;
    const std::uint32_t n = static_cast<std::uint32_t>(r.g->tasks.size());
    const bool discovering = r.cursor < n;
    if (discovering && (!throttled(r) || cfg.non_overlapped)) {
      discover_next(rank, t);
      return;
    }
    // Throttled, or discovery done: help execute (the producer is one of
    // the team's threads, "including the producer", Section 1).
    dispatch_idle(rank, t);  // kick workers (needed after non-overlapped
                             // discovery completes)
    std::uint32_t task;
    if (obtain(r, 0, task)) {
      start_execution(rank, 0, task, t);
      return;
    }
    maybe_advance_iteration(rank, t);
    if (!r.done) r.producer_waiting = true;
  }

  void discover_next(int rank, double t) {
    Rank& r = ranks[static_cast<std::size_t>(rank)];
    const std::uint32_t n = static_cast<std::uint32_t>(r.g->tasks.size());
    const bool replaying = cfg.persistent && r.iteration > 0;
    if (replaying) {
      // Internal redirect nodes are not re-submitted by the producer.
      while (r.cursor < n &&
             desc(r, r.cursor).attrs.kind == SimTaskKind::Redirect) {
        ++r.cursor;
      }
      if (r.cursor == n) {
        push(t, EvType::ProducerStep, rank);
        return;
      }
    }
    const std::uint32_t task = r.cursor++;
    const SimTaskDesc& d = desc(r, task);
    const DiscoveryCosts& dc = cfg.discovery;
    // The producer core stays occupied through the discovery interval; the
    // TaskVisible event (lower seq, same time) releases it before the
    // chained ProducerStep runs.
    r.cores[0].busy = true;
    if (replaying) {
      const double cost = dc.per_replay;  // the firstprivate memcpy
      charge_discovery(r, cost);
      push(t + cost, EvType::TaskVisible, rank, 0, task);
      push(t + cost, EvType::ProducerStep, rank);
      return;
    }
    // Two-phase: descriptor allocation + clause hashing now; edges are
    // resolved against the *live* execution state when that base work is
    // done, so predecessors consumed meanwhile are pruned — the overlap
    // mechanism of Section 2.3.3.
    const double base = dc.per_task + dc.per_dep * d.ndeps;
    charge_discovery(r, base);
    push(t + base, EvType::TaskResolve, rank, 0, task);
  }

  void charge_discovery(Rank& r, double cost) {
    r.cores[0].overhead += cost;
    r.res.discovery_seconds += cost;
    r.iter_discovery += cost;
  }

  void on_task_resolve(int rank, std::uint32_t task, double t) {
    Rank& r = ranks[static_cast<std::size_t>(rank)];
    TaskState& ts = r.ts[task];
    const SimTaskDesc& d = desc(r, task);
    const DiscoveryCosts& dc = cfg.discovery;
    double cost = 0;
    std::int32_t np = 0;
    for (std::uint32_t p : d.preds) {
      if (r.ts[p].finished) {
        if (cfg.persistent) {
          // Iteration 0 of a persistent region records every edge.
          cost += dc.per_edge;
          ++r.res.edges_created;
        } else {
          cost += dc.per_pruned;
          ++r.res.edges_pruned;
        }
      } else {
        cost += dc.per_edge;
        ++r.res.edges_created;
        ++np;
      }
    }
    // +1 discovery guard, dropped at TaskVisible (the task must not run
    // before the producer finished creating it).
    ts.npred = np + 1;
    ts.discovered = true;
    ++r.live;
    charge_discovery(r, cost);
    push(t + cost, EvType::TaskVisible, rank, 0, task);
    push(t + cost, EvType::ProducerStep, rank);
  }

  void on_task_visible(int rank, std::uint32_t task, double t) {
    Rank& r = ranks[static_cast<std::size_t>(rank)];
    TaskState& ts = r.ts[task];
    r.cores[0].busy = false;
    if (--ts.npred == 0 && !ts.finished) make_ready(rank, task, 0, t);
  }

  void maybe_advance_iteration(int rank, double t) {
    Rank& r = ranks[static_cast<std::size_t>(rank)];
    const std::uint32_t n = static_cast<std::uint32_t>(r.g->tasks.size());
    if (r.done || r.cursor < n || r.finished_count < n) return;
    r.res.discovery_per_iteration.push_back(r.iter_discovery);
    r.iter_discovery = 0;
    if (cfg.persistent && r.iteration + 1 < cfg.iterations) {
      // Implicit barrier passed: re-arm every task for the next iteration
      // from the recorded full indegree. Redirect nodes are not replayed,
      // so they carry no discovery guard; user tasks hold one until their
      // replay (firstprivate update) completes.
      ++r.iteration;
      r.cursor = 0;
      r.finished_count = 0;
      for (std::uint32_t i = 0; i < n; ++i) {
        TaskState& ts = r.ts[i];
        const bool redirect =
            desc(r, i).attrs.kind == SimTaskKind::Redirect;
        ts.npred = static_cast<std::int32_t>(desc(r, i).preds.size()) +
                   (redirect ? 0 : 1);
        ts.finished = false;
        ts.discovered = true;  // edges are already registered
        ts.comm_posted = false;
      }
      r.live = n;
      push(t, EvType::ProducerStep, rank);
      return;
    }
    r.done = true;
    r.end_time = t;
  }

  void check_rank_completion(int rank, double t) {
    Rank& r = ranks[static_cast<std::size_t>(rank)];
    const std::uint32_t n = static_cast<std::uint32_t>(r.g->tasks.size());
    if (r.cursor >= n && r.finished_count >= n) {
      maybe_advance_iteration(rank, t);
    }
  }

  // ---- run -------------------------------------------------------------------
  SimResult run() {
    for (std::size_t i = 0; i < ranks.size(); ++i) {
      Rank& r = ranks[i];
      TDG_CHECK(r.g != nullptr, "ClusterSim: rank has no graph");
      r.succs = r.g->successors();
      r.ts.assign(r.g->tasks.size(), TaskState{});
      r.cores.assign(static_cast<std::size_t>(cfg.machine.cores), Core{});
      push(0.0, EvType::ProducerStep, static_cast<int>(i));
    }
    while (!queue.empty()) {
      const Ev ev = queue.top();
      queue.pop();
      now = ev.t;
      switch (ev.type) {
        case EvType::ProducerStep:
          on_producer_step(ev.rank, ev.t);
          break;
        case EvType::TaskFinish:
          on_task_finish(ev.rank, ev.core, ev.task, ev.t);
          break;
        case EvType::CoreFree: {
          Rank& r = ranks[static_cast<std::size_t>(ev.rank)];
          r.cores[static_cast<std::size_t>(ev.core)].busy = false;
          if (ev.core == 0) {
            push(ev.t, EvType::ProducerStep, ev.rank);
          } else {
            std::uint32_t next;
            if (obtain(r, ev.core, next)) {
              start_execution(ev.rank, ev.core, next, ev.t);
            }
          }
          break;
        }
        case EvType::CommComplete:
          on_comm_complete(ev.rank, ev.task, ev.t);
          break;
        case EvType::TaskResolve:
          on_task_resolve(ev.rank, ev.task, ev.t);
          break;
        case EvType::TaskVisible:
          on_task_visible(ev.rank, ev.task, ev.t);
          break;
      }
    }
    SimResult result;
    for (Rank& r : ranks) {
      TDG_CHECK(r.done, "simulation stalled: undiscovered or unmatched "
                        "tasks remain (check communication pairing)");
      result.makespan = std::max(result.makespan, r.end_time);
      double work = 0, overhead = 0;
      for (const Core& c : r.cores) {
        work += c.work;
        overhead += c.overhead;
      }
      r.res.work = work;
      r.res.overhead = overhead;
      r.res.idle =
          std::max(0.0, r.end_time * cfg.machine.cores - work - overhead);
      result.ranks.push_back(std::move(r.res));
    }
    return result;
  }
};

ClusterSim::ClusterSim(SimConfig cfg) : impl_(std::make_unique<Impl>(cfg)) {}
ClusterSim::~ClusterSim() = default;

void ClusterSim::set_graph(int rank, const SimGraph* graph) {
  impl_->ranks.at(static_cast<std::size_t>(rank)).g = graph;
}

void ClusterSim::set_all_graphs(const SimGraph* graph) {
  for (auto& r : impl_->ranks) r.g = graph;
}

SimResult ClusterSim::run() { return impl_->run(); }

}  // namespace tdg::sim
