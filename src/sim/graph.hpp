// Simulator task graphs: task descriptors with cost-model attributes, and a
// builder that resolves depend clauses into edges with exactly the core
// runtime's semantics (in/out/inout/inoutset, optimizations (b) and (c)).
// Addresses are abstract 64-bit identities, so application graph generators
// can be shared between the real runtime and the simulator.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/depend_types.hpp"

namespace tdg::sim {

enum class SimTaskKind : std::uint8_t {
  Compute,    ///< cpu_seconds + bytes through the cache model
  Send,       ///< posts a message; completes when the transfer does
  Recv,       ///< posts a receive; completes at delivery
  Allreduce,  ///< posts a collective contribution
  Redirect,   ///< runtime-internal inoutset node (optimization (c))
};

/// Abstract depend-clause item on a logical address.
struct SimDep {
  std::uint64_t addr = 0;
  DependType type = DependType::In;

  static constexpr SimDep in(std::uint64_t a) {
    return {a, DependType::In};
  }
  static constexpr SimDep out(std::uint64_t a) {
    return {a, DependType::Out};
  }
  static constexpr SimDep inout(std::uint64_t a) {
    return {a, DependType::InOut};
  }
  static constexpr SimDep inoutset(std::uint64_t a) {
    return {a, DependType::InOutSet};
  }
};

/// Cost-model attributes supplied by the application graph generator.
struct SimTaskAttrs {
  double cpu_seconds = 0;      ///< pure compute time
  std::uint64_t bytes = 0;     ///< working set (cache/DRAM model)
  SimTaskKind kind = SimTaskKind::Compute;
  int peer = -1;               ///< Send/Recv peer rank
  int tag = 0;                 ///< Send/Recv matching tag
  std::uint64_t msg_bytes = 0; ///< payload of Send/Recv/Allreduce
  std::uint32_t iteration = 0; ///< application iteration (Gantt colour)
  const char* label = "";
};

/// One task of a simulator graph, with resolved dependency edges.
struct SimTaskDesc {
  SimTaskAttrs attrs;
  int ndeps = 0;  ///< depend-clause items (discovery hashing cost)
  /// Predecessor indices; duplicates are kept when optimization (b) is
  /// off, exactly as the real runtime materializes duplicate edges.
  std::vector<std::uint32_t> preds;
};

/// An immutable task graph for the simulator (one MPI rank's TDG).
struct SimGraph {
  std::vector<SimTaskDesc> tasks;
  std::uint64_t duplicate_edges_skipped = 0;  ///< dropped by opt (b)
  std::uint64_t redirect_nodes = 0;           ///< inserted by opt (c)

  std::uint64_t structural_edges() const {
    std::uint64_t n = 0;
    for (const auto& t : tasks) n += t.preds.size();
    return n;
  }
  /// Successor adjacency, computed on demand by the simulator.
  std::vector<std::vector<std::uint32_t>> successors() const;
};

/// Sequential-discovery dependency resolution on abstract addresses.
/// Mirrors core/depend.cpp; kept index-based so graphs are cheap to build
/// and replay. A divergence between the two implementations is caught by
/// tests/test_sim_graph.cpp which compares edge sets on the same clauses.
class SimGraphBuilder {
 public:
  struct Options {
    bool dedup_edges = true;        ///< optimization (b)
    bool inoutset_redirect = true;  ///< optimization (c)
  };

  SimGraphBuilder() : SimGraphBuilder(Options{}) {}
  explicit SimGraphBuilder(Options opts) : opts_(opts) {}

  /// Append a task with the given depend clause; returns its index.
  std::uint32_t task(const SimTaskAttrs& attrs, std::span<const SimDep> deps);
  std::uint32_t task(const SimTaskAttrs& attrs,
                     std::initializer_list<SimDep> deps) {
    return task(attrs, std::span<const SimDep>(deps.begin(), deps.size()));
  }

  /// Forget the access history (between independent phases).
  void clear_scope() { entries_.clear(); }

  /// Number of tasks added so far.
  std::uint32_t size() const {
    return static_cast<std::uint32_t>(graph_.tasks.size());
  }

  SimGraph take() { return std::move(graph_); }

 private:
  struct AddrEntry {
    std::vector<std::uint32_t> last_mod;
    bool mod_is_set = false;
    std::vector<std::uint32_t> gen_base;
    std::vector<std::uint32_t> readers;
    std::int64_t redirect = -1;
  };

  void edge(std::uint32_t pred, std::uint32_t succ);
  void edges_from_mod(AddrEntry& e, std::uint32_t succ);
  std::uint32_t make_redirect(AddrEntry& e);

  Options opts_;
  SimGraph graph_;
  std::unordered_map<std::uint64_t, AddrEntry> entries_;
  std::vector<std::int64_t> last_succ_;  ///< per-task last successor (opt b)
};

}  // namespace tdg::sim
