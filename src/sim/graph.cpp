#include "sim/graph.hpp"

#include "core/common.hpp"

namespace tdg::sim {

std::vector<std::vector<std::uint32_t>> SimGraph::successors() const {
  std::vector<std::vector<std::uint32_t>> succ(tasks.size());
  for (std::uint32_t t = 0; t < tasks.size(); ++t) {
    for (std::uint32_t p : tasks[t].preds) succ[p].push_back(t);
  }
  return succ;
}

void SimGraphBuilder::edge(std::uint32_t pred, std::uint32_t succ) {
  if (pred == succ) return;
  if (opts_.dedup_edges && last_succ_[pred] == static_cast<std::int64_t>(succ)) {
    ++graph_.duplicate_edges_skipped;
    return;
  }
  last_succ_[pred] = static_cast<std::int64_t>(succ);
  graph_.tasks[succ].preds.push_back(pred);
}

std::uint32_t SimGraphBuilder::make_redirect(AddrEntry& e) {
  SimTaskAttrs attrs;
  attrs.kind = SimTaskKind::Redirect;
  attrs.label = "tdg::redirect";
  graph_.tasks.push_back(SimTaskDesc{attrs, 0, {}});
  last_succ_.push_back(-1);
  const auto r = static_cast<std::uint32_t>(graph_.tasks.size() - 1);
  ++graph_.redirect_nodes;
  for (std::uint32_t m : e.last_mod) edge(m, r);
  return r;
}

void SimGraphBuilder::edges_from_mod(AddrEntry& e, std::uint32_t succ) {
  // Mirror of core/depend.cpp: a redirect over a generation containing
  // succ itself would create an indirect self-cycle.
  bool self_in_mod = false;
  if (e.mod_is_set) {
    for (std::uint32_t m : e.last_mod) self_in_mod |= (m == succ);
  }
  if (e.mod_is_set && opts_.inoutset_redirect && e.last_mod.size() > 1 &&
      !self_in_mod) {
    if (e.redirect < 0) e.redirect = make_redirect(e);
    edge(static_cast<std::uint32_t>(e.redirect), succ);
    return;
  }
  for (std::uint32_t m : e.last_mod) edge(m, succ);
}

std::uint32_t SimGraphBuilder::task(const SimTaskAttrs& attrs,
                                    std::span<const SimDep> deps) {
  graph_.tasks.push_back(SimTaskDesc{attrs, static_cast<int>(deps.size()), {}});
  last_succ_.push_back(-1);
  const auto id = static_cast<std::uint32_t>(graph_.tasks.size() - 1);
  for (const SimDep& d : deps) {
    AddrEntry& e = entries_[d.addr];
    switch (d.type) {
      case DependType::In:
        edges_from_mod(e, id);
        e.readers.push_back(id);
        break;
      case DependType::Out:
      case DependType::InOut:
        edges_from_mod(e, id);
        for (std::uint32_t r : e.readers) edge(r, id);
        e.last_mod.clear();
        e.gen_base.clear();
        e.readers.clear();
        e.redirect = -1;
        e.mod_is_set = false;
        e.last_mod.push_back(id);
        break;
      case DependType::InOutSet:
        if (!e.mod_is_set) {
          e.mod_is_set = true;
          e.gen_base.clear();
          std::swap(e.gen_base, e.last_mod);
          for (std::uint32_t r : e.readers) e.gen_base.push_back(r);
          e.readers.clear();
          e.redirect = -1;
        } else if (e.redirect >= 0) {
          e.redirect = -1;  // generation grows: future consumers re-aggregate
        }
        for (std::uint32_t b : e.gen_base) edge(b, id);
        for (std::uint32_t r : e.readers) edge(r, id);
        e.last_mod.push_back(id);
        break;
    }
  }
  return id;
}

}  // namespace tdg::sim
