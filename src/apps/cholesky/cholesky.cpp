#include <cmath>

#include "apps/cholesky/cholesky.hpp"

namespace tdg::apps::cholesky {

namespace k = kernels;

TiledMatrix::TiledMatrix(int nt_, int b_) : nt(nt_), b(b_) {
  tiles.assign(static_cast<std::size_t>(nt) * nt,
               std::vector<double>(static_cast<std::size_t>(b) * b, 0.0));
}

void TiledMatrix::fill_spd() {
  const std::int64_t N = n();
  for (int ti = 0; ti < nt; ++ti) {
    for (int tj = 0; tj < nt; ++tj) {
      auto& t = tile(ti, tj);
      for (int r = 0; r < b; ++r) {
        for (int c = 0; c < b; ++c) {
          const std::int64_t gi = static_cast<std::int64_t>(ti) * b + r;
          const std::int64_t gj = static_cast<std::int64_t>(tj) * b + c;
          double v = 1.0 / (1.0 + static_cast<double>(std::llabs(gi - gj)));
          if (gi == gj) v += static_cast<double>(N);
          t[static_cast<std::size_t>(r) * static_cast<std::size_t>(b) + c] = v;
        }
      }
    }
  }
}

double TiledMatrix::reconstruction_error(const TiledMatrix& ref) const {
  const std::int64_t N = n();
  auto lower = [&](std::int64_t gi, std::int64_t gj) -> double {
    if (gj > gi) return 0.0;
    const auto& t = tile(static_cast<int>(gi / b), static_cast<int>(gj / b));
    return t[static_cast<std::size_t>(gi % b) * static_cast<std::size_t>(b) +
             static_cast<std::size_t>(gj % b)];
  };
  auto orig = [&](std::int64_t gi, std::int64_t gj) -> double {
    const auto& t =
        ref.tile(static_cast<int>(gi / b), static_cast<int>(gj / b));
    return t[static_cast<std::size_t>(gi % b) * static_cast<std::size_t>(b) +
             static_cast<std::size_t>(gj % b)];
  };
  double err = 0;
  for (std::int64_t i = 0; i < N; ++i) {
    for (std::int64_t j = 0; j <= i; ++j) {
      double s = 0;
      for (std::int64_t kk = 0; kk <= j; ++kk) s += lower(i, kk) * lower(j, kk);
      err = std::max(err, std::fabs(s - orig(i, j)));
    }
  }
  return err;
}

void run_reference(TiledMatrix& a) {
  const int nt = a.nt;
  for (int kt = 0; kt < nt; ++kt) {
    k::potrf(a.tile(kt, kt), a.b);
    for (int i = kt + 1; i < nt; ++i) k::trsm(a.tile(kt, kt), a.tile(i, kt), a.b);
    for (int i = kt + 1; i < nt; ++i) {
      for (int j = kt + 1; j <= i; ++j) {
        if (i == j) {
          k::syrk(a.tile(i, kt), a.tile(i, i), a.b);
        } else {
          k::gemm(a.tile(i, kt), a.tile(j, kt), a.tile(i, j), a.b);
        }
      }
    }
  }
}

namespace {
constexpr LAddr T(const TiledMatrix& a, int i, int j) {
  return static_cast<LAddr>(i) * static_cast<LAddr>(a.nt) +
         static_cast<LAddr>(j);
}
// Tile-kernel cost hints for the simulator (O(b^3) flops at ~2 flops/ns).
double tile_secs(int b) {
  return static_cast<double>(b) * b * b * 0.5e-9;
}
std::uint64_t tile_bytes(int b) {
  return static_cast<std::uint64_t>(b) * static_cast<std::uint64_t>(b) * 8;
}
}  // namespace

void emit_factorization(Emitter& em, TiledMatrix& a, bool refill) {
  TiledMatrix* m = &a;
  const int nt = a.nt;
  const int b = a.b;
  const double secs = tile_secs(b);
  const std::uint64_t bytes = tile_bytes(b);
  if (refill) {
    for (int i = 0; i < nt; ++i) {
      for (int j = 0; j < nt; ++j) {
        em.compute("InitTile", {LDep::out(T(a, i, j))}, secs * 0.1, bytes,
                   [m, i, j] {
                     // Re-fill only this tile (same values as fill_spd).
                     const std::int64_t N = m->n();
                     auto& t = m->tile(i, j);
                     for (int r = 0; r < m->b; ++r) {
                       for (int c = 0; c < m->b; ++c) {
                         const std::int64_t gi =
                             static_cast<std::int64_t>(i) * m->b + r;
                         const std::int64_t gj =
                             static_cast<std::int64_t>(j) * m->b + c;
                         double v = 1.0 / (1.0 + static_cast<double>(
                                                     std::llabs(gi - gj)));
                         if (gi == gj) v += static_cast<double>(N);
                         t[static_cast<std::size_t>(r) *
                               static_cast<std::size_t>(m->b) +
                           c] = v;
                       }
                     }
                   });
      }
    }
  }
  for (int kt = 0; kt < nt; ++kt) {
    em.compute("potrf", {LDep::inout(T(a, kt, kt))}, secs, bytes,
               [m, kt] { k::potrf(m->tile(kt, kt), m->b); });
    for (int i = kt + 1; i < nt; ++i) {
      em.compute("trsm", {LDep::in(T(a, kt, kt)), LDep::inout(T(a, i, kt))},
                 secs, 2 * bytes, [m, i, kt] {
                   k::trsm(m->tile(kt, kt), m->tile(i, kt), m->b);
                 });
    }
    for (int i = kt + 1; i < nt; ++i) {
      for (int j = kt + 1; j <= i; ++j) {
        if (i == j) {
          em.compute("syrk",
                     {LDep::in(T(a, i, kt)), LDep::inout(T(a, i, i))}, secs,
                     2 * bytes, [m, i, kt] {
                       k::syrk(m->tile(i, kt), m->tile(i, i), m->b);
                     });
        } else {
          em.compute("gemm",
                     {LDep::in(T(a, i, kt)), LDep::in(T(a, j, kt)),
                      LDep::inout(T(a, i, j))},
                     secs, 3 * bytes, [m, i, j, kt] {
                       k::gemm(m->tile(i, kt), m->tile(j, kt),
                               m->tile(i, j), m->b);
                     });
        }
      }
    }
  }
}

void run_taskbased(Runtime& rt, TiledMatrix& a, const Config& cfg,
                   bool persistent) {
  RuntimeEmitter::Options opts;
  opts.persistent = persistent;
  RuntimeEmitter em(rt, opts);
  for (int it = 0; it < cfg.iterations; ++it) {
    if (em.begin_iteration(static_cast<std::uint32_t>(it))) {
      emit_factorization(em, a, /*refill=*/cfg.iterations > 1);
    }
    em.end_iteration();
  }
  rt.taskwait();
}

std::uint64_t kernel_count(int nt) {
  const std::uint64_t n = static_cast<std::uint64_t>(nt);
  return n + n * (n - 1) / 2 + n * (n - 1) / 2 + n * (n - 1) * (n - 2) / 6;
}

}  // namespace tdg::apps::cholesky
