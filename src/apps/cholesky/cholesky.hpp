// Tile-based right-looking Cholesky factorization (Section 4.4): one task
// per tile kernel (POTRF / TRSM / SYRK / GEMM) with per-tile dependences.
// Its dense, regular dependency scheme is the paper's contrast case: the
// edge optimizations (a,b,c) change nothing, while persistence (p) gives an
// asymptotic discovery speedup with no total-time impact.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/common/emitter.hpp"
#include "core/runtime.hpp"

namespace tdg::apps::cholesky {

struct Config {
  int nt = 4;       ///< tiles per dimension
  int b = 16;       ///< tile edge (tile = b x b doubles, row-major)
  int iterations = 1;  ///< repeated factorizations (PTSG scenario)
};

/// A symmetric positive definite matrix stored as nt x nt tiles of b x b.
struct TiledMatrix {
  TiledMatrix(int nt, int b);

  int nt, b;
  std::vector<std::vector<double>> tiles;  ///< tiles[i * nt + j]

  std::vector<double>& tile(int i, int j) {
    return tiles[static_cast<std::size_t>(i * nt + j)];
  }
  const std::vector<double>& tile(int i, int j) const {
    return tiles[static_cast<std::size_t>(i * nt + j)];
  }
  /// Deterministic SPD fill: A = base + n*I with base[i][j] = 1/(1+|i-j|).
  void fill_spd();
  /// Max |L L^T - ref|_ij over the full matrix, using the lower triangle
  /// of this (factorized) matrix as L.
  double reconstruction_error(const TiledMatrix& ref) const;

  std::int64_t n() const { return static_cast<std::int64_t>(nt) * b; }
};

/// Serial reference factorization (same tile-op order as the task graph).
void run_reference(TiledMatrix& a);

/// Emit one factorization's task graph. When `refill` is set, per-tile
/// init tasks re-fill the matrix first (the iterated-decomposition use).
void emit_factorization(Emitter& em, TiledMatrix& a, bool refill);

/// Task-based factorization; `iterations > 1` refactorizes the re-filled
/// matrix, optionally under a persistent region.
void run_taskbased(Runtime& rt, TiledMatrix& a, const Config& cfg,
                   bool persistent);

/// Number of tile kernels in one factorization (excluding init tasks):
/// nt potrf + nt(nt-1)/2 trsm + nt(nt-1)/2 syrk + nt(nt-1)(nt-2)/6 gemm.
std::uint64_t kernel_count(int nt);

namespace kernels {
void potrf(std::vector<double>& a, int b);
void trsm(const std::vector<double>& l, std::vector<double>& x, int b);
void syrk(const std::vector<double>& a, std::vector<double>& c, int b);
void gemm(const std::vector<double>& a, const std::vector<double>& bm,
          std::vector<double>& c, int b);
}  // namespace kernels

}  // namespace tdg::apps::cholesky
