#include <cmath>

#include "apps/cholesky/cholesky.hpp"
#include "core/common.hpp"

namespace tdg::apps::cholesky::kernels {

namespace {
inline double& at(std::vector<double>& t, int b, int r, int c) {
  return t[static_cast<std::size_t>(r) * static_cast<std::size_t>(b) +
           static_cast<std::size_t>(c)];
}
inline double at(const std::vector<double>& t, int b, int r, int c) {
  return t[static_cast<std::size_t>(r) * static_cast<std::size_t>(b) +
           static_cast<std::size_t>(c)];
}
}  // namespace

// In-place lower Cholesky of a diagonal tile; the upper triangle is zeroed.
void potrf(std::vector<double>& a, int b) {
  for (int j = 0; j < b; ++j) {
    double d = at(a, b, j, j);
    for (int k = 0; k < j; ++k) d -= at(a, b, j, k) * at(a, b, j, k);
    TDG_CHECK(d > 0, "potrf: matrix is not positive definite");
    d = std::sqrt(d);
    at(a, b, j, j) = d;
    for (int i = j + 1; i < b; ++i) {
      double s = at(a, b, i, j);
      for (int k = 0; k < j; ++k) s -= at(a, b, i, k) * at(a, b, j, k);
      at(a, b, i, j) = s / d;
    }
    for (int i = 0; i < j; ++i) at(a, b, i, j) = 0.0;
  }
}

// Solve X * L^T = B in place (B := X), L the factorized diagonal tile.
void trsm(const std::vector<double>& l, std::vector<double>& x, int b) {
  for (int r = 0; r < b; ++r) {
    for (int j = 0; j < b; ++j) {
      double s = at(x, b, r, j);
      for (int k = 0; k < j; ++k) s -= at(x, b, r, k) * at(l, b, j, k);
      at(x, b, r, j) = s / at(l, b, j, j);
    }
  }
}

// C -= A * A^T (trailing symmetric update of a diagonal tile).
void syrk(const std::vector<double>& a, std::vector<double>& c, int b) {
  for (int r = 0; r < b; ++r) {
    for (int j = 0; j < b; ++j) {
      double s = 0;
      for (int k = 0; k < b; ++k) s += at(a, b, r, k) * at(a, b, j, k);
      at(c, b, r, j) -= s;
    }
  }
}

// C -= A * B^T (trailing update of an off-diagonal tile).
void gemm(const std::vector<double>& a, const std::vector<double>& bm,
          std::vector<double>& c, int b) {
  for (int r = 0; r < b; ++r) {
    for (int j = 0; j < b; ++j) {
      double s = 0;
      for (int k = 0; k < b; ++k) s += at(a, b, r, k) * at(bm, b, j, k);
      at(c, b, r, j) -= s;
    }
  }
}

}  // namespace tdg::apps::cholesky::kernels
