#include "apps/common/chaos.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <vector>

#include "apps/cholesky/cholesky.hpp"
#include "apps/lulesh/lulesh.hpp"
#include "core/error.hpp"
#include "core/runtime.hpp"
#include "mpi/interop.hpp"

namespace tdg::apps::chaos {

namespace {

constexpr int kTagBoundary = 7;

enum class Outcome { OwnDeath, Expected, Unexpected };

/// True when `e` is rooted only in peer deaths: a RankFailedError, or a
/// TaskGroupError whose every failure rethrows as one.
bool rank_failure_rooted(const std::exception_ptr& e, int self,
                         bool& own_death) {
  try {
    std::rethrow_exception(e);
  } catch (const RankFailedError& rf) {
    if (rf.rank() == self) own_death = true;
    return true;
  } catch (const TaskGroupError& tg) {
    if (tg.failures().empty()) return false;
    for (const TaskFailure& f : tg.failures()) {
      try {
        std::rethrow_exception(f.error);
      } catch (const RankFailedError& rf) {
        if (rf.rank() == self) own_death = true;
      } catch (...) {
        return false;
      }
    }
    return true;
  } catch (...) {
    return false;
  }
}

Outcome classify(const std::exception_ptr& e, int self,
                 RecoveryMode recovery) {
  bool own_death = false;
  const bool rooted = rank_failure_rooted(e, self, own_death);
  if (own_death) return Outcome::OwnDeath;
  if (rooted && recovery == RecoveryMode::Poison) return Outcome::Expected;
  // Shrink survivors must finish; anything not rank-failure-rooted is a
  // soundness violation in either mode.
  return Outcome::Unexpected;
}

void run_lulesh(Runtime& rt, mpi::Comm& comm, mpi::RequestPoller& poller,
                const ChaosConfig& cfg) {
  const std::int64_t per = cfg.lulesh_points_per_rank;
  lulesh::Mesh m(per);
  m.init_partition(per * cfg.nranks, per * comm.rank());
  lulesh::Config lc;
  lc.npoints = per;
  lc.iterations = cfg.iterations;
  lc.tpl = 4;
  lc.distributed = true;
  lulesh::run_distributed(rt, comm, poller, m, lc, /*persistent=*/false,
                          cfg.recovery);
  if (!m.all_finite()) {
    throw Error("chaos: non-finite mesh values after recovery on rank " +
                std::to_string(comm.rank()));
  }
}

/// Per-rank Cholesky factorization plus a boundary-tile ring exchange and
/// a checksum allreduce: enough cross-rank structure that a death poisons
/// (or reroutes) real dependences while the factorization itself drains.
void run_cholesky(Runtime& rt, mpi::Comm& comm, mpi::RequestPoller& poller,
                  const ChaosConfig& cfg) {
  const int nt = cfg.cholesky_nt;
  const int b = cfg.cholesky_tile;
  const bool shrink = cfg.recovery == RecoveryMode::ShrinkRedistribute;
  cholesky::TiledMatrix a(nt, b);
  a.fill_spd();
  struct Ctx {
    std::vector<double> sbuf, rbuf;
    double sum_in = 0, sum_out = 0, total = 0;
  } ctx;
  const std::size_t tile_n = static_cast<std::size_t>(b) * b;
  ctx.sbuf.assign(tile_n, 0.0);
  ctx.rbuf.assign(tile_n, 0.0);
  const std::uint64_t tile_bytes = tile_n * sizeof(double);

  // Exchange addresses live above the factorization's tile ids [0, nt^2).
  const LAddr abase = static_cast<LAddr>(nt) * static_cast<LAddr>(nt);
  const LAddr kSbuf = abase, kRbuf = abase + 1, kSumIn = abase + 2,
              kSumOut = abase + 3;
  const LAddr kCorner =
      static_cast<LAddr>(nt - 1) * static_cast<LAddr>(nt) +
      static_cast<LAddr>(nt - 1);

  RuntimeEmitter::Options eopts;
  eopts.recovery = cfg.recovery;
  RuntimeEmitter em(rt, comm, poller, eopts);
  cholesky::TiledMatrix* ap = &a;
  Ctx* cp = &ctx;
  int prev_right = comm.rank() + 1 < comm.size() ? comm.rank() + 1 : -1;
  for (int it = 0; it < cfg.iterations; ++it) {
    // Drain at every iteration boundary: in poison mode the taskwait is
    // what surfaces the poisoning so the rank exits and its peers' stuck
    // receives fail fast (Finished rank) instead of deadlocking; in
    // shrink mode the quiesced graph makes the topology re-read safe.
    if (it > 0) rt.taskwait();
    int left = comm.rank() > 0 ? comm.rank() - 1 : -1;
    int right = comm.rank() + 1 < comm.size() ? comm.rank() + 1 : -1;
    if (shrink) {
      left = comm.nearest_alive(comm.rank(), -1);
      right = comm.nearest_alive(comm.rank(), +1);
      // Healing-skew catch-up (see lulesh::run_distributed): the adopted
      // right neighbour may have healed one iteration earlier and be
      // blocked on a receive our send that iteration never fed; one
      // stale-tolerant boundary send closes the gap.
      if (it > 0 && right != prev_right && right >= 0) {
        comm.wait(comm.isend(ctx.sbuf.data(),
                             static_cast<std::size_t>(tile_bytes), right,
                             kTagBoundary));
      }
      prev_right = right;
    }
    em.begin_iteration(static_cast<std::uint32_t>(it));
    cholesky::emit_factorization(em, a, /*refill=*/true);
    em.compute("PackBoundary", {LDep::in(kCorner), LDep::out(kSbuf)}, 1e-7,
               tile_bytes, [ap, cp, nt] {
                 cp->sbuf = ap->tile(nt - 1, nt - 1);
               });
    if (right >= 0) {
      em.send("SendBoundary", {LDep::in(kSbuf)}, ctx.sbuf.data(),
              tile_bytes, right, kTagBoundary);
    }
    if (left >= 0) {
      em.recv("RecvBoundary", {LDep::out(kRbuf)}, ctx.rbuf.data(),
              tile_bytes, left, kTagBoundary);
    } else {
      em.compute("ZeroBoundary", {LDep::out(kRbuf)}, 1e-7, tile_bytes,
                 [cp] { std::fill(cp->rbuf.begin(), cp->rbuf.end(), 0.0); });
    }
    em.compute("Checksum", {LDep::in(kRbuf), LDep::in(kCorner),
                            LDep::out(kSumIn)},
               1e-7, tile_bytes, [ap, cp, nt, b] {
                 double s = 0;
                 for (double v : cp->rbuf) s += v;
                 const auto& corner = ap->tile(nt - 1, nt - 1);
                 for (int i = 0; i < b; ++i) {
                   s += corner[static_cast<std::size_t>(i) *
                                   static_cast<std::size_t>(b) +
                               static_cast<std::size_t>(i)];
                 }
                 cp->sum_in = s;
               });
    em.allreduce("Allreduce(checksum)",
                 {LDep::in(kSumIn), LDep::out(kSumOut)}, &ctx.sum_in,
                 &ctx.sum_out, 1, mpi::Op::Sum);
    em.compute("CommitChecksum", {LDep::in(kSumOut)}, 1e-7, 8,
               [cp] { cp->total += cp->sum_out; });
    em.end_iteration();
  }
  rt.taskwait();
  if (!std::isfinite(ctx.total)) {
    throw Error("chaos: non-finite checksum after recovery on rank " +
                std::to_string(comm.rank()));
  }
}

}  // namespace

mpi::FaultPlan canned_plan(int index) {
  mpi::FaultPlan fp;
  // Kill sequences sit late enough that several iterations of lossy
  // traffic flow first (exercising the retransmission path) but within
  // the sends a 6-iteration Cholesky rank performs (one per iteration).
  switch (((index % 3) + 3) % 3) {
    case 0:
      fp.seed = 101;
      fp.loss_probability = 0.25;
      fp.kill_rank_at_send_seq = {{1, 6}};
      break;
    case 1:
      fp.seed = 202;
      fp.loss_probability = 0.20;
      fp.duplicate_probability = 0.15;
      fp.kill_rank_at_send_seq = {{2, 4}};
      break;
    default:
      fp.seed = 303;
      fp.loss_probability = 0.25;
      fp.delay_probability = 0.05;
      fp.delay_seconds = 0.001;
      fp.kill_rank_at_send_seq = {{1, 4}, {2, 6}};
      break;
  }
  return fp;
}

ChaosOutcome run_chaos(const ChaosConfig& cfg) {
  ChaosOutcome out;
  std::mutex omu;
  mpi::Universe::Options uo;
  uo.faults = cfg.faults;
  uo.reliable = cfg.reliable;
  uo.heartbeat = cfg.heartbeat;
  uo.tolerate_killed_ranks = true;
  mpi::Universe::run(
      cfg.nranks,
      [&](mpi::Comm& comm) {
        try {
          Runtime::Config rc;
          rc.num_threads = cfg.threads_per_rank;
          rc.watchdog.deadline_seconds = cfg.watchdog_seconds;
          Runtime rt(rc);
          mpi::RequestPoller poller(rt, comm);
          if (cfg.app == App::Lulesh) {
            run_lulesh(rt, comm, poller, cfg);
          } else {
            run_cholesky(rt, comm, poller, cfg);
          }
          std::lock_guard<std::mutex> g(omu);
          ++out.survivors_ok;
        } catch (...) {
          const std::exception_ptr e = std::current_exception();
          switch (classify(e, comm.rank(), cfg.recovery)) {
            case Outcome::OwnDeath:
              // The scheduled kill: rethrow so the universe records it
              // (tolerate_killed_ranks keeps it out of run()'s throw).
              std::rethrow_exception(e);
            case Outcome::Expected: {
              std::lock_guard<std::mutex> g(omu);
              ++out.expected_failures;
              break;
            }
            case Outcome::Unexpected: {
              std::lock_guard<std::mutex> g(omu);
              out.unexpected.push_back(
                  "rank " + std::to_string(comm.rank()) + ": " +
                  describe_exception(e));
              break;
            }
          }
        }
      },
      uo, &out.report);
  return out;
}

}  // namespace tdg::apps::chaos
