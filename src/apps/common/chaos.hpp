// Chaos harness: runs a distributed example application (LULESH halo ring
// or a per-rank Cholesky with a boundary-tile exchange) inside a fault-
// injected universe — seeded message loss, duplicates, delays, scheduled
// rank kills — with the reliable-delivery layer and heartbeat failure
// detector on, and classifies each rank's outcome.
//
// The soundness claim the chaos tests assert: every run *terminates*
// (no watchdog timeout), killed ranks die, and survivors either finish
// cleanly or — in Poison recovery — fail with a TaskGroupError whose
// every failure is rooted in tdg::RankFailedError (graph poisoning from
// the dead peer, not corruption). Anything else (VerifyError under
// TDG_VERIFY=strict, DeadlineError, non-finite results) is recorded in
// `unexpected` and fails the run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/common/emitter.hpp"
#include "mpi/mpi.hpp"

namespace tdg::apps::chaos {

enum class App { Lulesh, Cholesky };

struct ChaosConfig {
  App app = App::Lulesh;
  RecoveryMode recovery = RecoveryMode::Poison;
  int nranks = 4;
  int iterations = 6;
  unsigned threads_per_rank = 2;
  /// Injected faults (loss / dup / delay / kills). Kills use isend counts:
  /// keep `kill=R@N` below the app's sends per rank (LULESH: 2 per
  /// interior-rank iteration; Cholesky: 1 per non-last-rank iteration).
  mpi::FaultPlan faults;
  mpi::ReliableConfig reliable;    ///< enable to mask injected loss
  mpi::HeartbeatConfig heartbeat;  ///< enable to detect kills
  /// Per-rank runtime watchdog: a hang under injection becomes a
  /// DeadlineError diagnostic instead of a stuck test.
  double watchdog_seconds = 60.0;
  std::int64_t lulesh_points_per_rank = 96;
  int cholesky_nt = 3;
  int cholesky_tile = 8;
};

struct ChaosOutcome {
  mpi::Universe::Report report;
  int survivors_ok = 0;         ///< ranks that finished cleanly
  int expected_failures = 0;    ///< Poison mode: RankFailedError-rooted
  std::vector<std::string> unexpected;  ///< anything else (must be empty)
  bool sound() const { return unexpected.empty(); }
};

/// One of three canned seeded loss+kill plans (index 0..2) sized for a
/// 4-rank, >=6-iteration run — the ci_chaos.sh suite matrix.
mpi::FaultPlan canned_plan(int index);

/// Run the configured app under injection and classify per-rank outcomes.
/// Throws only on harness misuse; application failures are recorded in
/// the outcome, never rethrown (so the whole matrix is observable).
ChaosOutcome run_chaos(const ChaosConfig& cfg);

}  // namespace tdg::apps::chaos
