#include "apps/common/emitter.hpp"

namespace tdg::apps {

namespace {
const void* fake_ptr(LAddr a) {
  // Logical addresses are identities only; the dependency map never
  // dereferences them. 0 is reserved (null would alias real data).
  return reinterpret_cast<const void*>(a + 1);
}
}  // namespace

// ---------------------------------------------------------------------------
// RuntimeEmitter
// ---------------------------------------------------------------------------

RuntimeEmitter::RuntimeEmitter(Runtime& rt, Options opts)
    : rt_(rt), opts_(opts) {}

RuntimeEmitter::RuntimeEmitter(Runtime& rt, mpi::Comm& comm,
                               mpi::RequestPoller& poller, Options opts)
    : rt_(rt), comm_(&comm), poller_(&poller), opts_(opts) {}

RuntimeEmitter::~RuntimeEmitter() = default;

void RuntimeEmitter::to_deps(std::span<const LDep> ldeps) {
  scratch_.clear();
  for (const LDep& d : ldeps) {
    scratch_.push_back(Depend{fake_ptr(d.addr), d.type});
  }
}

void RuntimeEmitter::compute(const char* label, std::span<const LDep> deps,
                             double, std::uint64_t,
                             std::function<void()> body) {
  to_deps(deps);
  TaskOpts opts;
  opts.label = label;
  rt_.submit([body = std::move(body)] { body(); },
             std::span<const Depend>(scratch_), opts);
}

void RuntimeEmitter::send(const char* label, std::span<const LDep> deps,
                          const void* buf, std::uint64_t bytes, int peer,
                          int tag) {
  TDG_CHECK(comm_ != nullptr, "RuntimeEmitter: send without a communicator");
  if (opts_.taskwait_around_comm) rt_.taskwait();
  to_deps(deps);
  TaskOpts topts;
  topts.label = label;
  topts.detach = rt_.create_event();
  // Sends need no reroute callback: the MPI layer discards sends to dead
  // ranks, so the task completes either way; idempotency marks it safe to
  // re-execute under shrink recovery.
  topts.idempotent = opts_.recovery == RecoveryMode::ShrinkRedistribute;
  mpi::Comm* comm = comm_;
  mpi::RequestPoller* poller = poller_;
  Runtime* rt = &rt_;
  rt_.submit(
      [comm, poller, rt, buf, bytes, peer, tag] {
        poller->complete_on_event(
            comm->isend(buf, static_cast<std::size_t>(bytes), peer, tag),
            rt->current_task_event());
      },
      std::span<const Depend>(scratch_), topts);
}

void RuntimeEmitter::recv(const char* label, std::span<const LDep> deps,
                          void* buf, std::uint64_t bytes, int peer, int tag) {
  TDG_CHECK(comm_ != nullptr, "RuntimeEmitter: recv without a communicator");
  to_deps(deps);
  TaskOpts topts;
  topts.label = label;
  topts.detach = rt_.create_event();
  mpi::Comm* comm = comm_;
  mpi::RequestPoller* poller = poller_;
  Runtime* rt = &rt_;
  if (opts_.recovery == RecoveryMode::ShrinkRedistribute) {
    topts.idempotent = true;
    std::function<int(int)> reroute = opts_.reroute;
    rt_.submit(
        [comm, poller, rt, buf, bytes, tag, peer,
         reroute = std::move(reroute)] {
          mpi::TrackOpts track;
          track.fulfill_on_giveup = true;
          if (reroute) {
            // The current peer travels with the callback so a rerouted
            // request that fails again reroutes from the *new* peer.
            auto current = std::make_shared<int>(peer);
            track.on_peer_failed = [comm, buf, bytes, tag, reroute,
                                    current](int) -> mpi::Request {
              const int np = reroute(*current);
              if (np < 0) return mpi::Request();  // local completion
              *current = np;
              return comm->irecv(buf, static_cast<std::size_t>(bytes), np,
                                 tag);
            };
          }
          poller->complete_on_event(
              comm->irecv(buf, static_cast<std::size_t>(bytes), peer, tag),
              rt->current_task_event(), std::move(track));
        },
        std::span<const Depend>(scratch_), topts);
    return;
  }
  rt_.submit(
      [comm, poller, rt, buf, bytes, peer, tag] {
        poller->complete_on_event(
            comm->irecv(buf, static_cast<std::size_t>(bytes), peer, tag),
            rt->current_task_event());
      },
      std::span<const Depend>(scratch_), topts);
}

void RuntimeEmitter::allreduce(const char* label, std::span<const LDep> deps,
                               const double* in, double* out,
                               std::size_t count, mpi::Op op) {
  TDG_CHECK(comm_ != nullptr,
            "RuntimeEmitter: allreduce without a communicator");
  if (opts_.taskwait_around_comm) rt_.taskwait();
  to_deps(deps);
  TaskOpts topts;
  topts.label = label;
  topts.detach = rt_.create_event();
  // Collectives complete over the survivors (dead ranks are excused by
  // the MPI layer), so no reroute is needed in shrink mode.
  topts.idempotent = opts_.recovery == RecoveryMode::ShrinkRedistribute;
  mpi::Comm* comm = comm_;
  mpi::RequestPoller* poller = poller_;
  Runtime* rt = &rt_;
  rt_.submit(
      [comm, poller, rt, in, out, count, op] {
        poller->complete_on_event(comm->iallreduce(in, out, count, op),
                                  rt->current_task_event(),
                                  /*collective=*/true);
      },
      std::span<const Depend>(scratch_), topts);
  if (opts_.taskwait_around_comm) rt_.taskwait();
}

bool RuntimeEmitter::begin_iteration(std::uint32_t iteration) {
  if (opts_.persistent) {
    if (iteration == 0) region_ = std::make_unique<PersistentRegion>(rt_);
    region_->begin_iteration();
  }
  return true;  // the producer re-executes the instruction flow always
}

void RuntimeEmitter::end_iteration() {
  if (opts_.persistent) {
    region_->end_iteration();
  }
}

// ---------------------------------------------------------------------------
// SimEmitter
// ---------------------------------------------------------------------------

std::vector<sim::SimDep> SimEmitter::to_deps(std::span<const LDep> ldeps) {
  std::vector<sim::SimDep> deps;
  deps.reserve(ldeps.size());
  for (const LDep& d : ldeps) {
    deps.push_back(sim::SimDep{d.addr + 1, d.type});
  }
  return deps;
}

void SimEmitter::compute(const char* label, std::span<const LDep> deps,
                         double est_seconds, std::uint64_t bytes,
                         std::function<void()>) {
  sim::SimTaskAttrs a;
  a.label = label;
  a.cpu_seconds = est_seconds;
  a.bytes = bytes;
  a.iteration = iteration_;
  const auto sdeps = to_deps(deps);
  builder_.task(a, std::span<const sim::SimDep>(sdeps));
}

void SimEmitter::comm_task(const char* label, std::span<const LDep> deps,
                           sim::SimTaskKind kind, std::uint64_t bytes,
                           int peer, int tag) {
  sim::SimTaskAttrs a;
  a.label = label;
  a.kind = kind;
  a.cpu_seconds = 0.5e-6;  // request posting cost
  a.msg_bytes = bytes;
  a.peer = peer;
  a.tag = tag;
  a.iteration = iteration_;
  const auto sdeps = to_deps(deps);
  builder_.task(a, std::span<const sim::SimDep>(sdeps));
}

void SimEmitter::send(const char* label, std::span<const LDep> deps,
                      const void*, std::uint64_t bytes, int peer, int tag) {
  comm_task(label, deps, sim::SimTaskKind::Send, bytes, peer, tag);
}

void SimEmitter::recv(const char* label, std::span<const LDep> deps, void*,
                      std::uint64_t bytes, int peer, int tag) {
  comm_task(label, deps, sim::SimTaskKind::Recv, bytes, peer, tag);
}

void SimEmitter::allreduce(const char* label, std::span<const LDep> deps,
                           const double*, double*, std::size_t count,
                           mpi::Op) {
  comm_task(label, deps, sim::SimTaskKind::Allreduce, count * sizeof(double),
            -1, 0);
}

bool SimEmitter::begin_iteration(std::uint32_t iteration) {
  iteration_ = iteration;
  // Persistent graphs are captured once and replayed by the simulator.
  return !(opts_.persistent && iteration > 0);
}

}  // namespace tdg::apps
