// Application graph emission: one description of an application's task
// structure (dependences, grains, communications), consumed either by the
// real tasking runtime (tests, examples — kernels actually execute) or by
// the simulator (benchmarks — cost-model attributes only). Single-sourcing
// the dependency structure is what keeps the simulated TDGs faithful.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>

#include "core/depend_types.hpp"
#include "core/persistent.hpp"
#include "core/runtime.hpp"
#include "mpi/interop.hpp"
#include "mpi/mpi.hpp"
#include "sim/graph.hpp"

namespace tdg::apps {

/// Logical dependency address: an abstract identity, mapped to a fake
/// pointer for the real runtime and used directly by the sim builder.
using LAddr = std::uint64_t;

struct LDep {
  LAddr addr = 0;
  DependType type = DependType::In;
  static constexpr LDep in(LAddr a) { return {a, DependType::In}; }
  static constexpr LDep out(LAddr a) { return {a, DependType::Out}; }
  static constexpr LDep inout(LAddr a) { return {a, DependType::InOut}; }
  static constexpr LDep inoutset(LAddr a) {
    return {a, DependType::InOutSet};
  }
};

/// Target-independent task sink. `concrete()` tells generators whether
/// bodies will run (so model-only callers can skip capturing them).
class Emitter {
 public:
  virtual ~Emitter() = default;

  virtual bool concrete() const = 0;

  /// A compute task. `est_seconds`/`bytes` are cost-model hints (ignored
  /// by the real runtime); `body` is the kernel (ignored by the sim).
  virtual void compute(const char* label, std::span<const LDep> deps,
                       double est_seconds, std::uint64_t bytes,
                       std::function<void()> body) = 0;
  void compute(const char* label, std::initializer_list<LDep> deps,
               double est_seconds, std::uint64_t bytes,
               std::function<void()> body) {
    compute(label, std::span<const LDep>(deps.begin(), deps.size()),
            est_seconds, bytes, std::move(body));
  }

  /// Communication tasks, detached on request completion. Buffers may be
  /// null for model-only emitters.
  virtual void send(const char* label, std::span<const LDep> deps,
                    const void* buf, std::uint64_t bytes, int peer,
                    int tag) = 0;
  virtual void recv(const char* label, std::span<const LDep> deps, void* buf,
                    std::uint64_t bytes, int peer, int tag) = 0;
  virtual void allreduce(const char* label, std::span<const LDep> deps,
                         const double* in, double* out, std::size_t count,
                         mpi::Op op) = 0;

  void send(const char* label, std::initializer_list<LDep> deps,
            const void* buf, std::uint64_t bytes, int peer, int tag) {
    send(label, std::span<const LDep>(deps.begin(), deps.size()), buf, bytes,
         peer, tag);
  }
  void recv(const char* label, std::initializer_list<LDep> deps, void* buf,
            std::uint64_t bytes, int peer, int tag) {
    recv(label, std::span<const LDep>(deps.begin(), deps.size()), buf, bytes,
         peer, tag);
  }
  void allreduce(const char* label, std::initializer_list<LDep> deps,
                 const double* in, double* out, std::size_t count,
                 mpi::Op op) {
    allreduce(label, std::span<const LDep>(deps.begin(), deps.size()), in,
              out, count, op);
  }

  /// Iteration bracketing. Returns true when the application should emit
  /// (and, in concrete mode, execute) this iteration's tasks: a persistent
  /// model-only emitter captures the graph once and replays it in the
  /// simulator instead.
  virtual bool begin_iteration(std::uint32_t iteration) = 0;
  virtual void end_iteration() = 0;
};

/// What a distributed application does when a peer rank dies mid-run
/// (detected by the MPI layer's heartbeat detector).
enum class RecoveryMode {
  /// Tasks whose requests depended on the dead rank are poisoned with
  /// tdg::RankFailedError; their dependents are cancelled through graph
  /// poisoning while independent work drains (taskwait then throws
  /// TaskGroupError).
  Poison,
  /// Shrink-and-redistribute: communication tasks are emitted as
  /// idempotent, receives install a reroute callback (Options::reroute)
  /// that re-points an unfulfilled remote dependence at a survivor, and
  /// when no survivor can supply it the idempotent shard completes
  /// locally instead of poisoning its dependents.
  ShrinkRedistribute,
};

/// Emitter driving the real runtime, optionally under a persistent region
/// and optionally attached to an MPI communicator for the send/recv/
/// allreduce tasks (Listing 1 composition).
class RuntimeEmitter final : public Emitter {
 public:
  struct Options {
    bool persistent = false;
    /// Insert taskwait barriers around communication emission (the +7%
    /// ablation of Section 4.1).
    bool taskwait_around_comm = false;
    /// Peer-death handling for communication tasks (distributed only).
    RecoveryMode recovery = RecoveryMode::Poison;
    /// ShrinkRedistribute: maps a dead peer rank to the survivor that
    /// takes over its role, or -1 when the dependence should instead be
    /// satisfied locally (the idempotent task completes with the data it
    /// has). Called from the polling hook — must not block. When unset,
    /// every failed dependence falls back to local completion.
    std::function<int(int failed_rank)> reroute;
  };

  RuntimeEmitter(Runtime& rt, Options opts);
  /// Distributed variant: communications go through `comm`, completed by
  /// `poller` at scheduling points.
  RuntimeEmitter(Runtime& rt, mpi::Comm& comm, mpi::RequestPoller& poller,
                 Options opts);
  ~RuntimeEmitter() override;

  bool concrete() const override { return true; }
  void compute(const char* label, std::span<const LDep> deps,
               double est_seconds, std::uint64_t bytes,
               std::function<void()> body) override;
  void send(const char* label, std::span<const LDep> deps, const void* buf,
            std::uint64_t bytes, int peer, int tag) override;
  void recv(const char* label, std::span<const LDep> deps, void* buf,
            std::uint64_t bytes, int peer, int tag) override;
  void allreduce(const char* label, std::span<const LDep> deps,
                 const double* in, double* out, std::size_t count,
                 mpi::Op op) override;
  bool begin_iteration(std::uint32_t iteration) override;
  void end_iteration() override;

  using Emitter::compute;
  using Emitter::send;
  using Emitter::recv;
  using Emitter::allreduce;

 private:
  void to_deps(std::span<const LDep> ldeps);

  Runtime& rt_;
  mpi::Comm* comm_ = nullptr;
  mpi::RequestPoller* poller_ = nullptr;
  Options opts_;
  std::unique_ptr<PersistentRegion> region_;
  DependList scratch_;
};

/// Emitter building a SimGraph. In persistent mode only iteration 0 is
/// captured (the simulator replays it); otherwise every iteration's tasks
/// are appended, cross-iteration edges included.
class SimEmitter final : public Emitter {
 public:
  struct Options {
    sim::SimGraphBuilder::Options builder;
    bool persistent = false;
  };

  explicit SimEmitter(Options opts)
      : opts_(opts), builder_(opts.builder) {}

  bool concrete() const override { return false; }
  void compute(const char* label, std::span<const LDep> deps,
               double est_seconds, std::uint64_t bytes,
               std::function<void()> body) override;
  void send(const char* label, std::span<const LDep> deps, const void* buf,
            std::uint64_t bytes, int peer, int tag) override;
  void recv(const char* label, std::span<const LDep> deps, void* buf,
            std::uint64_t bytes, int peer, int tag) override;
  void allreduce(const char* label, std::span<const LDep> deps,
                 const double* in, double* out, std::size_t count,
                 mpi::Op op) override;
  bool begin_iteration(std::uint32_t iteration) override;
  void end_iteration() override {}

  sim::SimGraph take() { return builder_.take(); }

  using Emitter::compute;
  using Emitter::send;
  using Emitter::recv;
  using Emitter::allreduce;

 private:
  void comm_task(const char* label, std::span<const LDep> deps,
                 sim::SimTaskKind kind, std::uint64_t bytes, int peer,
                 int tag);
  static std::vector<sim::SimDep> to_deps(std::span<const LDep> ldeps);

  Options opts_;
  sim::SimGraphBuilder builder_;
  std::uint32_t iteration_ = 0;
};

}  // namespace tdg::apps
