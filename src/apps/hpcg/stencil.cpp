#include "apps/hpcg/hpcg.hpp"

#include "core/common.hpp"

namespace tdg::apps::hpcg {

Problem build_problem(const Config& cfg, int rank, int nranks) {
  TDG_CHECK(cfg.nz_global >= nranks, "more ranks than z planes");
  Problem prob;
  prob.nx = cfg.nx;
  prob.ny = cfg.ny;
  prob.nz_global = cfg.nz_global;
  // Contiguous z slabs, remainder to the low ranks (HPCG-style).
  const int base = cfg.nz_global / nranks;
  const int extra = cfg.nz_global % nranks;
  prob.nz_local = base + (rank < extra ? 1 : 0);
  prob.z_offset = static_cast<std::int64_t>(rank) * base +
                  std::min(rank, extra);

  const std::int64_t nxy = prob.plane();
  const std::int64_t nrows = prob.nrows();
  CsrMatrix& a = prob.a;
  a.nrows = nrows;
  a.row_ptr.reserve(static_cast<std::size_t>(nrows) + 1);
  a.row_ptr.push_back(0);
  a.cols.reserve(static_cast<std::size_t>(nrows) * 27);
  a.vals.reserve(static_cast<std::size_t>(nrows) * 27);
  prob.b.assign(static_cast<std::size_t>(nrows), 0.0);

  for (int z = 0; z < prob.nz_local; ++z) {
    const std::int64_t gz = prob.z_offset + z;
    for (int y = 0; y < prob.ny; ++y) {
      for (int x = 0; x < prob.nx; ++x) {
        double row_sum = 0;
        for (int dz = -1; dz <= 1; ++dz) {
          const std::int64_t ngz = gz + dz;
          if (ngz < 0 || ngz >= prob.nz_global) continue;
          for (int dy = -1; dy <= 1; ++dy) {
            const int ny_ = y + dy;
            if (ny_ < 0 || ny_ >= prob.ny) continue;
            for (int dx = -1; dx <= 1; ++dx) {
              const int nx_ = x + dx;
              if (nx_ < 0 || nx_ >= prob.nx) continue;
              // Column in the local ghost-plane layout: local z plane
              // index is z + dz + 1 (plane 0 is the down ghost).
              const std::int64_t col =
                  (static_cast<std::int64_t>(z + dz + 1)) * nxy +
                  static_cast<std::int64_t>(ny_) * prob.nx + nx_;
              const double val =
                  (dz == 0 && dy == 0 && dx == 0) ? 26.0 : -1.0;
              a.cols.push_back(col);
              a.vals.push_back(val);
              row_sum += val;
            }
          }
        }
        a.row_ptr.push_back(static_cast<std::int64_t>(a.cols.size()));
        const std::int64_t row =
            static_cast<std::int64_t>(z) * nxy +
            static_cast<std::int64_t>(y) * prob.nx + x;
        prob.b[static_cast<std::size_t>(row)] = row_sum;
      }
    }
  }
  return prob;
}

CgState::CgState(const Problem& prob, int tpl) {
  const auto len = static_cast<std::size_t>(prob.vec_len());
  x.assign(len, 0.0);
  r.assign(len, 0.0);
  p.assign(len, 0.0);
  ap.assign(len, 0.0);
  part_a.assign(static_cast<std::size_t>(tpl), 0.0);
  part_b.assign(static_cast<std::size_t>(tpl), 0.0);
  const auto nxy = static_cast<std::size_t>(prob.plane());
  sbuf_down.assign(nxy, 0.0);
  sbuf_up.assign(nxy, 0.0);
  rbuf_down.assign(nxy, 0.0);
  rbuf_up.assign(nxy, 0.0);
}

double solution_error(const Problem& prob, const CgState& st) {
  const std::int64_t off = prob.plane();
  double err = 0;
  for (std::int64_t rrow = 0; rrow < prob.nrows(); ++rrow) {
    const double d = st.x[static_cast<std::size_t>(off + rrow)] - 1.0;
    err = std::max(err, d < 0 ? -d : d);
  }
  return err;
}

}  // namespace tdg::apps::hpcg
