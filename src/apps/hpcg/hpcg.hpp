// hpcg-mini: the High Performance Conjugate Gradient benchmark skeleton —
// a 27-point stencil operator on a 3D lattice and an (unpreconditioned)
// CG solve, task-parallelized as in Section 4.3: vector-wise operations
// split into TPL blocks, SpMV into sub-blocks, dot products reduced through
// inoutset fan-in tasks and an MPI allreduce, halo exchange of boundary
// planes under a 1D z decomposition.
//
// b is the operator's row sums, so the exact solution is x = 1: a
// convergence check that needs no external data.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/common/emitter.hpp"
#include "core/runtime.hpp"
#include "mpi/interop.hpp"
#include "mpi/mpi.hpp"

namespace tdg::apps::hpcg {

struct Config {
  int nx = 16, ny = 16;
  int nz_global = 16;
  int cg_iterations = 25;
  int tpl = 8;    ///< vector blocks (the Fig. 9 sweep parameter)
  int nspmv = 4;  ///< SpMV sub-blocks (fixed to 32 in the paper)
  bool distributed = false;
  /// Simulator cost scaling: each row stands for `sim_scale` rows of the
  /// modelled problem (grain/bytes hints multiplied; structure unchanged).
  double sim_scale = 1.0;
};

/// CSR operator for the local partition (rows = interior lattice points,
/// columns index the local vector layout including ghost planes).
struct CsrMatrix {
  std::int64_t nrows = 0;
  std::vector<std::int64_t> row_ptr;
  std::vector<std::int64_t> cols;
  std::vector<double> vals;
};

/// One rank's share of the problem: rows for z in [z_offset,
/// z_offset + nz_local) of a global nx*ny*nz_global lattice. Vectors hold
/// nz_local + 2 planes; plane 0 and plane nz_local+1 are ghosts.
struct Problem {
  int nx = 0, ny = 0, nz_local = 0, nz_global = 0;
  std::int64_t z_offset = 0;
  CsrMatrix a;
  std::vector<double> b;  ///< rhs (row sums), interior rows only

  std::int64_t nrows() const {
    return static_cast<std::int64_t>(nx) * ny * nz_local;
  }
  std::int64_t plane() const { return static_cast<std::int64_t>(nx) * ny; }
  std::int64_t vec_len() const { return plane() * (nz_local + 2); }
};

Problem build_problem(const Config& cfg, int rank = 0, int nranks = 1);

/// CG working state. Vectors use the ghost-plane layout; interior row r
/// lives at index r + plane().
struct CgState {
  explicit CgState(const Problem& prob, int tpl);

  std::vector<double> x, r, p, ap;
  std::vector<double> part_a;  ///< per-block partials, dot(p, Ap)
  std::vector<double> part_b;  ///< per-block partials, dot(r, r)
  double pap = 0, rtz = 0, rtz_new = 0, alpha = 0, beta = 0;
  // Distributed reduction slots (allreduce inputs/outputs).
  double pap_local = 0, pap_global = 0;
  double rtz_local = 0, rtz_global = 0;
  std::vector<double> sbuf_down, sbuf_up, rbuf_down, rbuf_up;
  std::vector<double> residual_history;  ///< sqrt(rtz) per iteration
};

/// Halo topology for the 1D z decomposition.
struct ZHalo {
  int down = -1, up = -1;
};

/// Serial reference CG with the same blocked dot-product association as
/// the task version (bit-comparable for equal tpl).
void run_reference(const Problem& prob, CgState& st, const Config& cfg);

/// Emit the init phase (r = b, p = r, rtz = dot(r,r)).
void emit_init(Emitter& em, const Problem& prob, CgState& st,
               const Config& cfg, ZHalo* halo);
/// Emit one CG iteration.
void emit_iteration(Emitter& em, const Problem& prob, CgState& st,
                    const Config& cfg, std::uint32_t iter, ZHalo* halo);

/// Shared-memory task-based solve.
void run_taskbased(Runtime& rt, const Problem& prob, CgState& st,
                   const Config& cfg, bool persistent);

/// Distributed task-based solve (communications inside the TDG).
void run_distributed(Runtime& rt, mpi::Comm& comm, mpi::RequestPoller& poller,
                     const Problem& prob, CgState& st, const Config& cfg,
                     bool persistent);

/// Max |x_i - 1| over interior rows (exact solution is all-ones).
double solution_error(const Problem& prob, const CgState& st);

}  // namespace tdg::apps::hpcg
