#include <cmath>

#include "apps/hpcg/hpcg.hpp"

namespace tdg::apps::hpcg {

namespace {

// Logical dependency addresses.
constexpr LAddr kStride = 1 << 20;
enum Field : LAddr {
  FX, FR, FP, FAP,
  FPARTA, FPARTB,            // dot partial fan-in (inoutset)
  FPAP, FPAPL, FPAPG,
  FRTZ, FRTZNEW, FRTZL, FRTZG,
  FALPHA, FBETA,
  FGHD, FGHU, FSBD, FSBU, FRBD, FRBU,
};
constexpr LAddr A(Field f, int b = 0) {
  return static_cast<LAddr>(f) * kStride + static_cast<LAddr>(b);
}

constexpr int kTagUpward = 10;    // top plane travelling to rank+1
constexpr int kTagDownward = 11;  // bottom plane travelling to rank-1

struct Blocking {
  std::int64_t nrows;
  int tpl;
  std::int64_t lo(int b) const { return nrows * b / tpl; }
  std::int64_t hi(int b) const { return nrows * (b + 1) / tpl; }
  int block_of(std::int64_t row) const {
    int b = static_cast<int>(row * tpl / nrows);
    while (b > 0 && lo(b) > row) --b;
    while (b + 1 < tpl && hi(b) <= row) ++b;
    return b;
  }
};

// ---- kernels ---------------------------------------------------------------

void spmv_rows(const Problem& prob, const std::vector<double>& in,
               std::vector<double>& out, std::int64_t lo, std::int64_t hi) {
  const std::int64_t off = prob.plane();
  for (std::int64_t row = lo; row < hi; ++row) {
    double acc = 0;
    for (std::int64_t k = prob.a.row_ptr[static_cast<std::size_t>(row)];
         k < prob.a.row_ptr[static_cast<std::size_t>(row) + 1]; ++k) {
      acc += prob.a.vals[static_cast<std::size_t>(k)] *
             in[static_cast<std::size_t>(
                 prob.a.cols[static_cast<std::size_t>(k)])];
    }
    out[static_cast<std::size_t>(off + row)] = acc;
  }
}

double dot_rows(const Problem& prob, const std::vector<double>& u,
                const std::vector<double>& v, std::int64_t lo,
                std::int64_t hi) {
  const std::int64_t off = prob.plane();
  double acc = 0;
  for (std::int64_t row = lo; row < hi; ++row) {
    acc += u[static_cast<std::size_t>(off + row)] *
           v[static_cast<std::size_t>(off + row)];
  }
  return acc;
}

double sum_parts(const std::vector<double>& parts) {
  double acc = 0;
  for (double p : parts) acc += p;
  return acc;
}

}  // namespace

// ---------------------------------------------------------------------------
// Serial reference (same blocked dot association as the task version)
// ---------------------------------------------------------------------------

void run_reference(const Problem& prob, CgState& st, const Config& cfg) {
  const Blocking blk{prob.nrows(), cfg.tpl};
  const std::int64_t off = prob.plane();
  const std::int64_t n = prob.nrows();
  for (std::int64_t row = 0; row < n; ++row) {
    const auto u = static_cast<std::size_t>(off + row);
    st.r[u] = prob.b[static_cast<std::size_t>(row)];
    st.p[u] = st.r[u];
  }
  for (int b = 0; b < cfg.tpl; ++b) {
    st.part_b[static_cast<std::size_t>(b)] =
        dot_rows(prob, st.r, st.r, blk.lo(b), blk.hi(b));
  }
  st.rtz = sum_parts(st.part_b);
  for (int it = 0; it < cfg.cg_iterations; ++it) {
    spmv_rows(prob, st.p, st.ap, 0, n);
    for (int b = 0; b < cfg.tpl; ++b) {
      st.part_a[static_cast<std::size_t>(b)] =
          dot_rows(prob, st.p, st.ap, blk.lo(b), blk.hi(b));
    }
    st.pap = sum_parts(st.part_a);
    st.alpha = st.rtz / st.pap;
    for (std::int64_t row = 0; row < n; ++row) {
      const auto u = static_cast<std::size_t>(off + row);
      st.x[u] += st.alpha * st.p[u];
      st.r[u] -= st.alpha * st.ap[u];
    }
    for (int b = 0; b < cfg.tpl; ++b) {
      st.part_b[static_cast<std::size_t>(b)] =
          dot_rows(prob, st.r, st.r, blk.lo(b), blk.hi(b));
    }
    st.rtz_new = sum_parts(st.part_b);
    st.beta = st.rtz_new / st.rtz;
    st.rtz = st.rtz_new;
    st.residual_history.push_back(std::sqrt(st.rtz_new));
    for (std::int64_t row = 0; row < n; ++row) {
      const auto u = static_cast<std::size_t>(off + row);
      st.p[u] = st.r[u] + st.beta * st.p[u];
    }
  }
}

// ---------------------------------------------------------------------------
// Task emission
// ---------------------------------------------------------------------------

namespace {

// Deps of a vector range read in TPL blocking.
void range_blocks(std::vector<LDep>& deps, Field f, const Blocking& blk,
                  std::int64_t lo, std::int64_t hi, DependType type) {
  if (lo >= hi) return;
  const int b0 = blk.block_of(lo);
  const int b1 = blk.block_of(hi - 1);
  for (int b = b0; b <= b1; ++b) deps.push_back(LDep{A(f, b), type});
}

// Cost hints per row for the simulator.
constexpr double kSpmvSecsPerRow = 27 * 4e-9;
constexpr double kVecSecsPerRow = 40e-9;
constexpr std::uint64_t kSpmvBytesPerRow = 27 * 12;  // vals+cols+x
constexpr std::uint64_t kVecBytesPerRow = 24;

}  // namespace

void emit_init(Emitter& em, const Problem& prob, CgState& st,
               const Config& cfg, ZHalo*) {
  const Blocking blk{prob.nrows(), cfg.tpl};
  const Problem* pr = &prob;
  CgState* s = &st;
  const std::int64_t off = prob.plane();
  for (int b = 0; b < cfg.tpl; ++b) {
    const std::int64_t lo = blk.lo(b), hi = blk.hi(b);
    const double rows = static_cast<double>(hi - lo) * cfg.sim_scale;
    em.compute("InitRP",
               {LDep::out(A(FR, b)), LDep::out(A(FP, b)), LDep::out(A(FX, b))},
               rows * kVecSecsPerRow,
               static_cast<std::uint64_t>(rows) * kVecBytesPerRow,
               [pr, s, lo, hi, off] {
                 for (std::int64_t row = lo; row < hi; ++row) {
                   const auto u = static_cast<std::size_t>(off + row);
                   s->x[u] = 0.0;
                   s->r[u] = pr->b[static_cast<std::size_t>(row)];
                   s->p[u] = s->r[u];
                 }
               });
  }
  for (int b = 0; b < cfg.tpl; ++b) {
    const std::int64_t lo = blk.lo(b), hi = blk.hi(b);
    const double rows = static_cast<double>(hi - lo) * cfg.sim_scale;
    em.compute("DotR0", {LDep::in(A(FR, b)), LDep::inoutset(A(FPARTB))},
               rows * kVecSecsPerRow,
               static_cast<std::uint64_t>(rows) * kVecBytesPerRow,
               [pr, s, b, lo, hi] {
                 s->part_b[static_cast<std::size_t>(b)] =
                     dot_rows(*pr, s->r, s->r, lo, hi);
               });
  }
  em.compute("ReduceRtz0", {LDep::in(A(FPARTB)), LDep::out(A(FRTZ))}, 1e-7, 0,
             [s] { s->rtz = sum_parts(s->part_b); });
}

void emit_iteration(Emitter& em, const Problem& prob, CgState& st,
                    const Config& cfg, std::uint32_t, ZHalo* halo) {
  const Blocking blk{prob.nrows(), cfg.tpl};
  const Problem* pr = &prob;
  CgState* s = &st;
  const std::int64_t n = prob.nrows();
  const std::int64_t nxy = prob.plane();
  const std::int64_t off = nxy;
  const bool dist = cfg.distributed && halo != nullptr;

  // ---- halo exchange of p (boundary planes, before SpMV) ------------------
  if (dist && halo->down >= 0) {
    const int peer = halo->down;
    std::vector<LDep> d;
    range_blocks(d, FP, blk, 0, nxy, DependType::In);
    d.push_back(LDep::out(A(FSBD)));
    em.compute("PackDown", std::span<const LDep>(d), 1e-7,
               static_cast<std::uint64_t>(nxy) * 8, [s, off, nxy] {
                 for (std::int64_t i = 0; i < nxy; ++i) {
                   s->sbuf_down[static_cast<std::size_t>(i)] =
                       s->p[static_cast<std::size_t>(off + i)];
                 }
               });
    em.send("SendDown", {LDep::in(A(FSBD))}, st.sbuf_down.data(),
            static_cast<std::uint64_t>(nxy) * 8, peer, kTagDownward);
    em.recv("RecvDown", {LDep::out(A(FRBD))}, st.rbuf_down.data(),
            static_cast<std::uint64_t>(nxy) * 8, peer, kTagUpward);
    em.compute("UnpackDown", {LDep::in(A(FRBD)), LDep::out(A(FGHD))}, 1e-7,
               static_cast<std::uint64_t>(nxy) * 8, [s, nxy] {
                 for (std::int64_t i = 0; i < nxy; ++i) {
                   s->p[static_cast<std::size_t>(i)] =
                       s->rbuf_down[static_cast<std::size_t>(i)];
                 }
               });
  }
  if (dist && halo->up >= 0) {
    const int peer = halo->up;
    std::vector<LDep> d;
    range_blocks(d, FP, blk, n - nxy, n, DependType::In);
    d.push_back(LDep::out(A(FSBU)));
    em.compute("PackUp", std::span<const LDep>(d), 1e-7,
               static_cast<std::uint64_t>(nxy) * 8, [s, off, n, nxy] {
                 for (std::int64_t i = 0; i < nxy; ++i) {
                   s->sbuf_up[static_cast<std::size_t>(i)] =
                       s->p[static_cast<std::size_t>(off + n - nxy + i)];
                 }
               });
    em.send("SendUp", {LDep::in(A(FSBU))}, st.sbuf_up.data(),
            static_cast<std::uint64_t>(nxy) * 8, peer, kTagUpward);
    em.recv("RecvUp", {LDep::out(A(FRBU))}, st.rbuf_up.data(),
            static_cast<std::uint64_t>(nxy) * 8, peer, kTagDownward);
    em.compute("UnpackUp", {LDep::in(A(FRBU)), LDep::out(A(FGHU))}, 1e-7,
               static_cast<std::uint64_t>(nxy) * 8, [s, off, n, nxy] {
                 for (std::int64_t i = 0; i < nxy; ++i) {
                   s->p[static_cast<std::size_t>(off + n + i)] =
                       s->rbuf_up[static_cast<std::size_t>(i)];
                 }
               });
  }

  // ---- SpMV: ap = A p in sub-blocks (inoutset writers per vector block) ---
  for (int sb = 0; sb < cfg.nspmv; ++sb) {
    const std::int64_t lo = n * sb / cfg.nspmv;
    const std::int64_t hi = n * (sb + 1) / cfg.nspmv;
    std::vector<LDep> d;
    range_blocks(d, FP, blk, std::max<std::int64_t>(0, lo - nxy),
                 std::min(n, hi + nxy), DependType::In);
    if (dist && halo->down >= 0 && lo < nxy) d.push_back(LDep::in(A(FGHD)));
    if (dist && halo->up >= 0 && hi > n - nxy) {
      d.push_back(LDep::in(A(FGHU)));
    }
    range_blocks(d, FAP, blk, lo, hi, DependType::InOutSet);
    const double rows = static_cast<double>(hi - lo) * cfg.sim_scale;
    em.compute("SpMV", std::span<const LDep>(d), rows * kSpmvSecsPerRow,
               static_cast<std::uint64_t>(rows) * kSpmvBytesPerRow,
               [pr, s, lo, hi] { spmv_rows(*pr, s->p, s->ap, lo, hi); });
  }

  // ---- dot(p, Ap) ----------------------------------------------------------
  for (int b = 0; b < cfg.tpl; ++b) {
    const std::int64_t lo = blk.lo(b), hi = blk.hi(b);
    const double rows = static_cast<double>(hi - lo) * cfg.sim_scale;
    em.compute("DotPAp",
               {LDep::in(A(FP, b)), LDep::in(A(FAP, b)),
                LDep::inoutset(A(FPARTA))},
               rows * kVecSecsPerRow,
               static_cast<std::uint64_t>(rows) * kVecBytesPerRow,
               [pr, s, b, lo, hi] {
                 s->part_a[static_cast<std::size_t>(b)] =
                     dot_rows(*pr, s->p, s->ap, lo, hi);
               });
  }
  if (dist) {
    em.compute("ReducePApLocal", {LDep::in(A(FPARTA)), LDep::out(A(FPAPL))},
               1e-7, 0, [s] { s->pap_local = sum_parts(s->part_a); });
    em.allreduce("Allreduce(pAp)", {LDep::in(A(FPAPL)), LDep::out(A(FPAPG))},
                 &st.pap_local, &st.pap_global, 1, mpi::Op::Sum);
    em.compute("CommitPAp", {LDep::in(A(FPAPG)), LDep::out(A(FPAP))}, 1e-7, 0,
               [s] { s->pap = s->pap_global; });
  } else {
    em.compute("ReducePAp", {LDep::in(A(FPARTA)), LDep::out(A(FPAP))}, 1e-7,
               0, [s] { s->pap = sum_parts(s->part_a); });
  }

  // ---- alpha and vector updates ---------------------------------------------
  em.compute("Alpha",
             {LDep::in(A(FPAP)), LDep::in(A(FRTZ)), LDep::out(A(FALPHA))},
             1e-7, 0, [s] { s->alpha = s->rtz / s->pap; });
  for (int b = 0; b < cfg.tpl; ++b) {
    const std::int64_t lo = blk.lo(b), hi = blk.hi(b);
    const double rows = static_cast<double>(hi - lo) * cfg.sim_scale;
    em.compute("AxpyX",
               {LDep::in(A(FALPHA)), LDep::in(A(FP, b)),
                LDep::inout(A(FX, b))},
               rows * kVecSecsPerRow,
               static_cast<std::uint64_t>(rows) * kVecBytesPerRow,
               [s, off, lo, hi] {
                 for (std::int64_t row = lo; row < hi; ++row) {
                   const auto u = static_cast<std::size_t>(off + row);
                   s->x[u] += s->alpha * s->p[u];
                 }
               });
    em.compute("AxpyR",
               {LDep::in(A(FALPHA)), LDep::in(A(FAP, b)),
                LDep::inout(A(FR, b))},
               rows * kVecSecsPerRow,
               static_cast<std::uint64_t>(rows) * kVecBytesPerRow,
               [s, off, lo, hi] {
                 for (std::int64_t row = lo; row < hi; ++row) {
                   const auto u = static_cast<std::size_t>(off + row);
                   s->r[u] -= s->alpha * s->ap[u];
                 }
               });
  }

  // ---- dot(r, r) --------------------------------------------------------------
  for (int b = 0; b < cfg.tpl; ++b) {
    const std::int64_t lo = blk.lo(b), hi = blk.hi(b);
    const double rows = static_cast<double>(hi - lo) * cfg.sim_scale;
    em.compute("DotRR",
               {LDep::in(A(FR, b)), LDep::inoutset(A(FPARTB))},
               rows * kVecSecsPerRow,
               static_cast<std::uint64_t>(rows) * kVecBytesPerRow,
               [pr, s, b, lo, hi] {
                 s->part_b[static_cast<std::size_t>(b)] =
                     dot_rows(*pr, s->r, s->r, lo, hi);
               });
  }
  if (dist) {
    em.compute("ReduceRtzLocal", {LDep::in(A(FPARTB)), LDep::out(A(FRTZL))},
               1e-7, 0, [s] { s->rtz_local = sum_parts(s->part_b); });
    em.allreduce("Allreduce(rtz)", {LDep::in(A(FRTZL)), LDep::out(A(FRTZG))},
                 &st.rtz_local, &st.rtz_global, 1, mpi::Op::Sum);
    em.compute("CommitRtz", {LDep::in(A(FRTZG)), LDep::out(A(FRTZNEW))},
               1e-7, 0, [s] { s->rtz_new = s->rtz_global; });
  } else {
    em.compute("ReduceRtz", {LDep::in(A(FPARTB)), LDep::out(A(FRTZNEW))},
               1e-7, 0, [s] { s->rtz_new = sum_parts(s->part_b); });
  }

  // ---- beta and direction update -----------------------------------------------
  em.compute("Beta",
             {LDep::in(A(FRTZNEW)), LDep::inout(A(FRTZ)),
              LDep::out(A(FBETA))},
             1e-7, 0, [s] {
               s->beta = s->rtz_new / s->rtz;
               s->rtz = s->rtz_new;
               s->residual_history.push_back(std::sqrt(s->rtz_new));
             });
  for (int b = 0; b < cfg.tpl; ++b) {
    const std::int64_t lo = blk.lo(b), hi = blk.hi(b);
    const double rows = static_cast<double>(hi - lo) * cfg.sim_scale;
    em.compute("Waxpby",
               {LDep::in(A(FBETA)), LDep::in(A(FR, b)),
                LDep::inout(A(FP, b))},
               rows * kVecSecsPerRow,
               static_cast<std::uint64_t>(rows) * kVecBytesPerRow,
               [s, off, lo, hi] {
                 for (std::int64_t row = lo; row < hi; ++row) {
                   const auto u = static_cast<std::size_t>(off + row);
                   s->p[u] = s->r[u] + s->beta * s->p[u];
                 }
               });
  }
}

// ---------------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------------

void run_taskbased(Runtime& rt, const Problem& prob, CgState& st,
                   const Config& cfg, bool persistent) {
  RuntimeEmitter::Options opts;
  opts.persistent = persistent;
  RuntimeEmitter em(rt, opts);
  emit_init(em, prob, st, cfg, nullptr);
  rt.taskwait();  // the init phase is not part of the iterated region
  for (int it = 0; it < cfg.cg_iterations; ++it) {
    if (em.begin_iteration(static_cast<std::uint32_t>(it))) {
      emit_iteration(em, prob, st, cfg, static_cast<std::uint32_t>(it),
                     nullptr);
    }
    em.end_iteration();
  }
  rt.taskwait();
}

void run_distributed(Runtime& rt, mpi::Comm& comm, mpi::RequestPoller& poller,
                     const Problem& prob, CgState& st, const Config& cfg,
                     bool persistent) {
  Config dcfg = cfg;
  dcfg.distributed = true;
  ZHalo halo;
  halo.down = comm.rank() > 0 ? comm.rank() - 1 : -1;
  halo.up = comm.rank() + 1 < comm.size() ? comm.rank() + 1 : -1;
  RuntimeEmitter::Options opts;
  opts.persistent = persistent;
  RuntimeEmitter em(rt, comm, poller, opts);
  emit_init(em, prob, st, dcfg, &halo);
  rt.taskwait();
  // Initial rtz must be global.
  double local = st.rtz;
  comm.allreduce(&local, &st.rtz, 1, mpi::Op::Sum);
  for (int it = 0; it < dcfg.cg_iterations; ++it) {
    if (em.begin_iteration(static_cast<std::uint32_t>(it))) {
      emit_iteration(em, prob, st, dcfg, static_cast<std::uint32_t>(it),
                     &halo);
    }
    em.end_iteration();
  }
  rt.taskwait();
}

}  // namespace tdg::apps::hpcg
